GO ?= go

# Benchmarks recorded by bench-json; Table 1 system construction is the
# allocation-tracked canary for hot-path regressions.
BENCH_PATTERN ?= BenchmarkTable1BaselineSystemConstruction|BenchmarkEngineEventThroughput|BenchmarkSegmentThroughput|BenchmarkFig9TriangularPredictive
BENCH_COUNT ?= 5
BENCH_LABEL ?= current

# bench-suite settings: full rmexperiments renders timed end to end.
SUITE_COUNT ?= 5
SUITE_LABEL ?= post-scheduler
SUITE_FLAGS ?=

# bench-record / bench-diff settings: the benchrunner harness (BENCH_3).
BENCH_ITERS ?= 10
BENCH_OUT ?= BENCH_3.json
BENCH_BASELINE ?= BENCH_3.json
BENCH_THRESHOLD ?= 10
BENCH_REPORT ?= bench-diff-report.txt

.PHONY: build test race bench bench-json bench-suite bench-record bench-diff check golden vet fmt all

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Each lane engine is single-threaded by design, but the lane-set barrier
# drives them from a worker pool, telemetry's HTTP exposition reads
# recorder state from handler goroutines, experiment sweeps fan
# simulations across workers, and the resilience layer (journal, retry,
# fault injector) is exercised concurrently by the server suites — keep
# the hot paths, their locking, and the sweep cache honest under the
# race detector.
race:
	$(GO) test -race ./internal/sim/... ./internal/telemetry/... ./internal/core/... ./internal/experiment/... ./internal/api/... ./internal/session/... ./internal/server/... ./internal/client/... ./internal/policy/... ./internal/resil/...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/telemetry/...

# bench-json records the hot-path benchmarks into BENCH_1.json under
# $(BENCH_LABEL), preserving other labels (e.g. the committed
# pre-optimization baseline). Raw lines are kept benchstat-comparable:
#   jq -r '.labels.baseline.lines[]' BENCH_1.json | benchstat /dev/stdin
bench-json:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) . \
		| $(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -out BENCH_1.json

# bench-suite times $(SUITE_COUNT) full rmexperiments renders and records
# the wall-clock into BENCH_2.json under $(SUITE_LABEL) (the committed
# pre-scheduler label is the baseline). Pass SUITE_FLAGS='-cache-dir d'
# to measure a warm-cache render.
bench-suite:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/rmexperiments ./cmd/rmexperiments; \
	for i in $$(seq 1 $(SUITE_COUNT)); do \
		start=$$(date +%s%N); \
		$$tmp/rmexperiments $(SUITE_FLAGS) >/dev/null || exit 1; \
		end=$$(date +%s%N); \
		echo "BenchmarkExperimentSuiteWallClock 1 $$((end-start)) ns/op"; \
	done | $(GO) run ./cmd/benchjson -label $(SUITE_LABEL) -out BENCH_2.json; \
	rm -rf $$tmp

# bench-record re-measures the named benchrunner workloads (Table 1
# canary, fig9-13 cold/warm, ext-chaos, rmserved round-trip, session
# fan-out) and rewrites $(BENCH_OUT); run it after an intentional perf
# change to move the committed baseline.
bench-record:
	$(GO) run ./cmd/benchrunner -iterations $(BENCH_ITERS) -out $(BENCH_OUT)

# bench-diff is the regression gate: record a fresh snapshot, compare it
# against the last committed $(BENCH_BASELINE), and exit non-zero when a
# gated workload's best-of-N wall time regressed past $(BENCH_THRESHOLD)%.
# The report (including measured pprof CPU+heap overhead per workload)
# lands in $(BENCH_REPORT).
bench-diff:
	@tmp=$$(mktemp /tmp/bench3.XXXXXX.json); \
	$(GO) run ./cmd/benchrunner -iterations $(BENCH_ITERS) -out $$tmp || { rm -f $$tmp; exit 1; }; \
	$(GO) run ./cmd/benchrunner -diff -baseline $(BENCH_BASELINE) -candidate $$tmp \
		-threshold $(BENCH_THRESHOLD) -report $(BENCH_REPORT); \
	status=$$?; rm -f $$tmp; exit $$status

# golden re-runs the determinism harness; use UPDATE=1 after an
# intentional model change to regenerate the snapshots.
golden:
	$(GO) test ./internal/experiment -run Golden $(if $(UPDATE),-update)

# check is the full pre-merge gate: build, vet, all tests, and the
# race-enabled packages.
check: build vet test race

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .
