GO ?= go

.PHONY: build test race bench vet fmt all

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The engine is single-threaded by design, but telemetry's HTTP exposition
# reads recorder state from handler goroutines — keep the hot paths and
# their locking honest under the race detector.
race:
	$(GO) test -race ./internal/telemetry/... ./internal/core/...

bench:
	$(GO) test -bench . -benchmem -run '^$$' ./internal/telemetry/...

vet:
	$(GO) vet ./...

fmt:
	gofmt -l -w .
