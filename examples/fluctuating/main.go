// Fluctuating workload: the paper's headline scenario. Runs both
// allocators against the same triangular pattern and prints the §5.2
// metrics side by side, plus a sparkline of replica usage over time.
//
//	go run ./examples/fluctuating
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/metrics"
	"repro/internal/trace"
	"repro/internal/workload"
)

const (
	minW    = 500
	maxW    = 12000
	periods = 120
)

func main() {
	pattern := workload.NewTriangular(minW, maxW, periods, 2)
	fmt.Printf("triangular workload %d..%d tracks, %d periods, 2 cycles\n\n", minW, maxW, periods)

	results := map[core.Algorithm]core.Result{}
	for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive} {
		setup, err := experiment.BenchmarkSetup(pattern)
		if err != nil {
			log.Fatal(err)
		}
		res, err := core.Run(core.DefaultConfig(), alg, []core.TaskSetup{setup})
		if err != nil {
			log.Fatal(err)
		}
		results[alg] = res
	}

	fmt.Printf("%-22s %12s %15s\n", "metric", "predictive", "non-predictive")
	p, n := results[core.Predictive].Metrics, results[core.NonPredictive].Metrics
	row := func(name string, f func(metrics.RunMetrics) float64) {
		fmt.Printf("%-22s %12.2f %15.2f\n", name, f(p), f(n))
	}
	row("missed deadlines %", metrics.RunMetrics.MissedPct)
	row("mean CPU util %", metrics.RunMetrics.CPUUtilPct)
	row("mean network util %", metrics.RunMetrics.NetUtilPct)
	row("mean replicas", func(m metrics.RunMetrics) float64 { return m.MeanReplicas })
	row("combined metric C", metrics.RunMetrics.Combined)
	fmt.Printf("%-22s %12d %15d\n", "replications", p.Replications, n.Replications)
	fmt.Printf("%-22s %12d %15d\n", "shutdowns", p.Shutdowns, n.Shutdowns)

	fmt.Println("\nreplica activity over time (each char = 4 periods, height = adaptation count):")
	for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive} {
		fmt.Printf("  %-15s %s\n", alg, sparkline(results[alg].Events, periods))
	}
	fmt.Println("\nThe predictive algorithm reaches a lower combined metric by holding")
	fmt.Println("fewer replicas: it adds capacity only until the forecast latency fits")
	fmt.Println("inside the subtask deadline minus the 20% slack (paper Figure 5).")
}

// sparkline buckets adaptation events into 4-period cells.
func sparkline(events []trace.AdaptationEvent, periods int) string {
	const cell = 4
	buckets := make([]int, (periods+cell-1)/cell)
	for _, e := range events {
		if b := e.Period / cell; b >= 0 && b < len(buckets) {
			buckets[b]++
		}
	}
	marks := []rune(" .:-=+*#%@")
	var b strings.Builder
	for _, v := range buckets {
		if v >= len(marks) {
			v = len(marks) - 1
		}
		b.WriteRune(marks[v])
	}
	return b.String()
}
