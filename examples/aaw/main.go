// AAW engagement scenario: two sensing pipelines (search radar and fire
// control) share the six-node cluster while an engagement ramps the track
// count up and back down — the Anti-Air-Warfare situation that motivated
// the paper's benchmark. Demonstrates multi-task deployment with offset
// home placements and per-task adaptation.
//
//	go run ./examples/aaw
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dynbench"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	const periods = 90

	// The search radar sees the raid build up and clear: triangular.
	search, err := experiment.BenchmarkSetup(workload.NewTriangular(500, 9000, periods, 1))
	if err != nil {
		log.Fatal(err)
	}
	search.Spec.Name = "SearchRadar"

	// Fire control tracks a smaller, bursty subset of threats.
	fire, err := experiment.BenchmarkSetup(workload.NewBurst(200, 3000, periods, 15, 5))
	if err != nil {
		log.Fatal(err)
	}
	fire.Spec.Name = "FireControl"
	fire.Homes = []int{3, 4, 5, 0, 1} // keep original processes off the search pipeline's nodes

	cfg := core.DefaultConfig()
	cfg.Seed = 2001
	res, err := core.Run(cfg, core.Predictive, []core.TaskSetup{search, fire})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Println("AAW engagement: SearchRadar (triangular raid) + FireControl (bursts)")
	fmt.Printf("  %d instances, %.1f%% missed, CPU %.1f%%, net %.1f%%, C = %.1f\n\n",
		m.Completed, m.MissedPct(), m.CPUUtilPct(), m.NetUtilPct(), m.Combined())

	fmt.Println("replication decisions during the engagement:")
	for _, e := range res.Events {
		stage := dynbench.NewTask(dynbench.DefaultConfig()).Subtasks[e.Stage].Name
		fmt.Printf("  t=%-8v %-12s %-11s %-10s procs=%v\n", e.At, e.Task, stage, e.Kind, e.Procs)
	}

	missedByTask := map[string]int{}
	for _, r := range res.Records {
		if r.Missed() {
			missedByTask["total"]++
		}
	}
	fmt.Printf("\n%d of %d instances missed the 990 ms end-to-end deadline\n",
		missedByTask["total"], len(res.Records))
}
