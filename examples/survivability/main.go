// Survivability: the motivation the paper opens with — "continued
// availability of application functionality" — exercised directly. A node
// crash takes out the Filter subtask's host mid-run; the resource manager
// detects the loss at the next monitoring cycle and relocates (or simply
// re-balances) the stream onto surviving nodes.
//
// The second half swaps the scripted crash for a stochastic fault
// process: every node crashes at random with a 45 s MTBF and an 8 s MTTR,
// messages drop off the wire, and the hardened manager (delivery
// watchdog, staleness window, shutdown cooldown) keeps the pipeline
// alive through whatever schedule the seed draws.
//
//	go run ./examples/survivability
package main

import (
	"fmt"
	"log"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	// A steady 6 000-track workload; node 2 (the Filter home) crashes at
	// t = 20.3 s, mid-pipeline, and recovers 30 s later.
	setup, err := experiment.BenchmarkSetup(workload.NewConstant(6000, 70))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Faults = []core.Fault{{Node: 2, At: 20300 * sim.Millisecond, Duration: 30 * sim.Second}}

	res, err := core.Run(cfg, core.Predictive, []core.TaskSetup{setup})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Println("node 2 (Filter host) crashes at t=20.3s, recovers at t=50.3s")
	fmt.Printf("  instances: %d released, %d completed, %d lost with the node\n",
		m.Periods, m.Completed, m.Periods-m.Completed)
	fmt.Printf("  missed-deadline ratio (lost count as missed): %.1f%%\n\n", m.MissedPct())

	fmt.Println("fail-over timeline:")
	for _, e := range res.Events {
		switch e.Kind {
		case trace.ActionNodeDown, trace.ActionNodeUp, trace.ActionFailover:
			fmt.Printf("  t=%-9v %-10s stage=%d procs=%v\n", e.At, e.Kind, e.Stage, e.Procs)
		}
	}

	fmt.Println("\nper-period completion around the crash:")
	completedBy := map[int]bool{}
	for _, r := range res.Records {
		completedBy[r.Period] = true
	}
	for c := 18; c <= 24; c++ {
		status := "completed"
		if !completedBy[c] {
			status = "LOST (work died with the node)"
		}
		fmt.Printf("  period %d: %s\n", c, status)
	}
	fmt.Println("\nReplication exists for exactly this: with more than one replica the")
	fmt.Println("surviving processes absorb the stream and only the in-flight instance")
	fmt.Println("is lost; with a single process the manager relocates it in one cycle.")

	stochastic()
}

// stochastic reruns the scenario with crashes drawn from an exponential
// MTBF/MTTR process on every node plus a lossy segment, instead of one
// scripted fault. The schedule is a pure function of the seed: rerunning
// with the same seed replays the identical outage pattern.
func stochastic() {
	setup, err := experiment.BenchmarkSetup(workload.NewConstant(6000, 70))
	if err != nil {
		log.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 42
	cfg.Chaos = chaos.Config{
		NodeMTBF: 45 * sim.Second, // each node crashes about every 45 s...
		NodeMTTR: 8 * sim.Second,  // ...and is back roughly 8 s later
		MaxDown:  2,               // never more than 2 of the 6 nodes down at once
	}
	cfg.Network.DropProb = 0.01 // 1% of wire messages vanish
	cfg.Degradation = core.HardenedDegradation()

	res, err := core.Run(cfg, core.Predictive, []core.TaskSetup{setup})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Println("\n--- stochastic variant: 45s MTBF / 8s MTTR on every node, 1% message loss ---")
	fmt.Printf("  crash schedule drawn from seed %d: %d crashes, %d recoveries\n",
		cfg.Seed, m.Crashes, m.Recoveries)
	fmt.Printf("  instances: %d released, %d completed (%.1f%% missed)\n",
		m.Periods, m.Completed, m.MissedPct())
	fmt.Printf("  lossy wire: %d messages dropped, %d retransmitted by the watchdog\n",
		m.DroppedMessages, m.Retransmissions)
	if m.MeanRecoveryMS > 0 {
		fmt.Printf("  mean recovery (crash -> next met deadline): %.0f ms\n", m.MeanRecoveryMS)
	}
	var failovers int
	for _, e := range res.Events {
		if e.Kind == trace.ActionFailover {
			failovers++
		}
	}
	fmt.Printf("  fail-overs performed by the manager: %d\n", failovers)
}
