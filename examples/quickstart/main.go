// Quickstart: build the paper's Table 1 system, run the predictive
// resource manager against a workload step, and print what it did.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/workload"
)

func main() {
	// A step workload: 500 tracks per period, jumping to 8 000 at period
	// 10 — the kind of abrupt change run-time monitoring exists for.
	pattern := workload.NewStep(500, 8000, 30, 10)

	// BenchmarkSetup profiles the benchmark pipeline (once per process)
	// and binds the fitted eq. (3)/(5) regression models to the task.
	setup, err := experiment.BenchmarkSetup(pattern)
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.Run(core.DefaultConfig(), core.Predictive, []core.TaskSetup{setup})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Println("predictive adaptive resource management — workload step 500 → 8000 tracks")
	fmt.Printf("  instances completed: %d/%d, missed deadlines: %d (%.1f%%)\n",
		m.Completed, m.Periods, m.Missed, m.MissedPct())
	fmt.Printf("  mean CPU %.1f%%, mean network %.1f%%, mean replicas %.2f\n",
		m.CPUUtilPct(), m.NetUtilPct(), m.MeanReplicas)
	fmt.Printf("  combined performance metric C = %.1f\n\n", m.Combined())

	fmt.Println("adaptation timeline:")
	for _, e := range res.Events {
		fmt.Println("  ", e)
	}
	fmt.Println("\nper-period latency around the step:")
	for _, r := range res.Records {
		if r.Period >= 8 && r.Period <= 14 {
			fmt.Printf("   %v\n", r)
		}
	}
}
