// Profiling walkthrough: reproduces the paper's §4.2.1.1 methodology for
// one subtask — measure execution latencies over a (data size × CPU
// utilization) grid, fit the per-utilization second-order curves (the "Y"
// lines of Figures 2–3), combine them into the single two-variable
// regression of eq. (3) (the "Y⁻" line), and report goodness of fit.
//
//	go run ./examples/profiling
package main

import (
	"fmt"
	"log"

	"repro/internal/dynbench"
	"repro/internal/profile"
	"repro/internal/regress"
)

func main() {
	spec := dynbench.NewTask(dynbench.DefaultConfig())
	stage := dynbench.FilterStage
	demand := spec.Subtasks[stage].Demand

	utils := []float64{0, 0.2, 0.4, 0.6, 0.8}
	sizes := []int{300, 1500, 3000, 4500, 6000, 7500}

	fmt.Println("profiling Filter over the (utilization × data size) grid...")
	var all []regress.ExecSample
	fmt.Printf("%-6s", "d\\u")
	for _, u := range utils {
		fmt.Printf(" %8.0f%%", u*100)
	}
	fmt.Println(" (latency, ms)")
	for _, items := range sizes {
		fmt.Printf("%-6d", items)
		for _, u := range utils {
			samples, err := profile.ExecSamples(demand,
				profile.ExecGrid{Utils: []float64{u}, Items: []int{items}, Reps: 3}, 7)
			if err != nil {
				log.Fatal(err)
			}
			var mean float64
			for _, s := range samples {
				mean += s.Latency.Milliseconds() / float64(len(samples))
			}
			fmt.Printf(" %9.1f", mean)
			all = append(all, samples...)
		}
		fmt.Println()
	}

	fmt.Println("\nper-utilization second-order fits (the Y curves of Figure 2):")
	for _, u := range utils {
		var sub []regress.ExecSample
		for _, s := range all {
			if s.Util == u {
				sub = append(sub, s)
			}
		}
		a, b, err := regress.FitPerUtilCurve(sub)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  u=%.0f%%: latency ≈ %.4f·d² + %.4f·d ms\n", u*100, a, b)
	}

	model, q, err := regress.FitExecModel(all)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ncombined two-variable model (eq. 3, the Y⁻ curve):")
	fmt.Printf("  %v\n  %v\n", model, q)
	fmt.Println("\npublished Table 2 row for subtask 3:")
	fmt.Printf("  %v\n", regress.PaperExecSubtask3())
	fmt.Println("\n(the fitted d² and d coefficients at u=0 should approach the paper's")
	fmt.Println(" a3 = 0.11816 and b3 = 0.98370, which seed this benchmark's ground truth)")
}
