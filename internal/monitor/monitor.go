// Package monitor implements step 1 of the adaptive resource-management
// process (paper §4.1, Figure 1): run-time monitoring of subtask
// latencies against EQF-assigned individual deadlines, and identification
// of candidate subtasks for replication (slack eroded or deadline missed)
// and for replica shutdown (very high slack).
package monitor

import (
	"fmt"

	"repro/internal/deadline"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
)

// Config holds the monitoring thresholds.
type Config struct {
	// SlackFraction is the minimum slack each subtask must keep on its
	// individual deadline; the paper fixes sl = 0.2·dl(st).
	SlackFraction float64
	// HighSlackFraction marks "very high slack": a subtask whose observed
	// latency is below (1 − HighSlackFraction)·dl(st) becomes a shutdown
	// candidate.
	HighSlackFraction float64
	// SmoothingWindow averages each stage's observed latency over the
	// last N periods before comparing against the slack bands; 0 or 1
	// reacts to single periods (the default — the paper's monitoring is
	// per-period).
	SmoothingWindow int
	// StalenessWindow, when positive, makes AnalyzeAt discard records
	// whose completion is older than this: after a crash freezes the
	// pipeline, an ancient "all fine" reading must not keep steering
	// adaptation. 0 — the default — trusts every record forever.
	StalenessWindow sim.Time
}

// DefaultConfig returns the paper's thresholds: 20 % required slack and a
// 60 % very-high-slack mark, reacting per period.
func DefaultConfig() Config {
	return Config{SlackFraction: 0.2, HighSlackFraction: 0.6, SmoothingWindow: 1}
}

func (c Config) validate() error {
	if c.SlackFraction < 0 || c.SlackFraction >= 1 {
		return fmt.Errorf("monitor: slack fraction %v out of [0,1)", c.SlackFraction)
	}
	if c.HighSlackFraction <= c.SlackFraction || c.HighSlackFraction >= 1 {
		return fmt.Errorf("monitor: high-slack fraction %v must be in (%v,1)",
			c.HighSlackFraction, c.SlackFraction)
	}
	if c.SmoothingWindow < 0 {
		return fmt.Errorf("monitor: negative smoothing window %d", c.SmoothingWindow)
	}
	if c.StalenessWindow < 0 {
		return fmt.Errorf("monitor: negative staleness window %v", c.StalenessWindow)
	}
	return nil
}

// Analysis lists the candidate stages detected in one period.
type Analysis struct {
	// Replicate are replicable stages whose slack eroded below the
	// required minimum (or that missed their deadline outright).
	Replicate []int
	// Shutdown are replicated stages showing very high slack.
	Shutdown []int
}

// Monitor watches one task's periodic records.
type Monitor struct {
	cfg        Config
	spec       task.Spec
	assignment deadline.Assignment
	// windows smooth each stage's observed latency when SmoothingWindow
	// exceeds one.
	windows []*stats.SlidingWindow
	// staleDiscards counts records AnalyzeAt rejected for age.
	staleDiscards int
}

// New returns a monitor for the task with an initial deadline assignment.
func New(cfg Config, spec task.Spec, initial deadline.Assignment) (*Monitor, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(initial.Subtask) != len(spec.Subtasks) {
		return nil, fmt.Errorf("monitor: assignment covers %d subtasks, task has %d",
			len(initial.Subtask), len(spec.Subtasks))
	}
	m := &Monitor{cfg: cfg, spec: spec, assignment: initial}
	if cfg.SmoothingWindow > 1 {
		m.windows = make([]*stats.SlidingWindow, len(spec.Subtasks))
		for i := range m.windows {
			m.windows[i] = stats.NewSlidingWindow(cfg.SmoothingWindow)
		}
	}
	return m, nil
}

// Config returns the thresholds in force.
func (m *Monitor) Config() Config { return m.cfg }

// Assignment returns the current per-subtask/message deadlines.
func (m *Monitor) Assignment() deadline.Assignment { return m.assignment }

// SetAssignment installs re-derived deadlines (after every adaptation
// action, per §4.1).
func (m *Monitor) SetAssignment(a deadline.Assignment) {
	if len(a.Subtask) != len(m.spec.Subtasks) {
		panic(fmt.Sprintf("monitor: assignment covers %d subtasks, task has %d",
			len(a.Subtask), len(m.spec.Subtasks)))
	}
	m.assignment = a
}

// SubtaskDeadline returns dl(st) for the stage.
func (m *Monitor) SubtaskDeadline(stage int) sim.Time { return m.assignment.Subtask[stage] }

// StageSlack is one stage's observed latency measured against its
// EQF-assigned individual deadline.
type StageSlack struct {
	Stage    int
	Latency  sim.Time // observed exec latency this period (unsmoothed)
	Deadline sim.Time // dl(st) in force when the period completed
	// Ratio is (Deadline − Latency)/Deadline: 1 means the stage finished
	// instantly, 0 means it finished exactly at its deadline, negative
	// means it overran.
	Ratio float64
}

// StageSlacks measures every stage of a completed record against the
// current assignment, without mutating the smoothing windows. It is the
// read-only companion to Analyze, for telemetry and reporting.
func (m *Monitor) StageSlacks(rec *task.PeriodRecord) []StageSlack {
	if rec == nil {
		return nil
	}
	if len(rec.Stages) != len(m.spec.Subtasks) {
		panic(fmt.Sprintf("monitor: record has %d stages, task has %d",
			len(rec.Stages), len(m.spec.Subtasks)))
	}
	out := make([]StageSlack, len(rec.Stages))
	for i := range rec.Stages {
		lat := rec.Stages[i].ExecLatency()
		dl := m.assignment.Subtask[i]
		out[i] = StageSlack{
			Stage:    i,
			Latency:  lat,
			Deadline: dl,
			Ratio:    float64(dl-lat) / float64(dl),
		}
	}
	return out
}

// AnalyzeAt is Analyze with a staleness gate: a record completed more
// than StalenessWindow before now is discarded (analyzed as nil) instead
// of steering adaptation with obsolete observations. With a zero window
// it is exactly Analyze.
func (m *Monitor) AnalyzeAt(rec *task.PeriodRecord, now sim.Time) Analysis {
	if rec != nil && m.cfg.StalenessWindow > 0 && rec.CompletedAt < now-m.cfg.StalenessWindow {
		m.staleDiscards++
		rec = nil
	}
	return m.Analyze(rec)
}

// StaleDiscards returns how many records AnalyzeAt rejected for age.
func (m *Monitor) StaleDiscards() int { return m.staleDiscards }

// Analyze classifies every stage of a completed period record.
func (m *Monitor) Analyze(rec *task.PeriodRecord) Analysis {
	if rec == nil {
		return Analysis{}
	}
	if len(rec.Stages) != len(m.spec.Subtasks) {
		panic(fmt.Sprintf("monitor: record has %d stages, task has %d",
			len(rec.Stages), len(m.spec.Subtasks)))
	}
	var out Analysis
	for i, st := range m.spec.Subtasks {
		lat := rec.Stages[i].ExecLatency()
		if m.windows != nil {
			m.windows[i].Push(lat.Milliseconds())
			lat = sim.FromMillis(m.windows[i].Mean())
		}
		if !st.Replicable {
			continue
		}
		dl := m.assignment.Subtask[i]
		required := dl - sim.Time(m.cfg.SlackFraction*float64(dl))
		switch {
		case lat > required:
			// Slack eroded below the minimum, or the deadline was
			// missed outright: candidate for replication.
			out.Replicate = append(out.Replicate, i)
		case rec.Stages[i].Replicas > 1 &&
			lat < sim.Time((1-m.cfg.HighSlackFraction)*float64(dl)):
			// Very high slack with spare replicas: candidate for
			// de-allocation.
			out.Shutdown = append(out.Shutdown, i)
		}
	}
	return out
}
