package monitor

import (
	"math/rand/v2"
	"testing"

	"repro/internal/deadline"
	"repro/internal/sim"
	"repro/internal/task"
)

const ms = sim.Millisecond

func demand(items int, _ *rand.Rand) sim.Time { return sim.Time(items) * sim.Microsecond }

func spec() task.Spec {
	return task.Spec{
		Name:     "T",
		Period:   sim.Second,
		Deadline: 990 * ms,
		Subtasks: []task.SubtaskSpec{
			{Name: "a", Demand: demand, OutBytesPerItem: 80},
			{Name: "b", Replicable: true, Demand: demand, OutBytesPerItem: 80},
			{Name: "c", Replicable: true, Demand: demand},
		},
	}
}

func assignment() deadline.Assignment {
	return deadline.Assignment{
		Subtask: []sim.Time{100 * ms, 200 * ms, 300 * ms},
		Message: []sim.Time{50 * ms, 50 * ms, 0},
	}
}

func newMonitor(t *testing.T) *Monitor {
	t.Helper()
	m, err := New(DefaultConfig(), spec(), assignment())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// record builds a PeriodRecord with the given exec latencies and replica
// counts per stage.
func record(lat []sim.Time, replicas []int) *task.PeriodRecord {
	rec := &task.PeriodRecord{Period: 1, Items: 100, Stages: make([]task.StageObservation, len(lat))}
	var t sim.Time
	for i := range lat {
		rec.Stages[i] = task.StageObservation{
			ReadyAt:     t,
			DoneAt:      t + lat[i],
			DeliveredAt: t + lat[i],
			Replicas:    replicas[i],
		}
		t += lat[i]
	}
	rec.CompletedAt = t
	rec.Deadline = 990 * ms
	return rec
}

func TestConfigValidation(t *testing.T) {
	cases := map[string]Config{
		"negative slack":      {SlackFraction: -0.1, HighSlackFraction: 0.6},
		"slack ≥ 1":           {SlackFraction: 1, HighSlackFraction: 0.6},
		"high below slack":    {SlackFraction: 0.5, HighSlackFraction: 0.4},
		"high slack too high": {SlackFraction: 0.2, HighSlackFraction: 1},
	}
	for name, cfg := range cases {
		if _, err := New(cfg, spec(), assignment()); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if _, err := New(DefaultConfig(), spec(), deadline.Assignment{Subtask: []sim.Time{ms}}); err == nil {
		t.Error("short assignment accepted")
	}
	bad := spec()
	bad.Name = ""
	if _, err := New(DefaultConfig(), bad, assignment()); err == nil {
		t.Error("invalid spec accepted")
	}
}

func TestHealthyPeriodNoCandidates(t *testing.T) {
	m := newMonitor(t)
	// Latencies at 50-60 % of the subtask deadlines: inside the required
	// slack, above the very-high-slack mark.
	a := m.Analyze(record([]sim.Time{60 * ms, 120 * ms, 180 * ms}, []int{1, 1, 1}))
	if len(a.Replicate) != 0 || len(a.Shutdown) != 0 {
		t.Errorf("analysis = %+v, want empty", a)
	}
}

func TestSlackErosionFlagsReplication(t *testing.T) {
	m := newMonitor(t)
	// Stage 1 (dl 200ms, required ≤160ms) at 170ms → candidate.
	a := m.Analyze(record([]sim.Time{60 * ms, 170 * ms, 180 * ms}, []int{1, 1, 1}))
	if len(a.Replicate) != 1 || a.Replicate[0] != 1 {
		t.Errorf("replicate = %v, want [1]", a.Replicate)
	}
}

func TestOutrightMissFlagsReplication(t *testing.T) {
	m := newMonitor(t)
	a := m.Analyze(record([]sim.Time{60 * ms, 500 * ms, 180 * ms}, []int{1, 2, 1}))
	if len(a.Replicate) != 1 || a.Replicate[0] != 1 {
		t.Errorf("replicate = %v, want [1]", a.Replicate)
	}
}

func TestNonReplicableNeverFlagged(t *testing.T) {
	m := newMonitor(t)
	// Stage 0 misses massively but is not replicable.
	a := m.Analyze(record([]sim.Time{400 * ms, 120 * ms, 180 * ms}, []int{1, 1, 1}))
	if len(a.Replicate) != 0 {
		t.Errorf("non-replicable stage flagged: %v", a.Replicate)
	}
}

func TestVeryHighSlackFlagsShutdown(t *testing.T) {
	m := newMonitor(t)
	// Stage 2 (dl 300ms) at 50ms < 40 % of dl, with 3 replicas.
	a := m.Analyze(record([]sim.Time{60 * ms, 120 * ms, 50 * ms}, []int{1, 1, 3}))
	if len(a.Shutdown) != 1 || a.Shutdown[0] != 2 {
		t.Errorf("shutdown = %v, want [2]", a.Shutdown)
	}
}

func TestHighSlackWithSingleReplicaNotFlagged(t *testing.T) {
	m := newMonitor(t)
	a := m.Analyze(record([]sim.Time{60 * ms, 120 * ms, 50 * ms}, []int{1, 1, 1}))
	if len(a.Shutdown) != 0 {
		t.Errorf("shutdown with one replica: %v", a.Shutdown)
	}
}

func TestBoundaryIsNotErosion(t *testing.T) {
	m := newMonitor(t)
	// Exactly at dl − sl: not a candidate (strictly greater required).
	a := m.Analyze(record([]sim.Time{60 * ms, 160 * ms, 180 * ms}, []int{1, 1, 1}))
	if len(a.Replicate) != 0 {
		t.Errorf("boundary latency flagged: %v", a.Replicate)
	}
}

func TestAnalyzeNilRecord(t *testing.T) {
	m := newMonitor(t)
	a := m.Analyze(nil)
	if len(a.Replicate) != 0 || len(a.Shutdown) != 0 {
		t.Error("nil record produced candidates")
	}
}

func TestAnalyzeMismatchedRecordPanics(t *testing.T) {
	m := newMonitor(t)
	defer func() {
		if recover() == nil {
			t.Error("mismatched record did not panic")
		}
	}()
	m.Analyze(&task.PeriodRecord{Stages: make([]task.StageObservation, 1)})
}

func TestSetAssignment(t *testing.T) {
	m := newMonitor(t)
	a := assignment()
	a.Subtask[1] = 500 * ms
	m.SetAssignment(a)
	if m.SubtaskDeadline(1) != 500*ms {
		t.Errorf("SubtaskDeadline(1) = %v", m.SubtaskDeadline(1))
	}
	if m.Assignment().Subtask[1] != 500*ms {
		t.Error("Assignment not updated")
	}
	defer func() {
		if recover() == nil {
			t.Error("short SetAssignment did not panic")
		}
	}()
	m.SetAssignment(deadline.Assignment{Subtask: []sim.Time{ms}})
}

func TestConfigAccessorAndDefaults(t *testing.T) {
	m := newMonitor(t)
	if m.Config() != DefaultConfig() {
		t.Error("Config accessor wrong")
	}
	d := DefaultConfig()
	if d.SlackFraction != 0.2 {
		t.Errorf("paper's sl = 0.2·dl, got %v", d.SlackFraction)
	}
}

func TestSmoothingWindowDampsSpikes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SmoothingWindow = 3
	m, err := New(cfg, spec(), assignment())
	if err != nil {
		t.Fatal(err)
	}
	// Two healthy periods then one spike at stage 1 (dl 200ms): the
	// 3-period mean (120+120+190)/3 ≈ 143ms stays inside the band.
	m.Analyze(record([]sim.Time{60 * ms, 120 * ms, 180 * ms}, []int{1, 1, 1}))
	m.Analyze(record([]sim.Time{60 * ms, 120 * ms, 180 * ms}, []int{1, 1, 1}))
	a := m.Analyze(record([]sim.Time{60 * ms, 190 * ms, 180 * ms}, []int{1, 1, 1}))
	if len(a.Replicate) != 0 {
		t.Errorf("one-period spike flagged despite smoothing: %v", a.Replicate)
	}
	// Persistent erosion still flags once the mean crosses the band.
	m.Analyze(record([]sim.Time{60 * ms, 190 * ms, 180 * ms}, []int{1, 1, 1}))
	a = m.Analyze(record([]sim.Time{60 * ms, 190 * ms, 180 * ms}, []int{1, 1, 1}))
	if len(a.Replicate) != 1 || a.Replicate[0] != 1 {
		t.Errorf("persistent erosion not flagged: %v", a.Replicate)
	}
}

func TestSmoothingWindowValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SmoothingWindow = -1
	if _, err := New(cfg, spec(), assignment()); err == nil {
		t.Error("negative smoothing window accepted")
	}
}

func TestDefaultSmoothingIsPerPeriod(t *testing.T) {
	m := newMonitor(t)
	// A single spike flags immediately with the default window of 1.
	a := m.Analyze(record([]sim.Time{60 * ms, 190 * ms, 180 * ms}, []int{1, 1, 1}))
	if len(a.Replicate) != 1 {
		t.Errorf("per-period monitoring missed a spike: %v", a.Replicate)
	}
}
