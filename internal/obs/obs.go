// Package obs is the wall-clock observability layer: structured logging
// with request/job correlation IDs, and concurrency-safe runtime metrics
// for the serving path. It is the real-time counterpart of
// internal/telemetry — telemetry measures the *simulated* world (spans,
// latencies, forecast error in virtual nanoseconds); obs measures the
// *process serving it* (HTTP request latency, queue depth, scheduler
// cell wait, disk-cache hit time, all in wall-clock time). The two never
// mix: a simulation result is a pure function of its config and seed, so
// nothing in this package may influence — or appear inside — simulation
// output. With no logger installed and no Metrics attached, the serving
// path behaves exactly as before.
package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
)

// RequestIDHeader is the HTTP header carrying a request correlation ID.
// The client sends one with every call; the server honours an incoming
// value (so daemon logs correlate with client logs) or mints its own,
// and always echoes the final ID on the response.
const RequestIDHeader = "X-Request-Id"

// procID distinguishes processes in aggregated logs: request IDs are
// "r-<proc>-<seq>", so two daemons behind one collector never collide.
var procID = func() string {
	var b [3]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "000000"
	}
	return hex.EncodeToString(b[:])
}()

var reqSeq atomic.Uint64

// NewRequestID mints a process-unique request correlation ID.
func NewRequestID() string {
	return fmt.Sprintf("r-%s-%d", procID, reqSeq.Add(1))
}

// LogFormats documents the accepted -log-format values.
const LogFormats = "text | json"

// NewLogger builds a structured logger writing to w in the given format
// ("text" for human-readable key=value lines, "json" for one JSON object
// per line — the shape log collectors ingest).
func NewLogger(w io.Writer, format string, level slog.Level) (*slog.Logger, error) {
	opts := &slog.HandlerOptions{Level: level}
	switch format {
	case "", "text":
		return slog.New(slog.NewTextHandler(w, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	default:
		return nil, fmt.Errorf("obs: unknown log format %q (want %s)", format, LogFormats)
	}
}

// ctxKey keys obs values in a context; distinct types prevent collisions
// with other packages' context values.
type ctxKey int

const (
	reqIDKey ctxKey = iota
	jobIDKey
)

// WithRequestID returns a context carrying the request correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, reqIDKey, id)
}

// RequestID extracts the request correlation ID, or "" when absent.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(reqIDKey).(string)
	return id
}

// WithJobID returns a context carrying the job correlation ID, so work
// executed on behalf of a job (scheduler cells, remote delegation) can
// be tied back to the submission that caused it.
func WithJobID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, jobIDKey, id)
}

// JobID extracts the job correlation ID, or "" when absent.
func JobID(ctx context.Context) string {
	id, _ := ctx.Value(jobIDKey).(string)
	return id
}

// ContextAttrs renders the correlation IDs present in ctx as slog
// attributes, in a fixed order, for request- or job-scoped log lines.
func ContextAttrs(ctx context.Context) []any {
	var attrs []any
	if id := RequestID(ctx); id != "" {
		attrs = append(attrs, slog.String("req", id))
	}
	if id := JobID(ctx); id != "" {
		attrs = append(attrs, slog.String("job", id))
	}
	return attrs
}
