package obs

import (
	"io"
	"sync"
	"time"

	"repro/internal/sim"
	"repro/internal/telemetry"
)

// Metrics is the concurrency-safe wall-clock metric surface of one
// serving process. It reuses telemetry's registry and HDR histograms —
// the buckets are nanosecond-resolution either way — but owns the lock
// the simulation-side registry deliberately lacks (handlers, workers and
// scrapes all record concurrently). Durations are recorded in wall-clock
// nanoseconds and exposed in seconds, per Prometheus convention.
type Metrics struct {
	mu  sync.Mutex
	reg *telemetry.Registry

	// live values behind the gauges; Gauge itself is set-only.
	inFlight int64
	sseSubs  int64
}

// NewMetrics returns an empty metric surface.
func NewMetrics() *Metrics {
	return &Metrics{reg: telemetry.NewRegistry()}
}

// statusClass buckets an HTTP status into "2xx"/"3xx"/"4xx"/"5xx" so the
// per-route histograms keep bounded label cardinality.
func statusClass(status int) string {
	switch {
	case status < 300:
		return "2xx"
	case status < 400:
		return "3xx"
	case status < 500:
		return "4xx"
	default:
		return "5xx"
	}
}

// ObserveHTTP records one served request: a latency histogram per
// (route, status class) and a request counter with the same labels.
func (m *Metrics) ObserveHTTP(route string, status int, d time.Duration) {
	if m == nil {
		return
	}
	labels := []telemetry.Label{
		{Key: "route", Value: route},
		{Key: "status", Value: statusClass(status)},
	}
	m.mu.Lock()
	m.reg.Counter("obs_http_requests_total", labels...).Inc()
	m.reg.Histogram("obs_http_request_duration_seconds", labels...).Record(sim.Time(d.Nanoseconds()))
	m.mu.Unlock()
}

// SetQueueDepth records the number of jobs admitted but not yet holding
// a worker slot.
func (m *Metrics) SetQueueDepth(n int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.reg.Gauge("obs_queue_depth").Set(float64(n))
	m.mu.Unlock()
}

// AddInFlight adjusts the in-flight job gauge (admitted, not yet
// terminal) by delta.
func (m *Metrics) AddInFlight(delta int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.inFlight += int64(delta)
	m.reg.Gauge("obs_jobs_in_flight").Set(float64(m.inFlight))
	m.mu.Unlock()
}

// AddSSESubscribers adjusts the live SSE subscriber gauge by delta.
func (m *Metrics) AddSSESubscribers(delta int) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.sseSubs += int64(delta)
	m.reg.Gauge("obs_sse_subscribers").Set(float64(m.sseSubs))
	m.mu.Unlock()
}

// Inc bumps a named counter — the generic hook for event-shaped metrics
// (jobs submitted/finished, rejections) that need no histogram.
func (m *Metrics) Inc(name string, labels ...telemetry.Label) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.reg.Counter(name, labels...).Inc()
	m.mu.Unlock()
}

// The scheduler-observer half: these four methods satisfy
// experiment.WallObserver, so a Metrics can be installed directly with
// experiment.SetWallObserver and every scheduled simulation feeds the
// serving metrics.

// CellQueued counts one run cell entering the shared scheduler queue.
func (m *Metrics) CellQueued() {
	m.Inc("obs_sched_cells_queued_total")
}

// CellStarted records how long a cell waited in the queue before a
// worker picked it up.
func (m *Metrics) CellStarted(wait time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.reg.Histogram("obs_sched_cell_wait_seconds").Record(sim.Time(wait.Nanoseconds()))
	m.mu.Unlock()
}

// CellFinished records a cell's execution time labelled by how it
// resolved (simulated, disk_hit, remote, cancelled, error).
func (m *Metrics) CellFinished(outcome string, run time.Duration) {
	if m == nil {
		return
	}
	label := telemetry.Label{Key: "outcome", Value: outcome}
	m.mu.Lock()
	m.reg.Counter("obs_sched_cells_finished_total", label).Inc()
	m.reg.Histogram("obs_sched_cell_run_seconds", label).Record(sim.Time(run.Nanoseconds()))
	m.mu.Unlock()
}

// DiskHit records the wall-clock latency of one persistent-cache read
// that returned a cached outcome.
func (m *Metrics) DiskHit(d time.Duration) {
	if m == nil {
		return
	}
	m.mu.Lock()
	m.reg.Histogram("obs_disk_cache_hit_seconds").Record(sim.Time(d.Nanoseconds()))
	m.mu.Unlock()
}

// Values renders counters and gauges as a flat name → value map (the
// /v1/stats embedding).
func (m *Metrics) Values() map[string]float64 {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.Values()
}

// WritePrometheus renders every metric in Prometheus text exposition
// format.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	if m == nil {
		return nil
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.reg.WritePrometheus(w)
}
