package obs

import (
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNewLoggerFormats(t *testing.T) {
	var text strings.Builder
	log, err := NewLogger(&text, "text", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	if !strings.Contains(text.String(), "msg=hello") || !strings.Contains(text.String(), "k=v") {
		t.Fatalf("text handler output %q lacks key=value rendering", text.String())
	}

	var jsonBuf strings.Builder
	log, err = NewLogger(&jsonBuf, "json", slog.LevelInfo)
	if err != nil {
		t.Fatal(err)
	}
	log.Info("hello", "k", "v")
	var rec map[string]any
	if err := json.Unmarshal([]byte(jsonBuf.String()), &rec); err != nil {
		t.Fatalf("json handler emitted invalid JSON %q: %v", jsonBuf.String(), err)
	}
	if rec["msg"] != "hello" || rec["k"] != "v" {
		t.Fatalf("json record = %v, want msg=hello k=v", rec)
	}

	// The empty format defaults to text (binaries pass the flag through
	// verbatim), anything else is a hard error at flag-parse time.
	if _, err := NewLogger(&text, "", slog.LevelInfo); err != nil {
		t.Fatalf("empty format should default to text, got %v", err)
	}
	if _, err := NewLogger(&text, "yaml", slog.LevelInfo); err == nil {
		t.Fatal("format yaml should be rejected")
	}
}

func TestRequestIDsAreUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewRequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
		if !strings.HasPrefix(id, "r-") {
			t.Fatalf("request id %q lacks r- prefix", id)
		}
	}
}

func TestContextCorrelation(t *testing.T) {
	ctx := context.Background()
	if RequestID(ctx) != "" || JobID(ctx) != "" {
		t.Fatal("empty context should carry no IDs")
	}
	ctx = WithRequestID(ctx, "r-1")
	ctx = WithJobID(ctx, "job-7")
	if RequestID(ctx) != "r-1" || JobID(ctx) != "job-7" {
		t.Fatalf("round trip lost IDs: req=%q job=%q", RequestID(ctx), JobID(ctx))
	}
	attrs := ContextAttrs(ctx)
	if len(attrs) != 2 {
		t.Fatalf("ContextAttrs = %v, want [req job]", attrs)
	}
}

func TestMetricsExposition(t *testing.T) {
	m := NewMetrics()
	m.ObserveHTTP("GET /v1/jobs/{id}", 200, 5*time.Millisecond)
	m.ObserveHTTP("GET /v1/jobs/{id}", 404, time.Millisecond)
	m.SetQueueDepth(3)
	m.AddInFlight(2)
	m.AddInFlight(-1)
	m.AddSSESubscribers(1)
	m.CellQueued()
	m.CellStarted(2 * time.Millisecond)
	m.CellFinished("simulated", 10*time.Millisecond)
	m.DiskHit(300 * time.Microsecond)

	vals := m.Values()
	check := func(name string, want float64) {
		t.Helper()
		if got := vals[name]; got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check(`obs_http_requests_total{route="GET /v1/jobs/{id}",status="2xx"}`, 1)
	check(`obs_http_requests_total{route="GET /v1/jobs/{id}",status="4xx"}`, 1)
	check("obs_queue_depth", 3)
	check("obs_jobs_in_flight", 1)
	check("obs_sse_subscribers", 1)
	check("obs_sched_cells_queued_total", 1)
	check(`obs_sched_cells_finished_total{outcome="simulated"}`, 1)

	var b strings.Builder
	if err := m.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`obs_http_request_duration_seconds_count{route="GET /v1/jobs/{id}",status="2xx"} 1`,
		"obs_sched_cell_wait_seconds_count 1",
		`obs_sched_cell_run_seconds_count{outcome="simulated"} 1`,
		"obs_disk_cache_hit_seconds_count 1",
	} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("exposition lacks %q", want)
		}
	}
}

// TestMetricsNilSafe pins the zero-overhead contract: every method on a
// nil *Metrics is a no-op, so un-instrumented paths need no guards.
func TestMetricsNilSafe(t *testing.T) {
	var m *Metrics
	m.ObserveHTTP("x", 200, time.Millisecond)
	m.SetQueueDepth(1)
	m.AddInFlight(1)
	m.AddSSESubscribers(1)
	m.Inc("x")
	m.CellQueued()
	m.CellStarted(time.Millisecond)
	m.CellFinished("simulated", time.Millisecond)
	m.DiskHit(time.Millisecond)
	if m.Values() != nil {
		t.Fatal("nil metrics should render no values")
	}
	if err := m.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

// TestMetricsConcurrent exercises the lock under the race detector.
func TestMetricsConcurrent(t *testing.T) {
	m := NewMetrics()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				m.ObserveHTTP("GET /v1/stats", 200, time.Microsecond)
				m.CellFinished("simulated", time.Microsecond)
				m.AddInFlight(1)
				m.AddInFlight(-1)
				_ = m.Values()
			}
		}()
	}
	wg.Wait()
	if got := m.Values()[`obs_http_requests_total{route="GET /v1/stats",status="2xx"}`]; got != 1600 {
		t.Fatalf("concurrent counter = %v, want 1600", got)
	}
}
