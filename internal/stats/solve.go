package stats

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a linear system has no unique solution at
// working precision.
var ErrSingular = errors.New("stats: singular or rank-deficient system")

// SolveGauss solves the square system A·x = b by Gaussian elimination with
// partial pivoting. A and b are not modified.
func SolveGauss(a *Matrix, b []float64) ([]float64, error) {
	n := a.Rows()
	if a.Cols() != n {
		return nil, fmt.Errorf("stats: SolveGauss needs a square matrix, got %d×%d", a.Rows(), a.Cols())
	}
	if len(b) != n {
		return nil, fmt.Errorf("stats: SolveGauss rhs length %d, want %d", len(b), n)
	}
	m := a.Clone()
	x := make([]float64, n)
	copy(x, b)

	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in this column at or below the
		// diagonal.
		pivot, pmax := col, math.Abs(m.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(m.At(r, col)); v > pmax {
				pivot, pmax = r, v
			}
		}
		if pmax == 0 || math.IsNaN(pmax) {
			return nil, ErrSingular
		}
		if pivot != col {
			for j := col; j < n; j++ {
				v1, v2 := m.At(col, j), m.At(pivot, j)
				m.Set(col, j, v2)
				m.Set(pivot, j, v1)
			}
			x[col], x[pivot] = x[pivot], x[col]
		}
		d := m.At(col, col)
		for r := col + 1; r < n; r++ {
			f := m.At(r, col) / d
			if f == 0 {
				continue
			}
			for j := col; j < n; j++ {
				m.Set(r, j, m.At(r, j)-f*m.At(col, j))
			}
			x[r] -= f * x[col]
		}
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= m.At(i, j) * x[j]
		}
		d := m.At(i, i)
		if d == 0 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// LeastSquares solves min ‖A·x − b‖₂ for an m×n matrix A with m ≥ n using
// Householder QR, which is numerically safer than normal equations.
// A and b are not modified.
func LeastSquares(a *Matrix, b []float64) ([]float64, error) {
	rows, cols := a.Rows(), a.Cols()
	if rows < cols {
		return nil, fmt.Errorf("stats: LeastSquares is underdetermined: %d rows < %d cols", rows, cols)
	}
	if len(b) != rows {
		return nil, fmt.Errorf("stats: LeastSquares rhs length %d, want %d", len(b), rows)
	}
	r := a.Clone()
	y := make([]float64, rows)
	copy(y, b)

	// Scale for relative rank tests: an exactly rank-deficient matrix
	// leaves O(machine-epsilon) residues after the reflections, so
	// singularity is judged relative to the matrix magnitude.
	var scale float64
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			if v := math.Abs(r.At(i, j)); v > scale {
				scale = v
			}
		}
	}
	if scale == 0 {
		return nil, ErrSingular
	}
	tol := 1e-12 * scale

	// Householder reflections, applied to R and y simultaneously.
	for k := 0; k < cols; k++ {
		// Compute the norm of column k below (and including) the diagonal.
		var norm float64
		for i := k; i < rows; i++ {
			v := r.At(i, k)
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm <= tol {
			return nil, ErrSingular
		}
		if r.At(k, k) > 0 {
			norm = -norm
		}
		// Householder vector v, stored temporarily.
		v := make([]float64, rows-k)
		v[0] = r.At(k, k) - norm
		for i := k + 1; i < rows; i++ {
			v[i-k] = r.At(i, k)
		}
		var vnorm2 float64
		for _, vi := range v {
			vnorm2 += vi * vi
		}
		if vnorm2 == 0 {
			return nil, ErrSingular
		}
		// Apply H = I − 2·v·vᵀ/(vᵀv) to the trailing submatrix of R.
		for j := k; j < cols; j++ {
			var dot float64
			for i := k; i < rows; i++ {
				dot += v[i-k] * r.At(i, j)
			}
			f := 2 * dot / vnorm2
			for i := k; i < rows; i++ {
				r.Set(i, j, r.At(i, j)-f*v[i-k])
			}
		}
		// And to y.
		var dot float64
		for i := k; i < rows; i++ {
			dot += v[i-k] * y[i]
		}
		f := 2 * dot / vnorm2
		for i := k; i < rows; i++ {
			y[i] -= f * v[i-k]
		}
	}
	// Back substitution on the upper-triangular n×n block.
	x := make([]float64, cols)
	for i := cols - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < cols; j++ {
			s -= r.At(i, j) * x[j]
		}
		d := r.At(i, i)
		if math.Abs(d) <= tol || math.IsNaN(d) {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}
