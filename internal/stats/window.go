package stats

import "fmt"

// SlidingWindow keeps the most recent capacity observations and exposes
// their mean. The run-time monitor uses it to smooth per-period latency
// and utilization samples.
type SlidingWindow struct {
	buf  []float64
	next int
	full bool
	sum  float64
}

// NewSlidingWindow returns a window of the given capacity (≥ 1).
func NewSlidingWindow(capacity int) *SlidingWindow {
	if capacity < 1 {
		panic(fmt.Sprintf("stats: SlidingWindow capacity %d < 1", capacity))
	}
	return &SlidingWindow{buf: make([]float64, capacity)}
}

// Push adds an observation, evicting the oldest when full.
func (w *SlidingWindow) Push(x float64) {
	if w.full {
		w.sum -= w.buf[w.next]
	}
	w.buf[w.next] = x
	w.sum += x
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
}

// Len returns the number of observations currently held.
func (w *SlidingWindow) Len() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Mean returns the mean of held observations; it panics when empty.
func (w *SlidingWindow) Mean() float64 {
	n := w.Len()
	if n == 0 {
		panic("stats: Mean of empty SlidingWindow")
	}
	return w.sum / float64(n)
}

// Last returns the most recent observation; it panics when empty.
func (w *SlidingWindow) Last() float64 {
	if w.Len() == 0 {
		panic("stats: Last of empty SlidingWindow")
	}
	i := w.next - 1
	if i < 0 {
		i = len(w.buf) - 1
	}
	return w.buf[i]
}

// Reset empties the window.
func (w *SlidingWindow) Reset() {
	w.next, w.full, w.sum = 0, false, 0
}

// EWMA is an exponentially weighted moving average with smoothing factor
// alpha in (0, 1]; larger alpha weights recent samples more.
type EWMA struct {
	alpha float64
	value float64
	init  bool
}

// NewEWMA returns an EWMA with the given smoothing factor.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("stats: EWMA alpha %v out of (0,1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Push folds in an observation and returns the updated average.
func (e *EWMA) Push(x float64) float64 {
	if !e.init {
		e.value, e.init = x, true
	} else {
		e.value = e.alpha*x + (1-e.alpha)*e.value
	}
	return e.value
}

// Value returns the current average; it panics before the first Push.
func (e *EWMA) Value() float64 {
	if !e.init {
		panic("stats: Value of EWMA before first Push")
	}
	return e.value
}

// Initialized reports whether at least one observation has been pushed.
func (e *EWMA) Initialized() bool { return e.init }
