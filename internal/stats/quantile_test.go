package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
)

func mustPanic(t *testing.T, name string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", name)
		}
	}()
	fn()
}

func TestBucketQuantileUniform(t *testing.T) {
	// 10 unit-wide buckets with equal counts approximate Uniform(0, 10):
	// every percentile should come back within one bucket width.
	var buckets []Bucket
	for i := 0; i < 10; i++ {
		buckets = append(buckets, Bucket{Lo: float64(i), Hi: float64(i + 1), Count: 100})
	}
	for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
		got := BucketQuantile(buckets, p)
		want := p / 10
		if math.Abs(got-want) > 1 {
			t.Errorf("p%.0f: got %v, want ~%v", p, got, want)
		}
	}
}

func TestBucketQuantileSkipsEmptyBuckets(t *testing.T) {
	buckets := []Bucket{
		{Lo: 0, Hi: 1, Count: 0},
		{Lo: 1, Hi: 2, Count: 4},
		{Lo: 2, Hi: 3, Count: 0},
		{Lo: 3, Hi: 4, Count: 4},
	}
	if got := BucketQuantile(buckets, 0); got < 1 || got > 2 {
		t.Errorf("p0 = %v, want inside (1,2]", got)
	}
	if got := BucketQuantile(buckets, 100); got < 3 || got > 4 {
		t.Errorf("p100 = %v, want inside (3,4]", got)
	}
}

func TestBucketQuantileVsExact(t *testing.T) {
	// Bucket a concrete sample and check the interpolated quantiles stay
	// within one bucket width of the exact sorted-slice quantiles.
	rng := rand.New(rand.NewPCG(7, 11))
	var xs []float64
	const width = 0.5
	buckets := make([]Bucket, 40)
	for i := range buckets {
		buckets[i].Lo = float64(i) * width
		buckets[i].Hi = float64(i+1) * width
	}
	for i := 0; i < 5000; i++ {
		x := rng.Float64() * 20
		xs = append(xs, x)
		buckets[int(x/width)].Count++
	}
	for _, p := range []float64{1, 25, 50, 75, 95, 99} {
		got := BucketQuantile(buckets, p)
		want := Percentile(xs, p)
		if math.Abs(got-want) > width {
			t.Errorf("p%.0f: bucketed %v vs exact %v (tolerance %v)", p, got, want, width)
		}
	}
}

func TestBucketQuantileErrors(t *testing.T) {
	buckets := []Bucket{{Lo: 0, Hi: 1, Count: 1}}
	mustPanic(t, "p out of range", func() { BucketQuantile(buckets, -1) })
	mustPanic(t, "p out of range", func() { BucketQuantile(buckets, 101) })
	mustPanic(t, "empty histogram", func() { BucketQuantile([]Bucket{{Lo: 0, Hi: 1}}, 50) })
}

func TestP2QuantileSmallSampleIsExact(t *testing.T) {
	e := NewP2Quantile(50)
	for _, x := range []float64{3, 1, 2} {
		e.Push(x)
	}
	if got, want := e.Value(), Percentile([]float64{3, 1, 2}, 50); got != want {
		t.Errorf("small-sample p50 = %v, want exact %v", got, want)
	}
	if e.N() != 3 {
		t.Errorf("N = %d, want 3", e.N())
	}
}

func TestP2QuantileVsExactSorted(t *testing.T) {
	// The acceptance check for the streaming estimator: against the exact
	// sorted-slice percentile on a few distributions, the P² estimate must
	// land within a few percent of the sample range.
	rng := rand.New(rand.NewPCG(42, 1))
	distros := map[string]func() float64{
		"uniform":     func() float64 { return rng.Float64() * 1000 },
		"exponential": func() float64 { return rng.ExpFloat64() * 100 },
		"normal":      func() float64 { return rng.NormFloat64()*50 + 500 },
	}
	for name, draw := range distros {
		for _, p := range []float64{50, 90, 95, 99} {
			e := NewP2Quantile(p)
			var xs []float64
			for i := 0; i < 20000; i++ {
				x := draw()
				xs = append(xs, x)
				e.Push(x)
			}
			exact := Percentile(xs, p)
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			spread := sorted[len(sorted)-1] - sorted[0]
			if diff := math.Abs(e.Value() - exact); diff > 0.02*spread {
				t.Errorf("%s p%.0f: P² %v vs exact %v (diff %v > 2%% of range %v)",
					name, p, e.Value(), exact, diff, spread)
			}
		}
	}
}

func TestP2QuantileMonotoneInP(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	e50, e90, e99 := NewP2Quantile(50), NewP2Quantile(90), NewP2Quantile(99)
	for i := 0; i < 5000; i++ {
		x := rng.Float64() * 100
		e50.Push(x)
		e90.Push(x)
		e99.Push(x)
	}
	if !(e50.Value() <= e90.Value() && e90.Value() <= e99.Value()) {
		t.Errorf("quantile estimates not monotone: p50=%v p90=%v p99=%v",
			e50.Value(), e90.Value(), e99.Value())
	}
}

func TestP2QuantileErrors(t *testing.T) {
	mustPanic(t, "p=0", func() { NewP2Quantile(0) })
	mustPanic(t, "p=100", func() { NewP2Quantile(100) })
	mustPanic(t, "empty Value", func() { NewP2Quantile(50).Value() })
}
