package stats

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func approxEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestSolveGaussKnownSystem(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{2, 1, -1},
		{-3, -1, 2},
		{-2, 1, 2},
	})
	x, err := SolveGauss(a, []float64{8, -11, -3})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{2, 3, -1}
	for i := range want {
		if !approxEq(x[i], want[i], 1e-9) {
			t.Errorf("x[%d] = %v, want %v", i, x[i], want[i])
		}
	}
}

func TestSolveGaussNeedsPivoting(t *testing.T) {
	// Zero on the first diagonal element forces a row swap.
	a := MatrixFromRows([][]float64{
		{0, 1},
		{1, 0},
	})
	x, err := SolveGauss(a, []float64{3, 7})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 7, 1e-12) || !approxEq(x[1], 3, 1e-12) {
		t.Errorf("x = %v, want [7 3]", x)
	}
}

func TestSolveGaussSingular(t *testing.T) {
	a := MatrixFromRows([][]float64{
		{1, 2},
		{2, 4},
	})
	if _, err := SolveGauss(a, []float64{1, 2}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolveGaussShapeErrors(t *testing.T) {
	if _, err := SolveGauss(NewMatrix(2, 3), []float64{1, 2}); err == nil {
		t.Error("non-square matrix accepted")
	}
	if _, err := SolveGauss(NewMatrix(2, 2), []float64{1}); err == nil {
		t.Error("wrong rhs length accepted")
	}
}

func TestSolveGaussDoesNotMutateInputs(t *testing.T) {
	a := MatrixFromRows([][]float64{{4, 1}, {1, 3}})
	b := []float64{1, 2}
	if _, err := SolveGauss(a, b); err != nil {
		t.Fatal(err)
	}
	if a.At(0, 0) != 4 || a.At(1, 0) != 1 || b[0] != 1 || b[1] != 2 {
		t.Error("SolveGauss mutated its inputs")
	}
}

// Property: for random diagonally dominant systems, SolveGauss returns x
// with A·x ≈ b.
func TestPropertySolveGaussResidual(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 3))
		n := 2 + int(r.Uint64()%5)
		a := NewMatrix(n, n)
		b := make([]float64, n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				v := 2*r.Float64() - 1
				a.Set(i, j, v)
				rowSum += math.Abs(v)
			}
			a.Set(i, i, rowSum+1) // diagonal dominance → well conditioned
			b[i] = 10 * (2*r.Float64() - 1)
		}
		x, err := SolveGauss(a, b)
		if err != nil {
			return false
		}
		got := a.MulVec(x)
		for i := range b {
			if !approxEq(got[i], b[i], 1e-8) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLeastSquaresExactSystem(t *testing.T) {
	// Square nonsingular system: least squares must reproduce the exact
	// solution.
	a := MatrixFromRows([][]float64{{3, 1}, {1, 2}})
	x, err := LeastSquares(a, []float64{9, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 2, 1e-10) || !approxEq(x[1], 3, 1e-10) {
		t.Errorf("x = %v, want [2 3]", x)
	}
}

func TestLeastSquaresOverdetermined(t *testing.T) {
	// y = 2x generated exactly; adding rows keeps the solution.
	a := MatrixFromRows([][]float64{{1}, {2}, {3}, {4}})
	x, err := LeastSquares(a, []float64{2, 4, 6, 8})
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(x[0], 2, 1e-12) {
		t.Errorf("slope = %v, want 2", x[0])
	}
}

func TestLeastSquaresUnderdeterminedRejected(t *testing.T) {
	if _, err := LeastSquares(NewMatrix(1, 2), []float64{1}); err == nil {
		t.Error("underdetermined system accepted")
	}
}

func TestLeastSquaresRankDeficient(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 1}, {2, 2}, {3, 3}})
	if _, err := LeastSquares(a, []float64{1, 2, 3}); !errors.Is(err, ErrSingular) {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

// Property: QR least squares matches the Gaussian normal-equations
// solution on random well-conditioned problems.
func TestPropertyLeastSquaresMatchesNormalEquations(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 11))
		rows := 8 + int(r.Uint64()%8)
		cols := 2 + int(r.Uint64()%3)
		a := NewMatrix(rows, cols)
		b := make([]float64, rows)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				a.Set(i, j, 2*r.Float64()-1)
			}
			b[i] = 2*r.Float64() - 1
		}
		xqr, err := LeastSquares(a, b)
		if err != nil {
			return true // skip near-singular draws
		}
		ata := a.T().Mul(a)
		atb := a.T().MulVec(b)
		xne, err := SolveGauss(ata, atb)
		if err != nil {
			return true
		}
		for i := range xqr {
			if !approxEq(xqr[i], xne[i], 1e-6) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
