package stats

import (
	"fmt"
	"math"
)

// BasisFunc maps a predictor vector to one regressor value. A regression
// basis is an ordered set of BasisFuncs; the fitted model is
// y ≈ Σ coef[i]·basis[i](x).
type BasisFunc func(x []float64) float64

// FitBasis performs ordinary least squares of ys on the given basis
// evaluated at xs. Every xs[i] is a predictor vector; all must have the
// same length. It returns the coefficient for each basis function.
func FitBasis(xs [][]float64, ys []float64, basis []BasisFunc) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: FitBasis has %d predictor rows but %d responses", len(xs), len(ys))
	}
	if len(basis) == 0 {
		return nil, fmt.Errorf("stats: FitBasis needs at least one basis function")
	}
	if len(xs) < len(basis) {
		return nil, fmt.Errorf("stats: FitBasis needs ≥%d samples for %d basis functions, got %d",
			len(basis), len(basis), len(xs))
	}
	a := NewMatrix(len(xs), len(basis))
	for i, x := range xs {
		for j, f := range basis {
			a.Set(i, j, f(x))
		}
	}
	return LeastSquares(a, ys)
}

// PredictBasis evaluates a fitted basis model at x.
func PredictBasis(coefs []float64, basis []BasisFunc, x []float64) float64 {
	if len(coefs) != len(basis) {
		panic(fmt.Sprintf("stats: PredictBasis has %d coefficients for %d basis functions", len(coefs), len(basis)))
	}
	var y float64
	for i, f := range basis {
		y += coefs[i] * f(x)
	}
	return y
}

// PolyBasis returns the 1-D monomial basis {x^degree, ..., x, 1} when
// intercept is true, or {x^degree, ..., x} when false (regression through
// the origin). Coefficients come back highest degree first, matching the
// paper's a·d² + b·d form.
func PolyBasis(degree int, intercept bool) []BasisFunc {
	if degree < 1 {
		panic("stats: PolyBasis degree must be ≥ 1")
	}
	var basis []BasisFunc
	for p := degree; p >= 1; p-- {
		p := p
		basis = append(basis, func(x []float64) float64 { return math.Pow(x[0], float64(p)) })
	}
	if intercept {
		basis = append(basis, func(x []float64) float64 { return 1 })
	}
	return basis
}

// PolyFit fits a 1-D polynomial of the given degree. Coefficients are
// highest degree first; when intercept is false the constant term is
// forced to zero (the paper's latency curves pass through the origin:
// zero data items cost zero time).
func PolyFit(xs, ys []float64, degree int, intercept bool) ([]float64, error) {
	if len(xs) != len(ys) {
		return nil, fmt.Errorf("stats: PolyFit has %d xs but %d ys", len(xs), len(ys))
	}
	rows := make([][]float64, len(xs))
	for i, x := range xs {
		rows[i] = []float64{x}
	}
	return FitBasis(rows, ys, PolyBasis(degree, intercept))
}

// PolyEval evaluates a polynomial with coefficients highest degree first;
// if len(coefs) == degree (no constant), the constant term is zero.
func PolyEval(coefs []float64, x float64) float64 {
	var y float64
	for _, c := range coefs {
		y = y*x + c
	}
	return y
}

// LinearThroughOrigin fits y = k·x, returning the slope that minimizes
// squared error: k = Σxy / Σx². The paper's buffer-delay model (eq. 5) is
// a through-origin line in the total periodic workload.
func LinearThroughOrigin(xs, ys []float64) (float64, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return 0, fmt.Errorf("stats: LinearThroughOrigin needs equal non-empty slices, got %d/%d", len(xs), len(ys))
	}
	var sxy, sxx float64
	for i := range xs {
		sxy += xs[i] * ys[i]
		sxx += xs[i] * xs[i]
	}
	if sxx == 0 {
		return 0, ErrSingular
	}
	return sxy / sxx, nil
}

// SimpleLinear fits y = slope·x + intercept by ordinary least squares.
func SimpleLinear(xs, ys []float64) (slope, intercept float64, err error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return 0, 0, fmt.Errorf("stats: SimpleLinear needs ≥2 paired samples, got %d/%d", len(xs), len(ys))
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx float64
	for i := range xs {
		dx := xs[i] - mx
		sxy += dx * (ys[i] - my)
		sxx += dx * dx
	}
	if sxx == 0 {
		return 0, 0, ErrSingular
	}
	slope = sxy / sxx
	return slope, my - slope*mx, nil
}

// R2 returns the coefficient of determination of predictions vs
// observations: 1 − SS_res/SS_tot. A constant observation vector yields
// R² = 1 if predictions match exactly and 0 otherwise.
func R2(observed, predicted []float64) float64 {
	if len(observed) != len(predicted) || len(observed) == 0 {
		panic("stats: R2 needs equal non-empty slices")
	}
	m := Mean(observed)
	var ssRes, ssTot float64
	for i := range observed {
		d := observed[i] - predicted[i]
		ssRes += d * d
		t := observed[i] - m
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// RMSE returns the root-mean-square error of predictions vs observations.
func RMSE(observed, predicted []float64) float64 {
	if len(observed) != len(predicted) || len(observed) == 0 {
		panic("stats: RMSE needs equal non-empty slices")
	}
	var ss float64
	for i := range observed {
		d := observed[i] - predicted[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(observed)))
}
