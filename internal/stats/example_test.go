package stats_test

import (
	"fmt"

	"repro/internal/stats"
)

// Fitting a through-origin quadratic, the shape of the paper's latency
// curves.
func ExamplePolyFit() {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.5*x*x + 2*x
	}
	coefs, err := stats.PolyFit(xs, ys, 2, false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f·d² + %.2f·d\n", coefs[0], coefs[1])
	// Output:
	// 0.50·d² + 2.00·d
}

// Solving an overdetermined system in the least-squares sense.
func ExampleLeastSquares() {
	a := stats.MatrixFromRows([][]float64{{1}, {2}, {3}})
	x, err := stats.LeastSquares(a, []float64{2, 4, 6})
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.1f\n", x[0])
	// Output:
	// 2.0
}

// Through-origin linear regression, the fit behind Table 3's buffer-delay
// slope.
func ExampleLinearThroughOrigin() {
	k, err := stats.LinearThroughOrigin(
		[]float64{10, 20, 30},
		[]float64{7, 14, 21},
	)
	if err != nil {
		panic(err)
	}
	fmt.Printf("k = %.1f\n", k)
	// Output:
	// k = 0.7
}
