package stats

import (
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v", got)
	}
}

func TestMeanEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mean of empty slice did not panic")
		}
	}()
	Mean(nil)
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 2})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v,%v", min, max)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := map[float64]float64{0: 1, 50: 3, 100: 5, 25: 2}
	for p, want := range cases {
		if got := Percentile(xs, p); got != want {
			t.Errorf("P%v = %v, want %v", p, got, want)
		}
	}
	// Interpolation between ranks.
	if got := Percentile([]float64{10, 20}, 50); got != 15 {
		t.Errorf("P50 of {10,20} = %v, want 15", got)
	}
	if got := Percentile([]float64{42}, 95); got != 42 {
		t.Errorf("P95 of single = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile sorted the caller's slice")
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("p=101 did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("Summary = %+v", s)
	}
	if s.String() == "" {
		t.Error("empty Summary string")
	}
}

// Property: min ≤ p50 ≤ p95 ≤ max and min ≤ mean ≤ max.
func TestPropertySummaryOrdering(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, v := range raw {
			if v == v && v < 1e300 && v > -1e300 { // drop NaN/huge
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSlidingWindow(t *testing.T) {
	w := NewSlidingWindow(3)
	if w.Len() != 0 {
		t.Fatal("new window not empty")
	}
	w.Push(1)
	w.Push(2)
	if w.Mean() != 1.5 || w.Len() != 2 {
		t.Errorf("mean=%v len=%d", w.Mean(), w.Len())
	}
	w.Push(3)
	w.Push(4) // evicts 1
	if w.Mean() != 3 {
		t.Errorf("mean after eviction = %v, want 3", w.Mean())
	}
	if w.Last() != 4 {
		t.Errorf("Last = %v", w.Last())
	}
	w.Reset()
	if w.Len() != 0 {
		t.Error("Reset did not empty window")
	}
}

func TestSlidingWindowLastWrap(t *testing.T) {
	w := NewSlidingWindow(2)
	w.Push(1)
	w.Push(2)
	w.Push(3) // next wraps to 0 after this? Push(3) evicts 1; buffer [3,2], next=1
	if w.Last() != 3 {
		t.Errorf("Last = %v, want 3", w.Last())
	}
}

func TestSlidingWindowEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Mean of empty window did not panic")
		}
	}()
	NewSlidingWindow(2).Mean()
}

func TestSlidingWindowBadCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 0 did not panic")
		}
	}()
	NewSlidingWindow(0)
}

// Property: window mean equals mean of the last k pushed values.
func TestPropertySlidingWindowMean(t *testing.T) {
	f := func(raw []uint8, cap8 uint8) bool {
		capacity := int(cap8%8) + 1
		w := NewSlidingWindow(capacity)
		var all []float64
		for _, v := range raw {
			x := float64(v)
			w.Push(x)
			all = append(all, x)
		}
		if len(all) == 0 {
			return true
		}
		tail := all
		if len(tail) > capacity {
			tail = tail[len(tail)-capacity:]
		}
		return approxEq(w.Mean(), Mean(tail), 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if e.Initialized() {
		t.Error("fresh EWMA claims initialized")
	}
	e.Push(10)
	if e.Value() != 10 {
		t.Errorf("first value = %v", e.Value())
	}
	e.Push(20)
	if e.Value() != 15 {
		t.Errorf("value = %v, want 15", e.Value())
	}
}

func TestEWMABadAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("alpha 0 did not panic")
		}
	}()
	NewEWMA(0)
}

func TestEWMAValueBeforePushPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Value before Push did not panic")
		}
	}()
	NewEWMA(0.5).Value()
}

func TestSampleVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := SampleVariance(xs); !approxEq(got, 32.0/7, 1e-12) {
		t.Errorf("SampleVariance = %v, want %v", got, 32.0/7)
	}
	if got := SampleStdDev([]float64{1, 5}); !approxEq(got, 2.8284271247461903, 1e-12) {
		t.Errorf("SampleStdDev = %v", got)
	}
}

func TestSampleVarianceSingletonPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("SampleVariance of one value did not panic")
		}
	}()
	SampleVariance([]float64{1})
}

func TestTCritical95(t *testing.T) {
	for _, tc := range []struct {
		df   int
		want float64
	}{
		{1, 12.706}, {2, 4.303}, {9, 2.262}, {30, 2.042},
		{35, 2.042}, {45, 2.021}, {80, 2.000}, {500, 1.980},
	} {
		if got := TCritical95(tc.df); got != tc.want {
			t.Errorf("TCritical95(%d) = %v, want %v", tc.df, got, tc.want)
		}
	}
	// Monotone non-increasing: more data never widens the interval.
	prev := TCritical95(1)
	for df := 2; df <= 200; df++ {
		cur := TCritical95(df)
		if cur > prev {
			t.Fatalf("TCritical95 increased at df=%d: %v > %v", df, cur, prev)
		}
		prev = cur
	}
}

func TestTCritical95ZeroDFPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("df 0 did not panic")
		}
	}()
	TCritical95(0)
}

func TestMeanCI95(t *testing.T) {
	mean, half := MeanCI95([]float64{42})
	if mean != 42 || half != 0 {
		t.Errorf("single value: mean=%v half=%v", mean, half)
	}
	// n=4, sd=1 → half = t(3)·1/√4 = 3.182/2.
	mean, half = MeanCI95([]float64{1, 2, 3, 4})
	if !approxEq(mean, 2.5, 1e-12) {
		t.Errorf("mean = %v", mean)
	}
	want := 3.182 * SampleStdDev([]float64{1, 2, 3, 4}) / 2
	if !approxEq(half, want, 1e-12) {
		t.Errorf("half = %v, want %v", half, want)
	}
	// Identical values: zero spread, zero interval.
	if _, half := MeanCI95([]float64{7, 7, 7}); half != 0 {
		t.Errorf("constant sample half = %v", half)
	}
}
