// Package stats provides the numerical substrate for the reproduction:
// dense matrices, least-squares solvers (Householder QR and Gaussian
// elimination), polynomial and arbitrary-basis regression fits, goodness
// of fit measures, descriptive statistics, and windowed estimators.
//
// The predictive resource-management algorithm (paper §4.2.1) consumes
// regression equations fitted from application profile data; this package
// implements the fitting machinery from scratch on the standard library.
package stats

import (
	"fmt"
	"strings"
)

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a zero rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("stats: invalid matrix dimensions %d×%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices, which must be non-empty
// and of equal length.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 || len(rows[0]) == 0 {
		panic("stats: MatrixFromRows requires at least one non-empty row")
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.cols {
			panic(fmt.Sprintf("stats: ragged rows: row %d has %d columns, want %d", i, len(r), m.cols))
		}
		copy(m.data[i*m.cols:], r)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("stats: index (%d,%d) out of %d×%d matrix", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// T returns the transpose as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = m.data[i*m.cols+j]
		}
	}
	return t
}

// Mul returns m·b as a new matrix.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.cols != b.rows {
		panic(fmt.Sprintf("stats: Mul dimension mismatch %d×%d · %d×%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewMatrix(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			a := m.data[i*m.cols+k]
			if a == 0 {
				continue
			}
			brow := b.data[k*b.cols:]
			orow := out.data[i*out.cols:]
			for j := 0; j < b.cols; j++ {
				orow[j] += a * brow[j]
			}
		}
	}
	return out
}

// MulVec returns m·x for a vector x of length Cols().
func (m *Matrix) MulVec(x []float64) []float64 {
	if len(x) != m.cols {
		panic(fmt.Sprintf("stats: MulVec length %d, want %d", len(x), m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols:]
		var s float64
		for j := 0; j < m.cols; j++ {
			s += row[j] * x[j]
		}
		out[i] = s
	}
	return out
}

// String renders the matrix for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.5g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
