package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestPolyFitRecoversExactQuadratic(t *testing.T) {
	// y = 0.5x² + 2x, through the origin like the paper's latency curves.
	xs := []float64{1, 2, 3, 5, 8, 13}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 0.5*x*x + 2*x
	}
	coefs, err := PolyFit(xs, ys, 2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(coefs[0], 0.5, 1e-9) || !approxEq(coefs[1], 2, 1e-9) {
		t.Errorf("coefs = %v, want [0.5 2]", coefs)
	}
}

func TestPolyFitWithIntercept(t *testing.T) {
	// y = x² − 3x + 7.
	xs := []float64{-2, -1, 0, 1, 2, 3}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = x*x - 3*x + 7
	}
	coefs, err := PolyFit(xs, ys, 2, true)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, -3, 7}
	for i := range want {
		if !approxEq(coefs[i], want[i], 1e-9) {
			t.Errorf("coefs = %v, want %v", coefs, want)
			break
		}
	}
}

func TestPolyFitLengthMismatch(t *testing.T) {
	if _, err := PolyFit([]float64{1, 2}, []float64{1}, 1, true); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestPolyBasisBadDegreePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("degree 0 did not panic")
		}
	}()
	PolyBasis(0, true)
}

func TestPolyEval(t *testing.T) {
	// coefficients [2, -1, 3] = 2x² − x + 3
	if got := PolyEval([]float64{2, -1, 3}, 2); got != 9 {
		t.Errorf("PolyEval = %v, want 9", got)
	}
	// no constant: [2, -1] = 2x − 1... highest first: 2x − 1 at x=3 → 5
	if got := PolyEval([]float64{2, -1}, 3); got != 5 {
		t.Errorf("PolyEval = %v, want 5", got)
	}
	if got := PolyEval(nil, 42.0); got != 0 {
		t.Errorf("PolyEval(nil) = %v, want 0", got)
	}
}

// Property: PolyFit on noiseless data from a random quadratic recovers the
// coefficients.
func TestPropertyPolyFitRecovery(t *testing.T) {
	f := func(a8, b8, c8 int8) bool {
		a, b, c := float64(a8)/16, float64(b8)/16, float64(c8)/16
		xs := []float64{-3, -2, -1, 0.5, 1, 2, 3, 4}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a*x*x + b*x + c
		}
		coefs, err := PolyFit(xs, ys, 2, true)
		if err != nil {
			return false
		}
		return approxEq(coefs[0], a, 1e-7) && approxEq(coefs[1], b, 1e-7) && approxEq(coefs[2], c, 1e-7)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFitBasisTwoVariable(t *testing.T) {
	// The paper's eq. (3) shape: y = (p·u² + q·u + r)·d² + (s·u² + t·u + w)·d.
	truth := []float64{0.3, -0.1, 0.5, 1.2, 0.05, 2.0}
	basis := []BasisFunc{
		func(x []float64) float64 { u, d := x[0], x[1]; return u * u * d * d },
		func(x []float64) float64 { u, d := x[0], x[1]; return u * d * d },
		func(x []float64) float64 { d := x[1]; return d * d },
		func(x []float64) float64 { u, d := x[0], x[1]; return u * u * d },
		func(x []float64) float64 { u, d := x[0], x[1]; return u * d },
		func(x []float64) float64 { d := x[1]; return d },
	}
	var xs [][]float64
	var ys []float64
	for _, u := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		for _, d := range []float64{1, 2, 4, 8, 16} {
			x := []float64{u, d}
			xs = append(xs, x)
			ys = append(ys, PredictBasis(truth, basis, x))
		}
	}
	coefs, err := FitBasis(xs, ys, basis)
	if err != nil {
		t.Fatal(err)
	}
	for i := range truth {
		if !approxEq(coefs[i], truth[i], 1e-7) {
			t.Fatalf("coefs = %v, want %v", coefs, truth)
		}
	}
}

func TestFitBasisErrors(t *testing.T) {
	b := PolyBasis(1, true)
	if _, err := FitBasis([][]float64{{1}}, []float64{1, 2}, b); err == nil {
		t.Error("row/response mismatch accepted")
	}
	if _, err := FitBasis([][]float64{{1}}, []float64{1}, nil); err == nil {
		t.Error("empty basis accepted")
	}
	if _, err := FitBasis([][]float64{{1}}, []float64{1}, b); err == nil {
		t.Error("fewer samples than basis functions accepted")
	}
}

func TestPredictBasisMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("coef/basis mismatch did not panic")
		}
	}()
	PredictBasis([]float64{1}, PolyBasis(1, true), []float64{1})
}

func TestLinearThroughOrigin(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{0.7, 1.4, 2.1, 2.8}
	k, err := LinearThroughOrigin(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(k, 0.7, 1e-12) {
		t.Errorf("k = %v, want 0.7 (the paper's Table 3 slope)", k)
	}
}

func TestLinearThroughOriginErrors(t *testing.T) {
	if _, err := LinearThroughOrigin(nil, nil); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := LinearThroughOrigin([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero xs accepted")
	}
}

func TestSimpleLinear(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{5, 7, 9, 11} // y = 2x + 5
	slope, intercept, err := SimpleLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approxEq(slope, 2, 1e-12) || !approxEq(intercept, 5, 1e-12) {
		t.Errorf("fit = %v,%v want 2,5", slope, intercept)
	}
}

func TestSimpleLinearErrors(t *testing.T) {
	if _, _, err := SimpleLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, _, err := SimpleLinear([]float64{2, 2}, []float64{1, 5}); err == nil {
		t.Error("constant xs accepted")
	}
}

func TestR2PerfectAndPoor(t *testing.T) {
	obs := []float64{1, 2, 3, 4}
	if got := R2(obs, obs); got != 1 {
		t.Errorf("R² of perfect fit = %v", got)
	}
	mean := []float64{2.5, 2.5, 2.5, 2.5}
	if got := R2(obs, mean); got != 0 {
		t.Errorf("R² of mean predictor = %v, want 0", got)
	}
}

func TestR2ConstantObservations(t *testing.T) {
	obs := []float64{3, 3, 3}
	if got := R2(obs, []float64{3, 3, 3}); got != 1 {
		t.Errorf("R² = %v, want 1", got)
	}
	if got := R2(obs, []float64{3, 3, 4}); got != 0 {
		t.Errorf("R² = %v, want 0", got)
	}
}

func TestRMSE(t *testing.T) {
	if got := RMSE([]float64{1, 2}, []float64{1, 2}); got != 0 {
		t.Errorf("RMSE of perfect fit = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); !approxEq(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMSE = %v", got)
	}
}

// Property: fitted model's predictions achieve R² ≥ any-constant
// predictor's on noisy linear data.
func TestPropertyFitBeatsConstant(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 5))
		n := 20
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = float64(i)
			ys[i] = 3*xs[i] + 1 + (r.Float64() - 0.5)
		}
		slope, intercept, err := SimpleLinear(xs, ys)
		if err != nil {
			return false
		}
		pred := make([]float64, n)
		for i := range pred {
			pred[i] = slope*xs[i] + intercept
		}
		return R2(ys, pred) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
