package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; it panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance; it panics on an empty slice.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// SampleVariance returns the unbiased (n−1 denominator) variance; it
// panics on fewer than two values, where the estimator is undefined.
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		panic(fmt.Sprintf("stats: SampleVariance needs ≥2 values, got %d", len(xs)))
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// SampleStdDev returns the sample standard deviation (n−1 denominator).
func SampleStdDev(xs []float64) float64 { return math.Sqrt(SampleVariance(xs)) }

// tCritical95 tabulates the two-sided 95% Student-t critical values for
// 1–30 degrees of freedom (the exact range Monte Carlo replication
// counts land in).
var tCritical95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// TCritical95 returns the two-sided 95% Student-t critical value for df
// degrees of freedom. Beyond the tabulated range it steps down through
// the standard anchors (40, 60, 120 df), holding each anchor's value
// until the next — slightly conservative (wider intervals), never
// anti-conservative. It panics on df < 1.
func TCritical95(df int) float64 {
	switch {
	case df < 1:
		panic(fmt.Sprintf("stats: TCritical95 df=%d < 1", df))
	case df <= len(tCritical95):
		return tCritical95[df-1]
	case df < 40:
		return tCritical95[len(tCritical95)-1]
	case df < 60:
		return 2.021
	case df < 120:
		return 2.000
	default:
		return 1.980
	}
}

// MeanCI95 returns the sample mean and the half-width of its 95%
// confidence interval (Student t with n−1 degrees of freedom). With a
// single value the half-width is zero — there is no spread to estimate.
// It panics on an empty slice.
func MeanCI95(xs []float64) (mean, half float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	half = TCritical95(len(xs)-1) * SampleStdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, half
}

// MinMax returns the smallest and largest values; it panics on an empty
// slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: Percentile p=%v out of [0,100]", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary bundles the descriptive statistics reported in experiment
// tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary; it panics on an empty slice.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
		Max:    max,
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}

// Bucket is one histogram bin: Count observations fell in (Lo, Hi].
type Bucket struct {
	Lo, Hi float64
	Count  uint64
}

// BucketQuantile returns the p-th percentile (0 ≤ p ≤ 100) estimated from
// a bucketed CDF by linear interpolation inside the containing bucket —
// the streaming-quantile primitive shared by the telemetry histograms.
// Buckets must be sorted by bound and non-overlapping; empty buckets are
// allowed. It panics when every bucket is empty.
func BucketQuantile(buckets []Bucket, p float64) float64 {
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: BucketQuantile p=%v out of [0,100]", p))
	}
	var total uint64
	for _, b := range buckets {
		total += b.Count
	}
	if total == 0 {
		panic("stats: BucketQuantile of empty histogram")
	}
	rank := p / 100 * float64(total)
	var cum float64
	for _, b := range buckets {
		if b.Count == 0 {
			continue
		}
		next := cum + float64(b.Count)
		if rank <= next {
			frac := (rank - cum) / float64(b.Count)
			return b.Lo + frac*(b.Hi-b.Lo)
		}
		cum = next
	}
	last := buckets[len(buckets)-1]
	return last.Hi
}

// P2Quantile is the Jain–Chlamtac P² streaming estimator of a single
// percentile: five markers track the running CDF in O(1) space, with
// parabolic marker adjustment. It converges to the true percentile
// without retaining observations — the memory-bounded alternative to
// Percentile for long runs.
type P2Quantile struct {
	p float64 // target quantile as a fraction
	n int     // observations seen

	heights [5]float64 // marker heights (estimates)
	pos     [5]float64 // actual marker positions (1-based ranks)
	want    [5]float64 // desired marker positions
	incr    [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns an estimator of the p-th percentile
// (0 < p < 100).
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 100 {
		panic(fmt.Sprintf("stats: P2Quantile p=%v out of (0,100)", p))
	}
	q := p / 100
	e := &P2Quantile{p: q}
	e.incr = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return e
}

// N returns the number of observations pushed so far.
func (e *P2Quantile) N() int { return e.n }

// Push folds in one observation.
func (e *P2Quantile) Push(x float64) {
	if e.n < 5 {
		e.heights[e.n] = x
		e.n++
		if e.n == 5 {
			sort.Float64s(e.heights[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
			}
			q := e.p
			e.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
		}
		return
	}
	e.n++
	// Locate the cell containing x, stretching the extreme markers.
	var k int
	switch {
	case x < e.heights[0]:
		e.heights[0] = x
		k = 0
	case x >= e.heights[4]:
		e.heights[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < e.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.incr[i]
	}
	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := e.parabolic(i, sign)
			if e.heights[i-1] < h && h < e.heights[i+1] {
				e.heights[i] = h
			} else {
				e.heights[i] = e.linear(i, sign)
			}
			e.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction.
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.heights[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.heights[i+1]-e.heights[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.heights[i]-e.heights[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.heights[i] + d*(e.heights[j]-e.heights[i])/(e.pos[j]-e.pos[i])
}

// Value returns the current percentile estimate; before five observations
// it falls back to the exact small-sample percentile. It panics when no
// observation has been pushed.
func (e *P2Quantile) Value() float64 {
	if e.n == 0 {
		panic("stats: Value of empty P2Quantile")
	}
	if e.n < 5 {
		return Percentile(e.heights[:e.n], e.p*100)
	}
	return e.heights[2]
}
