package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean; it panics on an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Mean of empty slice")
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance; it panics on an empty slice.
func Variance(xs []float64) float64 {
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MinMax returns the smallest and largest values; it panics on an empty
// slice.
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		panic("stats: MinMax of empty slice")
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) by linear
// interpolation between closest ranks.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: Percentile p=%v out of [0,100]", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary bundles the descriptive statistics reported in experiment
// tables.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	Min    float64
	P50    float64
	P95    float64
	Max    float64
}

// Summarize computes a Summary; it panics on an empty slice.
func Summarize(xs []float64) Summary {
	min, max := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		Min:    min,
		P50:    Percentile(xs, 50),
		P95:    Percentile(xs, 95),
		Max:    max,
	}
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g",
		s.N, s.Mean, s.StdDev, s.Min, s.P50, s.P95, s.Max)
}
