package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewMatrixZero(t *testing.T) {
	m := NewMatrix(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("dims = %d×%d", m.Rows(), m.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("At(%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixBadDims(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewMatrix(0,1) did not panic")
		}
	}()
	NewMatrix(0, 1)
}

func TestMatrixFromRowsAndAccess(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 0) != 3 {
		t.Errorf("At(1,0) = %v", m.At(1, 0))
	}
	m.Set(1, 0, 9)
	if m.At(1, 0) != 9 {
		t.Errorf("Set did not stick")
	}
}

func TestMatrixFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("ragged rows did not panic")
		}
	}()
	MatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestAtOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-range At did not panic")
		}
	}()
	NewMatrix(2, 2).At(2, 0)
}

func TestCloneIsDeep(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("Clone shares storage with original")
	}
}

func TestTranspose(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tt := m.T()
	if tt.Rows() != 3 || tt.Cols() != 2 {
		t.Fatalf("T dims = %d×%d", tt.Rows(), tt.Cols())
	}
	if tt.At(2, 1) != 6 || tt.At(0, 1) != 4 {
		t.Errorf("T values wrong:\n%v", tt)
	}
}

func TestMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Errorf("Mul(%d,%d) = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched Mul did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestMulVec(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec([]float64{1, 0, -1})
	if got[0] != -2 || got[1] != -2 {
		t.Errorf("MulVec = %v", got)
	}
}

// Property: (Aᵀ)ᵀ = A.
func TestPropertyDoubleTranspose(t *testing.T) {
	f := func(vals [6]float64) bool {
		m := MatrixFromRows([][]float64{vals[0:3], vals[3:6]})
		tt := m.T().T()
		for i := 0; i < 2; i++ {
			for j := 0; j < 3; j++ {
				a, b := m.At(i, j), tt.At(i, j)
				if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: (A·B)ᵀ = Bᵀ·Aᵀ for random small matrices.
func TestPropertyTransposeOfProduct(t *testing.T) {
	f := func(av, bv [4]int8) bool {
		a := MatrixFromRows([][]float64{
			{float64(av[0]), float64(av[1])},
			{float64(av[2]), float64(av[3])},
		})
		b := MatrixFromRows([][]float64{
			{float64(bv[0]), float64(bv[1])},
			{float64(bv[2]), float64(bv[3])},
		})
		lhs := a.Mul(b).T()
		rhs := b.T().Mul(a.T())
		for i := 0; i < 2; i++ {
			for j := 0; j < 2; j++ {
				if lhs.At(i, j) != rhs.At(i, j) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
