package metrics

import "repro/internal/stats"

// Estimate is a mean with the half-width of its 95% confidence interval,
// Student-t over the replication count. CI is zero for a single run.
type Estimate struct {
	Mean float64 `json:"mean"`
	CI   float64 `json:"ci95"`
}

// Aggregate summarizes N Monte Carlo replications of one experiment
// cell: each §5.2 quantity is estimated as the mean of the per-run
// values (a ratio like MD% is averaged per run, not re-derived from
// pooled counts, so the CI is the CI of what the figures actually plot).
type Aggregate struct {
	N int

	MissedPct     Estimate
	CPUUtilPct    Estimate
	NetUtilPct    Estimate
	MeanReplicas  Estimate
	ReplicaUsePct Estimate
	Combined      Estimate
}

// AggregateRuns folds replicated run metrics into mean ± 95% CI
// estimates. It panics on an empty slice: a cell always has at least its
// replication-0 run.
func AggregateRuns(runs []RunMetrics) Aggregate {
	if len(runs) == 0 {
		panic("metrics: AggregateRuns of empty slice")
	}
	estimate := func(f func(RunMetrics) float64) Estimate {
		xs := make([]float64, len(runs))
		for i, r := range runs {
			xs[i] = f(r)
		}
		mean, half := stats.MeanCI95(xs)
		return Estimate{Mean: mean, CI: half}
	}
	return Aggregate{
		N:             len(runs),
		MissedPct:     estimate(RunMetrics.MissedPct),
		CPUUtilPct:    estimate(RunMetrics.CPUUtilPct),
		NetUtilPct:    estimate(RunMetrics.NetUtilPct),
		MeanReplicas:  estimate(func(r RunMetrics) float64 { return r.MeanReplicas }),
		ReplicaUsePct: estimate(RunMetrics.ReplicaUsePct),
		Combined:      estimate(RunMetrics.Combined),
	}
}
