package metrics

import (
	"math"
	"testing"
)

func TestAggregateRunsSingle(t *testing.T) {
	r := RunMetrics{Periods: 100, Completed: 90, Missed: 10, MeanReplicas: 1.5}
	a := AggregateRuns([]RunMetrics{r})
	if a.N != 1 {
		t.Fatalf("N = %d", a.N)
	}
	if a.MissedPct.Mean != r.MissedPct() || a.MissedPct.CI != 0 {
		t.Errorf("MissedPct = %+v, want mean %v CI 0", a.MissedPct, r.MissedPct())
	}
	if a.Combined.Mean != r.Combined() || a.Combined.CI != 0 {
		t.Errorf("Combined = %+v", a.Combined)
	}
}

func TestAggregateRunsMeanAndCI(t *testing.T) {
	runs := []RunMetrics{
		{Periods: 100, Completed: 100, MeanReplicas: 1},
		{Periods: 100, Completed: 100, MeanReplicas: 2},
		{Periods: 100, Completed: 100, MeanReplicas: 3},
	}
	a := AggregateRuns(runs)
	if a.N != 3 {
		t.Fatalf("N = %d", a.N)
	}
	if a.MeanReplicas.Mean != 2 {
		t.Errorf("MeanReplicas mean = %v", a.MeanReplicas.Mean)
	}
	// sd = 1, n = 3 → half = t(2)·1/√3.
	want := 4.303 / math.Sqrt(3)
	if math.Abs(a.MeanReplicas.CI-want) > 1e-9 {
		t.Errorf("MeanReplicas CI = %v, want %v", a.MeanReplicas.CI, want)
	}
	// Identical per-run values aggregate with a zero interval.
	if a.MissedPct.Mean != 0 || a.MissedPct.CI != 0 {
		t.Errorf("MissedPct = %+v", a.MissedPct)
	}
}

func TestAggregateRunsEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("empty AggregateRuns did not panic")
		}
	}()
	AggregateRuns(nil)
}
