// Package metrics accumulates the evaluation quantities of the paper's
// §5.2: missed-deadline ratio, average CPU utilization, average network
// utilization, average number of subtask replicas, and the combined
// performance metric
//
//	C = MD + U_CPU + U_Net + R̄/Max(R)
//
// where all four terms are percentages (the replica term is the fraction
// of the maximum exploitable concurrency, which is bounded by the number
// of processors).
package metrics

import "fmt"

// RunMetrics summarizes one experiment run.
type RunMetrics struct {
	Periods        int     // instances released
	Completed      int     // instances finished
	Missed         int     // instances past their deadline
	MeanCPUUtil    float64 // 0..1, averaged over nodes and periods
	MeanNetUtil    float64 // 0..1, averaged over periods
	MeanReplicas   float64 // mean replicas per replicable subtask, averaged over periods
	MaxReplicas    float64 // Max(R): the processor count
	Replications   int     // replicas added
	Shutdowns      int     // replicas removed
	AllocFailures  int     // Figure 5 FAILURE returns
	UnfinishedWork int     // instances still running at drain time

	// Chaos-layer observations; all zero on a clean run.
	DroppedMessages int     // segment messages lost (drop prob or partition)
	Retransmissions int     // inter-subtask handoffs resent after timeout
	Crashes         int     // node-down transitions
	Recoveries      int     // node-up transitions
	MeanRecoveryMS  float64 // mean crash → first met deadline, milliseconds

	// Graceful-degradation observations; all zero under policies that
	// never degrade (the paper's algorithms and the static baselines).
	ShedItems        int // optional items dropped before launch (imprecise-shed)
	StretchedPeriods int // period launches skipped by elastic stretching (period-stretch)
}

// MissedPct returns the missed-deadline percentage MD. Instances that
// never finished (work lost to node crashes) count as missed: a result
// that never arrives is at least as bad as a late one.
//
// Completed can legitimately EXCEED Periods: period starts are sampled
// only against the first task's boundaries (so multi-task runs don't
// double-count utilization windows), while completions count every
// task's instances. In that regime the per-anchor-task period count is
// not a meaningful denominator, so the ratio falls back to completions
// and no instance is inferred lost.
func (m RunMetrics) MissedPct() float64 {
	if m.Completed >= m.Periods {
		if m.Completed == 0 {
			return 0
		}
		return 100 * float64(m.Missed) / float64(m.Completed)
	}
	lost := m.Periods - m.Completed
	return 100 * float64(m.Missed+lost) / float64(m.Periods)
}

// CPUUtilPct returns U_CPU in percent.
func (m RunMetrics) CPUUtilPct() float64 { return 100 * m.MeanCPUUtil }

// NetUtilPct returns U_Net in percent.
func (m RunMetrics) NetUtilPct() float64 { return 100 * m.MeanNetUtil }

// ReplicaUsePct returns 100·R̄/Max(R).
func (m RunMetrics) ReplicaUsePct() float64 {
	if m.MaxReplicas == 0 {
		return 0
	}
	return 100 * m.MeanReplicas / m.MaxReplicas
}

// Combined returns the paper's combined performance metric C (smaller is
// better).
func (m RunMetrics) Combined() float64 {
	return m.MissedPct() + m.CPUUtilPct() + m.NetUtilPct() + m.ReplicaUsePct()
}

func (m RunMetrics) String() string {
	return fmt.Sprintf("MD=%.1f%% CPU=%.1f%% Net=%.1f%% R̄=%.2f (%.1f%%) C=%.1f",
		m.MissedPct(), m.CPUUtilPct(), m.NetUtilPct(), m.MeanReplicas, m.ReplicaUsePct(), m.Combined())
}

// Collector accumulates per-period observations into RunMetrics.
type Collector struct {
	maxReplicas float64

	periods      int
	completed    int
	missed       int
	cpuSum       float64
	netSum       float64
	replicaSum   float64
	samples      int
	replications int
	shutdowns    int
	failures     int

	dropped     int
	retransmits int
	crashes     int
	recoveries  int
	recoverySum float64 // milliseconds
	recoveryObs int

	shedItems        int
	stretchedPeriods int
}

// NewCollector returns a collector; maxReplicas is Max(R), normally the
// processor count.
func NewCollector(maxReplicas float64) *Collector {
	if maxReplicas < 0 {
		panic(fmt.Sprintf("metrics: negative max replicas %v", maxReplicas))
	}
	return &Collector{maxReplicas: maxReplicas}
}

// ObservePeriodStart records the utilization and replica state sampled at
// one period boundary.
func (c *Collector) ObservePeriodStart(cpuUtil, netUtil, meanReplicas float64) {
	c.periods++
	c.samples++
	c.cpuSum += cpuUtil
	c.netSum += netUtil
	c.replicaSum += meanReplicas
}

// ObserveCompletion records a finished instance.
func (c *Collector) ObserveCompletion(missed bool) {
	c.completed++
	if missed {
		c.missed++
	}
}

// CountReplications adds n replica additions.
func (c *Collector) CountReplications(n int) { c.replications += n }

// CountShutdown adds one replica removal.
func (c *Collector) CountShutdown() { c.shutdowns++ }

// CountAllocFailure records a Figure 5 FAILURE return.
func (c *Collector) CountAllocFailure() { c.failures++ }

// CountDropped adds n lost segment messages.
func (c *Collector) CountDropped(n int) { c.dropped += n }

// CountRetransmission records one handoff resend.
func (c *Collector) CountRetransmission() { c.retransmits++ }

// CountCrash records a node-down transition.
func (c *Collector) CountCrash() { c.crashes++ }

// CountRecovery records a node-up transition.
func (c *Collector) CountRecovery() { c.recoveries++ }

// CountShedItems adds n optional items dropped before launch.
func (c *Collector) CountShedItems(n int) { c.shedItems += n }

// CountStretchedPeriod records one period launch skipped by elastic
// period stretching.
func (c *Collector) CountStretchedPeriod() { c.stretchedPeriods++ }

// ObserveRecoveryLatency records one crash → first-met-deadline interval
// in milliseconds.
func (c *Collector) ObserveRecoveryLatency(ms float64) {
	c.recoverySum += ms
	c.recoveryObs++
}

// Absorb folds another collector's accumulated observations into c, as
// if every one of them had been made against c. Every accumulator is an
// order-insensitive sum or count (the means come out of Finish), so
// absorbing the per-lane collectors of a lane-partitioned run yields the
// same summary regardless of lane order. Max(R) becomes the larger of
// the two bounds: replication is lane-confined, so no task can exploit
// more concurrency than its own segment offers.
func (c *Collector) Absorb(o *Collector) {
	if o.maxReplicas > c.maxReplicas {
		c.maxReplicas = o.maxReplicas
	}
	c.periods += o.periods
	c.completed += o.completed
	c.missed += o.missed
	c.cpuSum += o.cpuSum
	c.netSum += o.netSum
	c.replicaSum += o.replicaSum
	c.samples += o.samples
	c.replications += o.replications
	c.shutdowns += o.shutdowns
	c.failures += o.failures
	c.dropped += o.dropped
	c.retransmits += o.retransmits
	c.crashes += o.crashes
	c.recoveries += o.recoveries
	c.recoverySum += o.recoverySum
	c.recoveryObs += o.recoveryObs
	c.shedItems += o.shedItems
	c.stretchedPeriods += o.stretchedPeriods
}

// Finish produces the run summary.
func (c *Collector) Finish() RunMetrics {
	// Completed > periods is normal in multi-task runs (see MissedPct):
	// clamp so lost-instance accounting can't go negative.
	unfinished := c.periods - c.completed
	if unfinished < 0 {
		unfinished = 0
	}
	m := RunMetrics{
		Periods:        c.periods,
		Completed:      c.completed,
		Missed:         c.missed,
		MaxReplicas:    c.maxReplicas,
		Replications:   c.replications,
		Shutdowns:      c.shutdowns,
		AllocFailures:  c.failures,
		UnfinishedWork: unfinished,

		DroppedMessages: c.dropped,
		Retransmissions: c.retransmits,
		Crashes:         c.crashes,
		Recoveries:      c.recoveries,

		ShedItems:        c.shedItems,
		StretchedPeriods: c.stretchedPeriods,
	}
	if c.recoveryObs > 0 {
		m.MeanRecoveryMS = c.recoverySum / float64(c.recoveryObs)
	}
	if c.samples > 0 {
		m.MeanCPUUtil = c.cpuSum / float64(c.samples)
		m.MeanNetUtil = c.netSum / float64(c.samples)
		m.MeanReplicas = c.replicaSum / float64(c.samples)
	}
	return m
}
