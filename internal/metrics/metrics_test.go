package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEmptyCollector(t *testing.T) {
	m := NewCollector(6).Finish()
	if m.MissedPct() != 0 || m.Combined() != 0 {
		t.Errorf("empty metrics = %+v", m)
	}
	if m.String() == "" {
		t.Error("empty String")
	}
}

func TestNegativeMaxReplicasPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative max replicas did not panic")
		}
	}()
	NewCollector(-1)
}

func TestCollectorAveraging(t *testing.T) {
	c := NewCollector(6)
	c.ObservePeriodStart(0.4, 0.2, 2)
	c.ObservePeriodStart(0.6, 0.4, 4)
	c.ObserveCompletion(false)
	c.ObserveCompletion(true)
	c.ObserveCompletion(false)
	c.ObserveCompletion(true)
	c.CountReplications(3)
	c.CountShutdown()
	c.CountAllocFailure()
	m := c.Finish()

	if m.Periods != 2 || m.Completed != 4 || m.Missed != 2 {
		t.Errorf("counts = %+v", m)
	}
	if m.MissedPct() != 50 {
		t.Errorf("MD = %v, want 50%%", m.MissedPct())
	}
	if m.MeanCPUUtil != 0.5 || m.CPUUtilPct() != 50 {
		t.Errorf("CPU = %v", m.MeanCPUUtil)
	}
	if math.Abs(m.MeanNetUtil-0.3) > 1e-12 {
		t.Errorf("Net = %v", m.MeanNetUtil)
	}
	if m.MeanReplicas != 3 {
		t.Errorf("R̄ = %v", m.MeanReplicas)
	}
	if m.ReplicaUsePct() != 50 {
		t.Errorf("replica use = %v%%", m.ReplicaUsePct())
	}
	// C = 50 + 50 + 30 + 50.
	if math.Abs(m.Combined()-180) > 1e-9 {
		t.Errorf("C = %v, want 180", m.Combined())
	}
	if m.Replications != 3 || m.Shutdowns != 1 || m.AllocFailures != 1 {
		t.Errorf("action counts = %+v", m)
	}
	if m.UnfinishedWork != 0 {
		// 2 periods, 4 completions: more completions than anchor-task
		// periods is the multi-task regime, so nothing is inferred lost.
		t.Errorf("UnfinishedWork = %d, want 0", m.UnfinishedWork)
	}
}

func TestZeroMaxReplicas(t *testing.T) {
	c := NewCollector(0)
	c.ObservePeriodStart(0, 0, 3)
	if got := c.Finish().ReplicaUsePct(); got != 0 {
		t.Errorf("replica use with Max(R)=0 = %v", got)
	}
}

// Property: the combined metric is the exact sum of its four component
// percentages and is monotone in each.
func TestPropertyCombinedComposition(t *testing.T) {
	f := func(missed8, total8 uint8, cpu, net, reps float64) bool {
		total := int(total8%50) + 1
		missed := int(missed8) % (total + 1)
		cpu = math.Abs(math.Mod(cpu, 1))
		net = math.Abs(math.Mod(net, 1))
		reps = math.Abs(math.Mod(reps, 6))
		if math.IsNaN(cpu) || math.IsNaN(net) || math.IsNaN(reps) {
			return true
		}
		c := NewCollector(6)
		c.ObservePeriodStart(cpu, net, reps)
		for i := 0; i < total; i++ {
			c.ObserveCompletion(i < missed)
		}
		m := c.Finish()
		want := m.MissedPct() + 100*cpu + 100*net + 100*reps/6
		return math.Abs(m.Combined()-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
