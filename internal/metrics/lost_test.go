package metrics

import "testing"

// Multi-task runs sample period starts only against the anchor task's
// boundaries while completions count every task, so Completed > Periods
// is a legitimate state — not an accounting bug. These tests pin the
// documented behaviour of that branch.

func TestMissedPctCompletedExceedsPeriods(t *testing.T) {
	m := RunMetrics{Periods: 10, Completed: 20, Missed: 5}
	if got, want := m.MissedPct(), 25.0; got != want {
		t.Errorf("MissedPct = %v, want %v (missed/completed when completions exceed periods)", got, want)
	}
}

func TestMissedPctZeroEverything(t *testing.T) {
	if got := (RunMetrics{}).MissedPct(); got != 0 {
		t.Errorf("MissedPct of empty run = %v, want 0", got)
	}
}

func TestMissedPctLostInstancesCountAsMissed(t *testing.T) {
	// 10 released, 7 finished (1 late), 3 lost to crashes: MD counts the
	// lost ones as missed.
	m := RunMetrics{Periods: 10, Completed: 7, Missed: 1}
	if got, want := m.MissedPct(), 40.0; got != want {
		t.Errorf("MissedPct = %v, want %v", got, want)
	}
}

func TestMissedPctNeverExceeds100(t *testing.T) {
	for _, m := range []RunMetrics{
		{Periods: 10, Completed: 0, Missed: 0},
		{Periods: 10, Completed: 10, Missed: 10},
		{Periods: 5, Completed: 50, Missed: 50},
		{Periods: 10, Completed: 3, Missed: 3},
	} {
		if got := m.MissedPct(); got < 0 || got > 100 {
			t.Errorf("MissedPct(%+v) = %v, outside [0,100]", m, got)
		}
	}
}

func TestFinishClampsUnfinishedWork(t *testing.T) {
	c := NewCollector(6)
	// One anchor-task period start, three completions (two tasks' worth of
	// instances finishing in the same window plus a drained straggler).
	c.ObservePeriodStart(0.5, 0.1, 1)
	c.ObserveCompletion(false)
	c.ObserveCompletion(false)
	c.ObserveCompletion(true)
	m := c.Finish()
	if m.UnfinishedWork != 0 {
		t.Errorf("UnfinishedWork = %d, want 0 (clamped, not negative)", m.UnfinishedWork)
	}
	if m.Completed != 3 || m.Periods != 1 || m.Missed != 1 {
		t.Errorf("counts = %+v", m)
	}
}

func TestFinishCountsGenuinelyUnfinished(t *testing.T) {
	c := NewCollector(6)
	for i := 0; i < 4; i++ {
		c.ObservePeriodStart(0, 0, 1)
	}
	c.ObserveCompletion(false)
	if got := c.Finish().UnfinishedWork; got != 3 {
		t.Errorf("UnfinishedWork = %d, want 3", got)
	}
}
