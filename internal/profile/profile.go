// Package profile implements the paper's application-profiling step
// (§4.2.1.1–4.2.1.2): it measures subtask execution latencies over a grid
// of data sizes and CPU utilizations on a simulated node, and message
// buffer delays over a range of periodic workloads on a simulated segment.
// The samples feed regress.FitExecModel / regress.FitBufferSlope to
// produce the regression equations the predictive algorithm consumes.
package profile

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/network"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/task"
)

// ExecGrid is the (utilization × data size) sampling grid, with Reps
// repeated measurements per point.
type ExecGrid struct {
	Utils []float64
	Items []int
	Reps  int
	// Discipline selects the measured node's CPU scheduler; the zero
	// value is Table 1's round-robin.
	Discipline cpu.Discipline
}

// DefaultExecGrid mirrors the paper's Figures 2–4: utilizations 0–80 %
// and data sizes up to 7 500 tracks (25 units of 300).
func DefaultExecGrid() ExecGrid {
	g := ExecGrid{
		Utils: []float64{0, 0.2, 0.4, 0.6, 0.8},
		Reps:  3,
	}
	for units := 1; units <= 25; units += 3 {
		g.Items = append(g.Items, units*300)
	}
	return g
}

func (g ExecGrid) validate() error {
	if len(g.Utils) == 0 || len(g.Items) == 0 || g.Reps < 1 {
		return fmt.Errorf("profile: grid needs utils, items and ≥1 rep")
	}
	for _, u := range g.Utils {
		if u < 0 || u > 0.9 {
			return fmt.Errorf("profile: grid utilization %v out of [0,0.9]", u)
		}
	}
	for _, it := range g.Items {
		if it <= 0 {
			return fmt.Errorf("profile: grid item count %d not positive", it)
		}
	}
	return nil
}

// warm lets the background load reach steady state before measuring.
const warm = 500 * sim.Millisecond

// bgQuantum is the background duty-cycle granularity; it is much smaller
// than the measured latencies so contention is smooth.
const bgQuantum = 4 * sim.Millisecond

// ExecSamples measures the latency of one subtask demand function at
// every grid point. Each measurement runs on a fresh single-node system
// with a background load pinned at the grid utilization, exactly like
// profiling the benchmark program on an otherwise-loaded host.
func ExecSamples(demand task.DemandFunc, grid ExecGrid, seed uint64) ([]regress.ExecSample, error) {
	if demand == nil {
		return nil, fmt.Errorf("profile: nil demand function")
	}
	if err := grid.validate(); err != nil {
		return nil, err
	}
	var out []regress.ExecSample
	var stream uint64
	for _, u := range grid.Utils {
		for _, items := range grid.Items {
			for rep := 0; rep < grid.Reps; rep++ {
				stream++
				lat, err := measureOnce(demand, items, u, grid.Discipline, seed, stream)
				if err != nil {
					return nil, err
				}
				out = append(out, regress.ExecSample{Items: items, Util: u, Latency: lat})
			}
		}
	}
	return out, nil
}

func measureOnce(demand task.DemandFunc, items int, util float64, disc cpu.Discipline, seed, stream uint64) (sim.Time, error) {
	eng := sim.NewEngine()
	proc := cpu.NewScheduler(eng, 0, cpu.DefaultSlice, disc)
	rng := sim.NewRand(seed, stream)
	bg := cpu.NewBackgroundLoad(eng, proc, bgQuantum, sim.NewRand(seed, stream+1_000_000))
	bg.SetTarget(util)
	bg.SetJitter(0.1)
	bg.Start()

	var done sim.Time
	var submitted sim.Time
	// A small random phase offset decorrelates the measurement from the
	// background duty cycle.
	offset := sim.Time(rng.Uint64() % uint64(bgQuantum))
	eng.Schedule(warm+offset, func() {
		submitted = eng.Now()
		proc.Submit(&cpu.Job{
			Name:       "probe",
			Demand:     demand(items, rng),
			OnComplete: func(at sim.Time) { done = at; eng.Stop() },
		})
	})
	eng.RunUntil(warm + 120*sim.Second)
	if done == 0 {
		return 0, fmt.Errorf("profile: probe did not finish at items=%d util=%v", items, util)
	}
	return done - submitted, nil
}

// BuildExecModel profiles a demand function and fits eq. (3).
func BuildExecModel(demand task.DemandFunc, grid ExecGrid, seed uint64) (regress.ExecModel, regress.FitQuality, error) {
	samples, err := ExecSamples(demand, grid, seed)
	if err != nil {
		return regress.ExecModel{}, regress.FitQuality{}, err
	}
	return regress.FitExecModel(samples)
}

// CommGrid is the workload range sampled for the buffer-delay model.
type CommGrid struct {
	// TotalItems are the per-period total workloads to sample.
	TotalItems []int
	// Senders is how many messages the per-period burst is split into.
	Senders int
	// Periods is how many periods to observe per workload.
	Periods int
	// BytesPerItem sizes message payloads.
	BytesPerItem int
	// Period is the data arrival period.
	Period sim.Time
}

// DefaultCommGrid mirrors Table 1: 80-byte tracks, 1 s period, bursts
// split across 5 senders.
func DefaultCommGrid() CommGrid {
	g := CommGrid{Senders: 5, Periods: 5, BytesPerItem: 80, Period: sim.Second}
	for _, units := range []int{5, 20, 50, 80, 110, 150} {
		g.TotalItems = append(g.TotalItems, units*100)
	}
	return g
}

func (g CommGrid) validate() error {
	if len(g.TotalItems) == 0 || g.Senders < 1 || g.Periods < 1 || g.BytesPerItem < 1 || g.Period <= 0 {
		return fmt.Errorf("profile: invalid comm grid %+v", g)
	}
	return nil
}

// CommSamples measures mean per-period buffer delay on a segment carrying
// the given total workloads. Each period the workload is scattered as
// simultaneous messages from distinct senders — the worst-case burst the
// pipeline produces at a stage boundary — and the mean queueing delay is
// recorded (eq. 5's D_buf observation).
func CommSamples(cfg network.Config, grid CommGrid) ([]regress.CommSample, error) {
	if err := grid.validate(); err != nil {
		return nil, err
	}
	var out []regress.CommSample
	for _, total := range grid.TotalItems {
		eng := sim.NewEngine()
		seg := network.NewSegment(eng, cfg)
		var delays []sim.Time
		shares := task.SplitItems(total, grid.Senders)
		for p := 0; p < grid.Periods; p++ {
			at := sim.Time(p) * grid.Period
			eng.Schedule(at, func() {
				for s, items := range shares {
					m := &network.Message{
						From:         s,
						To:           grid.Senders,
						PayloadBytes: int64(items * grid.BytesPerItem),
					}
					m.OnDeliver = func(m *network.Message) {
						delays = append(delays, m.BufferDelay())
					}
					seg.Send(m)
				}
			})
		}
		eng.Run()
		if len(delays) == 0 {
			return nil, fmt.Errorf("profile: no deliveries at workload %d", total)
		}
		var sum sim.Time
		for _, d := range delays {
			sum += d
		}
		out = append(out, regress.CommSample{
			TotalItems:  total,
			BufferDelay: sum / sim.Time(len(delays)),
		})
	}
	return out, nil
}

// BuildCommModel profiles the segment and assembles the full eq. (4)–(6)
// model, wiring the segment's own framing constants into D_trans.
func BuildCommModel(cfg network.Config, grid CommGrid) (regress.CommModel, error) {
	samples, err := CommSamples(cfg, grid)
	if err != nil {
		return regress.CommModel{}, err
	}
	k, err := regress.FitBufferSlope(samples)
	if err != nil {
		return regress.CommModel{}, err
	}
	m := regress.CommModel{
		K:                       k,
		LinkBps:                 cfg.BandwidthBps,
		BytesPerItem:            grid.BytesPerItem,
		PerMessageOverheadBytes: cfg.PerMessageOverheadBytes,
		FrameOverheadBytes:      cfg.FrameOverheadBytes,
		MTU:                     cfg.MTU,
	}
	return m, m.Validate()
}
