package profile

import (
	"math"
	"testing"

	"repro/internal/dynbench"
	"repro/internal/network"
	"repro/internal/regress"
	"repro/internal/sim"
)

func TestExecSamplesIdleMatchDemand(t *testing.T) {
	spec := dynbench.NewTask(dynbench.Config{}) // noise-free
	demand := spec.Subtasks[dynbench.FilterStage].Demand
	grid := ExecGrid{Utils: []float64{0}, Items: []int{300, 1200, 4800}, Reps: 1}
	samples, err := ExecSamples(demand, grid, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("samples = %d", len(samples))
	}
	for _, s := range samples {
		want := dynbench.PureDemandMS(dynbench.FilterStage, s.Items)
		if got := s.Latency.Milliseconds(); math.Abs(got-want) > 1e-6 {
			t.Errorf("idle latency(%d) = %vms, want %vms", s.Items, got, want)
		}
	}
}

func TestExecSamplesContendedSlowdown(t *testing.T) {
	spec := dynbench.NewTask(dynbench.Config{})
	demand := spec.Subtasks[dynbench.FilterStage].Demand
	grid := ExecGrid{Utils: []float64{0, 0.6}, Items: []int{4800}, Reps: 2}
	samples, err := ExecSamples(demand, grid, 2)
	if err != nil {
		t.Fatal(err)
	}
	var idle, busy float64
	for _, s := range samples {
		if s.Util == 0 {
			idle += s.Latency.Milliseconds() / 2
		} else {
			busy += s.Latency.Milliseconds() / 2
		}
	}
	// RR contention law: latency ≈ demand·(1+u) → ratio ≈ 1.6.
	ratio := busy / idle
	if ratio < 1.4 || ratio > 1.8 {
		t.Errorf("contention ratio = %v, want ≈1.6", ratio)
	}
}

func TestExecSamplesDeterministic(t *testing.T) {
	spec := dynbench.NewTask(dynbench.DefaultConfig()) // with noise
	demand := spec.Subtasks[dynbench.EvalDecideStage].Demand
	grid := ExecGrid{Utils: []float64{0.4}, Items: []int{900}, Reps: 3}
	a, err := ExecSamples(demand, grid, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ExecSamples(demand, grid, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same-seed profiles diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestExecSamplesValidation(t *testing.T) {
	spec := dynbench.NewTask(dynbench.Config{})
	demand := spec.Subtasks[0].Demand
	if _, err := ExecSamples(nil, DefaultExecGrid(), 1); err == nil {
		t.Error("nil demand accepted")
	}
	if _, err := ExecSamples(demand, ExecGrid{}, 1); err == nil {
		t.Error("empty grid accepted")
	}
	if _, err := ExecSamples(demand, ExecGrid{Utils: []float64{2}, Items: []int{1}, Reps: 1}, 1); err == nil {
		t.Error("out-of-range utilization accepted")
	}
	if _, err := ExecSamples(demand, ExecGrid{Utils: []float64{0}, Items: []int{0}, Reps: 1}, 1); err == nil {
		t.Error("zero items accepted")
	}
}

func TestBuildExecModelApproachesGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("profiling sweep")
	}
	spec := dynbench.NewTask(dynbench.DefaultConfig())
	demand := spec.Subtasks[dynbench.FilterStage].Demand
	grid := ExecGrid{
		Utils: []float64{0, 0.2, 0.4, 0.6, 0.8},
		Items: []int{300, 900, 2100, 4200, 7500},
		Reps:  2,
	}
	model, q, err := BuildExecModel(demand, grid, 7)
	if err != nil {
		t.Fatal(err)
	}
	if q.R2 < 0.98 {
		t.Errorf("fit R² = %v, want ≥ 0.98 (%v)", q.R2, model)
	}
	// The fitted model must predict within 15 % of ground truth across
	// the profiled interior.
	truth := dynbench.GroundTruthExec(dynbench.FilterStage)
	for _, d := range []float64{10, 30, 60} {
		for _, u := range []float64{0.1, 0.5, 0.7} {
			want := truth.LatencyMS(d, u)
			got := model.LatencyMS(d, u)
			if math.Abs(got-want)/want > 0.15 {
				t.Errorf("model(%v,%v) = %v, truth %v", d, u, got, want)
			}
		}
	}
}

func TestCommSamplesLinearInLoad(t *testing.T) {
	cfg := network.DefaultConfig()
	samples, err := CommSamples(cfg, DefaultCommGrid())
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != len(DefaultCommGrid().TotalItems) {
		t.Fatalf("samples = %d", len(samples))
	}
	// Buffer delay grows with total workload.
	for i := 1; i < len(samples); i++ {
		if samples[i].BufferDelay <= samples[i-1].BufferDelay {
			t.Errorf("buffer delay not increasing: %v then %v",
				samples[i-1].BufferDelay, samples[i].BufferDelay)
		}
	}
}

func TestBuildCommModelSlopePositive(t *testing.T) {
	m, err := BuildCommModel(network.DefaultConfig(), DefaultCommGrid())
	if err != nil {
		t.Fatal(err)
	}
	if m.K <= 0 {
		t.Errorf("fitted K = %v, want > 0", m.K)
	}
	// The fitted model should predict the observed delays decently: the
	// relationship is linear by construction of the medium.
	samples, err := CommSamples(network.DefaultConfig(), DefaultCommGrid())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples[2:] { // skip the tiniest loads
		pred := m.BufferDelayMS(s.TotalItems)
		obs := s.BufferDelay.Milliseconds()
		if math.Abs(pred-obs)/obs > 0.5 {
			t.Errorf("K model predicts %vms at %d items, observed %vms", pred, s.TotalItems, obs)
		}
	}
}

func TestCommSamplesValidation(t *testing.T) {
	if _, err := CommSamples(network.DefaultConfig(), CommGrid{}); err == nil {
		t.Error("empty comm grid accepted")
	}
}

func TestCommModelAgreesWithWireOnTransmission(t *testing.T) {
	cfg := network.DefaultConfig()
	m, err := BuildCommModel(cfg, DefaultCommGrid())
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	seg := network.NewSegment(eng, cfg)
	for _, items := range []int{10, 100, 1000} {
		want := seg.TxTime(int64(items * 80))
		if got := m.TransmissionDelay(float64(items)); got != want {
			t.Errorf("D_trans(%d items) = %v, wire says %v", items, got, want)
		}
	}
}

// Regression guard: the fitted buffer slope lands in the same decade as
// the paper's Table 3 (k = 0.7 ms per hundred tracks).
func TestFittedBufferSlopeOrderOfMagnitude(t *testing.T) {
	m, err := BuildCommModel(network.DefaultConfig(), DefaultCommGrid())
	if err != nil {
		t.Fatal(err)
	}
	if m.K < 0.7/20 || m.K > 0.7*20 {
		t.Errorf("fitted K = %v, paper's Table 3 gives 0.7; expected same order of magnitude", m.K)
	}
	_ = regress.PaperBufferSlopeK
}
