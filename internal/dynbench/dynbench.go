// Package dynbench provides the benchmark application standing in for the
// paper's DynBench/AAW-derived real-time benchmark [SWR99]: a five-subtask
// sensing pipeline processing radar "tracks". Table 1's structure is
// reproduced exactly — five subtasks in series, two of them replicable
// (numbers 3 and 5, the paper's Filter and EvalDecide programs), 80-byte
// tracks, a 1 s data arrival period, and a 990 ms relative end-to-end
// deadline.
//
// Ground-truth CPU demands for the replicable subtasks follow Table 2's
// zero-contention coefficients: demand(d) = a3·d² + b3·d milliseconds with
// d in hundreds of tracks, so filtering and evaluate-and-decide cost grows
// quadratically with track count — which is exactly why splitting the
// stream across replicas pays superlinearly. The three fixed subtasks have
// small linear demands. Optional multiplicative noise models measurement
// variance.
package dynbench

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/task"
)

// Table 1 constants.
const (
	TrackBytes      = 80
	Period          = sim.Second
	Deadline        = 990 * sim.Millisecond
	NumSubtasks     = 5
	FilterStage     = 2 // subtask 3, 0-indexed
	EvalDecideStage = 4 // subtask 5, 0-indexed
)

// Ground-truth demand coefficients (ms, d in hundreds of tracks): the
// replicable stages take Table 2's a3/b3; the fixed stages are light and
// linear.
// The fixed-stage coefficients are sized so the pipeline genuinely
// saturates the 990 ms deadline near the paper's observed threshold of
// max workload ≈ 28×500 tracks (§5.2): the non-replicable work grows
// linearly and cannot be parallelized away, which is what eventually
// binds the deadline however many replicas the allocators add.
const (
	detectB    = 0.50
	associateB = 0.35
	filterA    = 0.11816174
	filterB    = 0.983699
	correlateB = 2.00
	evalA      = 0.022324
	evalB      = 1.443762
)

// Config controls benchmark construction.
type Config struct {
	// NoiseAmp is the multiplicative demand noise amplitude in [0, 1);
	// zero demands are exactly the ground-truth curves.
	NoiseAmp float64
	// Name is the task name; empty defaults to "AAW".
	Name string
}

// DefaultConfig returns the configuration used by the headline
// experiments: 3 % demand noise.
func DefaultConfig() Config { return Config{NoiseAmp: 0.03, Name: "AAW"} }

// quadDemand builds a DemandFunc of a·d² + b·d milliseconds.
func quadDemand(a, b, noiseAmp float64) task.DemandFunc {
	return func(items int, rng *rand.Rand) sim.Time {
		if items < 0 {
			panic(fmt.Sprintf("dynbench: negative item count %d", items))
		}
		d := float64(items) / regress.ItemsPerUnit
		ms := a*d*d + b*d
		t := sim.FromMillis(ms)
		if rng != nil && noiseAmp > 0 {
			t = sim.JitterTime(rng, t, noiseAmp)
		}
		return t
	}
}

// NewTask builds the benchmark task spec.
func NewTask(cfg Config) task.Spec {
	if cfg.NoiseAmp < 0 || cfg.NoiseAmp >= 1 {
		panic(fmt.Sprintf("dynbench: noise amplitude %v out of [0,1)", cfg.NoiseAmp))
	}
	name := cfg.Name
	if name == "" {
		name = "AAW"
	}
	return task.Spec{
		Name:     name,
		Period:   Period,
		Deadline: Deadline,
		Subtasks: []task.SubtaskSpec{
			{Name: "Detect", Demand: quadDemand(0, detectB, cfg.NoiseAmp), OutBytesPerItem: TrackBytes},
			{Name: "Associate", Demand: quadDemand(0, associateB, cfg.NoiseAmp), OutBytesPerItem: TrackBytes},
			{Name: "Filter", Replicable: true, Demand: quadDemand(filterA, filterB, cfg.NoiseAmp), OutBytesPerItem: TrackBytes},
			{Name: "Correlate", Demand: quadDemand(0, correlateB, cfg.NoiseAmp), OutBytesPerItem: TrackBytes},
			{Name: "EvalDecide", Replicable: true, Demand: quadDemand(evalA, evalB, cfg.NoiseAmp)},
		},
	}
}

// GroundTruthExec returns the theoretical eq. (3) model for a stage of the
// benchmark under the round-robin contention law latency ≈ demand·(1+u):
// a(u) = a3·(1+u) and b(u) = b3·(1+u), i.e. A2 = A3 = a3, B2 = B3 = b3,
// A1 = B1 = 0. Profiling fits should approach these coefficients.
func GroundTruthExec(stage int) regress.ExecModel {
	a, b := stageCoefficients(stage)
	return regress.ExecModel{A2: a, A3: a, B2: b, B3: b}
}

// PureDemandMS returns the stage's zero-contention demand in milliseconds
// for the given track count.
func PureDemandMS(stage, items int) float64 {
	a, b := stageCoefficients(stage)
	d := float64(items) / regress.ItemsPerUnit
	return a*d*d + b*d
}

func stageCoefficients(stage int) (a, b float64) {
	switch stage {
	case 0:
		return 0, detectB
	case 1:
		return 0, associateB
	case FilterStage:
		return filterA, filterB
	case 3:
		return 0, correlateB
	case EvalDecideStage:
		return evalA, evalB
	default:
		panic(fmt.Sprintf("dynbench: stage %d out of [0,%d)", stage, NumSubtasks))
	}
}
