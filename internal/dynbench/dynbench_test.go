package dynbench

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestNewTaskMatchesTable1(t *testing.T) {
	spec := NewTask(DefaultConfig())
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	if spec.Period != sim.Second {
		t.Errorf("period = %v, want 1s", spec.Period)
	}
	if spec.Deadline != 990*sim.Millisecond {
		t.Errorf("deadline = %v, want 990ms", spec.Deadline)
	}
	if len(spec.Subtasks) != 5 {
		t.Fatalf("subtasks = %d, want 5", len(spec.Subtasks))
	}
	var replicable int
	for i, st := range spec.Subtasks {
		if st.Replicable {
			replicable++
			if i != FilterStage && i != EvalDecideStage {
				t.Errorf("unexpected replicable stage %d", i)
			}
		}
	}
	if replicable != 2 {
		t.Errorf("replicable subtasks = %d, want 2 (Table 1)", replicable)
	}
	if spec.Subtasks[0].OutBytesPerItem != TrackBytes {
		t.Errorf("track size = %d, want 80", spec.Subtasks[0].OutBytesPerItem)
	}
	if spec.Subtasks[4].OutBytesPerItem != 0 {
		t.Error("final subtask emits a message")
	}
}

func TestNewTaskCustomName(t *testing.T) {
	if got := NewTask(Config{Name: "X"}).Name; got != "X" {
		t.Errorf("name = %q", got)
	}
	if got := NewTask(Config{}).Name; got != "AAW" {
		t.Errorf("default name = %q", got)
	}
}

func TestNewTaskBadNoisePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("noise 1.0 did not panic")
		}
	}()
	NewTask(Config{NoiseAmp: 1})
}

func TestFilterDemandMatchesTable2(t *testing.T) {
	spec := NewTask(Config{}) // no noise
	// 1000 tracks = 10 units: 0.11816174·100 + 0.983699·10 ms.
	want := sim.FromMillis(0.11816174*100 + 0.983699*10)
	if got := spec.Subtasks[FilterStage].Demand(1000, nil); got != want {
		t.Errorf("Filter demand(1000) = %v, want %v", got, want)
	}
}

func TestEvalDecideDemandMatchesTable2(t *testing.T) {
	spec := NewTask(Config{})
	want := sim.FromMillis(0.022324*4 + 1.443762*2) // 200 tracks
	if got := spec.Subtasks[EvalDecideStage].Demand(200, nil); got != want {
		t.Errorf("EvalDecide demand(200) = %v, want %v", got, want)
	}
}

func TestDemandZeroItemsZeroCost(t *testing.T) {
	spec := NewTask(Config{})
	for i, st := range spec.Subtasks {
		if got := st.Demand(0, nil); got != 0 {
			t.Errorf("stage %d demand(0) = %v", i, got)
		}
	}
}

func TestDemandNegativePanics(t *testing.T) {
	spec := NewTask(Config{})
	defer func() {
		if recover() == nil {
			t.Error("negative items did not panic")
		}
	}()
	spec.Subtasks[0].Demand(-1, nil)
}

func TestNoiseBoundedAndSeeded(t *testing.T) {
	spec := NewTask(Config{NoiseAmp: 0.1})
	base := PureDemandMS(FilterStage, 5000)
	rng := sim.NewRand(7, 7)
	for i := 0; i < 200; i++ {
		got := spec.Subtasks[FilterStage].Demand(5000, rng).Milliseconds()
		if got < base*0.9-1e-9 || got > base*1.1+1e-9 {
			t.Fatalf("noisy demand %v outside ±10%% of %v", got, base)
		}
	}
	// Same seed → same sequence.
	a := spec.Subtasks[FilterStage].Demand(5000, sim.NewRand(9, 9))
	b := spec.Subtasks[FilterStage].Demand(5000, sim.NewRand(9, 9))
	if a != b {
		t.Error("seeded noise not reproducible")
	}
}

func TestGroundTruthExecConsistentWithPureDemand(t *testing.T) {
	for _, stage := range []int{0, 1, FilterStage, 3, EvalDecideStage} {
		m := GroundTruthExec(stage)
		for _, items := range []int{100, 1000, 10000} {
			want := PureDemandMS(stage, items)
			if got := m.LatencyMS(float64(items)/100, 0); math.Abs(got-want) > 1e-9 {
				t.Errorf("stage %d items %d: model %v, pure %v", stage, items, got, want)
			}
			// Contention law: at u the model predicts (1+u)× the pure demand.
			if got := m.LatencyMS(float64(items)/100, 0.5); math.Abs(got-1.5*want) > 1e-9 {
				t.Errorf("stage %d: contention law broken: %v vs %v", stage, got, 1.5*want)
			}
		}
	}
}

func TestStageCoefficientsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("stage 5 did not panic")
		}
	}()
	PureDemandMS(5, 100)
}

// Property: splitting work across k replicas strictly reduces per-replica
// demand for the quadratic stages — the premise of replication (§3 item 6).
func TestPropertyReplicationReducesDemand(t *testing.T) {
	f := func(items16 uint16, k8 uint8) bool {
		items := int(items16) + 100
		k := int(k8%5) + 2
		whole := PureDemandMS(FilterStage, items)
		share := PureDemandMS(FilterStage, (items+k-1)/k)
		return share < whole
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: total CPU work shrinks superlinearly for the quadratic stage:
// k shares of d/k items cost less than the whole d.
func TestPropertyQuadraticWorkReduction(t *testing.T) {
	f := func(items16 uint16, k8 uint8) bool {
		items := int(items16) + 1000
		k := int(k8%5) + 2
		whole := PureDemandMS(FilterStage, items)
		var total float64
		for i := 0; i < k; i++ {
			total += PureDemandMS(FilterStage, items/k)
		}
		return total < whole
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
