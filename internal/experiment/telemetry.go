package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/telemetry"
)

func init() {
	register(Experiment{ID: "ext-telemetry", Paper: "observability extension (per-stage view of §5.2 runs)",
		Title: "Per-stage latency quantiles, slack, and forecast accuracy under telemetry",
		Run:   runExtTelemetry})
}

// runExtTelemetry replays the headline triangular run with the telemetry
// recorder attached and tables what the paper's aggregate metrics hide:
// where latency concentrates, how much slack each stage keeps, and how
// accurate the eq. (3)/(5) forecasts are per subtask.
func runExtTelemetry(ctx Context) (Output, error) {
	maxUnits := 24
	if ctx.Quick {
		maxUnits = 8
	}
	stageTable := &Table{
		Title: fmt.Sprintf("ext-telemetry — per-stage latency and forecast accuracy "+
			"(predictive, triangular max %d units)", maxUnits),
		Columns: []string{"stage", "p50 ms", "p95 ms", "p99 ms", "max ms",
			"slack p50", "exec MAPE%", "comm MAPE%"},
		Notes: []string{
			"slack p50 = median of (deadline − latency)/deadline per stage",
			"MAPE = rolling mean absolute percentage error of the eq. (3) exec and eq. (5) comm forecasts",
			"comm MAPE is blank for the final stage (no downstream transfer)",
		},
	}
	setup, err := BenchmarkSetup(TriangularFactory(maxUnits * WorkloadUnit))
	if err != nil {
		return Output{}, err
	}
	cfg := core.DefaultConfig()
	cfg.Telemetry = telemetry.New(telemetry.DefaultConfig())
	// Deliberately not ScheduledRun: the attached recorder is a per-run
	// side effect the tables below read back, so a deduplicated or
	// cache-served run would leave it empty. This stays the one batch
	// experiment that simulates outside the shared scheduler.
	if _, err := core.Run(cfg, core.Predictive, []core.TaskSetup{setup}); err != nil {
		return Output{}, err
	}
	snap := cfg.Telemetry.Snapshot()

	mape := map[int]telemetry.SeriesSnapshot{}
	for _, fs := range snap.Forecast {
		mape[fs.Stage] = fs
	}
	for _, st := range snap.Stages {
		comm := "-"
		if fs, ok := mape[st.Stage]; ok && fs.Comm.Matched > 0 {
			comm = fmt.Sprintf("%.1f", fs.Comm.MAPEPct)
		}
		exec := "-"
		if fs, ok := mape[st.Stage]; ok && fs.Exec.Matched > 0 {
			exec = fmt.Sprintf("%.1f", fs.Exec.MAPEPct)
		}
		l := st.Latency
		stageTable.AddRow(fmt.Sprintf("%s/%d", st.Task, st.Stage),
			l.P50MS, l.P95MS, l.P99MS, l.MaxMS, st.Slack.P50, exec, comm)
	}
	for _, tk := range snap.Tasks {
		l := tk.Latency
		stageTable.AddRow(tk.Task+" e2e", l.P50MS, l.P95MS, l.P99MS, l.MaxMS,
			tk.Slack.P50, "-", "-")
	}

	netTable := &Table{
		Title:   "ext-telemetry — segment delay split (eqs. 4-6) and scheduler queueing",
		Columns: []string{"series", "count", "p50 ms", "p95 ms", "p99 ms", "max ms"},
		Notes: []string{
			"buffer = enqueue→transmission-start wait (D_buf), wire = transmission time (D_trans)",
			"queue wait = job submission→first CPU slice across all processors",
		},
	}
	n := snap.Network
	for _, row := range []struct {
		name string
		h    telemetry.HistSnapshot
	}{
		{"msg buffer delay", n.BufferDelay},
		{"msg wire delay", n.WireDelay},
		{"cpu queue wait", snap.QueueWait},
	} {
		netTable.AddRow(row.name, row.h.Count, row.h.P50MS, row.h.P95MS, row.h.P99MS, row.h.MaxMS)
	}

	return Output{ID: "ext-telemetry", Tables: []*Table{stageTable, netTable}}, nil
}
