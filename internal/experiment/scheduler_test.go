package experiment

import (
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/telemetry"
)

// statsDelta runs f and returns how much each scheduler counter moved.
func statsDelta(f func()) SchedulerCounters {
	before := SchedulerStats()
	f()
	after := SchedulerStats()
	return SchedulerCounters{
		Requested:  after.Requested - before.Requested,
		Deduped:    after.Deduped - before.Deduped,
		MemoryHits: after.MemoryHits - before.MemoryHits,
		DiskHits:   after.DiskHits - before.DiskHits,
		Simulated:  after.Simulated - before.Simulated,
		Cancelled:  after.Cancelled - before.Cancelled,
		Remote:     after.Remote - before.Remote,
	}
}

// TestSchedulerSharesRunsAcrossExperiments drives three experiments with
// Monte Carlo replication concurrently through the shared scheduler (run
// under -race by the Makefile's race target). fig9 and fig10 consume the
// same triangular sweep and fig13 the two ramps, so with quick points
// (5), two algorithms and three replications the batch requests exactly
// 3 sweeps × 30 runs. Dedup reaches across sweeps: at workload 0 all
// three factories degenerate to the same constant pattern, so those 12
// cells (2 ramp sweeps × 2 algorithms × 3 seeds) are fingerprint-equal
// to the triangular sweep's and simulate only once.
func TestSchedulerSharesRunsAcrossExperiments(t *testing.T) {
	ResetSweepCache()
	ctx := Context{Quick: true, Parallelism: 4, Seeds: 3}
	d := statsDelta(func() {
		var wg sync.WaitGroup
		for _, id := range []string{"fig9", "fig10", "fig13"} {
			id := id
			wg.Add(1)
			go func() {
				defer wg.Done()
				e, err := ByID(id)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := e.Run(ctx); err != nil {
					t.Errorf("%s: %v", id, err)
				}
			}()
		}
		wg.Wait()
	})
	if want := uint64(90); d.Requested != want {
		t.Errorf("requested %d runs, want %d (3 sweeps × 5 points × 2 algorithms × 3 seeds)",
			d.Requested, want)
	}
	if want := uint64(78); d.Simulated != want {
		t.Errorf("simulated %d runs, want %d (90 requested − 12 shared workload-0 cells)",
			d.Simulated, want)
	}
	if shared := d.Deduped + d.MemoryHits; shared != 12 {
		t.Errorf("shared %d runs (%d in flight + %d memoized), want 12", shared, d.Deduped, d.MemoryHits)
	}
	if d.Requested != d.Simulated+d.Deduped+d.MemoryHits+d.DiskHits {
		t.Errorf("counters do not balance: %+v", d)
	}
}

// TestSchedulerDedupsOverlappingSweeps submits two sweeps whose point
// sets overlap; the shared cells must be served from the run memo, not
// re-simulated.
func TestSchedulerDedupsOverlappingSweeps(t *testing.T) {
	ResetSweepCache()
	first := statsDelta(func() {
		if _, err := SweepSeeds([]int{0, 4, 8}, TriangularFactory, 2, 2); err != nil {
			t.Fatal(err)
		}
	})
	if first.Requested != 12 || first.Simulated != 12 {
		t.Fatalf("cold sweep: %+v, want 12 requested / 12 simulated", first)
	}
	second := statsDelta(func() {
		if _, err := SweepSeeds([]int{4, 8, 12}, TriangularFactory, 2, 2); err != nil {
			t.Fatal(err)
		}
	})
	if second.Requested != 12 {
		t.Errorf("warm sweep requested %d, want 12", second.Requested)
	}
	if second.MemoryHits != 8 {
		t.Errorf("warm sweep memory hits = %d, want 8 (points 4 and 8 shared)", second.MemoryHits)
	}
	if second.Simulated != 4 {
		t.Errorf("warm sweep simulated %d, want 4 (point 12 only)", second.Simulated)
	}
}

// TestScheduledRunRejectsTelemetry pins the scheduler's one exclusion: a
// run carrying a live recorder cannot be deduplicated or cache-served.
func TestScheduledRunRejectsTelemetry(t *testing.T) {
	setup, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Telemetry = telemetry.New(telemetry.DefaultConfig())
	if _, err := ScheduledRun(cfg, core.Predictive, []core.TaskSetup{setup}); err == nil {
		t.Error("telemetry-carrying run accepted by the scheduler")
	}
}

// TestRunSeedPinsHistoricalValues guards the golden-CSV compatibility
// contract of the seed-derivation fix.
func TestRunSeedPinsHistoricalValues(t *testing.T) {
	for _, tc := range []struct {
		units int
		alg   core.Algorithm
		want  uint64
	}{
		{0, core.Predictive, 0x9e3779b9*1 + 10},
		{0, core.NonPredictive, 0x9e3779b9*1 + 14},
		{20, core.Predictive, 0x9e3779b9*21 + 10},
	} {
		if got := runSeed(tc.units, tc.alg, 0); got != tc.want {
			t.Errorf("runSeed(%d, %s, 0) = %d, want %d", tc.units, tc.alg, got, tc.want)
		}
	}
	// Non-headline algorithms and later replications must never collide
	// across the cells a sweep can produce.
	seen := map[uint64]string{}
	for units := 0; units <= 35; units++ {
		for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive, core.Greedy, core.StaticMax} {
			for rep := 0; rep < 10; rep++ {
				s := runSeed(units, alg, rep)
				id := string(alg)
				if prev, ok := seen[s]; ok {
					t.Fatalf("seed collision: %d shared by %s and %s/%d/%d", s, prev, id, units, rep)
				}
				seen[s] = id
			}
		}
	}
}
