package experiment

import (
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestFingerprintCoversEveryConfigField reflectively walks core.Config —
// including the embedded chaos, degradation, network, and monitor
// structs — mutating one leaf field at a time and asserting the run
// fingerprint changes. The fingerprint serializes cfg with %+v, so a
// field can only escape it via an ignored kind or a deliberate
// exclusion; this test turns that into a compile-against-the-cache
// guarantee for future fields.
func TestFingerprintCoversEveryConfigField(t *testing.T) {
	setup, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	setups := []core.TaskSetup{setup}
	base := core.DefaultConfig()
	baseFP := runFingerprint(base, core.Predictive, setups)

	if runFingerprint(base, core.NonPredictive, setups) == baseFP {
		t.Error("algorithm does not alter the fingerprint")
	}

	var walk func(t *testing.T, v reflect.Value, path string)
	mutateLeaf := func(f reflect.Value) bool {
		switch f.Kind() {
		case reflect.Bool:
			f.SetBool(!f.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(f.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(f.Uint() + 1)
		case reflect.Float32, reflect.Float64:
			f.SetFloat(f.Float() + 0.5)
		case reflect.String:
			f.SetString(f.String() + "x")
		default:
			return false
		}
		return true
	}
	walk = func(t *testing.T, v reflect.Value, path string) {
		for i := 0; i < v.NumField(); i++ {
			sf := v.Type().Field(i)
			if !sf.IsExported() {
				continue
			}
			f := v.Field(i)
			name := path + sf.Name
			switch f.Kind() {
			case reflect.Struct:
				walk(t, f, name+".")
			case reflect.Slice:
				// Populate nil slices with one zero element, then mutate
				// that element's first mutable leaf (or the element itself
				// for scalar slices).
				el := reflect.New(sf.Type.Elem()).Elem()
				f.Set(reflect.Append(reflect.MakeSlice(sf.Type, 0, 1), el))
				target := f.Index(0)
				if target.Kind() == reflect.Struct {
					// Appending a zero struct element already changes %+v
					// output versus the nil slice.
					break
				}
				if !mutateLeaf(target) {
					t.Errorf("field %s: slice element kind %v not mutable", name, target.Kind())
				}
			case reflect.Ptr, reflect.Interface:
				// Telemetry — deliberately excluded, checked separately.
				continue
			default:
				if !mutateLeaf(f) {
					t.Errorf("field %s: kind %v not handled by the coverage walker", name, f.Kind())
					continue
				}
			}
		}
	}

	// Mutate one leaf at a time by re-walking from a fresh copy per field:
	// enumerate field paths first, then flip each in isolation.
	var paths []string
	var collect func(v reflect.Value, path string)
	collect = func(v reflect.Value, path string) {
		for i := 0; i < v.NumField(); i++ {
			sf := v.Type().Field(i)
			if !sf.IsExported() {
				continue
			}
			f := v.Field(i)
			name := path + sf.Name
			switch f.Kind() {
			case reflect.Struct:
				collect(f, name+".")
			case reflect.Ptr, reflect.Interface:
				continue
			default:
				if name == "Parallel" {
					// Worker count: results are byte-identical for every
					// value, deliberately excluded (checked separately).
					continue
				}
				paths = append(paths, name)
			}
		}
	}
	collect(reflect.ValueOf(base), "")

	mutateAt := func(cfg *core.Config, path string) bool {
		v := reflect.ValueOf(cfg).Elem()
		rest := path
		for {
			dot := -1
			for i := 0; i < len(rest); i++ {
				if rest[i] == '.' {
					dot = i
					break
				}
			}
			if dot == -1 {
				break
			}
			v = v.FieldByName(rest[:dot])
			rest = rest[dot+1:]
		}
		f := v.FieldByName(rest)
		if f.Kind() == reflect.Slice {
			el := reflect.New(f.Type().Elem()).Elem()
			if el.Kind() != reflect.Struct {
				if !mutateLeaf(el) {
					return false
				}
			}
			f.Set(reflect.Append(reflect.MakeSlice(f.Type(), 0, 1), el))
			return true
		}
		return mutateLeaf(f)
	}

	if len(paths) < 20 {
		t.Fatalf("coverage walker found only %d leaf fields in core.Config — walker broken?", len(paths))
	}
	for _, p := range paths {
		cfg := core.DefaultConfig()
		if !mutateAt(&cfg, p) {
			t.Errorf("field %s: kind not mutable by the coverage walker", p)
			continue
		}
		if runFingerprint(cfg, core.Predictive, setups) == baseFP {
			t.Errorf("field %s does not alter the run fingerprint — the disk cache would serve "+
				"stale results for configs differing only in this field", p)
		}
	}

	// Sanity-check the walker itself: walk must not find unhandled kinds.
	probe := core.DefaultConfig()
	walk(t, reflect.ValueOf(&probe).Elem(), "")
}

// The telemetry recorder observes a run without shaping it, and recorders
// are never comparable across processes: it must NOT enter the
// fingerprint, or warm-cache runs with telemetry wired would never hit.
func TestFingerprintExcludesTelemetry(t *testing.T) {
	setup, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	setups := []core.TaskSetup{setup}
	base := core.DefaultConfig()
	with := base
	with.Telemetry = nil // ScheduledRun forbids non-nil; simulate the field changing identity
	if runFingerprint(base, core.Predictive, setups) != runFingerprint(with, core.Predictive, setups) {
		t.Error("telemetry field altered the fingerprint")
	}
}

// The parallel worker count trades wall-clock only — lane results are
// byte-identical for every value — so it must NOT enter the fingerprint,
// or a sweep recorded serially would never warm-hit a parallel rerun.
// The lane partition itself, by contrast, shapes results and must split
// the cache.
func TestFingerprintExcludesParallelButNotLanes(t *testing.T) {
	setup, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	setups := []core.TaskSetup{setup}
	base := core.DefaultConfig()
	with := base
	with.Parallel = 8
	if runFingerprint(base, core.Predictive, setups) != runFingerprint(with, core.Predictive, setups) {
		t.Error("Parallel altered the fingerprint; serial and parallel runs would not share cache entries")
	}
	laned := base
	laned.Lanes = 2
	if runFingerprint(base, core.Predictive, setups) == runFingerprint(laned, core.Predictive, setups) {
		t.Error("Lanes did not alter the fingerprint; partitioned runs would serve single-segment cache entries")
	}
}

// Chaos and degradation configs must produce distinct cache identities:
// two intensities of the ext-chaos grid can never share a disk entry.
func TestFingerprintSeparatesChaosCells(t *testing.T) {
	setup, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	setups := []core.TaskSetup{setup}
	seen := map[string]string{}
	for _, in := range chaosIntensities() {
		for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive} {
			fp := runFingerprint(chaosConfig(in, chaosSeed(in.name, alg, 0)), alg, setups)
			id := in.name + "/" + string(alg)
			if prev, ok := seen[fp]; ok {
				t.Fatalf("fingerprint collision between %s and %s", prev, id)
			}
			seen[fp] = id
		}
	}
}
