package experiment

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/ascii"
)

// Table is one rendered artifact (a paper table, or one figure's data as
// columns of series).
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values print with %v.
func (t *Table) AddRow(values ...any) {
	row := make([]string, len(values))
	for i, v := range values {
		switch x := v.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprintf("%v", x)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len([]rune(cell)) > widths[i] {
				widths[i] = len([]rune(cell))
			}
		}
	}
	if _, err := fmt.Fprintf(w, "## %s\n\n", t.Title); err != nil {
		return err
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len([]rune(c))
			}
			parts[i] = c + strings.Repeat(" ", pad)
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(seps)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "\nnote: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteCSV writes the table as CSV (no quoting needed: cells are numeric
// or simple identifiers).
func (t *Table) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, strings.Join(t.Columns, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

// Output is everything an experiment produces.
type Output struct {
	ID     string
	Tables []*Table
	// Charts are ASCII renderings of the figure's series, emitted after
	// the tables.
	Charts []*ascii.Chart
}

// Render writes all tables, then all charts.
func (o Output) Render(w io.Writer) error {
	for _, t := range o.Tables {
		if err := t.Render(w); err != nil {
			return err
		}
	}
	for _, c := range o.Charts {
		if err := c.Render(w); err != nil {
			return err
		}
		if _, err := fmt.Fprintln(w); err != nil {
			return err
		}
	}
	return nil
}
