package experiment

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dynbench"
)

func quickCtx() Context { return Context{Quick: true} }

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) == 0 {
		t.Fatal("empty registry")
	}
	want := []string{
		"table1", "table2", "table3",
		"fig2", "fig3", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"ext-threshold", "ext-multitask", "ext-slack", "ext-ut", "ext-patterns", "ext-faults", "ext-seeds", "ext-allocators", "ext-models", "ext-overlap", "ext-warmup", "ext-sched", "ext-smoothing", "ext-telemetry",
	}
	ids := make(map[string]bool)
	for _, e := range all {
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
		if e.Run == nil || e.Title == "" || e.Paper == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	for _, id := range want {
		if !ids[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
}

func TestByID(t *testing.T) {
	if _, err := ByID("fig9"); err != nil {
		t.Error(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Error("unknown id accepted")
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"a", "bb"},
		Notes:   []string{"a note"},
	}
	tab.AddRow(1, 2.5)
	tab.AddRow("x", "y")
	var txt strings.Builder
	if err := tab.Render(&txt); err != nil {
		t.Fatal(err)
	}
	out := txt.String()
	for _, want := range []string{"## demo", "a  bb", "1  2.500", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	var csv strings.Builder
	if err := tab.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(csv.String(), "a,bb\n1,2.500\n") {
		t.Errorf("csv = %q", csv.String())
	}
}

func TestDefaultModelsQuality(t *testing.T) {
	m, err := DefaultModels()
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Exec) != dynbench.NumSubtasks {
		t.Fatalf("exec models = %d", len(m.Exec))
	}
	for i, q := range m.ExecFit {
		if q.R2 < 0.98 {
			t.Errorf("stage %d fit R² = %v", i, q.R2)
		}
	}
	if m.Comm.K <= 0 {
		t.Errorf("comm K = %v", m.Comm.K)
	}
	if err := m.Comm.Validate(); err != nil {
		t.Error(err)
	}
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			out, err := e.Run(quickCtx())
			if err != nil {
				t.Fatal(err)
			}
			if out.ID != e.ID {
				t.Errorf("output id %q", out.ID)
			}
			if len(out.Tables) == 0 {
				t.Fatal("no tables")
			}
			for _, tab := range out.Tables {
				if len(tab.Rows) == 0 {
					t.Errorf("table %q empty", tab.Title)
				}
				if len(tab.Columns) == 0 {
					t.Errorf("table %q has no columns", tab.Title)
				}
				for _, row := range tab.Rows {
					if len(row) != len(tab.Columns) {
						t.Errorf("table %q row width %d != %d columns", tab.Title, len(row), len(tab.Columns))
					}
				}
			}
		})
	}
}

// The paper's headline claim: under the fluctuating (triangular) pattern
// the predictive algorithm's combined metric is never worse, and is
// strictly better once replication is in play.
func TestHeadlineOrderingTriangular(t *testing.T) {
	results, err := CachedSweep("triangular", quickCtx().sweepPoints(), TriangularFactory, 0)
	if err != nil {
		t.Fatal(err)
	}
	points, pred, nonpred := byPoint(results)
	strictlyBetter := 0
	for _, p := range points {
		cp, cn := pred[p].Combined(), nonpred[p].Combined()
		if cp > cn*1.02 {
			t.Errorf("point %d: predictive C %.2f worse than non-predictive %.2f", p, cp, cn)
		}
		if cp < cn*0.98 {
			strictlyBetter++
		}
	}
	if strictlyBetter == 0 {
		t.Error("predictive never strictly better — Figure 10's separation missing")
	}
	// Figure 9(d): the non-predictive algorithm uses at least as many
	// replicas everywhere it adapts.
	for _, p := range points {
		if nonpred[p].MeanReplicas < pred[p].MeanReplicas-0.05 {
			t.Errorf("point %d: non-predictive replicas %.2f below predictive %.2f",
				p, nonpred[p].MeanReplicas, pred[p].MeanReplicas)
		}
	}
	// At the smallest workload the algorithms coincide (§5.2: "for
	// smaller workloads where no replication is needed, the performance
	// of both algorithms is the same").
	if p0 := points[0]; pred[p0].Replications != 0 || nonpred[p0].Replications != 0 {
		t.Error("replication triggered at the no-load point")
	}
}

func TestSweepDeterministic(t *testing.T) {
	a, err := Sweep([]int{10}, TriangularFactory, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Reset so the second sweep re-simulates instead of reading the
	// scheduler's run memo — equality must come from determinism.
	ResetSweepCache()
	b, err := Sweep([]int{10}, TriangularFactory, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("sweep diverged at %d:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestCachedSweepReturnsSameSlice(t *testing.T) {
	x, err := CachedSweep("test-key", []int{4}, TriangularFactory, 1)
	if err != nil {
		t.Fatal(err)
	}
	y, err := CachedSweep("test-key", []int{4}, TriangularFactory, 1)
	if err != nil {
		t.Fatal(err)
	}
	if &x[0] != &y[0] {
		t.Error("cache miss on identical key")
	}
}

func TestBenchmarkSetupUsesProfiledModels(t *testing.T) {
	s, err := BenchmarkSetup(TriangularFactory(4000))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Exec) != len(s.Spec.Subtasks) {
		t.Fatalf("setup exec models = %d", len(s.Exec))
	}
	if _, err := core.Run(core.DefaultConfig(), core.Predictive, []core.TaskSetup{s}); err != nil {
		t.Fatal(err)
	}
}

func TestPatternFactoriesDegenerate(t *testing.T) {
	for _, f := range []PatternFactory{TriangularFactory, IncreasingFactory, DecreasingFactory} {
		p := f(0)
		if p.Size(0) != MinWorkload {
			t.Errorf("degenerate factory returned %d, want min workload", p.Size(0))
		}
		if p.Periods() != SweepPeriods {
			t.Errorf("degenerate factory periods = %d", p.Periods())
		}
	}
}
