package experiment

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// recordObserver is a mutex-guarded WallObserver that tallies every
// callback, for asserting exactly which lifecycle events the scheduler
// emits per cell.
type recordObserver struct {
	mu       sync.Mutex
	queued   int
	started  int
	finished map[string]int // outcome kind -> count
	diskHits int
	negWait  bool // any negative wait/run duration observed
}

func newRecordObserver() *recordObserver {
	return &recordObserver{finished: make(map[string]int)}
}

func (r *recordObserver) CellQueued() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queued++
}

func (r *recordObserver) CellStarted(wait time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.started++
	if wait < 0 {
		r.negWait = true
	}
}

func (r *recordObserver) CellFinished(outcome string, run time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.finished[outcome]++
	if run < 0 {
		r.negWait = true
	}
}

func (r *recordObserver) DiskHit(d time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.diskHits++
	if d < 0 {
		r.negWait = true
	}
}

// snapshot returns a copy of the counters safe to compare against.
func (r *recordObserver) snapshot() (queued, started, diskHits int, finished map[string]int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	finished = make(map[string]int, len(r.finished))
	for k, v := range r.finished {
		finished[k] = v
	}
	return r.queued, r.started, r.diskHits, finished
}

// observerRunSetup builds one wire-expressible benchmark run with a seed
// namespaced away from every other test file's cells.
func observerRunSetup(t *testing.T, seed uint64) (core.Config, []core.TaskSetup) {
	t.Helper()
	setup, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 0xb5_1000 + seed
	return cfg, []core.TaskSetup{setup}
}

// TestWallObserverCellLifecycle pins the observer contract for the
// simulate path: one fresh cell emits exactly queued → started →
// finished("simulated"), and a memory hit on the same cell emits
// nothing (the run never re-enters the queue).
func TestWallObserverCellLifecycle(t *testing.T) {
	ResetSweepCache()
	rec := newRecordObserver()
	SetWallObserver(rec)
	defer SetWallObserver(nil)

	cfg, setups := observerRunSetup(t, 1)
	if _, err := ScheduledRun(cfg, core.Predictive, setups); err != nil {
		t.Fatal(err)
	}
	queued, started, diskHits, finished := rec.snapshot()
	if queued != 1 || started != 1 || finished[cellSimulated] != 1 {
		t.Fatalf("fresh cell: queued=%d started=%d finished=%v, want 1/1/{simulated:1}",
			queued, started, finished)
	}
	if diskHits != 0 {
		t.Fatalf("fresh cell reported %d disk hits without a disk cache", diskHits)
	}

	// Memory hit: the memoized result is returned without re-queueing.
	if _, err := ScheduledRun(cfg, core.Predictive, setups); err != nil {
		t.Fatal(err)
	}
	queued, started, _, finished = rec.snapshot()
	if queued != 1 || started != 1 || finished[cellSimulated] != 1 {
		t.Fatalf("memory hit leaked observer events: queued=%d started=%d finished=%v",
			queued, started, finished)
	}
	if rec.negWait {
		t.Fatal("observer saw a negative wall-clock duration")
	}
}

// TestWallObserverDiskHit pins that a cell served from the persistent
// cache reports outcome "disk_hit" plus one DiskHit latency sample, and
// still walks the full queued → started → finished lifecycle.
func TestWallObserverDiskHit(t *testing.T) {
	cache, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetDiskCache(cache)
	defer SetDiskCache(nil)
	ResetSweepCache()

	rec := newRecordObserver()
	SetWallObserver(rec)
	defer SetWallObserver(nil)

	cfg, setups := observerRunSetup(t, 2)
	cold, err := ScheduledRun(cfg, core.Predictive, setups)
	if err != nil {
		t.Fatal(err)
	}

	ResetSweepCache() // forget the in-process memo; disk must serve the rerun
	warm, err := ScheduledRun(cfg, core.Predictive, setups)
	if err != nil {
		t.Fatal(err)
	}
	if warm != cold {
		t.Fatal("disk-served outcome differs from the simulated one")
	}

	queued, started, diskHits, finished := rec.snapshot()
	if queued != 2 || started != 2 {
		t.Fatalf("queued=%d started=%d, want 2/2 (cold + warm both enter the queue)", queued, started)
	}
	if finished[cellSimulated] != 1 || finished[cellDiskHit] != 1 {
		t.Fatalf("finished=%v, want {simulated:1, disk_hit:1}", finished)
	}
	if diskHits != 1 {
		t.Fatalf("DiskHit fired %d times, want 1", diskHits)
	}
}
