package experiment

// Scheduler-side resilience coverage: worker panic isolation, the
// deterministic-vs-transient memoization split, and disk-cache write
// failures staying invisible to the job (all driven through the
// service-layer fault harness: the sim hook and the FS injector).

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/resil"
	"repro/internal/workload"
)

// faultSetup builds a cheap runnable setup for fault tests.
func faultSetup(t *testing.T) []core.TaskSetup {
	t.Helper()
	setup, err := BenchmarkSetup(nil)
	if err != nil {
		t.Fatal(err)
	}
	setup.Pattern = workload.NewConstant(500, 3)
	return []core.TaskSetup{setup}
}

func faultCfg(seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	return cfg
}

// TestWorkerPanicIsolated: a panicking simulation fails only its own
// cell — as a structured PanicError with the stack attached — and the
// worker pool keeps serving subsequent cells.
func TestWorkerPanicIsolated(t *testing.T) {
	defer SetSimHook(nil)
	SetSimHook(func(cfg core.Config, alg core.Algorithm) error {
		if cfg.Seed == 0xdead01 {
			panic("injected worker panic")
		}
		return nil
	})

	_, err := ScheduledRun(faultCfg(0xdead01), core.Predictive, faultSetup(t))
	p, ok := resil.IsPanic(err)
	if !ok {
		t.Fatalf("panicking cell returned %v, want a PanicError", err)
	}
	if p.Value != "injected worker panic" || len(p.Stack) == 0 {
		t.Errorf("panic error lost its value or stack: %+v", p)
	}
	if !strings.Contains(string(p.Stack), "simulate") {
		t.Errorf("captured stack does not show the worker's run path:\n%s", p.Stack)
	}

	// The pool is still alive: an untainted cell runs to completion.
	out, err := ScheduledRun(faultCfg(0xa11ce), core.Predictive, faultSetup(t))
	if err != nil {
		t.Fatalf("cell after the panic failed: %v", err)
	}
	if out.EventsFired == 0 {
		t.Error("post-panic cell produced no events")
	}
}

// TestDeterministicErrorsAreMemoized: a deterministic failure is never
// re-executed — a retry of the identical cell gets the memoized error
// without the hook firing again.
func TestDeterministicErrorsAreMemoized(t *testing.T) {
	defer SetSimHook(nil)
	calls := 0
	detErr := errors.New("deterministic model failure")
	SetSimHook(func(cfg core.Config, alg core.Algorithm) error {
		if cfg.Seed == 0xdead02 {
			calls++
			return detErr
		}
		return nil
	})

	cfg, setups := faultCfg(0xdead02), faultSetup(t)
	if _, err := ScheduledRun(cfg, core.Predictive, setups); !errors.Is(err, detErr) {
		t.Fatalf("first attempt: %v", err)
	}
	if _, err := ScheduledRun(cfg, core.Predictive, setups); !errors.Is(err, detErr) {
		t.Fatalf("second attempt: %v", err)
	}
	if calls != 1 {
		t.Errorf("deterministic failure executed %d times, want 1 (memoized)", calls)
	}
}

// TestTransientErrorsAreEvicted: a transiently failed cell leaves the
// memo, so the next identical request re-executes and can succeed.
func TestTransientErrorsAreEvicted(t *testing.T) {
	defer SetSimHook(nil)
	calls := 0
	SetSimHook(func(cfg core.Config, alg core.Algorithm) error {
		if cfg.Seed == 0xdead03 {
			calls++
			if calls == 1 {
				return resil.Transientf("queue race, attempt %d", calls)
			}
		}
		return nil
	})

	cfg, setups := faultCfg(0xdead03), faultSetup(t)
	_, err := ScheduledRun(cfg, core.Predictive, setups)
	if !resil.IsTransient(err) {
		t.Fatalf("first attempt: %v, want transient", err)
	}
	out, err := ScheduledRun(cfg, core.Predictive, setups)
	if err != nil {
		t.Fatalf("retry after transient failure: %v", err)
	}
	if calls != 2 {
		t.Errorf("hook fired %d times, want 2 (evicted, then re-executed)", calls)
	}
	if out.EventsFired == 0 {
		t.Error("retried cell produced no events")
	}
}

// TestCacheWriteFailureInvisibleToRun: with a cache whose writes fail,
// the run still completes with the correct result; the entry just never
// lands, so an identical later request (memo dropped) re-simulates.
func TestCacheWriteFailureInvisibleToRun(t *testing.T) {
	inj := resil.NewInjector(nil).Inject(resil.Rule{Op: resil.OpWrite, Err: fmt.Errorf("injected: cache disk full")})
	cache, err := OpenDiskCacheFS(t.TempDir(), inj)
	if err != nil {
		t.Fatal(err)
	}
	SetDiskCache(cache)
	defer SetDiskCache(nil)

	cfg, setups := faultCfg(0xdead04), faultSetup(t)
	before := SchedulerStats()
	out, err := ScheduledRun(cfg, core.Predictive, setups)
	if err != nil {
		t.Fatalf("run with failing cache writes: %v", err)
	}
	if cache.Len() != 0 {
		t.Errorf("cache holds %d entries though every write failed", cache.Len())
	}

	ResetSweepCache() // drop the in-process memo; disk would be next
	again, err := ScheduledRun(cfg, core.Predictive, setups)
	if err != nil {
		t.Fatal(err)
	}
	if again != out {
		t.Errorf("re-simulated result differs: %+v vs %+v", again, out)
	}
	delta := SchedulerStats()
	if sim := delta.Simulated - before.Simulated; sim != 2 {
		t.Errorf("simulated %d cells, want 2 (cache never hit)", sim)
	}
	if hits := delta.DiskHits - before.DiskHits; hits != 0 {
		t.Errorf("disk hits moved by %d with a write-dead cache", hits)
	}
}
