// Package experiment defines one runnable specification per paper table
// and figure (plus extensions), a parallel sweep runner, and plain-text /
// CSV renderers for the results. See DESIGN.md §4 for the index.
package experiment

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dynbench"
	"repro/internal/profile"
	"repro/internal/regress"
	"repro/internal/task"
	"repro/internal/workload"
)

// Models bundles the fitted regression models for one task pipeline.
type Models struct {
	Exec    []regress.ExecModel
	ExecFit []regress.FitQuality
	Comm    regress.CommModel
}

// BuildModels runs the full §4.2.1 profiling pipeline for the given task:
// every subtask's latency is profiled over the (data size × utilization)
// grid and fitted to eq. (3), and the segment's buffer delay is profiled
// and fitted to eq. (5).
func BuildModels(cfg core.Config, spec task.Spec, grid profile.ExecGrid, commGrid profile.CommGrid, seed uint64) (Models, error) {
	m := Models{}
	for i, st := range spec.Subtasks {
		fit, q, err := profile.BuildExecModel(st.Demand, grid, seed+uint64(i)*101)
		if err != nil {
			return Models{}, fmt.Errorf("experiment: profiling %s: %w", st.Name, err)
		}
		m.Exec = append(m.Exec, fit)
		m.ExecFit = append(m.ExecFit, q)
	}
	comm, err := profile.BuildCommModel(cfg.Network, commGrid)
	if err != nil {
		return Models{}, fmt.Errorf("experiment: profiling segment: %w", err)
	}
	m.Comm = comm
	return m, nil
}

// DefaultModels profiles the Table 1 benchmark once per process and
// caches the result: every sweep point reuses the same fitted models,
// exactly as the paper derives Tables 2–3 once and runs all experiments
// with them.
func DefaultModels() (Models, error) {
	modelsOnce.Do(func() {
		spec := dynbench.NewTask(dynbench.DefaultConfig())
		cachedModels, cachedErr = BuildModels(
			core.DefaultConfig(), spec, profile.DefaultExecGrid(), profile.DefaultCommGrid(), 11,
		)
	})
	return cachedModels, cachedErr
}

var (
	modelsOnce   sync.Once
	cachedModels Models
	cachedErr    error
)

// BenchmarkSetup binds the Table 1 benchmark task to a workload pattern
// using the cached profiled models.
func BenchmarkSetup(pattern workload.Pattern) (core.TaskSetup, error) {
	m, err := DefaultModels()
	if err != nil {
		return core.TaskSetup{}, err
	}
	return core.TaskSetup{
		Spec:    dynbench.NewTask(dynbench.DefaultConfig()),
		Pattern: pattern,
		Exec:    m.Exec,
		Comm:    m.Comm,
	}, nil
}

// ModelSource selects where a setup's regression models come from — the
// fidelity ablation of DESIGN.md §3 (the experiments default to profiled
// models, the paper's own methodology).
type ModelSource string

// Model sources.
const (
	// SourceProfiled fits eq. (3)/(5) from this simulator's profiling
	// runs — the paper's methodology, and the default.
	SourceProfiled ModelSource = "profiled"
	// SourcePaper uses the published Table 2/3 coefficients verbatim
	// (with u as a fraction) for the replicable subtasks; the
	// non-replicable stages, for which the paper publishes nothing, keep
	// ground-truth models.
	SourcePaper ModelSource = "paper"
	// SourceGroundTruth uses the exact demand curves with the RR
	// contention law — a forecast oracle.
	SourceGroundTruth ModelSource = "ground-truth"
)

// SetupWithModels binds the benchmark task to a pattern using the chosen
// model source.
func SetupWithModels(pattern workload.Pattern, source ModelSource) (core.TaskSetup, error) {
	spec := dynbench.NewTask(dynbench.DefaultConfig())
	net := core.DefaultConfig().Network
	truthComm := regress.CommModel{
		K:                       regress.PaperBufferSlopeK,
		LinkBps:                 net.BandwidthBps,
		BytesPerItem:            dynbench.TrackBytes,
		PerMessageOverheadBytes: net.PerMessageOverheadBytes,
		FrameOverheadBytes:      net.FrameOverheadBytes,
		MTU:                     net.MTU,
	}
	switch source {
	case SourceProfiled:
		return BenchmarkSetup(pattern)
	case SourceGroundTruth:
		exec := make([]regress.ExecModel, len(spec.Subtasks))
		for i := range exec {
			exec[i] = dynbench.GroundTruthExec(i)
		}
		m, err := DefaultModels() // profiled comm slope: the oracle still pays real queueing
		if err != nil {
			return core.TaskSetup{}, err
		}
		return core.TaskSetup{Spec: spec, Pattern: pattern, Exec: exec, Comm: m.Comm}, nil
	case SourcePaper:
		exec := make([]regress.ExecModel, len(spec.Subtasks))
		for i := range exec {
			exec[i] = dynbench.GroundTruthExec(i)
		}
		exec[dynbench.FilterStage] = regress.PaperExecSubtask3()
		exec[dynbench.EvalDecideStage] = regress.PaperExecSubtask5()
		return core.TaskSetup{Spec: spec, Pattern: pattern, Exec: exec, Comm: truthComm}, nil
	default:
		return core.TaskSetup{}, fmt.Errorf("experiment: unknown model source %q", source)
	}
}
