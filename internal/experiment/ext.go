package experiment

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/dynbench"
	"repro/internal/profile"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "ext-threshold", Paper: "§5.2 (results beyond workload 28, not shown in the paper)",
		Title: "Ramp behaviour past the saturation threshold: winner alternation",
		Run:   runExtThreshold})
	register(Experiment{ID: "ext-multitask", Paper: "§3 model generality (evaluation used one task)",
		Title: "Combined metric with 1-3 periodic tasks sharing the cluster",
		Run:   runExtMultitask})
	register(Experiment{ID: "ext-slack", Paper: "ablation of Figure 5's slack sl = 0.2·dl",
		Title: "Sensitivity of the predictive algorithm to the required slack",
		Run:   runExtSlack})
	register(Experiment{ID: "ext-ut", Paper: "ablation of Table 1's 20% threshold",
		Title: "Sensitivity of the non-predictive algorithm to UT",
		Run:   runExtUT})
	register(Experiment{ID: "ext-patterns", Paper: "workload-pattern extension",
		Title: "Step, burst and sinusoid workloads at a fixed max workload",
		Run:   runExtPatterns})
}

func runExtThreshold(ctx Context) (Output, error) {
	points := []int{28, 32, 36, 40, 44, 48, 52, 56, 60}
	if ctx.Quick {
		points = []int{28, 40, 52}
	}
	results, err := Sweep(points, IncreasingFactory, ctx.Parallelism)
	if err != nil {
		return Output{}, err
	}
	pts, pred, nonpred := byPoint(results)
	t := &Table{
		Title: "ext-threshold — increasing ramp beyond the saturation threshold",
		Columns: []string{"max workload", "C pred", "C nonpred", "winner",
			"MD% pred", "MD% nonpred"},
		Notes: []string{
			"the paper reports (without figures) that beyond max workload ≈ 28 the two algorithms alternate; " +
				"this experiment materializes that region",
		},
	}
	flips := 0
	last := ""
	for _, p := range pts {
		w := winner(pred[p].Combined(), nonpred[p].Combined())
		if last != "" && w != last {
			flips++
		}
		last = w
		t.AddRow(p, pred[p].Combined(), nonpred[p].Combined(), w,
			pred[p].MissedPct(), nonpred[p].MissedPct())
	}
	t.Notes = append(t.Notes, fmt.Sprintf("winner changed %d time(s) across the region", flips))
	return Output{ID: "ext-threshold", Tables: []*Table{t}}, nil
}

func runExtMultitask(ctx Context) (Output, error) {
	const maxW = 8 * WorkloadUnit
	t := &Table{
		Title:   "ext-multitask — triangular workload, 1-3 tasks sharing the six nodes",
		Columns: []string{"tasks", "algorithm", "MD%", "CPU%", "Net%", "replicas", "C"},
		Notes: []string{
			"each extra task runs the same pipeline with offset home placement; eq. (5)'s Σ ds(Ti,c) " +
				"now spans several tasks",
		},
	}
	for n := 1; n <= 3; n++ {
		for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive} {
			var setups []core.TaskSetup
			for i := 0; i < n; i++ {
				s, err := BenchmarkSetup(workload.NewTriangular(MinWorkload, maxW, SweepPeriods, 2))
				if err != nil {
					return Output{}, err
				}
				s.Spec.Name = fmt.Sprintf("AAW-%d", i+1)
				homes := make([]int, len(s.Spec.Subtasks))
				for j := range homes {
					homes[j] = (j + i*2) % 6
				}
				s.Homes = homes
				setups = append(setups, s)
			}
			cfg := core.DefaultConfig()
			cfg.Seed = uint64(1000 + n)
			out, err := ScheduledRun(cfg, alg, setups)
			if err != nil {
				return Output{}, err
			}
			m := out.Metrics
			t.AddRow(n, string(alg), m.MissedPct(), m.CPUUtilPct(), m.NetUtilPct(), m.MeanReplicas, m.Combined())
		}
	}
	return Output{ID: "ext-multitask", Tables: []*Table{t}}, nil
}

func runExtSlack(ctx Context) (Output, error) {
	const maxW = 24 * WorkloadUnit
	t := &Table{
		Title:   "ext-slack — predictive algorithm with varying required slack (paper: 0.2)",
		Columns: []string{"slack fraction", "MD%", "CPU%", "Net%", "replicas", "C"},
	}
	for _, sl := range []float64{0.05, 0.1, 0.2, 0.3, 0.4} {
		setup, err := BenchmarkSetup(workload.NewTriangular(MinWorkload, maxW, SweepPeriods, 2))
		if err != nil {
			return Output{}, err
		}
		cfg := core.DefaultConfig()
		cfg.Monitor.SlackFraction = sl
		if cfg.Monitor.HighSlackFraction <= sl {
			cfg.Monitor.HighSlackFraction = sl + 0.3
		}
		out, err := ScheduledRun(cfg, core.Predictive, []core.TaskSetup{setup})
		if err != nil {
			return Output{}, err
		}
		m := out.Metrics
		t.AddRow(sl, m.MissedPct(), m.CPUUtilPct(), m.NetUtilPct(), m.MeanReplicas, m.Combined())
	}
	return Output{ID: "ext-slack", Tables: []*Table{t}}, nil
}

func runExtUT(ctx Context) (Output, error) {
	const maxW = 24 * WorkloadUnit
	t := &Table{
		Title:   "ext-ut — non-predictive algorithm with varying utilization threshold (Table 1: 0.2)",
		Columns: []string{"UT", "MD%", "CPU%", "Net%", "replicas", "C"},
	}
	for _, ut := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		setup, err := BenchmarkSetup(workload.NewTriangular(MinWorkload, maxW, SweepPeriods, 2))
		if err != nil {
			return Output{}, err
		}
		cfg := core.DefaultConfig()
		cfg.UtilThreshold = ut
		out, err := ScheduledRun(cfg, core.NonPredictive, []core.TaskSetup{setup})
		if err != nil {
			return Output{}, err
		}
		m := out.Metrics
		t.AddRow(ut, m.MissedPct(), m.CPUUtilPct(), m.NetUtilPct(), m.MeanReplicas, m.Combined())
	}
	return Output{ID: "ext-ut", Tables: []*Table{t}}, nil
}

func runExtPatterns(ctx Context) (Output, error) {
	const maxW = 24 * WorkloadUnit
	patterns := []workload.Pattern{
		workload.NewStep(MinWorkload, maxW, SweepPeriods, SweepPeriods/3),
		workload.NewBurst(MinWorkload, maxW, SweepPeriods, 20, 5),
		workload.NewSinusoid(MinWorkload, maxW, SweepPeriods, 3),
	}
	t := &Table{
		Title:   "ext-patterns — additional workload shapes at max workload 24 units",
		Columns: []string{"pattern", "algorithm", "MD%", "CPU%", "Net%", "replicas", "C"},
	}
	for _, p := range patterns {
		for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive} {
			setup, err := BenchmarkSetup(p)
			if err != nil {
				return Output{}, err
			}
			out, err := ScheduledRun(core.DefaultConfig(), alg, []core.TaskSetup{setup})
			if err != nil {
				return Output{}, err
			}
			m := out.Metrics
			t.AddRow(p.Name(), string(alg), m.MissedPct(), m.CPUUtilPct(), m.NetUtilPct(), m.MeanReplicas, m.Combined())
		}
	}
	return Output{ID: "ext-patterns", Tables: []*Table{t}}, nil
}

func init() {
	register(Experiment{ID: "ext-faults", Paper: "§1 motivation (survivability via replication)",
		Title: "Node crashes during a triangular run: fail-over and instance loss",
		Run:   runExtFaults})
}

func runExtFaults(ctx Context) (Output, error) {
	t := &Table{
		Title:   "ext-faults — two node crashes (node 2 @30s for 20s, node 4 @70s for 15s)",
		Columns: []string{"max workload", "algorithm", "lost", "MD%", "failovers", "C"},
		Notes: []string{
			"lost = instances that never completed because their work died with a node",
			"at low workload the crashed node hosts the only Filter/EvalDecide process " +
				"(relocation needed); at high workload replication already provides survivors",
		},
	}
	faults := []core.Fault{
		{Node: 2, At: 30200 * sim.Millisecond, Duration: 20 * sim.Second},
		{Node: 4, At: 70200 * sim.Millisecond, Duration: 15 * sim.Second},
	}
	for _, maxUnits := range []int{4, 16} {
		for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive} {
			setup, err := BenchmarkSetup(TriangularFactory(maxUnits * WorkloadUnit))
			if err != nil {
				return Output{}, err
			}
			cfg := core.DefaultConfig()
			cfg.Faults = faults
			out, err := ScheduledRun(cfg, alg, []core.TaskSetup{setup})
			if err != nil {
				return Output{}, err
			}
			m := out.Metrics
			t.AddRow(maxUnits, string(alg), m.Periods-m.Completed, m.MissedPct(), out.Failovers, m.Combined())
		}
	}
	return Output{ID: "ext-faults", Tables: []*Table{t}}, nil
}

func init() {
	register(Experiment{ID: "ext-seeds", Paper: "methodology (single-run data points in §5.2)",
		Title: "Seed sensitivity: combined metric mean ± sd over 10 seeds",
		Run:   runExtSeeds})
}

func runExtSeeds(ctx Context) (Output, error) {
	seeds := 10
	if ctx.Quick {
		seeds = 3
	}
	t := &Table{
		Title:   "ext-seeds — combined metric across seeds (triangular pattern)",
		Columns: []string{"max workload", "algorithm", "C mean", "C sd", "min", "max"},
		Notes: []string{
			"the paper's figures use a single experiment per point; this quantifies how much " +
				"seed-to-seed variance that hides",
		},
	}
	sep := &Table{
		Title:   "ext-seeds — is the predictive advantage larger than the noise?",
		Columns: []string{"max workload", "mean advantage (C_np − C_p)", "pooled sd", "advantage/sd"},
	}
	for _, maxUnits := range []int{12, 20, 28} {
		means := map[core.Algorithm][]float64{}
		for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive} {
			var cs []float64
			for seed := 0; seed < seeds; seed++ {
				setup, err := BenchmarkSetup(TriangularFactory(maxUnits * WorkloadUnit))
				if err != nil {
					return Output{}, err
				}
				cfg := core.DefaultConfig()
				cfg.Seed = uint64(7777 + seed*13)
				out, err := ScheduledRun(cfg, alg, []core.TaskSetup{setup})
				if err != nil {
					return Output{}, err
				}
				cs = append(cs, out.Metrics.Combined())
			}
			means[alg] = cs
			s := stats.Summarize(cs)
			t.AddRow(maxUnits, string(alg), s.Mean, s.StdDev, s.Min, s.Max)
		}
		p, np := means[core.Predictive], means[core.NonPredictive]
		adv := stats.Mean(np) - stats.Mean(p)
		pooled := math.Sqrt((stats.Variance(p) + stats.Variance(np)) / 2)
		ratio := math.Inf(1)
		if pooled > 0 {
			ratio = adv / pooled
		}
		sep.AddRow(maxUnits, adv, pooled, ratio)
	}
	return Output{ID: "ext-seeds", Tables: []*Table{t, sep}}, nil
}

func init() {
	register(Experiment{ID: "ext-allocators", Paper: "extension (beyond the paper's two algorithms)",
		Title: "Four allocation policies compared on the triangular pattern",
		Run:   runExtAllocators})
}

func runExtAllocators(ctx Context) (Output, error) {
	points := []int{8, 16, 24, 32}
	if ctx.Quick {
		points = []int{8, 24}
	}
	algs := []core.Algorithm{core.Predictive, core.NonPredictive, core.Greedy, core.StaticMax}
	t := &Table{
		Title:   "ext-allocators — triangular pattern, four policies",
		Columns: []string{"max workload", "algorithm", "MD%", "CPU%", "Net%", "replicas", "C"},
		Notes: []string{
			"greedy: one replica per trigger, no forecast; static-max: full replication up front, no adaptation",
		},
	}
	for _, p := range points {
		for _, alg := range algs {
			setup, err := BenchmarkSetup(TriangularFactory(p * WorkloadUnit))
			if err != nil {
				return Output{}, err
			}
			out, err := ScheduledRun(core.DefaultConfig(), alg, []core.TaskSetup{setup})
			if err != nil {
				return Output{}, err
			}
			m := out.Metrics
			t.AddRow(p, string(alg), m.MissedPct(), m.CPUUtilPct(), m.NetUtilPct(), m.MeanReplicas, m.Combined())
		}
	}
	return Output{ID: "ext-allocators", Tables: []*Table{t}}, nil
}

func init() {
	register(Experiment{ID: "ext-models", Paper: "fidelity ablation (DESIGN.md §3)",
		Title: "Predictive algorithm with profiled, published, and ground-truth models",
		Run:   runExtModels})
}

func runExtModels(ctx Context) (Output, error) {
	points := []int{8, 16, 24, 32}
	if ctx.Quick {
		points = []int{8, 24}
	}
	t := &Table{
		Title:   "ext-models — model source sensitivity (triangular pattern, predictive algorithm)",
		Columns: []string{"max workload", "models", "MD%", "CPU%", "Net%", "replicas", "C"},
		Notes: []string{
			"profiled: fitted from this simulator's §4.2.1 profiling runs (the default)",
			"paper: published Table 2/3 coefficients verbatim for the replicable subtasks",
			"ground-truth: exact demand curves — a forecast oracle",
		},
	}
	for _, p := range points {
		for _, source := range []ModelSource{SourceProfiled, SourcePaper, SourceGroundTruth} {
			setup, err := SetupWithModels(TriangularFactory(p*WorkloadUnit), source)
			if err != nil {
				return Output{}, err
			}
			out, err := ScheduledRun(core.DefaultConfig(), core.Predictive, []core.TaskSetup{setup})
			if err != nil {
				return Output{}, err
			}
			m := out.Metrics
			t.AddRow(p, string(source), m.MissedPct(), m.CPUUtilPct(), m.NetUtilPct(), m.MeanReplicas, m.Combined())
		}
	}
	return Output{ID: "ext-models", Tables: []*Table{t}}, nil
}

func init() {
	register(Experiment{ID: "ext-overlap", Paper: "ablation (DESIGN.md §5: replica data halo)",
		Title: "Replication halo sweep: what partitioning overhead costs",
		Run:   runExtOverlap})
	register(Experiment{ID: "ext-warmup", Paper: "ablation (DESIGN.md §5: replica start-up cost)",
		Title: "Replica spawn cost sweep: what allocation churn costs",
		Run:   runExtWarmup})
}

func runExtOverlap(ctx Context) (Output, error) {
	const maxW = 24 * WorkloadUnit
	t := &Table{
		Title:   "ext-overlap — halo fraction sweep (triangular, both algorithms)",
		Columns: []string{"overlap", "algorithm", "MD%", "CPU%", "Net%", "replicas", "C"},
		Notes: []string{
			"the halo is the slice of neighbouring tracks every replica receives beyond its share " +
				"(default 0.10); it is the marginal cost of each extra replica",
		},
	}
	for _, overlap := range []float64{0, 0.05, 0.10, 0.20} {
		for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive} {
			setup, err := BenchmarkSetup(TriangularFactory(maxW))
			if err != nil {
				return Output{}, err
			}
			cfg := core.DefaultConfig()
			cfg.OverlapFraction = overlap
			out, err := ScheduledRun(cfg, alg, []core.TaskSetup{setup})
			if err != nil {
				return Output{}, err
			}
			m := out.Metrics
			t.AddRow(overlap, string(alg), m.MissedPct(), m.CPUUtilPct(), m.NetUtilPct(), m.MeanReplicas, m.Combined())
		}
	}
	return Output{ID: "ext-overlap", Tables: []*Table{t}}, nil
}

func runExtWarmup(ctx Context) (Output, error) {
	const maxW = 24 * WorkloadUnit
	t := &Table{
		Title:   "ext-warmup — replica spawn cost sweep (triangular, both algorithms)",
		Columns: []string{"warmup (ms)", "algorithm", "MD%", "replications", "shutdowns", "C"},
	}
	for _, warm := range []sim.Time{0, 25 * sim.Millisecond, 100 * sim.Millisecond, 400 * sim.Millisecond} {
		for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive} {
			setup, err := BenchmarkSetup(TriangularFactory(maxW))
			if err != nil {
				return Output{}, err
			}
			cfg := core.DefaultConfig()
			cfg.WarmupDemand = warm
			out, err := ScheduledRun(cfg, alg, []core.TaskSetup{setup})
			if err != nil {
				return Output{}, err
			}
			m := out.Metrics
			t.AddRow(warm.Milliseconds(), string(alg), m.MissedPct(), m.Replications, m.Shutdowns, m.Combined())
		}
	}
	return Output{ID: "ext-warmup", Tables: []*Table{t}}, nil
}

func init() {
	register(Experiment{ID: "ext-sched", Paper: "ablation of Table 1's round-robin scheduler",
		Title: "CPU scheduling discipline: round-robin vs FIFO vs processor sharing",
		Run:   runExtSched})
}

func runExtSched(ctx Context) (Output, error) {
	const maxW = 24 * WorkloadUnit
	t := &Table{
		Title:   "ext-sched — scheduling discipline (triangular, both algorithms)",
		Columns: []string{"discipline", "algorithm", "MD%", "CPU%", "replicas", "C"},
		Notes: []string{
			"regression models stay profiled-under-round-robin: the ablation includes the model " +
				"mismatch a discipline change would cause in practice",
			"processor sharing is the fluid limit of round-robin (slice → 0); FIFO runs jobs to " +
				"completion in arrival order",
		},
	}
	for _, d := range []cpu.Discipline{cpu.RoundRobin, cpu.ProcessorSharing, cpu.FIFO} {
		for _, alg := range []core.Algorithm{core.Predictive, core.NonPredictive} {
			setup, err := BenchmarkSetup(TriangularFactory(maxW))
			if err != nil {
				return Output{}, err
			}
			cfg := core.DefaultConfig()
			cfg.Discipline = d
			out, err := ScheduledRun(cfg, alg, []core.TaskSetup{setup})
			if err != nil {
				return Output{}, err
			}
			m := out.Metrics
			t.AddRow(d.String(), string(alg), m.MissedPct(), m.CPUUtilPct(), m.MeanReplicas, m.Combined())
		}
	}
	// The discipline's real signature is the contention law the
	// profiling step would observe: how a foreground job stretches under
	// background load.
	law := &Table{
		Title:   "ext-sched — Filter latency (ms) at 4800 tracks under background load, per discipline",
		Columns: []string{"discipline", "u=0%", "u=40%", "u=80%"},
		Notes: []string{
			"FIFO blocks behind whole background chunks instead of interleaving, so its " +
				"contended latency differs from the sharing disciplines'",
		},
	}
	spec := dynbench.NewTask(dynbench.Config{})
	for _, d := range []cpu.Discipline{cpu.RoundRobin, cpu.ProcessorSharing, cpu.FIFO} {
		row := []any{d.String()}
		for _, u := range []float64{0, 0.4, 0.8} {
			samples, err := profile.ExecSamples(spec.Subtasks[dynbench.FilterStage].Demand,
				profile.ExecGrid{Utils: []float64{u}, Items: []int{4800}, Reps: 3, Discipline: d}, 41)
			if err != nil {
				return Output{}, err
			}
			var mean float64
			for _, s := range samples {
				mean += s.Latency.Milliseconds() / float64(len(samples))
			}
			row = append(row, mean)
		}
		law.AddRow(row...)
	}
	return Output{ID: "ext-sched", Tables: []*Table{t, law}}, nil
}

func init() {
	register(Experiment{ID: "ext-smoothing", Paper: "ablation (monitoring cadence, §4.1)",
		Title: "Latency-smoothing window: reaction speed vs churn",
		Run:   runExtSmoothing})
}

func runExtSmoothing(ctx Context) (Output, error) {
	const maxW = 24 * WorkloadUnit
	t := &Table{
		Title:   "ext-smoothing — monitor smoothing window (triangular, predictive)",
		Columns: []string{"window", "MD%", "replications", "shutdowns", "replicas", "C"},
		Notes: []string{
			"window 1 is the paper's per-period monitoring; larger windows damp spikes but react " +
				"later to genuine workload change",
		},
	}
	for _, w := range []int{1, 2, 3, 5} {
		setup, err := BenchmarkSetup(TriangularFactory(maxW))
		if err != nil {
			return Output{}, err
		}
		cfg := core.DefaultConfig()
		cfg.Monitor.SmoothingWindow = w
		out, err := ScheduledRun(cfg, core.Predictive, []core.TaskSetup{setup})
		if err != nil {
			return Output{}, err
		}
		m := out.Metrics
		t.AddRow(w, m.MissedPct(), m.Replications, m.Shutdowns, m.MeanReplicas, m.Combined())
	}
	return Output{ID: "ext-smoothing", Tables: []*Table{t}}, nil
}
