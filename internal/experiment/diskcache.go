package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// DiskCache is the persistent, content-addressed store behind the run
// scheduler: one JSON file per run outcome, named by the run fingerprint
// and fanned into 256 prefix directories. A warm cache lets a repeat
// rmexperiments render of every experiment skip simulation entirely.
//
// Robustness contract: any entry that cannot be read back exactly — a
// truncated write, a schema bump, manual corruption — is a miss, never an
// error; the scheduler falls back to simulating and rewrites the entry.
type DiskCache struct {
	dir string
}

// OpenDiskCache creates the cache directory if needed and returns a
// handle. The directory may be shared by concurrent processes: writes are
// atomic (temp file + rename), so readers only ever see whole entries.
func OpenDiskCache(dir string) (*DiskCache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: opening run cache: %w", err)
	}
	return &DiskCache{dir: dir}, nil
}

// Dir returns the cache's root directory.
func (c *DiskCache) Dir() string { return c.dir }

// cacheEnvelope is the on-disk layout. Key is stored redundantly and
// verified on read, so a file that was renamed, cross-copied, or written
// under a different fingerprint scheme can never satisfy a lookup.
type cacheEnvelope struct {
	Schema  int        `json:"schema"`
	Key     string     `json:"key"`
	Outcome RunOutcome `json:"outcome"`
}

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get looks a run outcome up by fingerprint. ok is false on any miss,
// including unreadable or mismatched entries.
func (c *DiskCache) Get(key string) (RunOutcome, bool) {
	if len(key) < 2 {
		return RunOutcome{}, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return RunOutcome{}, false
	}
	var env cacheEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Schema != cacheSchema || env.Key != key {
		return RunOutcome{}, false
	}
	return env.Outcome, true
}

// Put stores one run outcome, replacing any existing entry atomically.
func (c *DiskCache) Put(key string, out RunOutcome) error {
	if len(key) < 2 {
		return fmt.Errorf("experiment: run cache key %q too short", key)
	}
	data, err := json.Marshal(cacheEnvelope{Schema: cacheSchema, Key: key, Outcome: out})
	if err != nil {
		return err
	}
	dir := filepath.Dir(c.path(key))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, "run-*.tmp")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), c.path(key)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// Len counts the entries currently on disk (diagnostics and tests).
func (c *DiskCache) Len() int {
	n := 0
	_ = filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
