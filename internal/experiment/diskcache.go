package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"

	"repro/internal/resil"
)

// DiskCache is the persistent, content-addressed store behind the run
// scheduler: one JSON file per run outcome, named by the run fingerprint
// and fanned into 256 prefix directories. A warm cache lets a repeat
// rmexperiments render of every experiment skip simulation entirely.
//
// Robustness contract: any entry that cannot be read back exactly — a
// truncated write, a schema bump, manual corruption — is a miss, never an
// error; the scheduler falls back to simulating and rewrites the entry.
// Corrupt entries are additionally quarantined: the unreadable file is
// renamed aside with a ".corrupt" suffix and counted, so bit-rot is
// visible to operators instead of silently re-simulated around forever.
type DiskCache struct {
	dir string
	fs  resil.FS

	corrupt atomic.Uint64
	// OnCorrupt, when set, observes each quarantined entry (the rmserved
	// daemon wires it to its obs metrics). Set before first use; called
	// with the entry's original path.
	OnCorrupt func(path string)
}

// OpenDiskCache creates the cache directory if needed and returns a
// handle. The directory may be shared by concurrent processes: writes are
// atomic (temp file + rename), so readers only ever see whole entries.
func OpenDiskCache(dir string) (*DiskCache, error) {
	return OpenDiskCacheFS(dir, nil)
}

// OpenDiskCacheFS is OpenDiskCache writing through an explicit
// filesystem seam (nil means the real one) — the fault-injection tests
// fail cache I/O deterministically through it.
func OpenDiskCacheFS(dir string, fsys resil.FS) (*DiskCache, error) {
	if fsys == nil {
		fsys = resil.OS()
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("experiment: opening run cache: %w", err)
	}
	return &DiskCache{dir: dir, fs: fsys}, nil
}

// Dir returns the cache's root directory.
func (c *DiskCache) Dir() string { return c.dir }

// CorruptCount reports how many corrupt entries this handle has
// quarantined since it was opened.
func (c *DiskCache) CorruptCount() uint64 { return c.corrupt.Load() }

// cacheEnvelope is the on-disk layout. Key is stored redundantly and
// verified on read, so a file that was renamed, cross-copied, or written
// under a different fingerprint scheme can never satisfy a lookup.
type cacheEnvelope struct {
	Schema  int        `json:"schema"`
	Key     string     `json:"key"`
	Outcome RunOutcome `json:"outcome"`
}

func (c *DiskCache) path(key string) string {
	return filepath.Join(c.dir, key[:2], key+".json")
}

// Get looks a run outcome up by fingerprint. ok is false on any miss,
// including unreadable or mismatched entries; those are quarantined.
func (c *DiskCache) Get(key string) (RunOutcome, bool) {
	if len(key) < 2 {
		return RunOutcome{}, false
	}
	path := c.path(key)
	data, err := c.fs.ReadFile(path)
	if err != nil {
		// Absent or unreadable is a plain miss; only a file that exists
		// but decodes wrong is quarantinable corruption.
		return RunOutcome{}, false
	}
	var env cacheEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Schema != cacheSchema || env.Key != key {
		c.quarantine(path)
		return RunOutcome{}, false
	}
	return env.Outcome, true
}

// quarantine moves a corrupt entry aside so the slot is writable again
// and the damage stays inspectable. Best effort: a failed rename still
// counts the corruption, and the next Get re-detects it.
func (c *DiskCache) quarantine(path string) {
	c.corrupt.Add(1)
	_ = c.fs.Rename(path, path+".corrupt")
	if c.OnCorrupt != nil {
		c.OnCorrupt(path)
	}
}

// Put stores one run outcome, replacing any existing entry atomically.
// Failures are transient (disk pressure, permissions flaps): callers
// that retry at all should classify them retryable.
func (c *DiskCache) Put(key string, out RunOutcome) error {
	if len(key) < 2 {
		return fmt.Errorf("experiment: run cache key %q too short", key)
	}
	data, err := json.Marshal(cacheEnvelope{Schema: cacheSchema, Key: key, Outcome: out})
	if err != nil {
		return err
	}
	dir := filepath.Dir(c.path(key))
	if err := c.fs.MkdirAll(dir, 0o755); err != nil {
		return resil.Transient(err)
	}
	tmp, err := c.fs.CreateTemp(dir, "run-*.tmp")
	if err != nil {
		return resil.Transient(err)
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		c.fs.Remove(tmp.Name())
		return resil.Transient(err)
	}
	if err := tmp.Close(); err != nil {
		c.fs.Remove(tmp.Name())
		return resil.Transient(err)
	}
	if err := c.fs.Rename(tmp.Name(), c.path(key)); err != nil {
		c.fs.Remove(tmp.Name())
		return resil.Transient(err)
	}
	return nil
}

// Len counts the entries currently on disk (diagnostics and tests).
func (c *DiskCache) Len() int {
	n := 0
	_ = filepath.WalkDir(c.dir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && filepath.Ext(path) == ".json" {
			n++
		}
		return nil
	})
	return n
}
