package experiment

import (
	"fmt"

	"repro/internal/ascii"
	"repro/internal/dynbench"
	"repro/internal/metrics"
	"repro/internal/profile"
	"repro/internal/regress"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "fig2", Paper: "Figure 2",
		Title: "Filter execution latency at 80% CPU utilization vs data size",
		Run:   figLatencyCurve("fig2", dynbench.FilterStage, "Filter", 0.8)})
	register(Experiment{ID: "fig3", Paper: "Figure 3",
		Title: "EvalDecide execution latency at 60% CPU utilization vs data size",
		Run:   figLatencyCurve("fig3", dynbench.EvalDecideStage, "EvalDecide", 0.6)})
	register(Experiment{ID: "fig4", Paper: "Figure 4",
		Title: "Filter execution latency surface over CPU utilization and data size",
		Run:   runFig4})
	register(Experiment{ID: "fig8", Paper: "Figure 8",
		Title: "Workload patterns used by the evaluation",
		Run:   runFig8})
	register(Experiment{ID: "fig9", Paper: "Figure 9(a-d)",
		Title: "Triangular pattern: MD%, CPU%, Net%, mean replicas vs max workload",
		Run:   figMetricsSweep("fig9", "triangular", TriangularFactory)})
	register(Experiment{ID: "fig10", Paper: "Figure 10",
		Title: "Triangular pattern: combined performance metric vs max workload",
		Run:   figCombinedSweep("fig10", "triangular", TriangularFactory)})
	register(Experiment{ID: "fig11", Paper: "Figure 11(a-d)",
		Title: "Increasing ramp: MD%, CPU%, Net%, mean replicas vs max workload",
		Run:   figMetricsSweep("fig11", "increasing", IncreasingFactory)})
	register(Experiment{ID: "fig12", Paper: "Figure 12(a-d)",
		Title: "Decreasing ramp: MD%, CPU%, Net%, mean replicas vs max workload",
		Run:   figMetricsSweep("fig12", "decreasing", DecreasingFactory)})
	register(Experiment{ID: "fig13", Paper: "Figure 13(a,b)",
		Title: "Ramp patterns: combined performance metric vs max workload",
		Run:   runFig13})
}

// figLatencyCurve reproduces Figures 2–3: measured latencies (y), the
// per-utilization second-order fit (Y), and the combined two-variable
// model (Y⁻) evaluated at one utilization.
func figLatencyCurve(id string, stage int, name string, util float64) func(Context) (Output, error) {
	return func(ctx Context) (Output, error) {
		spec := dynbench.NewTask(dynbench.DefaultConfig())
		grid := profile.ExecGrid{Utils: []float64{util}, Items: figureSizes(), Reps: 3}
		samples, err := profile.ExecSamples(spec.Subtasks[stage].Demand, grid, 23)
		if err != nil {
			return Output{}, err
		}
		a, b, err := regress.FitPerUtilCurve(samples)
		if err != nil {
			return Output{}, err
		}
		combined, err := DefaultModels()
		if err != nil {
			return Output{}, err
		}
		t := &Table{
			Title: fmt.Sprintf("%s — %s latency at %.0f%% CPU utilization (1 size unit = 300 tracks)",
				id, name, util*100),
			Columns: []string{"size units", "measured y (ms)", "per-util fit Y (ms)", "combined fit Y- (ms)"},
			Notes: []string{
				"y: mean of repeated measurements on the simulated node under background load",
				fmt.Sprintf("Y: a·d²+b·d with a=%.4g b=%.4g (d in hundreds of tracks)", a, b),
				"Y-: the full eq. (3) model fitted over all utilizations, evaluated at this one",
			},
		}
		means := meanByItems(samples)
		var xs []int
		var y, fitY, fitY2 []float64
		for _, items := range figureSizes() {
			d := float64(items) / regress.ItemsPerUnit
			t.AddRow(
				items/300,
				means[items],
				a*d*d+b*d,
				combined.Exec[stage].LatencyMS(d, util),
			)
			xs = append(xs, items/300)
			y = append(y, means[items])
			fitY = append(fitY, a*d*d+b*d)
			fitY2 = append(fitY2, combined.Exec[stage].LatencyMS(d, util))
		}
		chart := &ascii.Chart{
			Title:   fmt.Sprintf("%s — %s latency (ms) at %.0f%% utilization", id, name, util*100),
			XLabel:  "data size (1 unit = 300 tracks)",
			XValues: xs,
			Height:  12,
			Series: []ascii.Series{
				{Name: "measured y", Points: y},
				{Name: "per-util fit Y", Points: fitY},
				{Name: "combined fit Y-", Points: fitY2},
			},
		}
		return Output{ID: id, Tables: []*Table{t}, Charts: []*ascii.Chart{chart}}, nil
	}
}

// figureSizes are the x-axis of Figures 2–4: up to 25 units of 300 tracks.
func figureSizes() []int {
	var out []int
	for units := 1; units <= 25; units += 2 {
		out = append(out, units*300)
	}
	return out
}

func meanByItems(samples []regress.ExecSample) map[int]float64 {
	sum := make(map[int]float64)
	n := make(map[int]int)
	for _, s := range samples {
		sum[s.Items] += s.Latency.Milliseconds()
		n[s.Items]++
	}
	for k := range sum {
		sum[k] /= float64(n[k])
	}
	return sum
}

func runFig4(ctx Context) (Output, error) {
	spec := dynbench.NewTask(dynbench.DefaultConfig())
	utils := []float64{0, 0.2, 0.4, 0.6, 0.8}
	grid := profile.ExecGrid{Utils: utils, Items: figureSizes(), Reps: 2}
	samples, err := profile.ExecSamples(spec.Subtasks[dynbench.FilterStage].Demand, grid, 29)
	if err != nil {
		return Output{}, err
	}
	t := &Table{
		Title:   "fig4 — Filter latency (ms) over CPU utilization × data size",
		Columns: []string{"size units"},
	}
	for _, u := range utils {
		t.Columns = append(t.Columns, fmt.Sprintf("u=%.0f%%", u*100))
	}
	byKey := make(map[[2]int][]float64)
	for _, s := range samples {
		k := [2]int{s.Items, int(s.Util * 100)}
		byKey[k] = append(byKey[k], s.Latency.Milliseconds())
	}
	var xs []int
	series := make([]ascii.Series, len(utils))
	for i, u := range utils {
		series[i].Name = fmt.Sprintf("u=%.0f%%", u*100)
	}
	for _, items := range figureSizes() {
		row := []any{items / 300}
		for i, u := range utils {
			vals := byKey[[2]int{items, int(u * 100)}]
			var m float64
			for _, v := range vals {
				m += v
			}
			row = append(row, m/float64(len(vals)))
			series[i].Points = append(series[i].Points, m/float64(len(vals)))
		}
		t.AddRow(row...)
		xs = append(xs, items/300)
	}
	chart := &ascii.Chart{
		Title:   "fig4 — Filter latency surface (ms), one series per utilization",
		XLabel:  "data size (1 unit = 300 tracks)",
		XValues: xs,
		Height:  12,
		Series:  series,
	}
	return Output{ID: "fig4", Tables: []*Table{t}, Charts: []*ascii.Chart{chart}}, nil
}

func runFig8(Context) (Output, error) {
	const periods, min, max = 30, 500, 15000
	patterns := []workload.Pattern{
		workload.NewIncreasingRamp(min, max, periods),
		workload.NewDecreasingRamp(min, max, periods),
		workload.NewTriangular(min, max, periods, 1),
	}
	t := &Table{
		Title:   "fig8 — workload patterns (tracks per period)",
		Columns: []string{"period"},
	}
	for _, p := range patterns {
		t.Columns = append(t.Columns, p.Name())
	}
	var xs []int
	series := make([]ascii.Series, len(patterns))
	for i, p := range patterns {
		series[i].Name = p.Name()
	}
	for c := 0; c < periods; c++ {
		row := []any{c}
		for i, p := range patterns {
			row = append(row, p.Size(c))
			series[i].Points = append(series[i].Points, float64(p.Size(c)))
		}
		t.AddRow(row...)
		xs = append(xs, c)
	}
	chart := &ascii.Chart{
		Title:   "fig8 — workload patterns (tracks per period)",
		XLabel:  "period",
		XValues: xs,
		Height:  12,
		Series:  series,
	}
	return Output{ID: "fig8", Tables: []*Table{t}, Charts: []*ascii.Chart{chart}}, nil
}

// ciNote explains the CI columns appended under Monte Carlo replication.
func ciNote(seeds int) string {
	return fmt.Sprintf("each value is the mean over %d seed replications; ± columns are the "+
		"half-width of the 95%% confidence interval (Student t)", seeds)
}

// figMetricsSweep reproduces the four-panel figures (9, 11, 12). With
// ctx.Seeds ≥ 2 every cell is replicated under per-replication seeds and
// rendered as mean with ± 95% CI columns; with a single seed the output
// is byte-identical to the historical single-run tables.
func figMetricsSweep(id, key string, factory PatternFactory) func(Context) (Output, error) {
	return func(ctx Context) (Output, error) {
		results, err := CachedSweepSeeds(key, ctx.sweepPoints(), factory, ctx.Parallelism, ctx.seeds())
		if err != nil {
			return Output{}, err
		}
		ci := ctx.seeds() > 1
		points, pred, nonpred := byPointResult(results)
		t := &Table{
			Title: fmt.Sprintf("%s — %s pattern (1 workload unit = 500 tracks, %d periods/run)",
				id, key, SweepPeriods),
			Columns: []string{
				"max workload",
				"MD% pred", "MD% nonpred",
				"CPU% pred", "CPU% nonpred",
				"Net% pred", "Net% nonpred",
				"replicas pred", "replicas nonpred",
			},
		}
		if ci {
			t.Columns = []string{
				"max workload",
				"MD% pred", "±95", "MD% nonpred", "±95",
				"CPU% pred", "±95", "CPU% nonpred", "±95",
				"Net% pred", "±95", "Net% nonpred", "±95",
				"replicas pred", "±95", "replicas nonpred", "±95",
			}
			t.Notes = append(t.Notes, ciNote(ctx.seeds()))
		}
		var md, cpu, net, reps [2][]float64
		for _, p := range points {
			a, b := pred[p].Metrics, nonpred[p].Metrics
			if ci {
				ag := metrics.AggregateRuns(pred[p].Reps)
				bg := metrics.AggregateRuns(nonpred[p].Reps)
				t.AddRow(p,
					ag.MissedPct.Mean, ag.MissedPct.CI, bg.MissedPct.Mean, bg.MissedPct.CI,
					ag.CPUUtilPct.Mean, ag.CPUUtilPct.CI, bg.CPUUtilPct.Mean, bg.CPUUtilPct.CI,
					ag.NetUtilPct.Mean, ag.NetUtilPct.CI, bg.NetUtilPct.Mean, bg.NetUtilPct.CI,
					ag.MeanReplicas.Mean, ag.MeanReplicas.CI, bg.MeanReplicas.Mean, bg.MeanReplicas.CI,
				)
				md[0] = append(md[0], ag.MissedPct.Mean)
				md[1] = append(md[1], bg.MissedPct.Mean)
				cpu[0] = append(cpu[0], ag.CPUUtilPct.Mean)
				cpu[1] = append(cpu[1], bg.CPUUtilPct.Mean)
				net[0] = append(net[0], ag.NetUtilPct.Mean)
				net[1] = append(net[1], bg.NetUtilPct.Mean)
				reps[0] = append(reps[0], ag.MeanReplicas.Mean)
				reps[1] = append(reps[1], bg.MeanReplicas.Mean)
				continue
			}
			t.AddRow(p,
				a.MissedPct(), b.MissedPct(),
				a.CPUUtilPct(), b.CPUUtilPct(),
				a.NetUtilPct(), b.NetUtilPct(),
				a.MeanReplicas, b.MeanReplicas,
			)
			md[0] = append(md[0], a.MissedPct())
			md[1] = append(md[1], b.MissedPct())
			cpu[0] = append(cpu[0], a.CPUUtilPct())
			cpu[1] = append(cpu[1], b.CPUUtilPct())
			net[0] = append(net[0], a.NetUtilPct())
			net[1] = append(net[1], b.NetUtilPct())
			reps[0] = append(reps[0], a.MeanReplicas)
			reps[1] = append(reps[1], b.MeanReplicas)
		}
		charts := []*ascii.Chart{
			sweepChart(id+"(a) missed deadlines %", key, points, md),
			sweepChart(id+"(b) CPU utilization %", key, points, cpu),
			sweepChart(id+"(c) network utilization %", key, points, net),
			sweepChart(id+"(d) mean subtask replicas", key, points, reps),
		}
		return Output{ID: id, Tables: []*Table{t}, Charts: charts}, nil
	}
}

// sweepChart plots predictive vs non-predictive series over the sweep.
func sweepChart(title, pattern string, points []int, series [2][]float64) *ascii.Chart {
	return &ascii.Chart{
		Title:   title + " — " + pattern,
		XLabel:  "max workload (1 unit = 500 tracks)",
		XValues: points,
		Height:  12,
		Series: []ascii.Series{
			{Name: "predictive", Points: series[0]},
			{Name: "non-predictive", Points: series[1]},
		},
	}
}

// combinedTable builds a combined-metric table for one sweep, shared by
// Figure 10 and both halves of Figure 13; with replication it renders
// mean ± 95% CI and decides the winner on the means.
func combinedTable(title string, results []PointResult, seeds int) (*Table, []int, [2][]float64) {
	ci := seeds > 1
	points, pred, nonpred := byPointResult(results)
	t := &Table{
		Title:   title,
		Columns: []string{"max workload", "C pred", "C nonpred", "winner"},
	}
	if ci {
		t.Columns = []string{"max workload", "C pred", "±95", "C nonpred", "±95", "winner"}
		t.Notes = append(t.Notes, ciNote(seeds))
	}
	var cs [2][]float64
	for _, p := range points {
		if ci {
			ag := metrics.AggregateRuns(pred[p].Reps)
			bg := metrics.AggregateRuns(nonpred[p].Reps)
			t.AddRow(p, ag.Combined.Mean, ag.Combined.CI, bg.Combined.Mean, bg.Combined.CI,
				winner(ag.Combined.Mean, bg.Combined.Mean))
			cs[0] = append(cs[0], ag.Combined.Mean)
			cs[1] = append(cs[1], bg.Combined.Mean)
			continue
		}
		cp, cn := pred[p].Metrics.Combined(), nonpred[p].Metrics.Combined()
		t.AddRow(p, cp, cn, winner(cp, cn))
		cs[0] = append(cs[0], cp)
		cs[1] = append(cs[1], cn)
	}
	return t, points, cs
}

// figCombinedSweep reproduces Figure 10.
func figCombinedSweep(id, key string, factory PatternFactory) func(Context) (Output, error) {
	return func(ctx Context) (Output, error) {
		results, err := CachedSweepSeeds(key, ctx.sweepPoints(), factory, ctx.Parallelism, ctx.seeds())
		if err != nil {
			return Output{}, err
		}
		t, points, cs := combinedTable(
			fmt.Sprintf("%s — combined performance metric C, %s pattern (smaller is better)", id, key),
			results, ctx.seeds())
		chart := sweepChart(id+" combined performance metric C", key, points, cs)
		return Output{ID: id, Tables: []*Table{t}, Charts: []*ascii.Chart{chart}}, nil
	}
}

func winner(predC, nonpredC float64) string {
	// Differences below half a point are run-to-run noise, not a result.
	const tie = 0.5
	switch {
	case predC < nonpredC-tie:
		return "predictive"
	case nonpredC < predC-tie:
		return "non-predictive"
	default:
		return "tie"
	}
}

func runFig13(ctx Context) (Output, error) {
	var tables []*Table
	var charts []*ascii.Chart
	for _, part := range []struct {
		label, key string
		factory    PatternFactory
	}{
		{"fig13(a) — increasing ramp", "increasing", IncreasingFactory},
		{"fig13(b) — decreasing ramp", "decreasing", DecreasingFactory},
	} {
		results, err := CachedSweepSeeds(part.key, ctx.sweepPoints(), part.factory, ctx.Parallelism, ctx.seeds())
		if err != nil {
			return Output{}, err
		}
		t, points, cs := combinedTable(part.label+" — combined performance metric C", results, ctx.seeds())
		tables = append(tables, t)
		charts = append(charts, sweepChart(part.label+" combined metric C", part.key, points, cs))
	}
	return Output{ID: "fig13", Tables: tables, Charts: charts}, nil
}
