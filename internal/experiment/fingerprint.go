package experiment

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math/rand/v2"
	"strings"

	"repro/internal/core"
)

// cacheSchema versions the run fingerprint and the cached RunOutcome
// layout together. Bump it whenever either changes meaning: stale
// persistent cache entries then simply miss instead of being misread.
//
// v2: core.Config gained Chaos/Degradation, network.Config gained the
// loss/jitter/partition knobs, and RunOutcome's metrics gained the
// chaos counters.
//
// v3: the allocation policies moved behind the internal/policy registry,
// core.Config gained the Policy knob section (stretch/shed), and
// RunOutcome's metrics gained the ShedItems/StretchedPeriods counters.
//
// v4: core.Config gained the lane partition (Lanes, which shapes
// results and enters the fingerprint) and the Parallel worker knob
// (byte-identical results for every value, excluded below).
const cacheSchema = 4

// demandProbeSizes are the item counts at which each subtask's demand
// curve is sampled into the fingerprint. Demand functions are closures,
// so their identity cannot be hashed directly; probing the curve at fixed
// sizes with a fixed-seed rng captures the content instead — two setups
// fingerprint equal exactly when their demand curves agree at the probes.
var demandProbeSizes = [...]int{100, 1700, 4900}

// runFingerprint content-addresses one simulation run: the SHA-256 of a
// canonical description of everything that determines its result — the
// schema version, the algorithm, the full config (seed included, the
// telemetry recorder excluded: it observes a run, it does not shape one)
// and, per task, the spec identity, demand-curve probes, placement,
// workload pattern, and fitted regression models. The hex digest doubles
// as the scheduler's dedup key and the disk cache's file name.
// RunKey exposes the run fingerprint: the rmserved daemon stamps it on
// jobs and journal records so clients can resubmit or poll a run by
// content address across daemon restarts (at-least-once delivery made
// idempotent by fingerprint).
func RunKey(cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) string {
	return runFingerprint(cfg, alg, setups)
}

func runFingerprint(cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) string {
	var b strings.Builder
	cfg.Telemetry = nil
	// The lane *partition* shapes results (Lanes stays in the %#v dump);
	// the worker count driving the lanes does not — serial and parallel
	// drivers are byte-identical by construction — so Parallel must not
	// split the cache.
	cfg.Parallel = 0
	// %#v, not %+v: sim.Time's String() rounds to three decimals, so %+v
	// would alias configs whose durations differ by less than a
	// microsecond. The Go-syntax form prints the raw int64s.
	fmt.Fprintf(&b, "schema=%d;alg=%s;cfg=%#v;", cacheSchema, alg, cfg)
	for _, ts := range setups {
		fmt.Fprintf(&b, "task=%s|period=%d|deadline=%d|homes=%v;",
			ts.Spec.Name, int64(ts.Spec.Period), int64(ts.Spec.Deadline), ts.Homes)
		for _, st := range ts.Spec.Subtasks {
			fmt.Fprintf(&b, "st=%s|repl=%t|out=%d|demand=", st.Name, st.Replicable, st.OutBytesPerItem)
			for _, items := range demandProbeSizes {
				rng := rand.New(rand.NewPCG(0x5eedca11, uint64(items)))
				fmt.Fprintf(&b, "%d,", int64(st.Demand(items, rng)))
			}
			b.WriteByte(';')
		}
		fmt.Fprintf(&b, "pattern=%T%+v;", ts.Pattern, ts.Pattern)
		for _, em := range ts.Exec {
			fmt.Fprintf(&b, "exec=%v;", em.Coefficients())
		}
		fmt.Fprintf(&b, "comm=%+v;", ts.Comm)
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// Fingerprint exposes the content address of one run — the scheduler's
// dedup key and disk-cache file name — so external test suites (the
// policy conformance harness's knob-sensitivity check) can assert that
// two run descriptions do or do not alias.
func Fingerprint(cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) string {
	return runFingerprint(cfg, alg, setups)
}
