package experiment

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/workload"
)

// longSetup builds a run that takes on the order of a second, so tests
// can reliably cancel it mid-flight.
func longSetup(t *testing.T) core.TaskSetup {
	t.Helper()
	values := make([]int, 100_000)
	for i := range values {
		values[i] = 9000
	}
	setup, err := BenchmarkSetup(workload.NewCustom("cancel-test", values))
	if err != nil {
		t.Fatal(err)
	}
	return setup
}

// TestScheduledRunContextCancellation: a cell cancels only when every
// waiter abandons it, the cancellation is never memoized, and the next
// identical request re-simulates cleanly.
func TestScheduledRunContextCancellation(t *testing.T) {
	setup := longSetup(t)
	cfg := core.DefaultConfig()
	cfg.Seed = 660001
	setups := []core.TaskSetup{setup}

	before := SchedulerStats()
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	errs := make([]error, 2)
	d := statsDelta(func() {
		for i := 0; i < 2; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				_, errs[i] = ScheduledRunContext(ctx, cfg, core.Predictive, setups)
			}(i)
		}
		// Cancel only after both requests are registered with the
		// scheduler, so the second provably joins the first's cell.
		submitDeadline := time.Now().Add(30 * time.Second)
		for SchedulerStats().Requested < before.Requested+2 {
			if time.Now().After(submitDeadline) {
				t.Error("both submissions never registered")
				break
			}
			time.Sleep(time.Millisecond)
		}
		cancel()
		wg.Wait()
	})
	for i, err := range errs {
		if !errors.Is(err, context.Canceled) {
			t.Errorf("waiter %d returned %v, want context.Canceled", i, err)
		}
	}
	if d.Requested != 2 || d.Deduped != 1 {
		t.Errorf("requested=%d deduped=%d, want 2 requests sharing one cell", d.Requested, d.Deduped)
	}

	// The worker observes the cancelled cell asynchronously; wait for the
	// counter, then prove the memo did not keep the dead entry.
	deadline := time.Now().Add(10 * time.Second)
	for SchedulerStats().Cancelled < before.Cancelled+1 {
		if time.Now().After(deadline) {
			t.Error("cancelled counter never moved")
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	d2 := statsDelta(func() {
		if _, err := ScheduledRun(cfg, core.Predictive, setups); err != nil {
			t.Fatalf("re-requesting a cancelled cell: %v", err)
		}
	})
	if d2.Simulated != 1 {
		t.Errorf("re-request simulated %d cells, want 1 (cancelled cells must not be memoized)", d2.Simulated)
	}
}
