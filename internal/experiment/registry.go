package experiment

import (
	"fmt"
	"sort"
)

// Context carries run options for all experiments.
type Context struct {
	// Parallelism caps concurrent simulations; ≤0 means NumCPU.
	Parallelism int
	// Quick trims sweeps for fast runs (tests, CI smoke).
	Quick bool
	// Seeds is the Monte Carlo replication count per sweep cell; values
	// < 2 mean the single pinned replication-0 seed (the historical
	// single-run mode). With Seeds ≥ 2 the sweep figures render each
	// quantity as mean ± 95% CI over the replications.
	Seeds int
	// Policies restricts registry-sweeping experiments (ext-tournament)
	// to a subset of registered allocation policies. Nil or empty means
	// every registered policy. Experiments that pin their own algorithm
	// set (the paper's tables and figures) ignore it.
	Policies []string
}

// seeds normalizes the replication count.
func (c Context) seeds() int {
	if c.Seeds < 1 {
		return 1
	}
	return c.Seeds
}

// sweepPoints returns the x-axis of the paper's figures: max workload
// 0–35 in units of 500 tracks.
func (c Context) sweepPoints() []int {
	if c.Quick {
		return []int{0, 8, 16, 24, 32}
	}
	points := make([]int, 36)
	for i := range points {
		points[i] = i
	}
	return points
}

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Paper string // which table/figure of the paper it regenerates
	Title string
	Run   func(Context) (Output, error)
}

var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// All returns every registered experiment, sorted by ID.
func All() []Experiment {
	out := append([]Experiment(nil), registry...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, error) {
	for _, e := range registry {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("experiment: unknown id %q (run `rmexperiments -list`)", id)
}
