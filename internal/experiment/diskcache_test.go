package experiment

import (
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/metrics"
)

func TestDiskCacheRoundTrip(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	out := RunOutcome{
		Metrics:     metrics.RunMetrics{Periods: 120, Completed: 118, Missed: 2, MeanReplicas: 1.25},
		Failovers:   3,
		EventsFired: 987654,
	}
	if err := c.Put(key, out); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, out) {
		t.Fatalf("round trip changed the outcome:\nput %+v\ngot %+v", out, got)
	}
	if n := c.Len(); n != 1 {
		t.Errorf("Len = %d", n)
	}
}

func TestDiskCacheCorruptEntryIsAMiss(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "feedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedface"
	if err := c.Put(key, RunOutcome{EventsFired: 1}); err != nil {
		t.Fatal(err)
	}
	corruptCacheFiles(t, c.Dir())
	if _, ok := c.Get(key); ok {
		t.Error("corrupt entry served as a hit")
	}
}

// corruptCacheFiles overwrites every cache entry with garbage.
func corruptCacheFiles(t *testing.T, dir string) {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		n++
		return os.WriteFile(path, []byte("{not json"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no cache entries to corrupt")
	}
}

// TestSchedulerDiskCacheWarmAndCorrupt is the cache's end-to-end
// contract: a cold sweep writes through, a warm process (simulated by
// dropping the in-memory memo) reads every run back without simulating,
// and corrupted entries silently fall back to re-simulation with
// identical results.
func TestSchedulerDiskCacheWarmAndCorrupt(t *testing.T) {
	cache, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetDiskCache(cache)
	defer SetDiskCache(nil)
	ResetSweepCache()

	points := []int{0, 4}
	var cold []PointResult
	coldStats := statsDelta(func() {
		cold, err = Sweep(points, TriangularFactory, 2)
		if err != nil {
			t.Fatal(err)
		}
	})
	if coldStats.Simulated != 4 || coldStats.DiskHits != 0 {
		t.Fatalf("cold run: %+v, want 4 simulated / 0 disk hits", coldStats)
	}
	if cache.Len() != 4 {
		t.Fatalf("cache holds %d entries after cold run, want 4", cache.Len())
	}

	ResetSweepCache() // forget the in-process memo; disk must serve everything
	var warm []PointResult
	warmStats := statsDelta(func() {
		warm, err = Sweep(points, TriangularFactory, 2)
		if err != nil {
			t.Fatal(err)
		}
	})
	if warmStats.Simulated != 0 || warmStats.DiskHits != 4 {
		t.Fatalf("warm run: %+v, want 0 simulated / 4 disk hits", warmStats)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("disk-served results differ from the simulated ones")
	}

	corruptCacheFiles(t, cache.Dir())
	ResetSweepCache()
	var again []PointResult
	corruptStats := statsDelta(func() {
		again, err = Sweep(points, TriangularFactory, 2)
		if err != nil {
			t.Fatal(err)
		}
	})
	if corruptStats.Simulated != 4 || corruptStats.DiskHits != 0 {
		t.Fatalf("corrupt-cache run: %+v, want 4 simulated / 0 disk hits", corruptStats)
	}
	if !reflect.DeepEqual(cold, again) {
		t.Fatal("results after cache corruption differ from the original run")
	}
}
