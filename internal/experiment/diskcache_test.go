package experiment

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/metrics"
	"repro/internal/resil"
)

func TestDiskCacheRoundTrip(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "0123456789abcdef0123456789abcdef0123456789abcdef0123456789abcdef"
	if _, ok := c.Get(key); ok {
		t.Fatal("hit on empty cache")
	}
	out := RunOutcome{
		Metrics:     metrics.RunMetrics{Periods: 120, Completed: 118, Missed: 2, MeanReplicas: 1.25},
		Failovers:   3,
		EventsFired: 987654,
	}
	if err := c.Put(key, out); err != nil {
		t.Fatal(err)
	}
	got, ok := c.Get(key)
	if !ok {
		t.Fatal("miss after Put")
	}
	if !reflect.DeepEqual(got, out) {
		t.Fatalf("round trip changed the outcome:\nput %+v\ngot %+v", out, got)
	}
	if n := c.Len(); n != 1 {
		t.Errorf("Len = %d", n)
	}
}

func TestDiskCacheCorruptEntryIsAMiss(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := "feedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedfacefeedface"
	if err := c.Put(key, RunOutcome{EventsFired: 1}); err != nil {
		t.Fatal(err)
	}
	corruptCacheFiles(t, c.Dir())
	if _, ok := c.Get(key); ok {
		t.Error("corrupt entry served as a hit")
	}
}

// corruptCacheFiles overwrites every cache entry with garbage.
func corruptCacheFiles(t *testing.T, dir string) {
	t.Helper()
	n := 0
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != ".json" {
			return err
		}
		n++
		return os.WriteFile(path, []byte("{not json"), 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no cache entries to corrupt")
	}
}

// TestSchedulerDiskCacheWarmAndCorrupt is the cache's end-to-end
// contract: a cold sweep writes through, a warm process (simulated by
// dropping the in-memory memo) reads every run back without simulating,
// and corrupted entries silently fall back to re-simulation with
// identical results.
func TestSchedulerDiskCacheWarmAndCorrupt(t *testing.T) {
	cache, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	SetDiskCache(cache)
	defer SetDiskCache(nil)
	ResetSweepCache()

	points := []int{0, 4}
	var cold []PointResult
	coldStats := statsDelta(func() {
		cold, err = Sweep(points, TriangularFactory, 2)
		if err != nil {
			t.Fatal(err)
		}
	})
	if coldStats.Simulated != 4 || coldStats.DiskHits != 0 {
		t.Fatalf("cold run: %+v, want 4 simulated / 0 disk hits", coldStats)
	}
	if cache.Len() != 4 {
		t.Fatalf("cache holds %d entries after cold run, want 4", cache.Len())
	}

	ResetSweepCache() // forget the in-process memo; disk must serve everything
	var warm []PointResult
	warmStats := statsDelta(func() {
		warm, err = Sweep(points, TriangularFactory, 2)
		if err != nil {
			t.Fatal(err)
		}
	})
	if warmStats.Simulated != 0 || warmStats.DiskHits != 4 {
		t.Fatalf("warm run: %+v, want 0 simulated / 4 disk hits", warmStats)
	}
	if !reflect.DeepEqual(cold, warm) {
		t.Fatal("disk-served results differ from the simulated ones")
	}

	corruptCacheFiles(t, cache.Dir())
	ResetSweepCache()
	var again []PointResult
	corruptStats := statsDelta(func() {
		again, err = Sweep(points, TriangularFactory, 2)
		if err != nil {
			t.Fatal(err)
		}
	})
	if corruptStats.Simulated != 4 || corruptStats.DiskHits != 0 {
		t.Fatalf("corrupt-cache run: %+v, want 4 simulated / 0 disk hits", corruptStats)
	}
	if !reflect.DeepEqual(cold, again) {
		t.Fatal("results after cache corruption differ from the original run")
	}
}

// TestDiskCacheQuarantinesCorruptEntries: a corrupt entry degrades to a
// miss AND is moved aside as .corrupt with the corruption counted, so
// operators can see bit-rot instead of paying silent re-simulation.
func TestDiskCacheQuarantinesCorruptEntries(t *testing.T) {
	c, err := OpenDiskCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var observed []string
	c.OnCorrupt = func(path string) { observed = append(observed, path) }
	key := "deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef"
	if err := c.Put(key, RunOutcome{EventsFired: 7}); err != nil {
		t.Fatal(err)
	}
	corruptCacheFiles(t, c.Dir())

	if _, ok := c.Get(key); ok {
		t.Fatal("corrupt entry served as a hit")
	}
	if got := c.CorruptCount(); got != 1 {
		t.Errorf("CorruptCount = %d, want 1", got)
	}
	if len(observed) != 1 {
		t.Errorf("OnCorrupt fired %d times, want 1", len(observed))
	}
	entry := filepath.Join(c.Dir(), key[:2], key+".json")
	if _, err := os.Stat(entry); !os.IsNotExist(err) {
		t.Errorf("corrupt entry still at %s; want it renamed aside", entry)
	}
	if _, err := os.Stat(entry + ".corrupt"); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}

	// The slot is a clean miss now — no re-quarantine on later reads —
	// and a rewrite reclaims it.
	if _, ok := c.Get(key); ok {
		t.Fatal("hit after quarantine")
	}
	if got := c.CorruptCount(); got != 1 {
		t.Errorf("second Get re-counted the same corruption: %d", got)
	}
	if err := c.Put(key, RunOutcome{EventsFired: 8}); err != nil {
		t.Fatal(err)
	}
	if out, ok := c.Get(key); !ok || out.EventsFired != 8 {
		t.Errorf("rewritten slot: ok=%v out=%+v", ok, out)
	}
}

// TestDiskCachePutFailuresAreTransient: injected write failures surface
// as transient errors (the retry taxonomy) and leave no partial entry.
func TestDiskCachePutFailuresAreTransient(t *testing.T) {
	boom := errors.New("injected: disk full")
	for _, tc := range []struct {
		name string
		rule resil.Rule
	}{
		{"create", resil.Rule{Op: resil.OpCreate, Err: boom}},
		{"write", resil.Rule{Op: resil.OpWrite, Err: boom}},
		{"torn-write", resil.Rule{Op: resil.OpWrite, Err: boom, TornBytes: 5}},
		{"rename", resil.Rule{Op: resil.OpRename, Err: boom}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inj := resil.NewInjector(nil).Inject(tc.rule)
			c, err := OpenDiskCacheFS(t.TempDir(), inj)
			if err != nil {
				t.Fatal(err)
			}
			key := "cafebabecafebabecafebabecafebabecafebabecafebabecafebabecafebabe"
			err = c.Put(key, RunOutcome{EventsFired: 1})
			if !resil.IsTransient(err) {
				t.Fatalf("Put error %v, want transient", err)
			}
			if _, ok := c.Get(key); ok {
				t.Error("failed Put left a readable entry")
			}
			if n := c.Len(); n != 0 {
				t.Errorf("failed Put left %d entries on disk", n)
			}
		})
	}
}
