package experiment

import (
	"context"
	"fmt"
	"hash/fnv"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// MinWorkload is the fixed minimum of every sweep's workload interval
// (tracks); the paper's x-axes sweep the maximum in units of 500 tracks.
const MinWorkload = 500

// WorkloadUnit is the paper's x-axis scale: 1 unit = 500 tracks.
const WorkloadUnit = 500

// SweepPeriods is the run length per sweep point: two triangular cycles.
const SweepPeriods = 120

// PatternFactory builds the workload pattern for a sweep point's maximum
// workload in tracks.
type PatternFactory func(maxItems int) workload.Pattern

// TriangularFactory is Figure 9/10's pattern: two cycles per run.
func TriangularFactory(maxItems int) workload.Pattern {
	if maxItems <= MinWorkload {
		return workload.NewConstant(MinWorkload, SweepPeriods)
	}
	return workload.NewTriangular(MinWorkload, maxItems, SweepPeriods, 2)
}

// IncreasingFactory is Figure 11/13(a)'s pattern.
func IncreasingFactory(maxItems int) workload.Pattern {
	if maxItems <= MinWorkload {
		return workload.NewConstant(MinWorkload, SweepPeriods)
	}
	return workload.NewIncreasingRamp(MinWorkload, maxItems, SweepPeriods)
}

// DecreasingFactory is Figure 12/13(b)'s pattern.
func DecreasingFactory(maxItems int) workload.Pattern {
	if maxItems <= MinWorkload {
		return workload.NewConstant(MinWorkload, SweepPeriods)
	}
	return workload.NewDecreasingRamp(MinWorkload, maxItems, SweepPeriods)
}

// PointResult is one sweep cell.
type PointResult struct {
	MaxUnits int // max workload in units of 500 tracks
	Alg      core.Algorithm
	// Metrics is the cell's replication-0 run — the pinned seed every
	// golden CSV was recorded under, and the whole result when seeds = 1.
	Metrics metrics.RunMetrics
	// Reps holds every replication's metrics, Reps[0] == Metrics. With
	// Monte Carlo replication (seeds > 1) figures aggregate these into
	// mean ± 95% CI.
	Reps []metrics.RunMetrics
}

// seed0Offset pins the replication-0 seed offsets of the two headline
// algorithms. The historical derivation added len(alg) to a Weyl-sequence
// step — fragile, since any two algorithms with same-length names would
// silently share seeds (predictive vs static-max already collide at 10).
// The offsets are now explicit constants, chosen equal to the historical
// name lengths so every committed golden CSV stays byte-identical.
var seed0Offset = map[core.Algorithm]uint64{
	core.Predictive:    10, // pinned: historical len("predictive")
	core.NonPredictive: 14, // pinned: historical len("non-predictive")
}

// runSeed derives the deterministic seed for one (point, algorithm,
// replication) sweep cell. Replication 0 of the headline algorithms keeps
// the pinned historical values; every other cell — extra replications,
// extension algorithms — uses a stable FNV-1a hash of the full cell
// identity, so no two cells can alias.
func runSeed(units int, alg core.Algorithm, rep int) uint64 {
	if rep == 0 {
		if off, ok := seed0Offset[alg]; ok {
			return 0x9e3779b9*uint64(units+1) + off
		}
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "sweep|%d|%s|%d", units, alg, rep)
	return h.Sum64()
}

// Sweep runs both algorithms at every max-workload point (in units of 500
// tracks) through the shared run scheduler, one deterministic seed per
// cell. Kept as the single-replication form of SweepSeeds.
func Sweep(points []int, factory PatternFactory, parallelism int) ([]PointResult, error) {
	return SweepSeeds(points, factory, parallelism, 1)
}

// SweepSeeds is Sweep with Monte Carlo replication: every (point,
// algorithm) cell runs under `seeds` deterministic per-replication seeds.
// All cells of all replications are flattened into the shared scheduler's
// global queue up front, so independent runs fill the worker pool and
// identical cells requested by other experiments are simulated only once.
func SweepSeeds(points []int, factory PatternFactory, parallelism, seeds int) ([]PointResult, error) {
	return SweepSeedsContext(context.Background(), points, factory, parallelism, seeds)
}

// SweepSeedsContext is SweepSeeds with cancellation: when ctx is done the
// sweep unblocks with ctx.Err() and releases its stake in every cell it
// has not yet consumed, so cells nobody else wants are cancelled instead
// of simulating into the void. The daemon's sweep jobs run through here.
func SweepSeedsContext(ctx context.Context, points []int, factory PatternFactory, parallelism, seeds int) ([]PointResult, error) {
	if seeds < 1 {
		seeds = 1
	}
	SetParallelism(parallelism)
	// One base setup for the whole sweep: the dynbench demand curves and
	// fitted models are pure, only the Pattern differs between points.
	base, err := BenchmarkSetup(nil)
	if err != nil {
		return nil, err
	}
	algs := []core.Algorithm{core.Predictive, core.NonPredictive}
	type cell struct {
		units int
		alg   core.Algorithm
		reps  []*runEntry
	}
	cells := make([]cell, 0, len(points)*len(algs))
	var all []*runEntry // flattened submission order, for error-path release
	for _, u := range points {
		for _, a := range algs {
			c := cell{units: u, alg: a, reps: make([]*runEntry, seeds)}
			for r := 0; r < seeds; r++ {
				setup := base
				setup.Pattern = factory(u * WorkloadUnit)
				cfg := core.DefaultConfig()
				cfg.Seed = runSeed(u, a, r)
				c.reps[r] = sched.submit(cfg, a, []core.TaskSetup{setup})
				all = append(all, c.reps[r])
			}
			cells = append(cells, c)
		}
	}
	waited := 0
	results := make([]PointResult, len(cells))
	for i, c := range cells {
		pr := PointResult{MaxUnits: c.units, Alg: c.alg, Reps: make([]metrics.RunMetrics, seeds)}
		for r, e := range c.reps {
			out, err := e.waitCtx(ctx, sched)
			waited++ // this stake is settled either way: waitCtx abandoned it on ctx expiry, or the entry finished
			if err != nil {
				// Release the stake in every cell this sweep will never
				// consume, so cells nobody else wants stop running.
				for _, rest := range all[waited:] {
					sched.abandon(rest)
				}
				return nil, fmt.Errorf("experiment: point %d %s rep %d: %w", c.units, c.alg, r, err)
			}
			pr.Reps[r] = out.Metrics
		}
		pr.Metrics = pr.Reps[0]
		results[i] = pr
	}
	return results, nil
}

// byPoint reorganizes sweep results for table building.
func byPoint(results []PointResult) (points []int, pred, nonpred map[int]metrics.RunMetrics) {
	pts, p, np := byPointResult(results)
	pred = make(map[int]metrics.RunMetrics, len(p))
	nonpred = make(map[int]metrics.RunMetrics, len(np))
	for k, v := range p {
		pred[k] = v.Metrics
	}
	for k, v := range np {
		nonpred[k] = v.Metrics
	}
	return pts, pred, nonpred
}

// byPointResult is byPoint keeping the full PointResult (replications
// included) per cell, for CI-band rendering.
func byPointResult(results []PointResult) (points []int, pred, nonpred map[int]PointResult) {
	pred = make(map[int]PointResult)
	nonpred = make(map[int]PointResult)
	seen := make(map[int]bool)
	for _, r := range results {
		if !seen[r.MaxUnits] {
			seen[r.MaxUnits] = true
			points = append(points, r.MaxUnits)
		}
		if r.Alg == core.Predictive {
			pred[r.MaxUnits] = r
		} else {
			nonpred[r.MaxUnits] = r
		}
	}
	return points, pred, nonpred
}

// sweepCache memoizes assembled sweep slices between experiments (Figure
// 9 and Figure 10 consume the same sweep, as do 11/13(a) and 12/13(b)),
// preserving slice identity for sharing callers. Dedup of the underlying
// simulations happens a layer below, in the run scheduler — this memo
// only saves re-assembling (and re-fingerprinting) an identical sweep.
// Each key maps to a single-flight entry: concurrent callers for the same
// key block on one execution instead of duplicating it.
var sweepCache = struct {
	sync.Mutex
	m map[string]*sweepEntry
}{m: make(map[string]*sweepEntry)}

type sweepEntry struct {
	once sync.Once
	res  []PointResult
	err  error
}

// onSweepStart, when non-nil, observes each actual sweep execution
// CachedSweep triggers — a test hook for asserting single-flight
// behaviour. Set it only while no CachedSweep calls are in flight.
var onSweepStart func(key string)

// CachedSweep memoizes Sweep by key for the lifetime of the process.
// Concurrent callers with the same key share one execution and receive
// the same result slice; treat it as read-only. Errors are memoized too:
// sweeps are deterministic, so a retry would fail identically.
func CachedSweep(key string, points []int, factory PatternFactory, parallelism int) ([]PointResult, error) {
	return CachedSweepSeeds(key, points, factory, parallelism, 1)
}

// CachedSweepSeeds is CachedSweep with Monte Carlo replication; the
// replication count is part of the memo key, so a 1-seed and an N-seed
// render of the same figure coexist (sharing their rep-0 simulations
// through the run scheduler underneath).
func CachedSweepSeeds(key string, points []int, factory PatternFactory, parallelism, seeds int) ([]PointResult, error) {
	if seeds < 1 {
		seeds = 1
	}
	memoKey := fmt.Sprintf("%s|seeds=%d", key, seeds)
	sweepCache.Lock()
	e, ok := sweepCache.m[memoKey]
	if !ok {
		e = &sweepEntry{}
		sweepCache.m[memoKey] = e
	}
	sweepCache.Unlock()
	e.once.Do(func() {
		if onSweepStart != nil {
			onSweepStart(key)
		}
		e.res, e.err = SweepSeeds(points, factory, parallelism, seeds)
	})
	return e.res, e.err
}

// ResetSweepCache drops every memoized sweep and every memoized run in
// the shared scheduler (the persistent disk cache, if installed, is not
// touched — remove it with SetDiskCache(nil) to force re-simulation).
// Determinism audits (rmexperiments -check-determinism) call it so a
// repeated experiment re-executes its simulations instead of re-reading
// memoized results; results handed out before the reset remain valid and
// read-only.
func ResetSweepCache() {
	sweepCache.Lock()
	sweepCache.m = make(map[string]*sweepEntry)
	sweepCache.Unlock()
	resetRunMemo()
}
