package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// MinWorkload is the fixed minimum of every sweep's workload interval
// (tracks); the paper's x-axes sweep the maximum in units of 500 tracks.
const MinWorkload = 500

// WorkloadUnit is the paper's x-axis scale: 1 unit = 500 tracks.
const WorkloadUnit = 500

// SweepPeriods is the run length per sweep point: two triangular cycles.
const SweepPeriods = 120

// PatternFactory builds the workload pattern for a sweep point's maximum
// workload in tracks.
type PatternFactory func(maxItems int) workload.Pattern

// TriangularFactory is Figure 9/10's pattern: two cycles per run.
func TriangularFactory(maxItems int) workload.Pattern {
	if maxItems <= MinWorkload {
		return workload.NewConstant(MinWorkload, SweepPeriods)
	}
	return workload.NewTriangular(MinWorkload, maxItems, SweepPeriods, 2)
}

// IncreasingFactory is Figure 11/13(a)'s pattern.
func IncreasingFactory(maxItems int) workload.Pattern {
	if maxItems <= MinWorkload {
		return workload.NewConstant(MinWorkload, SweepPeriods)
	}
	return workload.NewIncreasingRamp(MinWorkload, maxItems, SweepPeriods)
}

// DecreasingFactory is Figure 12/13(b)'s pattern.
func DecreasingFactory(maxItems int) workload.Pattern {
	if maxItems <= MinWorkload {
		return workload.NewConstant(MinWorkload, SweepPeriods)
	}
	return workload.NewDecreasingRamp(MinWorkload, maxItems, SweepPeriods)
}

// PointResult is one sweep cell.
type PointResult struct {
	MaxUnits int // max workload in units of 500 tracks
	Alg      core.Algorithm
	Metrics  metrics.RunMetrics
}

// Sweep runs both algorithms at every max-workload point (in units of 500
// tracks), fanning the independent simulations across a worker pool. Each
// run is seeded deterministically from its point and algorithm.
func Sweep(points []int, factory PatternFactory, parallelism int) ([]PointResult, error) {
	if parallelism < 1 {
		parallelism = runtime.NumCPU()
	}
	type job struct {
		idx, units int
		alg        core.Algorithm
	}
	algs := []core.Algorithm{core.Predictive, core.NonPredictive}
	jobs := make([]job, 0, len(points)*len(algs))
	for _, u := range points {
		for _, a := range algs {
			jobs = append(jobs, job{len(jobs), u, a})
		}
	}
	results := make([]PointResult, len(jobs))
	errs := make([]error, len(jobs))

	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				results[j.idx], errs[j.idx] = runPoint(j.units, j.alg, factory)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func runPoint(units int, alg core.Algorithm, factory PatternFactory) (PointResult, error) {
	setup, err := BenchmarkSetup(factory(units * WorkloadUnit))
	if err != nil {
		return PointResult{}, err
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 0x9e3779b9*uint64(units+1) + uint64(len(alg))
	res, err := core.Run(cfg, alg, []core.TaskSetup{setup})
	if err != nil {
		return PointResult{}, fmt.Errorf("experiment: point %d %s: %w", units, alg, err)
	}
	return PointResult{MaxUnits: units, Alg: alg, Metrics: res.Metrics}, nil
}

// byPoint reorganizes sweep results for table building.
func byPoint(results []PointResult) (points []int, pred, nonpred map[int]metrics.RunMetrics) {
	pred = make(map[int]metrics.RunMetrics)
	nonpred = make(map[int]metrics.RunMetrics)
	seen := make(map[int]bool)
	for _, r := range results {
		if !seen[r.MaxUnits] {
			seen[r.MaxUnits] = true
			points = append(points, r.MaxUnits)
		}
		if r.Alg == core.Predictive {
			pred[r.MaxUnits] = r.Metrics
		} else {
			nonpred[r.MaxUnits] = r.Metrics
		}
	}
	return points, pred, nonpred
}

// sweepCache shares identical sweeps between experiments (Figure 9 and
// Figure 10 consume the same runs, as do 11/13(a) and 12/13(b)).
var sweepCache = struct {
	sync.Mutex
	m map[string][]PointResult
}{m: make(map[string][]PointResult)}

// CachedSweep memoizes Sweep by key for the lifetime of the process.
func CachedSweep(key string, points []int, factory PatternFactory, parallelism int) ([]PointResult, error) {
	sweepCache.Lock()
	cached, ok := sweepCache.m[key]
	sweepCache.Unlock()
	if ok {
		return cached, nil
	}
	res, err := Sweep(points, factory, parallelism)
	if err != nil {
		return nil, err
	}
	sweepCache.Lock()
	sweepCache.m[key] = res
	sweepCache.Unlock()
	return res, nil
}
