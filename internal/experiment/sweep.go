package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// MinWorkload is the fixed minimum of every sweep's workload interval
// (tracks); the paper's x-axes sweep the maximum in units of 500 tracks.
const MinWorkload = 500

// WorkloadUnit is the paper's x-axis scale: 1 unit = 500 tracks.
const WorkloadUnit = 500

// SweepPeriods is the run length per sweep point: two triangular cycles.
const SweepPeriods = 120

// PatternFactory builds the workload pattern for a sweep point's maximum
// workload in tracks.
type PatternFactory func(maxItems int) workload.Pattern

// TriangularFactory is Figure 9/10's pattern: two cycles per run.
func TriangularFactory(maxItems int) workload.Pattern {
	if maxItems <= MinWorkload {
		return workload.NewConstant(MinWorkload, SweepPeriods)
	}
	return workload.NewTriangular(MinWorkload, maxItems, SweepPeriods, 2)
}

// IncreasingFactory is Figure 11/13(a)'s pattern.
func IncreasingFactory(maxItems int) workload.Pattern {
	if maxItems <= MinWorkload {
		return workload.NewConstant(MinWorkload, SweepPeriods)
	}
	return workload.NewIncreasingRamp(MinWorkload, maxItems, SweepPeriods)
}

// DecreasingFactory is Figure 12/13(b)'s pattern.
func DecreasingFactory(maxItems int) workload.Pattern {
	if maxItems <= MinWorkload {
		return workload.NewConstant(MinWorkload, SweepPeriods)
	}
	return workload.NewDecreasingRamp(MinWorkload, maxItems, SweepPeriods)
}

// PointResult is one sweep cell.
type PointResult struct {
	MaxUnits int // max workload in units of 500 tracks
	Alg      core.Algorithm
	Metrics  metrics.RunMetrics
}

// Sweep runs both algorithms at every max-workload point (in units of 500
// tracks), fanning the independent simulations across a worker pool. Each
// run is seeded deterministically from its point and algorithm.
func Sweep(points []int, factory PatternFactory, parallelism int) ([]PointResult, error) {
	if parallelism < 1 {
		parallelism = runtime.NumCPU()
	}
	type job struct {
		idx, units int
		alg        core.Algorithm
	}
	algs := []core.Algorithm{core.Predictive, core.NonPredictive}
	jobs := make([]job, 0, len(points)*len(algs))
	for _, u := range points {
		for _, a := range algs {
			jobs = append(jobs, job{len(jobs), u, a})
		}
	}
	results := make([]PointResult, len(jobs))
	errs := make([]error, len(jobs))

	var wg sync.WaitGroup
	ch := make(chan job)
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// One TaskSetup per worker, reused across its points: the
			// dynbench demand curves and fitted models are pure, so only
			// the Pattern differs between points. Each core.Run still
			// builds its own engine and rng from the point's seed, so
			// results are independent of the worker topology.
			base, baseErr := BenchmarkSetup(nil)
			for j := range ch {
				if baseErr != nil {
					errs[j.idx] = baseErr
					continue
				}
				results[j.idx], errs[j.idx] = runPoint(base, j.units, j.alg, factory)
			}
		}()
	}
	for _, j := range jobs {
		ch <- j
	}
	close(ch)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

func runPoint(base core.TaskSetup, units int, alg core.Algorithm, factory PatternFactory) (PointResult, error) {
	setup := base
	setup.Pattern = factory(units * WorkloadUnit)
	cfg := core.DefaultConfig()
	cfg.Seed = 0x9e3779b9*uint64(units+1) + uint64(len(alg))
	res, err := core.Run(cfg, alg, []core.TaskSetup{setup})
	if err != nil {
		return PointResult{}, fmt.Errorf("experiment: point %d %s: %w", units, alg, err)
	}
	return PointResult{MaxUnits: units, Alg: alg, Metrics: res.Metrics}, nil
}

// byPoint reorganizes sweep results for table building.
func byPoint(results []PointResult) (points []int, pred, nonpred map[int]metrics.RunMetrics) {
	pred = make(map[int]metrics.RunMetrics)
	nonpred = make(map[int]metrics.RunMetrics)
	seen := make(map[int]bool)
	for _, r := range results {
		if !seen[r.MaxUnits] {
			seen[r.MaxUnits] = true
			points = append(points, r.MaxUnits)
		}
		if r.Alg == core.Predictive {
			pred[r.MaxUnits] = r.Metrics
		} else {
			nonpred[r.MaxUnits] = r.Metrics
		}
	}
	return points, pred, nonpred
}

// sweepCache shares identical sweeps between experiments (Figure 9 and
// Figure 10 consume the same runs, as do 11/13(a) and 12/13(b)). Each key
// maps to a single-flight entry: concurrent callers for the same key
// block on one Sweep execution instead of duplicating it.
var sweepCache = struct {
	sync.Mutex
	m map[string]*sweepEntry
}{m: make(map[string]*sweepEntry)}

type sweepEntry struct {
	once sync.Once
	res  []PointResult
	err  error
}

// onSweepStart, when non-nil, observes each actual Sweep execution
// CachedSweep triggers — a test hook for asserting single-flight
// behaviour. Set it only while no CachedSweep calls are in flight.
var onSweepStart func(key string)

// CachedSweep memoizes Sweep by key for the lifetime of the process.
// Concurrent callers with the same key share one execution and receive
// the same result slice; treat it as read-only. Errors are memoized too:
// sweeps are deterministic, so a retry would fail identically.
func CachedSweep(key string, points []int, factory PatternFactory, parallelism int) ([]PointResult, error) {
	sweepCache.Lock()
	e, ok := sweepCache.m[key]
	if !ok {
		e = &sweepEntry{}
		sweepCache.m[key] = e
	}
	sweepCache.Unlock()
	e.once.Do(func() {
		if onSweepStart != nil {
			onSweepStart(key)
		}
		e.res, e.err = Sweep(points, factory, parallelism)
	})
	return e.res, e.err
}

// ResetSweepCache drops every memoized sweep. Determinism audits
// (rmexperiments -check-determinism) call it so a repeated experiment
// re-executes its simulations instead of re-reading the cached slice;
// results handed out before the reset remain valid and read-only.
func ResetSweepCache() {
	sweepCache.Lock()
	sweepCache.m = make(map[string]*sweepEntry)
	sweepCache.Unlock()
}
