package experiment

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dynbench"
	"repro/internal/network"
	"repro/internal/profile"
	"repro/internal/regress"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "table1",
		Paper: "Table 1",
		Title: "Baseline parameters of the experimental study",
		Run:   runTable1,
	})
	register(Experiment{
		ID:    "table2",
		Paper: "Table 2",
		Title: "Execution-latency regression coefficients (fitted vs published)",
		Run:   runTable2,
	})
	register(Experiment{
		ID:    "table3",
		Paper: "Table 3",
		Title: "Buffer-delay regression slope (fitted vs published)",
		Run:   runTable3,
	})
}

func runTable1(Context) (Output, error) {
	cfg := core.DefaultConfig()
	spec := dynbench.NewTask(dynbench.DefaultConfig())
	replicable := 0
	for _, st := range spec.Subtasks {
		if st.Replicable {
			replicable++
		}
	}
	t := &Table{
		Title:   "Table 1 — baseline parameters",
		Columns: []string{"parameter", "paper", "this reproduction"},
	}
	t.AddRow("Number of nodes", "6", fmt.Sprintf("%d", cfg.NumNodes))
	t.AddRow("CPU scheduler", "Round-Robin (slice 1 ms)", fmt.Sprintf("Round-Robin (slice %v)", cfg.Slice))
	t.AddRow("Network", "Ethernet 100 Mbps", fmt.Sprintf("Ethernet %d Mbps (shared)", cfg.Network.BandwidthBps/1_000_000))
	t.AddRow("Data item (track) size", "80 bytes", fmt.Sprintf("%d bytes", dynbench.TrackBytes))
	t.AddRow("Data arrival period", "1 sec", spec.Period.String())
	t.AddRow("Relative end-to-end deadline", "990 ms", spec.Deadline.String())
	t.AddRow("Number of periodic tasks", "1", "1 (headline experiments)")
	t.AddRow("Subtasks per task", "5", fmt.Sprintf("%d", len(spec.Subtasks)))
	t.AddRow("Replicable subtasks per task", "2", fmt.Sprintf("%d", replicable))
	t.AddRow("CPU utilization threshold (non-predictive)", "20%", fmt.Sprintf("%.0f%%", cfg.UtilThreshold*100))
	return Output{ID: "table1", Tables: []*Table{t}}, nil
}

func runTable2(Context) (Output, error) {
	m, err := DefaultModels()
	if err != nil {
		return Output{}, err
	}
	t := &Table{
		Title:   "Table 2 — eq. (3) coefficients for the replicable subtasks",
		Columns: []string{"subtask", "source", "a1", "a2", "a3", "b1", "b2", "b3", "fit"},
		Notes: []string{
			"published coefficients are kept verbatim from the paper (u as a fraction; see DESIGN.md §3)",
			"fitted coefficients come from profiling this reproduction's simulated benchmark (§4.2.1.1)",
		},
	}
	addModel := func(name, source string, em regress.ExecModel, fit string) {
		c := em.Coefficients()
		t.Rows = append(t.Rows, []string{
			name, source,
			fmt.Sprintf("%.5g", c[0]), fmt.Sprintf("%.5g", c[1]), fmt.Sprintf("%.5g", c[2]),
			fmt.Sprintf("%.5g", c[3]), fmt.Sprintf("%.5g", c[4]), fmt.Sprintf("%.5g", c[5]),
			fit,
		})
	}
	addModel("3 (Filter)", "paper", regress.PaperExecSubtask3(), "-")
	addModel("3 (Filter)", "fitted", m.Exec[dynbench.FilterStage], m.ExecFit[dynbench.FilterStage].String())
	addModel("5 (EvalDecide)", "paper", regress.PaperExecSubtask5(), "-")
	addModel("5 (EvalDecide)", "fitted", m.Exec[dynbench.EvalDecideStage], m.ExecFit[dynbench.EvalDecideStage].String())
	return Output{ID: "table2", Tables: []*Table{t}}, nil
}

func runTable3(Context) (Output, error) {
	m, err := DefaultModels()
	if err != nil {
		return Output{}, err
	}
	// Show the underlying samples too.
	samples, err := profile.CommSamples(network.DefaultConfig(), profile.DefaultCommGrid())
	if err != nil {
		return Output{}, err
	}
	t := &Table{
		Title:   "Table 3 — buffer-delay slope k (ms per 100 tracks of total periodic workload)",
		Columns: []string{"subtask", "paper k", "fitted k"},
		Notes: []string{
			"the paper reports k = 0.7 for both replicable subtasks; the fitted value reflects this " +
				"reproduction's burst contention on the shared segment",
		},
	}
	t.AddRow("3 (Filter)", regress.PaperBufferSlopeK, m.Comm.K)
	t.AddRow("5 (EvalDecide)", regress.PaperBufferSlopeK, m.Comm.K)

	obs := &Table{
		Title:   "Table 3 (supporting) — observed mean buffer delay per total workload",
		Columns: []string{"total tracks", "mean buffer delay (ms)", "model k·d (ms)"},
	}
	for _, s := range samples {
		obs.AddRow(s.TotalItems, s.BufferDelay.Milliseconds(), m.Comm.BufferDelayMS(s.TotalItems))
	}
	_ = sim.Time(0)
	return Output{ID: "table3", Tables: []*Table{t, obs}}, nil
}
