package experiment

import (
	"fmt"

	"repro/internal/api"
	"repro/internal/core"
)

// This file bridges the api wire schema and the experiment layer: the
// rmserved daemon materializes requests into runnable (config, algorithm,
// setups) triples here, and the rmexperiments -remote mode encodes local
// runs back onto the wire. Encoding is verified by fingerprint round
// trip — a run is only delegated remotely when the request, materialized
// exactly as the server will materialize it, content-addresses to the
// same cell — so a remote daemon can never silently compute a different
// simulation than the local scheduler would have.

// MaterializeRun turns a validated run request into the exact inputs
// ScheduledRun takes. This is the server's single entry point from the
// wire into the engine, and the reference semantics EncodeRunRequest
// verifies against.
func MaterializeRun(req api.RunRequest) (core.Config, core.Algorithm, []core.TaskSetup, error) {
	if err := req.Validate(); err != nil {
		return core.Config{}, "", nil, err
	}
	cfg := core.DefaultConfig()
	if req.Config != nil {
		var err error
		if cfg, err = req.Config.ToCore(); err != nil {
			return core.Config{}, "", nil, err
		}
	}
	if req.Seed != nil {
		cfg.Seed = *req.Seed
	}
	pattern, err := req.Task.Pattern.ToWorkload()
	if err != nil {
		return core.Config{}, "", nil, err
	}
	source := SourceProfiled
	if req.Task.Models != "" {
		source = ModelSource(req.Task.Models)
	}
	setup, err := SetupWithModels(pattern, source)
	if err != nil {
		return core.Config{}, "", nil, err
	}
	return cfg, core.Algorithm(req.Algorithm), []core.TaskSetup{setup}, nil
}

// SweepFactory resolves a wire sweep pattern name to the figure factory
// it names.
func SweepFactory(name string) (PatternFactory, error) {
	switch name {
	case api.SweepTriangular:
		return TriangularFactory, nil
	case api.SweepIncreasing:
		return IncreasingFactory, nil
	case api.SweepDecreasing:
		return DecreasingFactory, nil
	}
	return nil, fmt.Errorf("experiment: unknown sweep pattern %q", name)
}

// EncodeRunRequest expresses one local run in the wire schema, or
// reports ok=false when it cannot: multi-task runs, explicit home
// placements, patterns outside the schema, or models that match no wire
// model source. The candidate request is materialized through
// MaterializeRun and accepted only when it fingerprints to the same cell
// as the original — byte-equivalent semantics, verified, not assumed.
func EncodeRunRequest(cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) (api.RunRequest, bool) {
	if cfg.Telemetry != nil || len(setups) != 1 || setups[0].Homes != nil {
		return api.RunRequest{}, false
	}
	pattern, ok := api.PatternFromWorkload(setups[0].Pattern)
	if !ok {
		return api.RunRequest{}, false
	}
	wireCfg := api.ConfigFromCore(cfg)
	want := runFingerprint(cfg, alg, setups)
	for _, models := range []string{api.ModelsProfiled, api.ModelsPaper, api.ModelsGroundTruth} {
		req := api.RunRequest{
			SchemaVersion: api.SchemaVersion,
			Algorithm:     string(alg),
			Config:        &wireCfg,
			Task:          api.TaskSpec{Pattern: pattern, Models: models},
		}
		mcfg, malg, msetups, err := MaterializeRun(req)
		if err != nil {
			continue
		}
		if runFingerprint(mcfg, malg, msetups) == want {
			return req, true
		}
	}
	return api.RunRequest{}, false
}

// OutcomeToAPI converts a scheduler outcome to its wire form.
func OutcomeToAPI(out RunOutcome) api.RunResult {
	return api.RunResult{
		SchemaVersion: api.SchemaVersion,
		Metrics:       api.MetricsFromRun(out.Metrics),
		Failovers:     out.Failovers,
		EventsFired:   out.EventsFired,
	}
}

// OutcomeFromAPI converts a wire result back to a scheduler outcome.
func OutcomeFromAPI(r api.RunResult) RunOutcome {
	return RunOutcome{
		Metrics:     r.Metrics.ToRun(),
		Failovers:   r.Failovers,
		EventsFired: r.EventsFired,
	}
}

// SweepToAPI converts sweep results to their wire form. Single-seed
// sweeps omit the redundant Reps column.
func SweepToAPI(results []PointResult) api.SweepResult {
	out := api.SweepResult{SchemaVersion: api.SchemaVersion}
	for _, pr := range results {
		p := api.SweepPoint{MaxUnits: pr.MaxUnits, Algorithm: string(pr.Alg), Metrics: api.MetricsFromRun(pr.Metrics)}
		if len(pr.Reps) > 1 {
			p.Reps = make([]api.Metrics, len(pr.Reps))
			for i, m := range pr.Reps {
				p.Reps[i] = api.MetricsFromRun(m)
			}
		}
		out.Points = append(out.Points, p)
	}
	return out
}

// SchedulerStatsToAPI converts scheduler counters to their wire form.
func SchedulerStatsToAPI(c SchedulerCounters) api.SchedulerStats {
	return api.SchedulerStats{
		Requested:  c.Requested,
		Deduped:    c.Deduped,
		MemoryHits: c.MemoryHits,
		DiskHits:   c.DiskHits,
		Simulated:  c.Simulated,
		Cancelled:  c.Cancelled,
		Remote:     c.Remote,
	}
}
