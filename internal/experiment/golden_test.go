package experiment

// Golden-run determinism harness.
//
// The hot-path optimizations in sim/cpu/network/core must not drift the
// paper's reproduced numbers. These tests pin two things:
//
//  1. Parallelism-independence: a Sweep run serially (parallelism=1) and
//     one fanned across workers produce byte-identical RunMetrics. Every
//     point is an independent, self-seeded simulation, so the worker
//     topology must be invisible in the results.
//  2. Snapshots: full-precision sweep metrics and the figure CSVs are
//     committed under testdata/. Any engine change that alters a single
//     completion time, event ordering, or rounding shows up as a byte
//     diff here — run with -update to regenerate on purpose.
//
// Regenerate after an intentional model change:
//
//	go test ./internal/experiment -run Golden -update

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files under testdata/")

// goldenPoints is a trimmed x-axis that still exercises the interesting
// regimes: idle (0), adaptation onset, and heavy overload.
func goldenPoints() []int { return []int{0, 6, 12, 20} }

// goldenCSV serializes sweep results at full float precision — unlike the
// figure tables' %.3f cells, this catches drift below a thousandth.
func goldenCSV(results []PointResult) []byte {
	var b bytes.Buffer
	b.WriteString("max_units,alg,periods,completed,missed,mean_cpu_util,mean_net_util,mean_replicas,max_replicas,replications,shutdowns,alloc_failures,unfinished\n")
	for _, r := range results {
		m := r.Metrics
		fmt.Fprintf(&b, "%d,%s,%d,%d,%d,%s,%s,%s,%s,%d,%d,%d,%d\n",
			r.MaxUnits, r.Alg,
			m.Periods, m.Completed, m.Missed,
			g(m.MeanCPUUtil), g(m.MeanNetUtil), g(m.MeanReplicas), g(m.MaxReplicas),
			m.Replications, m.Shutdowns, m.AllocFailures, m.UnfinishedWork)
	}
	return b.Bytes()
}

// g formats a float with the shortest representation that round-trips.
func g(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden run.\nThis means an optimization or refactor changed simulation "+
			"results. If the change is intentional, regenerate with -update.\n%s",
			name, firstDiff(want, got))
	}
}

// firstDiff renders the first differing line for a readable failure.
func firstDiff(want, got []byte) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	for i := 0; i < len(w) || i < len(g); i++ {
		var lw, lg string
		if i < len(w) {
			lw = w[i]
		}
		if i < len(g) {
			lg = g[i]
		}
		if lw != lg {
			return fmt.Sprintf("first diff at line %d:\n  golden: %s\n  got:    %s", i+1, lw, lg)
		}
	}
	return "files differ in length only"
}

// TestGoldenSweepAcrossParallelism is the determinism core: the same seeds
// must yield identical metrics no matter how the runs are scheduled onto
// workers.
func TestGoldenSweepAcrossParallelism(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory PatternFactory
	}{
		{"triangular", TriangularFactory},
		{"increasing", IncreasingFactory},
	} {
		t.Run(tc.name, func(t *testing.T) {
			// Drop memoized runs so every Sweep below actually simulates
			// under its own scheduling instead of reading the run memo.
			ResetSweepCache()
			serial, err := Sweep(goldenPoints(), tc.factory, 1)
			if err != nil {
				t.Fatal(err)
			}
			for _, parallelism := range []int{2, 7} {
				ResetSweepCache()
				parallel, err := Sweep(goldenPoints(), tc.factory, parallelism)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(serial, parallel) {
					t.Fatalf("parallelism=%d results differ from serial run:\n%s",
						parallelism, firstDiff(goldenCSV(serial), goldenCSV(parallel)))
				}
			}
		})
	}
}

// TestGoldenSweepSnapshot pins the serial sweep's metrics at full float
// precision.
func TestGoldenSweepSnapshot(t *testing.T) {
	for _, tc := range []struct {
		name    string
		factory PatternFactory
	}{
		{"triangular", TriangularFactory},
		{"increasing", IncreasingFactory},
		{"decreasing", DecreasingFactory},
	} {
		t.Run(tc.name, func(t *testing.T) {
			results, err := Sweep(goldenPoints(), tc.factory, 1)
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, "sweep_"+tc.name+".golden.csv", goldenCSV(results))
		})
	}
}

// TestGoldenSeedZeroUnchangedUnderReplication pins the seed-derivation
// contract of the Monte Carlo extension: replication 0 of every sweep
// cell keeps the exact historical seed, so a replicated sweep's rep-0
// metrics are byte-for-byte the committed single-run golden.
func TestGoldenSeedZeroUnchangedUnderReplication(t *testing.T) {
	ResetSweepCache()
	results, err := SweepSeeds(goldenPoints(), TriangularFactory, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range results {
		if len(r.Reps) != 3 {
			t.Fatalf("point %d %s: %d replications, want 3", r.MaxUnits, r.Alg, len(r.Reps))
		}
		if !reflect.DeepEqual(r.Metrics, r.Reps[0]) {
			t.Fatalf("point %d %s: Metrics is not the replication-0 run", r.MaxUnits, r.Alg)
		}
	}
	want, err := os.ReadFile(filepath.Join("testdata", "sweep_triangular.golden.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if got := goldenCSV(results); !bytes.Equal(got, want) {
		t.Errorf("replication-0 metrics drifted from the single-run golden.\n%s", firstDiff(want, got))
	}
}

// TestGoldenFigureCSV pins the rendered figure CSVs — the exact bytes the
// rmexperiments CLI writes with -out — for the sweep-driven figures.
// fig9/fig10 share one cached sweep, fig13 consumes the two ramp sweeps.
func TestGoldenFigureCSV(t *testing.T) {
	ctx := Context{Quick: true, Parallelism: 4}
	for _, id := range []string{"fig9", "fig10", "fig13"} {
		t.Run(id, func(t *testing.T) {
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			out, err := e.Run(ctx)
			if err != nil {
				t.Fatal(err)
			}
			for i, table := range out.Tables {
				var csv bytes.Buffer
				if err := table.WriteCSV(&csv); err != nil {
					t.Fatal(err)
				}
				name := fmt.Sprintf("%s.golden.csv", id)
				if len(out.Tables) > 1 {
					name = fmt.Sprintf("%s-%d.golden.csv", id, i+1)
				}
				checkGolden(t, name, csv.Bytes())
			}
		})
	}
}

// TestGoldenExtChaos pins the chaos sweep: stochastic crash schedules,
// message loss, and retransmission must all be pure functions of the cell
// seed, so the rendered table is as reproducible as the clean figures.
// Quick mode trims the grid to the low/medium intensities; two seeds
// exercise the CI columns.
func TestGoldenExtChaos(t *testing.T) {
	e, err := ByID("ext-chaos")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(Context{Quick: true, Parallelism: 4, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	var csv bytes.Buffer
	if err := out.Tables[0].WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "extchaos.golden.csv", csv.Bytes())
}

// TestGoldenExtTournament pins the policy tournament: both the grid and
// the leaderboard must be pure functions of the FNV cell seeds, for
// every registered policy — including the controller-driven
// period-stretch and imprecise-shed paths. Quick mode trims to the
// triangular pattern and the low/medium intensities; two seeds exercise
// the CI columns. The grid and leaderboard are pinned separately so a
// ranking flip is distinguishable from a cell-level drift.
func TestGoldenExtTournament(t *testing.T) {
	e, err := ByID("ext-tournament")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(Context{Quick: true, Parallelism: 4, Seeds: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i, table := range out.Tables {
		var csv bytes.Buffer
		if err := table.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		checkGolden(t, fmt.Sprintf("exttournament-%d.golden.csv", i+1), csv.Bytes())
	}
}
