package experiment

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/resil"
	"repro/internal/trace"
)

// This file is the cross-experiment run scheduler. Every simulation any
// experiment requests — one (config, algorithm, task setup, seed) cell —
// is flattened into a single global work queue drained by one shared
// worker pool, instead of each sweep spinning up its own. Identical runs
// are deduplicated at run granularity with single-flight semantics: the
// first requester enqueues the cell, later requesters join it, and the
// finished outcome is memoized for the life of the process (and, when a
// DiskCache is installed, across processes).
//
// Every cell is also a cancellable job: requesters wait with a context,
// the cell executes under a private context that is cancelled only when
// ALL its requesters have abandoned it, and a cancelled cell is evicted
// from the memo so a later identical request re-runs it. That is what
// lets the rmserved daemon kill queued or running jobs without leaking
// worker goroutines.

// RunOutcome is the cacheable summary of one simulation run: the §5.2
// metrics plus the cheap derived counts the batch experiments table.
// Full period records and adaptation traces are deliberately excluded —
// they are large, and no batch experiment consumes them.
type RunOutcome struct {
	Metrics metrics.RunMetrics `json:"metrics"`
	// Failovers counts trace.ActionFailover adaptation events (ext-faults).
	Failovers int `json:"failovers"`
	// EventsFired is the engine's determinism fingerprint.
	EventsFired uint64 `json:"events_fired"`
}

// runEntry is one scheduled simulation: a single-flight cell of the
// global run table. Whoever creates the entry enqueues it exactly once;
// every later requester receives the same entry and blocks on done.
type runEntry struct {
	key    string
	cfg    core.Config
	alg    core.Algorithm
	setups []core.TaskSetup

	// runCtx governs the cell's execution; cancelRun fires when the last
	// waiter abandons the cell (see scheduler.abandon).
	runCtx    context.Context
	cancelRun context.CancelFunc

	// enqueuedAt is the wall-clock admission time; set only while a
	// WallObserver is installed (the zero value suppresses wait
	// reporting), so observability off means zero clock reads per run.
	enqueuedAt time.Time

	done     chan struct{}
	out      RunOutcome
	err      error
	finished bool // guarded by the scheduler mutex; set before done closes
	waiters  int  // guarded by the scheduler mutex; live requesters
}

// wait blocks until the entry's run completes.
func (e *runEntry) wait() (RunOutcome, error) {
	<-e.done
	return e.out, e.err
}

// waitCtx blocks until the run completes or ctx is done; abandoning a
// cell releases this requester's stake in it (the cell is cancelled once
// nobody is left waiting).
func (e *runEntry) waitCtx(ctx context.Context, s *scheduler) (RunOutcome, error) {
	if ctx.Done() == nil {
		return e.wait()
	}
	select {
	case <-e.done:
		return e.out, e.err
	case <-ctx.Done():
		s.abandon(e)
		return RunOutcome{}, ctx.Err()
	}
}

// SchedulerCounters is a snapshot of the global scheduler's cumulative
// accounting. Requested = Deduped + MemoryHits + DiskHits + Simulated +
// Cancelled + Remote once every submitted run has resolved.
type SchedulerCounters struct {
	Requested  uint64 // run requests submitted, including duplicates
	Deduped    uint64 // joined an identical run already in flight
	MemoryHits uint64 // served from the in-process memo of finished runs
	DiskHits   uint64 // served from the persistent content-addressed cache
	Simulated  uint64 // actually executed
	Cancelled  uint64 // abandoned by every requester before completing
	Remote     uint64 // delegated to a remote rmserved daemon
}

// RemoteRunner executes one wire-expressible run against a remote
// rmserved daemon (see SetRemoteRunner).
type RemoteRunner func(ctx context.Context, req api.RunRequest) (RunOutcome, error)

// WallObserver receives wall-clock timings of scheduler activity — the
// serving path's view of the queue, entirely outside simulated time.
// Implementations must be safe for concurrent use (workers call them in
// parallel) and cheap: they run on the worker's critical path.
// obs.Metrics satisfies this interface.
type WallObserver interface {
	// CellQueued fires when a new run cell is admitted to the queue.
	CellQueued()
	// CellStarted fires when a worker picks the cell up, with the time it
	// spent waiting in the queue.
	CellStarted(wait time.Duration)
	// CellFinished fires when the cell resolves, with how it resolved
	// ("simulated", "disk_hit", "remote", "cancelled", "error") and the
	// wall-clock execution time.
	CellFinished(outcome string, run time.Duration)
	// DiskHit fires for each persistent-cache read that returned an
	// outcome, with the read's wall-clock latency.
	DiskHit(d time.Duration)
}

type scheduler struct {
	mu       sync.Mutex
	queue    []*runEntry
	entries  map[string]*runEntry
	width    int // target worker-pool size; 0 = unset (NumCPU at first use)
	workers  int // live worker goroutines
	disk     *DiskCache
	remote   RemoteRunner
	observer WallObserver
	stats    SchedulerCounters
}

// sched is the process-wide scheduler every experiment shares.
var sched = &scheduler{entries: make(map[string]*runEntry)}

// SetParallelism sets the shared worker pool's target width; n ≤ 0 means
// NumCPU. The pool is global — concurrent callers share it and the most
// recent setting wins — which is safe because results never depend on the
// width (every run is independently seeded; the golden tests pin that),
// only throughput does.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.NumCPU()
	}
	sched.mu.Lock()
	sched.width = n
	sched.mu.Unlock()
}

// SetDiskCache installs (or, with nil, removes) the persistent cache the
// scheduler consults before simulating and writes through after.
func SetDiskCache(c *DiskCache) {
	sched.mu.Lock()
	sched.disk = c
	sched.mu.Unlock()
}

// SetWallObserver installs (or, with nil, removes) the wall-clock
// observer the scheduler reports queue/run timings to. Like the disk
// cache and remote runner, it is process-global: the scheduler is one
// shared pool, so its observability is too.
func SetWallObserver(o WallObserver) {
	sched.mu.Lock()
	sched.observer = o
	sched.mu.Unlock()
}

// SetRemoteRunner installs (or, with nil, removes) a remote executor:
// runs whose (config, algorithm, setups) are expressible in the api wire
// schema are delegated to it instead of simulated locally — the
// rmexperiments -remote mode. Inexpressible runs still simulate locally.
func SetRemoteRunner(fn RemoteRunner) {
	sched.mu.Lock()
	sched.remote = fn
	sched.mu.Unlock()
}

// SchedulerStats snapshots the cumulative scheduler counters — the
// rmexperiments end-of-run summary and the daemon's /v1/stats read them,
// and tests assert dedup behaviour through before/after deltas.
func SchedulerStats() SchedulerCounters {
	sched.mu.Lock()
	defer sched.mu.Unlock()
	return sched.stats
}

// ScheduledRun routes one simulation through the shared scheduler,
// blocking until its result is available. Identical runs — same config,
// algorithm and setups by content — execute once and share the outcome.
// cfg.Telemetry must be nil: an attached recorder is a per-run side
// effect that neither dedup nor the cache can replay.
func ScheduledRun(cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) (RunOutcome, error) {
	return ScheduledRunContext(context.Background(), cfg, alg, setups)
}

// ScheduledRunContext is ScheduledRun with cancellation: when ctx is done
// the caller unblocks with ctx.Err(), and the underlying cell — shared
// with any identical concurrent request — is cancelled once every
// requester has abandoned it.
func ScheduledRunContext(ctx context.Context, cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) (RunOutcome, error) {
	if cfg.Telemetry != nil {
		return RunOutcome{}, fmt.Errorf("experiment: scheduled runs cannot carry a telemetry recorder")
	}
	return sched.submit(cfg, alg, setups).waitCtx(ctx, sched)
}

// submit registers one run and returns its entry without waiting, so
// callers can flatten a whole batch into the queue before blocking.
func (s *scheduler) submit(cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) *runEntry {
	key := runFingerprint(cfg, alg, setups)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Requested++
	if e, ok := s.entries[key]; ok {
		if e.finished {
			s.stats.MemoryHits++
		} else {
			s.stats.Deduped++
			e.waiters++
		}
		return e
	}
	e := &runEntry{key: key, cfg: cfg, alg: alg, setups: setups, done: make(chan struct{}), waiters: 1}
	e.runCtx, e.cancelRun = context.WithCancel(context.Background())
	if s.observer != nil {
		e.enqueuedAt = time.Now()
		s.observer.CellQueued()
	}
	s.entries[key] = e
	s.queue = append(s.queue, e)
	if s.width == 0 {
		s.width = runtime.NumCPU()
	}
	if s.workers < s.width {
		s.workers++
		go s.worker()
	}
	return e
}

// abandon releases one requester's stake in a cell. The last live
// requester to leave cancels the cell's execution and evicts it from the
// memo, so a future identical request re-runs instead of joining a
// corpse.
func (s *scheduler) abandon(e *runEntry) {
	s.mu.Lock()
	e.waiters--
	cancel := e.waiters <= 0 && !e.finished
	if cancel && s.entries[e.key] == e {
		delete(s.entries, e.key)
	}
	s.mu.Unlock()
	if cancel {
		e.cancelRun()
	}
}

// worker drains the global queue FIFO. The pool is elastic: submit spawns
// workers on demand up to the target width, and a worker exits when the
// queue is empty or the target has shrunk below the live count, so idle
// workers cost nothing and serial mode (width 1) is truly serial.
func (s *scheduler) worker() {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 || s.workers > s.width {
			s.workers--
			s.mu.Unlock()
			return
		}
		e := s.queue[0]
		s.queue = s.queue[1:]
		disk := s.disk
		remote := s.remote
		observer := s.observer
		s.mu.Unlock()
		s.execute(e, disk, remote, observer)
	}
}

// isCancel reports whether err is a context cancellation.
func isCancel(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Cell outcome kinds, as reported to the WallObserver and mapped onto
// SchedulerCounters by finish.
const (
	cellSimulated = "simulated"
	cellDiskHit   = "disk_hit"
	cellRemote    = "remote"
	cellCancelled = "cancelled"
	cellError     = "error"
)

// execute resolves one entry: cancellation first, persistent cache
// second, remote delegation third, local simulation last. observer, when
// non-nil, receives the cell's wall-clock wait and run timings.
func (s *scheduler) execute(e *runEntry, disk *DiskCache, remote RemoteRunner, observer WallObserver) {
	var started time.Time
	if observer != nil {
		started = time.Now()
		if !e.enqueuedAt.IsZero() {
			observer.CellStarted(started.Sub(e.enqueuedAt))
		}
	}
	if err := e.runCtx.Err(); err != nil {
		s.finish(e, RunOutcome{}, err, cellCancelled, observer, started)
		return
	}
	if disk != nil {
		out, ok := disk.Get(e.key)
		if ok {
			if observer != nil {
				observer.DiskHit(time.Since(started))
			}
			s.finish(e, out, nil, cellDiskHit, observer, started)
			return
		}
	}
	if remote != nil {
		if req, ok := EncodeRunRequest(e.cfg, e.alg, e.setups); ok {
			out, err := remote(e.runCtx, req)
			if isCancel(err) {
				s.finish(e, RunOutcome{}, err, cellCancelled, observer, started)
				return
			}
			if err == nil && disk != nil {
				_ = disk.Put(e.key, out)
			}
			s.finish(e, out, err, cellRemote, observer, started)
			return
		}
	}
	out, err := simulateRecovering(e.runCtx, e.cfg, e.alg, e.setups)
	if isCancel(err) {
		s.finish(e, RunOutcome{}, err, cellCancelled, observer, started)
		return
	}
	if err == nil && disk != nil {
		// Best effort: a failed write only costs a future re-simulation.
		_ = disk.Put(e.key, out)
	}
	s.finish(e, out, err, cellSimulated, observer, started)
}

// simulateRecovering is the worker pool's panic boundary: a panicking
// simulation becomes a structured job failure (stack attached) instead
// of killing the process, and the worker goroutine — having recovered —
// simply continues its drain loop, which is what "replacing" the worker
// amounts to in an elastic pool.
func simulateRecovering(ctx context.Context, cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) (out RunOutcome, err error) {
	defer func() {
		if r := recover(); r != nil {
			out, err = RunOutcome{}, resil.NewPanicError(r)
		}
	}()
	return simulate(ctx, cfg, alg, setups)
}

func (s *scheduler) finish(e *runEntry, out RunOutcome, err error, kind string, observer WallObserver, started time.Time) {
	s.mu.Lock()
	e.out, e.err = out, err
	e.finished = true
	if (isCancel(err) || resil.IsTransient(err)) && s.entries[e.key] == e {
		// Never memoize a cancellation or a transient failure: the next
		// identical request must re-execute — a dead waiter's context
		// error and an I/O flake are both properties of one attempt, not
		// of the cell. Deterministic errors stay memoized: the same
		// config and seed would fail identically, so a retry is waste.
		delete(s.entries, e.key)
	}
	switch kind {
	case cellCancelled:
		s.stats.Cancelled++
	case cellDiskHit:
		s.stats.DiskHits++
	case cellRemote:
		s.stats.Remote++
	default:
		s.stats.Simulated++
	}
	s.mu.Unlock()
	if observer != nil {
		// The observer sees failures as their own outcome; the counters
		// keep attributing them to the path that produced them.
		if err != nil && !isCancel(err) {
			kind = cellError
		}
		observer.CellFinished(kind, time.Since(started))
	}
	close(e.done)
}

// simHook, when non-nil, fires before each local simulation with the
// cell's config and algorithm. It is the service-layer fault harness's
// seam into the run path: tests inject transient errors (to exercise
// retry/backoff), deterministic errors (to prove they are never
// retried), and panics (to exercise worker isolation) without touching
// the engine. A non-nil error aborts the cell with that error; a panic
// propagates to the worker's recovery boundary like any engine panic.
var (
	simHookMu sync.Mutex
	simHook   func(cfg core.Config, alg core.Algorithm) error
)

// SetSimHook installs (or, with nil, removes) the fault-injection hook.
// Test-only: production binaries never set it.
func SetSimHook(fn func(cfg core.Config, alg core.Algorithm) error) {
	simHookMu.Lock()
	simHook = fn
	simHookMu.Unlock()
}

// simulate is the single place experiment code executes core.Run.
func simulate(ctx context.Context, cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) (RunOutcome, error) {
	simHookMu.Lock()
	hook := simHook
	simHookMu.Unlock()
	if hook != nil {
		if err := hook(cfg, alg); err != nil {
			return RunOutcome{}, err
		}
	}
	res, err := core.RunContext(ctx, cfg, alg, setups)
	if err != nil {
		return RunOutcome{}, err
	}
	out := RunOutcome{Metrics: res.Metrics, EventsFired: res.EventsFired}
	for _, ev := range res.Events {
		if ev.Kind == trace.ActionFailover {
			out.Failovers++
		}
	}
	return out, nil
}

// resetRunMemo drops every memoized run outcome; in-flight entries keep
// completing for their existing waiters. The persistent disk cache, if
// any, is left untouched.
func resetRunMemo() {
	sched.mu.Lock()
	sched.entries = make(map[string]*runEntry)
	sched.mu.Unlock()
}
