package experiment

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/trace"
)

// This file is the cross-experiment run scheduler. Every simulation any
// experiment requests — one (config, algorithm, task setup, seed) cell —
// is flattened into a single global work queue drained by one shared
// worker pool, instead of each sweep spinning up its own. Identical runs
// are deduplicated at run granularity with single-flight semantics: the
// first requester enqueues the cell, later requesters join it, and the
// finished outcome is memoized for the life of the process (and, when a
// DiskCache is installed, across processes).

// RunOutcome is the cacheable summary of one simulation run: the §5.2
// metrics plus the cheap derived counts the batch experiments table.
// Full period records and adaptation traces are deliberately excluded —
// they are large, and no batch experiment consumes them.
type RunOutcome struct {
	Metrics metrics.RunMetrics `json:"metrics"`
	// Failovers counts trace.ActionFailover adaptation events (ext-faults).
	Failovers int `json:"failovers"`
	// EventsFired is the engine's determinism fingerprint.
	EventsFired uint64 `json:"events_fired"`
}

// runEntry is one scheduled simulation: a single-flight cell of the
// global run table. Whoever creates the entry enqueues it exactly once;
// every later requester receives the same entry and blocks on done.
type runEntry struct {
	key    string
	cfg    core.Config
	alg    core.Algorithm
	setups []core.TaskSetup

	done     chan struct{}
	out      RunOutcome
	err      error
	finished bool // guarded by the scheduler mutex; set before done closes
}

// wait blocks until the entry's run completes.
func (e *runEntry) wait() (RunOutcome, error) {
	<-e.done
	return e.out, e.err
}

// SchedulerCounters is a snapshot of the global scheduler's cumulative
// accounting. Requested = Deduped + MemoryHits + DiskHits + Simulated
// once every submitted run has resolved.
type SchedulerCounters struct {
	Requested  uint64 // run requests submitted, including duplicates
	Deduped    uint64 // joined an identical run already in flight
	MemoryHits uint64 // served from the in-process memo of finished runs
	DiskHits   uint64 // served from the persistent content-addressed cache
	Simulated  uint64 // actually executed
}

type scheduler struct {
	mu      sync.Mutex
	queue   []*runEntry
	entries map[string]*runEntry
	width   int // target worker-pool size; 0 = unset (NumCPU at first use)
	workers int // live worker goroutines
	disk    *DiskCache
	stats   SchedulerCounters
}

// sched is the process-wide scheduler every experiment shares.
var sched = &scheduler{entries: make(map[string]*runEntry)}

// SetParallelism sets the shared worker pool's target width; n ≤ 0 means
// NumCPU. The pool is global — concurrent callers share it and the most
// recent setting wins — which is safe because results never depend on the
// width (every run is independently seeded; the golden tests pin that),
// only throughput does.
func SetParallelism(n int) {
	if n < 1 {
		n = runtime.NumCPU()
	}
	sched.mu.Lock()
	sched.width = n
	sched.mu.Unlock()
}

// SetDiskCache installs (or, with nil, removes) the persistent cache the
// scheduler consults before simulating and writes through after.
func SetDiskCache(c *DiskCache) {
	sched.mu.Lock()
	sched.disk = c
	sched.mu.Unlock()
}

// SchedulerStats snapshots the cumulative scheduler counters — the
// rmexperiments end-of-run summary reads them, and tests assert dedup
// behaviour through before/after deltas.
func SchedulerStats() SchedulerCounters {
	sched.mu.Lock()
	defer sched.mu.Unlock()
	return sched.stats
}

// ScheduledRun routes one simulation through the shared scheduler,
// blocking until its result is available. Identical runs — same config,
// algorithm and setups by content — execute once and share the outcome.
// cfg.Telemetry must be nil: an attached recorder is a per-run side
// effect that neither dedup nor the cache can replay.
func ScheduledRun(cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) (RunOutcome, error) {
	if cfg.Telemetry != nil {
		return RunOutcome{}, fmt.Errorf("experiment: scheduled runs cannot carry a telemetry recorder")
	}
	return sched.submit(cfg, alg, setups).wait()
}

// submit registers one run and returns its entry without waiting, so
// callers can flatten a whole batch into the queue before blocking.
func (s *scheduler) submit(cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) *runEntry {
	key := runFingerprint(cfg, alg, setups)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stats.Requested++
	if e, ok := s.entries[key]; ok {
		if e.finished {
			s.stats.MemoryHits++
		} else {
			s.stats.Deduped++
		}
		return e
	}
	e := &runEntry{key: key, cfg: cfg, alg: alg, setups: setups, done: make(chan struct{})}
	s.entries[key] = e
	s.queue = append(s.queue, e)
	if s.width == 0 {
		s.width = runtime.NumCPU()
	}
	if s.workers < s.width {
		s.workers++
		go s.worker()
	}
	return e
}

// worker drains the global queue FIFO. The pool is elastic: submit spawns
// workers on demand up to the target width, and a worker exits when the
// queue is empty or the target has shrunk below the live count, so idle
// workers cost nothing and serial mode (width 1) is truly serial.
func (s *scheduler) worker() {
	for {
		s.mu.Lock()
		if len(s.queue) == 0 || s.workers > s.width {
			s.workers--
			s.mu.Unlock()
			return
		}
		e := s.queue[0]
		s.queue = s.queue[1:]
		disk := s.disk
		s.mu.Unlock()
		s.execute(e, disk)
	}
}

// execute resolves one entry: persistent cache first, simulation second.
func (s *scheduler) execute(e *runEntry, disk *DiskCache) {
	if disk != nil {
		if out, ok := disk.Get(e.key); ok {
			s.finish(e, out, nil, func(c *SchedulerCounters) { c.DiskHits++ })
			return
		}
	}
	out, err := simulate(e.cfg, e.alg, e.setups)
	if err == nil && disk != nil {
		// Best effort: a failed write only costs a future re-simulation.
		_ = disk.Put(e.key, out)
	}
	s.finish(e, out, err, func(c *SchedulerCounters) { c.Simulated++ })
}

func (s *scheduler) finish(e *runEntry, out RunOutcome, err error, count func(*SchedulerCounters)) {
	s.mu.Lock()
	e.out, e.err = out, err
	e.finished = true
	count(&s.stats)
	s.mu.Unlock()
	close(e.done)
}

// simulate is the single place experiment code executes core.Run.
func simulate(cfg core.Config, alg core.Algorithm, setups []core.TaskSetup) (RunOutcome, error) {
	res, err := core.Run(cfg, alg, setups)
	if err != nil {
		return RunOutcome{}, err
	}
	out := RunOutcome{Metrics: res.Metrics, EventsFired: res.EventsFired}
	for _, ev := range res.Events {
		if ev.Kind == trace.ActionFailover {
			out.Failovers++
		}
	}
	return out, nil
}

// resetRunMemo drops every memoized run outcome; in-flight entries keep
// completing for their existing waiters. The persistent disk cache, if
// any, is left untouched.
func resetRunMemo() {
	sched.mu.Lock()
	sched.entries = make(map[string]*runEntry)
	sched.mu.Unlock()
}
