package experiment

import (
	"fmt"
	"hash/fnv"
	"sort"

	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/stats"
	"repro/internal/workload"
)

func init() {
	register(Experiment{ID: "ext-tournament", Paper: "§6 extension (policy registry)",
		Title: "Algorithm tournament: every registered policy × chaos intensity × workload shape",
		Run:   runExtTournament})
}

// tournamentPattern is one workload shape of the tournament grid. The
// shapes are the paper's three sweep families pinned at 16 units — the
// knee of the fig9–13 curves, where the policies actually diverge.
type tournamentPattern struct {
	name    string
	factory func(maxItems int) workload.Pattern
}

func tournamentPatterns() []tournamentPattern {
	return []tournamentPattern{
		{"triangular", TriangularFactory},
		{"increasing", IncreasingFactory},
		{"decreasing", DecreasingFactory},
	}
}

// tournamentSeed derives the deterministic seed for one (pattern,
// intensity, policy, replication) cell, FNV-hashed over the full cell
// identity so no two cells alias.
func tournamentSeed(pattern, intensity string, alg core.Algorithm, rep int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "tournament|%s|%s|%s|%d", pattern, intensity, alg, rep)
	return h.Sum64()
}

// tournamentPolicies resolves the policy axis: the Context's subset if
// one was given (-policies), otherwise every registered policy in
// registration order.
func tournamentPolicies(ctx Context) []core.Algorithm {
	if len(ctx.Policies) == 0 {
		return core.Algorithms()
	}
	algs := make([]core.Algorithm, len(ctx.Policies))
	for i, p := range ctx.Policies {
		algs[i] = core.Algorithm(p)
	}
	return algs
}

// runExtTournament sweeps every registered allocation policy across the
// chaos-intensity grid and three workload shapes, then ranks the
// policies on the paper's combined metric C (smaller is better). Two
// tables come out: the full grid, and a leaderboard aggregating each
// policy over every cell it ran.
func runExtTournament(ctx Context) (Output, error) {
	const maxUnits = 16
	// A tournament compares fresh runs of every policy; a sweep cache
	// warmed by an earlier experiment in the same process must not leak
	// point results across the policy axis (see the aliasing regression
	// test in policy_conformance).
	ResetSweepCache()

	intensities := chaosIntensities()
	patterns := tournamentPatterns()
	if ctx.Quick {
		intensities = intensities[:2]
		patterns = patterns[:1]
	}
	algs := tournamentPolicies(ctx)
	seeds := ctx.seeds()

	// Submit the whole grid before waiting on any run, so the shared
	// scheduler's worker pool sees the entire batch at once.
	type cell struct {
		pattern string
		in      chaosIntensity
		alg     core.Algorithm
		reps    []*runEntry
	}
	var cells []cell
	for _, pat := range patterns {
		for _, in := range intensities {
			for _, alg := range algs {
				c := cell{pattern: pat.name, in: in, alg: alg, reps: make([]*runEntry, seeds)}
				for r := 0; r < seeds; r++ {
					setup, err := BenchmarkSetup(pat.factory(maxUnits * WorkloadUnit))
					if err != nil {
						return Output{}, err
					}
					cfg := chaosConfig(in, tournamentSeed(pat.name, in.name, alg, r))
					c.reps[r] = sched.submit(cfg, alg, []core.TaskSetup{setup})
				}
				cells = append(cells, c)
			}
		}
	}

	ci := seeds > 1
	grid := &Table{
		Title: fmt.Sprintf("ext-tournament — policy grid (%d policies × %d intensities × %d patterns, %d units, hardened manager)",
			len(algs), len(intensities), len(patterns), maxUnits),
		Notes: []string{
			"every registered policy runs the same chaos grid as ext-chaos; C = MD% + CPU% + Net% + replica-use% (smaller is better)",
			"shed = work items dropped by imprecise-shed's optional parts; stretched = period launches skipped by period-stretch",
		},
	}
	if ci {
		grid.Columns = []string{"pattern", "intensity", "policy",
			"MD%", "±95", "shed", "±95", "stretched", "±95", "C", "±95"}
		grid.Notes = append(grid.Notes, ciNote(seeds))
	} else {
		grid.Columns = []string{"pattern", "intensity", "policy", "MD%", "shed", "stretched", "C"}
	}

	// agg accumulates every replication of every cell a policy ran, for
	// the leaderboard; wins counts cells where the policy's mean C beat
	// the whole field.
	type agg struct {
		md, shed, str, cm []float64
		wins              int
	}
	aggs := make(map[core.Algorithm]*agg, len(algs))
	for _, alg := range algs {
		aggs[alg] = &agg{}
	}

	// cellMean remembers each cell's mean C keyed by grid coordinate so
	// wins can be decided after all cells resolve.
	type coord struct{ pattern, intensity string }
	cellMean := make(map[coord]map[core.Algorithm]float64)

	for _, c := range cells {
		md := make([]float64, seeds)
		sh := make([]float64, seeds)
		st := make([]float64, seeds)
		cm := make([]float64, seeds)
		for r, e := range c.reps {
			out, err := e.wait()
			if err != nil {
				return Output{}, fmt.Errorf("experiment: tournament %s/%s/%s rep %d: %w",
					c.pattern, c.in.name, c.alg, r, err)
			}
			m := out.Metrics
			md[r] = m.MissedPct()
			sh[r] = float64(m.ShedItems)
			st[r] = float64(m.StretchedPeriods)
			cm[r] = m.Combined()
		}
		a := aggs[c.alg]
		a.md = append(a.md, md...)
		a.shed = append(a.shed, sh...)
		a.str = append(a.str, st...)
		a.cm = append(a.cm, cm...)
		k := coord{c.pattern, c.in.name}
		if cellMean[k] == nil {
			cellMean[k] = make(map[core.Algorithm]float64)
		}
		cmM, _ := stats.MeanCI95(cm)
		cellMean[k][c.alg] = cmM
		if ci {
			mdM, mdC := stats.MeanCI95(md)
			shM, shC := stats.MeanCI95(sh)
			stM, stC := stats.MeanCI95(st)
			_, cmC := stats.MeanCI95(cm)
			grid.AddRow(c.pattern, c.in.name, string(c.alg), mdM, mdC, shM, shC, stM, stC, cmM, cmC)
		} else {
			grid.AddRow(c.pattern, c.in.name, string(c.alg), md[0], sh[0], st[0], cm[0])
		}
	}

	for _, perAlg := range cellMean {
		best := core.Algorithm("")
		bestC := 0.0
		for _, alg := range algs { // registration order: deterministic tie-break
			if c, ok := perAlg[alg]; ok && (best == "" || c < bestC) {
				best, bestC = alg, c
			}
		}
		if best != "" {
			aggs[best].wins++
		}
	}

	board := &Table{
		Title: "ext-tournament — leaderboard (mean over every grid cell and replication; rank 1 = lowest C)",
		Notes: []string{
			"wins = grid cells where the policy's mean C beat every other policy (ties go to registration order)",
		},
	}
	if ci {
		board.Columns = []string{"rank", "policy", "paper",
			"C", "±95", "MD%", "±95", "shed", "stretched", "wins"}
	} else {
		board.Columns = []string{"rank", "policy", "paper", "C", "MD%", "shed", "stretched", "wins"}
	}
	type row struct {
		alg        core.Algorithm
		paper      string
		cM, cC     float64
		mdM, mdC   float64
		shed, strt float64
		wins       int
	}
	rows := make([]row, 0, len(algs))
	for _, alg := range algs {
		a := aggs[alg]
		pol, _ := policy.Lookup(string(alg))
		r := row{alg: alg, paper: pol.Paper(), wins: a.wins}
		r.cM, r.cC = stats.MeanCI95(a.cm)
		r.mdM, r.mdC = stats.MeanCI95(a.md)
		r.shed, _ = stats.MeanCI95(a.shed)
		r.strt, _ = stats.MeanCI95(a.str)
		rows = append(rows, r)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i].cM < rows[j].cM })
	for i, r := range rows {
		if ci {
			board.AddRow(i+1, string(r.alg), r.paper, r.cM, r.cC, r.mdM, r.mdC, r.shed, r.strt, r.wins)
		} else {
			board.AddRow(i+1, string(r.alg), r.paper, r.cM, r.mdM, r.shed, r.strt, r.wins)
		}
	}
	return Output{ID: "ext-tournament", Tables: []*Table{grid, board}}, nil
}
