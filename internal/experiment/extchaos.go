package experiment

import (
	"fmt"
	"hash/fnv"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
)

func init() {
	register(Experiment{ID: "ext-chaos", Paper: "§1 motivation (survivability in an asynchronous system)",
		Title: "Fault-intensity sweep: stochastic crashes × lossy network, hardened manager",
		Run:   runExtChaos})
}

// chaosIntensity is one cell of the MTBF × drop-rate grid.
type chaosIntensity struct {
	name  string
	chaos chaos.Config
	drop  float64
	// jitterAmp/spike model the latency tail that comes with a congested,
	// faulty LAN at the higher intensities.
	jitterAmp  float64
	spikeProb  float64
	spikeDelay sim.Time
}

// chaosIntensities is the fault grid: per-node MTBF shrinks while the
// drop rate grows, so "low → high" degrades both halves of the
// environment together.
func chaosIntensities() []chaosIntensity {
	return []chaosIntensity{
		{name: "low",
			chaos: chaos.Config{NodeMTBF: 120 * sim.Second, NodeMTTR: 8 * sim.Second, MaxDown: 2},
			drop:  0.005},
		{name: "medium",
			chaos:     chaos.Config{NodeMTBF: 60 * sim.Second, NodeMTTR: 8 * sim.Second, MaxDown: 2},
			drop:      0.02,
			jitterAmp: 0.5},
		{name: "high",
			chaos: chaos.Config{NodeMTBF: 30 * sim.Second, NodeMTTR: 6 * sim.Second, MaxDown: 3,
				PartitionMTBF: 45 * sim.Second, PartitionMTTR: 400 * sim.Millisecond},
			drop:      0.05,
			jitterAmp: 1.0,
			spikeProb: 0.01, spikeDelay: 2 * sim.Millisecond},
	}
}

// chaosSeed derives the deterministic seed for one (intensity, algorithm,
// replication) cell, FNV-hashed over the full cell identity so cells
// never alias (same construction as the sweep's non-headline seeds).
func chaosSeed(name string, alg core.Algorithm, rep int) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "chaos|%s|%s|%d", name, alg, rep)
	return h.Sum64()
}

// chaosConfig builds the run configuration for one intensity cell: the
// stochastic fault processes, the lossy segment, and the hardened
// adaptation manager.
func chaosConfig(in chaosIntensity, seed uint64) core.Config {
	cfg := core.DefaultConfig()
	cfg.Seed = seed
	cfg.Chaos = in.chaos
	cfg.Network.DropProb = in.drop
	cfg.Network.JitterAmp = in.jitterAmp
	cfg.Network.SpikeProb = in.spikeProb
	cfg.Network.SpikeDelay = in.spikeDelay
	cfg.Degradation = core.HardenedDegradation()
	return cfg
}

func runExtChaos(ctx Context) (Output, error) {
	const maxUnits = 16
	intensities := chaosIntensities()
	if ctx.Quick {
		intensities = intensities[:2]
	}
	seeds := ctx.seeds()
	algs := []core.Algorithm{core.Predictive, core.NonPredictive}

	// Submit every (intensity, algorithm, replication) run before waiting
	// on any, so the shared scheduler's worker pool sees the whole batch.
	type cell struct {
		in   chaosIntensity
		alg  core.Algorithm
		reps []*runEntry
	}
	var cells []cell
	for _, in := range intensities {
		for _, alg := range algs {
			c := cell{in: in, alg: alg, reps: make([]*runEntry, seeds)}
			for r := 0; r < seeds; r++ {
				setup, err := BenchmarkSetup(TriangularFactory(maxUnits * WorkloadUnit))
				if err != nil {
					return Output{}, err
				}
				c.reps[r] = sched.submit(chaosConfig(in, chaosSeed(in.name, alg, r)), alg,
					[]core.TaskSetup{setup})
			}
			cells = append(cells, c)
		}
	}

	ci := seeds > 1
	t := &Table{
		Title: fmt.Sprintf("ext-chaos — fault-intensity sweep (triangular %d units, hardened manager)", maxUnits),
		Notes: []string{
			"intensity couples per-node crash MTBF with message drop rate (low: 120s/0.5%, " +
				"medium: 60s/2% + jitter, high: 30s/5% + jitter + spikes + partitions)",
			"hardening: 100ms delivery timeout ×3 retries, 3s staleness window, " +
				"2-period shutdown cooldown, 0.5 fallback utilization",
			"recovery ms = mean crash → first met deadline",
		},
	}
	if ci {
		t.Columns = []string{"intensity", "algorithm",
			"MD%", "±95", "failovers", "±95", "drops", "±95",
			"retransmits", "±95", "recovery ms", "±95", "C", "±95"}
		t.Notes = append(t.Notes, ciNote(seeds))
	} else {
		t.Columns = []string{"intensity", "algorithm",
			"MD%", "failovers", "drops", "retransmits", "recovery ms", "C"}
	}
	for _, c := range cells {
		md := make([]float64, seeds)
		fo := make([]float64, seeds)
		dr := make([]float64, seeds)
		rx := make([]float64, seeds)
		rec := make([]float64, seeds)
		cm := make([]float64, seeds)
		for r, e := range c.reps {
			out, err := e.wait()
			if err != nil {
				return Output{}, fmt.Errorf("experiment: chaos %s %s rep %d: %w", c.in.name, c.alg, r, err)
			}
			m := out.Metrics
			md[r] = m.MissedPct()
			fo[r] = float64(out.Failovers)
			dr[r] = float64(m.DroppedMessages)
			rx[r] = float64(m.Retransmissions)
			rec[r] = m.MeanRecoveryMS
			cm[r] = m.Combined()
		}
		if ci {
			mdM, mdC := stats.MeanCI95(md)
			foM, foC := stats.MeanCI95(fo)
			drM, drC := stats.MeanCI95(dr)
			rxM, rxC := stats.MeanCI95(rx)
			recM, recC := stats.MeanCI95(rec)
			cmM, cmC := stats.MeanCI95(cm)
			t.AddRow(c.in.name, string(c.alg), mdM, mdC, foM, foC, drM, drC,
				rxM, rxC, recM, recC, cmM, cmC)
		} else {
			t.AddRow(c.in.name, string(c.alg), md[0], fo[0], dr[0], rx[0], rec[0], cm[0])
		}
	}
	return Output{ID: "ext-chaos", Tables: []*Table{t}}, nil
}
