package experiment

import (
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
)

// TestCachedSweepSingleFlight drives many concurrent same-key callers
// through CachedSweep and asserts the sweep executed exactly once, with
// every caller receiving the identical result slice. Run under -race
// (the Makefile's race target covers this package) it also proves the
// cache's locking is sound.
func TestCachedSweepSingleFlight(t *testing.T) {
	var runs atomic.Int32
	onSweepStart = func(string) { runs.Add(1) }
	defer func() { onSweepStart = nil }()

	const (
		key     = "singleflight-test"
		callers = 8
	)
	results := make([][]PointResult, callers)
	errs := make([]error, callers)
	var start, done sync.WaitGroup
	start.Add(1)
	for i := 0; i < callers; i++ {
		i := i
		done.Add(1)
		go func() {
			defer done.Done()
			start.Wait() // maximize contention on the first access
			results[i], errs[i] = CachedSweep(key, []int{0, 4}, TriangularFactory, 2)
		}()
	}
	start.Done()
	done.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := runs.Load(); got != 1 {
		t.Fatalf("sweep executed %d times for one key, want 1", got)
	}
	for i := 1; i < callers; i++ {
		if &results[i][0] != &results[0][0] {
			t.Fatalf("caller %d received a different result slice", i)
		}
		if !reflect.DeepEqual(results[i], results[0]) {
			t.Fatalf("caller %d received different results", i)
		}
	}
}
