package experiment

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// TestTournamentCellsNeverAlias is the regression test for the sweep
// cache leaking across the tournament's policy axis: two different
// policies given byte-identical configs and setups must fingerprint
// differently and cost two real simulations — if the scheduler served
// the second policy from the first's cache entry, every tournament
// column would silently show one algorithm's numbers.
func TestTournamentCellsNeverAlias(t *testing.T) {
	setupA, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	setupB, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 99

	for _, algs := range [][2]core.Algorithm{
		{core.Predictive, core.NonPredictive},
		{core.PeriodStretch, core.ImpreciseShed},
		{core.Predictive, core.PeriodStretch},
	} {
		fpA := Fingerprint(cfg, algs[0], []core.TaskSetup{setupA})
		fpB := Fingerprint(cfg, algs[1], []core.TaskSetup{setupB})
		if fpA == fpB {
			t.Errorf("%s and %s alias to fingerprint %s under an identical config", algs[0], algs[1], fpA)
		}
	}

	// And through the live scheduler: the pair must simulate twice, not
	// dedupe into one cache entry. The workload is pushed into overload
	// so the two controllers actually diverge — at a light load both
	// reduce to the predictive baseline and identical metrics would be
	// correct, not a cache bug.
	heavyA, err := BenchmarkSetup(TriangularFactory(16 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	heavyB, err := BenchmarkSetup(TriangularFactory(16 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	ResetSweepCache()
	d := statsDelta(func() {
		a := sched.submit(cfg, core.PeriodStretch, []core.TaskSetup{heavyA})
		b := sched.submit(cfg, core.ImpreciseShed, []core.TaskSetup{heavyB})
		outA, err := a.wait()
		if err != nil {
			t.Fatal(err)
		}
		outB, err := b.wait()
		if err != nil {
			t.Fatal(err)
		}
		if outA.Metrics == outB.Metrics {
			t.Error("period-stretch and imprecise-shed returned identical metrics — cache entry shared?")
		}
	})
	if d.Simulated != 2 {
		t.Errorf("two distinct policies simulated %d runs, want 2 (deduped %d, memory hits %d)",
			d.Simulated, d.Deduped, d.MemoryHits)
	}
}

// TestTournamentKnobsSplitCacheCells extends the aliasing guard to the
// policy knobs: the same policy with different stretch/shed settings
// must occupy distinct cache cells.
func TestTournamentKnobsSplitCacheCells(t *testing.T) {
	setup, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	base := core.DefaultConfig()
	tuned := base
	tuned.Policy.Stretch.MaxFactor = 3

	if Fingerprint(base, core.PeriodStretch, []core.TaskSetup{setup}) ==
		Fingerprint(tuned, core.PeriodStretch, []core.TaskSetup{setup}) {
		t.Error("stretch MaxFactor knob does not split the cache cell")
	}
}

// TestTournamentDeterministicOutput pins that two quick tournament runs
// render identically — the leaderboard ranking must be a pure function
// of the cell seeds, not of scheduler timing.
func TestTournamentDeterministicOutput(t *testing.T) {
	e, err := ByID("ext-tournament")
	if err != nil {
		t.Fatal(err)
	}
	render := func() string {
		out, err := e.Run(Context{Quick: true, Parallelism: 4, Seeds: 2})
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, table := range out.Tables {
			if err := table.Render(&b); err != nil {
				t.Fatal(err)
			}
		}
		return b.String()
	}
	if a, b := render(), render(); a != b {
		t.Error("tournament output differs across identical runs")
	}
}

// TestTournamentHonorsPolicySubset pins the -policies plumbing: a
// restricted Context must sweep only the named policies.
func TestTournamentHonorsPolicySubset(t *testing.T) {
	e, err := ByID("ext-tournament")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(Context{Quick: true, Parallelism: 4,
		Policies: []string{string(core.Predictive), string(core.PeriodStretch)}})
	if err != nil {
		t.Fatal(err)
	}
	grid, board := out.Tables[0], out.Tables[1]
	// Quick grid: 1 pattern × 2 intensities × 2 policies.
	if len(grid.Rows) != 4 {
		t.Errorf("subset grid has %d rows, want 4", len(grid.Rows))
	}
	if len(board.Rows) != 2 {
		t.Errorf("subset leaderboard has %d rows, want 2", len(board.Rows))
	}
	for _, row := range grid.Rows {
		if alg := row[2]; alg != string(core.Predictive) && alg != string(core.PeriodStretch) {
			t.Errorf("subset grid contains policy %q", alg)
		}
	}
}
