package experiment

import (
	"context"
	"testing"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/telemetry"
)

// TestEncodeRunRequestRoundTrip: an ordinary benchmark run is
// wire-expressible, and its encoded form materializes back to the same
// content-addressed cell.
func TestEncodeRunRequestRoundTrip(t *testing.T) {
	setup, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Seed = 880001
	setups := []core.TaskSetup{setup}

	req, ok := EncodeRunRequest(cfg, core.Predictive, setups)
	if !ok {
		t.Fatal("benchmark run should be wire-expressible")
	}
	mcfg, malg, msetups, err := MaterializeRun(req)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := runFingerprint(mcfg, malg, msetups), runFingerprint(cfg, core.Predictive, setups); got != want {
		t.Errorf("materialized fingerprint %s != original %s", got, want)
	}
}

// TestEncodeRunRequestRejectsInexpressible: runs the schema cannot carry
// must stay local.
func TestEncodeRunRequestRejectsInexpressible(t *testing.T) {
	setup, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig()

	homed := setup
	homed.Homes = []int{0}
	if _, ok := EncodeRunRequest(cfg, core.Predictive, []core.TaskSetup{homed}); ok {
		t.Error("explicit home placements should not be expressible")
	}

	telcfg := cfg
	telcfg.Telemetry = telemetry.New(telemetry.DefaultConfig())
	if _, ok := EncodeRunRequest(telcfg, core.Predictive, []core.TaskSetup{setup}); ok {
		t.Error("telemetry-carrying configs should not be expressible")
	}

	if _, ok := EncodeRunRequest(cfg, core.Predictive, []core.TaskSetup{setup, setup}); ok {
		t.Error("multi-task runs should not be expressible")
	}
}

// TestRemoteRunnerDelegation: with a remote runner installed, a
// wire-expressible run is delegated (visible in the Remote counter and
// the sentinel result) and an inexpressible run still simulates locally.
func TestRemoteRunnerDelegation(t *testing.T) {
	setup, err := BenchmarkSetup(TriangularFactory(4 * WorkloadUnit))
	if err != nil {
		t.Fatal(err)
	}
	sentinel := RunOutcome{EventsFired: 424242}
	var gotReq api.RunRequest
	SetRemoteRunner(func(ctx context.Context, req api.RunRequest) (RunOutcome, error) {
		gotReq = req
		return sentinel, nil
	})
	defer SetRemoteRunner(nil)

	cfg := core.DefaultConfig()
	cfg.Seed = 880002 // unique cell: must not collide with other tests' memoized runs
	d := statsDelta(func() {
		out, err := ScheduledRun(cfg, core.Predictive, []core.TaskSetup{setup})
		if err != nil {
			t.Fatal(err)
		}
		if out != sentinel {
			t.Errorf("delegated run returned %+v, want the remote sentinel", out)
		}
	})
	if d.Remote != 1 {
		t.Errorf("remote counter moved by %d, want 1", d.Remote)
	}
	if gotReq.Algorithm != string(core.Predictive) || gotReq.SchemaVersion != api.SchemaVersion {
		t.Errorf("remote runner saw request %+v", gotReq)
	}
	if d.Simulated != 0 {
		t.Errorf("delegated run also simulated locally (%d)", d.Simulated)
	}

	// An inexpressible run (explicit homes) bypasses the remote runner.
	homed := setup
	homed.Homes = []int{0, 1, 2, 3, 4}
	cfg.Seed = 880003
	d = statsDelta(func() {
		if _, err := ScheduledRun(cfg, core.Predictive, []core.TaskSetup{homed}); err != nil {
			t.Fatal(err)
		}
	})
	if d.Simulated != 1 {
		t.Errorf("inexpressible run simulated %d cells locally, want 1", d.Simulated)
	}
}
