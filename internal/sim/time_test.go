package sim

import (
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		t   Time
		sec float64
		ms  float64
	}{
		{Second, 1, 1000},
		{Millisecond, 0.001, 1},
		{990 * Millisecond, 0.99, 990},
		{0, 0, 0},
	}
	for _, c := range cases {
		if got := c.t.Seconds(); got != c.sec {
			t.Errorf("%v.Seconds() = %v, want %v", c.t, got, c.sec)
		}
		if got := c.t.Milliseconds(); got != c.ms {
			t.Errorf("%v.Milliseconds() = %v, want %v", c.t, got, c.ms)
		}
	}
}

func TestFromMillisRoundTrip(t *testing.T) {
	f := func(ms uint16) bool {
		return FromMillis(float64(ms)).Milliseconds() == float64(ms)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFromSeconds(t *testing.T) {
	if got := FromSeconds(1.5); got != 1500*Millisecond {
		t.Errorf("FromSeconds(1.5) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := map[Time]string{
		0:                  "0s",
		Second:             "1.000s",
		1500 * Millisecond: "1500.000ms", // < 10s and not a whole second → ms
		250 * Microsecond:  "250.000µs",
		42 * Nanosecond:    "42ns",
		12 * Second:        "12.000s",
	}
	for in, want := range cases {
		if got := in.String(); got != want {
			t.Errorf("(%d).String() = %q, want %q", int64(in), got, want)
		}
	}
}

func TestMinMax(t *testing.T) {
	if Min(Second, Millisecond) != Millisecond {
		t.Error("Min wrong")
	}
	if Max(Second, Millisecond) != Second {
		t.Error("Max wrong")
	}
}

func TestCeilDiv(t *testing.T) {
	cases := []struct {
		a, b Time
		want int64
	}{
		{0, Millisecond, 0},
		{1, Millisecond, 1},
		{Millisecond, Millisecond, 1},
		{Millisecond + 1, Millisecond, 2},
		{-5, Millisecond, 0},
	}
	for _, c := range cases {
		if got := CeilDiv(c.a, c.b); got != c.want {
			t.Errorf("CeilDiv(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCeilDivPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("CeilDiv with zero divisor did not panic")
		}
	}()
	CeilDiv(Second, 0)
}

func TestJitterBounds(t *testing.T) {
	r := NewRand(1, 1)
	for i := 0; i < 1000; i++ {
		j := Jitter(r, 0.3)
		if j < 0.7 || j > 1.3 {
			t.Fatalf("Jitter(0.3) = %v out of [0.7,1.3]", j)
		}
	}
	if Jitter(r, 0) != 1 {
		t.Error("Jitter(0) != 1")
	}
}

func TestJitterPanicsOnBadAmp(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Jitter(amp=1) did not panic")
		}
	}()
	Jitter(NewRand(1, 1), 1)
}

func TestJitterTimeNonNegative(t *testing.T) {
	r := NewRand(9, 9)
	for i := 0; i < 100; i++ {
		if JitterTime(r, Millisecond, 0.99) < 0 {
			t.Fatal("JitterTime returned negative duration")
		}
	}
}

func TestNewRandDeterministic(t *testing.T) {
	a, b := NewRand(5, 6), NewRand(5, 6)
	for i := 0; i < 10; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	c := NewRand(5, 7)
	same := true
	a = NewRand(5, 6)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different streams produced identical output")
	}
}
