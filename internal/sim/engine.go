package sim

import (
	"container/heap"
	"fmt"
)

// Timer is a handle to a scheduled event. It can be cancelled before it
// fires; cancellation is lazy (the event stays in the queue but is skipped).
type Timer struct {
	when      Time
	seq       uint64
	fn        func()
	cancelled bool
	fired     bool
}

// When returns the virtual time at which the timer is scheduled to fire.
func (t *Timer) When() Time { return t.when }

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer is a no-op.
func (t *Timer) Cancel() { t.cancelled = true }

// Cancelled reports whether Cancel was called before the timer fired.
func (t *Timer) Cancelled() bool { return t.cancelled }

// Fired reports whether the timer's callback has run.
func (t *Timer) Fired() bool { return t.fired }

type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].when != h[j].when {
		return h[i].when < h[j].when
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Timer)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; run one Engine per goroutine (experiment sweeps run many
// independent engines in parallel).
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	// Fired counts executed (non-cancelled) events, for diagnostics.
	fired uint64
}

// NewEngine returns an engine with virtual time zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending events, including cancelled ones that
// have not yet been skipped.
func (e *Engine) Len() int { return len(e.events) }

// EventsFired returns the number of events executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// Schedule arranges for fn to run at virtual time at. Scheduling in the
// past panics: it always indicates a model bug, and silently clamping
// would mask causality violations.
func (e *Engine) Schedule(at Time, fn func()) *Timer {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", at, e.now))
	}
	t := &Timer{when: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, t)
	return t
}

// After arranges for fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: After with negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Step executes the next pending event, advancing virtual time to it.
// It returns false when the queue is empty or the engine is stopped.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		if e.stopped {
			return false
		}
		t := heap.Pop(&e.events).(*Timer)
		if t.cancelled {
			continue
		}
		e.now = t.when
		t.fired = true
		e.fired++
		t.fn()
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ until, then sets the clock to
// exactly until. Events scheduled at until still fire.
func (e *Engine) RunUntil(until Time) {
	for !e.stopped {
		t := e.peek()
		if t == nil || t.when > until {
			break
		}
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// peek returns the next non-cancelled event without executing it,
// discarding cancelled events from the head of the queue.
func (e *Engine) peek() *Timer {
	for len(e.events) > 0 {
		if !e.events[0].cancelled {
			return e.events[0]
		}
		heap.Pop(&e.events)
	}
	return nil
}

// NextEventTime returns the time of the next pending event and true, or
// zero and false when the queue is empty.
func (e *Engine) NextEventTime() (Time, bool) {
	t := e.peek()
	if t == nil {
		return 0, false
	}
	return t.when, true
}

// Stop halts Run/RunUntil after the current event completes. The engine
// can be resumed with Resume.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a previous Stop.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether Stop has been called without a matching Resume.
func (e *Engine) Stopped() bool { return e.stopped }
