package sim

import "fmt"

// timerNode is the engine-owned state of one scheduled event. Nodes are
// allocated in slabs and recycled through a free list once their event
// fires, so the steady-state Schedule path allocates nothing. Cancelled
// nodes are abandoned to the garbage collector instead of recycled: that
// keeps every outstanding Timer handle's view exact (see Timer).
type timerNode struct {
	when Time
	seq  uint64
	fn   func()
	eng  *Engine
	// gen increments each time the node is recycled; Timer handles carry
	// the generation they were issued with, so handles to past lives of a
	// node become inert instead of acting on the wrong event.
	gen uint64
	// idx is the node's position in the event heap, -1 while off-heap.
	idx       int32
	cancelled bool
	fired     bool
	nextFree  *timerNode
}

// Timer is a cheap value handle to a scheduled event; the zero Timer is
// inert. Handles stay valid forever: once the event fires, the engine may
// recycle the underlying node for a later Schedule, and this handle then
// reports Fired() = true and ignores Cancel. A cancelled event's node is
// never recycled, so Cancelled() stays exact.
type Timer struct {
	n    *timerNode
	gen  uint64
	when Time
}

// When returns the virtual time at which the timer was scheduled to fire.
func (t Timer) When() Time { return t.when }

// live reports whether the handle still refers to the node's current life.
func (t Timer) live() bool { return t.n != nil && t.n.gen == t.gen }

// Cancel prevents the timer's callback from running. Cancelling an
// already-fired or already-cancelled timer (or the zero Timer) is a no-op.
// The event is removed from the queue immediately.
func (t Timer) Cancel() {
	if !t.live() || t.n.fired || t.n.cancelled {
		return
	}
	n := t.n
	n.cancelled = true
	if n.idx >= 0 {
		n.eng.heapRemove(int(n.idx))
	}
	// Abandon the node to the GC (never recycled): outstanding handles —
	// including this one's copies — keep observing the cancellation.
	n.fn = nil
}

// Cancelled reports whether Cancel was called before the timer fired.
func (t Timer) Cancelled() bool { return t.live() && t.n.cancelled }

// Fired reports whether the timer's callback has run. A recycled node
// implies the event fired: only fired nodes re-enter the pool.
func (t Timer) Fired() bool {
	if t.n == nil {
		return false
	}
	return t.n.gen != t.gen || t.n.fired
}

// timerSlabSize is the node allocation batch: one slab allocation serves
// this many Schedules before the free list takes over.
const timerSlabSize = 64

// Engine is a single-threaded discrete-event simulator. It is not safe for
// concurrent use; run one Engine per goroutine (experiment sweeps run many
// independent engines in parallel).
//
// The event queue is a monomorphic 4-ary indexed heap: no interface
// boxing, shallower sift paths than a binary heap, and eager removal of
// cancelled events (no tombstones). Pop order is the total order
// (when, seq), so the heap's shape is unobservable in results.
type Engine struct {
	now     Time
	events  []*timerNode
	seq     uint64
	stopped bool
	// fired counts executed (non-cancelled) events, for diagnostics.
	fired uint64

	free      *timerNode
	slab      []timerNode
	slabAlloc uint64 // slabs allocated, for diagnostics
}

// NewEngine returns an engine with virtual time zero and an empty queue.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Len returns the number of pending events. Cancelled events leave the
// queue immediately and are not counted.
func (e *Engine) Len() int { return len(e.events) }

// EventsFired returns the number of events executed so far.
func (e *Engine) EventsFired() uint64 { return e.fired }

// TimerSlabs returns the number of timer-node slabs allocated so far —
// the engine's total allocation footprint for timers is
// TimerSlabs()·timerSlabSize nodes, however many events have been
// scheduled.
func (e *Engine) TimerSlabs() uint64 { return e.slabAlloc }

// newNode takes a node from the free list, or carves one from the slab.
func (e *Engine) newNode() *timerNode {
	if n := e.free; n != nil {
		e.free = n.nextFree
		n.nextFree = nil
		return n
	}
	if len(e.slab) == 0 {
		e.slab = make([]timerNode, timerSlabSize)
		e.slabAlloc++
	}
	n := &e.slab[0]
	e.slab = e.slab[1:]
	n.eng = e
	return n
}

// recycle returns a fired node to the free list for the next Schedule.
func (e *Engine) recycle(n *timerNode) {
	n.gen++
	n.fn = nil
	n.cancelled = false
	n.fired = false
	n.nextFree = e.free
	e.free = n
}

// Schedule arranges for fn to run at virtual time at. Scheduling in the
// past panics: it always indicates a model bug, and silently clamping
// would mask causality violations.
func (e *Engine) Schedule(at Time, fn func()) Timer {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	if at < e.now {
		panic(fmt.Sprintf("sim: Schedule at %v before now %v", at, e.now))
	}
	n := e.newNode()
	n.when = at
	n.seq = e.seq
	n.fn = fn
	e.seq++
	e.heapPush(n)
	return Timer{n: n, gen: n.gen, when: at}
}

// After arranges for fn to run d nanoseconds from now. Negative d panics.
func (e *Engine) After(d Time, fn func()) Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: After with negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Step executes the next pending event, advancing virtual time to it.
// It returns false when the queue is empty or the engine is stopped.
func (e *Engine) Step() bool {
	if e.stopped || len(e.events) == 0 {
		return false
	}
	n := e.heapPopMin()
	e.now = n.when
	n.fired = true
	e.fired++
	fn := n.fn
	fn()
	e.recycle(n)
	return true
}

// Run executes events until the queue drains or Stop is called.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with time ≤ until, then sets the clock to
// exactly until. Events scheduled at until still fire.
func (e *Engine) RunUntil(until Time) {
	for !e.stopped && len(e.events) > 0 && e.events[0].when <= until {
		e.Step()
	}
	if e.now < until {
		e.now = until
	}
}

// NextEventTime returns the time of the next pending event and true, or
// zero and false when the queue is empty.
func (e *Engine) NextEventTime() (Time, bool) {
	if len(e.events) == 0 {
		return 0, false
	}
	return e.events[0].when, true
}

// Stop halts Run/RunUntil after the current event completes. The engine
// can be resumed with Resume.
func (e *Engine) Stop() { e.stopped = true }

// Resume clears a previous Stop.
func (e *Engine) Resume() { e.stopped = false }

// Stopped reports whether Stop has been called without a matching Resume.
func (e *Engine) Stopped() bool { return e.stopped }

// --- 4-ary indexed min-heap on (when, seq) ------------------------------

// less is the total event order: time first, schedule order second.
func eventLess(a, b *timerNode) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

func (e *Engine) heapPush(n *timerNode) {
	e.events = append(e.events, n)
	n.idx = int32(len(e.events) - 1)
	e.siftUp(len(e.events) - 1)
}

func (e *Engine) heapPopMin() *timerNode {
	n := e.events[0]
	e.heapRemove(0)
	return n
}

// heapRemove deletes the node at position i, restoring heap order.
func (e *Engine) heapRemove(i int) {
	last := len(e.events) - 1
	n := e.events[i]
	if i != last {
		moved := e.events[last]
		e.events[i] = moved
		moved.idx = int32(i)
	}
	e.events[last] = nil
	e.events = e.events[:last]
	n.idx = -1
	if i < last {
		// The relocated node may need to move either direction.
		e.siftDown(i)
		e.siftUp(i)
	}
}

func (e *Engine) siftUp(i int) {
	n := e.events[i]
	for i > 0 {
		parent := (i - 1) / 4
		p := e.events[parent]
		if !eventLess(n, p) {
			break
		}
		e.events[i] = p
		p.idx = int32(i)
		i = parent
	}
	e.events[i] = n
	n.idx = int32(i)
}

func (e *Engine) siftDown(i int) {
	n := e.events[i]
	size := len(e.events)
	for {
		first := 4*i + 1
		if first >= size {
			break
		}
		min := first
		end := first + 4
		if end > size {
			end = size
		}
		for c := first + 1; c < end; c++ {
			if eventLess(e.events[c], e.events[min]) {
				min = c
			}
		}
		if !eventLess(e.events[min], n) {
			break
		}
		moved := e.events[min]
		e.events[i] = moved
		moved.idx = int32(i)
		i = min
	}
	e.events[i] = n
	n.idx = int32(i)
}
