package sim

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineStartsAtZero(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("Now() = %v, want 0", e.Now())
	}
	if e.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", e.Len())
	}
}

func TestScheduleAndRunOrdering(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{5 * Millisecond, Millisecond, 3 * Millisecond} {
		at := at
		e.Schedule(at, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{Millisecond, 3 * Millisecond, 5 * Millisecond}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestSameTimeFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Second, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order %v, want insertion order", order)
		}
	}
}

func TestAfter(t *testing.T) {
	e := NewEngine()
	var fired Time = -1
	e.Schedule(2*Second, func() {
		e.After(500*Millisecond, func() { fired = e.Now() })
	})
	e.Run()
	if fired != 2*Second+500*Millisecond {
		t.Fatalf("After fired at %v, want 2.5s", fired)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.Schedule(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.Schedule(Millisecond, func() {})
	})
	e.Run()
}

func TestScheduleNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("nil callback did not panic")
		}
	}()
	NewEngine().Schedule(0, nil)
}

func TestAfterNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative After did not panic")
		}
	}()
	NewEngine().After(-1, func() {})
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	timer := e.Schedule(Second, func() { fired = true })
	timer.Cancel()
	e.Run()
	if fired {
		t.Error("cancelled timer fired")
	}
	if !timer.Cancelled() {
		t.Error("Cancelled() = false after Cancel")
	}
	if timer.Fired() {
		t.Error("Fired() = true for cancelled timer")
	}
}

func TestCancelDuringRun(t *testing.T) {
	e := NewEngine()
	var later Timer
	fired := false
	e.Schedule(Millisecond, func() { later.Cancel() })
	later = e.Schedule(2*Millisecond, func() { fired = true })
	e.Run()
	if fired {
		t.Error("timer cancelled mid-run still fired")
	}
}

func TestRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{Second, 2 * Second, 3 * Second} {
		at := at
		e.Schedule(at, func() { fired = append(fired, e.Now()) })
	}
	e.RunUntil(2 * Second)
	if len(fired) != 2 {
		t.Fatalf("fired %d events by 2s, want 2 (inclusive boundary)", len(fired))
	}
	if e.Now() != 2*Second {
		t.Fatalf("Now() = %v after RunUntil(2s)", e.Now())
	}
	e.RunUntil(10 * Second)
	if len(fired) != 3 {
		t.Fatalf("fired %d events total, want 3", len(fired))
	}
	if e.Now() != 10*Second {
		t.Fatalf("Now() = %v, want clock advanced to 10s even with empty queue", e.Now())
	}
}

func TestRunUntilSkipsCancelledHead(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(Second, func() {})
	tm.Cancel()
	fired := false
	e.Schedule(2*Second, func() { fired = true })
	e.RunUntil(3 * Second)
	if !fired {
		t.Error("event after cancelled head did not fire")
	}
}

func TestStopAndResume(t *testing.T) {
	e := NewEngine()
	count := 0
	e.Schedule(Second, func() { count++; e.Stop() })
	e.Schedule(2*Second, func() { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("count = %d after Stop, want 1", count)
	}
	if !e.Stopped() {
		t.Error("Stopped() = false")
	}
	e.Resume()
	e.Run()
	if count != 2 {
		t.Fatalf("count = %d after Resume+Run, want 2", count)
	}
}

func TestNextEventTime(t *testing.T) {
	e := NewEngine()
	if _, ok := e.NextEventTime(); ok {
		t.Error("NextEventTime reported an event on empty queue")
	}
	e.Schedule(7*Millisecond, func() {})
	if at, ok := e.NextEventTime(); !ok || at != 7*Millisecond {
		t.Errorf("NextEventTime = %v,%v want 7ms,true", at, ok)
	}
}

func TestEventsFired(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.Schedule(Time(i)*Millisecond, func() {})
	}
	tm := e.Schedule(Second, func() {})
	tm.Cancel()
	e.Run()
	if e.EventsFired() != 5 {
		t.Fatalf("EventsFired = %d, want 5 (cancelled events don't count)", e.EventsFired())
	}
}

// Property: for any set of scheduled times, events fire in nondecreasing
// time order and the clock never goes backwards.
func TestPropertyMonotonicFiring(t *testing.T) {
	f := func(raw []uint32) bool {
		e := NewEngine()
		var fired []Time
		for _, r := range raw {
			at := Time(r % 1_000_000)
			e.Schedule(at, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: interleaving Schedule calls from within callbacks preserves
// global time ordering.
func TestPropertyNestedScheduling(t *testing.T) {
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 1))
		e := NewEngine()
		var fired []Time
		var spawn func(depth int)
		spawn = func(depth int) {
			fired = append(fired, e.Now())
			if depth == 0 {
				return
			}
			n := int(r.Uint64() % 3)
			for i := 0; i < n; i++ {
				e.After(Time(r.Uint64()%1000)*Microsecond, func() { spawn(depth - 1) })
			}
		}
		for i := 0; i < 5; i++ {
			e.Schedule(Time(r.Uint64()%10_000)*Microsecond, func() { spawn(3) })
		}
		e.Run()
		return sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] })
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZeroTimerInert(t *testing.T) {
	var tm Timer
	tm.Cancel() // must not panic
	if tm.Cancelled() {
		t.Error("zero Timer reports Cancelled")
	}
	if tm.Fired() {
		t.Error("zero Timer reports Fired")
	}
	if tm.When() != 0 {
		t.Errorf("zero Timer When = %v, want 0", tm.When())
	}
}

func TestCancelAfterFireIsNoop(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(Millisecond, func() {})
	e.Run()
	if !tm.Fired() {
		t.Fatal("Fired() = false after Run")
	}
	tm.Cancel() // must not corrupt the (possibly recycled) node
	if tm.Cancelled() {
		t.Error("Cancelled() = true after post-fire Cancel")
	}
	// The node recycled by the fire above must be schedulable again and
	// unaffected by the stale handle.
	fired := false
	e.Schedule(2*Millisecond, func() { fired = true })
	tm.Cancel()
	e.Run()
	if !fired {
		t.Error("stale handle's Cancel affected a recycled node's new event")
	}
}

func TestStaleHandleSeesRecycledNodeAsFired(t *testing.T) {
	e := NewEngine()
	tm := e.Schedule(Millisecond, func() {})
	e.Run()
	// Recycle the node into a new pending event.
	tm2 := e.Schedule(Second, func() {})
	if !tm.Fired() {
		t.Error("stale handle Fired() = false after its node was recycled")
	}
	if tm2.Fired() {
		t.Error("fresh handle Fired() = true before firing")
	}
	e.Run()
	if !tm2.Fired() {
		t.Error("fresh handle Fired() = false after firing")
	}
}

func TestTimerPoolReusesNodes(t *testing.T) {
	e := NewEngine()
	// Sequential schedule/fire cycles must stay within one slab: each fired
	// node returns to the free list before the next Schedule.
	for i := 0; i < 10*timerSlabSize; i++ {
		e.After(Millisecond, func() {})
		e.Run()
	}
	if got := e.TimerSlabs(); got != 1 {
		t.Fatalf("TimerSlabs = %d after sequential reuse, want 1", got)
	}
}

func TestCancelledNodesNotRecycled(t *testing.T) {
	e := NewEngine()
	cancelled := make([]Timer, 0, 8)
	for i := 0; i < 8; i++ {
		tm := e.Schedule(Second, func() {})
		tm.Cancel()
		cancelled = append(cancelled, tm)
	}
	// New schedules must not resurrect cancelled nodes.
	for i := 0; i < 8; i++ {
		e.Schedule(2*Second, func() {})
	}
	e.Run()
	for i, tm := range cancelled {
		if !tm.Cancelled() {
			t.Errorf("cancelled handle %d lost its Cancelled status", i)
		}
		if tm.Fired() {
			t.Errorf("cancelled handle %d reports Fired", i)
		}
	}
}

func TestHeapRemoveInterior(t *testing.T) {
	// Cancel events from the middle of a large pending set and verify the
	// survivors still fire in exact (when, seq) order.
	e := NewEngine()
	r := NewRand(3, 9)
	type ev struct {
		at  Time
		seq int
	}
	var want []ev
	timers := make([]Timer, 0, 300)
	for i := 0; i < 300; i++ {
		at := Time(r.Uint64()%50) * Millisecond
		tm := e.Schedule(at, func() {})
		timers = append(timers, tm)
		want = append(want, ev{at, i})
	}
	// Cancel every third timer.
	alive := want[:0]
	for i, tm := range timers {
		if i%3 == 1 {
			tm.Cancel()
		} else {
			alive = append(alive, want[i])
		}
	}
	if e.Len() != len(alive) {
		t.Fatalf("Len = %d after interior cancels, want %d", e.Len(), len(alive))
	}
	sort.SliceStable(alive, func(i, j int) bool { return alive[i].at < alive[j].at })
	var got []Time
	for e.Step() {
		got = append(got, e.Now())
	}
	if len(got) != len(alive) {
		t.Fatalf("fired %d events, want %d", len(got), len(alive))
	}
	for i := range got {
		if got[i] != alive[i].at {
			t.Fatalf("event %d fired at %v, want %v", i, got[i], alive[i].at)
		}
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []int {
		e := NewEngine()
		r := NewRand(42, 7)
		var order []int
		for i := 0; i < 100; i++ {
			i := i
			e.Schedule(Time(r.Uint64()%1000)*Microsecond, func() { order = append(order, i) })
		}
		e.Run()
		return order
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}
