package sim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// LaneSet advances several independent Engines — lanes — under a
// conservative epoch-barrier protocol, so one simulated system can be
// sharded across goroutines without giving up determinism.
//
// The contract is the classic conservative-PDES one: lanes interact only
// through Post, and a posted event's delivery time must lie at least
// `lookahead` after the posting lane's current clock. The set then runs
// in epochs: pick the earliest pending event time T across lanes, derive
// a horizon H such that no cross-lane event generated inside [T, H) can
// be due before H, let every lane execute its events with time < H
// (independently, hence parallelizable), barrier, and inject the posted
// events in the deterministic total order (time, source lane, source
// sequence). Within an epoch lanes share nothing, so the serial driver
// (one worker, lanes in index order) and the parallel driver (a worker
// pool) produce byte-identical lane states — parallelism trades
// wall-clock only.
//
// Without further information H = T + lookahead, which is correct but
// forces a barrier every lookahead interval. When the embedding model
// only emits cross-lane traffic at known instants — here, period
// boundaries — SetCrossTimes declares that send grid and the horizon
// stretches to (first grid instant ≥ T) + lookahead: typically one
// barrier per simulated period instead of thousands.
type LaneSet struct {
	lanes     []*Engine
	lookahead Time

	grid    []Time
	gridIdx int

	// outbox[src] is written only by the goroutine running lane src
	// during an epoch and drained at the barrier; crossSeq[src] numbers
	// that lane's posts for the merge tiebreak.
	outbox   [][]crossEvent
	crossSeq []uint64

	merged []crossEvent // barrier scratch

	epochs  uint64
	crossed uint64
}

// crossEvent is one pending cross-lane delivery.
type crossEvent struct {
	at  Time
	src int
	dst int
	seq uint64
	fn  func()
}

// NewLaneSet returns n fresh Engines coupled by the given lookahead: the
// minimum delay between a lane's clock and any delivery it may Post.
func NewLaneSet(n int, lookahead Time) *LaneSet {
	if n < 1 {
		panic(fmt.Sprintf("sim: lane set needs ≥1 lane, got %d", n))
	}
	if lookahead <= 0 {
		panic(fmt.Sprintf("sim: non-positive lookahead %v", lookahead))
	}
	ls := &LaneSet{
		lanes:     make([]*Engine, n),
		lookahead: lookahead,
		outbox:    make([][]crossEvent, n),
		crossSeq:  make([]uint64, n),
	}
	for i := range ls.lanes {
		ls.lanes[i] = NewEngine()
	}
	return ls
}

// Lanes returns the lane count.
func (ls *LaneSet) Lanes() int { return len(ls.lanes) }

// Lane returns lane i's engine. Scheduling into it directly is fine
// before Run starts; during Run only the lane's own events (or Post)
// may touch it.
func (ls *LaneSet) Lane(i int) *Engine { return ls.lanes[i] }

// Lookahead returns the minimum cross-lane delivery delay.
func (ls *LaneSet) Lookahead() Time { return ls.lookahead }

// Epochs returns how many barrier rounds have completed.
func (ls *LaneSet) Epochs() uint64 { return ls.epochs }

// CrossEvents returns how many cross-lane deliveries have been merged.
func (ls *LaneSet) CrossEvents() uint64 { return ls.crossed }

// EventsFired sums executed events across lanes.
func (ls *LaneSet) EventsFired() uint64 {
	var n uint64
	for _, e := range ls.lanes {
		n += e.EventsFired()
	}
	return n
}

// SetCrossTimes declares the only instants at which lanes will Post —
// the send grid. Times must be sorted ascending. Posts from off-grid
// instants that would violate an epoch horizon are caught at the
// barrier and panic.
func (ls *LaneSet) SetCrossTimes(grid []Time) {
	for i := 1; i < len(grid); i++ {
		if grid[i] < grid[i-1] {
			panic(fmt.Sprintf("sim: cross-time grid not sorted at %d: %v after %v", i, grid[i], grid[i-1]))
		}
	}
	ls.grid = grid
	ls.gridIdx = 0
}

// Post schedules fn on lane dst at time at, from code running inside
// lane src's current event. The delivery must respect the lookahead:
// at ≥ src's clock + lookahead. Posts are buffered per source lane and
// injected at the next barrier in (at, src, seq) order, so the delivery
// order — and therefore dst's event sequence — is independent of how
// lanes were scheduled onto workers.
func (ls *LaneSet) Post(src, dst int, at Time, fn func()) {
	if src < 0 || src >= len(ls.lanes) || dst < 0 || dst >= len(ls.lanes) {
		panic(fmt.Sprintf("sim: cross-lane post %d→%d outside [0,%d)", src, dst, len(ls.lanes)))
	}
	if src == dst {
		panic(fmt.Sprintf("sim: lane %d posting to itself (use Schedule)", src))
	}
	if fn == nil {
		panic("sim: cross-lane post with nil callback")
	}
	if min := ls.lanes[src].Now() + ls.lookahead; at < min {
		panic(fmt.Sprintf("sim: cross-lane post at %v violates lookahead (≥ %v required)", at, min))
	}
	ls.outbox[src] = append(ls.outbox[src], crossEvent{
		at: at, src: src, dst: dst, seq: ls.crossSeq[src], fn: fn,
	})
	ls.crossSeq[src]++
}

// lanePollEvents is how many events a lane executes between poll calls —
// the same cadence the single-threaded facade uses for context checks.
const lanePollEvents = 4096

// maxTime is the drain horizon once no cross-lane send instant remains.
const maxTime = Time(1<<63 - 1)

// Run drives all lanes to quiescence. workers bounds the goroutines
// executing lanes concurrently; ≤1 runs every epoch on the calling
// goroutine in lane order. Lane states and all cross-lane deliveries
// are byte-identical for every worker count. poll, when non-nil, is
// called periodically from lane execution (possibly concurrently) and
// aborts the run by returning an error.
func (ls *LaneSet) Run(workers int, poll func() error) error {
	if workers > len(ls.lanes) {
		workers = len(ls.lanes)
	}
	for {
		t, ok := ls.nextEventTime()
		if !ok {
			return nil
		}
		h := ls.horizon(t)
		if err := ls.runEpoch(h, workers, poll); err != nil {
			return err
		}
		ls.inject(h)
		ls.epochs++
		// Short epochs may never hit the in-lane poll cadence; check once
		// per barrier too so cancellation latency is bounded by an epoch.
		if poll != nil {
			if err := poll(); err != nil {
				return err
			}
		}
	}
}

// nextEventTime returns the earliest pending event time across lanes.
func (ls *LaneSet) nextEventTime() (Time, bool) {
	var min Time
	found := false
	for _, e := range ls.lanes {
		if t, ok := e.NextEventTime(); ok && (!found || t < min) {
			min, found = t, true
		}
	}
	return min, found
}

// horizon returns the epoch end for an epoch starting at the earliest
// pending event time t: every cross-lane delivery generated before the
// horizon is due at or after it.
func (ls *LaneSet) horizon(t Time) Time {
	if ls.grid == nil {
		return t + ls.lookahead
	}
	for ls.gridIdx < len(ls.grid) && ls.grid[ls.gridIdx] < t {
		ls.gridIdx++
	}
	if ls.gridIdx == len(ls.grid) {
		// No send instant remains: nothing can cross lanes any more,
		// so every lane is free to drain in one final epoch.
		return maxTime
	}
	return ls.grid[ls.gridIdx] + ls.lookahead
}

// runEpoch executes every lane's events with time < h.
func (ls *LaneSet) runEpoch(h Time, workers int, poll func() error) error {
	if workers <= 1 {
		for _, e := range ls.lanes {
			if err := runLaneTo(e, h, poll); err != nil {
				return err
			}
		}
		return nil
	}
	errs := make([]error, len(ls.lanes))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(ls.lanes) {
					return
				}
				errs[i] = runLaneTo(ls.lanes[i], h, poll)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// runLaneTo executes one lane's events with time strictly before h.
func runLaneTo(e *Engine, h Time, poll func() error) error {
	n := 0
	for !e.stopped && len(e.events) > 0 && e.events[0].when < h {
		e.Step()
		if n++; poll != nil && n%lanePollEvents == 0 {
			if err := poll(); err != nil {
				return err
			}
		}
	}
	return nil
}

// inject drains the outboxes at a barrier, sorting the posted events
// into the deterministic total order (time, source lane, source
// sequence) and scheduling each into its destination lane. Injection
// order fixes the destination engines' internal sequence numbers, so
// same-timestamp deliveries tie-break identically on every run.
func (ls *LaneSet) inject(h Time) {
	ls.merged = ls.merged[:0]
	for src := range ls.outbox {
		ls.merged = append(ls.merged, ls.outbox[src]...)
		ls.outbox[src] = ls.outbox[src][:0]
	}
	if len(ls.merged) == 0 {
		return
	}
	sort.Slice(ls.merged, func(i, j int) bool {
		a, b := &ls.merged[i], &ls.merged[j]
		if a.at != b.at {
			return a.at < b.at
		}
		if a.src != b.src {
			return a.src < b.src
		}
		return a.seq < b.seq
	})
	for i := range ls.merged {
		ev := &ls.merged[i]
		if ev.at < h {
			panic(fmt.Sprintf("sim: cross-lane event %d→%d at %v breaches epoch horizon %v (posted off the declared grid?)",
				ev.src, ev.dst, ev.at, h))
		}
		ls.lanes[ev.dst].Schedule(ev.at, ev.fn)
		ev.fn = nil // release the closure before the scratch is reused
	}
	ls.crossed += uint64(len(ls.merged))
}
