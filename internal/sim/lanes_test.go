package sim

import (
	"context"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// TestLaneSetMergeOrderAdversarial floods one destination lane with
// same-timestamp cross-lane events from every other lane, posted in an
// order chosen to disagree with the merge order, and checks that
// delivery follows the deterministic total order (time, source lane,
// source sequence) — for the serial driver and, repeatedly, for the
// parallel one (where source lanes execute in nondeterministic wall
// order).
func TestLaneSetMergeOrderAdversarial(t *testing.T) {
	const lanes, dst = 5, 0
	build := func() (*LaneSet, *[]string) {
		ls := NewLaneSet(lanes, 10)
		ls.SetCrossTimes([]Time{0})
		got := &[]string{}
		var mu sync.Mutex
		for src := 1; src < lanes; src++ {
			src := src
			ls.Lane(src).Schedule(0, func() {
				// Post in descending sequence *value* order via the at
				// tie: everything lands at t=10, so only (src, seq)
				// separates them. Posting to two timestamps out of
				// order would panic (lookahead), so adversarialness
				// comes from same-timestamp pile-up across all lanes.
				for k := 0; k < 3; k++ {
					k := k
					ls.Post(src, dst, 10, func() {
						mu.Lock()
						*got = append(*got, fmt.Sprintf("src%d.seq%d", src, k))
						mu.Unlock()
					})
				}
			})
		}
		return ls, got
	}

	var want []string
	for src := 1; src < lanes; src++ {
		for k := 0; k < 3; k++ {
			want = append(want, fmt.Sprintf("src%d.seq%d", src, k))
		}
	}

	for _, workers := range []int{1, lanes} {
		for round := 0; round < 20; round++ {
			ls, got := build()
			if err := ls.Run(workers, nil); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*got, want) {
				t.Fatalf("workers=%d round=%d: merge order %v, want %v", workers, round, *got, want)
			}
			if round == 0 && workers == 1 && ls.CrossEvents() != uint64(len(want)) {
				t.Fatalf("cross events = %d, want %d", ls.CrossEvents(), len(want))
			}
		}
		if workers == lanes && testing.Short() {
			break
		}
	}
}

// laneTrace runs a small multi-lane model — per-lane event chains plus
// cross-lane posts at grid instants — and returns a per-lane execution
// trace. Identical traces across worker counts is the core guarantee.
func laneTrace(workers int) [][]string {
	const lanes = 4
	const lookahead = Time(7)
	ls := NewLaneSet(lanes, lookahead)
	grid := []Time{0, 100, 200, 300}
	ls.SetCrossTimes(grid)

	traces := make([][]string, lanes)
	for l := 0; l < lanes; l++ {
		l := l
		eng := ls.Lane(l)
		rng := NewRand(42, uint64(l))
		// A chain of local events with pseudo-random gaps; at each grid
		// instant, post a value derived from local state to the other
		// lanes.
		var state uint64
		var chain func()
		chain = func() {
			state = state*31 + uint64(eng.Now()) + rng.Uint64()%97
			traces[l] = append(traces[l], fmt.Sprintf("t=%d s=%d", eng.Now(), state))
			if eng.Now() < 400 {
				eng.After(Time(1+rng.Uint64()%40), chain)
			}
		}
		eng.Schedule(Time(l), chain)
		for _, g := range grid {
			g := g
			eng.Schedule(g, func() {
				v := state
				for dst := 0; dst < lanes; dst++ {
					if dst == l {
						continue
					}
					dst := dst
					ls.Post(l, dst, g+lookahead, func() {
						// Runs on lane dst: only dst-owned state is touched.
						traces[dst] = append(traces[dst], fmt.Sprintf("t=%d from%d v=%d", ls.Lane(dst).Now(), l, v))
					})
				}
			})
		}
	}
	if err := ls.Run(workers, nil); err != nil {
		panic(err)
	}
	return traces
}

// TestLaneSetSerialParallelIdentical cross-checks the serial and
// parallel drivers event for event.
func TestLaneSetSerialParallelIdentical(t *testing.T) {
	want := laneTrace(1)
	for _, workers := range []int{2, 4} {
		got := laneTrace(workers)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d traces diverge:\n got %v\nwant %v", workers, got, want)
		}
	}
}

func TestLaneSetGridFreeLookahead(t *testing.T) {
	// Without a grid the horizon is next-event + lookahead; posts at
	// exactly the lookahead bound must be legal and delivered.
	ls := NewLaneSet(2, 5)
	var got []Time
	ls.Lane(0).Schedule(3, func() {
		ls.Post(0, 1, 8, func() { got = append(got, ls.Lane(1).Now()) })
	})
	if err := ls.Run(1, nil); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != 8 {
		t.Fatalf("delivery times = %v, want [8]", got)
	}
}

func TestLaneSetPostValidation(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	ls := NewLaneSet(2, 10)
	mustPanic("lookahead violation", func() { ls.Post(0, 1, 5, func() {}) })
	mustPanic("self post", func() { ls.Post(0, 0, 50, func() {}) })
	mustPanic("bad lane", func() { ls.Post(0, 7, 50, func() {}) })
	mustPanic("nil fn", func() { ls.Post(0, 1, 50, nil) })
	mustPanic("unsorted grid", func() { ls.SetCrossTimes([]Time{5, 3}) })
	mustPanic("zero lanes", func() { NewLaneSet(0, 1) })
	mustPanic("zero lookahead", func() { NewLaneSet(2, 0) })
}

// TestLaneSetHorizonBreach: posting off the declared grid with a time
// inside a later epoch's span is a protocol violation the barrier must
// catch rather than silently mis-order.
func TestLaneSetHorizonBreach(t *testing.T) {
	ls := NewLaneSet(2, 10)
	ls.SetCrossTimes([]Time{100})
	// Lane 0 posts from t=0, which is not on the grid; the epoch horizon
	// is 110, so a delivery at 10 breaches it.
	ls.Lane(0).Schedule(0, func() { ls.Post(0, 1, 10, func() {}) })
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on horizon breach")
		}
	}()
	_ = ls.Run(1, nil)
}

func TestLaneSetPollCancels(t *testing.T) {
	ls := NewLaneSet(2, 10)
	for l := 0; l < 2; l++ {
		eng := ls.Lane(l)
		var tick func()
		tick = func() {
			if eng.Now() < 1_000_000 {
				eng.After(1, tick)
			}
		}
		eng.Schedule(0, tick)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := ls.Run(2, func() error { return ctx.Err() })
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestLaneSetDrainEpoch: once the last grid instant passes, the set
// must finish in one free-running epoch instead of barriering every
// lookahead interval.
func TestLaneSetDrainEpoch(t *testing.T) {
	ls := NewLaneSet(2, 1)
	ls.SetCrossTimes([]Time{10})
	for l := 0; l < 2; l++ {
		eng := ls.Lane(l)
		var tick func()
		tick = func() {
			if eng.Now() < 10_000 {
				eng.After(1, tick)
			}
		}
		eng.Schedule(11, tick) // strictly after the last send instant
	}
	if err := ls.Run(1, nil); err != nil {
		t.Fatal(err)
	}
	if ls.Epochs() != 1 {
		t.Fatalf("epochs = %d, want 1 (free drain after the grid)", ls.Epochs())
	}
}
