package sim

import "math/rand/v2"

// NewRand returns a deterministic PCG-backed generator for the given seed
// and stream. Experiment sweeps derive (seed, stream) from the experiment
// identifier and point index so every run is reproducible and independent.
func NewRand(seed, stream uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, stream))
}

// Jitter returns a multiplicative noise factor in [1-amp, 1+amp] drawn
// from r. Amp must be in [0, 1).
func Jitter(r *rand.Rand, amp float64) float64 {
	if amp == 0 {
		return 1
	}
	if amp < 0 || amp >= 1 {
		panic("sim: Jitter amplitude must be in [0,1)")
	}
	return 1 + amp*(2*r.Float64()-1)
}

// JitterTime applies Jitter to a duration, never returning a negative time.
func JitterTime(r *rand.Rand, d Time, amp float64) Time {
	j := Time(float64(d) * Jitter(r, amp))
	if j < 0 {
		return 0
	}
	return j
}
