package sim_test

import (
	"fmt"

	"repro/internal/sim"
)

// The engine executes callbacks in virtual-time order; scheduling from
// inside a callback composes naturally.
func ExampleEngine() {
	eng := sim.NewEngine()
	eng.Schedule(2*sim.Millisecond, func() {
		fmt.Println("second at", eng.Now())
	})
	eng.Schedule(sim.Millisecond, func() {
		fmt.Println("first at", eng.Now())
		eng.After(5*sim.Millisecond, func() {
			fmt.Println("nested at", eng.Now())
		})
	})
	eng.Run()
	// Output:
	// first at 1.000ms
	// second at 2.000ms
	// nested at 6.000ms
}

func ExampleTimer_Cancel() {
	eng := sim.NewEngine()
	t := eng.Schedule(sim.Second, func() { fmt.Println("never") })
	t.Cancel()
	eng.Run()
	fmt.Println("cancelled:", t.Cancelled())
	// Output:
	// cancelled: true
}
