// Package sim provides a deterministic discrete-event simulation engine.
//
// Virtual time is an int64 nanosecond count starting at zero. Events are
// ordered by (time, insertion sequence), so two events scheduled for the
// same instant fire in the order they were scheduled (stable FIFO
// tie-breaking), which keeps simulations reproducible.
package sim

import (
	"fmt"
	"math"
)

// Time is a virtual-time instant or duration in nanoseconds.
type Time int64

// Convenient duration units.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds returns t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds returns t as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// FromSeconds converts a floating-point number of seconds to a Time,
// rounding to the nearest nanosecond.
func FromSeconds(s float64) Time { return Time(math.Round(s * float64(Second))) }

// FromMillis converts a floating-point number of milliseconds to a Time,
// rounding to the nearest nanosecond.
func FromMillis(ms float64) Time { return Time(math.Round(ms * float64(Millisecond))) }

// String formats the time with an adaptive unit, e.g. "1.500ms" or "2.000s".
func (t Time) String() string {
	switch {
	case t == 0:
		return "0s"
	case t%Second == 0 || t >= 10*Second || t <= -10*Second:
		return fmt.Sprintf("%.3fs", t.Seconds())
	case t >= Millisecond || t <= -Millisecond:
		return fmt.Sprintf("%.3fms", t.Milliseconds())
	case t >= Microsecond || t <= -Microsecond:
		return fmt.Sprintf("%.3fµs", t.Microseconds())
	default:
		return fmt.Sprintf("%dns", int64(t))
	}
}

// Min returns the smaller of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}

// Max returns the larger of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// CeilDiv returns ceil(a/b) for positive b.
func CeilDiv(a, b Time) int64 {
	if b <= 0 {
		panic("sim: CeilDiv requires positive divisor")
	}
	if a <= 0 {
		return 0
	}
	return (int64(a) + int64(b) - 1) / int64(b)
}
