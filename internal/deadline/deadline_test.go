package deadline

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

const ms = sim.Millisecond

func TestAssignEQFDistributesSlackProportionally(t *testing.T) {
	// Two subtasks of 100ms and 300ms, no messages, 800ms deadline:
	// 400ms slack split 1:3.
	a, err := AssignEQF(Chain{
		Exec: []sim.Time{100 * ms, 300 * ms},
		Comm: []sim.Time{0, 0},
	}, 800*ms)
	if err != nil {
		t.Fatal(err)
	}
	if a.Subtask[0] != 200*ms {
		t.Errorf("dl(st1) = %v, want 200ms", a.Subtask[0])
	}
	if a.Subtask[1] != 600*ms {
		t.Errorf("dl(st2) = %v, want 600ms", a.Subtask[1])
	}
	if a.Message[0] != 0 || a.Message[1] != 0 {
		t.Errorf("messages got deadlines: %v", a.Message)
	}
}

func TestAssignEQFWithMessages(t *testing.T) {
	// One subtask (100ms) + one message (100ms), 400ms deadline: equal
	// durations get equal shares.
	a, err := AssignEQF(Chain{
		Exec: []sim.Time{100 * ms, 100 * ms},
		Comm: []sim.Time{100 * ms, 0},
	}, 600*ms)
	if err != nil {
		t.Fatal(err)
	}
	if a.Subtask[0] != a.Message[0] || a.Message[0] != a.Subtask[1] {
		t.Errorf("equal durations got unequal deadlines: %v / %v", a.Subtask, a.Message)
	}
	if got := a.TotalAssigned(); got != 600*ms {
		t.Errorf("total = %v, want 600ms", got)
	}
}

func TestAssignEQFExactlyTilesDeadline(t *testing.T) {
	a, err := AssignEQF(Chain{
		Exec: []sim.Time{13 * ms, 91 * ms, 7 * ms},
		Comm: []sim.Time{5 * ms, 17 * ms, 0},
	}, 990*ms)
	if err != nil {
		t.Fatal(err)
	}
	if got := a.TotalAssigned(); sim.Time(math.Abs(float64(got-990*ms))) > 10 {
		t.Errorf("total = %v, want 990ms ± 10ns", got)
	}
	for i, dl := range a.Subtask {
		if dl <= 0 {
			t.Errorf("dl(st%d) = %v", i+1, dl)
		}
	}
}

func TestAssignEQFNegativeSlackShrinks(t *testing.T) {
	// Estimates total 400ms against a 200ms deadline: deadlines shrink
	// proportionally but stay positive.
	a, err := AssignEQF(Chain{
		Exec: []sim.Time{100 * ms, 300 * ms},
		Comm: []sim.Time{0, 0},
	}, 200*ms)
	if err != nil {
		t.Fatal(err)
	}
	if a.Subtask[0] != 50*ms || a.Subtask[1] != 150*ms {
		t.Errorf("shrunk deadlines = %v, want [50ms 150ms]", a.Subtask)
	}
}

func TestAssignEQFClampsAtMinShare(t *testing.T) {
	// Deadline far below estimates: every component floors at a tenth of
	// its duration.
	a, err := AssignEQF(Chain{
		Exec: []sim.Time{100 * ms, 100 * ms},
		Comm: []sim.Time{0, 0},
	}, 1*ms)
	if err != nil {
		t.Fatal(err)
	}
	for i, dl := range a.Subtask {
		if dl < 10*ms/10 {
			t.Errorf("dl(st%d) = %v below min share", i+1, dl)
		}
		if dl <= 0 {
			t.Errorf("dl(st%d) not positive", i+1)
		}
	}
}

func TestAssignEQFValidation(t *testing.T) {
	ok := Chain{Exec: []sim.Time{ms}, Comm: []sim.Time{0}}
	cases := map[string]struct {
		c  Chain
		dl sim.Time
	}{
		"empty":         {Chain{}, ms},
		"mismatch":      {Chain{Exec: []sim.Time{ms}, Comm: nil}, ms},
		"zero deadline": {ok, 0},
		"zero exec":     {Chain{Exec: []sim.Time{0}, Comm: []sim.Time{0}}, ms},
		"negative comm": {Chain{Exec: []sim.Time{ms}, Comm: []sim.Time{-1}}, ms},
	}
	for name, c := range cases {
		if _, err := AssignEQF(c.c, c.dl); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

// Property: with positive estimates whose total fits in the deadline, the
// assignment tiles the deadline exactly (within float rounding), every
// deadline is at least its estimate, and slack shares are ordered like
// durations.
func TestPropertyEQFTiling(t *testing.T) {
	f := func(raw []uint16, dlRaw uint32) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 12 {
			raw = raw[:12]
		}
		c := Chain{}
		var total sim.Time
		for i, r := range raw {
			e := sim.Time(r%500+1) * ms / 10
			var m sim.Time
			if i != len(raw)-1 {
				m = sim.Time(r%97) * ms / 10
			}
			c.Exec = append(c.Exec, e)
			c.Comm = append(c.Comm, m)
			total += e + m
		}
		deadline := total + sim.Time(dlRaw%1_000_000)*sim.Microsecond
		a, err := AssignEQF(c, deadline)
		if err != nil {
			return false
		}
		if diff := math.Abs(float64(a.TotalAssigned() - deadline)); diff > float64(len(raw)*100) {
			return false
		}
		for i := range c.Exec {
			if a.Subtask[i] < c.Exec[i] {
				return false // nonnegative slack must not shrink components
			}
			if c.Comm[i] > 0 && a.Message[i] < c.Comm[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: scaling all estimates and the deadline scales the assignment
// (EQF is scale-invariant).
func TestPropertyEQFScaleInvariance(t *testing.T) {
	f := func(e1, e2, m1 uint8) bool {
		c := Chain{
			Exec: []sim.Time{sim.Time(e1%50+1) * ms, sim.Time(e2%50+1) * ms},
			Comm: []sim.Time{sim.Time(m1%20) * ms, 0},
		}
		d := sim.Time(300) * ms
		a1, err := AssignEQF(c, d)
		if err != nil {
			return false
		}
		c2 := Chain{
			Exec: []sim.Time{2 * c.Exec[0], 2 * c.Exec[1]},
			Comm: []sim.Time{2 * c.Comm[0], 0},
		}
		a2, err := AssignEQF(c2, 2*d)
		if err != nil {
			return false
		}
		for i := range a1.Subtask {
			if math.Abs(float64(a2.Subtask[i]-2*a1.Subtask[i])) > 10 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// paperEQF computes dl(st_i) and dl(m_i) with the paper's closed-form
// eqs. (1)–(2): each component gets its duration plus the remaining slack
// times its share of the remaining chain duration, where "remaining"
// spans component i to the end.
func paperEQF(c Chain, endToEnd sim.Time) Assignment {
	n := len(c.Exec)
	a := Assignment{Subtask: make([]sim.Time, n), Message: make([]sim.Time, n)}
	var offset sim.Time
	for i := 0; i < n; i++ {
		// Remaining duration from subtask i to the end.
		var rem sim.Time
		for j := i; j < n; j++ {
			rem += c.Exec[j] + c.Comm[j]
		}
		slack := endToEnd - offset - rem
		dl := c.Exec[i] + sim.Time(float64(slack)*float64(c.Exec[i])/float64(rem))
		a.Subtask[i] = dl
		offset += dl
		if c.Comm[i] > 0 {
			rem -= c.Exec[i]
			slack = endToEnd - offset - rem
			dlm := c.Comm[i] + sim.Time(float64(slack)*float64(c.Comm[i])/float64(rem))
			a.Message[i] = dlm
			offset += dlm
		}
	}
	return a
}

// Property: the sequential implementation equals the paper's closed-form
// eqs. (1)–(2) whenever no clamping is involved.
func TestPropertyMatchesPaperClosedForm(t *testing.T) {
	f := func(raw []uint16, slackRaw uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 8 {
			raw = raw[:8]
		}
		c := Chain{}
		var total sim.Time
		for i, r := range raw {
			e := sim.Time(r%400+1) * ms
			var m sim.Time
			if i != len(raw)-1 {
				m = sim.Time(r%89) * ms
			}
			c.Exec = append(c.Exec, e)
			c.Comm = append(c.Comm, m)
			total += e + m
		}
		deadline := total + sim.Time(slackRaw)*ms
		got, err := AssignEQF(c, deadline)
		if err != nil {
			return false
		}
		want := paperEQF(c, deadline)
		for i := range c.Exec {
			if d := got.Subtask[i] - want.Subtask[i]; d > 2 || d < -2 {
				t.Logf("subtask %d: got %v, paper %v", i, got.Subtask[i], want.Subtask[i])
				return false
			}
			if d := got.Message[i] - want.Message[i]; d > 2 || d < -2 {
				t.Logf("message %d: got %v, paper %v", i, got.Message[i], want.Message[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
