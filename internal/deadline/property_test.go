package deadline

import (
	"math/rand/v2"
	"testing"

	"repro/internal/sim"
)

// randChain builds a random valid chain: positive exec estimates, comm
// estimates that are zero (chain-internal gaps) or positive, with the
// final comm always zero.
func randChain(r *rand.Rand, n int) Chain {
	c := Chain{Exec: make([]sim.Time, n), Comm: make([]sim.Time, n)}
	for i := 0; i < n; i++ {
		c.Exec[i] = sim.Time(1+r.Int64N(int64(50*sim.Millisecond))) + sim.Microsecond
		if i < n-1 && r.IntN(4) > 0 {
			c.Comm[i] = sim.Time(r.Int64N(int64(10 * sim.Millisecond)))
		}
	}
	return c
}

func chainTotal(c Chain) sim.Time {
	var t sim.Time
	for i := range c.Exec {
		t += c.Exec[i] + c.Comm[i]
	}
	return t
}

// TestPropertyAssignedDeadlinesTile: with enough end-to-end slack (no
// minShare clamping), the assigned deadlines tile the end-to-end deadline
// — their sum equals it up to integer-rounding residue — and never
// overrun it.
func TestPropertyAssignedDeadlinesTile(t *testing.T) {
	r := rand.New(rand.NewPCG(11, 17))
	for iter := 0; iter < 500; iter++ {
		n := 1 + r.IntN(8)
		c := randChain(r, n)
		total := chainTotal(c)
		// Slack factor ≥ 1: estimates fit, so no clamp fires.
		endToEnd := total + sim.Time(r.Int64N(int64(total)+1))
		a, err := AssignEQF(c, endToEnd)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		got := a.TotalAssigned()
		// Each of the ≤2n assign() calls can lose under 1 ns to float
		// truncation; the sum must never exceed the deadline.
		if got > endToEnd {
			t.Fatalf("iter %d: assigned %v exceeds end-to-end %v", iter, got, endToEnd)
		}
		if slack := endToEnd - got; slack > sim.Time(2*n) {
			t.Fatalf("iter %d: assigned %v leaves %v unassigned (want < %dns rounding residue)",
				iter, got, slack, 2*n)
		}
	}
}

// TestPropertyAssignedDeadlinesPositive: every subtask deadline is
// strictly positive and every message deadline is positive exactly when
// its comm estimate is, even under heavy overload (estimates far
// exceeding the end-to-end deadline).
func TestPropertyAssignedDeadlinesPositive(t *testing.T) {
	r := rand.New(rand.NewPCG(23, 5))
	for iter := 0; iter < 500; iter++ {
		n := 1 + r.IntN(8)
		c := randChain(r, n)
		// Deadlines from generous down to crushing overload.
		endToEnd := sim.Time(1 + r.Int64N(int64(chainTotal(c))*2))
		a, err := AssignEQF(c, endToEnd)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i := 0; i < n; i++ {
			if a.Subtask[i] <= 0 {
				t.Fatalf("iter %d: subtask %d deadline %v not positive (endToEnd %v)",
					iter, i, a.Subtask[i], endToEnd)
			}
			if a.Subtask[i] < minShare(c.Exec[i]) {
				t.Fatalf("iter %d: subtask %d deadline %v below its minShare floor %v",
					iter, i, a.Subtask[i], minShare(c.Exec[i]))
			}
			switch {
			case c.Comm[i] > 0 && a.Message[i] <= 0:
				t.Fatalf("iter %d: message %d deadline %v not positive for comm %v",
					iter, i, a.Message[i], c.Comm[i])
			case c.Comm[i] == 0 && a.Message[i] != 0:
				t.Fatalf("iter %d: message %d deadline %v for zero comm", iter, i, a.Message[i])
			}
		}
	}
}

// TestPropertyMonotonicInSlack: growing the end-to-end deadline never
// shrinks any component's assigned deadline (beyond 1 ns of float
// truncation per component).
func TestPropertyMonotonicInSlack(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 41))
	const tol = sim.Time(2) // ns; assign() truncates float products
	for iter := 0; iter < 500; iter++ {
		n := 1 + r.IntN(8)
		c := randChain(r, n)
		total := chainTotal(c)
		d1 := sim.Time(1 + r.Int64N(int64(total)*2))
		d2 := d1 + sim.Time(1+r.Int64N(int64(total)))
		a1, err := AssignEQF(c, d1)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		a2, err := AssignEQF(c, d2)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for i := 0; i < n; i++ {
			if a2.Subtask[i]+tol < a1.Subtask[i] {
				t.Fatalf("iter %d: subtask %d deadline shrank %v → %v when end-to-end grew %v → %v",
					iter, i, a1.Subtask[i], a2.Subtask[i], d1, d2)
			}
			if a2.Message[i]+tol < a1.Message[i] {
				t.Fatalf("iter %d: message %d deadline shrank %v → %v when end-to-end grew %v → %v",
					iter, i, a1.Message[i], a2.Message[i], d1, d2)
			}
		}
	}
}
