package deadline_test

import (
	"fmt"

	"repro/internal/deadline"
	"repro/internal/sim"
)

// Two subtasks estimated at 100 ms and 300 ms share an 800 ms end-to-end
// deadline; EQF gives each its duration plus a slack share proportional
// to that duration.
func ExampleAssignEQF() {
	a, err := deadline.AssignEQF(deadline.Chain{
		Exec: []sim.Time{100 * sim.Millisecond, 300 * sim.Millisecond},
		Comm: []sim.Time{0, 0},
	}, 800*sim.Millisecond)
	if err != nil {
		panic(err)
	}
	fmt.Println("dl(st1) =", a.Subtask[0])
	fmt.Println("dl(st2) =", a.Subtask[1])
	fmt.Println("total   =", a.TotalAssigned())
	// Output:
	// dl(st1) = 200.000ms
	// dl(st2) = 600.000ms
	// total   = 800.000ms
}
