// Package deadline implements the paper's variant of the Equal
// Flexibility (EQF) strategy [KG97] used in §4.1 (eqs. 1–2) to derive
// individual subtask and message deadlines from the end-to-end task
// deadline: each component receives its estimated duration plus a share of
// the remaining slack proportional to that duration, walking the chain
// front to back.
package deadline

import (
	"fmt"

	"repro/internal/sim"
)

// Chain holds the duration estimates the assignment is computed from:
// Exec[i] estimates subtask i's execution latency (eex with the initial
// operating conditions) and Comm[i] estimates message i's communication
// delay (ecd); Comm for the final subtask is zero when the chain ends at
// the last subtask.
type Chain struct {
	Exec []sim.Time
	Comm []sim.Time
}

// Assignment carries relative deadlines: Subtask[i] is dl(stᵢ) and
// Message[i] is dl(mᵢ). They tile the end-to-end deadline exactly when no
// clamping occurs.
type Assignment struct {
	Subtask []sim.Time
	Message []sim.Time
}

// TotalAssigned returns the sum of all assigned deadlines.
func (a Assignment) TotalAssigned() sim.Time {
	var t sim.Time
	for _, d := range a.Subtask {
		t += d
	}
	for _, d := range a.Message {
		t += d
	}
	return t
}

// minShare floors a clamped deadline at a tenth of the component's
// estimated duration, so an overloaded chain (estimates exceeding the
// end-to-end deadline) still yields positive, meaningful deadlines.
func minShare(d sim.Time) sim.Time {
	m := d / 10
	if m < sim.Microsecond {
		m = sim.Microsecond
	}
	return m
}

// AssignEQF distributes the end-to-end deadline across the chain.
func AssignEQF(c Chain, endToEnd sim.Time) (Assignment, error) {
	n := len(c.Exec)
	if n == 0 {
		return Assignment{}, fmt.Errorf("deadline: empty chain")
	}
	if len(c.Comm) != n {
		return Assignment{}, fmt.Errorf("deadline: %d exec estimates but %d comm estimates", n, len(c.Comm))
	}
	if endToEnd <= 0 {
		return Assignment{}, fmt.Errorf("deadline: non-positive end-to-end deadline %v", endToEnd)
	}
	var rem sim.Time
	for i := 0; i < n; i++ {
		if c.Exec[i] <= 0 {
			return Assignment{}, fmt.Errorf("deadline: subtask %d with non-positive estimate %v", i, c.Exec[i])
		}
		if c.Comm[i] < 0 {
			return Assignment{}, fmt.Errorf("deadline: message %d with negative estimate %v", i, c.Comm[i])
		}
		rem += c.Exec[i] + c.Comm[i]
	}

	a := Assignment{
		Subtask: make([]sim.Time, n),
		Message: make([]sim.Time, n),
	}
	var offset sim.Time
	assign := func(dur sim.Time) sim.Time {
		// Slack left for the rest of the chain, which may be negative
		// when estimates exceed the deadline.
		slack := endToEnd - offset - rem
		dl := dur + sim.Time(float64(slack)*float64(dur)/float64(rem))
		if min := minShare(dur); dl < min {
			dl = min
		}
		offset += dl
		rem -= dur
		return dl
	}
	for i := 0; i < n; i++ {
		a.Subtask[i] = assign(c.Exec[i])
		if c.Comm[i] > 0 {
			a.Message[i] = assign(c.Comm[i])
		}
	}
	return a, nil
}
