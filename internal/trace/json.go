package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/task"
)

// PeriodJSON is the canonical JSON shape of one completed instance; the
// export package aliases it so every serialization path shares one
// encoder. Times are milliseconds as floats, the unit the paper reports
// in.
type PeriodJSON struct {
	Period    int         `json:"period"`
	Items     int         `json:"items"`
	LatencyMS float64     `json:"latency_ms"`
	Missed    bool        `json:"missed"`
	Stages    []StageJSON `json:"stages"`
}

// StageJSON is one stage's observation within a period.
type StageJSON struct {
	ExecMS   float64 `json:"exec_ms"`
	CommMS   float64 `json:"comm_ms"`
	Replicas int     `json:"replicas"`
}

// EventJSON is the canonical JSON shape of one adaptation action.
type EventJSON struct {
	AtMS   float64 `json:"at_ms"`
	Period int     `json:"period"`
	Task   string  `json:"task"`
	Stage  int     `json:"stage"`
	Kind   string  `json:"kind"`
	Procs  []int   `json:"procs,omitempty"`
}

// PeriodToJSON converts one period record.
func PeriodToJSON(r *task.PeriodRecord) PeriodJSON {
	p := PeriodJSON{
		Period:    r.Period,
		Items:     r.Items,
		LatencyMS: r.EndToEnd().Milliseconds(),
		Missed:    r.Missed(),
	}
	for _, st := range r.Stages {
		p.Stages = append(p.Stages, StageJSON{
			ExecMS:   st.ExecLatency().Milliseconds(),
			CommMS:   st.CommLatency().Milliseconds(),
			Replicas: st.Replicas,
		})
	}
	return p
}

// EventToJSON converts one adaptation event.
func EventToJSON(e AdaptationEvent) EventJSON {
	return EventJSON{
		AtMS:   e.At.Milliseconds(),
		Period: e.Period,
		Task:   e.Task,
		Stage:  e.Stage,
		Kind:   string(e.Kind),
		Procs:  e.Procs,
	}
}

// LogJSON is the JSON document WriteJSON emits: the log's full contents,
// the JSON counterpart of the two CSV writers.
type LogJSON struct {
	Records []PeriodJSON `json:"records"`
	Events  []EventJSON  `json:"events"`
}

// WriteJSON emits the whole log — records and events — as indented JSON.
func (l *Log) WriteJSON(w io.Writer) error {
	doc := LogJSON{
		Records: make([]PeriodJSON, 0, len(l.records)),
		Events:  make([]EventJSON, 0, len(l.events)),
	}
	for _, r := range l.records {
		doc.Records = append(doc.Records, PeriodToJSON(r))
	}
	for _, e := range l.events {
		doc.Events = append(doc.Events, EventToJSON(e))
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("trace: write json: %w", err)
	}
	return nil
}

// ReadLogJSON parses a document written by WriteJSON.
func ReadLogJSON(r io.Reader) (LogJSON, error) {
	var doc LogJSON
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return LogJSON{}, fmt.Errorf("trace: read json: %w", err)
	}
	return doc, nil
}
