// Package trace records what an adaptive run did: one row per completed
// period and one event per adaptation action, exportable as CSV for
// inspection and plotting.
package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
	"repro/internal/task"
)

// ActionKind labels an adaptation event.
type ActionKind string

// Adaptation actions.
const (
	ActionReplicate    ActionKind = "replicate"
	ActionShutdown     ActionKind = "shutdown"
	ActionAllocFailure ActionKind = "alloc-failure"
	ActionNodeDown     ActionKind = "node-down"
	ActionNodeUp       ActionKind = "node-up"
	ActionFailover     ActionKind = "failover"
	// ActionStretch marks a period launch skipped by the period-stretch
	// policy; ActionShed marks optional items dropped by imprecise-shed.
	ActionStretch ActionKind = "stretch-skip"
	ActionShed    ActionKind = "shed"
)

// AdaptationEvent is one resource-management action.
type AdaptationEvent struct {
	At     sim.Time
	Period int
	Task   string
	Stage  int
	Kind   ActionKind
	// Procs lists processors added (replicate) or removed (shutdown).
	Procs []int
}

func (e AdaptationEvent) String() string {
	return fmt.Sprintf("t=%v period=%d task=%s stage=%d %s procs=%v",
		e.At, e.Period, e.Task, e.Stage, e.Kind, e.Procs)
}

// Log accumulates events and period records.
type Log struct {
	events  []AdaptationEvent
	records []*task.PeriodRecord
}

// NewLog returns an empty log.
func NewLog() *Log { return &Log{} }

// Adaptation appends an event.
func (l *Log) Adaptation(e AdaptationEvent) { l.events = append(l.events, e) }

// Record appends a completed period record.
func (l *Log) Record(r *task.PeriodRecord) { l.records = append(l.records, r) }

// Events returns the recorded adaptation events.
func (l *Log) Events() []AdaptationEvent { return l.events }

// Records returns the completed period records.
func (l *Log) Records() []*task.PeriodRecord { return l.records }

// WriteRecordsCSV emits one row per completed period.
func (l *Log) WriteRecordsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "period,items,released_ms,completed_ms,latency_ms,missed"); err != nil {
		return err
	}
	for _, r := range l.records {
		_, err := fmt.Fprintf(w, "%d,%d,%.3f,%.3f,%.3f,%t\n",
			r.Period, r.Items,
			r.ReleasedAt.Milliseconds(), r.CompletedAt.Milliseconds(),
			r.EndToEnd().Milliseconds(), r.Missed())
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteEventsCSV emits one row per adaptation event.
func (l *Log) WriteEventsCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "time_ms,period,task,stage,action,procs"); err != nil {
		return err
	}
	for _, e := range l.events {
		_, err := fmt.Fprintf(w, "%.3f,%d,%s,%d,%s,%v\n",
			e.At.Milliseconds(), e.Period, e.Task, e.Stage, e.Kind, e.Procs)
		if err != nil {
			return err
		}
	}
	return nil
}
