package trace

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/task"
)

func sampleLog() *Log {
	l := NewLog()
	l.Record(&task.PeriodRecord{
		Period: 0, Items: 50,
		ReleasedAt: 0, CompletedAt: 400 * sim.Millisecond,
		Deadline: sim.Second,
		Stages: []task.StageObservation{
			{ReadyAt: 0, DoneAt: 300 * sim.Millisecond, DeliveredAt: 350 * sim.Millisecond, Replicas: 1},
			{ReadyAt: 350 * sim.Millisecond, DoneAt: 400 * sim.Millisecond, DeliveredAt: 400 * sim.Millisecond, Replicas: 2},
		},
	})
	l.Record(&task.PeriodRecord{
		Period: 1, Items: 60,
		ReleasedAt: sim.Second, CompletedAt: sim.Second + 1200*sim.Millisecond,
		Deadline: 2 * sim.Second,
		Stages:   []task.StageObservation{{Replicas: 1}, {Replicas: 1}},
	})
	l.Adaptation(AdaptationEvent{
		At: 2 * sim.Second, Period: 2, Task: "aaw", Stage: 1,
		Kind: ActionReplicate, Procs: []int{3},
	})
	l.Adaptation(AdaptationEvent{
		At: 3 * sim.Second, Period: 3, Task: "aaw", Stage: 1,
		Kind: ActionAllocFailure,
	})
	return l
}

func TestWriteJSONRoundTrip(t *testing.T) {
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	doc, err := ReadLogJSON(&buf)
	if err != nil {
		t.Fatalf("ReadLogJSON: %v", err)
	}
	want := LogJSON{
		Records: []PeriodJSON{PeriodToJSON(l.Records()[0]), PeriodToJSON(l.Records()[1])},
		Events:  []EventJSON{EventToJSON(l.Events()[0]), EventToJSON(l.Events()[1])},
	}
	if !reflect.DeepEqual(doc, want) {
		t.Errorf("round trip mismatch:\ngot  %+v\nwant %+v", doc, want)
	}
}

func TestWriteJSONMatchesCSVContent(t *testing.T) {
	// The JSON and CSV writers must agree on the derived values.
	l := sampleLog()
	var buf bytes.Buffer
	if err := l.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	doc, err := ReadLogJSON(&buf)
	if err != nil {
		t.Fatalf("ReadLogJSON: %v", err)
	}
	r0 := doc.Records[0]
	if r0.LatencyMS != 400 {
		t.Errorf("latency_ms = %v, want 400", r0.LatencyMS)
	}
	if r0.Missed {
		t.Error("record 0 marked missed; completed well before its deadline")
	}
	if got := r0.Stages[0]; got.ExecMS != 300 || got.CommMS != 50 || got.Replicas != 1 {
		t.Errorf("stage 0 = %+v, want exec 300ms, comm 50ms, 1 replica", got)
	}
	if e := doc.Events[0]; e.AtMS != 2000 || e.Kind != "replicate" || len(e.Procs) != 1 {
		t.Errorf("event 0 = %+v", e)
	}
	if e := doc.Events[1]; e.Procs != nil {
		t.Errorf("event without procs round-tripped as %v, want nil (omitempty)", e.Procs)
	}
}

func TestWriteJSONEmptyLog(t *testing.T) {
	var buf bytes.Buffer
	if err := NewLog().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	doc, err := ReadLogJSON(&buf)
	if err != nil {
		t.Fatalf("ReadLogJSON: %v", err)
	}
	if len(doc.Records) != 0 || len(doc.Events) != 0 {
		t.Errorf("empty log round-tripped as %+v", doc)
	}
}
