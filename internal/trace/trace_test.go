package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
	"repro/internal/task"
)

func TestLogAccumulates(t *testing.T) {
	l := NewLog()
	l.Adaptation(AdaptationEvent{At: sim.Second, Period: 1, Task: "T", Stage: 2,
		Kind: ActionReplicate, Procs: []int{3}})
	l.Adaptation(AdaptationEvent{At: 2 * sim.Second, Period: 2, Task: "T", Stage: 2,
		Kind: ActionShutdown, Procs: []int{3}})
	l.Record(&task.PeriodRecord{Period: 0, Items: 100,
		ReleasedAt: 0, CompletedAt: 500 * sim.Millisecond, Deadline: 990 * sim.Millisecond})
	if len(l.Events()) != 2 || len(l.Records()) != 1 {
		t.Fatalf("events=%d records=%d", len(l.Events()), len(l.Records()))
	}
	if s := l.Events()[0].String(); !strings.Contains(s, "replicate") {
		t.Errorf("event string %q", s)
	}
}

func TestWriteRecordsCSV(t *testing.T) {
	l := NewLog()
	l.Record(&task.PeriodRecord{Period: 3, Items: 42,
		ReleasedAt: 3 * sim.Second, CompletedAt: 3*sim.Second + 400*sim.Millisecond,
		Deadline: 3*sim.Second + 990*sim.Millisecond})
	var b strings.Builder
	if err := l.WriteRecordsCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "period,items,") {
		t.Errorf("missing header: %q", out)
	}
	if !strings.Contains(out, "3,42,3000.000,3400.000,400.000,false") {
		t.Errorf("row wrong: %q", out)
	}
}

func TestWriteEventsCSV(t *testing.T) {
	l := NewLog()
	l.Adaptation(AdaptationEvent{At: 1500 * sim.Millisecond, Period: 1, Task: "AAW",
		Stage: 4, Kind: ActionAllocFailure})
	var b strings.Builder
	if err := l.WriteEventsCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "1500.000,1,AAW,4,alloc-failure,[]") {
		t.Errorf("row wrong: %q", out)
	}
}
