// Package export serializes run results to JSON for downstream tooling
// (plotting scripts, dashboards, regression tracking). Times are exported
// in milliseconds as floats, the unit the paper reports in.
package export

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/task"
	"repro/internal/trace"
)

// Summary is the JSON shape of a run's aggregate metrics.
type Summary struct {
	Periods        int     `json:"periods"`
	Completed      int     `json:"completed"`
	Missed         int     `json:"missed"`
	MissedPct      float64 `json:"missed_pct"`
	CPUUtilPct     float64 `json:"cpu_util_pct"`
	NetUtilPct     float64 `json:"net_util_pct"`
	MeanReplicas   float64 `json:"mean_replicas"`
	ReplicaUsePct  float64 `json:"replica_use_pct"`
	Combined       float64 `json:"combined_metric"`
	Replications   int     `json:"replications"`
	Shutdowns      int     `json:"shutdowns"`
	AllocFailures  int     `json:"alloc_failures"`
	UnfinishedWork int     `json:"unfinished"`
}

// Period, Stage and Event alias the canonical JSON shapes owned by the
// trace package, so this package and Log.WriteJSON cannot drift apart.
type (
	// Period is the JSON shape of one completed instance.
	Period = trace.PeriodJSON
	// Stage is one stage's observation within a period.
	Stage = trace.StageJSON
	// Event is the JSON shape of one adaptation action.
	Event = trace.EventJSON
)

// Run is a full run export.
type Run struct {
	Summary Summary  `json:"summary"`
	Periods []Period `json:"periods,omitempty"`
	Events  []Event  `json:"events,omitempty"`
}

// FromMetrics converts aggregate metrics.
func FromMetrics(m metrics.RunMetrics) Summary {
	return Summary{
		Periods:        m.Periods,
		Completed:      m.Completed,
		Missed:         m.Missed,
		MissedPct:      m.MissedPct(),
		CPUUtilPct:     m.CPUUtilPct(),
		NetUtilPct:     m.NetUtilPct(),
		MeanReplicas:   m.MeanReplicas,
		ReplicaUsePct:  m.ReplicaUsePct(),
		Combined:       m.Combined(),
		Replications:   m.Replications,
		Shutdowns:      m.Shutdowns,
		AllocFailures:  m.AllocFailures,
		UnfinishedWork: m.UnfinishedWork,
	}
}

// FromRecord converts one period record.
func FromRecord(r *task.PeriodRecord) Period { return trace.PeriodToJSON(r) }

// FromEvent converts one adaptation event.
func FromEvent(e trace.AdaptationEvent) Event { return trace.EventToJSON(e) }

// FromResult converts a full run. Periods and events are included when
// the corresponding flags are true.
func FromResult(res core.Result, withPeriods, withEvents bool) Run {
	out := Run{Summary: FromMetrics(res.Metrics)}
	if withPeriods {
		for _, r := range res.Records {
			out.Periods = append(out.Periods, FromRecord(r))
		}
	}
	if withEvents {
		for _, e := range res.Events {
			out.Events = append(out.Events, FromEvent(e))
		}
	}
	return out
}

// WriteJSON writes the run as indented JSON.
func WriteJSON(w io.Writer, run Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(run); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	return nil
}
