// Package export serializes run results to JSON for downstream tooling
// (plotting scripts, dashboards, regression tracking). Times are exported
// in milliseconds as floats, the unit the paper reports in.
package export

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/task"
	"repro/internal/trace"
)

// Summary is the JSON shape of a run's aggregate metrics.
type Summary struct {
	Periods        int     `json:"periods"`
	Completed      int     `json:"completed"`
	Missed         int     `json:"missed"`
	MissedPct      float64 `json:"missed_pct"`
	CPUUtilPct     float64 `json:"cpu_util_pct"`
	NetUtilPct     float64 `json:"net_util_pct"`
	MeanReplicas   float64 `json:"mean_replicas"`
	ReplicaUsePct  float64 `json:"replica_use_pct"`
	Combined       float64 `json:"combined_metric"`
	Replications   int     `json:"replications"`
	Shutdowns      int     `json:"shutdowns"`
	AllocFailures  int     `json:"alloc_failures"`
	UnfinishedWork int     `json:"unfinished"`
}

// Period is the JSON shape of one completed instance.
type Period struct {
	Period    int     `json:"period"`
	Items     int     `json:"items"`
	LatencyMS float64 `json:"latency_ms"`
	Missed    bool    `json:"missed"`
	Stages    []Stage `json:"stages"`
}

// Stage is one stage's observation within a period.
type Stage struct {
	ExecMS   float64 `json:"exec_ms"`
	CommMS   float64 `json:"comm_ms"`
	Replicas int     `json:"replicas"`
}

// Event is the JSON shape of one adaptation action.
type Event struct {
	AtMS   float64 `json:"at_ms"`
	Period int     `json:"period"`
	Task   string  `json:"task"`
	Stage  int     `json:"stage"`
	Kind   string  `json:"kind"`
	Procs  []int   `json:"procs,omitempty"`
}

// Run is a full run export.
type Run struct {
	Summary Summary  `json:"summary"`
	Periods []Period `json:"periods,omitempty"`
	Events  []Event  `json:"events,omitempty"`
}

// FromMetrics converts aggregate metrics.
func FromMetrics(m metrics.RunMetrics) Summary {
	return Summary{
		Periods:        m.Periods,
		Completed:      m.Completed,
		Missed:         m.Missed,
		MissedPct:      m.MissedPct(),
		CPUUtilPct:     m.CPUUtilPct(),
		NetUtilPct:     m.NetUtilPct(),
		MeanReplicas:   m.MeanReplicas,
		ReplicaUsePct:  m.ReplicaUsePct(),
		Combined:       m.Combined(),
		Replications:   m.Replications,
		Shutdowns:      m.Shutdowns,
		AllocFailures:  m.AllocFailures,
		UnfinishedWork: m.UnfinishedWork,
	}
}

// FromRecord converts one period record.
func FromRecord(r *task.PeriodRecord) Period {
	p := Period{
		Period:    r.Period,
		Items:     r.Items,
		LatencyMS: r.EndToEnd().Milliseconds(),
		Missed:    r.Missed(),
	}
	for _, st := range r.Stages {
		p.Stages = append(p.Stages, Stage{
			ExecMS:   st.ExecLatency().Milliseconds(),
			CommMS:   st.CommLatency().Milliseconds(),
			Replicas: st.Replicas,
		})
	}
	return p
}

// FromEvent converts one adaptation event.
func FromEvent(e trace.AdaptationEvent) Event {
	return Event{
		AtMS:   e.At.Milliseconds(),
		Period: e.Period,
		Task:   e.Task,
		Stage:  e.Stage,
		Kind:   string(e.Kind),
		Procs:  e.Procs,
	}
}

// FromResult converts a full run. Periods and events are included when
// the corresponding flags are true.
func FromResult(res core.Result, withPeriods, withEvents bool) Run {
	out := Run{Summary: FromMetrics(res.Metrics)}
	if withPeriods {
		for _, r := range res.Records {
			out.Periods = append(out.Periods, FromRecord(r))
		}
	}
	if withEvents {
		for _, e := range res.Events {
			out.Events = append(out.Events, FromEvent(e))
		}
	}
	return out
}

// WriteJSON writes the run as indented JSON.
func WriteJSON(w io.Writer, run Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(run); err != nil {
		return fmt.Errorf("export: %w", err)
	}
	return nil
}
