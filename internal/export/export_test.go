package export

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
)

func sampleResult() core.Result {
	c := metrics.NewCollector(6)
	c.ObservePeriodStart(0.5, 0.25, 2)
	c.ObserveCompletion(false)
	c.ObserveCompletion(true)
	c.CountReplications(2)
	rec := &task.PeriodRecord{
		Period: 1, Items: 1000,
		ReleasedAt:  sim.Second,
		CompletedAt: sim.Second + 400*sim.Millisecond,
		Deadline:    sim.Second + 990*sim.Millisecond,
		Stages: []task.StageObservation{{
			ReadyAt: sim.Second, DoneAt: sim.Second + 300*sim.Millisecond,
			DeliveredAt: sim.Second + 350*sim.Millisecond, Replicas: 2,
		}},
	}
	return core.Result{
		Metrics: c.Finish(),
		Records: []*task.PeriodRecord{rec},
		Events: []trace.AdaptationEvent{{
			At: 2 * sim.Second, Period: 2, Task: "T", Stage: 2,
			Kind: trace.ActionReplicate, Procs: []int{3, 4},
		}},
	}
}

func TestFromResultFull(t *testing.T) {
	run := FromResult(sampleResult(), true, true)
	if run.Summary.Completed != 2 || run.Summary.Missed != 1 {
		t.Errorf("summary = %+v", run.Summary)
	}
	if len(run.Periods) != 1 {
		t.Fatalf("periods = %d", len(run.Periods))
	}
	p := run.Periods[0]
	if p.LatencyMS != 400 || p.Missed {
		t.Errorf("period = %+v", p)
	}
	if len(p.Stages) != 1 || p.Stages[0].ExecMS != 300 || p.Stages[0].CommMS != 50 {
		t.Errorf("stages = %+v", p.Stages)
	}
	if len(run.Events) != 1 || run.Events[0].Kind != "replicate" || run.Events[0].AtMS != 2000 {
		t.Errorf("events = %+v", run.Events)
	}
}

func TestFromResultSummaryOnly(t *testing.T) {
	run := FromResult(sampleResult(), false, false)
	if run.Periods != nil || run.Events != nil {
		t.Error("summary-only export carried detail")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, FromResult(sampleResult(), true, true)); err != nil {
		t.Fatal(err)
	}
	var back Run
	if err := json.Unmarshal([]byte(b.String()), &back); err != nil {
		t.Fatal(err)
	}
	if back.Summary.Combined != FromMetrics(sampleResult().Metrics).Combined {
		t.Error("round trip changed the combined metric")
	}
	for _, key := range []string{`"missed_pct"`, `"combined_metric"`, `"latency_ms"`, `"procs"`} {
		if !strings.Contains(b.String(), key) {
			t.Errorf("JSON missing %s", key)
		}
	}
}
