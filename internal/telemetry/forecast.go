package telemetry

import (
	"fmt"
	"sort"

	"repro/internal/sim"
	"repro/internal/stats"
)

// mapeWindow is the number of recent periods the rolling MAPE averages
// over — long enough to smooth single-period noise, short enough to show
// forecast staleness as the workload shifts (DESIGN.md §5).
const mapeWindow = 32

// ForecastTrack pairs each model prediction with the later-observed
// value for one quantity of one subtask (eq. 3 execution latency or
// eq. 5 communication delay) and maintains residual statistics: an
// absolute-residual histogram, signed bias, and a rolling MAPE.
type ForecastTrack struct {
	pending map[int]sim.Time // period → predicted, awaiting observation

	matched  int
	over     int // prediction > observation (conservative)
	under    int // prediction < observation (optimistic — the dangerous side)
	absResid Histogram
	signedMS float64 // Σ (predicted − observed) in ms
	mape     *stats.SlidingWindow
}

// NewForecastTrack returns an empty track.
func NewForecastTrack() *ForecastTrack {
	return &ForecastTrack{
		pending: map[int]sim.Time{},
		mape:    stats.NewSlidingWindow(mapeWindow),
	}
}

// Predict records the model's forecast for a period.
func (t *ForecastTrack) Predict(period int, v sim.Time) { t.pending[period] = v }

// Observe matches an observation against the pending prediction for the
// period, updating residual statistics. Observations without a matching
// prediction are dropped (the period may predate telemetry enablement).
func (t *ForecastTrack) Observe(period int, obs sim.Time) {
	pred, ok := t.pending[period]
	if !ok {
		return
	}
	delete(t.pending, period)
	t.matched++
	resid := pred - obs
	if resid >= 0 {
		t.over++
	} else {
		t.under++
	}
	abs := resid
	if abs < 0 {
		abs = -abs
	}
	t.absResid.Record(abs)
	t.signedMS += resid.Milliseconds()
	if obs > 0 {
		t.mape.Push(100 * abs.Milliseconds() / obs.Milliseconds())
	}
}

// Matched returns the number of prediction/observation pairs seen.
func (t *ForecastTrack) Matched() int { return t.matched }

// MAPE returns the rolling mean absolute percentage error over the last
// mapeWindow matched periods (0 before any match).
func (t *ForecastTrack) MAPE() float64 {
	if t.mape.Len() == 0 {
		return 0
	}
	return t.mape.Mean()
}

// MeanErrorMS returns the signed mean residual (predicted − observed) in
// milliseconds: positive means the model over-predicts.
func (t *ForecastTrack) MeanErrorMS() float64 {
	if t.matched == 0 {
		return 0
	}
	return t.signedMS / float64(t.matched)
}

// TrackSnapshot is the exported state of one forecast track.
type TrackSnapshot struct {
	Matched    int     `json:"matched"`
	Over       int     `json:"over_predictions"`
	Under      int     `json:"under_predictions"`
	MAPEPct    float64 `json:"rolling_mape_pct"`
	MeanErrMS  float64 `json:"mean_error_ms"`
	AbsP50MS   float64 `json:"abs_residual_p50_ms"`
	AbsP95MS   float64 `json:"abs_residual_p95_ms"`
	AbsP99MS   float64 `json:"abs_residual_p99_ms"`
	AbsMaxMS   float64 `json:"abs_residual_max_ms"`
	PendingNow int     `json:"pending"`
}

// Snapshot exports the track.
func (t *ForecastTrack) Snapshot() TrackSnapshot {
	return TrackSnapshot{
		Matched:    t.matched,
		Over:       t.over,
		Under:      t.under,
		MAPEPct:    t.MAPE(),
		MeanErrMS:  t.MeanErrorMS(),
		AbsP50MS:   t.absResid.Quantile(50).Milliseconds(),
		AbsP95MS:   t.absResid.Quantile(95).Milliseconds(),
		AbsP99MS:   t.absResid.Quantile(99).Milliseconds(),
		AbsMaxMS:   t.absResid.Max().Milliseconds(),
		PendingNow: len(t.pending),
	}
}

// seriesKey identifies one subtask's forecast series.
type seriesKey struct {
	task  string
	stage int
}

// ForecastSeries holds both tracked quantities for one subtask.
type ForecastSeries struct {
	Task  string
	Stage int
	Exec  *ForecastTrack // eq. (3) execution-latency forecasts
	Comm  *ForecastTrack // eq. (5) communication-delay forecasts
}

// ForecastSet tracks forecast error for every (task, stage).
type ForecastSet struct {
	series map[seriesKey]*ForecastSeries
}

// NewForecastSet returns an empty set.
func NewForecastSet() *ForecastSet {
	return &ForecastSet{series: map[seriesKey]*ForecastSeries{}}
}

// Series returns the (task, stage) series, creating it on first use.
func (f *ForecastSet) Series(task string, stage int) *ForecastSeries {
	k := seriesKey{task, stage}
	s, ok := f.series[k]
	if !ok {
		s = &ForecastSeries{Task: task, Stage: stage,
			Exec: NewForecastTrack(), Comm: NewForecastTrack()}
		f.series[k] = s
	}
	return s
}

// All returns every series sorted by (task, stage) for deterministic
// rendering.
func (f *ForecastSet) All() []*ForecastSeries {
	out := make([]*ForecastSeries, 0, len(f.series))
	for _, s := range f.series {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Task != out[j].Task {
			return out[i].Task < out[j].Task
		}
		return out[i].Stage < out[j].Stage
	})
	return out
}

// SeriesSnapshot is the exported state of one subtask's forecasts.
type SeriesSnapshot struct {
	Task  string        `json:"task"`
	Stage int           `json:"stage"`
	Exec  TrackSnapshot `json:"exec"`
	Comm  TrackSnapshot `json:"comm"`
}

// Snapshot exports every series.
func (f *ForecastSet) Snapshot() []SeriesSnapshot {
	all := f.All()
	out := make([]SeriesSnapshot, len(all))
	for i, s := range all {
		out[i] = SeriesSnapshot{Task: s.Task, Stage: s.Stage,
			Exec: s.Exec.Snapshot(), Comm: s.Comm.Snapshot()}
	}
	return out
}

func (s SeriesSnapshot) String() string {
	return fmt.Sprintf("%s/%d exec MAPE %.1f%% comm MAPE %.1f%%",
		s.Task, s.Stage, s.Exec.MAPEPct, s.Comm.MAPEPct)
}
