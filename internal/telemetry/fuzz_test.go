package telemetry

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/sim"
)

// FuzzHistogramRecordQuantile feeds arbitrary byte streams (decoded as
// int64 durations, negatives included — Record clamps them) into the
// log-linear Histogram and checks its aggregate invariants: exact count
// and sum, a consistent [Min, Max] envelope, quantiles inside it and
// non-decreasing in p, and bucket bounds that actually contain each
// recorded value.
func FuzzHistogramRecordQuantile(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}) // -1: clamps to 0
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // MaxInt64
	seed := make([]byte, 0, 64)
	for _, v := range []uint64{1, 63, 64, 65, 1000, 123456789, 1 << 40} {
		seed = binary.LittleEndian.AppendUint64(seed, v)
	}
	f.Add(seed)
	f.Fuzz(func(t *testing.T, data []byte) {
		var h Histogram
		var (
			n        uint64
			sum      sim.Time
			min, max sim.Time
		)
		for len(data) >= 8 {
			v := sim.Time(int64(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
			h.Record(v)
			if v < 0 {
				v = 0
			}
			if n == 0 || v < min {
				min = v
			}
			if v > max {
				max = v
			}
			n++
			// Mirror Record's saturating sum (found by fuzzing: two
			// ~century-scale durations used to wrap the mean negative).
			if sum > sim.Time(math.MaxInt64)-v {
				sum = sim.Time(math.MaxInt64)
			} else {
				sum += v
			}

			// The bucket chosen for v must actually contain it.
			idx := bucketIndex(int64(v))
			lo, hi := bucketBounds(idx)
			if int64(v) <= lo || int64(v) > hi {
				t.Fatalf("value %d landed in bucket %d = (%d, %d]", v, idx, lo, hi)
			}
		}
		if h.Count() != n {
			t.Fatalf("Count = %d, want %d", h.Count(), n)
		}
		if h.Sum() != sum {
			t.Fatalf("Sum = %v, want %v", h.Sum(), sum)
		}
		if h.Min() != min || h.Max() != max {
			t.Fatalf("envelope [%v, %v], want [%v, %v]", h.Min(), h.Max(), min, max)
		}
		if n == 0 {
			if q := h.Quantile(50); q != 0 {
				t.Fatalf("Quantile on empty histogram = %v, want 0", q)
			}
			return
		}
		if mean := h.Mean(); mean < min || mean > max {
			t.Fatalf("Mean %v outside [%v, %v]", mean, min, max)
		}
		prev := sim.Time(-1)
		for _, p := range []float64{0, 10, 25, 50, 75, 90, 99, 100} {
			q := h.Quantile(p)
			if q < min || q > max {
				t.Fatalf("Quantile(%v) = %v outside [%v, %v]", p, q, min, max)
			}
			if q < prev {
				t.Fatalf("Quantile(%v) = %v below previous quantile %v", p, q, prev)
			}
			prev = q
		}
	})
}
