package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand/v2"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestBucketIndexBoundsContiguous(t *testing.T) {
	// Every bucket's (lo, hi] range must contain exactly the values that
	// map to it, and adjacent buckets must tile the int64 range.
	for idx := 0; idx < nBuckets; idx++ {
		lo, hi := bucketBounds(idx)
		if hi <= lo {
			t.Fatalf("bucket %d: empty range (%d, %d]", idx, lo, hi)
		}
		if got := bucketIndex(hi); got != idx {
			t.Fatalf("bucket %d: hi %d maps to bucket %d", idx, hi, got)
		}
		if lo >= 0 {
			if got := bucketIndex(lo + 1); got != idx {
				t.Fatalf("bucket %d: lo+1 %d maps to bucket %d", idx, lo+1, got)
			}
		}
		if idx > 0 {
			_, prevHi := bucketBounds(idx - 1)
			if prevHi != lo {
				t.Fatalf("gap between bucket %d (hi %d) and %d (lo %d)", idx-1, prevHi, idx, lo)
			}
		}
	}
}

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for _, v := range []sim.Time{10, 20, 30, 40} {
		h.Record(v * sim.Millisecond)
	}
	if h.Count() != 4 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != 10*sim.Millisecond || h.Max() != 40*sim.Millisecond {
		t.Errorf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if h.Mean() != 25*sim.Millisecond {
		t.Errorf("Mean = %v", h.Mean())
	}
	if h.Sum() != 100*sim.Millisecond {
		t.Errorf("Sum = %v", h.Sum())
	}
}

func TestHistogramNegativeClampsToZero(t *testing.T) {
	var h Histogram
	h.Record(-5 * sim.Millisecond)
	if h.Count() != 1 || h.Min() != 0 || h.Max() != 0 {
		t.Errorf("negative record: count=%d min=%v max=%v", h.Count(), h.Min(), h.Max())
	}
}

func TestHistogramQuantileRelativeError(t *testing.T) {
	// The log-linear layout bounds relative quantile error at 1/halfSub.
	var h Histogram
	rng := rand.New(rand.NewPCG(3, 5))
	var xs []float64
	for i := 0; i < 50000; i++ {
		v := sim.Time(rng.Int64N(int64(200*sim.Millisecond))) + sim.Microsecond
		h.Record(v)
		xs = append(xs, float64(v))
	}
	for _, p := range []float64{50, 90, 95, 99} {
		got := float64(h.Quantile(p))
		// Exact percentile via sort-free selection is overkill; a second
		// histogram pass with fine linear buckets gives a tight reference.
		want := exactPercentile(xs, p)
		if rel := math.Abs(got-want) / want; rel > 2.0/halfSub {
			t.Errorf("p%.0f: histogram %v vs exact %v (rel err %.4f)", p, got, want, rel)
		}
	}
	if float64(h.Quantile(0)) < float64min(xs) || float64(h.Quantile(100)) > float64max(xs) {
		t.Error("quantiles escape the observed envelope")
	}
}

func exactPercentile(xs []float64, p float64) float64 {
	cp := append([]float64(nil), xs...)
	// insertion-free: use sort via stdlib
	quicksort(cp, 0, len(cp)-1)
	rank := p / 100 * float64(len(cp)-1)
	lo := int(rank)
	if lo >= len(cp)-1 {
		return cp[len(cp)-1]
	}
	frac := rank - float64(lo)
	return cp[lo] + frac*(cp[lo+1]-cp[lo])
}

func quicksort(xs []float64, lo, hi int) {
	if lo >= hi {
		return
	}
	p := xs[(lo+hi)/2]
	i, j := lo, hi
	for i <= j {
		for xs[i] < p {
			i++
		}
		for xs[j] > p {
			j--
		}
		if i <= j {
			xs[i], xs[j] = xs[j], xs[i]
			i++
			j--
		}
	}
	quicksort(xs, lo, j)
	quicksort(xs, i, hi)
}

func float64min(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

func float64max(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func TestLinearHistogramClampsToRange(t *testing.T) {
	h := NewLinearHistogram(-1, 1, 200)
	h.Record(-5)  // clamps into the lowest bucket
	h.Record(0.5) // in range
	h.Record(3)   // clamps into the highest bucket
	if h.Count() != 3 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Min() != -5 || h.Max() != 3 {
		t.Errorf("Min/Max track raw values: %v/%v", h.Min(), h.Max())
	}
	bs := h.Buckets()
	if len(bs) != 3 {
		t.Fatalf("buckets = %d, want 3 occupied", len(bs))
	}
	if bs[0].Lo != -1 {
		t.Errorf("lowest occupied bucket starts at %v, want -1", bs[0].Lo)
	}
}

func TestLinearHistogramBadConfigPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("inverted range did not panic")
		}
	}()
	NewLinearHistogram(1, -1, 10)
}

func TestRegistryGetOrCreateIdentity(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", Label{"task", "aaw"})
	b := r.Counter("x_total", Label{"task", "aaw"})
	c := r.Counter("x_total", Label{"task", "other"})
	if a != b {
		t.Error("same name+labels returned distinct counters")
	}
	if a == c {
		t.Error("different labels returned the same counter")
	}
	if r.Histogram("h") != r.Histogram("h") {
		t.Error("same-name histograms distinct")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Error("same-name gauges distinct")
	}
	if r.Linear("l", 0, 1, 10) != r.Linear("l", 0, 1, 10) {
		t.Error("same-name linear histograms distinct")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	r := NewRegistry()
	r.Counter("rm_test_total", Label{"task", "aaw"}).Add(7)
	r.Gauge("rm_test_util").Set(0.25)
	h := r.Histogram("rm_test_latency")
	h.Record(10 * sim.Millisecond)
	h.Record(20 * sim.Millisecond)
	h.Record(500 * sim.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`rm_test_total{task="aaw"} 7`,
		"rm_test_util 0.25",
		"rm_test_latency_count 3",
		`rm_test_latency_bucket{le="+Inf"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Bucket lines must be cumulative and in increasing-le order.
	var lastCum uint64
	var lastLe float64
	seen := 0
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "rm_test_latency_bucket{le=\"") || strings.Contains(line, "+Inf") {
			continue
		}
		le, cum, err := parseBucketLine(line)
		if err != nil {
			t.Fatalf("unparseable bucket line %q: %v", line, err)
		}
		if le <= lastLe && seen > 0 {
			t.Errorf("le out of order: %v after %v", le, lastLe)
		}
		if cum < lastCum {
			t.Errorf("cumulative count decreased: %d after %d", cum, lastCum)
		}
		lastLe, lastCum = le, cum
		seen++
	}
	if seen == 0 {
		t.Error("no bucket lines found")
	}
}

// parseBucketLine parses `name{le="X"} N`.
func parseBucketLine(line string) (le float64, cum uint64, err error) {
	i := strings.Index(line, `le="`)
	j := strings.Index(line[i+4:], `"`)
	if le, err = strconv.ParseFloat(line[i+4:i+4+j], 64); err != nil {
		return 0, 0, err
	}
	fields := strings.Fields(line)
	cum, err = strconv.ParseUint(fields[len(fields)-1], 10, 64)
	return le, cum, err
}

func TestForecastTrackResidualsAndMAPE(t *testing.T) {
	tr := NewForecastTrack()
	// Over-prediction: pred 120ms vs obs 100ms → |resid| 20ms, 20% APE.
	tr.Predict(0, 120*sim.Millisecond)
	tr.Observe(0, 100*sim.Millisecond)
	// Under-prediction: pred 90ms vs obs 100ms → 10ms, 10% APE.
	tr.Predict(1, 90*sim.Millisecond)
	tr.Observe(1, 100*sim.Millisecond)
	// Unmatched observation is dropped.
	tr.Observe(7, 55*sim.Millisecond)

	if tr.Matched() != 2 {
		t.Errorf("Matched = %d, want 2", tr.Matched())
	}
	if got := tr.MAPE(); math.Abs(got-15) > 1e-9 {
		t.Errorf("MAPE = %v, want 15", got)
	}
	if got := tr.MeanErrorMS(); math.Abs(got-5) > 1e-9 {
		t.Errorf("MeanErrorMS = %v, want +5 (net over-prediction)", got)
	}
	s := tr.Snapshot()
	if s.Over != 1 || s.Under != 1 || s.PendingNow != 0 {
		t.Errorf("snapshot = %+v", s)
	}
	if s.AbsMaxMS != 20 {
		t.Errorf("AbsMaxMS = %v, want 20", s.AbsMaxMS)
	}
}

func TestForecastSetSortedSnapshot(t *testing.T) {
	f := NewForecastSet()
	f.Series("b", 1)
	f.Series("a", 2)
	f.Series("a", 0)
	snap := f.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("series = %d", len(snap))
	}
	if snap[0].Task != "a" || snap[0].Stage != 0 || snap[2].Task != "b" {
		t.Errorf("snapshot not sorted: %+v", snap)
	}
}

// TestNilRecorderSafe calls every exported method on a nil *Recorder:
// each must be a no-op, never a panic — this is the disabled state.
func TestNilRecorderSafe(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Error("nil recorder reports enabled")
	}
	r.RecordExec("a", 0, 0, 0, 10, 0, 1, 2)
	r.RecordJobWait(0, 5)
	r.RecordMessage("a", 1, 0, 0, 1, 100, 0, 1, 2)
	r.RecordStage("a", 0, 0, sim.Millisecond, sim.Second)
	r.RecordEndToEnd("a", 0, sim.Millisecond, sim.Second, false)
	r.RecordAdaptation(0, "a", 0, 0, "replicate", 1)
	r.RecordForecastEval("a", 0)
	r.SetProcUtil(0, 0.5)
	r.SetNetUtil(0.5)
	r.Predict("a", 0, 0, sim.Millisecond, sim.Millisecond)
	r.ObserveForecast("a", 0, 0, sim.Millisecond, sim.Millisecond)
	if r.Registry() != nil || r.Forecast() != nil || r.Spans() != nil || r.Instants() != nil {
		t.Error("nil recorder exposes non-nil subsystems")
	}
	if s := r.Snapshot(); s.Spans != 0 {
		t.Errorf("nil snapshot = %+v", s)
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil WritePrometheus wrote %d bytes, err %v", buf.Len(), err)
	}
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Errorf("nil WriteChromeTrace: %v", err)
	}
}

func TestRecorderEndToEnd(t *testing.T) {
	r := New(DefaultConfig())
	// Period 0 of task "aaw": predict, execute, message, observe.
	r.Predict("aaw", 0, 0, 100*sim.Millisecond, 10*sim.Millisecond)
	r.RecordExec("aaw", 0, 0, 2, 50, 0, sim.Millisecond, 90*sim.Millisecond)
	r.RecordJobWait(2, sim.Millisecond)
	r.RecordMessage("aaw", 1, 0, 2, 3, 4096, 90*sim.Millisecond, 92*sim.Millisecond, 95*sim.Millisecond)
	r.RecordMessage("", -1, -1, 0, 1, 128, 0, sim.Millisecond, 2*sim.Millisecond)
	r.RecordStage("aaw", 0, 0, 90*sim.Millisecond, 200*sim.Millisecond)
	r.RecordEndToEnd("aaw", 0, 95*sim.Millisecond, sim.Second, false)
	r.ObserveForecast("aaw", 0, 0, 90*sim.Millisecond, 5*sim.Millisecond)
	r.RecordAdaptation(100*sim.Millisecond, "aaw", 0, 0, "replicate", 2)
	r.SetProcUtil(2, 0.4)
	r.SetNetUtil(0.1)

	snap := r.Snapshot()
	if len(snap.Stages) != 1 || snap.Stages[0].Task != "aaw" || snap.Stages[0].Stage != 0 {
		t.Fatalf("stages = %+v", snap.Stages)
	}
	st := snap.Stages[0]
	if st.Latency.Count != 1 || st.Latency.P50MS != 90 {
		t.Errorf("stage latency = %+v", st.Latency)
	}
	if st.JobLatency.Count != 1 {
		t.Errorf("job latency = %+v", st.JobLatency)
	}
	if st.Slack.Count != 1 || math.Abs(st.Slack.Mean-0.55) > 0.01 {
		t.Errorf("slack = %+v, want mean ≈ 0.55", st.Slack)
	}
	if len(snap.Tasks) != 1 || snap.Tasks[0].Instances != 1 || snap.Tasks[0].Missed != 0 {
		t.Errorf("tasks = %+v", snap.Tasks)
	}
	if snap.Network.WireMsgs != 2 || snap.Network.PayloadBytes != 4096+128 {
		t.Errorf("network = %+v", snap.Network)
	}
	if snap.Network.BufferDelay.Count != 2 {
		t.Errorf("buffer delay count = %d, want 2", snap.Network.BufferDelay.Count)
	}
	if len(snap.Forecast) != 1 {
		t.Fatalf("forecast series = %d", len(snap.Forecast))
	}
	fs := snap.Forecast[0]
	if fs.Exec.Matched != 1 || fs.Comm.Matched != 1 {
		t.Errorf("forecast matches = %+v", fs)
	}
	// exec: pred 100 obs 90 → ~11.1% APE; comm: pred 10 obs 5 → 100%.
	if math.Abs(fs.Exec.MAPEPct-100.0/9) > 0.01 {
		t.Errorf("exec MAPE = %v, want ≈11.11", fs.Exec.MAPEPct)
	}
	if snap.Counters[`rm_adaptations_total{kind="replicate"}`] != 1 {
		t.Errorf("adaptation counter missing: %v", snap.Counters)
	}
	if snap.Gauges[`rm_cpu_util{proc="2"}`] != 0.4 || snap.Gauges["rm_net_util"] != 0.1 {
		t.Errorf("gauges = %v", snap.Gauges)
	}
	if snap.Spans != 3 || snap.Instants != 1 {
		// 1 exec span + 2 message spans; RecordJobWait is metrics-only.
		t.Errorf("spans/instants = %d/%d, want 3/1", snap.Spans, snap.Instants)
	}
}

func TestPredictFinalStageSkipsComm(t *testing.T) {
	r := New(DefaultConfig())
	r.Predict("aaw", 2, 0, 50*sim.Millisecond, -1)
	r.ObserveForecast("aaw", 2, 0, 45*sim.Millisecond, -1)
	fs := r.Snapshot().Forecast[0]
	if fs.Exec.Matched != 1 || fs.Comm.Matched != 0 {
		t.Errorf("final stage: exec %d matches, comm %d — want 1, 0",
			fs.Exec.Matched, fs.Comm.Matched)
	}
}

func TestWriteChromeTraceValidAndLoadable(t *testing.T) {
	r := New(DefaultConfig())
	r.RecordExec("aaw", 0, 0, 2, 50, 0, sim.Millisecond, 90*sim.Millisecond)
	r.RecordMessage("aaw", 1, 0, 2, 3, 4096, 90*sim.Millisecond, 92*sim.Millisecond, 95*sim.Millisecond)
	r.RecordMessage("", -1, -1, 0, 1, 128, sim.Millisecond, sim.Millisecond, 2*sim.Millisecond)
	r.RecordAdaptation(100*sim.Millisecond, "aaw", 0, 0, "replicate", 2)

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			TS   float64 `json:"ts"`
			PID  int     `json:"pid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	var exec, net, inst, meta int
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			if e.PID == pidNetwork {
				net++
			} else {
				exec++
			}
		case "i":
			inst++
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
		if e.TS < 0 {
			t.Errorf("negative timestamp in %q", e.Name)
		}
	}
	if exec != 1 {
		t.Errorf("exec slices = %d, want 1", exec)
	}
	// Task message: buffer slice + wire slice; sync message: wire only
	// (zero buffer delay is elided).
	if net != 3 {
		t.Errorf("network slices = %d, want 3", net)
	}
	if inst != 1 || meta == 0 {
		t.Errorf("instants = %d, metadata = %d", inst, meta)
	}
}

func TestWriteChromeTraceEmptyIsValid(t *testing.T) {
	var buf bytes.Buffer
	if err := New(Config{}).WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("empty trace invalid: %v", err)
	}
	if _, ok := doc["traceEvents"].([]any); !ok {
		t.Errorf("traceEvents missing or not an array: %v", doc)
	}
}

func TestHTTPHandlerEndpoints(t *testing.T) {
	r := New(DefaultConfig())
	r.RecordEndToEnd("aaw", 0, 95*sim.Millisecond, sim.Second, false)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	for path, wantSub := range map[string]string{
		"/metrics":       "rm_e2e_latency_count",
		"/snapshot.json": `"tasks"`,
		"/trace.json":    "traceEvents",
		"/":              "/metrics",
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(resp.Body); err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		if !strings.Contains(buf.String(), wantSub) {
			t.Errorf("GET %s missing %q in:\n%s", path, wantSub, buf.String())
		}
	}
}

// BenchmarkNilRecorder measures the disabled-telemetry cost at a subtask
// completion site: one RecordExec call on a nil receiver. The acceptance
// bar is < 2 ns/op — a single predictable branch.
func BenchmarkNilRecorder(b *testing.B) {
	var r *Recorder
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.RecordExec("aaw", 0, i, 2, 50, 0, 1, 2)
	}
}

// BenchmarkEnabledRecordExec is the enabled-path cost for comparison.
func BenchmarkEnabledRecordExec(b *testing.B) {
	r := New(Config{CaptureSpans: false})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.RecordExec("aaw", 0, i, 2, 50, 0, 1, 2)
	}
}

func TestEnabledHotPathDoesNotAllocate(t *testing.T) {
	r := New(Config{CaptureSpans: false})
	r.RecordExec("aaw", 0, 0, 2, 50, 0, 1, 2) // warm the handle cache
	allocs := testing.AllocsPerRun(1000, func() {
		r.RecordExec("aaw", 0, 1, 2, 50, 0, 1, 2)
		r.RecordStage("aaw", 0, 1, sim.Millisecond, sim.Second)
		r.RecordJobWait(2, sim.Microsecond)
	})
	if allocs != 0 {
		t.Errorf("enabled hot path allocates %.1f per run, want 0", allocs)
	}
}
