package telemetry

import (
	"fmt"
	"net"
	"net/http"
)

// Handler returns the live-exposition HTTP handler:
//
//	/metrics        Prometheus text format
//	/snapshot.json  aggregate JSON snapshot
//	/trace.json     Chrome trace_event JSON
//
// All endpoints are safe to hit while a run is in flight (the recorder's
// mutex serializes against hot-path recording).
func (r *Recorder) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteSnapshot(w)
	})
	mux.HandleFunc("/trace.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteChromeTrace(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		fmt.Fprintln(w, "rm telemetry: /metrics | /snapshot.json | /trace.json")
	})
	return mux
}

// Serve starts the live exposition on addr (e.g. ":8080") in a
// background goroutine and returns the server and its bound address;
// callers stop it with srv.Close.
func (r *Recorder) Serve(addr string) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("telemetry: %w", err)
	}
	srv := &http.Server{Handler: r.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
