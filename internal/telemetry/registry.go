package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Label is one metric dimension.
type Label struct{ Key, Value string }

// labelString pre-renders labels in Prometheus form ({k="v",...}) so the
// hot path never formats strings.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = fmt.Sprintf("%s=%q", l.Key, l.Value)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// Counter is a monotonically increasing count.
type Counter struct {
	name   string
	labels string
	n      uint64
}

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.n += n }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Gauge is a point-in-time value.
type Gauge struct {
	name   string
	labels string
	v      float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) { g.v = v }

// Value returns the current value.
func (g *Gauge) Value() float64 { return g.v }

// namedHist is a registered duration histogram.
type namedHist struct {
	name   string
	labels string
	h      *Histogram
}

// namedLinear is a registered ratio histogram.
type namedLinear struct {
	name   string
	labels string
	h      *LinearHistogram
}

// Registry owns named counters, gauges, and histograms, and renders them
// in Prometheus text exposition format. It performs no locking: the
// Recorder serializes access (the simulation itself is single-threaded).
type Registry struct {
	counters []*Counter
	gauges   []*Gauge
	hists    []*namedHist
	linears  []*namedLinear
	index    map[string]any
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: map[string]any{}}
}

func key(name, labels string) string { return name + labels }

// Counter returns the counter with the given name and labels, creating
// it on first use.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	ls := labelString(labels)
	if c, ok := r.index[key(name, ls)].(*Counter); ok {
		return c
	}
	c := &Counter{name: name, labels: ls}
	r.counters = append(r.counters, c)
	r.index[key(name, ls)] = c
	return c
}

// Gauge returns the gauge with the given name and labels, creating it on
// first use.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	ls := labelString(labels)
	if g, ok := r.index[key(name, ls)].(*Gauge); ok {
		return g
	}
	g := &Gauge{name: name, labels: ls}
	r.gauges = append(r.gauges, g)
	r.index[key(name, ls)] = g
	return g
}

// Histogram returns the duration histogram with the given name and
// labels, creating it on first use.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	ls := labelString(labels)
	if h, ok := r.index[key(name, ls)].(*namedHist); ok {
		return h.h
	}
	h := &namedHist{name: name, labels: ls, h: &Histogram{}}
	r.hists = append(r.hists, h)
	r.index[key(name, ls)] = h
	return h.h
}

// Linear returns the ratio histogram with the given name and labels over
// [lo, hi] with n buckets, creating it on first use.
func (r *Registry) Linear(name string, lo, hi float64, n int, labels ...Label) *LinearHistogram {
	ls := labelString(labels)
	if h, ok := r.index[key(name, ls)].(*namedLinear); ok {
		return h.h
	}
	h := &namedLinear{name: name, labels: ls, h: NewLinearHistogram(lo, hi, n)}
	r.linears = append(r.linears, h)
	r.index[key(name, ls)] = h
	return h.h
}

// quantileLabels splices a le/quantile label into a pre-rendered label
// string.
func spliceLabel(labels, extra string) string {
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// Values renders every counter and gauge as a name+labels → value map —
// the JSON-friendly view the rmserved /v1/stats endpoint embeds.
// Histograms are summarized to their _count; callers needing quantiles
// use the Prometheus exposition.
func (r *Registry) Values() map[string]float64 {
	out := make(map[string]float64, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.linears))
	for _, c := range r.counters {
		out[c.name+c.labels] = float64(c.n)
	}
	for _, g := range r.gauges {
		out[g.name+g.labels] = g.v
	}
	for _, h := range r.hists {
		out[h.name+h.labels+"_count"] = float64(h.h.Count())
	}
	for _, h := range r.linears {
		out[h.name+h.labels+"_count"] = float64(h.h.Count())
	}
	return out
}

// WritePrometheus renders every metric in Prometheus text exposition
// format (durations in seconds, per convention). Metric families are
// sorted by name+labels for deterministic output; histogram buckets stay
// in increasing-le order as the format requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var blocks []string
	for _, c := range r.counters {
		blocks = append(blocks, fmt.Sprintf("%s%s %d\n", c.name, c.labels, c.n))
	}
	for _, g := range r.gauges {
		blocks = append(blocks, fmt.Sprintf("%s%s %g\n", g.name, g.labels, g.v))
	}
	for _, h := range r.hists {
		var b strings.Builder
		var cum uint64
		for _, bk := range h.h.Buckets() {
			cum += bk.Count
			le := fmt.Sprintf("le=%q", fmt.Sprintf("%g", bk.Hi/float64(sim.Second)))
			fmt.Fprintf(&b, "%s_bucket%s %d\n", h.name, spliceLabel(h.labels, le), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", h.name, spliceLabel(h.labels, `le="+Inf"`), h.h.Count())
		fmt.Fprintf(&b, "%s_sum%s %g\n", h.name, h.labels, h.h.Sum().Seconds())
		fmt.Fprintf(&b, "%s_count%s %d\n", h.name, h.labels, h.h.Count())
		blocks = append(blocks, b.String())
	}
	for _, h := range r.linears {
		var b strings.Builder
		var cum uint64
		for _, bk := range h.h.Buckets() {
			cum += bk.Count
			le := fmt.Sprintf("le=%q", fmt.Sprintf("%g", bk.Hi))
			fmt.Fprintf(&b, "%s_bucket%s %d\n", h.name, spliceLabel(h.labels, le), cum)
		}
		fmt.Fprintf(&b, "%s_bucket%s %d\n", h.name, spliceLabel(h.labels, `le="+Inf"`), h.h.Count())
		fmt.Fprintf(&b, "%s_sum%s %g\n", h.name, h.labels, h.h.sum)
		fmt.Fprintf(&b, "%s_count%s %d\n", h.name, h.labels, h.h.Count())
		blocks = append(blocks, b.String())
	}
	sort.Strings(blocks)
	for _, bl := range blocks {
		if _, err := io.WriteString(w, bl); err != nil {
			return err
		}
	}
	return nil
}
