package telemetry

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/sim"
)

// chromeEvent is one trace_event entry. Timestamps are microseconds of
// simulation time, the unit the trace_event format expects.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level trace_event JSON object.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Synthetic pids: nodes use their id, the network medium and the control
// plane (allocator/monitor instants) get their own rows.
const (
	pidNetwork = 1000
	pidControl = 1001
)

func us(t sim.Time) float64 { return t.Microseconds() }

// WriteChromeTrace renders the span/event buffers in Chrome trace_event
// JSON, loadable in Perfetto or chrome://tracing: one process per node
// (threads = pipeline stages), one for the network medium (threads =
// source nodes), and one for control-plane instants. A nil or
// span-capture-disabled recorder writes an empty trace.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	trace := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if r != nil {
		r.mu.Lock()
		defer r.mu.Unlock()

		meta := func(pid int, name string) {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]any{"name": name},
			})
		}
		seenNode := map[int]bool{}
		node := func(pid int) {
			if !seenNode[pid] {
				seenNode[pid] = true
				meta(pid, fmt.Sprintf("node %d", pid))
			}
		}
		meta(pidNetwork, "network segment")
		meta(pidControl, "resource manager")

		for _, s := range r.spans {
			switch s.Kind {
			case KindExec:
				node(int(s.Proc))
				dur := us(s.End - s.Mid)
				wait := us(s.Mid - s.Start)
				trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
					Name: fmt.Sprintf("%s/st%d #%d", s.Task, s.Stage, s.Period),
					Cat:  "exec", Ph: "X", TS: us(s.Mid), Dur: &dur,
					PID: int(s.Proc), TID: int(s.Stage),
					Args: map[string]any{"items": s.Items, "queue_wait_us": wait, "period": s.Period},
				})
			case KindMessage:
				name := fmt.Sprintf("%s→st%d #%d", s.Task, s.Stage, s.Period)
				if s.Task == "" {
					name = "sync"
				}
				if buf := us(s.Mid - s.Start); buf > 0 {
					trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
						Name: name + " (buffer)",
						Cat:  "net-buffer", Ph: "X", TS: us(s.Start), Dur: &buf,
						PID: pidNetwork, TID: int(s.From),
						Args: map[string]any{"bytes": s.Items, "to": s.Proc},
					})
				}
				wire := us(s.End - s.Mid)
				trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
					Name: name,
					Cat:  "net-wire", Ph: "X", TS: us(s.Mid), Dur: &wire,
					PID: pidNetwork, TID: int(s.From),
					Args: map[string]any{"bytes": s.Items, "to": s.Proc},
				})
			}
		}
		for _, e := range r.instants {
			trace.TraceEvents = append(trace.TraceEvents, chromeEvent{
				Name: e.Kind, Cat: "adaptation", Ph: "i", TS: us(e.At),
				PID: pidControl, TID: int(e.Stage) + 1, S: "p",
				Args: map[string]any{"task": e.Task, "period": e.Period, "value": e.Value},
			})
		}
	}
	enc := json.NewEncoder(w)
	if err := enc.Encode(trace); err != nil {
		return fmt.Errorf("telemetry: chrome trace: %w", err)
	}
	return nil
}
