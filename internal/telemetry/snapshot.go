package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// HistSnapshot is the exported state of one duration histogram, in
// milliseconds (the unit the paper reports in).
type HistSnapshot struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MinMS  float64 `json:"min_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

func histSnapshot(h *Histogram) HistSnapshot {
	return HistSnapshot{
		Count:  h.Count(),
		MeanMS: h.Mean().Milliseconds(),
		MinMS:  h.Min().Milliseconds(),
		P50MS:  h.Quantile(50).Milliseconds(),
		P95MS:  h.Quantile(95).Milliseconds(),
		P99MS:  h.Quantile(99).Milliseconds(),
		MaxMS:  h.Max().Milliseconds(),
	}
}

// RatioSnapshot is the exported state of one ratio histogram, with its
// bucketed CDF so slack distributions plot directly.
type RatioSnapshot struct {
	Count   uint64        `json:"count"`
	Mean    float64       `json:"mean"`
	Min     float64       `json:"min"`
	P05     float64       `json:"p05"`
	P50     float64       `json:"p50"`
	Max     float64       `json:"max"`
	Buckets []RatioBucket `json:"buckets,omitempty"`
}

// RatioBucket is one non-empty slack-histogram bin.
type RatioBucket struct {
	Lo    float64 `json:"lo"`
	Hi    float64 `json:"hi"`
	Count uint64  `json:"count"`
}

func ratioSnapshot(h *LinearHistogram) RatioSnapshot {
	s := RatioSnapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
	}
	if h.Count() > 0 {
		s.P05 = h.Quantile(5)
		s.P50 = h.Quantile(50)
	}
	for _, b := range h.Buckets() {
		s.Buckets = append(s.Buckets, RatioBucket{Lo: b.Lo, Hi: b.Hi, Count: b.Count})
	}
	return s
}

// StageSnapshot is the exported telemetry of one (task, stage).
type StageSnapshot struct {
	Task          string        `json:"task"`
	Stage         int           `json:"stage"`
	Latency       HistSnapshot  `json:"latency"`
	JobLatency    HistSnapshot  `json:"job_latency"`
	Slack         RatioSnapshot `json:"slack_ratio"`
	ForecastEvals uint64        `json:"forecast_evals"`
}

// TaskSnapshot is the exported end-to-end telemetry of one task.
type TaskSnapshot struct {
	Task      string        `json:"task"`
	Instances uint64        `json:"instances"`
	Missed    uint64        `json:"missed"`
	Latency   HistSnapshot  `json:"latency"`
	Slack     RatioSnapshot `json:"slack_ratio"`
}

// NetworkSnapshot is the exported segment telemetry: the buffer-vs-wire
// delay split of eqs. (4)–(6).
type NetworkSnapshot struct {
	BufferDelay  HistSnapshot `json:"buffer_delay"`
	WireDelay    HistSnapshot `json:"wire_delay"`
	PayloadBytes uint64       `json:"payload_bytes"`
	WireMsgs     uint64       `json:"wire_msgs"`
	LocalMsgs    uint64       `json:"local_msgs"`
}

// Snapshot is the full JSON view of a recorder.
type Snapshot struct {
	Stages    []StageSnapshot    `json:"stages"`
	Tasks     []TaskSnapshot     `json:"tasks"`
	Network   NetworkSnapshot    `json:"network"`
	QueueWait HistSnapshot       `json:"cpu_queue_wait"`
	Forecast  []SeriesSnapshot   `json:"forecast"`
	Counters  map[string]uint64  `json:"counters"`
	Gauges    map[string]float64 `json:"gauges"`
	Spans     int                `json:"spans"`
	Instants  int                `json:"instants"`
}

// Snapshot exports the recorder's aggregate state; it is safe to call
// while a run is in flight. A nil recorder yields a zero snapshot.
func (r *Recorder) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	var snap Snapshot
	keys := make([]seriesKey, 0, len(r.stages))
	for k := range r.stages {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].task != keys[j].task {
			return keys[i].task < keys[j].task
		}
		return keys[i].stage < keys[j].stage
	})
	for _, k := range keys {
		h := r.stages[k]
		snap.Stages = append(snap.Stages, StageSnapshot{
			Task:          k.task,
			Stage:         k.stage,
			Latency:       histSnapshot(h.stageLat),
			JobLatency:    histSnapshot(h.jobLat),
			Slack:         ratioSnapshot(h.slack),
			ForecastEvals: h.evals.Value(),
		})
	}
	names := make([]string, 0, len(r.tasks))
	for name := range r.tasks {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.tasks[name]
		snap.Tasks = append(snap.Tasks, TaskSnapshot{
			Task:      name,
			Instances: h.instances.Value(),
			Missed:    h.missed.Value(),
			Latency:   histSnapshot(h.e2eLat),
			Slack:     ratioSnapshot(h.e2eSlack),
		})
	}
	snap.Network = NetworkSnapshot{
		BufferDelay:  histSnapshot(r.msgBuffer),
		WireDelay:    histSnapshot(r.msgWire),
		PayloadBytes: r.msgBytes.Value(),
		WireMsgs:     r.msgRemote.Value(),
		LocalMsgs:    r.msgLocal.Value(),
	}
	snap.QueueWait = histSnapshot(r.queueWait)
	snap.Forecast = r.forecast.Snapshot()
	snap.Counters = map[string]uint64{}
	for _, c := range r.reg.counters {
		snap.Counters[c.name+c.labels] = c.n
	}
	snap.Gauges = map[string]float64{}
	for _, g := range r.reg.gauges {
		snap.Gauges[g.name+g.labels] = g.v
	}
	snap.Spans = len(r.spans)
	snap.Instants = len(r.instants)
	return snap
}

// WriteSnapshot writes the snapshot as indented JSON.
func (r *Recorder) WriteSnapshot(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r.Snapshot()); err != nil {
		return fmt.Errorf("telemetry: %w", err)
	}
	return nil
}

// WritePrometheus renders the registry in Prometheus text format; a nil
// recorder writes nothing.
func (r *Recorder) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.reg.WritePrometheus(w)
}
