package telemetry

import (
	"fmt"
	"math"
	"math/bits"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Histogram is an HDR-style log-linear histogram of non-negative
// durations: values are bucketed by power-of-two magnitude, each
// magnitude split into linear sub-buckets, bounding the relative
// quantile error at 1/halfSub (≈3 %) with a fixed ~15 KB footprint and
// zero allocation per Record. Quantiles are estimated through the shared
// stats.BucketQuantile CDF interpolation.
type Histogram struct {
	counts [nBuckets]uint64
	n      uint64
	sum    sim.Time
	min    sim.Time
	max    sim.Time
}

const (
	subBucketBits = 6
	nSub          = 1 << subBucketBits // first nSub buckets have width 1 ns
	halfSub       = nSub / 2
	maxExp        = 63 - subBucketBits
	nBuckets      = nSub + maxExp*halfSub
)

// bucketIndex maps a non-negative value to its bucket.
func bucketIndex(v int64) int {
	u := uint64(v)
	if u < nSub {
		return int(u)
	}
	exp := bits.Len64(u) - subBucketBits // ≥ 1
	return nSub + (exp-1)*halfSub + int(u>>uint(exp)) - halfSub
}

// bucketBounds returns the (lo, hi] value range of a bucket.
func bucketBounds(idx int) (lo, hi int64) {
	if idx < nSub {
		return int64(idx) - 1, int64(idx)
	}
	exp := (idx-nSub)/halfSub + 1
	r := int64((idx-nSub)%halfSub + halfSub)
	return (r << uint(exp)) - 1, (r+1)<<uint(exp) - 1
}

// Record folds in one duration; negative values clamp to zero and the
// running sum saturates at MaxInt64 instead of wrapping negative.
func (h *Histogram) Record(v sim.Time) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(int64(v))]++
	if h.sum > sim.Time(math.MaxInt64)-v {
		h.sum = sim.Time(math.MaxInt64)
	} else {
		h.sum += v
	}
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.n++
}

// Count returns the number of recorded values.
func (h *Histogram) Count() uint64 { return h.n }

// Sum returns the total of recorded values.
func (h *Histogram) Sum() sim.Time { return h.sum }

// Min returns the smallest recorded value (0 when empty).
func (h *Histogram) Min() sim.Time {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value.
func (h *Histogram) Max() sim.Time { return h.max }

// Mean returns the mean recorded value (0 when empty), clamped to the
// [Min, Max] envelope so a saturated sum still yields a sane estimate.
func (h *Histogram) Mean() sim.Time {
	if h.n == 0 {
		return 0
	}
	m := h.sum / sim.Time(h.n)
	if m < h.min {
		m = h.min
	}
	if m > h.max {
		m = h.max
	}
	return m
}

// Buckets returns the non-empty bins as a CDF for stats.BucketQuantile.
func (h *Histogram) Buckets() []stats.Bucket {
	var out []stats.Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo, hi := bucketBounds(i)
		out = append(out, stats.Bucket{Lo: float64(lo), Hi: float64(hi), Count: c})
	}
	return out
}

// Quantile returns the p-th percentile (0 ≤ p ≤ 100) as a duration,
// clamped to the exactly-tracked [Min, Max] envelope; it returns 0 when
// the histogram is empty.
func (h *Histogram) Quantile(p float64) sim.Time {
	if h.n == 0 {
		return 0
	}
	qf := stats.BucketQuantile(h.Buckets(), p)
	// The top bucket's Hi rounds to float64(MaxInt64) = 2^63, and
	// converting a float64 ≥ 2^63 to int64 overflows (to MinInt64 on
	// amd64), which would clamp a 100th percentile down to Min. Saturate
	// before converting.
	q := sim.Time(math.MaxInt64)
	if qf < math.MaxInt64 {
		q = sim.Time(qf)
	}
	if q < h.min {
		q = h.min
	}
	if q > h.max {
		q = h.max
	}
	return q
}

// LinearHistogram is a fixed-range, fixed-width histogram for bounded
// dimensionless quantities (ratios); out-of-range values clamp to the
// edge buckets. Record is allocation-free.
type LinearHistogram struct {
	lo, hi float64
	counts []uint64
	n      uint64
	sum    float64
	min    float64
	max    float64
}

// NewLinearHistogram returns a histogram of n equal-width buckets over
// [lo, hi].
func NewLinearHistogram(lo, hi float64, n int) *LinearHistogram {
	if n < 1 || hi <= lo {
		panic(fmt.Sprintf("telemetry: bad linear histogram [%v,%v)/%d", lo, hi, n))
	}
	return &LinearHistogram{lo: lo, hi: hi, counts: make([]uint64, n)}
}

// Record folds in one observation.
func (h *LinearHistogram) Record(v float64) {
	idx := int(float64(len(h.counts)) * (v - h.lo) / (h.hi - h.lo))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.sum += v
	if h.n == 0 || v < h.min {
		h.min = v
	}
	if h.n == 0 || v > h.max {
		h.max = v
	}
	h.n++
}

// Count returns the number of recorded values.
func (h *LinearHistogram) Count() uint64 { return h.n }

// Mean returns the mean recorded value (0 when empty).
func (h *LinearHistogram) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// Min returns the smallest recorded value (0 when empty).
func (h *LinearHistogram) Min() float64 {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest recorded value (0 when empty).
func (h *LinearHistogram) Max() float64 { return h.max }

// Buckets returns the non-empty bins for stats.BucketQuantile.
func (h *LinearHistogram) Buckets() []stats.Bucket {
	width := (h.hi - h.lo) / float64(len(h.counts))
	var out []stats.Bucket
	for i, c := range h.counts {
		if c == 0 {
			continue
		}
		lo := h.lo + float64(i)*width
		out = append(out, stats.Bucket{Lo: lo, Hi: lo + width, Count: c})
	}
	return out
}

// Quantile returns the p-th percentile (0 ≤ p ≤ 100), clamped to the
// observed [Min, Max]; it returns 0 when empty.
func (h *LinearHistogram) Quantile(p float64) float64 {
	if h.n == 0 {
		return 0
	}
	q := stats.BucketQuantile(h.Buckets(), p)
	if q < h.min {
		q = h.min
	}
	if q > h.max {
		q = h.max
	}
	return q
}
