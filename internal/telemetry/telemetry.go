// Package telemetry is the observability layer of the simulator: a
// span/event tracer keyed to simulation time, a metrics registry with
// HDR-style histograms, and a forecast-error subsystem pairing every
// eq. (3)/eq. (5) prediction with the later-observed latency.
//
// The package is wired through the facade behind nil-safe methods: a nil
// *Recorder is the disabled state, every method returns immediately on a
// nil receiver, and the cost of a disabled call site is a single pointer
// test (asserted at < 2 ns/op by BenchmarkNilRecorder). When enabled,
// hot-path recording is allocation-free after handle warm-up: metric
// handles are resolved once per (task, stage) and cached, spans append
// to an amortized buffer, and a mutex serializes access so the optional
// live HTTP exposition can read snapshots while a run is in flight.
//
// Exporters: Prometheus text format (Registry.WritePrometheus), JSON
// snapshots (Snapshot/WriteSnapshot), and Chrome trace_event JSON
// (WriteChromeTrace) loadable in Perfetto or chrome://tracing.
package telemetry

import (
	"sync"

	"repro/internal/sim"
)

// SpanKind classifies a span.
type SpanKind uint8

// Span kinds.
const (
	// KindExec is one replica's CPU job: Start=submitted, Mid=first
	// dispatch, End=completed; queue wait is Mid−Start.
	KindExec SpanKind = iota
	// KindMessage is one inter-subtask transfer: Start=enqueued,
	// Mid=transmission start, End=delivered; the buffer delay (paper
	// D_buf) is Mid−Start and the wire time (D_trans) End−Mid.
	KindMessage
)

// Span is one timed interval of the run, keyed to simulation time. The
// struct is fixed-size and recorded by value: the hot path only appends
// to a pre-grown buffer.
type Span struct {
	Kind   SpanKind
	Task   string // task name; "" for system traffic (clock sync)
	Stage  int32  // destination stage; -1 when not task-scoped
	Period int32
	Proc   int32 // executing node (exec) or destination node (message)
	From   int32 // source node (message); -1 for exec spans
	Start  sim.Time
	Mid    sim.Time
	End    sim.Time
	Items  int64 // items processed (exec) or payload bytes (message)
}

// Instant is a zero-duration event: allocator invocations and monitoring
// decisions happen at a simulation instant.
type Instant struct {
	At     sim.Time
	Task   string
	Stage  int32
	Period int32
	Kind   string // "replicate", "shutdown", "alloc-failure", "monitor-…", …
	Value  int64  // replicas added, candidates flagged, …
}

// Config tunes the recorder.
type Config struct {
	// CaptureSpans keeps the full span/event buffers for Chrome trace
	// export. Metrics and forecast tracking are always on. Disabling it
	// bounds memory for very long runs.
	CaptureSpans bool
	// SpanCapacity pre-sizes the span buffer.
	SpanCapacity int
}

// DefaultConfig captures spans with a buffer sized for a default run.
func DefaultConfig() Config {
	return Config{CaptureSpans: true, SpanCapacity: 4096}
}

// stageHandles are the cached per-(task, stage) metric handles.
type stageHandles struct {
	jobLat   *Histogram       // per-replica job latency (submit→complete)
	stageLat *Histogram       // monitor-observed stage latency
	slack    *LinearHistogram // (dl − observed)/dl
	evals    *Counter         // Figure 5 forecast evaluations
}

// taskHandles are the cached per-task metric handles.
type taskHandles struct {
	e2eLat    *Histogram
	e2eSlack  *LinearHistogram
	instances *Counter
	missed    *Counter
}

// Recorder is the telemetry sink for one run. A nil *Recorder is valid
// everywhere and records nothing; use New for an enabled one.
type Recorder struct {
	mu       sync.Mutex
	cfg      Config
	spans    []Span
	instants []Instant
	reg      *Registry
	forecast *ForecastSet

	stages map[seriesKey]*stageHandles
	tasks  map[string]*taskHandles
	adapts map[string]*Counter
	procs  map[int]*Gauge

	queueWait  *Histogram
	msgBuffer  *Histogram
	msgWire    *Histogram
	msgBytes   *Counter
	msgLocal   *Counter
	msgRemote  *Counter
	msgDropped *Counter
	msgRetx    *Counter
	netUtil    *Gauge
}

// New returns an enabled recorder.
func New(cfg Config) *Recorder {
	if cfg.SpanCapacity < 0 {
		cfg.SpanCapacity = 0
	}
	reg := NewRegistry()
	return &Recorder{
		cfg:      cfg,
		spans:    make([]Span, 0, cfg.SpanCapacity),
		instants: make([]Instant, 0, 256),
		reg:      reg,
		forecast: NewForecastSet(),
		stages:   map[seriesKey]*stageHandles{},
		tasks:    map[string]*taskHandles{},
		adapts:   map[string]*Counter{},
		procs:    map[int]*Gauge{},

		queueWait:  reg.Histogram("rm_job_queue_wait"),
		msgBuffer:  reg.Histogram("rm_msg_buffer_delay"),
		msgWire:    reg.Histogram("rm_msg_wire_delay"),
		msgBytes:   reg.Counter("rm_msg_payload_bytes_total"),
		msgLocal:   reg.Counter("rm_msg_local_total"),
		msgRemote:  reg.Counter("rm_msg_wire_total"),
		msgDropped: reg.Counter("rm_msg_dropped_total"),
		msgRetx:    reg.Counter("rm_msg_retransmit_total"),
		netUtil:    reg.Gauge("rm_net_util"),
	}
}

// Enabled reports whether the recorder is collecting.
func (r *Recorder) Enabled() bool { return r != nil }

// Registry exposes the metrics registry (nil when disabled).
func (r *Recorder) Registry() *Registry {
	if r == nil {
		return nil
	}
	return r.reg
}

// Forecast exposes the forecast-error subsystem (nil when disabled).
func (r *Recorder) Forecast() *ForecastSet {
	if r == nil {
		return nil
	}
	return r.forecast
}

// Spans returns a copy of the recorded spans.
func (r *Recorder) Spans() []Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// Instants returns a copy of the recorded instant events.
func (r *Recorder) Instants() []Instant {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Instant(nil), r.instants...)
}

// smallInts renders small indexes (stages, processors) without
// allocating.
var smallInts = [...]string{"0", "1", "2", "3", "4", "5", "6", "7", "8", "9",
	"10", "11", "12", "13", "14", "15"}

func smallInt(n int) string {
	if n >= 0 && n < len(smallInts) {
		return smallInts[n]
	}
	return "other"
}

// stage resolves the cached handles for a (task, stage).
func (r *Recorder) stage(task string, st int) *stageHandles {
	k := seriesKey{task, st}
	h, ok := r.stages[k]
	if !ok {
		tl := Label{"task", task}
		sl := Label{"stage", smallInt(st)}
		h = &stageHandles{
			jobLat:   r.reg.Histogram("rm_job_latency", tl, sl),
			stageLat: r.reg.Histogram("rm_stage_latency", tl, sl),
			slack:    r.reg.Linear("rm_stage_slack_ratio", -1, 1, 200, tl, sl),
			evals:    r.reg.Counter("rm_forecast_evals_total", tl, sl),
		}
		r.stages[k] = h
	}
	return h
}

// task resolves the cached handles for a task.
func (r *Recorder) task(name string) *taskHandles {
	h, ok := r.tasks[name]
	if !ok {
		tl := Label{"task", name}
		h = &taskHandles{
			e2eLat:    r.reg.Histogram("rm_e2e_latency", tl),
			e2eSlack:  r.reg.Linear("rm_e2e_slack_ratio", -1, 1, 200, tl),
			instances: r.reg.Counter("rm_instances_total", tl),
			missed:    r.reg.Counter("rm_missed_total", tl),
		}
		r.tasks[name] = h
	}
	return h
}

// RecordExec records one replica CPU job of a subtask: the per-stage job
// service histogram plus (when capturing) an exec span. The wrapper is
// small enough to inline, so the disabled (nil-receiver) call costs one
// predictable branch at the call site.
func (r *Recorder) RecordExec(task string, stage, period, proc, items int, submitted, started, completed sim.Time) {
	if r == nil {
		return
	}
	r.recordExec(task, stage, period, proc, items, submitted, started, completed)
}

func (r *Recorder) recordExec(task string, stage, period, proc, items int, submitted, started, completed sim.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stage(task, stage).jobLat.Record(completed - submitted)
	if r.cfg.CaptureSpans {
		r.spans = append(r.spans, Span{
			Kind: KindExec, Task: task, Stage: int32(stage), Period: int32(period),
			Proc: int32(proc), From: -1,
			Start: submitted, Mid: started, End: completed, Items: int64(items),
		})
	}
}

// RecordJobWait records one job's ready-queue wait (first dispatch minus
// submission). It is wired from the cpu JobObserver hook, so it covers
// every job served on a node — not just the ones the facade submits.
func (r *Recorder) RecordJobWait(proc int, wait sim.Time) {
	if r == nil {
		return
	}
	r.recordJobWait(proc, wait)
}

func (r *Recorder) recordJobWait(proc int, wait sim.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.queueWait.Record(wait)
}

// RecordMessage records one network delivery with its buffer/wire split
// (paper eqs. 4–6): D_buf = sent−enqueued, D_trans = delivered−sent.
// System traffic (clock synchronization) passes task="" and stage −1.
func (r *Recorder) RecordMessage(task string, stage, period, from, to int, payloadBytes int64, enqueued, sent, delivered sim.Time) {
	if r == nil {
		return
	}
	r.recordMessage(task, stage, period, from, to, payloadBytes, enqueued, sent, delivered)
}

func (r *Recorder) recordMessage(task string, stage, period, from, to int, payloadBytes int64, enqueued, sent, delivered sim.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.msgBuffer.Record(sent - enqueued)
	r.msgWire.Record(delivered - sent)
	r.msgBytes.Add(uint64(payloadBytes))
	if from == to {
		r.msgLocal.Inc()
	} else {
		r.msgRemote.Inc()
	}
	if r.cfg.CaptureSpans {
		r.spans = append(r.spans, Span{
			Kind: KindMessage, Task: task, Stage: int32(stage), Period: int32(period),
			Proc: int32(to), From: int32(from),
			Start: enqueued, Mid: sent, End: delivered, Items: payloadBytes,
		})
	}
}

// RecordStage records one stage's monitor-observed latency against its
// current EQF deadline: the per-stage latency histogram and the
// slack-to-deadline ratio histogram ((dl − observed)/dl: 1 = instant,
// 0 = on the deadline, negative = late).
func (r *Recorder) RecordStage(task string, stage, period int, latency, deadline sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.stage(task, stage)
	h.stageLat.Record(latency)
	if deadline > 0 {
		h.slack.Record(float64(deadline-latency) / float64(deadline))
	}
}

// RecordEndToEnd records one completed instance's release-to-completion
// latency and end-to-end slack ratio.
func (r *Recorder) RecordEndToEnd(task string, period int, latency, deadline sim.Time, missed bool) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.task(task)
	h.e2eLat.Record(latency)
	if deadline > 0 {
		h.e2eSlack.Record(float64(deadline-latency) / float64(deadline))
	}
	h.instances.Inc()
	if missed {
		h.missed.Inc()
	}
}

// RecordAdaptation records one allocator action or monitoring decision
// as an instant event plus a counter.
func (r *Recorder) RecordAdaptation(at sim.Time, task string, stage, period int, kind string, value int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.adapts[kind]
	if !ok {
		c = r.reg.Counter("rm_adaptations_total", Label{"kind", kind})
		r.adapts[kind] = c
	}
	c.Inc()
	if r.cfg.CaptureSpans {
		r.instants = append(r.instants, Instant{
			At: at, Task: task, Stage: int32(stage), Period: int32(period),
			Kind: kind, Value: value,
		})
	}
}

// CountMessageDrop counts one lost segment message (drop probability or
// partition), observed by the sender through the chaos layer.
func (r *Recorder) CountMessageDrop() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.msgDropped.Inc()
	r.mu.Unlock()
}

// CountRetransmit counts one inter-subtask handoff resent after a
// delivery-timeout expiry.
func (r *Recorder) CountRetransmit() {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.msgRetx.Inc()
	r.mu.Unlock()
}

// RecordForecastEval counts one Figure 5 forecast evaluation (wired from
// the predictive allocator's probe hook).
func (r *Recorder) RecordForecastEval(task string, stage int) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.stage(task, stage).evals.Inc()
}

// SetProcUtil updates the per-processor utilization gauge sampled each
// monitoring window.
func (r *Recorder) SetProcUtil(proc int, util float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.procs[proc]
	if !ok {
		g = r.reg.Gauge("rm_cpu_util", Label{"proc", smallInt(proc)})
		r.procs[proc] = g
	}
	g.Set(util)
}

// SetNetUtil updates the network utilization gauge.
func (r *Recorder) SetNetUtil(util float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.netUtil.Set(util)
}

// Predict records the eq. (3)/(5) model forecasts for one stage of one
// period, to be paired with the later observation. A negative comm
// forecast means "no outgoing message" (the final stage) and is skipped.
func (r *Recorder) Predict(task string, stage, period int, exec, comm sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.forecast.Series(task, stage)
	s.Exec.Predict(period, exec)
	if comm >= 0 {
		s.Comm.Predict(period, comm)
	}
}

// ObserveForecast pairs the stage's observed latencies with the pending
// forecasts for the period.
func (r *Recorder) ObserveForecast(task string, stage, period int, exec, comm sim.Time) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	s := r.forecast.Series(task, stage)
	s.Exec.Observe(period, exec)
	if comm >= 0 {
		s.Comm.Observe(period, comm)
	}
}
