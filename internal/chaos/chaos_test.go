package chaos

import (
	"reflect"
	"testing"

	"repro/internal/sim"
)

func TestZeroConfigCompilesEmpty(t *testing.T) {
	s := Compile(Config{}, 6, 100*sim.Second, 1)
	if len(s.Faults) != 0 || len(s.Partitions) != 0 {
		t.Fatalf("zero config compiled non-empty schedule: %+v", s)
	}
	if (Config{}).Enabled() {
		t.Fatal("zero config reports Enabled")
	}
}

func TestCompileDeterministic(t *testing.T) {
	cfg := Config{
		NodeMTBF:      20 * sim.Second,
		NodeMTTR:      5 * sim.Second,
		PartitionMTBF: 40 * sim.Second,
		PartitionMTTR: 2 * sim.Second,
	}
	a := Compile(cfg, 6, 300*sim.Second, 42)
	b := Compile(cfg, 6, 300*sim.Second, 42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	c := Compile(cfg, 6, 300*sim.Second, 43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical schedules")
	}
	if len(a.Faults) == 0 {
		t.Fatal("expected faults over a 300s horizon with 20s MTBF")
	}
	if len(a.Partitions) == 0 {
		t.Fatal("expected partitions over a 300s horizon with 40s MTBF")
	}
}

// Per-node streams mean a node's timeline is stable as the cluster grows:
// node 0's faults in a 4-node compile equal node 0's faults in a 6-node
// compile.
func TestPerNodeStreamStability(t *testing.T) {
	cfg := Config{NodeMTBF: 15 * sim.Second, NodeMTTR: 3 * sim.Second}
	small := Compile(cfg, 4, 200*sim.Second, 7)
	big := Compile(cfg, 6, 200*sim.Second, 7)
	pick := func(s Schedule, node int) []NodeFault {
		var out []NodeFault
		for _, f := range s.Faults {
			if f.Node == node {
				out = append(out, f)
			}
		}
		return out
	}
	for n := 0; n < 4; n++ {
		if !reflect.DeepEqual(pick(small, n), pick(big, n)) {
			t.Fatalf("node %d timeline changed with cluster size", n)
		}
	}
}

func TestScheduleProperties(t *testing.T) {
	cfg := Config{
		NodeMTBF:      10 * sim.Second,
		NodeMTTR:      4 * sim.Second,
		PartitionMTBF: 30 * sim.Second,
		PartitionMTTR: sim.Second,
	}
	horizon := 500 * sim.Second
	s := Compile(cfg, 6, horizon, 99)
	last := sim.Time(-1)
	perNodeEnd := map[int]sim.Time{}
	for _, f := range s.Faults {
		if f.At < last {
			t.Fatalf("faults not time-sorted: %v after %v", f.At, last)
		}
		last = f.At
		if f.At < 0 || f.At >= horizon {
			t.Fatalf("fault at %v outside horizon", f.At)
		}
		if f.Duration < minRepair {
			t.Fatalf("fault duration %v below minimum", f.Duration)
		}
		if end, ok := perNodeEnd[f.Node]; ok && f.At < end {
			t.Fatalf("node %d crashes at %v while still down until %v", f.Node, f.At, end)
		}
		perNodeEnd[f.Node] = f.At + f.Duration
	}
	prevEnd := sim.Time(0)
	for _, w := range s.Partitions {
		if w.Start < prevEnd {
			t.Fatalf("partitions overlap: start %v before previous end %v", w.Start, prevEnd)
		}
		if w.End <= w.Start {
			t.Fatalf("empty partition window %+v", w)
		}
		prevEnd = w.End
	}
}

func TestMaxDownBound(t *testing.T) {
	cfg := Config{
		NodeMTBF: 5 * sim.Second,
		NodeMTTR: 20 * sim.Second, // long repairs force heavy overlap
		MaxDown:  2,
	}
	s := Compile(cfg, 6, 400*sim.Second, 3)
	if len(s.Faults) == 0 {
		t.Fatal("expected faults")
	}
	// Sweep the timeline and verify the simultaneous-down count.
	type edge struct {
		at    sim.Time
		delta int
	}
	var edges []edge
	for _, f := range s.Faults {
		edges = append(edges, edge{f.At, 1}, edge{f.At + f.Duration, -1})
	}
	for i := 0; i < len(edges); i++ {
		for j := i + 1; j < len(edges); j++ {
			if edges[j].at < edges[i].at || (edges[j].at == edges[i].at && edges[j].delta < edges[i].delta) {
				edges[i], edges[j] = edges[j], edges[i]
			}
		}
	}
	down := 0
	for _, e := range edges {
		down += e.delta
		if down > 2 {
			t.Fatalf("simultaneous-down count %d exceeds MaxDown 2", down)
		}
	}
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{NodeMTBF: -1},
		{NodeMTBF: sim.Second},      // MTBF without MTTR
		{PartitionMTBF: sim.Second}, // partition MTBF without MTTR
		{NodeMTBF: 1, NodeMTTR: 1, MaxDown: -2},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %d: expected validation error", i)
		}
	}
	good := Config{NodeMTBF: sim.Second, NodeMTTR: sim.Second, MaxDown: 1,
		PartitionMTBF: sim.Second, PartitionMTTR: sim.Second}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Errorf("zero config rejected: %v", err)
	}
}
