// Package chaos generates stochastic fault schedules for the simulated
// cluster: per-node crash/repair processes drawn from exponential
// MTBF/MTTR distributions, and transient whole-segment network
// partitions. The paper's motivation is survivability in an asynchronous
// system whose failures are not announced in advance; this package turns
// that premise into reproducible experiments by compiling the stochastic
// processes into a concrete, fully deterministic schedule before the run
// starts — the same seed always yields the same faults, so chaos runs
// dedup, cache, and golden-test exactly like clean ones.
package chaos

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/sim"
)

// Config parameterizes the stochastic fault processes. The zero value
// disables everything: Compile returns an empty schedule and the
// embedding system must behave byte-identically to a chaos-free build.
type Config struct {
	// NodeMTBF is each node's mean time between crash arrivals
	// (exponential inter-arrival). 0 disables node faults.
	NodeMTBF sim.Time
	// NodeMTTR is the mean repair time of a crashed node (exponential,
	// clamped to ≥ 1 ms so a crash is never a zero-length no-op).
	// Required when NodeMTBF > 0.
	NodeMTTR sim.Time
	// MaxDown bounds how many nodes may be down simultaneously; crash
	// arrivals that would exceed the bound are skipped (the repair crews
	// are busy — the node survives until its next arrival). 0 = no bound.
	MaxDown int
	// PartitionMTBF is the mean time between transient whole-segment
	// partitions (exponential inter-arrival). 0 disables partitions.
	PartitionMTBF sim.Time
	// PartitionMTTR is the mean partition duration (exponential, clamped
	// to ≥ 1 ms). Required when PartitionMTBF > 0.
	PartitionMTTR sim.Time
}

// Enabled reports whether any stochastic process is configured.
func (c Config) Enabled() bool {
	return c.NodeMTBF > 0 || c.PartitionMTBF > 0
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.NodeMTBF < 0 || c.NodeMTTR < 0 || c.PartitionMTBF < 0 || c.PartitionMTTR < 0 {
		return fmt.Errorf("chaos: negative MTBF/MTTR")
	}
	if c.NodeMTBF > 0 && c.NodeMTTR == 0 {
		return fmt.Errorf("chaos: node MTBF set without MTTR")
	}
	if c.PartitionMTBF > 0 && c.PartitionMTTR == 0 {
		return fmt.Errorf("chaos: partition MTBF set without MTTR")
	}
	if c.MaxDown < 0 {
		return fmt.Errorf("chaos: negative MaxDown %d", c.MaxDown)
	}
	return nil
}

// NodeFault is one compiled node crash. Duration is always positive.
type NodeFault struct {
	Node     int
	At       sim.Time
	Duration sim.Time
}

// Window is one compiled whole-segment partition interval [Start, End).
type Window struct {
	Start, End sim.Time
}

// Schedule is a compiled fault plan: everything the embedding system
// needs to pre-schedule before virtual time starts.
type Schedule struct {
	Faults     []NodeFault
	Partitions []Window
}

// minRepair keeps exponential repair draws from collapsing into
// zero-length faults the scheduler would never observe.
const minRepair = sim.Millisecond

// expTime draws an exponential duration with the given mean.
func expTime(r *rand.Rand, mean sim.Time) sim.Time {
	return sim.Time(r.ExpFloat64() * float64(mean))
}

// Compile draws the full fault plan for a run of the given horizon.
// Each node gets its own RNG stream derived from (seed, node), so one
// node's timeline does not shift when the cluster size changes; the
// partition process gets a stream of its own. Compile is pure: identical
// inputs always produce identical schedules.
func Compile(cfg Config, numNodes int, horizon sim.Time, seed uint64) Schedule {
	var s Schedule
	if !cfg.Enabled() || horizon <= 0 {
		return s
	}
	if cfg.NodeMTBF > 0 {
		for n := 0; n < numNodes; n++ {
			r := sim.NewRand(seed, 0xc4a05_0000+uint64(n))
			t := expTime(r, cfg.NodeMTBF)
			for t < horizon {
				d := expTime(r, cfg.NodeMTTR)
				if d < minRepair {
					d = minRepair
				}
				s.Faults = append(s.Faults, NodeFault{Node: n, At: t, Duration: d})
				t += d + expTime(r, cfg.NodeMTBF)
			}
		}
		sort.Slice(s.Faults, func(i, j int) bool {
			if s.Faults[i].At != s.Faults[j].At {
				return s.Faults[i].At < s.Faults[j].At
			}
			return s.Faults[i].Node < s.Faults[j].Node
		})
		if cfg.MaxDown > 0 {
			s.Faults = enforceMaxDown(s.Faults, cfg.MaxDown)
		}
	}
	if cfg.PartitionMTBF > 0 {
		s.Partitions = compilePartitions(cfg, horizon, sim.NewRand(seed, 0xc4a05_b00f))
	}
	return s
}

// compilePartitions draws the transient-partition windows from one RNG
// stream.
func compilePartitions(cfg Config, horizon sim.Time, r *rand.Rand) []Window {
	var wins []Window
	t := expTime(r, cfg.PartitionMTBF)
	for t < horizon {
		d := expTime(r, cfg.PartitionMTTR)
		if d < minRepair {
			d = minRepair
		}
		wins = append(wins, Window{Start: t, End: t + d})
		t += d + expTime(r, cfg.PartitionMTBF)
	}
	return wins
}

// LanePartitions compiles the transient-partition process for one lane's
// segment of a lane-partitioned run. Each lane draws from its own RNG
// stream — the shared partition stream salted with the lane index — so
// segment outages are independent across lanes and one lane's timeline
// does not shift when the lane count changes. Node faults have no lane
// variant: their streams are already keyed by node (Compile), so the
// embedding system compiles them globally and filters by home segment.
func LanePartitions(cfg Config, horizon sim.Time, seed uint64, lane int) []Window {
	if cfg.PartitionMTBF <= 0 || horizon <= 0 {
		return nil
	}
	r := sim.NewRand(seed, 0xc4a05_b00f+(uint64(lane)+1)<<32)
	return compilePartitions(cfg, horizon, r)
}

// enforceMaxDown sweeps the time-sorted fault list and drops any crash
// that would push the simultaneous-down count past the bound.
func enforceMaxDown(faults []NodeFault, maxDown int) []NodeFault {
	kept := faults[:0]
	var downUntil []sim.Time // repair times of admitted faults
	for _, f := range faults {
		live := downUntil[:0]
		for _, end := range downUntil {
			if end > f.At {
				live = append(live, end)
			}
		}
		downUntil = live
		if len(downUntil) >= maxDown {
			continue
		}
		downUntil = append(downUntil, f.At+f.Duration)
		kept = append(kept, f)
	}
	return kept
}
