package ascii

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestRenderBasicShape(t *testing.T) {
	c := Chart{
		Title:   "demo",
		XLabel:  "x",
		YLabel:  "y",
		XValues: []int{0, 1, 2, 3, 4},
		Series: []Series{
			{Name: "up", Points: []float64{0, 1, 2, 3, 4}},
			{Name: "down", Points: []float64{4, 3, 2, 1, 0}},
		},
		Height: 5,
	}
	out, err := c.RenderString()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"demo", "* up", "o down", "(x)", "y: y", "'#' = overlap"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// The crossing point (x=2, value 2 for both series) collides → '#'.
	if !strings.Contains(out, "#") {
		t.Errorf("no collision glyph at the crossing:\n%s", out)
	}
	// Top row carries the max label, bottom the min.
	lines := strings.Split(out, "\n")
	var plotLines []string
	for _, l := range lines {
		if strings.Contains(l, "|") {
			plotLines = append(plotLines, l)
		}
	}
	if len(plotLines) != 5 {
		t.Fatalf("plot rows = %d, want 5", len(plotLines))
	}
	if !strings.Contains(plotLines[0], "4") {
		t.Errorf("top row lacks max label: %q", plotLines[0])
	}
	if !strings.Contains(plotLines[4], "0") {
		t.Errorf("bottom row lacks min label: %q", plotLines[4])
	}
}

func TestRenderMonotoneSeriesOrientation(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "rise", Points: []float64{0, 10}}},
		Height: 4,
	}
	out, err := c.RenderString()
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(out, "\n")
	var first, last int = -1, -1
	row := 0
	for _, l := range lines {
		if !strings.Contains(l, "|") {
			continue
		}
		body := l[strings.Index(l, "|")+1:]
		if i := strings.IndexByte(body, '*'); i >= 0 {
			if first == -1 {
				first = row
			}
			last = row
			_ = i
		}
		row++
	}
	if first == -1 {
		t.Fatal("no marks rendered")
	}
	// The max (10) should appear above the min (0).
	if first >= last {
		t.Errorf("orientation wrong: first mark row %d, last %d", first, last)
	}
}

func TestRenderErrors(t *testing.T) {
	if _, err := (Chart{}).RenderString(); err == nil {
		t.Error("empty chart accepted")
	}
	if _, err := (Chart{Series: []Series{{Name: "e"}}}).RenderString(); err == nil {
		t.Error("empty series accepted")
	}
	nan := Chart{Series: []Series{{Name: "n", Points: []float64{math.NaN()}}}}
	if _, err := nan.RenderString(); err == nil {
		t.Error("all-NaN series accepted")
	}
}

func TestRenderFlatSeries(t *testing.T) {
	c := Chart{Series: []Series{{Name: "flat", Points: []float64{5, 5, 5}}}, Height: 3}
	out, err := c.RenderString()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") {
		t.Error("flat series rendered no marks")
	}
}

func TestRenderNaNSkipsColumn(t *testing.T) {
	c := Chart{
		Series: []Series{{Name: "gap", Points: []float64{1, math.NaN(), 3}}},
		Height: 3,
	}
	out, err := c.RenderString()
	if err != nil {
		t.Fatal(err)
	}
	marks := strings.Count(out, "*")
	// One legend mark + two data marks.
	if marks != 3 {
		t.Errorf("marks = %d, want 3 (legend + 2 points)", marks)
	}
}

func TestRenderDownsampling(t *testing.T) {
	points := make([]float64, 200)
	for i := range points {
		points[i] = float64(i)
	}
	c := Chart{Series: []Series{{Name: "long", Points: points}}, Width: 50, Height: 4}
	out, err := c.RenderString()
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range strings.Split(out, "\n") {
		if i := strings.Index(l, "|"); i >= 0 {
			if body := l[i+1:]; len(body) > 50 {
				t.Fatalf("plot row wider than Width: %d", len(body))
			}
		}
	}
}

// Property: rendering never panics and always includes every series name,
// for arbitrary finite data.
func TestPropertyRenderTotal(t *testing.T) {
	f := func(raw []int16, h uint8) bool {
		if len(raw) == 0 {
			return true
		}
		pts := make([]float64, len(raw))
		for i, v := range raw {
			pts[i] = float64(v)
		}
		c := Chart{
			Title:  "p",
			Series: []Series{{Name: "s1", Points: pts}},
			Height: int(h%30) + 2,
		}
		out, err := c.RenderString()
		return err == nil && strings.Contains(out, "s1")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
