// Package ascii renders simple multi-series line charts as text, so the
// experiment harness can draw the paper's figures — not only tabulate
// them — in a terminal and in the committed results files.
package ascii

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one named line on a chart.
type Series struct {
	Name   string
	Points []float64 // y value per x index; NaN skips a column
}

// Chart is a multi-series plot over a shared integer x axis.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	// XValues labels the x axis; when nil, indices are used.
	XValues []int
	Series  []Series
	// Height is the plot's row count (default 16).
	Height int
	// Width caps the plot's column count; series longer than Width are
	// downsampled by striding (default: natural length).
	Width int
}

// seriesMarks assigns one glyph per series, with '#' reserved for
// collisions.
var seriesMarks = []byte{'*', 'o', '+', 'x', '~', '^'}

// Render draws the chart.
func (c Chart) Render(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("ascii: chart %q has no series", c.Title)
	}
	n := 0
	for _, s := range c.Series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	if n == 0 {
		return fmt.Errorf("ascii: chart %q has empty series", c.Title)
	}
	height := c.Height
	if height <= 0 {
		height = 16
	}

	// Determine the y range across all series.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		for _, v := range s.Points {
			if math.IsNaN(v) {
				continue
			}
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) {
		return fmt.Errorf("ascii: chart %q has no numeric points", c.Title)
	}
	if hi == lo {
		hi = lo + 1 // flat series still needs a band
	}

	// Optional horizontal downsampling.
	stride := 1
	if c.Width > 0 && n > c.Width {
		stride = (n + c.Width - 1) / c.Width
	}
	cols := (n + stride - 1) / stride

	// Paint the grid.
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", cols))
	}
	rowOf := func(v float64) int {
		frac := (v - lo) / (hi - lo)
		r := int(math.Round(frac * float64(height-1)))
		return height - 1 - r // row 0 is the top
	}
	for si, s := range c.Series {
		mark := seriesMarks[si%len(seriesMarks)]
		for x := 0; x < cols; x++ {
			idx := x * stride
			if idx >= len(s.Points) {
				continue
			}
			v := s.Points[idx]
			if math.IsNaN(v) {
				continue
			}
			r := rowOf(v)
			cell := grid[r][x]
			if cell != ' ' && cell != mark {
				grid[r][x] = '#'
			} else {
				grid[r][x] = mark
			}
		}
	}

	// Emit: title, legend, plot with y scale, x axis.
	if c.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", c.Title); err != nil {
			return err
		}
	}
	var legend []string
	for si, s := range c.Series {
		legend = append(legend, fmt.Sprintf("%c %s", seriesMarks[si%len(seriesMarks)], s.Name))
	}
	if _, err := fmt.Fprintf(w, "  [%s]  ('#' = overlap)\n", strings.Join(legend, "   ")); err != nil {
		return err
	}
	yfmt := func(v float64) string { return fmt.Sprintf("%8.4g", v) }
	for r := 0; r < height; r++ {
		label := strings.Repeat(" ", 8)
		switch r {
		case 0:
			label = yfmt(hi)
		case height - 1:
			label = yfmt(lo)
		case (height - 1) / 2:
			label = yfmt((hi + lo) / 2)
		}
		if _, err := fmt.Fprintf(w, "%s |%s\n", label, string(grid[r])); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s +%s\n", strings.Repeat(" ", 8), strings.Repeat("-", cols)); err != nil {
		return err
	}
	// X-axis end labels.
	xlo, xhi := 0, n-1
	if c.XValues != nil {
		if len(c.XValues) > 0 {
			xlo = c.XValues[0]
		}
		if len(c.XValues) >= n {
			xhi = c.XValues[n-1]
		}
	}
	axis := fmt.Sprintf("%d", xlo)
	right := fmt.Sprintf("%d", xhi)
	pad := cols - len(axis) - len(right)
	if pad < 1 {
		pad = 1
	}
	if _, err := fmt.Fprintf(w, "%s  %s%s%s", strings.Repeat(" ", 8), axis, strings.Repeat(" ", pad), right); err != nil {
		return err
	}
	if c.XLabel != "" {
		if _, err := fmt.Fprintf(w, "   (%s)", c.XLabel); err != nil {
			return err
		}
	}
	if c.YLabel != "" {
		if _, err := fmt.Fprintf(w, "\n%s y: %s", strings.Repeat(" ", 8), c.YLabel); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderString is Render into a string, for tests and embedding.
func (c Chart) RenderString() (string, error) {
	var b strings.Builder
	if err := c.Render(&b); err != nil {
		return "", err
	}
	return b.String(), nil
}
