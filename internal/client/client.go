// Package client is the Go client for the rmserved daemon's v1 API. It
// depends only on the api wire schema, the obs correlation layer, and
// the resil resilience vocabulary — a client binary never *runs* the
// simulation engine — and mirrors the endpoint surface one-to-one:
// SubmitRun/SubmitSweep, Job/Jobs/Cancel, Events (SSE), Stats, plus the
// Wait and RunSync conveniences that block until a job settles.
//
// Every request retries transparently on transport errors, 429
// backpressure, and 5xx responses (except an explicit drain refusal),
// honoring the server's Retry-After hint; resubmitting is safe because
// run submissions are idempotent by fingerprint. SSE subscriptions
// reconnect on a dropped stream and resume with Last-Event-ID, so no
// state transition is delivered twice.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/internal/api"
	"repro/internal/obs"
	"repro/internal/resil"
)

// Client talks to one rmserved base URL (e.g. "http://127.0.0.1:8080").
type Client struct {
	base string
	hc   *http.Client
	// PollInterval paces the polling fallback in Wait when the SSE stream
	// is unavailable. Zero means 100ms.
	PollInterval time.Duration
	// Retry shapes the backoff between retried requests and SSE
	// reconnects. The zero value uses the resil defaults (3 attempts,
	// 100ms base doubling to a 5s cap).
	Retry resil.Backoff
	// Logger, when set, logs every request at debug level with its
	// correlation ID, status, and wall-clock duration.
	Logger *slog.Logger

	// sleep paces retries; nil means a real context-aware sleep. Tests
	// substitute a recording fake.
	sleep resil.Sleeper
}

// Option customizes a Client at construction. Options compose left to
// right: client.New(base, client.WithHTTPClient(hc), client.WithRetries(b)).
type Option func(*Client)

// WithHTTPClient supplies the http.Client behind every request
// (timeouts, transports, test doubles). nil keeps the default.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) {
		if hc != nil {
			c.hc = hc
		}
	}
}

// WithRetries shapes the backoff between retried requests and SSE
// reconnects.
func WithRetries(b resil.Backoff) Option {
	return func(c *Client) { c.Retry = b }
}

// WithLogger installs a structured logger for per-request debug lines.
func WithLogger(l *slog.Logger) Option {
	return func(c *Client) { c.Logger = l }
}

// WithPollInterval paces the polling fallback in Wait.
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) { c.PollInterval = d }
}

// New builds a client for the given base URL. With no options it uses
// http.DefaultClient and the resil retry defaults.
func New(base string, opts ...Option) *Client {
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// NewWithHTTPClient builds a client with a caller-supplied http.Client.
//
// Deprecated: use New(base, WithHTTPClient(hc)).
func NewWithHTTPClient(base string, hc *http.Client) *Client {
	return New(base, WithHTTPClient(hc))
}

// APIError is a non-2xx response decoded from the server's error
// envelope.
type APIError struct {
	Status  int
	Code    string
	Message string
	// RetryAfter is the server's backoff hint from the Retry-After
	// header, when one was sent (429 backpressure, 503 journal trouble).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	return fmt.Sprintf("rmserved: %s (http %d, code %s)", e.Message, e.Status, e.Code)
}

// Retryable reports whether err is worth retrying against the same
// daemon: transport-level failures (connection refused mid-restart, a
// torn stream) and 429/5xx responses — except an explicit drain
// refusal, which is the daemon saying it will not take the work, ever.
// Context cancellations are never retryable.
func Retryable(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var ae *APIError
	if errors.As(err, &ae) {
		if ae.Code == api.CodeDraining {
			return false
		}
		return ae.Status == http.StatusTooManyRequests || ae.Status >= 500
	}
	// Not an API response at all: the network or the stream broke.
	return true
}

// requestID picks the correlation ID for one outgoing request: the one
// already in ctx (a caller correlating several calls) or a fresh one.
// The ID travels as X-Request-Id, and the daemon logs it on its side, so
// one grep joins client and server views of the same request.
func requestID(ctx context.Context) string {
	if id := obs.RequestID(ctx); id != "" {
		return id
	}
	return obs.NewRequestID()
}

// logRequest emits the client-side completion line when a logger is set.
func (c *Client) logRequest(id, method, path string, status int, start time.Time, err error) {
	if c.Logger == nil {
		return
	}
	attrs := []any{"req", id, "method", method, "path", path, "dur_ms", time.Since(start).Milliseconds()}
	if status != 0 {
		attrs = append(attrs, "status", status)
	}
	if err != nil {
		attrs = append(attrs, "error", err.Error())
	}
	c.Logger.Debug("rmserved request", attrs...)
}

// sleeper resolves the retry pacer.
func (c *Client) sleeper() resil.Sleeper {
	if c.sleep != nil {
		return c.sleep
	}
	return resil.SleepCtx
}

// do performs one JSON request/response exchange, retrying retryable
// failures with backoff. The body is marshalled once and replayed from
// a fresh reader on each attempt.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var data []byte
	if in != nil {
		var err error
		if data, err = json.Marshal(in); err != nil {
			return err
		}
	}
	sleep := c.sleeper()
	var err error
	for attempt := 1; ; attempt++ {
		err = c.doOnce(ctx, method, path, data, out)
		if err == nil || !Retryable(err) || attempt >= c.Retry.MaxAttempts() {
			return err
		}
		delay := c.Retry.Delay(attempt)
		// The server knows its own drain rate better than our schedule.
		var ae *APIError
		if errors.As(err, &ae) && ae.RetryAfter > 0 {
			delay = ae.RetryAfter
		}
		if c.Logger != nil {
			c.Logger.Debug("rmserved request retrying", "method", method, "path", path, "attempt", attempt, "delay_ms", delay.Milliseconds(), "error", err.Error())
		}
		if serr := sleep(ctx, delay); serr != nil {
			return err // ctx died mid-backoff; the request's error is the story
		}
	}
}

// doOnce is a single request/response exchange.
func (c *Client) doOnce(ctx context.Context, method, path string, data []byte, out any) error {
	var body io.Reader
	if data != nil {
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if data != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	id := requestID(ctx)
	req.Header.Set(obs.RequestIDHeader, id)
	start := time.Now()
	resp, err := c.hc.Do(req)
	if err != nil {
		c.logRequest(id, method, path, 0, start, err)
		return err
	}
	defer resp.Body.Close()
	c.logRequest(id, method, path, resp.StatusCode, start, nil)
	if resp.StatusCode/100 != 2 {
		return decodeError(resp)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// decodeError turns a non-2xx response into an *APIError, tolerating
// non-envelope bodies (proxies, panics) and capturing any Retry-After
// hint.
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	ae := &APIError{Status: resp.StatusCode, Code: api.CodeInternal, Message: strings.TrimSpace(string(data))}
	var env api.ErrorEnvelope
	if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
		ae.Code, ae.Message = env.Error.Code, env.Error.Message
	}
	if secs, err := strconv.Atoi(resp.Header.Get(api.RetryAfterHeader)); err == nil && secs > 0 {
		ae.RetryAfter = time.Duration(secs) * time.Second
	}
	return ae
}

// SubmitRun submits one simulation and returns the accepted job.
func (c *Client) SubmitRun(ctx context.Context, req api.RunRequest) (api.Job, error) {
	if req.SchemaVersion == 0 {
		req.SchemaVersion = api.SchemaVersion
	}
	var j api.Job
	err := c.do(ctx, http.MethodPost, "/v1/runs", req, &j)
	return j, err
}

// SubmitSweep submits one figure sweep and returns the accepted job.
func (c *Client) SubmitSweep(ctx context.Context, req api.SweepRequest) (api.Job, error) {
	if req.SchemaVersion == 0 {
		req.SchemaVersion = api.SchemaVersion
	}
	var j api.Job
	err := c.do(ctx, http.MethodPost, "/v1/sweeps", req, &j)
	return j, err
}

// Job fetches one job's current snapshot.
func (c *Client) Job(ctx context.Context, id string) (api.Job, error) {
	var j api.Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &j)
	return j, err
}

// Jobs lists every job the daemon knows, in submission order.
func (c *Client) Jobs(ctx context.Context) ([]api.Job, error) {
	var out []api.Job
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// JobsPage fetches one page of the job list: at most limit jobs in
// submission order, starting after the `after` cursor (empty for the
// first page). Page through with the returned NextAfter until it comes
// back empty.
func (c *Client) JobsPage(ctx context.Context, limit int, after string) (api.JobPage, error) {
	if limit <= 0 {
		return api.JobPage{}, fmt.Errorf("client: page limit must be positive, got %d", limit)
	}
	path := "/v1/jobs?limit=" + strconv.Itoa(limit)
	if after != "" {
		path += "&after=" + url.QueryEscape(after)
	}
	var page api.JobPage
	err := c.do(ctx, http.MethodGet, path, nil, &page)
	return page, err
}

// Cancel cancels a queued or running job and returns its terminal
// snapshot.
func (c *Client) Cancel(ctx context.Context, id string) (api.Job, error) {
	var j api.Job
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &j)
	return j, err
}

// Stats fetches the daemon's scheduler, queue, and telemetry counters.
func (c *Client) Stats(ctx context.Context) (api.Stats, error) {
	var st api.Stats
	err := c.do(ctx, http.MethodGet, "/v1/stats", nil, &st)
	return st, err
}

// Events subscribes to a job's SSE stream, invoking fn for every
// snapshot until the job reaches a terminal state or ctx is cancelled.
// A dropped stream reconnects with backoff, resuming via Last-Event-ID
// so no snapshot is delivered twice; the retry budget resets whenever a
// reconnect makes progress. Returns the last snapshot observed.
func (c *Client) Events(ctx context.Context, id string, fn func(api.Job)) (api.Job, error) {
	var last api.Job
	var lastEventID string
	sleep := c.sleeper()
	var err error
	for attempt := 1; ; attempt++ {
		var progressed bool
		progressed, err = c.streamEvents(ctx, id, &lastEventID, &last, fn)
		if err == nil {
			return last, nil // terminal state observed
		}
		if progressed {
			attempt = 1
		}
		if !Retryable(err) || attempt >= c.Retry.MaxAttempts() {
			return last, err
		}
		if c.Logger != nil {
			c.Logger.Debug("rmserved event stream reconnecting", "job", id, "attempt", attempt, "last_event_id", lastEventID, "error", err.Error())
		}
		if serr := sleep(ctx, c.Retry.Delay(attempt)); serr != nil {
			return last, err
		}
	}
}

// streamEvents holds one SSE connection open, updating *last and
// *lastEventID per frame. It returns nil when a terminal snapshot
// arrived, and whether any frame was decoded (progress, for the
// reconnect budget).
func (c *Client) streamEvents(ctx context.Context, id string, lastEventID *string, last *api.Job, fn func(api.Job)) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set(obs.RequestIDHeader, requestID(ctx))
	if *lastEventID != "" {
		req.Header.Set("Last-Event-ID", *lastEventID)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, decodeError(resp)
	}
	progressed := false
	err = scanSSE(resp.Body, func(evID, name string, data []byte) error {
		ev, perr := api.ParseSSE(name, data)
		if perr != nil {
			if errors.Is(perr, api.ErrUnknownEventType) {
				return nil // a newer server; skip frames we don't know
			}
			return fmt.Errorf("client: decoding event: %w", perr)
		}
		if ev.Type != api.EventJob {
			return nil
		}
		if evID != "" {
			*lastEventID = evID
		}
		*last = *ev.Job
		progressed = true
		if fn != nil {
			fn(*ev.Job)
		}
		if api.TerminalState(ev.Job.State) {
			return errStreamDone
		}
		return nil
	})
	switch {
	case errors.Is(err, errStreamDone):
		return progressed, nil
	case err != nil:
		return progressed, err
	}
	return progressed, io.ErrUnexpectedEOF
}

// Wait blocks until the job reaches a terminal state, preferring the SSE
// stream and falling back to polling if streaming fails mid-flight.
func (c *Client) Wait(ctx context.Context, id string) (api.Job, error) {
	if j, err := c.Events(ctx, id, nil); err == nil {
		return j, nil
	} else if ctx.Err() != nil {
		return j, ctx.Err()
	}
	interval := c.PollInterval
	if interval <= 0 {
		interval = 100 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		j, err := c.Job(ctx, id)
		if err != nil {
			return api.Job{}, err
		}
		if api.TerminalState(j.State) {
			return j, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return j, ctx.Err()
		}
	}
}

// RunSync submits a run and blocks for its result — the remote analogue
// of experiment.ScheduledRun. A failed or cancelled job is returned as
// an error.
func (c *Client) RunSync(ctx context.Context, req api.RunRequest) (api.RunResult, error) {
	j, err := c.SubmitRun(ctx, req)
	if err != nil {
		return api.RunResult{}, err
	}
	id := j.ID
	j, err = c.Wait(ctx, id)
	if err != nil {
		// Best effort: don't leave the job running server-side when the
		// caller gave up on it.
		if ctx.Err() != nil {
			cctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			_, _ = c.Cancel(cctx, id)
			cancel()
		}
		return api.RunResult{}, err
	}
	switch j.State {
	case api.JobDone:
		if j.Run == nil {
			return api.RunResult{}, fmt.Errorf("client: job %s done without a run result", j.ID)
		}
		return *j.Run, nil
	case api.JobCancelled:
		return api.RunResult{}, fmt.Errorf("client: job %s cancelled: %s", j.ID, j.Error)
	default:
		return api.RunResult{}, fmt.Errorf("client: job %s failed: %s", j.ID, j.Error)
	}
}
