package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

// TestLegacyConsumerAgainstNewFrames pins the deprecation-window
// contract from the other side: a pre-envelope consumer — the exact
// parsing loop this package shipped before the Event envelope, reading
// only `id:`/`data:` lines and decoding the payload as a bare Job —
// must keep working against frames produced by the new server's
// emitter (api.Event.WriteSSE).
func TestLegacyConsumerAgainstNewFrames(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		for seq, state := range map[uint64]string{1: api.JobRunning, 2: api.JobDone} {
			ev := api.Event{Type: api.EventJob, Seq: seq, Job: &api.Job{
				SchemaVersion: api.SchemaVersion, ID: "job-1", Kind: "run", State: state, CreatedMS: 1,
			}}
			if err := ev.WriteSSE(w); err != nil {
				t.Error(err)
			}
		}
	}))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The legacy parser, verbatim: id:/data: prefixes only, bare Job.
	var lastEventID string
	states := map[string]bool{}
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if evID, ok := strings.CutPrefix(line, "id: "); ok {
			lastEventID = evID
			continue
		}
		data, ok := strings.CutPrefix(line, "data: ")
		if !ok {
			continue
		}
		var j api.Job
		if err := json.Unmarshal([]byte(data), &j); err != nil {
			t.Fatalf("legacy consumer cannot decode frame %q: %v", data, err)
		}
		if j.ID != "job-1" {
			t.Fatalf("legacy consumer decoded job %q", j.ID)
		}
		states[j.State] = true
	}
	if !states[api.JobRunning] || !states[api.JobDone] {
		t.Errorf("legacy consumer saw states %v, want running and done", states)
	}
	if lastEventID != "1" && lastEventID != "2" {
		t.Errorf("legacy consumer tracked Last-Event-ID %q", lastEventID)
	}
}

// TestOptions proves the construction surface: the variadic New applies
// options, and the deprecated NewWithHTTPClient still routes through
// them.
func TestOptions(t *testing.T) {
	hc := &http.Client{Timeout: 42 * time.Second}
	c := New("http://x/", WithHTTPClient(hc), WithPollInterval(7*time.Millisecond))
	if c.hc != hc {
		t.Error("WithHTTPClient not applied")
	}
	if c.PollInterval != 7*time.Millisecond {
		t.Error("WithPollInterval not applied")
	}
	if c.base != "http://x" {
		t.Errorf("base %q not trimmed", c.base)
	}
	if old := NewWithHTTPClient("http://x", hc); old.hc != hc {
		t.Error("NewWithHTTPClient no longer installs the http client")
	}
	if def := New("http://x"); def.hc != http.DefaultClient {
		t.Error("optionless New changed defaults")
	}
}

// TestJobsPage pins the paged request shape and cursor pass-through.
func TestJobsPage(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if got := r.URL.Query().Get("limit"); got != "2" {
			t.Errorf("limit %q, want 2", got)
		}
		if got := r.URL.Query().Get("after"); got != "job-3" {
			t.Errorf("after %q, want job-3", got)
		}
		json.NewEncoder(w).Encode(api.JobPage{
			SchemaVersion: api.SchemaVersion,
			Jobs:          []api.Job{{ID: "job-4"}, {ID: "job-5"}},
			NextAfter:     "job-5",
		})
	}))
	defer ts.Close()
	page, err := New(ts.URL).JobsPage(context.Background(), 2, "job-3")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 2 || page.NextAfter != "job-5" {
		t.Errorf("page %+v", page)
	}
	if _, err := New(ts.URL).JobsPage(context.Background(), 0, ""); err == nil {
		t.Error("non-positive limit accepted")
	}
}

// TestStreamSessionFoldsAndReconnects drives the full client-side story
// across a dropped stream: fold the first snapshot, lose the
// connection, resume via Last-Event-ID, fold the replayed diff, skip a
// heartbeat, and finish on the terminal snapshot.
func TestStreamSessionFoldsAndReconnects(t *testing.T) {
	base := api.SessionState{
		SimMS:   500,
		Nodes:   []api.SessionNode{{Util: 0.1}, {Util: 0.2}},
		Tasks:   []api.SessionTask{{Name: "t", Stages: [][]int{{0}}, Completed: 1}},
		Metrics: api.Metrics{Periods: 1, Completed: 1},
	}
	next := base.Clone()
	next.SimMS = 1000
	next.Nodes[0].Util = 0.4
	next.Tasks[0].Completed = 2
	next.Metrics.Completed = 2
	diff := api.DiffStates(base, next)

	running := api.Session{SchemaVersion: api.SchemaVersion, ID: "sess-1", State: api.SessionRunning, SampleMS: 500}
	done := running
	done.State = api.SessionDone

	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			if r.Header.Get("Last-Event-ID") != "" {
				t.Errorf("first connect sent Last-Event-ID %q", r.Header.Get("Last-Event-ID"))
			}
			snap := base.Clone()
			(&api.Event{Type: api.EventSnapshot, Seq: 1, Session: &running, Snapshot: &snap}).WriteSSE(w)
			// Stream dies without a terminal frame.
		default:
			if got := r.Header.Get("Last-Event-ID"); got != "1" {
				t.Errorf("reconnect sent Last-Event-ID %q, want 1", got)
			}
			(&api.Event{Type: api.EventHeartbeat}).WriteSSE(w)
			(&api.Event{Type: api.EventDiff, Seq: 2, Session: &running, Diff: &diff}).WriteSSE(w)
			term := next.Clone()
			(&api.Event{Type: api.EventSnapshot, Seq: 3, Session: &done, Snapshot: &term}).WriteSSE(w)
		}
	}))
	defer ts.Close()

	var delays []time.Duration
	cl := New(ts.URL)
	cl.sleep = noSleep(&delays)
	var kinds []string
	st, sess, err := cl.StreamSession(context.Background(), "sess-1", func(ev api.Event) {
		kinds = append(kinds, ev.Type)
	})
	if err != nil {
		t.Fatalf("StreamSession across a dropped stream: %v", err)
	}
	if !st.Equal(next) {
		t.Errorf("folded state drifted:\n got %+v\nwant %+v", st, next)
	}
	if sess.State != api.SessionDone {
		t.Errorf("terminal stamp %q, want done", sess.State)
	}
	want := fmt.Sprintf("%v", []string{"snapshot", "heartbeat", "diff", "snapshot"})
	if got := fmt.Sprintf("%v", kinds); got != want {
		t.Errorf("frame kinds %v, want %v", got, want)
	}
	if conns.Load() != 2 || len(delays) != 1 {
		t.Errorf("%d connections, %d sleeps; want 2 and 1", conns.Load(), len(delays))
	}
}
