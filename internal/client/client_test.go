package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/api"
)

// noSleep is a Sleeper that returns immediately, recording each delay.
func noSleep(delays *[]time.Duration) func(context.Context, time.Duration) error {
	return func(ctx context.Context, d time.Duration) error {
		*delays = append(*delays, d)
		return ctx.Err()
	}
}

// TestDecodeErrorEnvelope: a proper envelope surfaces its code and
// message; a non-envelope body (proxy, panic page) degrades gracefully.
func TestDecodeErrorEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/enveloped":
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":{"code":"not_found","message":"unknown job"}}`))
		default:
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte("<html>upstream sad</html>"))
		}
	}))
	defer ts.Close()
	cl := New(ts.URL)
	cl.sleep = noSleep(new([]time.Duration)) // the 502 case is retryable; don't wall-sleep

	_, err := cl.Job(context.Background(), "enveloped")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound || apiErr.Status != 404 {
		t.Errorf("enveloped error decoded as %v", err)
	}

	_, err = cl.Job(context.Background(), "garbage")
	if !errors.As(err, &apiErr) || apiErr.Status != 502 || apiErr.Code != api.CodeInternal {
		t.Errorf("non-envelope error decoded as %v", err)
	}
}

// TestSubmitDefaultsSchemaVersion: a zero SchemaVersion is filled in so
// hand-built requests don't trip validation.
func TestSubmitDefaultsSchemaVersion(t *testing.T) {
	var got api.RunRequest
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Error(err)
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"schema_version":1,"id":"job-1","kind":"run","state":"queued","created_ms":1}`))
	}))
	defer ts.Close()
	if _, err := New(ts.URL).SubmitRun(context.Background(), api.RunRequest{Algorithm: api.AlgPredictive}); err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != api.SchemaVersion {
		t.Errorf("submitted schema_version %d, want %d", got.SchemaVersion, api.SchemaVersion)
	}
}

// TestRetryableClassification pins which failures the client retries.
func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{context.Canceled, false},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), false},
		{&APIError{Status: 400, Code: api.CodeBadRequest}, false},
		{&APIError{Status: 404, Code: api.CodeNotFound}, false},
		{&APIError{Status: 409, Code: api.CodeConflict}, false},
		{&APIError{Status: 429, Code: api.CodeQueueFull}, true},
		{&APIError{Status: 500, Code: api.CodeInternal}, true},
		{&APIError{Status: 503, Code: api.CodeJournal}, true},
		{&APIError{Status: 503, Code: api.CodeDraining}, false}, // an explicit refusal
		{io.ErrUnexpectedEOF, true},                             // torn stream
		{fmt.Errorf("dial tcp: connection refused"), true},      // transport
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Errorf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

// TestRetryHonorsRetryAfter: 429s are retried and the server's
// Retry-After hint overrides the backoff schedule.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set(api.RetryAfterHeader, "3")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"error":{"code":"queue_full","message":"full"}}`))
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"schema_version":1,"id":"job-1","kind":"run","state":"queued","created_ms":1}`))
	}))
	defer ts.Close()

	var delays []time.Duration
	cl := New(ts.URL)
	cl.sleep = noSleep(&delays)
	j, err := cl.SubmitRun(context.Background(), api.RunRequest{Algorithm: api.AlgPredictive})
	if err != nil {
		t.Fatalf("submit after backpressure: %v", err)
	}
	if j.ID != "job-1" || hits.Load() != 3 {
		t.Errorf("job %q after %d requests, want job-1 after 3", j.ID, hits.Load())
	}
	if len(delays) != 2 || delays[0] != 3*time.Second || delays[1] != 3*time.Second {
		t.Errorf("slept %v, want two 3s waits from Retry-After", delays)
	}
}

// TestNoRetryOnDraining: a drain refusal is terminal — one request, no
// backoff.
func TestNoRetryOnDraining(t *testing.T) {
	var hits atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":{"code":"draining","message":"server is draining"}}`))
	}))
	defer ts.Close()

	var delays []time.Duration
	cl := New(ts.URL)
	cl.sleep = noSleep(&delays)
	_, err := cl.SubmitRun(context.Background(), api.RunRequest{Algorithm: api.AlgPredictive})
	var ae *APIError
	if !errors.As(err, &ae) || ae.Code != api.CodeDraining {
		t.Fatalf("want the draining refusal back, got %v", err)
	}
	if hits.Load() != 1 || len(delays) != 0 {
		t.Errorf("%d requests and %d sleeps for a drain refusal, want 1 and 0", hits.Load(), len(delays))
	}
}

// TestRetryTransportError: a connection the server kills without a
// response is retried and the next attempt carries the full body again.
func TestRetryTransportError(t *testing.T) {
	var hits atomic.Int32
	var lastBody atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		lastBody.Store(string(body))
		if hits.Add(1) == 1 {
			hj, ok := w.(http.Hijacker)
			if !ok {
				t.Fatal("response writer cannot hijack")
			}
			conn, _, _ := hj.Hijack()
			conn.Close() // torn connection: client sees EOF, no status
			return
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"schema_version":1,"id":"job-1","kind":"run","state":"queued","created_ms":1}`))
	}))
	defer ts.Close()

	var delays []time.Duration
	cl := New(ts.URL)
	cl.sleep = noSleep(&delays)
	if _, err := cl.SubmitRun(context.Background(), api.RunRequest{Algorithm: api.AlgPredictive}); err != nil {
		t.Fatalf("submit across a torn connection: %v", err)
	}
	if hits.Load() != 2 || len(delays) != 1 {
		t.Errorf("%d requests, %d sleeps; want 2 and 1", hits.Load(), len(delays))
	}
	var sent api.RunRequest
	if err := json.Unmarshal([]byte(lastBody.Load().(string)), &sent); err != nil || sent.Algorithm != api.AlgPredictive {
		t.Errorf("retried request body drifted: %q (%v)", lastBody.Load(), err)
	}
}

// TestEventsReconnectWithLastEventID: a dropped SSE stream reconnects
// carrying Last-Event-ID, and the resumed stream's frames are delivered
// exactly once.
func TestEventsReconnectWithLastEventID(t *testing.T) {
	var conns atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		switch conns.Add(1) {
		case 1:
			if r.Header.Get("Last-Event-ID") != "" {
				t.Errorf("first connect sent Last-Event-ID %q", r.Header.Get("Last-Event-ID"))
			}
			fmt.Fprint(w, "id: 1\nevent: state\ndata: {\"schema_version\":1,\"id\":\"job-1\",\"kind\":\"run\",\"state\":\"running\",\"created_ms\":1}\n\n")
			// Stream dies without a terminal frame.
		default:
			if got := r.Header.Get("Last-Event-ID"); got != "1" {
				t.Errorf("reconnect sent Last-Event-ID %q, want 1", got)
			}
			fmt.Fprint(w, "id: 2\nevent: state\ndata: {\"schema_version\":1,\"id\":\"job-1\",\"kind\":\"run\",\"state\":\"done\",\"created_ms\":1}\n\n")
		}
	}))
	defer ts.Close()

	var delays []time.Duration
	cl := New(ts.URL)
	cl.sleep = noSleep(&delays)
	var states []string
	j, err := cl.Events(context.Background(), "job-1", func(j api.Job) { states = append(states, j.State) })
	if err != nil {
		t.Fatalf("events across a dropped stream: %v", err)
	}
	if j.State != api.JobDone {
		t.Errorf("final snapshot %q, want done", j.State)
	}
	if len(states) != 2 || states[0] != api.JobRunning || states[1] != api.JobDone {
		t.Errorf("delivered states %v, want exactly [running done]", states)
	}
	if conns.Load() != 2 || len(delays) != 1 {
		t.Errorf("%d connections, %d sleeps; want 2 and 1", conns.Load(), len(delays))
	}
}
