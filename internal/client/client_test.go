package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/api"
)

// TestDecodeErrorEnvelope: a proper envelope surfaces its code and
// message; a non-envelope body (proxy, panic page) degrades gracefully.
func TestDecodeErrorEnvelope(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/jobs/enveloped":
			w.WriteHeader(http.StatusNotFound)
			w.Write([]byte(`{"error":{"code":"not_found","message":"unknown job"}}`))
		default:
			w.WriteHeader(http.StatusBadGateway)
			w.Write([]byte("<html>upstream sad</html>"))
		}
	}))
	defer ts.Close()
	cl := New(ts.URL)

	_, err := cl.Job(context.Background(), "enveloped")
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeNotFound || apiErr.Status != 404 {
		t.Errorf("enveloped error decoded as %v", err)
	}

	_, err = cl.Job(context.Background(), "garbage")
	if !errors.As(err, &apiErr) || apiErr.Status != 502 || apiErr.Code != api.CodeInternal {
		t.Errorf("non-envelope error decoded as %v", err)
	}
}

// TestSubmitDefaultsSchemaVersion: a zero SchemaVersion is filled in so
// hand-built requests don't trip validation.
func TestSubmitDefaultsSchemaVersion(t *testing.T) {
	var got api.RunRequest
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if err := json.NewDecoder(r.Body).Decode(&got); err != nil {
			t.Error(err)
		}
		w.WriteHeader(http.StatusAccepted)
		w.Write([]byte(`{"schema_version":1,"id":"job-1","kind":"run","state":"queued","created_ms":1}`))
	}))
	defer ts.Close()
	if _, err := New(ts.URL).SubmitRun(context.Background(), api.RunRequest{Algorithm: api.AlgPredictive}); err != nil {
		t.Fatal(err)
	}
	if got.SchemaVersion != api.SchemaVersion {
		t.Errorf("submitted schema_version %d, want %d", got.SchemaVersion, api.SchemaVersion)
	}
}
