package client

import (
	"bufio"
	"errors"
	"io"
	"strings"
)

// errStreamDone is the internal sentinel a frame callback returns to
// end an SSE scan successfully (a terminal frame arrived).
var errStreamDone = errors.New("client: stream done")

// scanSSE reads Server-Sent Events frames from r, invoking fn once per
// complete frame with its id, event name, and data payload (any of
// which may be empty). A non-nil callback error stops the scan and is
// returned. Reaching EOF cleanly returns nil — callers decide whether
// an EOF without a terminal frame is an error (it usually means the
// connection dropped and the stream should resume via Last-Event-ID).
func scanSSE(r io.Reader, fn func(id, name string, data []byte) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var id, name string
	var data []byte
	flush := func() error {
		if data == nil {
			id, name = "", ""
			return nil
		}
		err := fn(id, name, data)
		id, name, data = "", "", nil
		return err
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "id: "):
			id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	// A final frame not terminated by a blank line still counts.
	return flush()
}
