package client

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"

	"repro/internal/api"
	"repro/internal/obs"
)

// CreateSession starts a live simulation session and returns its wire
// view.
func (c *Client) CreateSession(ctx context.Context, req api.SessionRequest) (api.Session, error) {
	if req.SchemaVersion == 0 {
		req.SchemaVersion = api.SchemaVersion
	}
	var s api.Session
	err := c.do(ctx, http.MethodPost, "/v1/sessions", req, &s)
	return s, err
}

// Session fetches one session's current wire view.
func (c *Client) Session(ctx context.Context, id string) (api.Session, error) {
	var s api.Session
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id, nil, &s)
	return s, err
}

// Sessions lists every session the daemon knows, in creation order.
func (c *Client) Sessions(ctx context.Context) ([]api.Session, error) {
	var out []api.Session
	err := c.do(ctx, http.MethodGet, "/v1/sessions", nil, &out)
	return out, err
}

// SessionState fetches the session's latest published snapshot — the
// polling alternative to StreamSession.
func (c *Client) SessionState(ctx context.Context, id string) (api.SessionState, error) {
	var st api.SessionState
	err := c.do(ctx, http.MethodGet, "/v1/sessions/"+id+"/state", nil, &st)
	return st, err
}

// PauseSession gates the session's simulation at its next sample.
func (c *Client) PauseSession(ctx context.Context, id string) (api.Session, error) {
	var s api.Session
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/pause", nil, &s)
	return s, err
}

// ResumeSession releases a paused session.
func (c *Client) ResumeSession(ctx context.Context, id string) (api.Session, error) {
	var s api.Session
	err := c.do(ctx, http.MethodPost, "/v1/sessions/"+id+"/resume", nil, &s)
	return s, err
}

// StopSession stops a live session and returns its terminal view.
func (c *Client) StopSession(ctx context.Context, id string) (api.Session, error) {
	var s api.Session
	err := c.do(ctx, http.MethodDelete, "/v1/sessions/"+id, nil, &s)
	return s, err
}

// StreamSession subscribes to the session's snapshot/diff stream and
// folds it client-side: snapshots replace the tracked state, diffs
// apply to it. fn, when set, sees every decoded frame (heartbeats
// included) before it is folded. A dropped stream reconnects with
// backoff and resumes via Last-Event-ID — the server replays the missed
// tail when it can and falls back to a fresh snapshot when it can't, so
// the fold stays exact across reconnects. Returns the folded state and
// the terminal session stamp once the session ends.
func (c *Client) StreamSession(ctx context.Context, id string, fn func(api.Event)) (api.SessionState, api.Session, error) {
	var st api.SessionState
	var sess api.Session
	var lastEventID string
	sleep := c.sleeper()
	var err error
	for attempt := 1; ; attempt++ {
		var progressed bool
		progressed, err = c.streamSessionOnce(ctx, id, &lastEventID, &st, &sess, fn)
		if err == nil {
			return st, sess, nil
		}
		if progressed {
			attempt = 1
		}
		if !Retryable(err) || attempt >= c.Retry.MaxAttempts() {
			return st, sess, err
		}
		if c.Logger != nil {
			c.Logger.Debug("rmserved session stream reconnecting", "session", id, "attempt", attempt, "last_event_id", lastEventID, "error", err.Error())
		}
		if serr := sleep(ctx, c.Retry.Delay(attempt)); serr != nil {
			return st, sess, err
		}
	}
}

// streamSessionOnce holds one stream connection open, folding frames
// into *st and tracking the resume position. It returns nil once a
// frame stamped with a terminal session state arrived, and whether any
// state frame was folded (progress, for the reconnect budget).
func (c *Client) streamSessionOnce(ctx context.Context, id string, lastEventID *string, st *api.SessionState, sess *api.Session, fn func(api.Event)) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/sessions/"+id+"/stream", nil)
	if err != nil {
		return false, err
	}
	req.Header.Set("Accept", "text/event-stream")
	req.Header.Set(obs.RequestIDHeader, requestID(ctx))
	if *lastEventID != "" {
		req.Header.Set("Last-Event-ID", *lastEventID)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, decodeError(resp)
	}
	progressed := false
	err = scanSSE(resp.Body, func(evID, name string, data []byte) error {
		ev, perr := api.ParseSSE(name, data)
		if perr != nil {
			if errors.Is(perr, api.ErrUnknownEventType) {
				return nil // a newer server; skip frames we don't know
			}
			return fmt.Errorf("client: decoding session event: %w", perr)
		}
		if fn != nil {
			fn(ev)
		}
		switch ev.Type {
		case api.EventSnapshot:
			*st = ev.Snapshot.Clone()
		case api.EventDiff:
			st.Apply(*ev.Diff)
		default:
			// Heartbeats carry no id and no state; they only prove the
			// stream is alive.
			return nil
		}
		if evID != "" {
			*lastEventID = evID
		}
		progressed = true
		if ev.Session != nil {
			*sess = *ev.Session
			if api.TerminalSessionState(ev.Session.State) {
				return errStreamDone
			}
		}
		return nil
	})
	switch {
	case errors.Is(err, errStreamDone):
		return progressed, nil
	case err != nil:
		return progressed, err
	}
	return progressed, io.ErrUnexpectedEOF
}
