package network

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func newSeg(t *testing.T) (*sim.Engine, *Segment) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewSegment(eng, DefaultConfig())
}

func TestWireBytes(t *testing.T) {
	_, s := newSeg(t)
	cfg := s.Config()
	// One-frame message.
	if got := s.WireBytes(100); got != 100+int64(cfg.FrameOverheadBytes)+int64(cfg.PerMessageOverheadBytes) {
		t.Errorf("WireBytes(100) = %d", got)
	}
	// Exactly one MTU → one frame.
	if got := s.WireBytes(1500); got != 1500+38+2048 {
		t.Errorf("WireBytes(1500) = %d", got)
	}
	// One byte over → two frames.
	if got := s.WireBytes(1501); got != 1501+2*38+2048 {
		t.Errorf("WireBytes(1501) = %d", got)
	}
	// Empty payload still burns a frame.
	if got := s.WireBytes(0); got != 38+2048 {
		t.Errorf("WireBytes(0) = %d", got)
	}
}

func TestTxTime(t *testing.T) {
	_, s := newSeg(t)
	// 100 Mbit/s = 12.5 bytes/µs; 2500 wire bytes → 200µs.
	payload := int64(2500 - 38 - 2048)
	if got := s.TxTime(payload); got != 200*sim.Microsecond {
		t.Errorf("TxTime = %v, want 200µs", got)
	}
}

func TestSingleMessageDelivery(t *testing.T) {
	eng, s := newSeg(t)
	m := &Message{From: 0, To: 1, PayloadBytes: 8000}
	var deliveredAt sim.Time
	m.OnDeliver = func(m *Message) { deliveredAt = m.DeliveredAt }
	s.Send(m)
	eng.Run()
	if !m.Delivered() {
		t.Fatal("message not delivered")
	}
	if want := s.TxTime(8000); deliveredAt != want {
		t.Errorf("delivered at %v, want %v", deliveredAt, want)
	}
	if m.BufferDelay() != 0 {
		t.Errorf("buffer delay = %v on idle medium", m.BufferDelay())
	}
	if m.TotalDelay() != deliveredAt {
		t.Errorf("TotalDelay = %v", m.TotalDelay())
	}
	if s.Sent() != 1 {
		t.Errorf("Sent = %d", s.Sent())
	}
}

func TestQueueingDelayEmergesFromContention(t *testing.T) {
	eng, s := newSeg(t)
	m1 := &Message{From: 0, To: 1, PayloadBytes: 8000}
	m2 := &Message{From: 2, To: 3, PayloadBytes: 8000}
	s.Send(m1)
	s.Send(m2)
	eng.Run()
	tx := s.TxTime(8000)
	if m2.BufferDelay() != tx {
		t.Errorf("second message buffer delay = %v, want %v (one tx time)", m2.BufferDelay(), tx)
	}
	if m2.DeliveredAt != 2*tx {
		t.Errorf("second message delivered at %v, want %v", m2.DeliveredAt, 2*tx)
	}
}

func TestFIFOAcrossSenders(t *testing.T) {
	eng, s := newSeg(t)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Send(&Message{From: i, To: 5, PayloadBytes: 100,
			OnDeliver: func(*Message) { order = append(order, i) }})
	}
	eng.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("delivery order %v, want FIFO", order)
		}
	}
}

func TestLocalDeliveryBypassesWire(t *testing.T) {
	eng, s := newSeg(t)
	m := &Message{From: 2, To: 2, PayloadBytes: 1 << 20}
	s.Send(m)
	eng.Run()
	if m.TotalDelay() != s.Config().LocalDelay {
		t.Errorf("local delivery took %v, want %v", m.TotalDelay(), s.Config().LocalDelay)
	}
	if s.BusyTime() != 0 {
		t.Errorf("local delivery consumed wire time %v", s.BusyTime())
	}
	if s.LocalSends() != 1 || s.Sent() != 0 {
		t.Errorf("counters: local=%d wire=%d", s.LocalSends(), s.Sent())
	}
}

func TestBusyTimeAndMeter(t *testing.T) {
	eng, s := newSeg(t)
	payload := int64(2500 - 38 - 2048) // 200µs on the wire
	s.Send(&Message{From: 0, To: 1, PayloadBytes: payload})
	meter := NewMeter(s)
	eng.RunUntil(400 * sim.Microsecond)
	if got := meter.Sample(); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
	if got := meter.Sample(); got != 0 {
		t.Errorf("zero-interval sample = %v", got)
	}
}

func TestBusyTimeIncludesInFlight(t *testing.T) {
	eng, s := newSeg(t)
	payload := int64(2500 - 38 - 2048) // 200µs on the wire
	s.Send(&Message{From: 0, To: 1, PayloadBytes: payload})
	checked := false
	eng.Schedule(50*sim.Microsecond, func() {
		if s.BusyTime() != 50*sim.Microsecond {
			t.Errorf("mid-flight BusyTime = %v", s.BusyTime())
		}
		checked = true
	})
	eng.Run()
	if !checked {
		t.Fatal("mid-flight check did not run")
	}
}

func TestUndeliveredAccessorsPanic(t *testing.T) {
	m := &Message{}
	defer func() {
		if recover() == nil {
			t.Error("BufferDelay of undelivered message did not panic")
		}
	}()
	m.BufferDelay()
}

func TestBadConfigPanics(t *testing.T) {
	eng := sim.NewEngine()
	for name, cfg := range map[string]Config{
		"bandwidth": {BandwidthBps: 0, MTU: 1500},
		"mtu":       {BandwidthBps: 1, MTU: 0},
		"overhead":  {BandwidthBps: 1, MTU: 1, FrameOverheadBytes: -1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad %s config did not panic", name)
				}
			}()
			NewSegment(eng, cfg)
		}()
	}
}

func TestNegativePayloadPanics(t *testing.T) {
	_, s := newSeg(t)
	defer func() {
		if recover() == nil {
			t.Error("negative payload did not panic")
		}
	}()
	s.Send(&Message{PayloadBytes: -1, From: 0, To: 1})
}

// Property: total medium busy time equals the sum of per-message tx times,
// and every message is delivered exactly when the preceding one finishes
// plus its own tx time (work-conserving FIFO).
func TestPropertyWorkConservingFIFO(t *testing.T) {
	f := func(sizes []uint16) bool {
		eng := sim.NewEngine()
		s := NewSegment(eng, DefaultConfig())
		msgs := make([]*Message, len(sizes))
		var wantBusy sim.Time
		for i, sz := range sizes {
			msgs[i] = &Message{From: i % 4, To: (i % 4) + 1, PayloadBytes: int64(sz)}
			wantBusy += s.TxTime(int64(sz))
			s.Send(msgs[i])
		}
		eng.Run()
		if s.BusyTime() != wantBusy {
			return false
		}
		var prevDone sim.Time
		for _, m := range msgs {
			if !m.Delivered() || m.SentAt != prevDone {
				return false
			}
			prevDone = m.DeliveredAt
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: buffer delay grows (weakly) with position for simultaneous
// sends — the congestion behaviour eq. (5) linearizes.
func TestPropertyBufferDelayMonotoneInBacklog(t *testing.T) {
	f := func(n8 uint8) bool {
		n := int(n8%20) + 2
		eng := sim.NewEngine()
		s := NewSegment(eng, DefaultConfig())
		msgs := make([]*Message, n)
		for i := range msgs {
			msgs[i] = &Message{From: 0, To: 1, PayloadBytes: 4000}
			s.Send(msgs[i])
		}
		eng.Run()
		for i := 1; i < n; i++ {
			if msgs[i].BufferDelay() < msgs[i-1].BufferDelay() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestObserverSeesEveryDelivery(t *testing.T) {
	eng, s := newSeg(t)
	var seen []*Message
	s.SetObserver(func(m *Message) {
		if !m.Delivered() {
			t.Error("observer fired before timestamps were final")
		}
		if m.DeliveredAt != eng.Now() {
			t.Errorf("DeliveredAt = %v at sim time %v", m.DeliveredAt, eng.Now())
		}
		seen = append(seen, m)
	})

	var order []*Message
	local := &Message{From: 2, To: 2, PayloadBytes: 100, OnDeliver: func(m *Message) {
		order = append(order, m)
	}}
	remote := &Message{From: 0, To: 1, PayloadBytes: 4000, OnDeliver: func(m *Message) {
		order = append(order, m)
	}}
	s.Send(remote)
	s.Send(local)
	eng.Run()

	if len(seen) != 2 {
		t.Fatalf("observer saw %d deliveries, want 2", len(seen))
	}
	// Observer fires before the message's own OnDeliver: by the time each
	// OnDeliver appended to order, the observer had already recorded it.
	if len(order) != 2 {
		t.Fatalf("OnDeliver fired %d times, want 2", len(order))
	}
	for i, m := range order {
		if seen[i] != m {
			t.Errorf("delivery %d: observer order diverges from OnDeliver order", i)
		}
	}
}

func TestLocalDeliveryFIFO(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSegment(eng, DefaultConfig())
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Send(&Message{From: 3, To: 3, PayloadBytes: int64(10 * (i + 1)),
			OnDeliver: func(*Message) { order = append(order, i) }})
	}
	eng.Run()
	if len(order) != 5 {
		t.Fatalf("delivered %d local messages, want 5", len(order))
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("local delivery order %v, want send order", order)
		}
	}
}

func TestMessagePoolReuse(t *testing.T) {
	eng := sim.NewEngine()
	s := NewSegment(eng, DefaultConfig())
	m1 := s.AcquireMessage()
	m1.From, m1.To, m1.PayloadBytes = 0, 1, 500
	m1.OnDeliver = func(m *Message) { s.ReleaseMessage(m) }
	s.Send(m1)
	eng.Run()

	m2 := s.AcquireMessage()
	if m2 != m1 {
		t.Fatal("AcquireMessage did not reuse the released node")
	}
	if m2.delivered || m2.OnDeliver != nil || m2.PayloadBytes != 0 {
		t.Fatal("recycled message was not zeroed")
	}
	m2.From, m2.To, m2.PayloadBytes = 1, 0, 9000
	delivered := false
	m2.OnDeliver = func(*Message) { delivered = true }
	s.Send(m2)
	eng.Run()
	if !delivered {
		t.Fatal("recycled message was not delivered")
	}
	if got := s.Sent(); got != 2 {
		t.Fatalf("Sent = %d, want 2", got)
	}
}

func TestDropProbability(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.DropProb = 0.3
	cfg.LossSeed = 11
	s := NewSegment(eng, cfg)
	delivered, droppedCB := 0, 0
	const n = 2000
	for i := 0; i < n; i++ {
		s.Send(&Message{From: 0, To: 1, PayloadBytes: 100,
			OnDeliver: func(*Message) { delivered++ },
			OnDrop:    func(*Message) { droppedCB++ }})
	}
	eng.Run()
	if delivered+droppedCB != n {
		t.Fatalf("delivered %d + dropped %d != sent %d", delivered, droppedCB, n)
	}
	if got := s.Dropped(); got != uint64(droppedCB) {
		t.Fatalf("Dropped() = %d, OnDrop fired %d times", got, droppedCB)
	}
	// 30% drop over 2000 messages: expect within a loose band.
	if droppedCB < n/5 || droppedCB > n/2 {
		t.Fatalf("dropped %d of %d, far from 30%%", droppedCB, n)
	}
	if s.Sent() != n {
		t.Fatalf("Sent = %d, want %d (drops still occupy the wire)", s.Sent(), n)
	}
}

func TestDropDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) []bool {
		eng := sim.NewEngine()
		cfg := DefaultConfig()
		cfg.DropProb = 0.25
		cfg.LossSeed = seed
		s := NewSegment(eng, cfg)
		var fates []bool
		for i := 0; i < 200; i++ {
			s.Send(&Message{From: 0, To: 1, PayloadBytes: 64,
				OnDeliver: func(*Message) { fates = append(fates, true) },
				OnDrop:    func(*Message) { fates = append(fates, false) }})
		}
		eng.Run()
		return fates
	}
	a, b := run(5), run(5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("message %d fate differs across identical runs", i)
		}
	}
	c := run(6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different loss seeds produced identical fates")
	}
}

func TestJitterDelaysDelivery(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.JitterAmp = 2.0
	cfg.LossSeed = 9
	s := NewSegment(eng, cfg)
	base := s.TxTime(4096)
	sawLate := false
	for i := 0; i < 50; i++ {
		m := &Message{From: 0, To: 1, PayloadBytes: 4096}
		m.OnDeliver = func(m *Message) {
			lat := m.TotalDelay() - m.BufferDelay()
			if lat < base {
				t.Fatalf("delivery faster than tx time: %v < %v", lat, base)
			}
			if lat > base {
				sawLate = true
			}
		}
		s.Send(m)
	}
	eng.Run()
	if !sawLate {
		t.Fatal("JitterAmp=2 never delayed a delivery")
	}
}

func TestSpikeDelay(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.SpikeProb = 1
	cfg.SpikeDelay = 5 * sim.Millisecond
	cfg.LossSeed = 1
	s := NewSegment(eng, cfg)
	m := &Message{From: 0, To: 1, PayloadBytes: 100}
	var lat sim.Time
	m.OnDeliver = func(m *Message) { lat = m.TotalDelay() }
	s.Send(m)
	eng.Run()
	want := s.TxTime(100) + 5*sim.Millisecond
	if lat != want {
		t.Fatalf("spiked latency %v, want %v", lat, want)
	}
}

func TestPartitionDropsWireNotLocal(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig()
	cfg.Partitions = []Window{{Start: 0, End: sim.Second}}
	s := NewSegment(eng, cfg)
	wireDropped, localDelivered := false, false
	s.Send(&Message{From: 0, To: 1, PayloadBytes: 100,
		OnDeliver: func(*Message) { t.Error("wire message delivered during partition") },
		OnDrop:    func(*Message) { wireDropped = true }})
	s.Send(&Message{From: 2, To: 2, PayloadBytes: 100,
		OnDeliver: func(*Message) { localDelivered = true }})
	// After the partition heals, wire traffic flows again.
	healed := false
	eng.Schedule(2*sim.Second, func() {
		s.Send(&Message{From: 0, To: 1, PayloadBytes: 100,
			OnDeliver: func(*Message) { healed = true },
			OnDrop:    func(*Message) { t.Error("dropped after partition healed") }})
	})
	eng.Run()
	if !wireDropped || !localDelivered || !healed {
		t.Fatalf("wireDropped=%v localDelivered=%v healed=%v", wireDropped, localDelivered, healed)
	}
	if s.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", s.Dropped())
	}
}

// A reliable segment must not construct an RNG at all: loss behavior is
// opt-in and the clean event schedule stays untouched.
func TestReliableSegmentHasNoRNG(t *testing.T) {
	s := NewSegment(sim.NewEngine(), DefaultConfig())
	if s.rng != nil {
		t.Fatal("reliable segment allocated a loss RNG")
	}
}
