// Package network models the shared communication medium of the paper's
// system (§3, item 12; Table 1): the distributed processors share a single
// Ethernet segment (IEEE 802.3 flavour) at 100 Mbit/s.
//
// The medium is half-duplex: transmissions serialize in FIFO order across
// all senders, so queueing ("buffer") delay emerges from contention — the
// quantity the paper's eq. (5) models as a linear function of the total
// periodic workload. Messages between subtasks co-located on one node
// bypass the wire at a small fixed local-delivery cost.
package network

import (
	"fmt"

	"repro/internal/sim"
)

// Config holds segment parameters. The defaults mirror Table 1 plus
// standard Ethernet framing.
type Config struct {
	// BandwidthBps is the link transmission speed in bits per second.
	BandwidthBps int64
	// MTU is the per-frame payload capacity in bytes.
	MTU int
	// FrameOverheadBytes is per-frame framing cost (preamble, header,
	// FCS, inter-frame gap).
	FrameOverheadBytes int
	// PerMessageOverheadBytes models transport/stack cost paid once per
	// message (connection headers, acknowledgements). It is what makes a
	// scatter of many small messages more expensive than one large one.
	PerMessageOverheadBytes int
	// LocalDelay is the fixed delivery latency for same-node messages.
	LocalDelay sim.Time
}

// DefaultConfig returns the Table 1 segment: 100 Mbit/s shared Ethernet.
func DefaultConfig() Config {
	return Config{
		BandwidthBps:            100_000_000,
		MTU:                     1500,
		FrameOverheadBytes:      38,
		PerMessageOverheadBytes: 2048,
		LocalDelay:              20 * sim.Microsecond,
	}
}

// Message is one inter-subtask transfer.
type Message struct {
	From, To     int // node ids
	PayloadBytes int64
	Meta         any
	OnDeliver    func(m *Message)

	EnqueuedAt  sim.Time
	SentAt      sim.Time // transmission start (equals EnqueuedAt for local)
	DeliveredAt sim.Time
	delivered   bool
}

// Delivered reports whether the message has reached its destination.
func (m *Message) Delivered() bool { return m.delivered }

// BufferDelay returns the time the message waited before transmission
// began — the paper's D_buf. It panics if the message is undelivered.
func (m *Message) BufferDelay() sim.Time {
	if !m.delivered {
		panic("network: BufferDelay of undelivered message")
	}
	return m.SentAt - m.EnqueuedAt
}

// TotalDelay returns enqueue-to-delivery latency — the paper's ecd.
func (m *Message) TotalDelay() sim.Time {
	if !m.delivered {
		panic("network: TotalDelay of undelivered message")
	}
	return m.DeliveredAt - m.EnqueuedAt
}

// Segment is the shared medium.
type Segment struct {
	eng *sim.Engine
	cfg Config

	queue []*Message
	busy  bool

	cumBusy    sim.Time
	busyStart  sim.Time
	sent       uint64
	wireBytes  int64
	localSends uint64

	observer func(m *Message)
}

// SetObserver installs a delivery observer: it sees every message —
// task data, clock-synchronization exchanges, anything riding the
// segment — at the moment it is delivered, with EnqueuedAt/SentAt/
// DeliveredAt final, before the message's own OnDeliver callback.
// Telemetry hooks in here so the buffer-vs-wire delay split (eqs. 4–6)
// is observable for all traffic.
func (s *Segment) SetObserver(fn func(m *Message)) { s.observer = fn }

// NewSegment returns a segment with the given configuration.
func NewSegment(eng *sim.Engine, cfg Config) *Segment {
	if cfg.BandwidthBps <= 0 {
		panic(fmt.Sprintf("network: non-positive bandwidth %d", cfg.BandwidthBps))
	}
	if cfg.MTU <= 0 {
		panic(fmt.Sprintf("network: non-positive MTU %d", cfg.MTU))
	}
	if cfg.FrameOverheadBytes < 0 || cfg.PerMessageOverheadBytes < 0 || cfg.LocalDelay < 0 {
		panic("network: negative overhead configuration")
	}
	return &Segment{eng: eng, cfg: cfg}
}

// Config returns the segment configuration.
func (s *Segment) Config() Config { return s.cfg }

// WireBytes returns the bytes a message of the given payload occupies on
// the wire, including framing and per-message overhead.
func (s *Segment) WireBytes(payload int64) int64 {
	if payload < 0 {
		panic(fmt.Sprintf("network: negative payload %d", payload))
	}
	frames := (payload + int64(s.cfg.MTU) - 1) / int64(s.cfg.MTU)
	if frames == 0 {
		frames = 1
	}
	return payload + frames*int64(s.cfg.FrameOverheadBytes) + int64(s.cfg.PerMessageOverheadBytes)
}

// TxTime returns the pure transmission time for the given payload — the
// paper's D_trans = d/ls, with framing included.
func (s *Segment) TxTime(payload int64) sim.Time {
	bits := s.WireBytes(payload) * 8
	return sim.Time(float64(bits) / float64(s.cfg.BandwidthBps) * float64(sim.Second))
}

// Send enqueues a message for delivery. Same-node messages bypass the
// medium entirely.
func (s *Segment) Send(m *Message) {
	if m.PayloadBytes < 0 {
		panic(fmt.Sprintf("network: message with negative payload %d", m.PayloadBytes))
	}
	now := s.eng.Now()
	m.EnqueuedAt = now
	if m.From == m.To {
		s.localSends++
		m.SentAt = now
		s.eng.After(s.cfg.LocalDelay, func() {
			m.DeliveredAt = s.eng.Now()
			m.delivered = true
			if s.observer != nil {
				s.observer(m)
			}
			if m.OnDeliver != nil {
				m.OnDeliver(m)
			}
		})
		return
	}
	s.queue = append(s.queue, m)
	if !s.busy {
		s.transmitNext()
	}
}

func (s *Segment) transmitNext() {
	if len(s.queue) == 0 {
		s.busy = false
		return
	}
	m := s.queue[0]
	s.queue = s.queue[1:]
	s.busy = true
	s.busyStart = s.eng.Now()
	m.SentAt = s.eng.Now()
	tx := s.TxTime(m.PayloadBytes)
	s.eng.After(tx, func() {
		s.cumBusy += tx
		s.sent++
		s.wireBytes += s.WireBytes(m.PayloadBytes)
		m.DeliveredAt = s.eng.Now()
		m.delivered = true
		s.transmitNext()
		if s.observer != nil {
			s.observer(m)
		}
		if m.OnDeliver != nil {
			m.OnDeliver(m)
		}
	})
}

// QueueLen returns the number of messages waiting (excluding the one in
// flight).
func (s *Segment) QueueLen() int { return len(s.queue) }

// Busy reports whether a transmission is in progress.
func (s *Segment) Busy() bool { return s.busy }

// Sent returns the number of messages fully transmitted over the wire.
func (s *Segment) Sent() uint64 { return s.sent }

// LocalSends returns the number of same-node deliveries.
func (s *Segment) LocalSends() uint64 { return s.localSends }

// TotalWireBytes returns cumulative bytes transmitted, with overheads.
func (s *Segment) TotalWireBytes() int64 { return s.wireBytes }

// BusyTime returns cumulative medium-busy time including the in-flight
// transmission.
func (s *Segment) BusyTime() sim.Time {
	t := s.cumBusy
	if s.busy {
		t += s.eng.Now() - s.busyStart
	}
	return t
}

// Meter samples segment utilization over successive intervals.
type Meter struct {
	s        *Segment
	lastBusy sim.Time
	lastAt   sim.Time
}

// NewMeter returns a meter anchored at the current time.
func NewMeter(s *Segment) *Meter {
	return &Meter{s: s, lastBusy: s.BusyTime(), lastAt: s.eng.Now()}
}

// Sample returns the utilization (0..1) since the previous Sample and
// re-anchors the meter. A zero-length interval yields 0.
func (m *Meter) Sample() float64 {
	now := m.s.eng.Now()
	busy := m.s.BusyTime()
	dt := now - m.lastAt
	db := busy - m.lastBusy
	m.lastAt, m.lastBusy = now, busy
	if dt <= 0 {
		return 0
	}
	return float64(db) / float64(dt)
}
