// Package network models the shared communication medium of the paper's
// system (§3, item 12; Table 1): the distributed processors share a single
// Ethernet segment (IEEE 802.3 flavour) at 100 Mbit/s.
//
// The medium is half-duplex: transmissions serialize in FIFO order across
// all senders, so queueing ("buffer") delay emerges from contention — the
// quantity the paper's eq. (5) models as a linear function of the total
// periodic workload. Messages between subtasks co-located on one node
// bypass the wire at a small fixed local-delivery cost.
package network

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/sim"
)

// Config holds segment parameters. The defaults mirror Table 1 plus
// standard Ethernet framing.
type Config struct {
	// BandwidthBps is the link transmission speed in bits per second.
	BandwidthBps int64
	// MTU is the per-frame payload capacity in bytes.
	MTU int
	// FrameOverheadBytes is per-frame framing cost (preamble, header,
	// FCS, inter-frame gap).
	FrameOverheadBytes int
	// PerMessageOverheadBytes models transport/stack cost paid once per
	// message (connection headers, acknowledgements). It is what makes a
	// scatter of many small messages more expensive than one large one.
	PerMessageOverheadBytes int
	// LocalDelay is the fixed delivery latency for same-node messages.
	LocalDelay sim.Time

	// The fields below model a degraded segment. All-zero values keep the
	// segment perfectly reliable and draw nothing from the RNG, so the
	// event schedule is bit-identical to a build without them.

	// DropProb is the probability a wire message is lost after occupying
	// the medium (the bits were transmitted but never arrived). In [0, 1).
	DropProb float64
	// JitterAmp adds a uniform extra delivery delay in
	// [0, JitterAmp × txTime] after transmission completes, modeling
	// stack and switch variance. Must be ≥ 0.
	JitterAmp float64
	// SpikeProb is the probability a delivered message suffers an extra
	// SpikeDelay latency spike (e.g. a retransmit storm elsewhere on the
	// LAN). In [0, 1].
	SpikeProb float64
	// SpikeDelay is the extra latency applied when a spike fires.
	SpikeDelay sim.Time
	// LossSeed seeds the segment's private loss/jitter RNG stream. The
	// core facade defaults it to the run seed so chaos runs stay
	// deterministic per seed.
	LossSeed uint64
	// Partitions are transient whole-segment outages: any wire message
	// whose transmission completes inside a window is lost. Must be
	// time-sorted and non-overlapping. Local (same-node) delivery is
	// unaffected.
	Partitions []Window
}

// Window is a half-open outage interval [Start, End).
type Window struct {
	Start, End sim.Time
}

// WireBytes returns the bytes a message of the given payload occupies on
// the wire, including framing and per-message overhead.
func (c Config) WireBytes(payload int64) int64 {
	if payload < 0 {
		panic(fmt.Sprintf("network: negative payload %d", payload))
	}
	frames := (payload + int64(c.MTU) - 1) / int64(c.MTU)
	if frames == 0 {
		frames = 1
	}
	return payload + frames*int64(c.FrameOverheadBytes) + int64(c.PerMessageOverheadBytes)
}

// TxTime returns the pure transmission time for the given payload — the
// paper's D_trans = d/ls, with framing included.
func (c Config) TxTime(payload int64) sim.Time {
	if c.BandwidthBps <= 0 {
		panic(fmt.Sprintf("network: non-positive bandwidth %d", c.BandwidthBps))
	}
	bits := c.WireBytes(payload) * 8
	return sim.Time(float64(bits) / float64(c.BandwidthBps) * float64(sim.Second))
}

// CrossLaneDelay returns the fixed delivery latency of one inter-segment
// message in a lane-partitioned run: transmission time of the payload on
// an uplink of this segment's speed, plus the local stack cost. No
// cross-lane message can arrive sooner, which makes this the conservative
// lookahead of the lane epoch protocol.
func (c Config) CrossLaneDelay(payload int64) sim.Time {
	return c.TxTime(payload) + c.LocalDelay
}

// lossy reports whether any degradation knob needs the RNG.
func (c Config) lossy() bool {
	return c.DropProb > 0 || c.JitterAmp > 0 || c.SpikeProb > 0
}

// DefaultConfig returns the Table 1 segment: 100 Mbit/s shared Ethernet.
func DefaultConfig() Config {
	return Config{
		BandwidthBps:            100_000_000,
		MTU:                     1500,
		FrameOverheadBytes:      38,
		PerMessageOverheadBytes: 2048,
		LocalDelay:              20 * sim.Microsecond,
	}
}

// Message is one inter-subtask transfer.
type Message struct {
	From, To     int // node ids
	PayloadBytes int64
	Meta         any
	OnDeliver    func(m *Message)
	// OnDrop fires instead of OnDeliver when the segment loses the
	// message (drop probability or partition). The segment does not
	// retransmit; recovery is the sender's business.
	OnDrop func(m *Message)

	EnqueuedAt  sim.Time
	SentAt      sim.Time // transmission start (equals EnqueuedAt for local)
	DeliveredAt sim.Time
	delivered   bool
	nextFree    *Message
}

// Delivered reports whether the message has reached its destination.
func (m *Message) Delivered() bool { return m.delivered }

// BufferDelay returns the time the message waited before transmission
// began — the paper's D_buf. It panics if the message is undelivered.
func (m *Message) BufferDelay() sim.Time {
	if !m.delivered {
		panic("network: BufferDelay of undelivered message")
	}
	return m.SentAt - m.EnqueuedAt
}

// TotalDelay returns enqueue-to-delivery latency — the paper's ecd.
func (m *Message) TotalDelay() sim.Time {
	if !m.delivered {
		panic("network: TotalDelay of undelivered message")
	}
	return m.DeliveredAt - m.EnqueuedAt
}

// msgRing is a circular FIFO of messages: dequeues are index updates, not
// slice reallocations, so steady-state traffic allocates nothing.
type msgRing struct {
	buf  []*Message
	head int
	n    int
}

func (r *msgRing) len() int { return r.n }

func (r *msgRing) push(m *Message) {
	if r.n == len(r.buf) {
		size := 2 * len(r.buf)
		if size < 4 {
			size = 4
		}
		buf := make([]*Message, size)
		for i := 0; i < r.n; i++ {
			buf[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = buf, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = m
	r.n++
}

func (r *msgRing) popFront() *Message {
	m := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return m
}

// Segment is the shared medium.
type Segment struct {
	eng *sim.Engine
	cfg Config

	queue      msgRing
	localQueue msgRing // same-node sends awaiting their fixed-delay timer
	busy       bool
	inflight   *Message
	inflightTx sim.Time

	// Cached callbacks: one closure alloc per segment, not per message.
	// Delivery timers are still scheduled one-per-send so the engine's
	// (when, seq) event order is identical to the naive implementation.
	onTxDone       func()
	onLocalDeliver func()

	freeMsg *Message // recycled Message nodes (see AcquireMessage)

	// Degradation state. rng is nil unless a loss/jitter knob is set, so
	// a reliable segment makes zero draws and schedules zero extra events.
	rng     *rand.Rand
	partIdx int // first partition window not yet wholly in the past

	cumBusy    sim.Time
	busyStart  sim.Time
	sent       uint64
	wireBytes  int64
	localSends uint64
	dropped    uint64

	observer func(m *Message)
}

// SetObserver installs a delivery observer: it sees every message —
// task data, clock-synchronization exchanges, anything riding the
// segment — at the moment it is delivered, with EnqueuedAt/SentAt/
// DeliveredAt final, before the message's own OnDeliver callback.
// Telemetry hooks in here so the buffer-vs-wire delay split (eqs. 4–6)
// is observable for all traffic.
func (s *Segment) SetObserver(fn func(m *Message)) { s.observer = fn }

// NewSegment returns a segment with the given configuration.
func NewSegment(eng *sim.Engine, cfg Config) *Segment {
	if cfg.BandwidthBps <= 0 {
		panic(fmt.Sprintf("network: non-positive bandwidth %d", cfg.BandwidthBps))
	}
	if cfg.MTU <= 0 {
		panic(fmt.Sprintf("network: non-positive MTU %d", cfg.MTU))
	}
	if cfg.FrameOverheadBytes < 0 || cfg.PerMessageOverheadBytes < 0 || cfg.LocalDelay < 0 {
		panic("network: negative overhead configuration")
	}
	if cfg.DropProb < 0 || cfg.DropProb >= 1 {
		panic(fmt.Sprintf("network: drop probability %v outside [0,1)", cfg.DropProb))
	}
	if cfg.JitterAmp < 0 || cfg.SpikeProb < 0 || cfg.SpikeProb > 1 || cfg.SpikeDelay < 0 {
		panic("network: negative jitter/spike configuration")
	}
	for i, w := range cfg.Partitions {
		if w.End <= w.Start || (i > 0 && w.Start < cfg.Partitions[i-1].End) {
			panic(fmt.Sprintf("network: partition windows must be sorted and non-overlapping, got %+v", cfg.Partitions))
		}
	}
	s := &Segment{eng: eng, cfg: cfg}
	s.onTxDone = s.txDone
	s.onLocalDeliver = s.localDeliver
	if cfg.lossy() {
		s.rng = sim.NewRand(cfg.LossSeed, 0x10c5)
	}
	return s
}

// AcquireMessage returns a zeroed Message, reusing a previously released
// one when available. Pair with ReleaseMessage on hot paths to keep
// steady-state traffic allocation-free; plain &Message{} remains valid.
func (s *Segment) AcquireMessage() *Message {
	m := s.freeMsg
	if m == nil {
		return &Message{}
	}
	s.freeMsg = m.nextFree
	*m = Message{}
	return m
}

// ReleaseMessage recycles a message for a later AcquireMessage. The caller
// must be done with it: typically called from (or after) the message's
// OnDeliver callback, never while the message is queued or in flight.
func (s *Segment) ReleaseMessage(m *Message) {
	*m = Message{}
	m.nextFree = s.freeMsg
	s.freeMsg = m
}

// Config returns the segment configuration.
func (s *Segment) Config() Config { return s.cfg }

// WireBytes returns the bytes a message of the given payload occupies on
// the wire, including framing and per-message overhead.
func (s *Segment) WireBytes(payload int64) int64 { return s.cfg.WireBytes(payload) }

// TxTime returns the pure transmission time for the given payload — the
// paper's D_trans = d/ls, with framing included.
func (s *Segment) TxTime(payload int64) sim.Time { return s.cfg.TxTime(payload) }

// Send enqueues a message for delivery. Same-node messages bypass the
// medium entirely.
func (s *Segment) Send(m *Message) {
	if m.PayloadBytes < 0 {
		panic(fmt.Sprintf("network: message with negative payload %d", m.PayloadBytes))
	}
	now := s.eng.Now()
	m.EnqueuedAt = now
	if m.From == m.To {
		s.localSends++
		m.SentAt = now
		// All local deliveries share the same fixed delay, so the timers
		// fire in schedule order and the FIFO ring matches them exactly.
		s.localQueue.push(m)
		s.eng.After(s.cfg.LocalDelay, s.onLocalDeliver)
		return
	}
	s.queue.push(m)
	if !s.busy {
		s.transmitNext()
	}
}

// localDeliver completes the oldest pending same-node delivery.
func (s *Segment) localDeliver() {
	m := s.localQueue.popFront()
	m.DeliveredAt = s.eng.Now()
	m.delivered = true
	if s.observer != nil {
		s.observer(m)
	}
	if m.OnDeliver != nil {
		m.OnDeliver(m)
	}
}

func (s *Segment) transmitNext() {
	if s.queue.len() == 0 {
		s.busy = false
		s.inflight = nil
		return
	}
	m := s.queue.popFront()
	s.busy = true
	s.busyStart = s.eng.Now()
	m.SentAt = s.busyStart
	s.inflight = m
	s.inflightTx = s.TxTime(m.PayloadBytes)
	s.eng.After(s.inflightTx, s.onTxDone)
}

// txDone completes the in-flight transmission. On a degraded segment the
// message may then be lost (partition, drop probability) or delayed
// (jitter, spike); every branch below is gated on its own knob so a
// reliable segment takes the exact event schedule it always has.
func (s *Segment) txDone() {
	m, tx := s.inflight, s.inflightTx
	s.cumBusy += tx
	s.sent++
	s.wireBytes += s.WireBytes(m.PayloadBytes)
	now := s.eng.Now()
	if len(s.cfg.Partitions) > 0 && s.inPartition(now) {
		s.drop(m)
		return
	}
	if s.cfg.DropProb > 0 && s.rng.Float64() < s.cfg.DropProb {
		s.drop(m)
		return
	}
	var extra sim.Time
	if s.cfg.JitterAmp > 0 {
		extra = sim.Time(float64(tx) * s.cfg.JitterAmp * s.rng.Float64())
	}
	if s.cfg.SpikeProb > 0 && s.rng.Float64() < s.cfg.SpikeProb {
		extra += s.cfg.SpikeDelay
	}
	if extra > 0 {
		// The medium is free while the message limps through the stack;
		// late deliveries ride a per-message timer.
		s.transmitNext()
		s.eng.After(extra, func() { s.deliver(m) })
		return
	}
	m.DeliveredAt = now
	m.delivered = true
	s.transmitNext()
	if s.observer != nil {
		s.observer(m)
	}
	if m.OnDeliver != nil {
		m.OnDeliver(m)
	}
}

// deliver completes a jitter-delayed wire message.
func (s *Segment) deliver(m *Message) {
	m.DeliveredAt = s.eng.Now()
	m.delivered = true
	if s.observer != nil {
		s.observer(m)
	}
	if m.OnDeliver != nil {
		m.OnDeliver(m)
	}
}

// drop loses a transmitted message: the bits occupied the wire but never
// arrived. The observer does not see it (no delivery timestamps exist);
// the sender hears about it only through OnDrop.
func (s *Segment) drop(m *Message) {
	s.dropped++
	s.transmitNext()
	if m.OnDrop != nil {
		m.OnDrop(m)
	}
}

// inPartition advances the partition cursor (transmission completions are
// monotonic in time) and reports whether now falls inside an outage.
func (s *Segment) inPartition(now sim.Time) bool {
	ps := s.cfg.Partitions
	for s.partIdx < len(ps) && ps[s.partIdx].End <= now {
		s.partIdx++
	}
	return s.partIdx < len(ps) && ps[s.partIdx].Start <= now
}

// QueueLen returns the number of messages waiting (excluding the one in
// flight).
func (s *Segment) QueueLen() int { return s.queue.len() }

// Busy reports whether a transmission is in progress.
func (s *Segment) Busy() bool { return s.busy }

// Sent returns the number of messages fully transmitted over the wire.
func (s *Segment) Sent() uint64 { return s.sent }

// LocalSends returns the number of same-node deliveries.
func (s *Segment) LocalSends() uint64 { return s.localSends }

// Dropped returns the number of wire messages lost to drop probability or
// partitions.
func (s *Segment) Dropped() uint64 { return s.dropped }

// TotalWireBytes returns cumulative bytes transmitted, with overheads.
func (s *Segment) TotalWireBytes() int64 { return s.wireBytes }

// BusyTime returns cumulative medium-busy time including the in-flight
// transmission.
func (s *Segment) BusyTime() sim.Time {
	t := s.cumBusy
	if s.busy {
		t += s.eng.Now() - s.busyStart
	}
	return t
}

// Meter samples segment utilization over successive intervals.
type Meter struct {
	s        *Segment
	lastBusy sim.Time
	lastAt   sim.Time
}

// NewMeter returns a meter anchored at the current time.
func NewMeter(s *Segment) *Meter {
	return &Meter{s: s, lastBusy: s.BusyTime(), lastAt: s.eng.Now()}
}

// Sample returns the utilization (0..1) since the previous Sample and
// re-anchors the meter. A zero-length interval yields 0.
func (m *Meter) Sample() float64 {
	now := m.s.eng.Now()
	busy := m.s.BusyTime()
	dt := now - m.lastAt
	db := busy - m.lastBusy
	m.lastAt, m.lastBusy = now, busy
	if dt <= 0 {
		return 0
	}
	return float64(db) / float64(dt)
}
