package clocksync

import (
	"testing"
	"testing/quick"

	"repro/internal/network"
	"repro/internal/sim"
)

func TestClockOffsetAndDrift(t *testing.T) {
	eng := sim.NewEngine()
	c := NewClock(eng, 5*sim.Millisecond, 100) // +100 ppm fast
	if c.Offset() != 5*sim.Millisecond {
		t.Fatalf("initial offset = %v", c.Offset())
	}
	eng.RunUntil(10 * sim.Second)
	// After 10s at +100ppm the clock gained an extra 1ms.
	want := 5*sim.Millisecond + sim.Time(float64(10*sim.Second)*100e-6)
	if got := c.Offset(); got != want {
		t.Errorf("offset after 10s = %v, want %v", got, want)
	}
	if c.DriftPPM() != 100 {
		t.Errorf("DriftPPM = %v", c.DriftPPM())
	}
}

func TestClockAdjust(t *testing.T) {
	eng := sim.NewEngine()
	c := NewClock(eng, 10*sim.Millisecond, 0)
	c.Adjust(-10 * sim.Millisecond)
	if c.Offset() != 0 {
		t.Errorf("offset after correction = %v, want 0", c.Offset())
	}
}

func TestClockImplausibleDriftPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("huge drift did not panic")
		}
	}()
	NewClock(sim.NewEngine(), 0, 1e6)
}

func newSyncFixture(offsets map[int]sim.Time, drift map[int]float64) (*sim.Engine, *Synchronizer) {
	eng := sim.NewEngine()
	seg := network.NewSegment(eng, network.DefaultConfig())
	server := NewClock(eng, 0, 0)
	sync := NewSynchronizer(eng, seg, 0, server, 250*sim.Millisecond, 0.5)
	for node, off := range offsets {
		sync.AddClient(node, NewClock(eng, off, drift[node]))
	}
	return eng, sync
}

func TestSynchronizerConverges(t *testing.T) {
	eng, sync := newSyncFixture(
		map[int]sim.Time{1: 20 * sim.Millisecond, 2: -15 * sim.Millisecond, 3: 3 * sim.Millisecond},
		map[int]float64{1: 50, 2: -80, 3: 10},
	)
	sync.Start()
	eng.RunUntil(20 * sim.Second)
	if got := sync.MaxAbsOffset(); got > 300*sim.Microsecond {
		t.Errorf("max offset after sync = %v, want ≤ 300µs", got)
	}
	if sync.Rounds() == 0 {
		t.Error("no exchanges completed")
	}
}

func TestSynchronizerStop(t *testing.T) {
	eng, sync := newSyncFixture(map[int]sim.Time{1: sim.Millisecond}, nil)
	sync.Start()
	eng.RunUntil(sim.Second)
	sync.Stop()
	r := sync.Rounds()
	eng.RunUntil(5 * sim.Second)
	// An exchange launched by the tick at exactly 1s may still complete.
	if sync.Rounds() > r+1 {
		t.Errorf("rounds kept advancing after Stop: %d → %d", r, sync.Rounds())
	}
}

func TestSynchronizerValidation(t *testing.T) {
	eng := sim.NewEngine()
	seg := network.NewSegment(eng, network.DefaultConfig())
	server := NewClock(eng, 0, 0)
	for name, build := range map[string]func(){
		"period": func() { NewSynchronizer(eng, seg, 0, server, 0, 0.5) },
		"gain":   func() { NewSynchronizer(eng, seg, 0, server, sim.Second, 0) },
		"client": func() {
			NewSynchronizer(eng, seg, 0, server, sim.Second, 0.5).AddClient(0, server)
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s validation missing", name)
				}
			}()
			build()
		}()
	}
}

func TestStartIdempotent(t *testing.T) {
	eng, sync := newSyncFixture(map[int]sim.Time{1: sim.Millisecond}, nil)
	sync.Start()
	sync.Start()
	eng.RunUntil(sim.Second + 10*sim.Millisecond)
	// 250ms period over ~1s → 5 tick rounds (t=0,250,…,1000); doubling
	// the chain would double this.
	if got := sync.Rounds(); got > 5 {
		t.Errorf("rounds = %d after double Start, want ≤ 5", got)
	}
}

// Property: from any bounded initial offset and drift, the synchronized
// offset after 30 virtual seconds is far smaller than the initial offset.
func TestPropertyConvergence(t *testing.T) {
	f := func(off int16, driftRaw int8) bool {
		initial := sim.Time(off) * sim.Microsecond * 100 // up to ±3.3s
		drift := float64(driftRaw)                       // ±127 ppm
		eng := sim.NewEngine()
		seg := network.NewSegment(eng, network.DefaultConfig())
		server := NewClock(eng, 0, 0)
		sync := NewSynchronizer(eng, seg, 0, server, 250*sim.Millisecond, 0.5)
		sync.AddClient(1, NewClock(eng, initial, drift))
		sync.Start()
		eng.RunUntil(30 * sim.Second)
		final := sync.MaxAbsOffset()
		// Converged to sub-millisecond regardless of start.
		return final < sim.Millisecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
