// Package clocksync makes the paper's synchronized-clocks assumption (§3,
// item 12: "the clocks of the processors are synchronized using an
// algorithm such as [Mills95]") reproducible rather than axiomatic.
//
// Each node owns a Clock with an initial offset and a constant drift rate.
// A Synchronizer runs a Mills/NTP-style exchange over the simulated shared
// segment: a client timestamps a request (t1), the server timestamps
// receipt and reply (t2 = t3), and the client timestamps the response
// (t4); the offset estimate ((t2−t1)+(t3−t4))/2 is slewed into the client
// clock with a configurable gain.
package clocksync

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/network"
	"repro/internal/sim"
)

// Clock is a node-local clock with offset and drift relative to true
// (engine) time.
type Clock struct {
	eng      *sim.Engine
	driftPPM float64

	anchorTrue  sim.Time // engine time of the last adjustment
	anchorLocal sim.Time // local reading at that instant
}

// NewClock returns a clock whose reading at the current engine time is
// engine-now + initialOffset, advancing at (1 + driftPPM·1e−6) the true
// rate.
func NewClock(eng *sim.Engine, initialOffset sim.Time, driftPPM float64) *Clock {
	if math.Abs(driftPPM) > 10_000 {
		panic(fmt.Sprintf("clocksync: implausible drift %v ppm", driftPPM))
	}
	return &Clock{
		eng:         eng,
		driftPPM:    driftPPM,
		anchorTrue:  eng.Now(),
		anchorLocal: eng.Now() + initialOffset,
	}
}

// Now returns the local clock reading.
func (c *Clock) Now() sim.Time {
	dt := c.eng.Now() - c.anchorTrue
	skewed := sim.Time(float64(dt) * (1 + c.driftPPM*1e-6))
	return c.anchorLocal + skewed
}

// Adjust slews the clock by delta, effective immediately.
func (c *Clock) Adjust(delta sim.Time) {
	now := c.Now()
	c.anchorTrue = c.eng.Now()
	c.anchorLocal = now + delta
}

// Offset returns the clock's current error relative to true time.
func (c *Clock) Offset() sim.Time { return c.Now() - c.eng.Now() }

// DriftPPM returns the configured drift rate.
func (c *Clock) DriftPPM() float64 { return c.driftPPM }

// Synchronizer periodically disciplines client clocks against a server
// clock over a shared segment.
type Synchronizer struct {
	eng     *sim.Engine
	seg     *network.Segment
	period  sim.Time
	gain    float64 // fraction of the estimated offset corrected per round
	payload int64

	serverNode int
	server     *Clock
	clients    map[int]*Clock
	// order fixes the exchange sequence: map iteration is randomized per
	// process, which would make the shared segment's FIFO order — and so
	// the whole run — irreproducible.
	order []int

	rounds  uint64
	running bool
}

// NewSynchronizer returns a stopped synchronizer. Gain in (0, 1]; 1 steps
// the full estimated offset each round.
func NewSynchronizer(eng *sim.Engine, seg *network.Segment, serverNode int, server *Clock, period sim.Time, gain float64) *Synchronizer {
	if period <= 0 {
		panic(fmt.Sprintf("clocksync: non-positive period %v", period))
	}
	if gain <= 0 || gain > 1 {
		panic(fmt.Sprintf("clocksync: gain %v out of (0,1]", gain))
	}
	return &Synchronizer{
		eng:        eng,
		seg:        seg,
		period:     period,
		gain:       gain,
		payload:    48, // NTP packet size
		serverNode: serverNode,
		server:     server,
		clients:    make(map[int]*Clock),
	}
}

// AddClient registers a client clock on the given node.
func (s *Synchronizer) AddClient(node int, c *Clock) {
	if node == s.serverNode {
		panic("clocksync: server node registered as client")
	}
	if _, dup := s.clients[node]; !dup {
		i := sort.SearchInts(s.order, node)
		s.order = append(s.order, 0)
		copy(s.order[i+1:], s.order[i:])
		s.order[i] = node
	}
	s.clients[node] = c
}

// Rounds returns the number of completed client exchanges.
func (s *Synchronizer) Rounds() uint64 { return s.rounds }

// Start begins periodic exchanges; it is a no-op if already running.
func (s *Synchronizer) Start() {
	if s.running {
		return
	}
	s.running = true
	s.tick()
}

// Stop halts future exchanges; in-flight ones complete.
func (s *Synchronizer) Stop() { s.running = false }

func (s *Synchronizer) tick() {
	if !s.running {
		return
	}
	for _, node := range s.order {
		s.exchange(node, s.clients[node])
	}
	s.eng.After(s.period, func() { s.tick() })
}

func (s *Synchronizer) exchange(node int, clock *Clock) {
	t1 := clock.Now()
	req := &network.Message{From: node, To: s.serverNode, PayloadBytes: s.payload}
	req.OnDeliver = func(*network.Message) {
		t2 := s.server.Now()
		t3 := t2 // zero server hold time
		resp := &network.Message{From: s.serverNode, To: node, PayloadBytes: s.payload}
		resp.OnDeliver = func(*network.Message) {
			t4 := clock.Now()
			est := ((t2 - t1) + (t3 - t4)) / 2
			clock.Adjust(sim.Time(s.gain * float64(est)))
			s.rounds++
		}
		s.seg.Send(resp)
	}
	s.seg.Send(req)
}

// MaxAbsOffset returns the largest |client − server| clock difference.
func (s *Synchronizer) MaxAbsOffset() sim.Time {
	ref := s.server.Now()
	var worst sim.Time
	for _, c := range s.clients {
		d := c.Now() - ref
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	return worst
}
