package manager

import "repro/internal/task"

// Greedy is an additional baseline beyond the paper's two algorithms: it
// reacts to a replication candidate by adding exactly one replica on the
// least-utilized live processor — no forecasting, no threshold — and
// always consents to shutting down a spare replica. It represents the
// simplest reactive policy a practitioner might deploy.
type Greedy struct{}

// Name implements Allocator.
func (Greedy) Name() string { return "greedy" }

// Replicate adds one replica on the least-utilized live processor.
func (Greedy) Replicate(d *task.Deployment, stage int, env Environment) (int, bool) {
	if err := env.validate(); err != nil {
		panic(err)
	}
	pick, found := leastUtilized(d, stage, env.raw())
	if !found {
		return 0, false
	}
	if err := d.AddReplica(stage, pick); err != nil {
		panic(err)
	}
	return 1, true
}

// ShouldShutdown always consents when a spare replica exists.
func (Greedy) ShouldShutdown(d *task.Deployment, stage int, env Environment) bool {
	return d.ReplicaCount(stage) > 1
}

// Static never adapts: it is paired with an initial deployment that
// replicates every replicable subtask onto every node, giving the
// maximum-concurrency upper bound on resource use.
type Static struct{}

// Name implements Allocator.
func (Static) Name() string { return "static-max" }

// Replicate is a no-op.
func (Static) Replicate(*task.Deployment, int, Environment) (int, bool) { return 0, false }

// ShouldShutdown never consents.
func (Static) ShouldShutdown(*task.Deployment, int, Environment) bool { return false }
