// Package manager implements step 2 of the adaptive resource-management
// process (paper §4.2): determining how many replicas a candidate subtask
// needs and which processors execute them.
//
// Two allocators are provided, sharing the Allocator interface:
//
//   - Predictive (Figure 5, the paper's contribution) incrementally adds
//     replicas on the least-utilized processors, forecasting each
//     replica's execution latency with the fitted eq. (3) model and its
//     message delay with the eq. (4)–(6) model, until every replica's
//     forecast total delay fits within the subtask deadline minus the
//     required slack.
//   - NonPredictive (Figure 7, the baseline) replicates the candidate
//     onto every processor whose observed utilization is below a fixed
//     threshold (Table 1: 20 %).
//
// Both use ShutDownAReplica (Figure 6) to release the most recently added
// replica of a very-high-slack subtask; Predictive additionally guards
// shutdown with a forecast so it never releases a replica the current
// workload still needs (this is the "predictive" discipline of §4.2.1
// applied to de-allocation, and is what keeps it from thrashing — see
// DESIGN.md §5).
package manager

import (
	"fmt"

	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/task"
)

// ProcView exposes the processor state the allocators read: the cluster
// size and the observed utilization ut(p, t) over the last monitoring
// window.
type ProcView interface {
	NumProcessors() int
	Utilization(proc int) float64
}

// LivenessView is an optional extension of ProcView: views that also know
// which processors are down implement it, and allocators never place
// replicas on dead nodes.
type LivenessView interface {
	Alive(proc int) bool
}

// alive reports liveness through the optional interface, defaulting to
// true.
func alive(v ProcView, proc int) bool {
	if lv, ok := v.(LivenessView); ok {
		return lv.Alive(proc)
	}
	return true
}

// Environment carries the per-invocation context of Figures 5 and 7.
type Environment struct {
	// Procs is the background (other-work) utilization view — the u the
	// fitted eq. (3) was profiled against, consumed by the predictive
	// forecasts.
	Procs ProcView
	// RawProcs is the total node utilization view — what Figure 7's
	// threshold test and the least-utilized placement pick read. When
	// nil, Procs is used for both.
	RawProcs ProcView
	// Items is ds(Ti, c): the task's data size for the current period.
	Items int
	// TotalItems is Σᵢ ds(Tᵢ, c) across all tasks — eq. (5)'s input.
	TotalItems int
	// SubtaskDeadline is dl(st) for the candidate subtask.
	SubtaskDeadline sim.Time
	// SlackFraction sets sl = SlackFraction·dl(st); the paper uses 0.2.
	SlackFraction float64
}

func (e Environment) validate() error {
	if e.Procs == nil {
		return fmt.Errorf("manager: environment without processor view")
	}
	if e.Items < 0 || e.TotalItems < e.Items {
		return fmt.Errorf("manager: inconsistent workload items=%d total=%d", e.Items, e.TotalItems)
	}
	if e.SubtaskDeadline <= 0 {
		return fmt.Errorf("manager: non-positive subtask deadline %v", e.SubtaskDeadline)
	}
	if e.SlackFraction < 0 || e.SlackFraction >= 1 {
		return fmt.Errorf("manager: slack fraction %v out of [0,1)", e.SlackFraction)
	}
	return nil
}

// slackDeadline returns dl(st) − sl.
func (e Environment) slackDeadline() sim.Time {
	return e.SubtaskDeadline - sim.Time(e.SlackFraction*float64(e.SubtaskDeadline))
}

// raw returns the total-utilization view, falling back to the background
// view when none was supplied.
func (e Environment) raw() ProcView {
	if e.RawProcs != nil {
		return e.RawProcs
	}
	return e.Procs
}

// Allocator decides replica counts and placements for candidate subtasks.
type Allocator interface {
	Name() string
	// Replicate adds replicas for the candidate stage, mutating the
	// deployment. It returns how many replicas were added and whether the
	// algorithm considers the subtask deadline satisfiable (Figure 5's
	// SUCCESS/FAILURE; the non-predictive algorithm reports success
	// whenever it changed anything).
	Replicate(d *task.Deployment, stage int, env Environment) (added int, ok bool)
	// ShouldShutdown reports whether releasing the last-added replica of
	// the stage is acceptable.
	ShouldShutdown(d *task.Deployment, stage int, env Environment) bool
}

// ShutDownAReplica implements Figure 6: release the most recently added
// replica, never the original process. It returns the released processor.
func ShutDownAReplica(d *task.Deployment, stage int) (proc int, ok bool) {
	return d.RemoveLastReplica(stage)
}

// Predictive is the Figure 5 allocator.
type Predictive struct {
	// Exec holds the fitted eq. (3) model per subtask stage.
	Exec []regress.ExecModel
	// Comm is the fitted eq. (4)–(6) model.
	Comm regress.CommModel
	// Probe, when non-nil, observes every single-replica forecast the
	// allocator evaluates (Figure 5 step 6 and the shutdown guard).
	// Telemetry uses it to count model evaluations per stage; it must not
	// mutate allocator state.
	Probe func(stage, share int, u float64, predicted sim.Time)
}

// NewPredictive validates the models and returns the allocator.
func NewPredictive(exec []regress.ExecModel, comm regress.CommModel) (*Predictive, error) {
	if len(exec) == 0 {
		return nil, fmt.Errorf("manager: predictive allocator needs exec models")
	}
	if err := comm.Validate(); err != nil {
		return nil, err
	}
	return &Predictive{Exec: exec, Comm: comm}, nil
}

// Name implements Allocator.
func (p *Predictive) Name() string { return "predictive" }

// forecast returns the predicted total delay (eex + ecd) for one replica
// of the stage processing `share` items on a processor at utilization u.
func (p *Predictive) forecast(stage, share int, u float64, totalItems int) sim.Time {
	eex := p.Exec[stage].Latency(share, u)
	ecd := p.Comm.Delay(float64(share), totalItems)
	return eex + ecd
}

// forecastOK reports whether every replica in PS(st) meets dl − sl under
// the current forecast (Figure 5 step 6).
func (p *Predictive) forecastOK(d *task.Deployment, stage int, env Environment, replicas []int) bool {
	share := (env.Items + len(replicas) - 1) / len(replicas)
	limit := env.slackDeadline()
	for _, q := range replicas {
		u := env.Procs.Utilization(q)
		pred := p.forecast(stage, share, u, env.TotalItems)
		if p.Probe != nil {
			p.Probe(stage, share, u, pred)
		}
		if pred > limit {
			return false
		}
	}
	return true
}

// Replicate implements Figure 5: pick the least-utilized processor not
// yet hosting the subtask, add a replica there, re-forecast every
// replica, and repeat until the forecast satisfies the deadline (SUCCESS)
// or processors run out (FAILURE).
func (p *Predictive) Replicate(d *task.Deployment, stage int, env Environment) (int, bool) {
	if err := env.validate(); err != nil {
		panic(err)
	}
	if stage < 0 || stage >= len(p.Exec) {
		panic(fmt.Sprintf("manager: stage %d outside exec models (%d)", stage, len(p.Exec)))
	}
	added := 0
	for {
		// Step 1–3: find the least utilized processor outside PS(st),
		// judged by total utilization.
		pick, found := leastUtilized(d, stage, env.raw())
		if !found {
			return added, false // FAILURE: PT = ∅
		}
		// Step 5: PS(st) := PS(st) ∪ {p}.
		if err := d.AddReplica(stage, pick); err != nil {
			// Non-replicable subtask: the monitor never flags these, so
			// reaching here is a wiring bug.
			panic(err)
		}
		added++
		// Step 6: forecast every replica with the reduced share.
		if p.forecastOK(d, stage, env, d.Replicas(stage)) {
			return added, true // SUCCESS
		}
	}
}

// ShouldShutdown forecasts the stage with one replica fewer; only if the
// remaining replicas still meet dl − sl is the release allowed.
func (p *Predictive) ShouldShutdown(d *task.Deployment, stage int, env Environment) bool {
	if err := env.validate(); err != nil {
		panic(err)
	}
	replicas := d.Replicas(stage)
	if len(replicas) <= 1 {
		return false
	}
	return p.forecastOK(d, stage, env, replicas[:len(replicas)-1])
}

// leastUtilized returns the lowest-utilization processor not hosting the
// stage; ties break toward the lower processor id for determinism.
func leastUtilized(d *task.Deployment, stage int, procs ProcView) (int, bool) {
	best, bestU := -1, 0.0
	for pr := 0; pr < procs.NumProcessors(); pr++ {
		if d.Has(stage, pr) || !alive(procs, pr) {
			continue
		}
		u := procs.Utilization(pr)
		if best == -1 || u < bestU {
			best, bestU = pr, u
		}
	}
	return best, best != -1
}

// NonPredictive is the Figure 7 baseline allocator.
type NonPredictive struct {
	// UtilThreshold is UT: processors below it are considered available
	// (Table 1: 20 %).
	UtilThreshold float64
}

// NewNonPredictive validates the threshold and returns the allocator.
func NewNonPredictive(threshold float64) (*NonPredictive, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("manager: utilization threshold %v out of (0,1]", threshold)
	}
	return &NonPredictive{UtilThreshold: threshold}, nil
}

// Name implements Allocator.
func (np *NonPredictive) Name() string { return "non-predictive" }

// Replicate implements Figure 7: add a replica on every processor whose
// utilization is below the threshold.
func (np *NonPredictive) Replicate(d *task.Deployment, stage int, env Environment) (int, bool) {
	if err := env.validate(); err != nil {
		panic(err)
	}
	added := 0
	raw := env.raw()
	for pr := 0; pr < raw.NumProcessors(); pr++ {
		if d.Has(stage, pr) || !alive(raw, pr) {
			continue
		}
		if raw.Utilization(pr) < np.UtilThreshold {
			if err := d.AddReplica(stage, pr); err != nil {
				panic(err)
			}
			added++
		}
	}
	return added, added > 0
}

// ShouldShutdown always consents — the heuristic trusts the monitor's
// very-high-slack signal unconditionally (Figure 6 as written).
func (np *NonPredictive) ShouldShutdown(d *task.Deployment, stage int, env Environment) bool {
	return d.ReplicaCount(stage) > 1
}

// MaskedProcView is a utilization snapshot with a liveness mask. The
// optional Unknown mask marks processors whose measurement is not
// trustworthy — a node whose sampling window overlapped a crash reads as
// idle when it is really just unobserved — and substitutes Fallback for
// their utilization so recovering nodes neither attract every new replica
// nor pass regression inputs the models were never fitted for.
type MaskedProcView struct {
	Utils    []float64
	Down     []bool
	Unknown  []bool
	Fallback float64
}

// NumProcessors implements ProcView.
func (m MaskedProcView) NumProcessors() int { return len(m.Utils) }

// Utilization implements ProcView.
func (m MaskedProcView) Utilization(proc int) float64 {
	if proc < 0 || proc >= len(m.Utils) {
		panic(fmt.Sprintf("manager: processor %d out of %d", proc, len(m.Utils)))
	}
	if m.Unknown != nil && m.Unknown[proc] {
		return m.Fallback
	}
	return m.Utils[proc]
}

// Alive implements LivenessView.
func (m MaskedProcView) Alive(proc int) bool {
	if m.Down == nil {
		return true
	}
	return !m.Down[proc]
}

// StaticProcView adapts a utilization snapshot to ProcView; the runner
// samples utilizations once per monitoring cycle and hands allocators
// this frozen view.
type StaticProcView []float64

// NumProcessors implements ProcView.
func (s StaticProcView) NumProcessors() int { return len(s) }

// Utilization implements ProcView.
func (s StaticProcView) Utilization(proc int) float64 {
	if proc < 0 || proc >= len(s) {
		panic(fmt.Sprintf("manager: processor %d out of %d", proc, len(s)))
	}
	return s[proc]
}
