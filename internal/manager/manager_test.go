package manager

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/task"
)

const ms = sim.Millisecond

func demand(items int, _ *rand.Rand) sim.Time { return sim.Time(items) * sim.Microsecond }

func spec() task.Spec {
	return task.Spec{
		Name:     "T",
		Period:   sim.Second,
		Deadline: 990 * ms,
		Subtasks: []task.SubtaskSpec{
			{Name: "a", Demand: demand, OutBytesPerItem: 80},
			{Name: "b", Replicable: true, Demand: demand, OutBytesPerItem: 80},
			{Name: "c", Replicable: true, Demand: demand},
		},
	}
}

func deployment(t *testing.T) *task.Deployment {
	t.Helper()
	d, err := task.NewDeployment(spec(), []int{0, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// Test models: latency = d² + d milliseconds, utilization-independent,
// so forecasts are easy to compute by hand.
func testModels() ([]regress.ExecModel, regress.CommModel) {
	exec := []regress.ExecModel{
		{B3: 0.1},
		{A3: 1, B3: 1},
		{A3: 1, B3: 1},
	}
	comm := regress.CommModel{
		K:                       0.7,
		LinkBps:                 100_000_000,
		BytesPerItem:            80,
		PerMessageOverheadBytes: 256,
		FrameOverheadBytes:      38,
		MTU:                     1500,
	}
	return exec, comm
}

func predictive(t *testing.T) *Predictive {
	t.Helper()
	exec, comm := testModels()
	p, err := NewPredictive(exec, comm)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func env(items int, dl sim.Time, utils []float64) Environment {
	return Environment{
		Procs:           StaticProcView(utils),
		Items:           items,
		TotalItems:      items,
		SubtaskDeadline: dl,
		SlackFraction:   0.2,
	}
}

func TestNewPredictiveValidation(t *testing.T) {
	_, comm := testModels()
	if _, err := NewPredictive(nil, comm); err == nil {
		t.Error("empty exec models accepted")
	}
	bad := comm
	bad.LinkBps = 0
	exec, _ := testModels()
	if _, err := NewPredictive(exec, bad); err == nil {
		t.Error("invalid comm model accepted")
	}
}

func TestNewNonPredictiveValidation(t *testing.T) {
	if _, err := NewNonPredictive(0); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewNonPredictive(1.5); err == nil {
		t.Error("threshold > 1 accepted")
	}
}

func TestNames(t *testing.T) {
	p := predictive(t)
	np, _ := NewNonPredictive(0.2)
	if p.Name() != "predictive" || np.Name() != "non-predictive" {
		t.Error("allocator names wrong")
	}
}

func TestPredictiveAddsOneReplicaWhenEnough(t *testing.T) {
	p := predictive(t)
	d := deployment(t)
	// 2000 items on one replica forecast ≈ 435ms > 160ms limit; on two,
	// ≈ 125ms ≤ 160ms.
	added, ok := p.Replicate(d, 1, env(2000, 200*ms, make([]float64, 6)))
	if !ok || added != 1 {
		t.Fatalf("added=%d ok=%v, want 1,true", added, ok)
	}
	// Least-utilized non-hosting processor with all-zero utilization is
	// the lowest id not already hosting: stage 1 lives on proc 0 → proc 1.
	if got := d.Replicas(1); len(got) != 2 || got[1] != 1 {
		t.Errorf("replicas = %v", got)
	}
}

func TestPredictiveAddsUntilForecastFits(t *testing.T) {
	p := predictive(t)
	d := deployment(t)
	added, ok := p.Replicate(d, 1, env(2000, 80*ms, make([]float64, 6)))
	if !ok {
		t.Fatalf("expected SUCCESS, got failure after %d", added)
	}
	if added < 2 {
		t.Errorf("added = %d, want ≥ 2 for the tight deadline", added)
	}
	// The resulting forecast must actually fit.
	e := env(2000, 80*ms, make([]float64, 6))
	if !p.forecastOK(d, 1, e, d.Replicas(1)) {
		t.Error("returned SUCCESS with unsatisfied forecast")
	}
}

func TestPredictiveFailureWhenProcessorsExhausted(t *testing.T) {
	p := predictive(t)
	d := deployment(t)
	// Buffer delay alone (14ms) exceeds the 16ms limit: unsatisfiable.
	added, ok := p.Replicate(d, 1, env(2000, 20*ms, make([]float64, 6)))
	if ok {
		t.Fatal("expected FAILURE")
	}
	if added != 5 {
		t.Errorf("added = %d, want all 5 remaining processors", added)
	}
	if d.ReplicaCount(1) != 6 {
		t.Errorf("replicas = %d, want 6 (best effort keeps them)", d.ReplicaCount(1))
	}
}

func TestPredictivePicksLeastUtilized(t *testing.T) {
	p := predictive(t)
	d := deployment(t)
	utils := []float64{0.9, 0.5, 0.1, 0.7, 0.3, 0.6}
	added, ok := p.Replicate(d, 1, env(2000, 200*ms, utils))
	if !ok || added != 1 {
		t.Fatalf("added=%d ok=%v", added, ok)
	}
	if got := d.Replicas(1); got[len(got)-1] != 2 {
		t.Errorf("picked %v, want processor 2 (lowest utilization)", got)
	}
}

func TestPredictiveUtilizationRaisesForecast(t *testing.T) {
	p := predictive(t)
	// A utilization-sensitive model: latency = (1+u)·(d² + d).
	p.Exec[1] = regress.ExecModel{A2: 1, A3: 1, B2: 1, B3: 1}
	// All processors busy: forecasts inflate, so more replicas are
	// needed than at idle.
	dIdle := deployment(t)
	addedIdle, _ := p.Replicate(dIdle, 1, env(2000, 200*ms, make([]float64, 6)))
	dBusy := deployment(t)
	busy := []float64{0.8, 0.8, 0.8, 0.8, 0.8, 0.8}
	addedBusy, _ := p.Replicate(dBusy, 1, env(2000, 200*ms, busy))
	if addedBusy <= addedIdle {
		t.Errorf("busy cluster added %d ≤ idle %d", addedBusy, addedIdle)
	}
}

func TestPredictiveShouldShutdown(t *testing.T) {
	p := predictive(t)
	d := deployment(t)
	d.AddReplica(1, 1)
	d.AddReplica(1, 2)
	// 300 items across 2 remaining replicas: share 150, d=1.5 →
	// 3.75ms + ~2.3ms comm ≤ 160ms limit → releasable.
	if !p.ShouldShutdown(d, 1, env(300, 200*ms, make([]float64, 6))) {
		t.Error("refused an easily releasable replica")
	}
	// 3000 items across 2 remaining: share 1500, d=15 → 240ms > limit.
	if p.ShouldShutdown(d, 1, env(3000, 200*ms, make([]float64, 6))) {
		t.Error("released a replica the workload still needs")
	}
}

func TestPredictiveShouldShutdownSingleReplica(t *testing.T) {
	p := predictive(t)
	d := deployment(t)
	if p.ShouldShutdown(d, 1, env(10, 200*ms, make([]float64, 6))) {
		t.Error("consented to removing the original process")
	}
}

func TestNonPredictiveReplicatesAllBelowThreshold(t *testing.T) {
	np, err := NewNonPredictive(0.2)
	if err != nil {
		t.Fatal(err)
	}
	d := deployment(t)
	utils := []float64{0.5, 0.1, 0.19, 0.2, 0.05, 0.9}
	added, ok := np.Replicate(d, 1, env(2000, 200*ms, utils))
	// Processors 1, 2, 4 are below 20 % (3 is exactly at the threshold,
	// 0 hosts the subtask already but is above anyway, 5 is busy).
	if !ok || added != 3 {
		t.Fatalf("added=%d ok=%v, want 3,true", added, ok)
	}
	for _, want := range []int{1, 2, 4} {
		if !d.Has(1, want) {
			t.Errorf("processor %d not used", want)
		}
	}
	if d.Has(1, 3) || d.Has(1, 5) {
		t.Error("threshold violated")
	}
}

func TestNonPredictiveNothingAvailable(t *testing.T) {
	np, _ := NewNonPredictive(0.2)
	d := deployment(t)
	utils := []float64{0.5, 0.5, 0.5, 0.5, 0.5, 0.5}
	added, ok := np.Replicate(d, 1, env(2000, 200*ms, utils))
	if added != 0 || ok {
		t.Errorf("added=%d ok=%v, want 0,false", added, ok)
	}
}

func TestNonPredictiveShouldShutdown(t *testing.T) {
	np, _ := NewNonPredictive(0.2)
	d := deployment(t)
	e := env(10, 200*ms, make([]float64, 6))
	if np.ShouldShutdown(d, 1, e) {
		t.Error("consented with a single replica")
	}
	d.AddReplica(1, 3)
	if !np.ShouldShutdown(d, 1, e) {
		t.Error("heuristic must always consent with spare replicas")
	}
}

func TestShutDownAReplica(t *testing.T) {
	d := deployment(t)
	d.AddReplica(1, 3)
	d.AddReplica(1, 4)
	if proc, ok := ShutDownAReplica(d, 1); !ok || proc != 4 {
		t.Errorf("released %d,%v want 4,true", proc, ok)
	}
	if proc, ok := ShutDownAReplica(d, 1); !ok || proc != 3 {
		t.Errorf("released %d,%v want 3,true", proc, ok)
	}
	if _, ok := ShutDownAReplica(d, 1); ok {
		t.Error("released the original process")
	}
}

func TestEnvironmentValidationPanics(t *testing.T) {
	p := predictive(t)
	d := deployment(t)
	bad := []Environment{
		{Procs: nil, Items: 1, TotalItems: 1, SubtaskDeadline: ms},
		{Procs: StaticProcView{0}, Items: -1, TotalItems: 0, SubtaskDeadline: ms},
		{Procs: StaticProcView{0}, Items: 5, TotalItems: 1, SubtaskDeadline: ms},
		{Procs: StaticProcView{0}, Items: 1, TotalItems: 1, SubtaskDeadline: 0},
		{Procs: StaticProcView{0}, Items: 1, TotalItems: 1, SubtaskDeadline: ms, SlackFraction: 1},
	}
	for i, e := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("bad environment %d did not panic", i)
				}
			}()
			p.Replicate(d, 1, e)
		}()
	}
}

func TestStaticProcView(t *testing.T) {
	v := StaticProcView{0.1, 0.2}
	if v.NumProcessors() != 2 || v.Utilization(1) != 0.2 {
		t.Error("StaticProcView accessors wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range proc did not panic")
		}
	}()
	v.Utilization(2)
}

// Property: a longer deadline never needs more predictive replicas.
func TestPropertyPredictiveMonotoneInDeadline(t *testing.T) {
	f := func(items16 uint16, dl8 uint8) bool {
		items := int(items16%5000) + 100
		dl := sim.Time(int(dl8%200)+50) * ms
		p := predictiveOrPanic()
		d1 := freshDeployment()
		a1, _ := p.Replicate(d1, 1, env(items, dl, make([]float64, 6)))
		d2 := freshDeployment()
		a2, _ := p.Replicate(d2, 1, env(items, dl+100*ms, make([]float64, 6)))
		return a2 <= a1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: after a SUCCESS return, popping the last replica makes
// ShouldShutdown's forecast consistent — it only consents if the reduced
// set still fits.
func TestPropertyShutdownConsistency(t *testing.T) {
	f := func(items16 uint16) bool {
		items := int(items16%8000) + 500
		p := predictiveOrPanic()
		d := freshDeployment()
		e := env(items, 300*ms, make([]float64, 6))
		_, ok := p.Replicate(d, 1, e)
		if !ok {
			return true
		}
		if p.ShouldShutdown(d, 1, e) {
			// Consent means k−1 replicas fit; verify directly.
			reps := d.Replicas(1)
			return p.forecastOK(d, 1, e, reps[:len(reps)-1])
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func freshDeployment() *task.Deployment {
	d, err := task.NewDeployment(spec(), []int{0, 0, 1})
	if err != nil {
		panic(err)
	}
	return d
}

func predictiveOrPanic() *Predictive {
	exec, comm := testModels()
	p, err := NewPredictive(exec, comm)
	if err != nil {
		panic(err)
	}
	return p
}

func TestGreedyAddsOneReplica(t *testing.T) {
	g := Greedy{}
	if g.Name() != "greedy" {
		t.Error("name wrong")
	}
	d := deployment(t)
	utils := []float64{0.9, 0.5, 0.1, 0.7, 0.3, 0.6}
	added, ok := g.Replicate(d, 1, env(2000, 200*ms, utils))
	if !ok || added != 1 {
		t.Fatalf("added=%d ok=%v, want exactly 1", added, ok)
	}
	if got := d.Replicas(1); got[len(got)-1] != 2 {
		t.Errorf("greedy picked %v, want least-utilized processor 2", got)
	}
	// Exhausting the cluster: once every node hosts the stage, greedy
	// reports failure.
	for i := 0; i < 5; i++ {
		g.Replicate(d, 1, env(2000, 200*ms, utils))
	}
	if added, ok := g.Replicate(d, 1, env(2000, 200*ms, utils)); ok || added != 0 {
		t.Errorf("greedy on a full cluster: added=%d ok=%v", added, ok)
	}
}

func TestGreedyShutdownConsents(t *testing.T) {
	g := Greedy{}
	d := deployment(t)
	e := env(10, 200*ms, make([]float64, 6))
	if g.ShouldShutdown(d, 1, e) {
		t.Error("consented with one replica")
	}
	d.AddReplica(1, 3)
	if !g.ShouldShutdown(d, 1, e) {
		t.Error("refused with spare replicas")
	}
}

func TestStaticNeverActs(t *testing.T) {
	s := Static{}
	if s.Name() != "static-max" {
		t.Error("name wrong")
	}
	d := deployment(t)
	if added, ok := s.Replicate(d, 1, env(2000, 200*ms, make([]float64, 6))); added != 0 || ok {
		t.Error("static replicated")
	}
	d.AddReplica(1, 3)
	if s.ShouldShutdown(d, 1, env(10, 200*ms, make([]float64, 6))) {
		t.Error("static consented to shutdown")
	}
}

func TestMaskedProcView(t *testing.T) {
	v := MaskedProcView{Utils: []float64{0.1, 0.2, 0.3}, Down: []bool{false, true, false}}
	if v.NumProcessors() != 3 {
		t.Error("NumProcessors wrong")
	}
	if v.Utilization(2) != 0.3 {
		t.Error("Utilization wrong")
	}
	if v.Alive(1) || !v.Alive(0) {
		t.Error("Alive wrong")
	}
	noMask := MaskedProcView{Utils: []float64{0.5}}
	if !noMask.Alive(0) {
		t.Error("nil mask should mean alive")
	}
	defer func() {
		if recover() == nil {
			t.Error("out-of-range proc did not panic")
		}
	}()
	v.Utilization(5)
}

func TestAllocatorsSkipDeadNodes(t *testing.T) {
	utils := make([]float64, 6)
	down := []bool{false, false, false, true, true, true}
	e := Environment{
		Procs:           MaskedProcView{Utils: utils, Down: down},
		RawProcs:        MaskedProcView{Utils: utils, Down: down},
		Items:           2000,
		TotalItems:      2000,
		SubtaskDeadline: 200 * ms,
		SlackFraction:   0.2,
	}
	p := predictiveOrPanic()
	d := freshDeployment() // stage 1 home on proc 0
	p.Replicate(d, 1, e)
	for _, proc := range d.Replicas(1) {
		if down[proc] {
			t.Fatalf("predictive placed a replica on dead node %d", proc)
		}
	}
	np, _ := NewNonPredictive(0.2)
	d2 := freshDeployment()
	np.Replicate(d2, 1, e)
	for _, proc := range d2.Replicas(1) {
		if down[proc] {
			t.Fatalf("non-predictive placed a replica on dead node %d", proc)
		}
	}
	g := Greedy{}
	d3 := freshDeployment()
	g.Replicate(d3, 1, e)
	for _, proc := range d3.Replicas(1) {
		if down[proc] {
			t.Fatalf("greedy placed a replica on dead node %d", proc)
		}
	}
}

func TestRawViewFallsBackToProcs(t *testing.T) {
	np, _ := NewNonPredictive(0.5)
	d := freshDeployment()
	// No RawProcs supplied: the background view drives the threshold.
	e := Environment{
		Procs:           StaticProcView{0.9, 0.1, 0.1, 0.9, 0.9, 0.9},
		Items:           100,
		TotalItems:      100,
		SubtaskDeadline: 200 * ms,
		SlackFraction:   0.2,
	}
	added, _ := np.Replicate(d, 1, e)
	if added != 2 {
		t.Errorf("added %d with fallback view, want 2 (procs 1, 2)", added)
	}
}
