package session

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/api"
)

// sessionRequest builds a small real run: a constant workload with
// enough periods to produce a stream worth folding.
func sessionRequest(periods int) api.SessionRequest {
	return api.SessionRequest{
		SchemaVersion: api.SchemaVersion,
		Algorithm:     api.AlgPredictive,
		Task: api.TaskSpec{
			Pattern: api.Pattern{Kind: api.PatternConstant, Value: 500, Periods: periods},
		},
	}
}

func newTestManager() *Manager {
	var ms int64
	var mu sync.Mutex
	return NewManager(Config{NowMS: func() int64 {
		mu.Lock()
		defer mu.Unlock()
		ms++
		return ms
	}})
}

// TestSessionStreamConsistency is the end-to-end fold check on a real
// simulation: 50 subscribers attach at staggered points of a live
// session; every one folds its stream — first snapshot plus diffs — to
// exactly the terminal snapshot, which equals the session's own final
// state.
func TestSessionStreamConsistency(t *testing.T) {
	m := newTestManager()
	req := sessionRequest(40)
	req.MaxRateHz = 500 // pace lightly so subscribers catch the stream live
	s, err := m.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	const subs = 50
	var wg sync.WaitGroup
	finals := make([]api.SessionState, subs)
	lasts := make([]api.Event, subs)
	counts := make([]int, subs)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			time.Sleep(time.Duration(i) * time.Millisecond)
			sub := s.Subscribe(0)
			finals[i], lasts[i], counts[i] = drain(t, sub)
			s.Unsubscribe(sub)
		}(i)
	}
	wg.Wait()
	<-s.Done()
	want, ok := s.State()
	if !ok {
		t.Fatal("session finished without ever publishing state")
	}
	for i := 0; i < subs; i++ {
		if !finals[i].Equal(want) {
			t.Fatalf("subscriber %d folded to %+v, want %+v", i, finals[i], want)
		}
		if lasts[i].Type != api.EventSnapshot || lasts[i].Session.State != api.SessionDone {
			t.Fatalf("subscriber %d last event %+v, want terminal snapshot", i, lasts[i])
		}
		if lasts[i].Session.FinishedMS == 0 {
			t.Errorf("terminal stamp has no finished_ms")
		}
	}
	info := s.Info()
	if info.State != api.SessionDone || info.SimMS != want.SimMS || info.Seq == 0 {
		t.Errorf("terminal info inconsistent: %+v", info)
	}
	// The check is only meaningful if at least one subscriber actually
	// folded diffs rather than landing straight on the terminal frame.
	sawDiffs := false
	for i := 0; i < subs; i++ {
		if counts[i] > 2 {
			sawDiffs = true
		}
	}
	if !sawDiffs {
		t.Error("no subscriber saw a live stream; pacing too fast for the test")
	}
	// The run completed every period of the workload.
	if want.Metrics.Completed != 40 {
		t.Errorf("terminal state completed %d periods, want 40", want.Metrics.Completed)
	}
}

// TestSessionPauseResumeStop walks the lifecycle: a paused session
// stops publishing (the simulation itself is gated), resumes cleanly,
// and a stopped one goes terminal with a stopped stamp.
func TestSessionPauseResumeStop(t *testing.T) {
	m := newTestManager()
	req := sessionRequest(2000) // long enough that we control its end
	req.MaxRateHz = 200
	s, err := m.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	sub := s.Subscribe(0)
	if _, err := sub.Next(context.Background()); err != nil {
		t.Fatal(err)
	}
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	if err := s.Pause(); err != nil {
		t.Fatalf("double pause: %v", err)
	}
	if got := s.Info().State; got != api.SessionPaused {
		t.Fatalf("state after pause: %s", got)
	}
	// At most one in-flight sample can land after the gate closes.
	seq := s.hub.Seq()
	time.Sleep(50 * time.Millisecond)
	if moved := s.hub.Seq() - seq; moved > 1 {
		t.Fatalf("paused session published %d events", moved)
	}
	if err := s.Resume(); err != nil {
		t.Fatal(err)
	}
	if got := s.Info().State; got != api.SessionRunning {
		t.Fatalf("state after resume: %s", got)
	}
	// The stream moves again.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := sub.Next(ctx); err != nil {
		t.Fatalf("no event after resume: %v", err)
	}
	s.Stop()
	<-s.Done()
	info := s.Info()
	if info.State != api.SessionStopped || info.FinishedMS == 0 {
		t.Fatalf("after stop: %+v", info)
	}
	// The stream drains to a terminal snapshot stamped stopped.
	var last api.Event
	for {
		ev, err := sub.Next(context.Background())
		if errors.Is(err, ErrClosed) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		last = ev
	}
	if last.Type != api.EventSnapshot || last.Session.State != api.SessionStopped {
		t.Fatalf("stream ended with %+v, want stopped snapshot", last)
	}
	if err := s.Pause(); err == nil {
		t.Error("pausing a terminal session should fail")
	}
	if err := s.Resume(); err == nil {
		t.Error("resuming a terminal session should fail")
	}
}

// TestStopWhilePaused: cancellation must release the pause gate.
func TestStopWhilePaused(t *testing.T) {
	m := newTestManager()
	req := sessionRequest(2000)
	req.MaxRateHz = 200
	s, err := m.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Pause(); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	select {
	case <-s.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("stopped paused session never exited")
	}
	if got := s.Info().State; got != api.SessionStopped {
		t.Fatalf("state = %s, want stopped", got)
	}
}

// TestManagerLimits pins the cap, drain, and lookup error surfaces.
func TestManagerLimits(t *testing.T) {
	m := NewManager(Config{MaxSessions: 1})
	req := sessionRequest(2000)
	req.MaxRateHz = 100
	s, err := m.Create(req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(req); !errors.Is(err, ErrTooManySessions) {
		t.Fatalf("over-cap create: %v, want ErrTooManySessions", err)
	}
	if _, err := m.Get(s.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("sess-nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown id: %v, want ErrNotFound", err)
	}
	st := m.Stats()
	if st.Active != 1 {
		t.Fatalf("stats: %+v, want 1 active", st)
	}
	if err := m.DrainAndStop(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Create(req); !errors.Is(err, ErrDraining) {
		t.Fatalf("create after drain: %v, want ErrDraining", err)
	}
	if got := s.Info().State; got != api.SessionStopped {
		t.Fatalf("drained session state = %s, want stopped", got)
	}
	st = m.Stats()
	if st.Done != 1 || st.Active != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
	// A finished session frees its slot: the cap counts live sessions.
	m2 := NewManager(Config{MaxSessions: 1})
	quick, err := m2.Create(sessionRequest(4))
	if err != nil {
		t.Fatal(err)
	}
	<-quick.Done()
	if _, err := m2.Create(sessionRequest(4)); err != nil {
		t.Fatalf("create after previous finished: %v", err)
	}
}

// TestCreateRejectsLanes: lane-partitioned runs shard state across
// engines, so they cannot stream.
func TestCreateRejectsLanes(t *testing.T) {
	m := newTestManager()
	req := sessionRequest(4)
	req.Config = &api.Config{Lanes: 2}
	if _, err := m.Create(req); err == nil {
		t.Fatal("lane-partitioned session accepted")
	}
}

// TestCreateRejectsInvalid: validation errors surface before any
// goroutine is spawned.
func TestCreateRejectsInvalid(t *testing.T) {
	m := newTestManager()
	req := sessionRequest(4)
	req.SampleMS = -1
	if _, err := m.Create(req); err == nil {
		t.Fatal("invalid request accepted")
	}
	if len(m.List()) != 0 {
		t.Fatal("rejected request left a session behind")
	}
}
