package session

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/api"
)

// mkState builds a deterministic state for step i so tests can assert
// exact fold results.
func mkState(i int) api.SessionState {
	return api.SessionState{
		SimMS: int64(i) * 500,
		Nodes: []api.SessionNode{
			{Util: float64(i%7) / 10},
			{Util: 0.5, Down: i%2 == 0},
		},
		Tasks: []api.SessionTask{
			{Name: "t", Stages: [][]int{{i % 3}, {1, i % 5}}, Completed: i},
		},
		Metrics: api.Metrics{Periods: i, Completed: i},
	}
}

// fold applies one stream event to a client-side state: snapshots
// replace, diffs apply.
func fold(st *api.SessionState, ev api.Event) {
	switch ev.Type {
	case api.EventSnapshot:
		*st = ev.Snapshot.Clone()
	case api.EventDiff:
		st.Apply(*ev.Diff)
	}
}

// drain folds the subscriber's whole stream and returns the final
// state, the last event seen, and how many events arrived.
func drain(t *testing.T, sub *Subscriber) (api.SessionState, api.Event, int) {
	t.Helper()
	var st api.SessionState
	var last api.Event
	n := 0
	for {
		ev, err := sub.Next(context.Background())
		if errors.Is(err, ErrClosed) {
			return st, last, n
		}
		if err != nil {
			// Errorf, not Fatalf: drain runs on subscriber goroutines.
			t.Errorf("Next: %v", err)
			return st, last, n
		}
		fold(&st, ev)
		last = ev
		n++
	}
}

// TestHubFanOut1000 drives 1000 concurrent subscribers — some joining
// mid-stream — through a 200-state publish and asserts every one of
// them folds to exactly the final state. Run under -race this is also
// the hub's data-race certification.
func TestHubFanOut1000(t *testing.T) {
	const subs, steps = 1000, 200
	h := newHub(64, 512)
	var wg sync.WaitGroup
	results := make([]api.SessionState, subs)
	lasts := make([]api.Event, subs)
	for i := 0; i < subs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Subscribers race the publisher: some attach before the
			// first event, some mid-stream, some after close. All must
			// converge on the same final state.
			sub := h.Subscribe(0, 0)
			results[i], lasts[i], _ = drain(t, sub)
			h.Unsubscribe(sub)
		}(i)
	}
	for i := 1; i <= steps; i++ {
		h.Publish(api.Session{ID: "sess-1", State: api.SessionRunning}, mkState(i))
	}
	h.Publish(api.Session{ID: "sess-1", State: api.SessionRunning}, mkState(steps+1))
	h.Close(api.Session{ID: "sess-1", State: api.SessionDone})
	wg.Wait()
	want := mkState(steps + 1)
	for i := 0; i < subs; i++ {
		if !results[i].Equal(want) {
			t.Fatalf("subscriber %d folded to %+v, want %+v", i, results[i], want)
		}
		if lasts[i].Type != api.EventSnapshot || lasts[i].Session.State != api.SessionDone {
			t.Fatalf("subscriber %d last event: %+v, want terminal snapshot", i, lasts[i])
		}
	}
	if h.Subscribers() != 0 {
		t.Errorf("%d subscribers still attached", h.Subscribers())
	}
}

// TestSlowConsumerEviction pins the no-blocking contract: a subscriber
// that never reads cannot stall publishing; it is evicted exactly once
// (counted), and its eventual read resyncs from a snapshot that — with
// the diffs after it — still folds to the true state.
func TestSlowConsumerEviction(t *testing.T) {
	h := newHub(64, 4)
	sub := h.Subscribe(0, 4)
	// Publish far past the ring with no reader: must complete (push
	// never blocks) and evict exactly once (lagged subscribers are
	// skipped, not re-evicted).
	for i := 1; i <= 10; i++ {
		h.Publish(api.Session{State: api.SessionRunning}, mkState(i))
	}
	if got := h.Evictions(); got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
	// First read after eviction: a snapshot of the current state at the
	// current seq, not the missed diffs.
	ev, err := sub.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != api.EventSnapshot || ev.Seq != 10 {
		t.Fatalf("post-eviction read = %s seq %d, want snapshot seq 10", ev.Type, ev.Seq)
	}
	st := ev.Snapshot.Clone()
	// Back in sync: later publishes arrive as diffs and fold exactly.
	for i := 11; i <= 13; i++ {
		h.Publish(api.Session{State: api.SessionRunning}, mkState(i))
	}
	for i := 11; i <= 13; i++ {
		ev, err := sub.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type != api.EventDiff || ev.Seq != uint64(i) {
			t.Fatalf("resynced read = %s seq %d, want diff seq %d", ev.Type, ev.Seq, i)
		}
		fold(&st, ev)
	}
	if !st.Equal(mkState(13)) {
		t.Fatalf("fold after eviction drifted:\n got %+v\nwant %+v", st, mkState(13))
	}
}

// TestResume pins Last-Event-ID semantics: a resume inside the replay
// window replays exactly the missed tail; a resume from before the
// window (or on a pruned hub) falls back to a fresh snapshot.
func TestResume(t *testing.T) {
	h := newHub(8, 16)
	for i := 1; i <= 10; i++ {
		h.Publish(api.Session{State: api.SessionRunning}, mkState(i))
	}
	// Window now holds seqs 3..10. Resume from 5: replay 6..10.
	sub := h.Subscribe(5, 16)
	st := mkState(5)
	for i := 6; i <= 10; i++ {
		ev, err := sub.Next(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		if ev.Type != api.EventDiff || ev.Seq != uint64(i) {
			t.Fatalf("replayed event = %s seq %d, want diff seq %d", ev.Type, ev.Seq, i)
		}
		fold(&st, ev)
	}
	if !st.Equal(mkState(10)) {
		t.Fatalf("replayed fold drifted:\n got %+v\nwant %+v", st, mkState(10))
	}
	h.Unsubscribe(sub)

	// Resume from before the window: snapshot at the current seq.
	stale := h.Subscribe(1, 16)
	ev, err := stale.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != api.EventSnapshot || ev.Seq != 10 {
		t.Fatalf("stale resume = %s seq %d, want snapshot seq 10", ev.Type, ev.Seq)
	}
	if !ev.Snapshot.Equal(mkState(10)) {
		t.Errorf("stale-resume snapshot is not the current state")
	}
	h.Unsubscribe(stale)

	// Resume at the head: nothing to replay; the next publish arrives
	// as a plain diff.
	head := h.Subscribe(10, 16)
	h.Publish(api.Session{State: api.SessionRunning}, mkState(11))
	ev, err = head.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != api.EventDiff || ev.Seq != 11 {
		t.Fatalf("head resume read = %s seq %d, want diff seq 11", ev.Type, ev.Seq)
	}
}

// TestLateJoinAfterClose: subscribing to a finished stream yields the
// terminal snapshot, then ErrClosed.
func TestLateJoinAfterClose(t *testing.T) {
	h := newHub(8, 16)
	h.Publish(api.Session{State: api.SessionRunning}, mkState(1))
	h.Close(api.Session{State: api.SessionDone})
	sub := h.Subscribe(0, 16)
	ev, err := sub.Next(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if ev.Type != api.EventSnapshot || ev.Session.State != api.SessionDone {
		t.Fatalf("late join got %s (session %+v), want terminal snapshot", ev.Type, ev.Session)
	}
	if !ev.Snapshot.Equal(mkState(1)) {
		t.Errorf("terminal snapshot is not the final state")
	}
	if _, err := sub.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("after terminal snapshot: %v, want ErrClosed", err)
	}
}

// TestCloseWithoutState: a stream that dies before its first sample
// closes without a snapshot (there is no state to snapshot).
func TestCloseWithoutState(t *testing.T) {
	h := newHub(8, 16)
	sub := h.Subscribe(0, 16)
	h.Close(api.Session{State: api.SessionFailed})
	if _, err := sub.Next(context.Background()); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
}

// TestNextHonorsContext: a blocked Next returns the context error — the
// mechanism stream handlers build heartbeats on.
func TestNextHonorsContext(t *testing.T) {
	h := newHub(8, 16)
	sub := h.Subscribe(0, 16)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sub.Next(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
}
