package session

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/experiment"
	"repro/internal/sim"
)

// Create errors the server maps to HTTP statuses.
var (
	// ErrDraining rejects new sessions while the manager shuts down.
	ErrDraining = errors.New("session: manager is draining")
	// ErrTooManySessions rejects new sessions over the live cap.
	ErrTooManySessions = errors.New("session: too many live sessions")
	// ErrNotFound marks an unknown session id.
	ErrNotFound = errors.New("session: no such session")
)

// Defaults applied by the Manager when a knob is zero.
const (
	DefaultMaxSessions  = 16
	DefaultSampleMS     = 500
	DefaultHeartbeatMS  = 10000
	DefaultBufferEvents = 256
	DefaultReplayWindow = 1024
)

// Config shapes a Manager. The zero value is usable: every field has a
// default.
type Config struct {
	// MaxSessions caps concurrently live (non-terminal) sessions.
	MaxSessions int
	// DefaultBuffer is the per-subscriber ring capacity when the session
	// request does not override it.
	DefaultBuffer int
	// ReplayWindow is how many recent events each session keeps for
	// Last-Event-ID resume.
	ReplayWindow int
	// NowMS supplies wall-clock milliseconds; tests override it.
	NowMS func() int64
}

// Manager owns the server's live sessions: creation (materializing the
// run spec through the same vocabulary as jobs), lookup, stats, and
// drain. Terminal sessions stay listed until the process exits, like
// finished jobs.
type Manager struct {
	cfg Config

	mu       sync.Mutex
	seq      int
	sessions map[string]*Session
	order    []*Session
	draining bool
	wg       sync.WaitGroup
}

// NewManager builds a Manager, applying defaults for zero fields.
func NewManager(cfg Config) *Manager {
	if cfg.MaxSessions <= 0 {
		cfg.MaxSessions = DefaultMaxSessions
	}
	if cfg.DefaultBuffer <= 0 {
		cfg.DefaultBuffer = DefaultBufferEvents
	}
	if cfg.ReplayWindow <= 0 {
		cfg.ReplayWindow = DefaultReplayWindow
	}
	if cfg.NowMS == nil {
		cfg.NowMS = func() int64 { return time.Now().UnixMilli() }
	}
	return &Manager{cfg: cfg, sessions: make(map[string]*Session)}
}

// Create materializes the request's run spec and starts its simulation
// on a fresh goroutine. Sessions bypass the run scheduler entirely — a
// live stream is not content-addressable work, so there is no dedup, no
// cache, and no queue; the cap on live sessions is the backpressure.
func (m *Manager) Create(req api.SessionRequest) (*Session, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	cfg, alg, setups, err := experiment.MaterializeRun(req.RunRequest())
	if err != nil {
		return nil, err
	}
	if cfg.Lanes >= 2 {
		return nil, fmt.Errorf("session: lane-partitioned runs (lanes=%d) cannot stream", cfg.Lanes)
	}
	sampleMS := req.SampleMS
	if sampleMS == 0 {
		sampleMS = DefaultSampleMS
	}
	heartbeatMS := req.HeartbeatMS
	if heartbeatMS == 0 {
		heartbeatMS = DefaultHeartbeatMS
	}
	buffer := req.Buffer
	if buffer <= 0 {
		buffer = m.cfg.DefaultBuffer
	}
	var minGap time.Duration
	if req.MaxRateHz > 0 {
		minGap = time.Duration(float64(time.Second) / req.MaxRateHz)
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if m.draining {
		return nil, ErrDraining
	}
	if live := m.liveLocked(); live >= m.cfg.MaxSessions {
		return nil, fmt.Errorf("%w: %d live, cap %d", ErrTooManySessions, live, m.cfg.MaxSessions)
	}
	m.seq++
	ctx, cancel := context.WithCancel(context.Background())
	s := &Session{
		ID:        fmt.Sprintf("sess-%d", m.seq),
		cfg:       cfg,
		alg:       alg,
		setups:    setups,
		every:     sim.Time(sampleMS) * sim.Millisecond,
		minGap:    minGap,
		heartbeat: time.Duration(heartbeatMS) * time.Millisecond,
		buffer:    buffer,
		hub:       newHub(m.cfg.ReplayWindow, m.cfg.DefaultBuffer),
		ctx:       ctx,
		cancel:    cancel,
		nowMS:     m.cfg.NowMS,
		done:      make(chan struct{}),
		state:     api.SessionRunning,
		algName:   req.Algorithm,
		createdMS: m.cfg.NowMS(),
	}
	m.sessions[s.ID] = s
	m.order = append(m.order, s)
	m.wg.Add(1)
	go s.run(&m.wg)
	return s, nil
}

func (m *Manager) liveLocked() int {
	live := 0
	for _, s := range m.order {
		s.mu.Lock()
		terminal := api.TerminalSessionState(s.state)
		s.mu.Unlock()
		if !terminal {
			live++
		}
	}
	return live
}

// Get returns the session with the given id.
func (m *Manager) Get(id string) (*Session, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sessions[id]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, id)
	}
	return s, nil
}

// List returns every session in creation order.
func (m *Manager) List() []*Session {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]*Session(nil), m.order...)
}

// Stats aggregates session counts for GET /v1/stats.
func (m *Manager) Stats() api.SessionStats {
	var st api.SessionStats
	for _, s := range m.List() {
		info := s.Info()
		switch {
		case info.State == api.SessionPaused:
			st.Paused++
		case api.TerminalSessionState(info.State):
			st.Done++
		default:
			st.Active++
		}
		st.Subscribers += info.Subscribers
		st.Evictions += info.Evictions
	}
	return st
}

// DrainAndStop rejects new sessions, stops every live one (sessions may
// stream indefinitely under pacing, so drain cannot wait them out), and
// waits for their goroutines to exit or ctx to expire.
func (m *Manager) DrainAndStop(ctx context.Context) error {
	m.mu.Lock()
	m.draining = true
	sessions := append([]*Session(nil), m.order...)
	m.mu.Unlock()
	for _, s := range sessions {
		s.Stop()
	}
	done := make(chan struct{})
	go func() {
		m.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
