package session

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/core"
	"repro/internal/sim"
)

// Session is one live simulation run fanning its state stream out
// through a Hub. The run executes on its own goroutine via
// core.RunObservedContext; pacing and the pause gate live inside the
// observation callback, so they slow the simulation itself — the stream
// is never a lossy window onto a run that raced ahead.
type Session struct {
	// ID is the session's wire identifier (sess-N).
	ID string

	cfg    core.Config
	alg    core.Algorithm
	setups []core.TaskSetup

	every     sim.Time
	minGap    time.Duration
	heartbeat time.Duration
	buffer    int

	hub    *Hub
	ctx    context.Context
	cancel context.CancelFunc
	nowMS  func() int64
	done   chan struct{}

	mu         sync.Mutex
	state      string
	errMsg     string
	algName    string
	createdMS  int64
	finishedMS int64
	// gate is non-nil while paused; Resume closes it to release the
	// simulation goroutine blocked in onSample.
	gate chan struct{}

	// nextSample is the pacing deadline; touched only on the simulation
	// goroutine.
	nextSample time.Time
}

// run executes the simulation to completion, then closes the hub with
// the terminal stamp (emitting the terminal snapshot frame).
func (s *Session) run(wg *sync.WaitGroup) {
	defer wg.Done()
	defer close(s.done)
	obs := &core.Observer{Every: s.every, OnSample: s.onSample}
	_, err := core.RunObservedContext(s.ctx, s.cfg, s.alg, s.setups, obs)
	s.mu.Lock()
	switch {
	case err == nil:
		s.state = api.SessionDone
	case s.ctx.Err() != nil:
		s.state = api.SessionStopped
	default:
		s.state = api.SessionFailed
		s.errMsg = err.Error()
	}
	s.finishedMS = s.nowMS()
	stamp := s.stampLocked()
	s.mu.Unlock()
	s.hub.Close(stamp)
}

// onSample is the observation hook: pace, honor a pause, publish.
// It runs on the simulation goroutine, so blocking here blocks the
// simulation — which is exactly what pacing and pause mean.
func (s *Session) onSample(o core.Observation) {
	if !o.Final {
		s.pace()
	}
	s.await()
	if s.ctx.Err() != nil {
		return
	}
	s.mu.Lock()
	stamp := s.stampLocked()
	s.mu.Unlock()
	s.hub.Publish(stamp, stateOf(o))
}

// pace sleeps the simulation so samples land at most 1/minGap per
// wall-second, turning a microseconds-long run into a watchable stream.
func (s *Session) pace() {
	if s.minGap <= 0 {
		return
	}
	now := time.Now()
	if wait := s.nextSample.Sub(now); wait > 0 {
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-s.ctx.Done():
			t.Stop()
			return
		}
		s.nextSample = s.nextSample.Add(s.minGap)
		return
	}
	s.nextSample = now.Add(s.minGap)
}

// await blocks while the session is paused; Resume or Stop releases it.
func (s *Session) await() {
	for {
		s.mu.Lock()
		gate := s.gate
		s.mu.Unlock()
		if gate == nil {
			return
		}
		select {
		case <-gate:
		case <-s.ctx.Done():
			return
		}
	}
}

// stampLocked builds the session's wire view minus the hub-owned
// counters (Seq, SimMS, Subscribers, Evictions).
func (s *Session) stampLocked() api.Session {
	return api.Session{
		SchemaVersion: api.SchemaVersion,
		ID:            s.ID,
		State:         s.state,
		Error:         s.errMsg,
		Algorithm:     s.algName,
		SampleMS:      int64(s.every / sim.Millisecond),
		CreatedMS:     s.createdMS,
		FinishedMS:    s.finishedMS,
	}
}

// Info returns the session's current wire view.
func (s *Session) Info() api.Session {
	s.mu.Lock()
	info := s.stampLocked()
	s.mu.Unlock()
	info.SimMS = s.hub.SimMS()
	info.Seq = s.hub.Seq()
	info.Subscribers = s.hub.Subscribers()
	info.Evictions = s.hub.Evictions()
	return info
}

// State returns a copy of the latest published snapshot state; ok is
// false before the first sample.
func (s *Session) State() (api.SessionState, bool) {
	return s.hub.State()
}

// Pause gates the simulation at its next sample. Pausing a paused
// session is a no-op; pausing a terminal one is an error.
func (s *Session) Pause() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if api.TerminalSessionState(s.state) {
		return fmt.Errorf("session: %s is %s", s.ID, s.state)
	}
	if s.gate == nil {
		s.gate = make(chan struct{})
		s.state = api.SessionPaused
	}
	return nil
}

// Resume releases a paused session. Resuming a running session is a
// no-op; resuming a terminal one is an error.
func (s *Session) Resume() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if api.TerminalSessionState(s.state) {
		return fmt.Errorf("session: %s is %s", s.ID, s.state)
	}
	if s.gate != nil {
		close(s.gate)
		s.gate = nil
		s.state = api.SessionRunning
	}
	return nil
}

// Stop cancels the run; the simulation halts between events (releasing
// a pause gate if one is held) and the stream closes with a stopped
// stamp. Stopping a terminal session is a no-op.
func (s *Session) Stop() {
	s.cancel()
}

// Done closes once the run goroutine has exited and the hub is closed.
func (s *Session) Done() <-chan struct{} {
	return s.done
}

// Subscribe attaches a stream consumer (see Hub.Subscribe); the ring
// capacity is the session's configured buffer.
func (s *Session) Subscribe(lastEventID uint64) *Subscriber {
	return s.hub.Subscribe(lastEventID, s.buffer)
}

// Unsubscribe detaches a consumer.
func (s *Session) Unsubscribe(sub *Subscriber) {
	s.hub.Unsubscribe(sub)
}

// Heartbeat is the effective per-subscriber heartbeat cadence.
func (s *Session) Heartbeat() time.Duration {
	return s.heartbeat
}

// stateOf converts one core observation into its wire snapshot.
func stateOf(o core.Observation) api.SessionState {
	st := api.SessionState{
		SimMS:   int64(o.At / sim.Millisecond),
		Nodes:   make([]api.SessionNode, len(o.Nodes)),
		Tasks:   make([]api.SessionTask, len(o.Tasks)),
		Metrics: api.MetricsFromRun(o.Metrics),
	}
	for i, n := range o.Nodes {
		st.Nodes[i] = api.SessionNode{Util: n.Util, Down: n.Down}
	}
	for i, t := range o.Tasks {
		st.Tasks[i] = api.SessionTask{
			Name:      t.Name,
			Stages:    t.Stages,
			Completed: t.Completed,
			Missed:    t.Missed,
			InFlight:  t.InFlight,
		}
	}
	return st
}
