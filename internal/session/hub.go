// Package session runs live simulation sessions: long-running observed
// runs whose state stream — snapshots and diffs — fans out to any
// number of concurrent subscribers without ever blocking the simulation
// loop.
//
// The fan-out discipline is drop-to-snapshot: every subscriber owns a
// fixed ring of pending events, and a subscriber that falls a full ring
// behind is evicted — its buffer is cleared and its next read returns a
// fresh snapshot of the current state instead of the missed diffs.
// Publishing therefore never waits on a consumer; slow readers lose
// intermediate frames, never correctness, because a snapshot plus the
// diffs after it folds to exactly the state the stream describes.
package session

import (
	"context"
	"errors"
	"sync"

	"repro/internal/api"
)

// ErrClosed is returned by Subscriber.Next once the session's stream
// has ended and every buffered event has been delivered.
var ErrClosed = errors.New("session: stream closed")

// Hub fans one session's event stream out to its subscribers. The
// publisher (the simulation goroutine) and any number of subscriber
// goroutines may call it concurrently.
type Hub struct {
	mu sync.Mutex
	// seq numbers published events from 1; it is the SSE id and the
	// Last-Event-ID resume key. Heartbeats live in the transport layer
	// and never pass through the hub, so seq only moves with state.
	seq uint64
	// state/stamp are the latest published snapshot state and session
	// view; hasState guards the virgin hub (nothing published yet).
	state    api.SessionState
	stamp    api.Session
	hasState bool
	closed   bool
	// replay is a circular buffer of recent events keyed by seq — event
	// q sits at replay[(q-1) % len(replay)] — so a reconnect with a
	// Last-Event-ID inside the window replays the missed tail instead of
	// forcing a snapshot.
	replay        []api.Event
	subs          map[*Subscriber]struct{}
	evictions     uint64
	defaultBuffer int
}

func newHub(replayWindow, defaultBuffer int) *Hub {
	if replayWindow <= 0 {
		replayWindow = 1024
	}
	if defaultBuffer <= 0 {
		defaultBuffer = 256
	}
	return &Hub{
		replay:        make([]api.Event, replayWindow),
		subs:          make(map[*Subscriber]struct{}),
		defaultBuffer: defaultBuffer,
	}
}

// Publish appends the next state to the stream: the first publish
// becomes a snapshot event, every later one a diff against the previous
// state. The stamp's Seq/SimMS are overwritten with the event's. It
// never blocks: subscribers that cannot absorb the event are evicted to
// lagged (their next read resyncs from a snapshot). Returns the
// event's seq.
func (h *Hub) Publish(stamp api.Session, state api.SessionState) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return h.seq
	}
	h.seq++
	stamp.Seq = h.seq
	stamp.SimMS = state.SimMS
	ev := api.Event{Seq: h.seq, Session: &stamp}
	if h.hasState {
		ev.Type = api.EventDiff
		d := api.DiffStates(h.state, state)
		ev.Diff = &d
	} else {
		ev.Type = api.EventSnapshot
		snap := state.Clone()
		ev.Snapshot = &snap
	}
	h.state = state
	h.stamp = stamp
	h.hasState = true
	h.fanOutLocked(ev)
	return h.seq
}

// Close ends the stream. If any state was published it emits one final
// snapshot event carrying the terminal stamp — the frame the
// stream-vs-final consistency check compares folded diffs against —
// then wakes every subscriber so their reads drain to ErrClosed.
func (h *Hub) Close(stamp api.Session) uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return h.seq
	}
	h.closed = true
	if h.hasState {
		h.seq++
		stamp.Seq = h.seq
		stamp.SimMS = h.state.SimMS
		snap := h.state.Clone()
		h.stamp = stamp
		h.fanOutLocked(api.Event{Type: api.EventSnapshot, Seq: h.seq, Session: &stamp, Snapshot: &snap})
		return h.seq
	}
	// Nothing was ever published (the run failed or was stopped before
	// its first sample): there is no state to snapshot, just wake the
	// subscribers so Next returns ErrClosed.
	stamp.Seq = h.seq
	h.stamp = stamp
	for s := range h.subs {
		s.signal()
	}
	return h.seq
}

// fanOutLocked records the event in the replay window and pushes it to
// every subscriber, evicting the ones whose ring is full.
func (h *Hub) fanOutLocked(ev api.Event) {
	h.replay[int((ev.Seq-1)%uint64(len(h.replay)))] = ev
	for s := range h.subs {
		if !s.lagged && !s.push(ev) {
			s.lagged = true
			h.evictions++
		}
		s.signal()
	}
}

// Subscribe attaches a new subscriber. lastEventID is the stream
// position the caller has already seen (0 for a fresh join); when it
// falls inside the replay window and the missed tail fits the ring, the
// tail is preloaded, otherwise the subscriber starts lagged and its
// first read returns a current snapshot. buffer overrides the ring
// capacity (≤ 0 means the hub default).
func (h *Hub) Subscribe(lastEventID uint64, buffer int) *Subscriber {
	if buffer <= 0 {
		buffer = h.defaultBuffer
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := &Subscriber{hub: h, buf: make([]api.Event, buffer), notify: make(chan struct{}, 1)}
	stored := h.seq
	if w := uint64(len(h.replay)); stored > w {
		stored = w
	}
	switch {
	case lastEventID == h.seq:
		// Up to date: wait for the next event (or closure).
	case lastEventID > 0 && lastEventID < h.seq &&
		lastEventID+1 >= h.seq-stored+1 && h.seq-lastEventID <= uint64(len(s.buf)):
		for q := lastEventID + 1; q <= h.seq; q++ {
			s.push(h.replay[int((q-1)%uint64(len(h.replay)))])
		}
	case h.hasState:
		// Fresh join on a live stream, a resume from outside the window,
		// or a missed tail too big for the ring: start from a snapshot.
		s.lagged = true
	}
	h.subs[s] = struct{}{}
	return s
}

// Unsubscribe detaches a subscriber; its pending events are dropped.
func (h *Hub) Unsubscribe(s *Subscriber) {
	h.mu.Lock()
	defer h.mu.Unlock()
	delete(h.subs, s)
}

// snapshotLocked synthesizes a snapshot event of the current state at
// the current seq — what lagged subscribers resync from.
func (h *Hub) snapshotLocked() api.Event {
	stamp := h.stamp
	snap := h.state.Clone()
	return api.Event{Type: api.EventSnapshot, Seq: h.seq, Session: &stamp, Snapshot: &snap}
}

// State returns a copy of the latest published state; ok is false while
// nothing has been published.
func (h *Hub) State() (st api.SessionState, ok bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if !h.hasState {
		return api.SessionState{}, false
	}
	return h.state.Clone(), true
}

// Seq returns the latest published event sequence number.
func (h *Hub) Seq() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.seq
}

// SimMS returns the sim-time progress of the latest published state.
func (h *Hub) SimMS() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.state.SimMS
}

// Subscribers returns the current subscriber count.
func (h *Hub) Subscribers() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Evictions returns how many times a slow subscriber was reset to a
// snapshot.
func (h *Hub) Evictions() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.evictions
}

// Subscriber is one attached consumer: a fixed ring of pending events
// drained by Next. Not safe for concurrent use by multiple goroutines
// (each stream handler owns one).
type Subscriber struct {
	hub    *Hub
	buf    []api.Event
	head   int
	n      int
	lagged bool
	notify chan struct{}
}

// push appends under the hub lock; a full ring clears itself and
// reports the overflow so the hub can mark the subscriber lagged.
func (s *Subscriber) push(ev api.Event) bool {
	if s.n == len(s.buf) {
		for i := range s.buf {
			s.buf[i] = api.Event{}
		}
		s.head, s.n = 0, 0
		return false
	}
	s.buf[(s.head+s.n)%len(s.buf)] = ev
	s.n++
	return true
}

func (s *Subscriber) pop() api.Event {
	ev := s.buf[s.head]
	s.buf[s.head] = api.Event{}
	s.head = (s.head + 1) % len(s.buf)
	s.n--
	return ev
}

// signal wakes a blocked Next without ever blocking the caller.
func (s *Subscriber) signal() {
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// Next returns the next event, blocking until one is available, the
// stream closes (ErrClosed after the buffer drains), or ctx is done
// (ctx.Err()). An evicted subscriber's next read is a fresh snapshot at
// the current seq; buffered events are discarded since the snapshot
// already subsumes them. Callers implement heartbeats by passing a
// deadline context and treating context.DeadlineExceeded as "idle".
func (s *Subscriber) Next(ctx context.Context) (api.Event, error) {
	h := s.hub
	for {
		h.mu.Lock()
		switch {
		case s.lagged && h.hasState:
			s.lagged = false
			for i := range s.buf {
				s.buf[i] = api.Event{}
			}
			s.head, s.n = 0, 0
			ev := h.snapshotLocked()
			h.mu.Unlock()
			return ev, nil
		case s.n > 0:
			ev := s.pop()
			h.mu.Unlock()
			return ev, nil
		case h.closed:
			h.mu.Unlock()
			return api.Event{}, ErrClosed
		}
		h.mu.Unlock()
		select {
		case <-s.notify:
		case <-ctx.Done():
			return api.Event{}, ctx.Err()
		}
	}
}
