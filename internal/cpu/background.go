package cpu

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/sim"
)

// BackgroundLoad drives a processor to a target utilization, as the
// profiling experiments of §4.2.1.1 require ("the execution latencies of
// the application subtasks are profiled for a number of resource
// utilization conditions").
//
// It models a self-paced CPU-bound process: it computes for target·q, then
// sleeps for (1−target)·q, where q is the duty-cycle granularity. When the
// node is otherwise idle the achieved utilization equals the target
// exactly; when a foreground job contends under round-robin, the
// background's compute phases stretch while its sleeps do not, so a
// foreground job of demand D observes latency ≈ D·(1+u) — a smooth,
// strictly monotone contention relationship for the regression to fit.
type BackgroundLoad struct {
	eng     *sim.Engine
	proc    Scheduler
	quantum sim.Time
	target  float64
	jitter  float64
	rng     *rand.Rand

	running  bool
	produced sim.Time // total demand submitted

	// Steady-state cycling allocates nothing: one Job struct is reused
	// across chunks (the next submit strictly follows the previous
	// completion), and the wake/complete callbacks are cached closures.
	job      Job
	onCycle  func()
	sleep    sim.Time
	wake     sim.Timer
	inFlight bool
}

// NewBackgroundLoad returns a stopped background load with the given
// duty-cycle quantum. rng may be nil for a deterministic, jitter-free
// load.
func NewBackgroundLoad(eng *sim.Engine, proc Scheduler, quantum sim.Time, rng *rand.Rand) *BackgroundLoad {
	if quantum <= 0 {
		panic(fmt.Sprintf("cpu: non-positive background quantum %v", quantum))
	}
	b := &BackgroundLoad{eng: eng, proc: proc, quantum: quantum, rng: rng}
	b.onCycle = b.cycle
	b.job.Name = "background"
	b.job.OnComplete = b.computeDone
	return b
}

// SetTarget sets the desired utilization fraction in [0, 0.95].
func (b *BackgroundLoad) SetTarget(u float64) {
	if u < 0 || u > 0.95 {
		panic(fmt.Sprintf("cpu: background target %v out of [0,0.95]", u))
	}
	b.target = u
}

// SetJitter sets multiplicative demand jitter amplitude in [0, 1); it is
// ignored when the load was built without an rng.
func (b *BackgroundLoad) SetJitter(amp float64) { b.jitter = amp }

// Target returns the configured utilization fraction.
func (b *BackgroundLoad) Target() float64 { return b.target }

// Produced returns the total CPU demand submitted so far.
func (b *BackgroundLoad) Produced() sim.Time { return b.produced }

// Start begins the compute/sleep cycle; it is a no-op if already running.
func (b *BackgroundLoad) Start() {
	if b.running {
		return
	}
	b.running = true
	if b.inFlight {
		// The in-flight chunk's completion resumes the cycle; starting a
		// second chain would double-submit the shared Job.
		return
	}
	b.cycle()
}

// Stop ceases after the in-flight compute chunk, if any. A pending sleep
// or idle-poll wake-up is cancelled.
func (b *BackgroundLoad) Stop() {
	b.running = false
	b.wake.Cancel()
}

func (b *BackgroundLoad) cycle() {
	if !b.running {
		return
	}
	if b.target == 0 {
		// Idle poll: re-check the target each quantum so a later
		// SetTarget takes effect.
		b.wake = b.eng.After(b.quantum, b.onCycle)
		return
	}
	compute := sim.Time(b.target * float64(b.quantum))
	if b.rng != nil && b.jitter > 0 {
		compute = sim.JitterTime(b.rng, compute, b.jitter)
	}
	b.sleep = b.quantum - sim.Time(b.target*float64(b.quantum))
	if compute <= 0 {
		b.wake = b.eng.After(b.quantum, b.onCycle)
		return
	}
	b.produced += compute
	b.inFlight = true
	b.job.Demand = compute
	b.proc.Submit(&b.job)
}

// computeDone is the shared Job's completion callback.
func (b *BackgroundLoad) computeDone(sim.Time) {
	b.inFlight = false
	if !b.running {
		return
	}
	if b.sleep > 0 {
		b.wake = b.eng.After(b.sleep, b.onCycle)
	} else {
		b.cycle()
	}
}
