package cpu

import (
	"fmt"
	"math/rand/v2"

	"repro/internal/sim"
)

// BackgroundLoad drives a processor to a target utilization, as the
// profiling experiments of §4.2.1.1 require ("the execution latencies of
// the application subtasks are profiled for a number of resource
// utilization conditions").
//
// It models a self-paced CPU-bound process: it computes for target·q, then
// sleeps for (1−target)·q, where q is the duty-cycle granularity. When the
// node is otherwise idle the achieved utilization equals the target
// exactly; when a foreground job contends under round-robin, the
// background's compute phases stretch while its sleeps do not, so a
// foreground job of demand D observes latency ≈ D·(1+u) — a smooth,
// strictly monotone contention relationship for the regression to fit.
type BackgroundLoad struct {
	eng     *sim.Engine
	proc    Scheduler
	quantum sim.Time
	target  float64
	jitter  float64
	rng     *rand.Rand

	running  bool
	produced sim.Time // total demand submitted
}

// NewBackgroundLoad returns a stopped background load with the given
// duty-cycle quantum. rng may be nil for a deterministic, jitter-free
// load.
func NewBackgroundLoad(eng *sim.Engine, proc Scheduler, quantum sim.Time, rng *rand.Rand) *BackgroundLoad {
	if quantum <= 0 {
		panic(fmt.Sprintf("cpu: non-positive background quantum %v", quantum))
	}
	return &BackgroundLoad{eng: eng, proc: proc, quantum: quantum, rng: rng}
}

// SetTarget sets the desired utilization fraction in [0, 0.95].
func (b *BackgroundLoad) SetTarget(u float64) {
	if u < 0 || u > 0.95 {
		panic(fmt.Sprintf("cpu: background target %v out of [0,0.95]", u))
	}
	b.target = u
}

// SetJitter sets multiplicative demand jitter amplitude in [0, 1); it is
// ignored when the load was built without an rng.
func (b *BackgroundLoad) SetJitter(amp float64) { b.jitter = amp }

// Target returns the configured utilization fraction.
func (b *BackgroundLoad) Target() float64 { return b.target }

// Produced returns the total CPU demand submitted so far.
func (b *BackgroundLoad) Produced() sim.Time { return b.produced }

// Start begins the compute/sleep cycle; it is a no-op if already running.
func (b *BackgroundLoad) Start() {
	if b.running {
		return
	}
	b.running = true
	b.cycle()
}

// Stop ceases after the in-flight compute chunk, if any.
func (b *BackgroundLoad) Stop() { b.running = false }

func (b *BackgroundLoad) cycle() {
	if !b.running {
		return
	}
	if b.target == 0 {
		// Idle poll: re-check the target each quantum so a later
		// SetTarget takes effect.
		b.eng.After(b.quantum, func() { b.cycle() })
		return
	}
	compute := sim.Time(b.target * float64(b.quantum))
	if b.rng != nil && b.jitter > 0 {
		compute = sim.JitterTime(b.rng, compute, b.jitter)
	}
	sleep := b.quantum - sim.Time(b.target*float64(b.quantum))
	if compute <= 0 {
		b.eng.After(b.quantum, func() { b.cycle() })
		return
	}
	b.produced += compute
	b.proc.Submit(&Job{
		Name:   "background",
		Demand: compute,
		OnComplete: func(sim.Time) {
			if sleep > 0 {
				b.eng.After(sleep, func() { b.cycle() })
			} else {
				b.cycle()
			}
		},
	})
}
