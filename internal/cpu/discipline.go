package cpu

import (
	"fmt"
	"math"

	"repro/internal/sim"
)

// Discipline selects the CPU scheduling policy. Table 1 fixes round-robin
// with a 1 ms slice; FIFO and processor sharing are ablation alternatives
// (PS is the fluid limit of round-robin as the slice shrinks to zero).
type Discipline int

// Scheduling disciplines.
const (
	RoundRobin Discipline = iota
	FIFO
	ProcessorSharing
)

func (d Discipline) String() string {
	switch d {
	case RoundRobin:
		return "round-robin"
	case FIFO:
		return "fifo"
	case ProcessorSharing:
		return "processor-sharing"
	default:
		return fmt.Sprintf("discipline(%d)", int(d))
	}
}

// JobObserver sees every job the moment it completes, with its
// SubmittedAt/StartedAt/CompletedAt timestamps final. Telemetry hooks in
// here so queue-wait and service-time accounting cover all work on the
// node — including background load — not just the jobs the facade
// submits. It runs before the job's own OnComplete callback.
type JobObserver func(procID int, j *Job)

// Scheduler is the per-processor policy abstraction: Processor implements
// it for round-robin and FIFO; PSProcessor implements processor sharing.
type Scheduler interface {
	ID() int
	Submit(j *Job)
	SetObserver(fn JobObserver)
	BusyTime() sim.Time
	QueueLen() int
	Busy() bool
	Completed() uint64
	Fail()
	Recover()
	Failed() bool
	Dropped() uint64
}

// NewScheduler builds a scheduler of the given discipline. The slice is
// ignored for FIFO and processor sharing.
func NewScheduler(eng *sim.Engine, id int, slice sim.Time, d Discipline) Scheduler {
	switch d {
	case RoundRobin:
		return NewProcessor(eng, id, slice)
	case FIFO:
		// FIFO is round-robin with an unbounded quantum: the head job
		// always runs to completion and arrivals never truncate it.
		return NewProcessor(eng, id, sim.Time(1)<<56)
	case ProcessorSharing:
		return NewPSProcessor(eng, id)
	default:
		panic(fmt.Sprintf("cpu: unknown discipline %v", d))
	}
}

// PSProcessor is an ideal processor-sharing CPU: all n active jobs
// progress simultaneously at rate 1/n. Events occur only at arrivals and
// completions, so it is also the cheapest discipline to simulate.
type PSProcessor struct {
	eng *sim.Engine
	id  int

	active     []*psJob
	lastUpdate sim.Time
	timer      sim.Timer
	onDue      func()   // cached method closure: one alloc per processor
	done       []*psJob // scratch reused across completeDue calls
	free       *psJob   // recycled psJob nodes

	cumBusy   sim.Time
	completed uint64
	failed    bool
	dropped   uint64

	observer JobObserver
}

type psJob struct {
	job       *Job
	remaining float64 // ns of pure demand left
	nextFree  *psJob
}

// NewPSProcessor returns an idle processor-sharing CPU.
func NewPSProcessor(eng *sim.Engine, id int) *PSProcessor {
	p := &PSProcessor{eng: eng, id: id}
	p.onDue = p.completeDue
	return p
}

// newPSJob takes a node from the free list or allocates one.
func (p *PSProcessor) newPSJob(j *Job) *psJob {
	a := p.free
	if a != nil {
		p.free = a.nextFree
		a.nextFree = nil
	} else {
		a = &psJob{}
	}
	a.job = j
	a.remaining = float64(j.Demand)
	return a
}

// freePSJob returns a node to the free list.
func (p *PSProcessor) freePSJob(a *psJob) {
	a.job = nil
	a.nextFree = p.free
	p.free = a
}

// ID implements Scheduler.
func (p *PSProcessor) ID() int { return p.id }

// SetObserver implements Scheduler.
func (p *PSProcessor) SetObserver(fn JobObserver) { p.observer = fn }

// QueueLen implements Scheduler.
func (p *PSProcessor) QueueLen() int { return len(p.active) }

// Busy implements Scheduler.
func (p *PSProcessor) Busy() bool { return len(p.active) > 0 }

// Completed implements Scheduler.
func (p *PSProcessor) Completed() uint64 { return p.completed }

// Failed implements Scheduler.
func (p *PSProcessor) Failed() bool { return p.failed }

// Dropped implements Scheduler.
func (p *PSProcessor) Dropped() uint64 { return p.dropped }

// advance applies the elapsed fluid progress to every active job.
func (p *PSProcessor) advance() {
	now := p.eng.Now()
	elapsed := now - p.lastUpdate
	p.lastUpdate = now
	n := len(p.active)
	if n == 0 || elapsed == 0 {
		return
	}
	p.cumBusy += elapsed
	share := float64(elapsed) / float64(n)
	for _, a := range p.active {
		a.remaining -= share
	}
}

// reschedule plans the next completion event.
func (p *PSProcessor) reschedule() {
	p.timer.Cancel()
	p.timer = sim.Timer{}
	n := len(p.active)
	if n == 0 {
		return
	}
	min := p.active[0].remaining
	for _, a := range p.active[1:] {
		if a.remaining < min {
			min = a.remaining
		}
	}
	if min < 0 {
		min = 0
	}
	// Round the wall-clock wait up: truncating down can schedule a
	// zero-delay event that makes no fluid progress and loops forever.
	wall := sim.Time(math.Ceil(min * float64(n)))
	p.timer = p.eng.After(wall, p.onDue)
}

// completeDue finishes every job whose fluid remaining has drained.
func (p *PSProcessor) completeDue() {
	p.advance()
	// Sub-nanosecond residue from float division counts as done.
	const eps = 0.5
	// Partition in place: still-active nodes compact to the front of
	// p.active, drained ones collect in the reusable done scratch.
	done := p.done[:0]
	still := p.active[:0]
	for _, a := range p.active {
		if a.remaining <= eps {
			done = append(done, a)
		} else {
			still = append(still, a)
		}
	}
	for i := len(still); i < len(p.active); i++ {
		p.active[i] = nil
	}
	p.active = still
	now := p.eng.Now()
	for _, a := range done {
		a.job.done = true
		a.job.CompletedAt = now
		a.job.remaining = 0
		p.completed++
	}
	p.reschedule()
	for _, a := range done {
		j := a.job
		p.freePSJob(a)
		if p.observer != nil {
			p.observer(p.id, j)
		}
		if j.OnComplete != nil {
			j.OnComplete(now)
		}
	}
	for i := range done {
		done[i] = nil
	}
	p.done = done[:0]
}

// Submit implements Scheduler.
func (p *PSProcessor) Submit(j *Job) {
	if j.Demand < 0 {
		panic(fmt.Sprintf("cpu: job %q with negative demand %v", j.Name, j.Demand))
	}
	if p.failed {
		p.dropped++
		return
	}
	now := p.eng.Now()
	j.SubmittedAt = now
	j.remaining = j.Demand
	j.started, j.done = false, false // allow Job reuse across submissions
	if j.Demand == 0 {
		j.started, j.done = true, true
		j.StartedAt, j.CompletedAt = now, now
		p.completed++
		if p.observer != nil {
			p.observer(p.id, j)
		}
		if j.OnComplete != nil {
			j.OnComplete(now)
		}
		return
	}
	p.advance()
	j.started = true
	j.StartedAt = now
	p.active = append(p.active, p.newPSJob(j))
	p.reschedule()
}

// BusyTime implements Scheduler.
func (p *PSProcessor) BusyTime() sim.Time {
	t := p.cumBusy
	if len(p.active) > 0 {
		t += p.eng.Now() - p.lastUpdate
	}
	return t
}

// Fail implements Scheduler: active fluid work is lost.
func (p *PSProcessor) Fail() {
	if p.failed {
		return
	}
	p.advance()
	p.failed = true
	p.dropped += uint64(len(p.active))
	for i, a := range p.active {
		p.freePSJob(a)
		p.active[i] = nil
	}
	p.active = p.active[:0]
	p.timer.Cancel()
	p.timer = sim.Timer{}
}

// Recover implements Scheduler.
func (p *PSProcessor) Recover() {
	p.failed = false
	p.lastUpdate = p.eng.Now()
}

// Compile-time checks: both processor types satisfy Scheduler.
var (
	_ Scheduler = (*Processor)(nil)
	_ Scheduler = (*PSProcessor)(nil)
)
