package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestDisciplineStrings(t *testing.T) {
	if RoundRobin.String() != "round-robin" || FIFO.String() != "fifo" ||
		ProcessorSharing.String() != "processor-sharing" {
		t.Error("discipline names wrong")
	}
	if Discipline(99).String() == "" {
		t.Error("unknown discipline empty string")
	}
}

func TestNewSchedulerBuildsEachDiscipline(t *testing.T) {
	eng := sim.NewEngine()
	for _, d := range []Discipline{RoundRobin, FIFO, ProcessorSharing} {
		s := NewScheduler(eng, 3, DefaultSlice, d)
		if s.ID() != 3 {
			t.Errorf("%v: ID = %d", d, s.ID())
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("unknown discipline did not panic")
		}
	}()
	NewScheduler(eng, 0, DefaultSlice, Discipline(42))
}

func TestFIFORunsToCompletion(t *testing.T) {
	eng := sim.NewEngine()
	p := NewScheduler(eng, 0, DefaultSlice, FIFO)
	a := &Job{Name: "a", Demand: 10 * ms}
	b := &Job{Name: "b", Demand: 2 * ms}
	p.Submit(a)
	eng.Schedule(ms, func() { p.Submit(b) })
	eng.Run()
	// No interleaving: a finishes first despite b being shorter.
	if a.CompletedAt != 10*ms {
		t.Errorf("a completed at %v, want 10ms", a.CompletedAt)
	}
	if b.CompletedAt != 12*ms {
		t.Errorf("b completed at %v, want 12ms", b.CompletedAt)
	}
}

func TestPSSingleJobExact(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPSProcessor(eng, 0)
	j := &Job{Demand: 10 * ms}
	p.Submit(j)
	eng.Run()
	if !j.Done() || j.CompletedAt != 10*ms {
		t.Errorf("completed at %v, want 10ms", j.CompletedAt)
	}
	if p.BusyTime() != 10*ms {
		t.Errorf("BusyTime = %v", p.BusyTime())
	}
	if p.Completed() != 1 {
		t.Errorf("Completed = %d", p.Completed())
	}
}

func TestPSEqualJobsFinishTogether(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPSProcessor(eng, 0)
	a := &Job{Demand: 5 * ms}
	b := &Job{Demand: 5 * ms}
	p.Submit(a)
	p.Submit(b)
	eng.Run()
	if a.CompletedAt != 10*ms || b.CompletedAt != 10*ms {
		t.Errorf("completions %v, %v — want both at 10ms", a.CompletedAt, b.CompletedAt)
	}
}

func TestPSLateArrivalSharing(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPSProcessor(eng, 0)
	a := &Job{Demand: 10 * ms}
	b := &Job{Demand: 2 * ms}
	p.Submit(a)
	// b arrives at 6ms: a has 4ms left; they share until b drains.
	// b needs 2ms at rate 1/2 → 4ms wall → b done at 10ms, a consumed
	// 2ms in that span → 2ms left alone → a done at 12ms.
	eng.Schedule(6*ms, func() { p.Submit(b) })
	eng.Run()
	if b.CompletedAt != 10*ms {
		t.Errorf("b completed at %v, want 10ms", b.CompletedAt)
	}
	if a.CompletedAt != 12*ms {
		t.Errorf("a completed at %v, want 12ms", a.CompletedAt)
	}
	if p.BusyTime() != 12*ms {
		t.Errorf("BusyTime = %v, want 12ms", p.BusyTime())
	}
}

func TestPSZeroDemandImmediate(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPSProcessor(eng, 0)
	done := false
	p.Submit(&Job{Demand: 0, OnComplete: func(sim.Time) { done = true }})
	if !done {
		t.Error("zero-demand job not immediate")
	}
	eng.Run()
}

func TestPSFailAndRecover(t *testing.T) {
	eng := sim.NewEngine()
	p := NewPSProcessor(eng, 0)
	lost := &Job{Demand: 10 * ms}
	p.Submit(lost)
	eng.Schedule(4*ms, func() { p.Fail() })
	eng.Run()
	if lost.Done() {
		t.Error("job survived the crash")
	}
	if p.Dropped() != 1 || !p.Failed() {
		t.Errorf("dropped=%d failed=%v", p.Dropped(), p.Failed())
	}
	if p.BusyTime() != 4*ms {
		t.Errorf("pre-crash busy = %v, want 4ms", p.BusyTime())
	}
	p.Recover()
	ok := &Job{Demand: ms}
	p.Submit(ok)
	eng.Run()
	if !ok.Done() {
		t.Error("job after recovery did not run")
	}
}

func TestPSNegativeDemandPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative demand did not panic")
		}
	}()
	NewPSProcessor(sim.NewEngine(), 0).Submit(&Job{Demand: -1})
}

// Property: processor sharing is the fluid limit of round-robin — with a
// fine slice, RR completion times approach PS within n_jobs slices.
func TestPropertyPSMatchesFineSliceRR(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed, 31)
		n := 2 + int(r.Uint64()%4)
		type arrival struct {
			at, demand sim.Time
		}
		arrivals := make([]arrival, n)
		for i := range arrivals {
			arrivals[i] = arrival{
				at:     sim.Time(r.Uint64()%20) * ms,
				demand: sim.Time(5+r.Uint64()%40) * ms,
			}
		}
		run := func(s Scheduler, eng *sim.Engine) []sim.Time {
			done := make([]sim.Time, n)
			for i, a := range arrivals {
				i, a := i, a
				eng.Schedule(a.at, func() {
					s.Submit(&Job{Demand: a.demand, OnComplete: func(at sim.Time) { done[i] = at }})
				})
			}
			eng.Run()
			return done
		}
		engPS := sim.NewEngine()
		ps := run(NewPSProcessor(engPS, 0), engPS)
		engRR := sim.NewEngine()
		fine := 100 * sim.Microsecond
		rr := run(NewProcessor(engRR, 0, fine), engRR)
		for i := range ps {
			if math.Abs(float64(ps[i]-rr[i])) > float64(sim.Time(n+1)*fine) {
				t.Logf("seed %d: job %d PS %v vs RR %v", seed, i, ps[i], rr[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: PS conserves work — busy time equals total demand when all
// jobs complete.
func TestPropertyPSWorkConservation(t *testing.T) {
	f := func(demands []uint8) bool {
		if len(demands) == 0 {
			return true
		}
		eng := sim.NewEngine()
		p := NewPSProcessor(eng, 0)
		var total sim.Time
		for _, d := range demands {
			demand := sim.Time(1+int(d)%32) * ms
			total += demand
			p.Submit(&Job{Demand: demand})
		}
		eng.Run()
		diff := p.BusyTime() - total
		if diff < 0 {
			diff = -diff
		}
		// Float residue tolerance: a nanosecond per job.
		return diff <= sim.Time(len(demands)) && p.Completed() == uint64(len(demands))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
