// Package cpu models the processors of the paper's system (§3, Table 1):
// homogeneous nodes, each with a private memory and a round-robin CPU
// scheduler with a 1 ms time slice.
//
// The scheduler is event-driven and exact: a lone job runs to completion
// without per-slice events (a fast path that changes nothing observable),
// and the moment a second job arrives the in-progress burst is truncated
// at the next slice boundary so round-robin interleaving proceeds
// precisely as it would with per-slice events.
package cpu

import (
	"fmt"

	"repro/internal/sim"
)

// DefaultSlice is the round-robin quantum from Table 1.
const DefaultSlice = 1 * sim.Millisecond

// Job is a unit of CPU demand submitted to a Processor. OnComplete, if
// non-nil, runs when the job's entire demand has been served.
type Job struct {
	Name       string
	Demand     sim.Time
	OnComplete func(completedAt sim.Time)

	remaining   sim.Time
	SubmittedAt sim.Time
	StartedAt   sim.Time // first time the job got the CPU
	CompletedAt sim.Time
	started     bool
	done        bool
}

// Remaining returns the unserved CPU demand.
func (j *Job) Remaining() sim.Time { return j.remaining }

// Done reports whether the job has completed.
func (j *Job) Done() bool { return j.done }

// Latency returns completion time minus submission time; it panics if the
// job has not completed.
func (j *Job) Latency() sim.Time {
	if !j.done {
		panic(fmt.Sprintf("cpu: Latency of unfinished job %q", j.Name))
	}
	return j.CompletedAt - j.SubmittedAt
}

// jobRing is a circular ready queue: popping the head and rotating the
// running job to the tail are index updates, not slice reallocations, so
// steady-state round-robin interleaving allocates nothing.
type jobRing struct {
	buf  []*Job
	head int
	n    int
}

func (r *jobRing) len() int { return r.n }

func (r *jobRing) push(j *Job) {
	if r.n == len(r.buf) {
		size := 2 * len(r.buf)
		if size < 4 {
			size = 4
		}
		buf := make([]*Job, size)
		for i := 0; i < r.n; i++ {
			buf[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head = buf, 0
	}
	r.buf[(r.head+r.n)%len(r.buf)] = j
	r.n++
}

func (r *jobRing) front() *Job { return r.buf[r.head] }

func (r *jobRing) popFront() *Job {
	j := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) % len(r.buf)
	r.n--
	return j
}

// rotate moves the running head job to the tail (round-robin).
func (r *jobRing) rotate() { r.push(r.popFront()) }

// reset empties the ring, dropping references so jobs can be collected.
func (r *jobRing) reset() {
	for i := 0; i < r.n; i++ {
		r.buf[(r.head+i)%len(r.buf)] = nil
	}
	r.head, r.n = 0, 0
}

// Processor is a single CPU with a round-robin ready queue.
type Processor struct {
	eng   *sim.Engine
	id    int
	slice sim.Time

	queue        jobRing // queue front is running when busy
	busy         bool
	burstStart   sim.Time
	burstPlanned sim.Time
	burstTimer   sim.Timer
	onBurstEnd   func() // cached method closure: one alloc per processor, not per burst

	cumBusy   sim.Time
	completed uint64

	failed  bool
	dropped uint64 // jobs lost to failures (in queue or submitted while down)

	observer JobObserver
}

// NewProcessor returns a processor with the given id and RR slice.
func NewProcessor(eng *sim.Engine, id int, slice sim.Time) *Processor {
	if slice <= 0 {
		panic(fmt.Sprintf("cpu: non-positive slice %v", slice))
	}
	p := &Processor{eng: eng, id: id, slice: slice}
	p.onBurstEnd = p.burstEnd
	return p
}

// ID returns the processor's identifier.
func (p *Processor) ID() int { return p.id }

// SetObserver installs a completion observer (see Scheduler.SetObserver).
func (p *Processor) SetObserver(fn JobObserver) { p.observer = fn }

// Slice returns the round-robin quantum.
func (p *Processor) Slice() sim.Time { return p.slice }

// QueueLen returns the number of jobs in the ready queue, including the
// running one.
func (p *Processor) QueueLen() int { return p.queue.len() }

// Busy reports whether a job is currently running.
func (p *Processor) Busy() bool { return p.busy }

// Completed returns the number of jobs finished so far.
func (p *Processor) Completed() uint64 { return p.completed }

// Fail crashes the processor: the running burst and every queued job are
// lost (their OnComplete callbacks never fire), and jobs submitted while
// down are dropped. Work served before the crash stays accounted.
func (p *Processor) Fail() {
	if p.failed {
		return
	}
	p.failed = true
	if p.busy {
		// Account the partial burst that executed before the crash.
		p.cumBusy += p.eng.Now() - p.burstStart
		p.burstTimer.Cancel()
		p.busy = false
	}
	p.dropped += uint64(p.queue.len())
	p.queue.reset()
}

// Recover brings a failed processor back with an empty queue.
func (p *Processor) Recover() { p.failed = false }

// Failed reports whether the processor is down.
func (p *Processor) Failed() bool { return p.failed }

// Dropped returns the number of jobs lost to failures.
func (p *Processor) Dropped() uint64 { return p.dropped }

// Submit enqueues a job. Zero-demand jobs complete immediately. Jobs
// submitted to a failed processor are dropped silently (the caller
// observes the loss as a missing completion, exactly like a real crash).
func (p *Processor) Submit(j *Job) {
	if j.Demand < 0 {
		panic(fmt.Sprintf("cpu: job %q with negative demand %v", j.Name, j.Demand))
	}
	if p.failed {
		p.dropped++
		return
	}
	now := p.eng.Now()
	j.SubmittedAt = now
	j.remaining = j.Demand
	j.started, j.done = false, false // allow Job reuse across submissions
	if j.Demand == 0 {
		j.started, j.done = true, true
		j.StartedAt, j.CompletedAt = now, now
		p.completed++
		if p.observer != nil {
			p.observer(p.id, j)
		}
		if j.OnComplete != nil {
			j.OnComplete(now)
		}
		return
	}
	p.queue.push(j)
	if !p.busy {
		p.dispatch()
		return
	}
	// A competitor arrived during an extended (lone-job) burst: truncate
	// the burst at the enclosing slice boundary so RR interleaving resumes
	// exactly as it would under literal per-slice scheduling. An arrival
	// landing precisely on a virtual boundary rotates the running job
	// immediately (the boundary belongs to the arrival).
	if p.burstPlanned > p.slice {
		elapsed := now - p.burstStart
		n := sim.CeilDiv(elapsed, p.slice)
		if n == 0 {
			n = 1
		}
		boundary := p.burstStart + sim.Time(n)*p.slice
		plannedEnd := p.burstStart + p.burstPlanned
		if boundary < plannedEnd {
			p.burstTimer.Cancel()
			p.burstPlanned = boundary - p.burstStart
			p.burstTimer = p.eng.Schedule(boundary, p.onBurstEnd)
		}
	}
}

// dispatch starts the job at the head of the queue, if any.
func (p *Processor) dispatch() {
	if p.queue.len() == 0 {
		p.busy = false
		return
	}
	p.busy = true
	j := p.queue.front()
	if !j.started {
		j.started = true
		j.StartedAt = p.eng.Now()
	}
	burst := j.remaining
	if p.queue.len() > 1 && burst > p.slice {
		burst = p.slice
	}
	p.burstStart = p.eng.Now()
	p.burstPlanned = burst
	p.burstTimer = p.eng.After(burst, p.onBurstEnd)
}

// burstEnd accounts the finished burst, completing or rotating the job.
func (p *Processor) burstEnd() {
	j := p.queue.front()
	j.remaining -= p.burstPlanned
	p.cumBusy += p.burstPlanned
	if j.remaining <= 0 {
		p.queue.popFront()
		j.done = true
		j.CompletedAt = p.eng.Now()
		p.completed++
		p.dispatch()
		if p.observer != nil {
			p.observer(p.id, j)
		}
		if j.OnComplete != nil {
			j.OnComplete(j.CompletedAt)
		}
		return
	}
	// Rotate to the tail (round-robin) unless alone.
	if p.queue.len() > 1 {
		p.queue.rotate()
	}
	p.dispatch()
}

// BusyTime returns the cumulative CPU time served, including the
// in-progress burst.
func (p *Processor) BusyTime() sim.Time {
	t := p.cumBusy
	if p.busy {
		t += p.eng.Now() - p.burstStart
	}
	return t
}

// Meter samples a scheduler's utilization over successive intervals, as
// the run-time monitor does once per task period.
type Meter struct {
	eng      *sim.Engine
	s        Scheduler
	lastBusy sim.Time
	lastAt   sim.Time
}

// NewMeter returns a meter anchored at the current time.
func NewMeter(eng *sim.Engine, s Scheduler) *Meter {
	return &Meter{eng: eng, s: s, lastBusy: s.BusyTime(), lastAt: eng.Now()}
}

// Sample returns the utilization (0..1) since the previous Sample (or
// since the meter's creation) and re-anchors the meter. A zero-length
// interval yields 0.
func (m *Meter) Sample() float64 {
	now := m.eng.Now()
	busy := m.s.BusyTime()
	dt := now - m.lastAt
	db := busy - m.lastBusy
	m.lastAt, m.lastBusy = now, busy
	if dt <= 0 {
		return 0
	}
	return float64(db) / float64(dt)
}
