package cpu_test

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/sim"
)

// Two equal jobs interleave under round-robin: with a 1 ms slice the
// first finishes one slice before the second.
func ExampleProcessor() {
	eng := sim.NewEngine()
	p := cpu.NewProcessor(eng, 0, cpu.DefaultSlice)
	for _, name := range []string{"a", "b"} {
		name := name
		p.Submit(&cpu.Job{
			Name:   name,
			Demand: 3 * sim.Millisecond,
			OnComplete: func(at sim.Time) {
				fmt.Println(name, "done at", at)
			},
		})
	}
	eng.Run()
	// Output:
	// a done at 5.000ms
	// b done at 6.000ms
}

// Under ideal processor sharing the same two jobs finish together.
func ExamplePSProcessor() {
	eng := sim.NewEngine()
	p := cpu.NewPSProcessor(eng, 0)
	for _, name := range []string{"a", "b"} {
		name := name
		p.Submit(&cpu.Job{
			Name:   name,
			Demand: 3 * sim.Millisecond,
			OnComplete: func(at sim.Time) {
				fmt.Println(name, "done at", at)
			},
		})
	}
	eng.Run()
	// Output:
	// a done at 6.000ms
	// b done at 6.000ms
}
