package cpu

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestBackgroundLoadAchievesTarget(t *testing.T) {
	for _, target := range []float64{0.2, 0.4, 0.6, 0.8} {
		eng := sim.NewEngine()
		p := NewProcessor(eng, 0, DefaultSlice)
		bg := NewBackgroundLoad(eng, p, 20*ms, nil)
		bg.SetTarget(target)
		bg.Start()
		eng.RunUntil(10 * sim.Second)
		got := float64(p.BusyTime()) / float64(10*sim.Second)
		if math.Abs(got-target) > 0.02 {
			t.Errorf("target %v: achieved %v", target, got)
		}
		bg.Stop()
	}
}

func TestBackgroundLoadZeroTargetIdle(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProcessor(eng, 0, DefaultSlice)
	bg := NewBackgroundLoad(eng, p, 20*ms, nil)
	bg.Start()
	eng.RunUntil(sim.Second)
	if p.BusyTime() != 0 {
		t.Errorf("BusyTime = %v with zero target", p.BusyTime())
	}
}

func TestBackgroundLoadStop(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProcessor(eng, 0, DefaultSlice)
	bg := NewBackgroundLoad(eng, p, 20*ms, nil)
	bg.SetTarget(0.5)
	bg.Start()
	eng.RunUntil(sim.Second)
	bg.Stop()
	busyAtStop := p.BusyTime()
	eng.RunUntil(2 * sim.Second)
	// One in-flight job may still drain, bounded by a single period's
	// demand.
	if p.BusyTime()-busyAtStop > 20*ms {
		t.Errorf("background kept producing after Stop: %v extra", p.BusyTime()-busyAtStop)
	}
}

func TestBackgroundLoadBadTargetPanics(t *testing.T) {
	eng := sim.NewEngine()
	bg := NewBackgroundLoad(eng, NewProcessor(eng, 0, DefaultSlice), 20*ms, nil)
	defer func() {
		if recover() == nil {
			t.Error("target 0.99 did not panic")
		}
	}()
	bg.SetTarget(0.99)
}

func TestBackgroundLoadBadPeriodPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero period did not panic")
		}
	}()
	eng := sim.NewEngine()
	NewBackgroundLoad(eng, NewProcessor(eng, 0, DefaultSlice), 0, nil)
}

func TestBackgroundLoadStartIdempotent(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProcessor(eng, 0, DefaultSlice)
	bg := NewBackgroundLoad(eng, p, 20*ms, nil)
	bg.SetTarget(0.3)
	bg.Start()
	bg.Start() // must not double the tick chain
	eng.RunUntil(10 * sim.Second)
	got := float64(p.BusyTime()) / float64(10*sim.Second)
	if math.Abs(got-0.3) > 0.02 {
		t.Errorf("achieved %v after double Start, want ≈0.3", got)
	}
}

func TestBackgroundLoadJitterStaysCloseToTarget(t *testing.T) {
	eng := sim.NewEngine()
	p := NewProcessor(eng, 0, DefaultSlice)
	bg := NewBackgroundLoad(eng, p, 20*ms, sim.NewRand(3, 3))
	bg.SetTarget(0.5)
	bg.SetJitter(0.3)
	bg.Start()
	eng.RunUntil(20 * sim.Second)
	got := float64(p.BusyTime()) / float64(20*sim.Second)
	if math.Abs(got-0.5) > 0.05 {
		t.Errorf("achieved %v with jitter, want ≈0.5", got)
	}
}

// Foreground latency must grow monotonically with background utilization —
// the relationship the paper's profiling step measures and eq. (3) models.
func TestForegroundSlowdownGrowsWithBackgroundLoad(t *testing.T) {
	latency := func(target float64) sim.Time {
		eng := sim.NewEngine()
		p := NewProcessor(eng, 0, DefaultSlice)
		bg := NewBackgroundLoad(eng, p, 20*ms, nil)
		bg.SetTarget(target)
		bg.Start()
		var done sim.Time
		eng.Schedule(sim.Second, func() {
			p.Submit(&Job{Name: "fg", Demand: 100 * ms, OnComplete: func(at sim.Time) { done = at }})
		})
		eng.RunUntil(30 * sim.Second)
		if done == 0 {
			t.Fatalf("foreground job did not finish at target %v", target)
		}
		return done - sim.Second
	}
	prev := sim.Time(0)
	for _, u := range []float64{0, 0.2, 0.4, 0.6, 0.8} {
		l := latency(u)
		if l <= prev {
			t.Errorf("latency at u=%v is %v, not greater than %v at lower load", u, l, prev)
		}
		prev = l
	}
	// Sanity: at zero load the latency equals the raw demand.
	if l := latency(0); l != 100*ms {
		t.Errorf("latency at idle = %v, want 100ms", l)
	}
}
