package cpu

import (
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

const ms = sim.Millisecond

func newProc(t *testing.T) (*sim.Engine, *Processor) {
	t.Helper()
	eng := sim.NewEngine()
	return eng, NewProcessor(eng, 0, DefaultSlice)
}

func TestLoneJobRunsToCompletion(t *testing.T) {
	eng, p := newProc(t)
	j := &Job{Name: "solo", Demand: 10 * ms}
	p.Submit(j)
	eng.Run()
	if !j.Done() {
		t.Fatal("job not done")
	}
	if j.Latency() != 10*ms {
		t.Errorf("latency = %v, want 10ms", j.Latency())
	}
	if got := eng.EventsFired(); got != 1 {
		t.Errorf("fast path fired %d events, want 1", got)
	}
	if p.BusyTime() != 10*ms {
		t.Errorf("BusyTime = %v", p.BusyTime())
	}
	if p.Completed() != 1 {
		t.Errorf("Completed = %d", p.Completed())
	}
}

func TestRoundRobinInterleavesEqualJobs(t *testing.T) {
	eng, p := newProc(t)
	a := &Job{Name: "a", Demand: 3 * ms}
	b := &Job{Name: "b", Demand: 3 * ms}
	p.Submit(a)
	p.Submit(b)
	eng.Run()
	// A[0,1) B[1,2) A[2,3) B[3,4) A[4,5) done, B[5,6) done.
	if a.CompletedAt != 5*ms {
		t.Errorf("a completed at %v, want 5ms", a.CompletedAt)
	}
	if b.CompletedAt != 6*ms {
		t.Errorf("b completed at %v, want 6ms", b.CompletedAt)
	}
}

func TestArrivalTruncatesExtendedBurst(t *testing.T) {
	eng, p := newProc(t)
	a := &Job{Name: "a", Demand: 10 * ms}
	b := &Job{Name: "b", Demand: 2 * ms}
	p.Submit(a)
	eng.Schedule(2500*sim.Microsecond, func() { p.Submit(b) })
	eng.Run()
	// A runs [0,3) alone (burst cut at the 3ms slice boundary), then RR:
	// B[3,4) A[4,5) B[5,6) done; A alone again, remaining 6ms → done at 12.
	if b.CompletedAt != 6*ms {
		t.Errorf("b completed at %v, want 6ms", b.CompletedAt)
	}
	if a.CompletedAt != 12*ms {
		t.Errorf("a completed at %v, want 12ms", a.CompletedAt)
	}
	if p.BusyTime() != 12*ms {
		t.Errorf("BusyTime = %v, want 12ms (work conserving)", p.BusyTime())
	}
}

func TestArrivalExactlyOnBoundaryRotatesImmediately(t *testing.T) {
	eng, p := newProc(t)
	a := &Job{Name: "a", Demand: 10 * ms}
	b := &Job{Name: "b", Demand: 1 * ms}
	p.Submit(a)
	eng.Schedule(3*ms, func() { p.Submit(b) })
	eng.Run()
	// The arrival lands exactly on a virtual slice boundary of the
	// extended burst; the boundary belongs to the arrival, so A rotates
	// at 3ms and B runs [3,4) — exactly as literal slicing would order it.
	if b.CompletedAt != 4*ms {
		t.Errorf("b completed at %v, want 4ms", b.CompletedAt)
	}
	if a.CompletedAt != 11*ms {
		t.Errorf("a completed at %v, want 11ms", a.CompletedAt)
	}
}

func TestZeroDemandCompletesImmediately(t *testing.T) {
	eng, p := newProc(t)
	var doneAt sim.Time = -1
	j := &Job{Name: "zero", Demand: 0, OnComplete: func(at sim.Time) { doneAt = at }}
	eng.Schedule(7*ms, func() { p.Submit(j) })
	eng.Run()
	if doneAt != 7*ms {
		t.Errorf("zero-demand job completed at %v, want 7ms", doneAt)
	}
	if j.Latency() != 0 {
		t.Errorf("latency = %v", j.Latency())
	}
}

func TestNegativeDemandPanics(t *testing.T) {
	eng, p := newProc(t)
	_ = eng
	defer func() {
		if recover() == nil {
			t.Error("negative demand did not panic")
		}
	}()
	p.Submit(&Job{Demand: -1})
}

func TestNonPositiveSlicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero slice did not panic")
		}
	}()
	NewProcessor(sim.NewEngine(), 0, 0)
}

func TestLatencyOfUnfinishedJobPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Latency of unfinished job did not panic")
		}
	}()
	(&Job{Demand: ms}).Latency()
}

func TestOnCompleteCallback(t *testing.T) {
	eng, p := newProc(t)
	var got sim.Time = -1
	p.Submit(&Job{Demand: 4 * ms, OnComplete: func(at sim.Time) { got = at }})
	eng.Run()
	if got != 4*ms {
		t.Errorf("OnComplete at %v, want 4ms", got)
	}
}

func TestBusyTimeIncludesInProgressBurst(t *testing.T) {
	eng, p := newProc(t)
	p.Submit(&Job{Demand: 10 * ms})
	checked := false
	eng.Schedule(4*ms, func() {
		if p.BusyTime() != 4*ms {
			t.Errorf("BusyTime mid-burst = %v, want 4ms", p.BusyTime())
		}
		checked = true
	})
	eng.Run()
	if !checked {
		t.Fatal("mid-burst check did not run")
	}
}

func TestIdleProcessorState(t *testing.T) {
	_, p := newProc(t)
	if p.Busy() || p.QueueLen() != 0 || p.BusyTime() != 0 {
		t.Error("fresh processor not idle")
	}
	if p.ID() != 0 || p.Slice() != DefaultSlice {
		t.Error("identity accessors wrong")
	}
}

func TestMeter(t *testing.T) {
	eng, p := newProc(t)
	m := NewMeter(eng, p)
	p.Submit(&Job{Demand: 5 * ms})
	eng.RunUntil(10 * ms)
	if got := m.Sample(); got != 0.5 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
	eng.RunUntil(20 * ms) // idle decade
	if got := m.Sample(); got != 0 {
		t.Errorf("idle utilization = %v, want 0", got)
	}
	if got := m.Sample(); got != 0 {
		t.Errorf("zero-interval sample = %v, want 0", got)
	}
}

// refCompletion computes round-robin completion times with a literal
// slice-by-slice reference simulation, used to validate the event-driven
// scheduler's fast path.
type refArrival struct {
	at     sim.Time
	demand sim.Time
	idx    int
}

func refCompletion(arrivals []refArrival, slice sim.Time) []sim.Time {
	done := make([]sim.Time, len(arrivals))
	pending := append([]refArrival(nil), arrivals...)
	sort.SliceStable(pending, func(i, j int) bool { return pending[i].at < pending[j].at })
	type rj struct {
		rem sim.Time
		idx int
	}
	var queue []rj
	var t sim.Time
	for len(queue) > 0 || len(pending) > 0 {
		if len(queue) == 0 {
			t = pending[0].at
		}
		// Admit arrivals at or before t.
		for len(pending) > 0 && pending[0].at <= t {
			queue = append(queue, rj{pending[0].demand, pending[0].idx})
			pending = pending[1:]
		}
		if len(queue) == 0 {
			continue
		}
		j := queue[0]
		burst := slice
		if j.rem < burst {
			burst = j.rem
		}
		t += burst
		j.rem -= burst
		// Arrivals at or before the boundary enqueue behind the current
		// membership but ahead of the rotated job (the boundary belongs
		// to the arrival, matching the scheduler's truncation rule).
		queue = queue[1:]
		for len(pending) > 0 && pending[0].at <= t {
			queue = append(queue, rj{pending[0].demand, pending[0].idx})
			pending = pending[1:]
		}
		if j.rem == 0 {
			done[j.idx] = t
		} else {
			queue = append(queue, j)
		}
	}
	return done
}

// Property: the event-driven scheduler with its extended-burst fast path
// produces exactly the same completion times as literal 1 ms slicing.
func TestPropertyMatchesStrictSlicingReference(t *testing.T) {
	f := func(seed uint64) bool {
		r := sim.NewRand(seed, 17)
		n := 1 + int(r.Uint64()%6)
		arrivals := make([]refArrival, n)
		for i := range arrivals {
			arrivals[i] = refArrival{
				at:     sim.Time(r.Uint64()%20) * ms / 2, // 0..10ms in 0.5ms steps
				demand: sim.Time(1+r.Uint64()%10) * ms,
				idx:    i,
			}
		}
		want := refCompletion(arrivals, DefaultSlice)

		eng := sim.NewEngine()
		p := NewProcessor(eng, 0, DefaultSlice)
		got := make([]sim.Time, n)
		for i, a := range arrivals {
			i, a := i, a
			eng.Schedule(a.at, func() {
				p.Submit(&Job{Demand: a.demand, OnComplete: func(at sim.Time) { got[i] = at }})
			})
		}
		eng.Run()
		for i := range want {
			if got[i] != want[i] {
				t.Logf("seed %d: job %d completed at %v, reference %v (arrivals %+v)",
					seed, i, got[i], want[i], arrivals)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: work conservation — the processor is never idle while work is
// pending, so the last completion equals first arrival + total demand when
// all arrivals land before the backlog drains.
func TestPropertyWorkConservation(t *testing.T) {
	f := func(demands []uint8) bool {
		if len(demands) == 0 {
			return true
		}
		eng := sim.NewEngine()
		p := NewProcessor(eng, 0, DefaultSlice)
		var total sim.Time
		var last sim.Time
		for _, d := range demands {
			demand := sim.Time(1+int64(d)%16) * ms
			total += demand
			p.Submit(&Job{Demand: demand, OnComplete: func(at sim.Time) {
				if at > last {
					last = at
				}
			}})
		}
		eng.Run()
		return last == total && p.BusyTime() == total
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFailDropsQueuedWork(t *testing.T) {
	eng, p := newProc(t)
	var completed int
	for i := 0; i < 3; i++ {
		p.Submit(&Job{Demand: 10 * ms, OnComplete: func(sim.Time) { completed++ }})
	}
	eng.Schedule(5*ms, func() { p.Fail() })
	eng.Run()
	if completed != 0 {
		t.Errorf("%d jobs completed after crash", completed)
	}
	if !p.Failed() {
		t.Error("Failed() = false")
	}
	if p.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3 (running + queued)", p.Dropped())
	}
	// Work before the crash stays accounted.
	if p.BusyTime() != 5*ms {
		t.Errorf("BusyTime = %v, want 5ms", p.BusyTime())
	}
}

func TestSubmitWhileFailedDropped(t *testing.T) {
	eng, p := newProc(t)
	p.Fail()
	done := false
	p.Submit(&Job{Demand: ms, OnComplete: func(sim.Time) { done = true }})
	eng.Run()
	if done {
		t.Error("job completed on failed processor")
	}
	if p.Dropped() != 1 {
		t.Errorf("Dropped = %d", p.Dropped())
	}
}

func TestRecoverRestoresService(t *testing.T) {
	eng, p := newProc(t)
	p.Fail()
	p.Recover()
	if p.Failed() {
		t.Fatal("still failed after Recover")
	}
	done := false
	p.Submit(&Job{Demand: 2 * ms, OnComplete: func(sim.Time) { done = true }})
	eng.Run()
	if !done {
		t.Error("job did not complete after recovery")
	}
}

func TestFailIdempotent(t *testing.T) {
	eng, p := newProc(t)
	p.Submit(&Job{Demand: 10 * ms})
	eng.RunUntil(3 * ms)
	p.Fail()
	p.Fail()
	if p.BusyTime() != 3*ms {
		t.Errorf("double Fail double-counted busy time: %v", p.BusyTime())
	}
}
