// Package regress implements the paper's regression models: the
// execution-latency model of eq. (3), the communication-delay model of
// eqs. (4)–(6), fitting both from profile samples, and the published
// Table 2/3 coefficients as reference data.
//
// Units follow the paper: latency in milliseconds, data size d in
// hundreds of data items, and CPU utilization u as a fraction in [0, 1]
// (see DESIGN.md for why the published coefficients are only
// self-consistent with fractional u).
package regress

import (
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// ItemsPerUnit is the data-size scale of eq. (3): d is measured in
// hundreds of data items.
const ItemsPerUnit = 100

// ExecModel is eq. (3):
//
//	eex(st, d, u) = (A1·u² + A2·u + A3)·d² + (B1·u² + B2·u + B3)·d
//
// with the result in milliseconds.
type ExecModel struct {
	A1, A2, A3 float64
	B1, B2, B3 float64
}

// LatencyMS evaluates the model at data size d (hundreds of items) and
// utilization u (fraction). Negative predictions are clamped to zero: the
// quadratic form can dip below zero outside the profiled region, and a
// negative latency forecast is never meaningful.
func (m ExecModel) LatencyMS(d, u float64) float64 {
	a := m.A1*u*u + m.A2*u + m.A3
	b := m.B1*u*u + m.B2*u + m.B3
	ms := a*d*d + b*d
	if ms < 0 {
		return 0
	}
	return ms
}

// Latency evaluates the model for a raw item count, returning a
// simulation duration.
func (m ExecModel) Latency(items int, u float64) sim.Time {
	if items < 0 {
		panic(fmt.Sprintf("regress: negative item count %d", items))
	}
	return sim.FromMillis(m.LatencyMS(float64(items)/ItemsPerUnit, u))
}

// Coefficients returns [A1 A2 A3 B1 B2 B3], the Table 2 layout.
func (m ExecModel) Coefficients() [6]float64 {
	return [6]float64{m.A1, m.A2, m.A3, m.B1, m.B2, m.B3}
}

func (m ExecModel) String() string {
	return fmt.Sprintf("eex(d,u) = (%.4g·u²%+.4g·u%+.4g)·d² + (%.4g·u²%+.4g·u%+.4g)·d",
		m.A1, m.A2, m.A3, m.B1, m.B2, m.B3)
}

// ExecSample is one profiled observation: the latency of a subtask
// processing Items data items on a node at utilization Util.
type ExecSample struct {
	Items   int
	Util    float64
	Latency sim.Time
}

// execBasis is the six-term basis of eq. (3): u²d², ud², d², u²d, ud, d.
var execBasis = []stats.BasisFunc{
	func(x []float64) float64 { u, d := x[0], x[1]; return u * u * d * d },
	func(x []float64) float64 { u, d := x[0], x[1]; return u * d * d },
	func(x []float64) float64 { d := x[1]; return d * d },
	func(x []float64) float64 { u, d := x[0], x[1]; return u * u * d },
	func(x []float64) float64 { u, d := x[0], x[1]; return u * d },
	func(x []float64) float64 { d := x[1]; return d },
}

// FitQuality reports goodness of fit on the training samples.
type FitQuality struct {
	R2   float64
	RMSE float64 // milliseconds
	N    int
}

func (q FitQuality) String() string {
	return fmt.Sprintf("R²=%.4f RMSE=%.3gms n=%d", q.R2, q.RMSE, q.N)
}

// FitExecModel determines eq. (3)'s coefficients from profile samples by
// ordinary least squares on the six-term basis, exactly as §4.2.1.1
// prescribes (per-utilization curves combined into a single two-variable
// equation).
func FitExecModel(samples []ExecSample) (ExecModel, FitQuality, error) {
	if len(samples) < len(execBasis) {
		return ExecModel{}, FitQuality{}, fmt.Errorf(
			"regress: need ≥%d exec samples, got %d", len(execBasis), len(samples))
	}
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		if s.Items < 0 {
			return ExecModel{}, FitQuality{}, fmt.Errorf("regress: sample %d has negative items", i)
		}
		if s.Util < 0 || s.Util > 1 {
			return ExecModel{}, FitQuality{}, fmt.Errorf("regress: sample %d utilization %v out of [0,1]", i, s.Util)
		}
		xs[i] = []float64{s.Util, float64(s.Items) / ItemsPerUnit}
		ys[i] = s.Latency.Milliseconds()
	}
	coefs, err := stats.FitBasis(xs, ys, execBasis)
	if err != nil {
		return ExecModel{}, FitQuality{}, fmt.Errorf("regress: exec fit: %w", err)
	}
	m := ExecModel{coefs[0], coefs[1], coefs[2], coefs[3], coefs[4], coefs[5]}
	pred := make([]float64, len(samples))
	for i := range samples {
		pred[i] = stats.PredictBasis(coefs, execBasis, xs[i])
	}
	q := FitQuality{R2: stats.R2(ys, pred), RMSE: stats.RMSE(ys, pred), N: len(samples)}
	if math.IsNaN(q.R2) {
		return ExecModel{}, FitQuality{}, fmt.Errorf("regress: exec fit produced NaN quality")
	}
	return m, q, nil
}

// FitPerUtilCurve fits the paper's intermediate per-utilization curve: a
// second-order polynomial through the origin of latency (ms) against d
// (hundreds of items), at one utilization level ("Y" in Figures 2–3).
func FitPerUtilCurve(samples []ExecSample) (a, b float64, err error) {
	if len(samples) < 2 {
		return 0, 0, fmt.Errorf("regress: need ≥2 samples for a per-utilization curve, got %d", len(samples))
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		xs[i] = float64(s.Items) / ItemsPerUnit
		ys[i] = s.Latency.Milliseconds()
	}
	coefs, err := stats.PolyFit(xs, ys, 2, false)
	if err != nil {
		return 0, 0, fmt.Errorf("regress: per-utilization fit: %w", err)
	}
	return coefs[0], coefs[1], nil
}
