package regress

// Published coefficients from the paper's Tables 2 and 3, kept verbatim as
// reference data. The paper's two replicable subtasks are numbers 3
// (the benchmark's Filter program) and 5 (EvalDecide).
//
// Unit note (see DESIGN.md §3): utilization u is interpreted as a fraction
// in [0, 1]; with u in raw percent the published coefficients produce
// negative latencies over most of the plotted range.

// PaperExecSubtask3 returns Table 2's row for subtask 3 (Filter).
func PaperExecSubtask3() ExecModel {
	return ExecModel{
		A1: -0.00155, A2: 1.535e-05, A3: 0.11816174,
		B1: 0.0298276, B2: -0.000285, B3: 0.983699,
	}
}

// PaperExecSubtask5 returns Table 2's row for subtask 5 (EvalDecide).
func PaperExecSubtask5() ExecModel {
	return ExecModel{
		A1: 0.002123, A2: -1.596e-05, A3: 0.022324,
		B1: -0.023927, B2: 0.000108, B3: 1.443762,
	}
}

// PaperBufferSlopeK is Table 3's buffer-delay slope for both replicable
// subtasks, in milliseconds per hundred data items of total periodic
// workload.
const PaperBufferSlopeK = 0.7
