package regress

import (
	"math"
	"math/rand/v2"
	"testing"

	"repro/internal/sim"
)

// fuzzSamples decodes a deterministic sample grid from the fuzz inputs:
// count samples whose items/util/latency come from a PCG stream, with
// occasional degenerate shapes (all-same util, all-same items, zero
// latencies) that stress the normal-equations solver.
func fuzzSamples(seed uint64, count, shape uint8) []ExecSample {
	r := rand.New(rand.NewPCG(seed, 0xf022))
	n := int(count)
	samples := make([]ExecSample, 0, n)
	fixedUtil := float64(r.IntN(11)) / 10
	fixedItems := r.IntN(5000)
	for i := 0; i < n; i++ {
		s := ExecSample{
			Items:   r.IntN(5000),
			Util:    float64(r.IntN(1001)) / 1000,
			Latency: sim.Time(r.Int64N(int64(200 * sim.Millisecond))),
		}
		switch shape % 4 {
		case 1:
			s.Util = fixedUtil // rank-deficient in u
		case 2:
			s.Items = fixedItems // rank-deficient in d
		case 3:
			s.Latency = 0
		}
		samples = append(samples, s)
	}
	return samples
}

// FuzzFitExecModel asserts the eq. (3) fitter never panics, never
// reports success with non-finite coefficients or quality, and that a
// fitted model's forecasts are finite and non-negative.
func FuzzFitExecModel(f *testing.F) {
	f.Add(uint64(1), uint8(40), uint8(0))
	f.Add(uint64(2), uint8(6), uint8(0))   // minimum sample count
	f.Add(uint64(3), uint8(5), uint8(0))   // below minimum: must error
	f.Add(uint64(4), uint8(30), uint8(1))  // constant utilization
	f.Add(uint64(5), uint8(30), uint8(2))  // constant data size
	f.Add(uint64(6), uint8(30), uint8(3))  // all-zero latencies
	f.Add(uint64(7), uint8(255), uint8(0)) // large sample set
	f.Fuzz(func(t *testing.T, seed uint64, count, shape uint8) {
		samples := fuzzSamples(seed, count, shape)
		m, q, err := FitExecModel(samples)
		if err != nil {
			return // rejecting degenerate input is fine; panicking is not
		}
		for i, c := range m.Coefficients() {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				t.Fatalf("coefficient %d not finite: %v (model %v)", i, c, m)
			}
		}
		if math.IsNaN(q.R2) || math.IsNaN(q.RMSE) || q.RMSE < 0 {
			t.Fatalf("fit quality not sane: %v", q)
		}
		if q.N != len(samples) {
			t.Fatalf("quality N = %d, want %d", q.N, len(samples))
		}
		// Forecasts over the modelled domain stay finite and non-negative.
		for _, d := range []float64{0, 0.5, 5, 50} {
			for _, u := range []float64{0, 0.25, 0.9, 1} {
				ms := m.LatencyMS(d, u)
				if math.IsNaN(ms) || math.IsInf(ms, 0) || ms < 0 {
					t.Fatalf("LatencyMS(%v,%v) = %v from model %v", d, u, ms, m)
				}
			}
		}
	})
}

// FuzzFitPerUtilCurve asserts the per-utilization curve fitter (Figures
// 2–3's "Y" polynomials) never panics and yields finite coefficients.
func FuzzFitPerUtilCurve(f *testing.F) {
	f.Add(uint64(1), uint8(10), uint8(0))
	f.Add(uint64(2), uint8(2), uint8(0)) // minimum sample count
	f.Add(uint64(3), uint8(1), uint8(0)) // below minimum: must error
	f.Add(uint64(4), uint8(20), uint8(2))
	f.Add(uint64(5), uint8(20), uint8(3))
	f.Fuzz(func(t *testing.T, seed uint64, count, shape uint8) {
		samples := fuzzSamples(seed, count, shape)
		a, b, err := FitPerUtilCurve(samples)
		if err != nil {
			return
		}
		if math.IsNaN(a) || math.IsInf(a, 0) || math.IsNaN(b) || math.IsInf(b, 0) {
			t.Fatalf("per-util curve not finite: a=%v b=%v", a, b)
		}
	})
}
