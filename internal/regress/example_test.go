package regress_test

import (
	"fmt"

	"repro/internal/regress"
	"repro/internal/sim"
)

// Evaluating eq. (3): the paper's Table 2 row for the Filter subtask at
// 1 000 tracks on an idle node.
func ExampleExecModel_Latency() {
	m := regress.PaperExecSubtask3()
	fmt.Println(m.Latency(1000, 0))
	// Output:
	// 21.653ms
}

// Fitting eq. (3) from profile samples recovers the generating model.
func ExampleFitExecModel() {
	truth := regress.ExecModel{A3: 0.1, B3: 1}
	var samples []regress.ExecSample
	for _, u := range []float64{0, 0.5, 1} {
		for _, items := range []int{100, 500, 1000, 2000} {
			samples = append(samples, regress.ExecSample{
				Items: items, Util: u, Latency: truth.Latency(items, u),
			})
		}
	}
	fit, quality, err := regress.FitExecModel(samples)
	if err != nil {
		panic(err)
	}
	fmt.Printf("a3=%.3f b3=%.3f R²=%.2f\n", fit.A3, fit.B3, quality.R2)
	// Output:
	// a3=0.100 b3=1.000 R²=1.00
}

// The eq. (4)–(6) communication model composes buffer delay (linear in
// the total periodic workload) with transmission delay.
func ExampleCommModel_Delay() {
	m := regress.CommModel{
		K:            regress.PaperBufferSlopeK,
		LinkBps:      100_000_000,
		BytesPerItem: 80,
		MTU:          1500,
	}
	d := m.Delay(1000, 15000)            // 1000-item message during a 15000-item period
	fmt.Println(d > 100*sim.Millisecond) // dominated by D_buf = 0.7·150 ms
	// Output:
	// true
}
