package regress

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// CommModel is eqs. (4)–(6):
//
//	ecd(m, d, c) = D_buf(d, c) + D_trans(d)
//	D_buf = K · Σᵢ ds(Tᵢ, c)        (eq. 5, linear in total periodic load)
//	D_trans = d / ls                 (eq. 6, payload over link speed)
//
// K is in milliseconds per hundred data items of total periodic workload.
// D_trans accounts for framing the way the wire does, so forecasts and the
// simulated segment agree on pure transmission time.
type CommModel struct {
	// K is the fitted buffer-delay slope (ms per hundred items of total
	// periodic workload), Table 3's coefficient.
	K float64
	// LinkBps is the link transmission speed ls.
	LinkBps int64
	// BytesPerItem converts items to payload bytes (Table 1: 80-byte
	// tracks).
	BytesPerItem int
	// PerMessageOverheadBytes, FrameOverheadBytes and MTU mirror the
	// segment configuration so D_trans matches the wire.
	PerMessageOverheadBytes int
	FrameOverheadBytes      int
	MTU                     int
}

// Validate reports configuration errors.
func (m CommModel) Validate() error {
	if m.K < 0 {
		return fmt.Errorf("regress: negative buffer slope K=%v", m.K)
	}
	if m.LinkBps <= 0 {
		return fmt.Errorf("regress: non-positive link speed %d", m.LinkBps)
	}
	if m.BytesPerItem <= 0 {
		return fmt.Errorf("regress: non-positive bytes per item %d", m.BytesPerItem)
	}
	if m.MTU <= 0 {
		return fmt.Errorf("regress: non-positive MTU %d", m.MTU)
	}
	return nil
}

// BufferDelayMS returns D_buf in milliseconds for the given total
// periodic workload (items across all tasks this period).
func (m CommModel) BufferDelayMS(totalItems int) float64 {
	if totalItems < 0 {
		panic(fmt.Sprintf("regress: negative total items %d", totalItems))
	}
	return m.K * float64(totalItems) / ItemsPerUnit
}

// TransmissionDelay returns D_trans for a message carrying the given
// number of items, including framing overheads.
func (m CommModel) TransmissionDelay(items float64) sim.Time {
	if items < 0 {
		panic(fmt.Sprintf("regress: negative item count %v", items))
	}
	payload := int64(items * float64(m.BytesPerItem))
	frames := (payload + int64(m.MTU) - 1) / int64(m.MTU)
	if frames == 0 {
		frames = 1
	}
	wire := payload + frames*int64(m.FrameOverheadBytes) + int64(m.PerMessageOverheadBytes)
	return sim.Time(float64(wire*8) / float64(m.LinkBps) * float64(sim.Second))
}

// Delay returns the full ecd forecast for a message carrying `items` data
// items during a period whose total workload is totalItems.
func (m CommModel) Delay(items float64, totalItems int) sim.Time {
	return sim.FromMillis(m.BufferDelayMS(totalItems)) + m.TransmissionDelay(items)
}

// CommSample is one profiled observation: the mean buffer delay observed
// during a period carrying TotalItems across the segment.
type CommSample struct {
	TotalItems  int
	BufferDelay sim.Time
}

// FitBufferSlope fits eq. (5)'s K by through-origin linear regression of
// buffer delay (ms) on total periodic workload (hundreds of items).
func FitBufferSlope(samples []CommSample) (float64, error) {
	if len(samples) == 0 {
		return 0, fmt.Errorf("regress: no comm samples")
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		if s.TotalItems < 0 {
			return 0, fmt.Errorf("regress: comm sample %d has negative items", i)
		}
		xs[i] = float64(s.TotalItems) / ItemsPerUnit
		ys[i] = s.BufferDelay.Milliseconds()
	}
	k, err := stats.LinearThroughOrigin(xs, ys)
	if err != nil {
		return 0, fmt.Errorf("regress: buffer slope fit: %w", err)
	}
	if k < 0 {
		k = 0
	}
	return k, nil
}
