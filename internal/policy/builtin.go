package policy

import (
	"repro/internal/manager"
	"repro/internal/task"
)

// The built-ins register from one init so Names() order — and with it
// the tournament grid — is fixed: the paper's two algorithms first, the
// PR-era baselines next, the degradation policies last.
func init() {
	Register(predictivePolicy{})
	Register(nonPredictivePolicy{})
	Register(greedyPolicy{})
	Register(staticMaxPolicy{})
	Register(stretchPolicy{})
	Register(shedPolicy{})
}

// predictivePolicy is the paper's contribution: Figure 5 forecast-driven
// replication with the Figure 6 shutdown guard.
type predictivePolicy struct{}

func (predictivePolicy) Name() string  { return "predictive" }
func (predictivePolicy) Paper() string { return "source paper, Figure 5 (ipps 2001)" }
func (predictivePolicy) NewAllocator(env TaskEnv) (manager.Allocator, error) {
	return manager.NewPredictive(env.Exec, env.Comm)
}

// nonPredictivePolicy is the paper's baseline: Figure 7 threshold
// replication.
type nonPredictivePolicy struct{}

func (nonPredictivePolicy) Name() string  { return "non-predictive" }
func (nonPredictivePolicy) Paper() string { return "source paper, Figure 7 (ipps 2001)" }
func (nonPredictivePolicy) NewAllocator(env TaskEnv) (manager.Allocator, error) {
	return manager.NewNonPredictive(env.UtilThreshold)
}

// greedyPolicy is the simplest reactive extension baseline.
type greedyPolicy struct{}

func (greedyPolicy) Name() string  { return "greedy" }
func (greedyPolicy) Paper() string { return "extension baseline (one replica per trigger)" }
func (greedyPolicy) NewAllocator(TaskEnv) (manager.Allocator, error) {
	return manager.Greedy{}, nil
}

// staticMaxPolicy is the maximum-concurrency upper bound: every
// replicable subtask on every node, fixed for the whole run.
type staticMaxPolicy struct{}

func (staticMaxPolicy) Name() string  { return "static-max" }
func (staticMaxPolicy) Paper() string { return "extension baseline (maximum-concurrency bound)" }
func (staticMaxPolicy) NewAllocator(TaskEnv) (manager.Allocator, error) {
	return manager.Static{}, nil
}

// SeedDeployment implements DeploymentSeeder: the full deployment is
// fixed up front and the Static allocator never changes it.
func (staticMaxPolicy) SeedDeployment(env TaskEnv, d *task.Deployment, spec task.Spec) error {
	for stage, st := range spec.Subtasks {
		if !st.Replicable {
			continue
		}
		for p := 0; p < env.NumNodes; p++ {
			if !d.Has(stage, p) {
				if err := d.AddReplica(stage, p); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
