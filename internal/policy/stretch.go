package policy

import (
	"repro/internal/manager"
)

// stretchPolicy is the elastic period-adaptation policy after Dwivedi
// (arXiv:1212.3502): under overload it degrades by stretching the task's
// effective period — launching fewer period instances per unit time —
// within a configured elastic bound, instead of immediately spending
// replicas. Only when the period is stretched to its bound does the
// monitor's replication signal reach the (predictive) allocator; on the
// way back down, the rate recovers before any replica is released.
type stretchPolicy struct{}

func (stretchPolicy) Name() string  { return "period-stretch" }
func (stretchPolicy) Paper() string { return "elastic period adaptation (Dwivedi, arXiv:1212.3502)" }

// NewAllocator pairs the stretch controller with the paper's predictive
// allocator: once the elastic budget is spent, replication decisions are
// forecast-driven exactly as in Figure 5.
func (stretchPolicy) NewAllocator(env TaskEnv) (manager.Allocator, error) {
	return manager.NewPredictive(env.Exec, env.Comm)
}

// NewController implements ControllerMaker.
func (stretchPolicy) NewController(env TaskEnv) Controller {
	return &stretchController{cfg: env.Knobs.Stretch.withDefaults(), factor: 1}
}

// stretchController holds the per-task elastic state. The effective
// period is factor × the nominal period, realized deterministically by a
// phase accumulator over the pre-scheduled nominal period boundaries:
// each boundary advances phase by 1/factor and a launch fires when the
// accumulator crosses 1, so over any window of n nominal periods the
// number of launches is within one of n/factor — no randomness, no
// engine rescheduling.
type stretchController struct {
	cfg    StretchConfig
	factor float64 // current stretch ∈ [1, cfg.MaxFactor]
	phase  float64 // launch-phase accumulator ∈ [0, 1)
}

// PlanPeriod implements Controller.
func (sc *stretchController) PlanPeriod(st PeriodState) Decision {
	d := Decision{LaunchItems: st.Items}
	switch {
	case st.Overloaded && sc.factor < sc.cfg.MaxFactor:
		// Degrade: move toward the analytic elastic target for the
		// observed utilization, at least one step, never past the bound.
		// The replication signal is consumed — stretching is the cheaper
		// lever while budget remains.
		next := sc.factor + sc.cfg.Step
		if want := StretchPlan([]float64{st.MeanRawUtil}, sc.cfg.UtilTarget, sc.cfg.MaxFactor)[0]; want > next {
			next = want
		}
		if next > sc.cfg.MaxFactor {
			next = sc.cfg.MaxFactor
		}
		sc.factor = next
		d.SuppressReplicate = true
	case !st.Overloaded && sc.factor > 1:
		// Recover: un-stretch one step per quiet period. While the rate
		// is still degraded, very-high-slack readings are an artifact of
		// the thinned load, so shutdowns stay suppressed until the
		// nominal period is restored.
		sc.factor -= sc.cfg.Step
		if sc.factor < 1 {
			sc.factor = 1
		}
		d.SuppressShutdown = true
	}
	sc.phase += 1 / sc.factor
	if sc.phase >= 1-1e-9 {
		sc.phase -= 1
		if sc.phase < 0 {
			sc.phase = 0
		}
		return d
	}
	d.Skip = true
	return d
}

// Factor exposes the current stretch for tests and diagnostics.
func (sc *stretchController) Factor() float64 { return sc.factor }

// StretchPlan is the analytic core of the elastic model: given the
// nominal utilizations Uᵢ of a task set, it returns per-task stretch
// factors sᵢ ∈ [1, maxFactor] such that the stretched total Σ Uᵢ/sᵢ is
// ≤ threshold whenever that is achievable within the bound (i.e. when
// Σ Uᵢ/maxFactor ≤ threshold). All tasks share one elasticity weight, so
// the plan is the uniform scale k = ΣUᵢ/threshold clamped into
// [1, maxFactor] — stretching no task when the set is already
// schedulable, and saturating every task at the bound when even full
// stretching cannot reach the threshold (the caller then falls back to
// replication).
func StretchPlan(utils []float64, threshold, maxFactor float64) []float64 {
	out := make([]float64, len(utils))
	if maxFactor < 1 {
		maxFactor = 1
	}
	var total float64
	for _, u := range utils {
		if u > 0 {
			total += u
		}
	}
	k := 1.0
	if threshold <= 0 {
		// Nothing is schedulable against a non-positive threshold; the
		// best the elastic model can do is stretch to the bound.
		k = maxFactor
	} else if total > threshold {
		k = total / threshold
		if k > maxFactor {
			k = maxFactor
		}
	}
	for i := range out {
		out[i] = k
	}
	return out
}
