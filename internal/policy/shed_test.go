package policy

import (
	"math/rand/v2"
	"testing"
)

// randShedConfig draws a valid shed configuration, zero half the time so
// the default-resolution path is exercised as often as explicit knobs.
func randShedConfig(r *rand.Rand) ShedConfig {
	if r.IntN(2) == 0 {
		return ShedConfig{}
	}
	return ShedConfig{
		MandatoryFraction: r.Float64(),
		Levels:            1 + r.IntN(12),
	}
}

// TestShedPlanProperties quick-checks the imprecise-computation plan
// over random loads: the mandatory part is never shed, the plan never
// exceeds the period's items, and deepening the level never restores
// work (monotone shedding).
func TestShedPlanProperties(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(0x5bed, 1))
	for i := 0; i < 5000; i++ {
		cfg := randShedConfig(r)
		items := r.IntN(20000)
		levels := cfg.withDefaults().Levels
		prev := -1
		for level := levels; level >= 0; level-- {
			got := ShedPlan(items, cfg, level)
			mand := MandatoryItems(items, cfg)
			if got < mand {
				t.Fatalf("level %d shed into the mandatory part: plan %d < mandatory %d (items %d cfg %+v)",
					level, got, mand, items, cfg)
			}
			if got > items {
				t.Fatalf("level %d plans %d items of %d available (cfg %+v)", level, got, items, cfg)
			}
			if got < prev {
				t.Fatalf("restoring level %d→%d lost work: %d → %d items (cfg %+v)",
					level+1, level, prev, got, items)
			}
			prev = got
		}
		// Level 0 is the precise result; the deepest level is the floor.
		if items > 0 {
			if ShedPlan(items, cfg, 0) != items {
				t.Fatalf("level 0 is not precise: %d of %d items", ShedPlan(items, cfg, 0), items)
			}
			if ShedPlan(items, cfg, levels) != MandatoryItems(items, cfg) {
				t.Fatalf("full shed keeps %d items, want the mandatory %d",
					ShedPlan(items, cfg, levels), MandatoryItems(items, cfg))
			}
		}
	}
}

// TestShedRestorePriorityOrder drives the controller through an overload
// burst and a quiet recovery, asserting that restoration retraces the
// exact item counts shedding stepped through, in reverse — the
// highest-priority optional chunk comes back first, and no chunk is
// skipped.
func TestShedRestorePriorityOrder(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(0x5bed, 2))
	for trial := 0; trial < 200; trial++ {
		cfg := randShedConfig(r).withDefaults()
		sc := &shedController{cfg: cfg}
		items := 100 + r.IntN(10000)

		var shedCounts []int
		for p := 0; sc.Level() < cfg.Levels; p++ {
			d := sc.PlanPeriod(PeriodState{Period: p, Items: items, Overloaded: true})
			if !d.SuppressReplicate {
				t.Fatalf("trial %d: shedding without consuming the replication signal", trial)
			}
			shedCounts = append(shedCounts, d.LaunchItems)
		}
		if len(shedCounts) != cfg.Levels {
			t.Fatalf("trial %d: reached the floor in %d steps, want %d", trial, len(shedCounts), cfg.Levels)
		}
		if floor := shedCounts[len(shedCounts)-1]; floor != MandatoryItems(items, cfg) {
			t.Fatalf("trial %d: floor keeps %d items, want mandatory %d", trial, floor, MandatoryItems(items, cfg))
		}

		for step := 0; sc.Level() > 0; step++ {
			d := sc.PlanPeriod(PeriodState{Period: 100 + step, Items: items})
			if !d.SuppressShutdown {
				t.Fatalf("trial %d: restoring at level %d without suppressing shutdown", trial, sc.Level())
			}
			// Restoration step k must land exactly where shedding stood k+1
			// levels from the floor — the chunks come back in priority order.
			var want int
			if idx := len(shedCounts) - 2 - step; idx >= 0 {
				want = shedCounts[idx]
			} else {
				want = items
			}
			if d.LaunchItems != want {
				t.Fatalf("trial %d: restore step %d launches %d items, want %d (shed trajectory %v)",
					trial, step, d.LaunchItems, want, shedCounts)
			}
		}
		if d := sc.PlanPeriod(PeriodState{Period: 999, Items: items}); d.LaunchItems != items {
			t.Fatalf("trial %d: precise result not restored: %d of %d items", trial, d.LaunchItems, items)
		}
	}
}

// TestMandatoryItemsEdges pins the clamps: empty periods have no
// mandatory part, non-empty ones at least one item, and the fraction
// never rounds past the period.
func TestMandatoryItemsEdges(t *testing.T) {
	t.Parallel()
	if got := MandatoryItems(0, ShedConfig{}); got != 0 {
		t.Errorf("MandatoryItems(0) = %d, want 0", got)
	}
	if got := MandatoryItems(1, ShedConfig{MandatoryFraction: 0.01, Levels: 4}); got != 1 {
		t.Errorf("tiny fraction of one item = %d, want 1", got)
	}
	if got := MandatoryItems(10, ShedConfig{MandatoryFraction: 0.99, Levels: 4}); got != 10 {
		t.Errorf("0.99 of 10 = %d, want 10 (ceil)", got)
	}
}

// FuzzShedPlan asserts the plan never panics and always lands in
// [mandatory, items] for non-negative loads, for arbitrary knobs.
func FuzzShedPlan(f *testing.F) {
	f.Add(1000, 0.5, 4, 2)
	f.Add(0, 0.0, 0, 0)
	f.Add(1, 1.0, 1, 5)   // level past the configured depth
	f.Add(7, 0.3, 12, -3) // negative level
	f.Add(-50, 0.5, 4, 2) // negative load
	f.Fuzz(func(t *testing.T, items int, frac float64, levels, level int) {
		if frac < 0 || frac > 1 || levels < 0 || levels > 1<<16 || items > 1<<30 {
			t.Skip() // Validate() rejects these knobs at the config boundary
		}
		cfg := ShedConfig{MandatoryFraction: frac, Levels: levels}
		got := ShedPlan(items, cfg, level)
		if items <= 0 {
			if got != 0 {
				t.Fatalf("ShedPlan(%d) = %d, want 0 for empty periods", items, got)
			}
			return
		}
		mand := MandatoryItems(items, cfg)
		if got < mand || got > items {
			t.Fatalf("ShedPlan(%d, %+v, %d) = %d outside [%d, %d]", items, cfg, level, got, mand, items)
		}
	})
}
