package policy_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/policy"
	"repro/internal/workload"
)

// TestPolicyChaosInteraction runs every registered policy through the
// retransmit-efficacy scenario (10% message drop on the shared segment,
// constant workload) twice — bare, then under the hardened manager —
// and checks the interaction contract: the lossy network actually
// drops, hardening is the only source of retransmissions, and with
// retransmission in place no policy misses more deadlines than its bare
// run. The whole suite runs under -race in CI, so a policy whose
// controller state races with the retransmit path fails here too.
func TestPolicyChaosInteraction(t *testing.T) {
	t.Parallel()
	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			run := func(hardened bool) core.Result {
				t.Helper()
				setup, err := experiment.BenchmarkSetup(workload.NewConstant(8*experiment.WorkloadUnit, 50))
				if err != nil {
					t.Fatal(err)
				}
				cfg := core.DefaultConfig()
				cfg.Seed = 23
				cfg.Network.DropProb = 0.10
				if hardened {
					cfg.Degradation = core.HardenedDegradation()
				}
				res, err := core.Run(cfg, core.Algorithm(name), []core.TaskSetup{setup})
				if err != nil {
					t.Fatal(err)
				}
				return res
			}
			bare := run(false)
			hard := run(true)

			if bare.Metrics.DroppedMessages == 0 || hard.Metrics.DroppedMessages == 0 {
				t.Fatalf("10%% drop probability dropped nothing (bare %d, hardened %d)",
					bare.Metrics.DroppedMessages, hard.Metrics.DroppedMessages)
			}
			if bare.Metrics.Retransmissions != 0 {
				t.Errorf("bare run retransmitted %d messages with no delivery watchdog", bare.Metrics.Retransmissions)
			}
			if hard.Metrics.Retransmissions == 0 {
				t.Error("hardened run never retransmitted under 10% drop")
			}
			// Retransmit efficacy: recovering lost handoffs must not cost
			// deadlines relative to losing them outright.
			if hard.Metrics.Missed > bare.Metrics.Missed {
				t.Errorf("hardening regressed deadlines: %d missed hardened vs %d bare",
					hard.Metrics.Missed, bare.Metrics.Missed)
			}
			if hard.Metrics.Completed == 0 {
				t.Error("hardened run completed nothing")
			}
		})
	}
}
