package policy

import (
	"math"

	"repro/internal/manager"
)

// shedPolicy is the imprecise-computation policy after El-Haweet et al.
// (arXiv:1306.0448): each period's items divide into a mandatory part —
// processed whatever the load — and an optional part split into
// priority-ordered chunks. Overload sheds optional chunks, lowest
// priority first, before any replica is spent; when the overload clears,
// chunks are restored in the reverse (priority) order before the policy
// consents to releasing replicas. Only at full shed does the replication
// signal reach the (predictive) allocator.
type shedPolicy struct{}

func (shedPolicy) Name() string { return "imprecise-shed" }
func (shedPolicy) Paper() string {
	return "imprecise end-to-end scheduling (El-Haweet et al., arXiv:1306.0448)"
}

// NewAllocator pairs the shed controller with the paper's predictive
// allocator: once every optional chunk is shed, replication decisions
// are forecast-driven exactly as in Figure 5.
func (shedPolicy) NewAllocator(env TaskEnv) (manager.Allocator, error) {
	return manager.NewPredictive(env.Exec, env.Comm)
}

// NewController implements ControllerMaker.
func (shedPolicy) NewController(env TaskEnv) Controller {
	return &shedController{cfg: env.Knobs.Shed.withDefaults()}
}

// shedController tracks how many optional chunks are currently shed.
type shedController struct {
	cfg   ShedConfig
	level int // shed chunks ∈ [0, cfg.Levels]
}

// PlanPeriod implements Controller.
func (sc *shedController) PlanPeriod(st PeriodState) Decision {
	var d Decision
	switch {
	case st.Overloaded && sc.level < sc.cfg.Levels:
		// Degrade: shed the next-lowest-priority optional chunk and
		// consume the replication signal — imprecise results are the
		// cheaper lever while optional work remains.
		sc.level++
		d.SuppressReplicate = true
	case !st.Overloaded && sc.level > 0:
		// Recover: restore the highest-priority shed chunk. Until the
		// result is precise again, high slack only reflects the thinned
		// load, so shutdowns stay suppressed.
		sc.level--
		d.SuppressShutdown = true
	}
	d.LaunchItems = ShedPlan(st.Items, sc.cfg, sc.level)
	return d
}

// Level exposes the current shed depth for tests and diagnostics.
func (sc *shedController) Level() int { return sc.level }

// MandatoryItems returns the mandatory part of a period's items under
// the configured fraction: ⌈fraction·items⌉, at least one for any
// non-empty period, never more than the period holds. This part is never
// shed.
func MandatoryItems(items int, cfg ShedConfig) int {
	cfg = cfg.withDefaults()
	if items <= 0 {
		return 0
	}
	m := int(math.Ceil(cfg.MandatoryFraction * float64(items)))
	if m < 1 {
		m = 1
	}
	if m > items {
		m = items
	}
	return m
}

// ShedPlan returns how many of a period's items are processed at the
// given shed level: the mandatory part plus the unshed optional chunks.
// Level 0 is the precise result (every item); level cfg.Levels is the
// floor (mandatory only). Chunk boundaries come from integer
// proportionality, so restoring levels one at a time retraces the exact
// item counts shedding stepped through — the priority order is inherent.
func ShedPlan(items int, cfg ShedConfig, level int) int {
	cfg = cfg.withDefaults()
	if items <= 0 {
		return 0
	}
	if level < 0 {
		level = 0
	}
	if level > cfg.Levels {
		level = cfg.Levels
	}
	mandatory := MandatoryItems(items, cfg)
	optional := items - mandatory
	kept := optional - optional*level/cfg.Levels
	return mandatory + kept
}
