package policy_test

// Policy conformance suite.
//
// Every policy in the registry — built-in or future — must satisfy the
// same contract before it is allowed into the tournament:
//
//  1. Determinism: the same seed produces byte-identical metrics and the
//     same engine event count, twice in a row.
//  2. Clean baseline: on a workload with no overload, a policy must not
//     regress met deadlines — adaptation machinery that costs deadlines
//     while idle is broken.
//  3. Bounded reaction: after an injected node crash the run records the
//     crash, observes the recovery, and the crash → first-met-deadline
//     time stays within a small multiple of the task period.
//  4. Fingerprint sensitivity: every policy knob must change the run
//     fingerprint, or the scheduler would serve a knob A result for a
//     knob B request from cache.
//
// Behavior preservation for the two paper algorithms (byte-identical
// golden CSVs for predictive and non-predictive) is pinned separately by
// the golden harness in internal/experiment — this file covers the
// properties that must hold for *every* registered name.

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/experiment"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/workload"
)

// conformanceSetup builds the paper's benchmark task over the given
// pattern, failing the test on error.
func conformanceSetup(t *testing.T, p workload.Pattern) core.TaskSetup {
	t.Helper()
	setup, err := experiment.BenchmarkSetup(p)
	if err != nil {
		t.Fatal(err)
	}
	return setup
}

// TestConformanceDeterminism runs every registered policy twice on an
// overload-inducing workload (so the stretch/shed controllers actually
// engage) and requires identical metrics and event counts.
func TestConformanceDeterminism(t *testing.T) {
	t.Parallel()
	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := core.DefaultConfig()
			cfg.Seed = 42
			pat := experiment.TriangularFactory(16 * experiment.WorkloadUnit)
			a, err := core.Run(cfg, core.Algorithm(name), []core.TaskSetup{conformanceSetup(t, pat)})
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.Run(cfg, core.Algorithm(name), []core.TaskSetup{conformanceSetup(t, pat)})
			if err != nil {
				t.Fatal(err)
			}
			if a.Metrics != b.Metrics {
				t.Errorf("metrics differ across identical runs:\n  first  %+v\n  second %+v", a.Metrics, b.Metrics)
			}
			if a.EventsFired != b.EventsFired {
				t.Errorf("events fired differ across identical runs: %d vs %d", a.EventsFired, b.EventsFired)
			}
		})
	}
}

// TestConformanceCleanBaseline runs every policy on a light constant
// workload that needs no adaptation. No policy may miss a deadline
// there, and the degrading policies must keep their machinery idle: no
// stretched periods, no shed items.
func TestConformanceCleanBaseline(t *testing.T) {
	t.Parallel()
	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := core.DefaultConfig()
			cfg.Seed = 7
			setup := conformanceSetup(t, workload.NewConstant(4*experiment.WorkloadUnit, 40))
			res, err := core.Run(cfg, core.Algorithm(name), []core.TaskSetup{setup})
			if err != nil {
				t.Fatal(err)
			}
			m := res.Metrics
			if m.Missed != 0 {
				t.Errorf("missed %d deadlines on a no-overload workload (completed %d/%d)",
					m.Missed, m.Completed, m.Periods)
			}
			if m.Completed == 0 {
				t.Error("no periods completed")
			}
			if m.StretchedPeriods != 0 {
				t.Errorf("stretched %d periods with no overload", m.StretchedPeriods)
			}
			if m.ShedItems != 0 {
				t.Errorf("shed %d items with no overload", m.ShedItems)
			}
		})
	}
}

// TestConformanceCrashReaction injects a 5-second crash on node 2 under
// the hardened manager and requires every policy to record it, observe
// the recovery, and bound the crash → first-met-deadline time.
func TestConformanceCrashReaction(t *testing.T) {
	t.Parallel()
	// The benchmark task's period is 500ms; recovery inside 10 periods is
	// generous for every built-in, and any policy that blows past it is
	// stalling the adaptation loop.
	const maxRecoveryMS = 5000.0
	for _, name := range policy.Names() {
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			cfg := core.DefaultConfig()
			cfg.Seed = 11
			cfg.Faults = []core.Fault{{Node: 2, At: 10 * sim.Second, Duration: 5 * sim.Second}}
			cfg.Degradation = core.HardenedDegradation()
			setup := conformanceSetup(t, workload.NewConstant(12*experiment.WorkloadUnit, 60))
			res, err := core.Run(cfg, core.Algorithm(name), []core.TaskSetup{setup})
			if err != nil {
				t.Fatal(err)
			}
			m := res.Metrics
			if m.Crashes < 1 {
				t.Fatalf("injected crash not recorded: crashes=%d", m.Crashes)
			}
			if m.Recoveries < 1 {
				t.Fatalf("crash recovery not observed: recoveries=%d", m.Recoveries)
			}
			if m.MeanRecoveryMS > maxRecoveryMS {
				t.Errorf("mean recovery %.1f ms exceeds the %d ms reaction bound",
					m.MeanRecoveryMS, int(maxRecoveryMS))
			}
		})
	}
}

// TestConformanceFingerprintKnobs reflectively walks every leaf of
// policy.Config, perturbs it, and requires the run fingerprint to move:
// a knob the fingerprint ignores would let the scheduler alias two runs
// that differ in that knob.
func TestConformanceFingerprintKnobs(t *testing.T) {
	t.Parallel()
	setup := conformanceSetup(t, experiment.TriangularFactory(4*experiment.WorkloadUnit))
	base := core.DefaultConfig()
	seen := map[string]string{
		"(baseline)": experiment.Fingerprint(base, core.PeriodStretch, []core.TaskSetup{setup}),
	}
	var walk func(v reflect.Value, path string, cfg *core.Config)
	walk = func(v reflect.Value, path string, cfg *core.Config) {
		switch v.Kind() {
		case reflect.Struct:
			for i := 0; i < v.NumField(); i++ {
				walk(v.Field(i), path+"."+v.Type().Field(i).Name, cfg)
			}
		case reflect.Float64:
			old := v.Float()
			v.SetFloat(old + 0.125)
			seen[path] = experiment.Fingerprint(*cfg, core.PeriodStretch, []core.TaskSetup{setup})
			v.SetFloat(old)
		case reflect.Int:
			old := v.Int()
			v.SetInt(old + 3)
			seen[path] = experiment.Fingerprint(*cfg, core.PeriodStretch, []core.TaskSetup{setup})
			v.SetInt(old)
		default:
			t.Fatalf("policy.Config leaf %s has unhandled kind %s — extend the conformance walk", path, v.Kind())
		}
	}
	cfg := base
	walk(reflect.ValueOf(&cfg.Policy).Elem(), "Policy", &cfg)
	if len(seen) < 6 { // baseline + the 5 knobs; grows with new knobs
		t.Fatalf("walk visited only %d fingerprints — policy.Config lost leaves?", len(seen))
	}
	byFP := make(map[string]string, len(seen))
	for path, fp := range seen {
		if other, dup := byFP[fp]; dup {
			t.Errorf("knob %s does not move the fingerprint (aliases %s)", path, other)
		}
		byFP[fp] = path
	}
}

// TestConformanceRegistryShape guards the registry contract itself:
// every entry names itself consistently, cites a paper, and builds a
// working allocator from a default environment.
func TestConformanceRegistryShape(t *testing.T) {
	t.Parallel()
	names := policy.Names()
	if len(names) < 4 {
		t.Fatalf("registry holds %d policies, want at least the 4 built-ins", len(names))
	}
	setup := conformanceSetup(t, workload.NewConstant(experiment.WorkloadUnit, 10))
	for _, name := range names {
		pol, ok := policy.Lookup(name)
		if !ok {
			t.Fatalf("Names() lists %q but Lookup misses it", name)
		}
		if pol.Name() != name {
			t.Errorf("policy registered as %q reports Name()=%q", name, pol.Name())
		}
		if pol.Paper() == "" {
			t.Errorf("policy %q cites no paper", name)
		}
		env := policy.TaskEnv{
			Exec:          setup.Exec,
			Comm:          setup.Comm,
			NumNodes:      core.DefaultConfig().NumNodes,
			UtilThreshold: core.DefaultConfig().UtilThreshold,
		}
		alloc, err := pol.NewAllocator(env)
		if err != nil {
			t.Errorf("policy %q: NewAllocator: %v", name, err)
		} else if alloc == nil {
			t.Errorf("policy %q: NewAllocator returned nil", name)
		}
	}
}
