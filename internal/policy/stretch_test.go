package policy

import (
	"math"
	"math/rand/v2"
	"testing"
)

// randTaskSet draws a random utilization vector for the quick-check
// properties, occasionally degenerate (empty, zero-util, overloaded far
// past any bound) to stress the plan's clamps.
func randTaskSet(r *rand.Rand) []float64 {
	n := r.IntN(8)
	utils := make([]float64, n)
	for i := range utils {
		switch r.IntN(5) {
		case 0:
			utils[i] = 0
		case 1:
			utils[i] = 5 * r.Float64() // hopeless overload
		default:
			utils[i] = r.Float64()
		}
	}
	return utils
}

// TestStretchPlanProperties quick-checks the elastic plan over random
// task sets: factors never leave [1, maxFactor], and whenever the bound
// admits a schedulable stretching, the planned set is schedulable.
func TestStretchPlanProperties(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(0x57e7c4, 1))
	for i := 0; i < 5000; i++ {
		utils := randTaskSet(r)
		threshold := r.Float64()
		maxFactor := 1 + 3*r.Float64()
		plan := StretchPlan(utils, threshold, maxFactor)
		if len(plan) != len(utils) {
			t.Fatalf("plan length %d for %d tasks", len(plan), len(utils))
		}
		var total, stretched float64
		for j, u := range utils {
			if plan[j] < 1 || plan[j] > maxFactor {
				t.Fatalf("factor %g outside [1, %g] (utils %v threshold %g)", plan[j], maxFactor, utils, threshold)
			}
			if u > 0 {
				total += u
				stretched += u / plan[j]
			}
		}
		// Achievability: if stretching every task to the bound reaches the
		// threshold, the plan must too (within float tolerance).
		if total/maxFactor <= threshold && stretched > threshold+1e-9 {
			t.Fatalf("plan leaves utilization %g > threshold %g though %g/%g was achievable (utils %v)",
				stretched, threshold, total, maxFactor, utils)
		}
	}
}

// TestStretchPlanEdges pins the clamp behavior the quick-check only
// samples: schedulable sets stay unstretched, non-positive thresholds
// saturate at the bound, and sub-1 bounds are lifted to 1.
func TestStretchPlanEdges(t *testing.T) {
	t.Parallel()
	if got := StretchPlan([]float64{0.2, 0.3}, 0.8, 2)[0]; got != 1 {
		t.Errorf("schedulable set stretched to %g, want 1", got)
	}
	if got := StretchPlan([]float64{0.5}, 0, 2)[0]; got != 2 {
		t.Errorf("threshold 0 stretched to %g, want the bound 2", got)
	}
	if got := StretchPlan([]float64{3}, 0.5, 0.25)[0]; got != 1 {
		t.Errorf("maxFactor<1 produced %g, want clamp to 1", got)
	}
	if got := StretchPlan(nil, 0.5, 2); len(got) != 0 {
		t.Errorf("empty task set produced %v", got)
	}
}

// TestStretchControllerBounds drives the controller through random
// overload sequences and asserts the elastic invariants: the factor
// never leaves [1, MaxFactor], and over any run of n periods the number
// of launches is at least ⌊n/MaxFactor⌋−1 — the period never silently
// stretches past its bound.
func TestStretchControllerBounds(t *testing.T) {
	t.Parallel()
	r := rand.New(rand.NewPCG(0x57e7c5, 2))
	for trial := 0; trial < 200; trial++ {
		cfg := StretchConfig{
			MaxFactor:  1 + 2.5*r.Float64(),
			Step:       0.05 + 0.4*r.Float64(),
			UtilTarget: 0.3 + 0.6*r.Float64(),
		}
		sc := &stretchController{cfg: cfg.withDefaults(), factor: 1}
		n := 50 + r.IntN(200)
		launches := 0
		for p := 0; p < n; p++ {
			st := PeriodState{
				Period:      p,
				Items:       1000,
				Overloaded:  r.IntN(2) == 0,
				MeanRawUtil: 2 * r.Float64(),
			}
			d := sc.PlanPeriod(st)
			if f := sc.Factor(); f < 1 || f > cfg.MaxFactor+1e-9 {
				t.Fatalf("trial %d: factor %g outside [1, %g]", trial, f, cfg.MaxFactor)
			}
			if !d.Skip {
				launches++
				if d.LaunchItems != st.Items {
					t.Fatalf("trial %d: stretch altered launch items %d → %d", trial, st.Items, d.LaunchItems)
				}
			}
		}
		if min := int(math.Floor(float64(n)/cfg.MaxFactor)) - 1; launches < min {
			t.Fatalf("trial %d: %d launches over %d periods, elastic bound %g guarantees ≥ %d",
				trial, launches, n, cfg.MaxFactor, min)
		}
	}
}

// TestStretchControllerRecovery checks the hysteresis contract: quiet
// periods walk the factor back to exactly 1, and while un-stretching the
// controller keeps suppressing shutdowns.
func TestStretchControllerRecovery(t *testing.T) {
	t.Parallel()
	sc := &stretchController{cfg: StretchConfig{}.withDefaults(), factor: 1}
	for p := 0; p < 20; p++ {
		sc.PlanPeriod(PeriodState{Period: p, Items: 100, Overloaded: true, MeanRawUtil: 1.5})
	}
	if sc.Factor() != DefaultStretchMaxFactor {
		t.Fatalf("sustained overload stretched to %g, want the bound %g", sc.Factor(), DefaultStretchMaxFactor)
	}
	for p := 20; p < 60; p++ {
		d := sc.PlanPeriod(PeriodState{Period: p, Items: 100})
		if sc.Factor() > 1 && !d.SuppressShutdown {
			t.Fatalf("period %d: un-stretching at factor %g without suppressing shutdown", p, sc.Factor())
		}
	}
	if sc.Factor() != 1 {
		t.Fatalf("quiet run left factor at %g, want 1", sc.Factor())
	}
}

// FuzzStretchPlan asserts the plan never panics and always returns
// bounded, finite factors, whatever the inputs.
func FuzzStretchPlan(f *testing.F) {
	f.Add(uint64(1), uint8(4), 0.8, 2.0)
	f.Add(uint64(2), uint8(0), 0.0, 1.0)   // empty set, degenerate threshold
	f.Add(uint64(3), uint8(16), -1.0, 0.5) // negative threshold, bound < 1
	f.Add(uint64(4), uint8(255), 0.01, 64.0)
	f.Fuzz(func(t *testing.T, seed uint64, count uint8, threshold, maxFactor float64) {
		if math.IsNaN(threshold) || math.IsNaN(maxFactor) || math.IsInf(maxFactor, 0) {
			t.Skip()
		}
		r := rand.New(rand.NewPCG(seed, 0x57e7))
		utils := make([]float64, int(count))
		for i := range utils {
			utils[i] = 10*r.Float64() - 2 // includes negatives
		}
		plan := StretchPlan(utils, threshold, maxFactor)
		lo := maxFactor
		if lo < 1 {
			lo = 1
		}
		for i, s := range plan {
			if math.IsNaN(s) || math.IsInf(s, 0) {
				t.Fatalf("factor %d not finite: %v", i, s)
			}
			if s < 1 || s > lo {
				t.Fatalf("factor %d = %g outside [1, %g]", i, s, lo)
			}
		}
	})
}
