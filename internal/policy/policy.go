// Package policy puts the allocate/degrade/recover decision path behind
// one registry-keyed interface. The paper hardcodes two managers — the
// predictive algorithm (Figure 5) against the non-predictive baseline
// (Figure 7) — but the adaptation loop only ever needs three things from
// an algorithm: an Allocator for replication/shutdown decisions, an
// optional initial deployment, and an optional per-period Controller
// that can degrade gracefully (shed work, stretch periods) instead of —
// or before — changing the replica set.
//
// Every algorithm name accepted anywhere in the system (core.Config, the
// rmsim -alg flag, the rmserved wire schema, the ext-tournament grid)
// resolves through this package's registry, so adding a policy here is
// the single step that makes it runnable, cacheable, and comparable.
//
// The registered built-ins:
//
//	predictive      Figure 5 (the paper's contribution)
//	non-predictive  Figure 7 (the paper's baseline)
//	greedy          one replica per trigger, no forecast (extension)
//	static-max      maximum-concurrency upper bound (extension)
//	period-stretch  elastic period adaptation (Dwivedi, arXiv:1212.3502)
//	imprecise-shed  mandatory/optional imprecise computation
//	                (El-Haweet et al., arXiv:1306.0448)
//
// Behavior preservation: the first four policies carry no Controller, so
// the per-period hot path of a run under them is byte-identical to the
// pre-registry build (the golden CSVs under internal/experiment/testdata
// pin this). The conformance suite in this directory holds every
// registered policy to the same contract.
package policy

import (
	"fmt"
	"sync"

	"repro/internal/manager"
	"repro/internal/regress"
	"repro/internal/task"
)

// TaskEnv carries the per-task construction inputs a policy may use to
// build its machinery: the fitted regression models (eqs. 3–6), the
// cluster size, the non-predictive threshold, and the policy knobs from
// the run configuration.
type TaskEnv struct {
	// Exec holds one fitted eq. (3) model per subtask.
	Exec []regress.ExecModel
	// Comm is the fitted eq. (4)–(6) model.
	Comm regress.CommModel
	// NumNodes is the cluster size.
	NumNodes int
	// UtilThreshold is the non-predictive algorithm's UT (Table 1: 20 %).
	UtilThreshold float64
	// Knobs holds the policy-specific configuration; zero fields mean the
	// registered defaults (Config.withDefaults resolves them).
	Knobs Config
}

// Policy builds the per-task allocation machinery for one registered
// algorithm. Implementations must be stateless values: per-run state
// lives in the Allocator and Controller they construct.
type Policy interface {
	// Name is the registry key: the algorithm string accepted by
	// core.Config, the CLI flags, and the wire schema.
	Name() string
	// Paper cites the source of the strategy (for the README matrix and
	// experiment notes).
	Paper() string
	// NewAllocator constructs the replication/shutdown decision maker for
	// one task.
	NewAllocator(env TaskEnv) (manager.Allocator, error)
}

// ControllerMaker is an optional Policy extension: policies that degrade
// gracefully under overload build a per-task Controller consulted at
// every period start.
type ControllerMaker interface {
	NewController(env TaskEnv) Controller
}

// PeriodState is what a Controller sees at one period boundary, after
// monitoring but before any adaptation or launch.
type PeriodState struct {
	// Period is the period index c.
	Period int
	// Items is ds(Ti, c): the workload of the period about to launch.
	Items int
	// Overloaded reports that the monitor flagged replication candidates
	// (missed or nearly-missed subtask deadlines).
	Overloaded bool
	// Underloaded reports that the monitor flagged very-high-slack stages
	// (shutdown candidates).
	Underloaded bool
	// MeanRawUtil is the mean total node utilization observed over the
	// last monitoring window.
	MeanRawUtil float64
}

// Decision is a Controller's launch plan for one period.
type Decision struct {
	// LaunchItems is how many of the period's items to actually process;
	// the runner clamps it to [0, Items] and counts the difference as
	// shed work. Ignored when Skip is set.
	LaunchItems int
	// Skip suppresses the period's launch entirely — the elastic
	// period-stretch degradation. The runner counts it.
	Skip bool
	// SuppressReplicate swallows the monitor's replication signal for
	// this period: the controller degraded instead of allocating.
	SuppressReplicate bool
	// SuppressShutdown swallows the monitor's shutdown signal: the
	// controller is still restoring degraded work and wants to keep the
	// replicas it has.
	SuppressShutdown bool
}

// Controller is the optional degrade/recover hook. PlanPeriod runs once
// per period start of its task, sees the monitor's overload/underload
// verdict, and returns the launch plan. Implementations must be
// deterministic: the same PeriodState sequence must yield the same
// Decision sequence (the conformance suite enforces this per seed).
type Controller interface {
	PlanPeriod(st PeriodState) Decision
}

// DeploymentSeeder is an optional Policy extension: policies with a
// non-default initial deployment (static-max replicates everything
// everywhere up front) implement it.
type DeploymentSeeder interface {
	// SeedDeployment mutates the freshly built deployment before the
	// first period. Subtask replicability must be respected.
	SeedDeployment(env TaskEnv, d *task.Deployment, spec task.Spec) error
}

// registry is the global name → Policy table. Registration happens in
// package init (builtins) or test setup; lookups are read-mostly.
var (
	regMu    sync.RWMutex
	registry = map[string]Policy{}
	order    []string
)

// Register adds a policy under its Name. Registering a duplicate name
// panics: two strategies answering to one algorithm string would poison
// every content-addressed cache entry recorded under it.
func Register(p Policy) {
	regMu.Lock()
	defer regMu.Unlock()
	name := p.Name()
	if name == "" {
		panic("policy: registering a policy with an empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("policy: duplicate registration of %q", name))
	}
	registry[name] = p
	order = append(order, name)
}

// Lookup resolves a registered policy by name.
func Lookup(name string) (Policy, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	p, ok := registry[name]
	return p, ok
}

// Registered reports whether name resolves to a policy.
func Registered(name string) bool {
	_, ok := Lookup(name)
	return ok
}

// Names returns every registered policy name in registration order —
// deterministic, because the built-ins register from a single init and
// the order is what the tournament grid iterates.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	return append([]string(nil), order...)
}
