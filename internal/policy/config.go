package policy

import (
	"errors"
	"fmt"
)

// Config holds every policy-specific knob carried by the run
// configuration. Like core.Degradation, the zero value means "the
// registered defaults": a config that never mentions policies behaves
// exactly as the built-in parameters prescribe, and the wire schema can
// omit the whole section. Every field feeds the run fingerprint, so two
// runs differing in any knob never share a cache entry (the reflective
// leaf-walk tests in internal/experiment and internal/api keep that
// true as knobs are added).
type Config struct {
	// Stretch parameterizes the period-stretch policy.
	Stretch StretchConfig
	// Shed parameterizes the imprecise-shed policy.
	Shed ShedConfig
}

// StretchConfig tunes the elastic period-adaptation policy
// (arXiv:1212.3502). Zero fields resolve to the defaults noted per
// field.
type StretchConfig struct {
	// MaxFactor is the elastic bound on the period multiplier: the
	// effective period never exceeds MaxFactor × the nominal period.
	// Default 2.0; must be ≥ 1 when set.
	MaxFactor float64
	// Step is the per-overloaded-period increment of the stretch factor
	// (and the per-recovered-period decrement). Default 0.25.
	Step float64
	// UtilTarget is the node utilization the elastic plan steers toward:
	// when overloaded, the factor jumps to StretchPlan's analytic target
	// for the observed utilization against this threshold. Default 0.8;
	// must be in (0, 1] when set.
	UtilTarget float64
}

// ShedConfig tunes the imprecise-computation policy (arXiv:1306.0448).
// Zero fields resolve to the defaults noted per field.
type ShedConfig struct {
	// MandatoryFraction is the fraction of each period's items that is
	// mandatory — never shed, whatever the overload. Default 0.5; must be
	// in (0, 1] when set.
	MandatoryFraction float64
	// Levels is the granularity of optional-part shedding: the optional
	// items divide into this many priority-ordered chunks, shed lowest
	// priority first and restored in the reverse order. Default 4; must
	// be ≥ 1 when set.
	Levels int
}

// Defaults for the zero-valued knobs.
const (
	DefaultStretchMaxFactor  = 2.0
	DefaultStretchStep       = 0.25
	DefaultStretchUtilTarget = 0.8
	DefaultShedMandatory     = 0.5
	DefaultShedLevels        = 4
)

// withDefaults resolves zero fields to the registered defaults.
func (c StretchConfig) withDefaults() StretchConfig {
	if c.MaxFactor == 0 {
		c.MaxFactor = DefaultStretchMaxFactor
	}
	if c.Step == 0 {
		c.Step = DefaultStretchStep
	}
	if c.UtilTarget == 0 {
		c.UtilTarget = DefaultStretchUtilTarget
	}
	return c
}

// withDefaults resolves zero fields to the registered defaults.
func (c ShedConfig) withDefaults() ShedConfig {
	if c.MandatoryFraction == 0 {
		c.MandatoryFraction = DefaultShedMandatory
	}
	if c.Levels == 0 {
		c.Levels = DefaultShedLevels
	}
	return c
}

// Validate reports every out-of-range knob at once (zero always passes:
// it means the default).
func (c Config) Validate() error {
	var errs []error
	if f := c.Stretch.MaxFactor; f != 0 && f < 1 {
		errs = append(errs, fmt.Errorf("policy: stretch max factor %v below 1", f))
	}
	if s := c.Stretch.Step; s < 0 {
		errs = append(errs, fmt.Errorf("policy: negative stretch step %v", s))
	}
	if u := c.Stretch.UtilTarget; u < 0 || u > 1 {
		errs = append(errs, fmt.Errorf("policy: stretch utilization target %v out of [0,1]", u))
	}
	if m := c.Shed.MandatoryFraction; m < 0 || m > 1 {
		errs = append(errs, fmt.Errorf("policy: mandatory fraction %v out of [0,1]", m))
	}
	if l := c.Shed.Levels; l < 0 {
		errs = append(errs, fmt.Errorf("policy: negative shed levels %d", l))
	}
	return errors.Join(errs...)
}
