// Package workload generates the per-period external workloads (numbers
// of sensor reports, "tracks") used by the evaluation. Figure 8 of the
// paper defines three patterns over a [min, max] workload interval —
// increasing ramp, decreasing ramp, and triangular — which this package
// implements alongside step, burst, and sinusoid extensions used by the
// ablation experiments.
package workload

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Pattern yields the workload (data items) for each period index. Size
// clamps out-of-range periods to the nearest endpoint, so runners may
// probe one period past the end safely.
type Pattern interface {
	Name() string
	Periods() int
	Size(period int) int
}

func validateInterval(name string, min, max, periods int) {
	if min < 0 || max < min {
		panic(fmt.Sprintf("workload: %s interval [%d,%d] invalid", name, min, max))
	}
	if periods < 1 {
		panic(fmt.Sprintf("workload: %s needs ≥1 period, got %d", name, periods))
	}
}

func clamp(c, periods int) int {
	if c < 0 {
		return 0
	}
	if c >= periods {
		return periods - 1
	}
	return c
}

// ramp interpolates linearly from `from` at period 0 to `to` at the final
// period.
func ramp(from, to, c, periods int) int {
	if periods == 1 {
		return from
	}
	return from + (to-from)*c/(periods-1)
}

// IncreasingRamp rises linearly from Min to Max over the run.
type IncreasingRamp struct{ Min, Max, N int }

// NewIncreasingRamp returns the Figure 8 increasing ramp.
func NewIncreasingRamp(min, max, periods int) IncreasingRamp {
	validateInterval("IncreasingRamp", min, max, periods)
	return IncreasingRamp{min, max, periods}
}

func (p IncreasingRamp) Name() string   { return "increasing-ramp" }
func (p IncreasingRamp) Periods() int   { return p.N }
func (p IncreasingRamp) Size(c int) int { return ramp(p.Min, p.Max, clamp(c, p.N), p.N) }

// DecreasingRamp falls linearly from Max to Min over the run.
type DecreasingRamp struct{ Min, Max, N int }

// NewDecreasingRamp returns the Figure 8 decreasing ramp.
func NewDecreasingRamp(min, max, periods int) DecreasingRamp {
	validateInterval("DecreasingRamp", min, max, periods)
	return DecreasingRamp{min, max, periods}
}

func (p DecreasingRamp) Name() string   { return "decreasing-ramp" }
func (p DecreasingRamp) Periods() int   { return p.N }
func (p DecreasingRamp) Size(c int) int { return ramp(p.Max, p.Min, clamp(c, p.N), p.N) }

// Triangular alternates increasing and decreasing ramps, Cycles times.
type Triangular struct{ Min, Max, N, Cycles int }

// NewTriangular returns the Figure 8 triangular pattern.
func NewTriangular(min, max, periods, cycles int) Triangular {
	validateInterval("Triangular", min, max, periods)
	if cycles < 1 {
		panic(fmt.Sprintf("workload: Triangular needs ≥1 cycle, got %d", cycles))
	}
	return Triangular{min, max, periods, cycles}
}

func (p Triangular) Name() string { return "triangular" }
func (p Triangular) Periods() int { return p.N }

func (p Triangular) Size(c int) int {
	c = clamp(c, p.N)
	cycleLen := p.N / p.Cycles
	if cycleLen < 2 {
		return p.Max
	}
	pos := c % cycleLen
	half := cycleLen / 2
	if pos < half {
		return ramp(p.Min, p.Max, pos, half)
	}
	return ramp(p.Max, p.Min, pos-half, cycleLen-half)
}

// Step jumps from Min to Max at period SwitchAt.
type Step struct{ Min, Max, N, SwitchAt int }

// NewStep returns a step pattern (ablation extension).
func NewStep(min, max, periods, switchAt int) Step {
	validateInterval("Step", min, max, periods)
	if switchAt < 0 || switchAt > periods {
		panic(fmt.Sprintf("workload: Step switch %d out of [0,%d]", switchAt, periods))
	}
	return Step{min, max, periods, switchAt}
}

func (p Step) Name() string { return "step" }
func (p Step) Periods() int { return p.N }

func (p Step) Size(c int) int {
	if clamp(c, p.N) < p.SwitchAt {
		return p.Min
	}
	return p.Max
}

// Burst holds at Min with excursions to Max every Every periods, each
// lasting Len periods.
type Burst struct{ Min, Max, N, Every, Len int }

// NewBurst returns a bursty pattern (ablation extension).
func NewBurst(min, max, periods, every, length int) Burst {
	validateInterval("Burst", min, max, periods)
	if every < 1 || length < 1 || length > every {
		panic(fmt.Sprintf("workload: Burst every=%d len=%d invalid", every, length))
	}
	return Burst{min, max, periods, every, length}
}

func (p Burst) Name() string { return "burst" }
func (p Burst) Periods() int { return p.N }

func (p Burst) Size(c int) int {
	if clamp(c, p.N)%p.Every < p.Len {
		return p.Max
	}
	return p.Min
}

// Sinusoid oscillates between Min and Max, Cycles full waves over the run.
type Sinusoid struct{ Min, Max, N, Cycles int }

// NewSinusoid returns a sinusoidal pattern (ablation extension).
func NewSinusoid(min, max, periods, cycles int) Sinusoid {
	validateInterval("Sinusoid", min, max, periods)
	if cycles < 1 {
		panic(fmt.Sprintf("workload: Sinusoid needs ≥1 cycle, got %d", cycles))
	}
	return Sinusoid{min, max, periods, cycles}
}

func (p Sinusoid) Name() string { return "sinusoid" }
func (p Sinusoid) Periods() int { return p.N }

func (p Sinusoid) Size(c int) int {
	c = clamp(c, p.N)
	mid := float64(p.Min+p.Max) / 2
	amp := float64(p.Max-p.Min) / 2
	phase := 2 * math.Pi * float64(p.Cycles) * float64(c) / float64(p.N)
	return int(math.Round(mid - amp*math.Cos(phase)))
}

// Constant holds a fixed workload; useful in unit tests and profiling.
type Constant struct{ Value, N int }

// NewConstant returns a constant pattern.
func NewConstant(value, periods int) Constant {
	validateInterval("Constant", value, value, periods)
	return Constant{value, periods}
}

func (p Constant) Name() string { return "constant" }
func (p Constant) Periods() int { return p.N }
func (p Constant) Size(int) int { return p.Value }

// Series materializes a pattern into one value per period, for plotting
// (paper Figure 8) and tests.
func Series(p Pattern) []int {
	out := make([]int, p.Periods())
	for c := range out {
		out[c] = p.Size(c)
	}
	return out
}

// Custom replays an explicit per-period series — the escape hatch for
// driving the system with recorded production traces instead of the
// synthetic patterns.
type Custom struct {
	Label  string
	Values []int
}

// NewCustom wraps a recorded series; values must be non-negative.
func NewCustom(label string, values []int) Custom {
	if len(values) == 0 {
		panic("workload: Custom needs at least one value")
	}
	for i, v := range values {
		if v < 0 {
			panic(fmt.Sprintf("workload: Custom value %d at period %d is negative", v, i))
		}
	}
	if label == "" {
		label = "custom"
	}
	return Custom{Label: label, Values: values}
}

func (p Custom) Name() string { return p.Label }

func (p Custom) Periods() int { return len(p.Values) }

func (p Custom) Size(c int) int { return p.Values[clamp(c, len(p.Values))] }

// ParseSeries reads one non-negative integer per line (blank lines and
// '#' comments skipped) — the on-disk format for recorded traces.
func ParseSeries(r io.Reader) ([]int, error) {
	var out []int
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.Atoi(text)
		if err != nil {
			return nil, fmt.Errorf("workload: line %d: %w", line, err)
		}
		if v < 0 {
			return nil, fmt.Errorf("workload: line %d: negative workload %d", line, v)
		}
		out = append(out, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("workload: trace contains no values")
	}
	return out, nil
}
