package workload

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestIncreasingRampEndpoints(t *testing.T) {
	p := NewIncreasingRamp(500, 15000, 60)
	if p.Size(0) != 500 {
		t.Errorf("Size(0) = %d, want 500", p.Size(0))
	}
	if p.Size(59) != 15000 {
		t.Errorf("Size(59) = %d, want 15000", p.Size(59))
	}
	// Clamping.
	if p.Size(-5) != 500 || p.Size(100) != 15000 {
		t.Error("out-of-range periods not clamped")
	}
	if p.Name() != "increasing-ramp" || p.Periods() != 60 {
		t.Error("identity accessors wrong")
	}
}

func TestIncreasingRampMonotone(t *testing.T) {
	p := NewIncreasingRamp(0, 1000, 37)
	for c := 1; c < 37; c++ {
		if p.Size(c) < p.Size(c-1) {
			t.Fatalf("ramp decreased at period %d", c)
		}
	}
}

func TestDecreasingRampMirrorsIncreasing(t *testing.T) {
	inc := NewIncreasingRamp(100, 900, 41)
	dec := NewDecreasingRamp(100, 900, 41)
	for c := 0; c < 41; c++ {
		if dec.Size(c) != inc.Size(40-c) {
			t.Fatalf("period %d: dec %d != mirrored inc %d", c, dec.Size(c), inc.Size(40-c))
		}
	}
}

func TestTriangularShape(t *testing.T) {
	p := NewTriangular(0, 1000, 60, 2)
	// Cycle length 30: rises on [0,15), falls on [15,30).
	if p.Size(0) != 0 {
		t.Errorf("Size(0) = %d", p.Size(0))
	}
	if p.Size(15) != 1000 {
		t.Errorf("Size(15) = %d, want peak 1000", p.Size(15))
	}
	if got := p.Size(30); got != 0 {
		t.Errorf("Size(30) = %d, want trough 0", got)
	}
	if p.Size(45) != 1000 {
		t.Errorf("Size(45) = %d, want second peak", p.Size(45))
	}
	// Rising half strictly nondecreasing, falling half nonincreasing.
	for c := 1; c < 15; c++ {
		if p.Size(c) < p.Size(c-1) {
			t.Fatalf("rise broken at %d", c)
		}
	}
	for c := 16; c < 30; c++ {
		if p.Size(c) > p.Size(c-1) {
			t.Fatalf("fall broken at %d", c)
		}
	}
}

func TestTriangularDegenerateCycle(t *testing.T) {
	// More cycles than periods → cycleLen < 2 → constant at Max.
	p := NewTriangular(0, 100, 3, 3)
	if p.Size(1) != 100 {
		t.Errorf("degenerate triangular = %d", p.Size(1))
	}
}

func TestStep(t *testing.T) {
	p := NewStep(10, 90, 20, 10)
	if p.Size(9) != 10 || p.Size(10) != 90 {
		t.Errorf("step edge wrong: %d, %d", p.Size(9), p.Size(10))
	}
}

func TestBurst(t *testing.T) {
	p := NewBurst(10, 90, 30, 10, 3)
	wantHigh := map[int]bool{0: true, 1: true, 2: true, 10: true, 12: true, 20: true}
	for c := 0; c < 30; c++ {
		want := 10
		if wantHigh[c] || c%10 < 3 {
			want = 90
		}
		if p.Size(c) != want {
			t.Fatalf("burst period %d = %d, want %d", c, p.Size(c), want)
		}
	}
}

func TestSinusoidBoundsAndShape(t *testing.T) {
	p := NewSinusoid(100, 900, 40, 2)
	if p.Size(0) != 100 {
		t.Errorf("Size(0) = %d, want trough", p.Size(0))
	}
	if p.Size(10) != 900 {
		t.Errorf("Size(10) = %d, want crest", p.Size(10))
	}
	for c := 0; c < 40; c++ {
		if s := p.Size(c); s < 100 || s > 900 {
			t.Fatalf("sinusoid out of bounds at %d: %d", c, s)
		}
	}
}

func TestConstant(t *testing.T) {
	p := NewConstant(42, 5)
	for c := -1; c < 7; c++ {
		if p.Size(c) != 42 {
			t.Fatal("constant not constant")
		}
	}
}

func TestSeries(t *testing.T) {
	s := Series(NewIncreasingRamp(0, 10, 11))
	if len(s) != 11 || s[0] != 0 || s[10] != 10 || s[5] != 5 {
		t.Errorf("Series = %v", s)
	}
}

func TestConstructorValidation(t *testing.T) {
	cases := map[string]func(){
		"negative min":   func() { NewIncreasingRamp(-1, 5, 10) },
		"max below min":  func() { NewDecreasingRamp(10, 5, 10) },
		"zero periods":   func() { NewTriangular(0, 5, 0, 1) },
		"zero cycles":    func() { NewTriangular(0, 5, 10, 0) },
		"bad switch":     func() { NewStep(0, 5, 10, 11) },
		"burst len":      func() { NewBurst(0, 5, 10, 3, 4) },
		"sinusoid cycle": func() { NewSinusoid(0, 5, 10, 0) },
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

// Property: every pattern stays within [Min, Max] at every period.
func TestPropertyPatternsWithinBounds(t *testing.T) {
	f := func(minRaw, spanRaw uint16, periodsRaw, cyclesRaw uint8) bool {
		min := int(minRaw)
		max := min + int(spanRaw)
		periods := int(periodsRaw%100) + 2
		cycles := int(cyclesRaw%4) + 1
		patterns := []Pattern{
			NewIncreasingRamp(min, max, periods),
			NewDecreasingRamp(min, max, periods),
			NewTriangular(min, max, periods, cycles),
			NewStep(min, max, periods, periods/2),
			NewSinusoid(min, max, periods, cycles),
		}
		for _, p := range patterns {
			for c := 0; c < periods; c++ {
				if s := p.Size(c); s < min || s > max {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCustomReplaysSeries(t *testing.T) {
	p := NewCustom("trace", []int{5, 9, 2})
	if p.Name() != "trace" || p.Periods() != 3 {
		t.Error("identity wrong")
	}
	if p.Size(0) != 5 || p.Size(1) != 9 || p.Size(2) != 2 {
		t.Error("values wrong")
	}
	if p.Size(-1) != 5 || p.Size(10) != 2 {
		t.Error("clamping wrong")
	}
	if NewCustom("", []int{1}).Name() != "custom" {
		t.Error("default label wrong")
	}
}

func TestCustomValidation(t *testing.T) {
	for name, f := range map[string]func(){
		"empty":    func() { NewCustom("x", nil) },
		"negative": func() { NewCustom("x", []int{1, -1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestParseSeries(t *testing.T) {
	in := "# recorded trace\n500\n\n 1200 \n0\n"
	got, err := ParseSeries(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	want := []int{500, 1200, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("parsed %v, want %v", got, want)
		}
	}
}

func TestParseSeriesErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":  "12\nxyz\n",
		"negative": "-5\n",
		"empty":    "# only comments\n",
	}
	for name, in := range cases {
		if _, err := ParseSeries(strings.NewReader(in)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}
