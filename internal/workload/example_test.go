package workload_test

import (
	"fmt"

	"repro/internal/workload"
)

// The triangular pattern of Figure 8: one cycle rising from the minimum
// to the maximum and back.
func ExampleNewTriangular() {
	p := workload.NewTriangular(0, 1000, 10, 1)
	fmt.Println(workload.Series(p))
	// Output:
	// [0 250 500 750 1000 1000 750 500 250 0]
}

func ExampleNewIncreasingRamp() {
	p := workload.NewIncreasingRamp(100, 500, 5)
	fmt.Println(workload.Series(p))
	// Output:
	// [100 200 300 400 500]
}
