package core

import (
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
)

// Result is the outcome of one simulated run.
type Result struct {
	// Metrics aggregates the §5.2 evaluation quantities.
	Metrics metrics.RunMetrics
	// Records holds every completed period record, in completion order.
	Records []*task.PeriodRecord
	// Events holds every adaptation action taken.
	Events []trace.AdaptationEvent
	// MaxClockOffset is the largest client-vs-server clock error at the
	// end of the run; zero unless Config.ClockSync is enabled.
	MaxClockOffset sim.Time
	// EventsFired is the total number of engine events the run executed.
	// Two runs of the same configuration must report the same count — a
	// cheap determinism fingerprint alongside the full trace.
	EventsFired uint64
}
