package core

import (
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
)

// Result is the outcome of one simulated run.
type Result struct {
	// Metrics aggregates the §5.2 evaluation quantities.
	Metrics metrics.RunMetrics
	// Records holds every completed period record, in completion order.
	Records []*task.PeriodRecord
	// Events holds every adaptation action taken.
	Events []trace.AdaptationEvent
	// MaxClockOffset is the largest client-vs-server clock error at the
	// end of the run; zero unless Config.ClockSync is enabled.
	MaxClockOffset sim.Time
}
