package core

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"repro/internal/chaos"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/trace"
)

// laneReportBytes is the payload of one cross-lane workload report (a
// handful of counters). Its transmission time on the segment model sets
// the uplink latency, and with it the lane protocol's lookahead.
const laneReportBytes = 64

// laneUplink carries a lane's per-segment workload report to the other
// lanes of a partitioned run.
type laneUplink interface {
	// BroadcastItems ships lane src's Σ-items report to every other
	// lane; each copy arrives one uplink latency later.
	BroadcastItems(src, total int)
}

// laneLinks is the uplink between the per-lane systems: reports ride the
// LaneSet's cross-lane channel with the fixed report latency, which
// equals the set's lookahead — the earliest legal delivery.
type laneLinks struct {
	ls      *sim.LaneSet
	systems []*system
	delay   sim.Time
}

func (ll *laneLinks) BroadcastItems(src, total int) {
	at := ll.ls.Lane(src).Now() + ll.delay
	for dst := range ll.systems {
		if dst == src {
			continue
		}
		sys := ll.systems[dst]
		ll.ls.Post(src, dst, at, func() { sys.remoteItems[src] = total })
	}
}

// runLanes is RunContext for Lanes ≥ 2: the node set is partitioned into
// equal segments, each built as a full system (own engine heap, timer
// slab, segment, pools, RNG streams) on one lane of a sim.LaneSet, and
// the lanes advance under the conservative epoch barrier. The only
// cross-lane traffic is the per-segment workload report posted at anchor
// period boundaries, so the epoch horizon stretches from one boundary to
// the next and the barrier cost is one merge per period, not per
// lookahead.
//
// Results are byte-identical for every Parallel value: within an epoch
// lanes share nothing, and the barrier merges cross-lane deliveries in
// the fixed (time, source lane, sequence) order. The final Result is
// assembled from the per-lane systems by order-insensitive metric sums
// and stable time-ordered merges of records and events.
func runLanes(ctx context.Context, cfg Config, alg Algorithm, setups []TaskSetup) (Result, error) {
	if cfg.Telemetry.Enabled() {
		return Result{}, fmt.Errorf("core: telemetry is not supported with Lanes ≥ 2 (per-lane recorders cannot be merged)")
	}
	lanes := cfg.Lanes
	laneSize := cfg.NumNodes / lanes // Validate guarantees divisibility

	// Partition the task set: a task lives wholly on one segment.
	laneSetups := make([][]TaskSetup, lanes)
	for i, ts := range setups {
		lane, err := laneOf(ts, i, lanes, laneSize)
		if err != nil {
			return Result{}, err
		}
		lts := ts
		if len(ts.Homes) > 0 {
			local := make([]int, len(ts.Homes))
			for j, h := range ts.Homes {
				local[j] = h - lane*laneSize
			}
			lts.Homes = local
		}
		laneSetups[lane] = append(laneSetups[lane], lts)
	}
	for l, lts := range laneSetups {
		if len(lts) == 0 {
			return Result{}, fmt.Errorf("core: lane %d (nodes %d–%d) has no tasks; every lane needs at least one",
				l, l*laneSize, (l+1)*laneSize-1)
		}
	}

	// Compile node faults once, globally: the chaos streams are keyed by
	// node, so a node's crash timeline is identical whether the run is
	// lane-partitioned or not. Each lane then takes the faults of its own
	// nodes, renumbered to local IDs.
	horizon := patternHorizon(setups)
	faults := cfg.Faults
	if cfg.Chaos.Enabled() {
		sched := chaos.Compile(cfg.Chaos, cfg.NumNodes, horizon, cfg.Seed)
		faults = append([]Fault(nil), faults...)
		for _, f := range sched.Faults {
			faults = append(faults, Fault{Node: f.Node, At: f.At, Duration: f.Duration})
		}
	}

	// The lookahead is the uplink report latency: no cross-lane message
	// can arrive sooner, and reports are the only cross-lane traffic.
	delay := cfg.Network.CrossLaneDelay(laneReportBytes)
	ls := sim.NewLaneSet(lanes, delay)
	ls.SetCrossTimes(crossGrid(laneSetups))

	link := &laneLinks{ls: ls, delay: delay}
	systems := make([]*system, lanes)
	for l := 0; l < lanes; l++ {
		lcfg := cfg
		lcfg.NumNodes = laneSize
		lcfg.Lanes, lcfg.Parallel = 0, 0
		// Derived per-lane streams decorrelate demand noise, clock drift
		// and segment loss across lanes while keeping every lane a pure
		// function of (Seed, lane).
		lcfg.Seed = laneSeed(cfg.Seed, l)
		if cfg.Network.LossSeed != 0 {
			lcfg.Network.LossSeed = laneSeed(cfg.Network.LossSeed, l)
		} else {
			lcfg.Network.LossSeed = lcfg.Seed
		}
		lcfg.Chaos = chaos.Config{} // compiled above; lanes get schedules, not processes
		if cfg.Chaos.PartitionMTBF > 0 {
			// Transient partitions are per segment: each lane's segment
			// draws its own outage process from a lane-salted stream.
			wins := append([]network.Window(nil), cfg.Network.Partitions...)
			for _, w := range chaos.LanePartitions(cfg.Chaos, horizon, cfg.Seed, l) {
				wins = append(wins, network.Window{Start: w.Start, End: w.End})
			}
			sort.Slice(wins, func(i, j int) bool { return wins[i].Start < wins[j].Start })
			lcfg.Network.Partitions = wins
		}
		sys, err := buildSystem(lcfg, alg, laneSetups[l], ls.Lane(l), laneFaults(faults, l, laneSize))
		if err != nil {
			return Result{}, err
		}
		sys.laneID = l
		sys.laneBase = l * laneSize
		sys.uplink = link
		sys.remoteItems = make([]int, lanes)
		systems[l] = sys
	}
	link.systems = systems

	workers := cfg.Parallel
	if workers == 0 {
		// Auto: one worker per available CPU, capped at the lane count
		// inside LaneSet.Run. Worker count never changes results.
		workers = runtime.GOMAXPROCS(0)
	}
	var poll func() error
	if ctx.Done() != nil {
		poll = func() error { return ctx.Err() } // safe from worker goroutines
	}
	if err := ls.Run(workers, poll); err != nil {
		return Result{}, err
	}

	return mergeLaneResults(ls, systems), nil
}

// mergeLaneResults assembles one Result from the drained lanes in the
// deterministic merge order: metrics by order-insensitive sums, records
// and events by stable sort on completion/action time with lane index
// breaking ties (concatenation order is lane order).
func mergeLaneResults(ls *sim.LaneSet, systems []*system) Result {
	base := systems[0]
	base.collector.CountDropped(int(base.seg.Dropped()))
	for _, sys := range systems[1:] {
		sys.collector.CountDropped(int(sys.seg.Dropped()))
		base.collector.Absorb(sys.collector)
	}

	var records []*task.PeriodRecord
	var events []trace.AdaptationEvent
	var fired uint64
	var maxOffset sim.Time
	for _, sys := range systems {
		records = append(records, sys.log.Records()...)
		for _, e := range sys.log.Events() {
			// Lanes log local node IDs; report global ones.
			for i := range e.Procs {
				e.Procs[i] += sys.laneBase
			}
			events = append(events, e)
		}
		fired += sys.eng.EventsFired()
		if sys.maxOffset > maxOffset {
			maxOffset = sys.maxOffset
		}
	}
	sort.SliceStable(records, func(i, j int) bool { return records[i].CompletedAt < records[j].CompletedAt })
	sort.SliceStable(events, func(i, j int) bool { return events[i].At < events[j].At })

	return Result{
		Metrics:        base.collector.Finish(),
		Records:        records,
		Events:         events,
		MaxClockOffset: maxOffset,
		EventsFired:    fired,
	}
}

// laneOf returns the lane owning a task. With explicit Homes every home
// must fall in one lane's node block; with nil Homes task i goes to lane
// i mod lanes (and its subtasks to the lane's nodes in the usual
// round-robin, via the per-lane default).
func laneOf(ts TaskSetup, idx, lanes, laneSize int) (int, error) {
	if len(ts.Homes) == 0 {
		return idx % lanes, nil
	}
	lane := ts.Homes[0] / laneSize
	for _, h := range ts.Homes {
		if h < 0 || h/laneSize != lane {
			return 0, fmt.Errorf("core: task %s homes %v span lane boundaries (lane size %d); a task must live on one segment",
				ts.Spec.Name, ts.Homes, laneSize)
		}
	}
	return lane, nil
}

// laneFaults selects the faults targeting one lane's node block,
// renumbered to lane-local node IDs.
func laneFaults(faults []Fault, lane, laneSize int) []Fault {
	var out []Fault
	for _, f := range faults {
		if f.Node/laneSize == lane {
			f.Node -= lane * laneSize
			out = append(out, f)
		}
	}
	return out
}

// crossGrid returns the sorted union of every lane's anchor-task period
// boundaries — the only instants at which lanes broadcast, and therefore
// the LaneSet's send grid.
func crossGrid(laneSetups [][]TaskSetup) []sim.Time {
	seen := make(map[sim.Time]bool)
	var grid []sim.Time
	for _, lts := range laneSetups {
		anchor := lts[0]
		if anchor.Pattern == nil {
			continue // invalid; surfaces as an error in buildSystem
		}
		for c := 0; c < anchor.Pattern.Periods(); c++ {
			t := sim.Time(c) * anchor.Spec.Period
			if !seen[t] {
				seen[t] = true
				grid = append(grid, t)
			}
		}
	}
	sort.Slice(grid, func(i, j int) bool { return grid[i] < grid[j] })
	return grid
}

// laneSeed derives lane l's RNG seed from the run seed (splitmix64 on
// the pair), so lanes draw decorrelated streams while each remains a
// pure function of (seed, lane).
func laneSeed(seed uint64, lane int) uint64 {
	z := seed + 0x9e3779b97f4a7c15*uint64(lane+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	return z ^ z>>31
}
