package core

import (
	"context"
	"fmt"

	"repro/internal/metrics"
	"repro/internal/sim"
)

// Observer samples the live state of a running simulation every Every
// sim-time units. It is the substrate of rmserved's session mode: the
// session layer turns each Observation into a wire snapshot/diff and
// fans it out to SSE subscribers.
//
// The hook is deliberately NOT a Config field. Config is what shapes a
// run's result and therefore what the content-addressed fingerprint
// hashes; an observer watches a run without shaping it, so it rides the
// RunObservedContext entry point instead and can never split the run
// cache or perturb a golden. Runs without an observer take code paths
// byte-identical to the pre-observer build.
type Observer struct {
	// Every is the sampling cadence in sim time; must be > 0. Samples
	// fire from t=Every up to the workload pattern horizon, plus one
	// final observation after the engine drains.
	Every sim.Time
	// OnSample receives each observation on the simulation goroutine.
	// It may block (the session layer uses this for wall-clock pacing
	// and pause), but must not call back into the engine or mutate
	// anything the run reads — the capture hands it copies only.
	OnSample func(Observation)
}

func (o *Observer) validate() error {
	if o == nil {
		return fmt.Errorf("core: nil observer")
	}
	if o.Every <= 0 {
		return fmt.Errorf("core: observer cadence must be > 0 (got %v)", o.Every)
	}
	if o.OnSample == nil {
		return fmt.Errorf("core: observer has no OnSample callback")
	}
	return nil
}

// Observation is one sampled view of the simulated system. All slices
// are freshly allocated per sample: the callback may retain them.
type Observation struct {
	// At is the sim time of the sample.
	At sim.Time
	// Final marks the post-drain observation: the run is complete and
	// Metrics equals the returned Result.Metrics exactly.
	Final bool
	// Nodes holds per-node state, indexed by node id.
	Nodes []NodeObservation
	// Tasks holds per-task state in setup order.
	Tasks []TaskObservation
	// Metrics is the interim run summary (the collector folded down as
	// of this sample; counters only grow between samples).
	Metrics metrics.RunMetrics
}

// NodeObservation is one node's sampled state.
type NodeObservation struct {
	// Util is the node's total utilization over the task set's most
	// recent monitoring window (the same raw quantity the repair and
	// threshold logic read), in [0,1].
	Util float64
	// Down reports whether the node is currently crashed.
	Down bool
}

// TaskObservation is one runtime task's sampled state.
type TaskObservation struct {
	Name string
	// Stages holds the replica placements per pipeline stage: Stages[i]
	// is the node set hosting subtask i.
	Stages [][]int
	// Completed and Missed count this task's finished instances so far;
	// InFlight the instances currently executing.
	Completed int
	Missed    int
	InFlight  int
}

// RunObserved is RunObservedContext with a background context.
func RunObserved(cfg Config, alg Algorithm, setups []TaskSetup, obs *Observer) (Result, error) {
	return RunObservedContext(context.Background(), cfg, alg, setups, obs)
}

// RunObservedContext runs one simulation with a live observation hook:
// obs.OnSample fires every obs.Every sim-time units and once more after
// the engine drains (Final set). Results are identical to RunContext
// with the same inputs — sampling reads state, it never writes it.
// Lane-partitioned runs (cfg.Lanes ≥ 2) are not observable: state is
// sharded across engines mid-run, so there is no coherent instant to
// sample.
func RunObservedContext(ctx context.Context, cfg Config, alg Algorithm, setups []TaskSetup, obs *Observer) (Result, error) {
	if err := obs.validate(); err != nil {
		return Result{}, err
	}
	if cfg.Lanes >= 2 {
		return Result{}, fmt.Errorf("core: observed runs do not support lane partitioning (Lanes=%d)", cfg.Lanes)
	}
	return runContext(ctx, cfg, alg, setups, obs)
}

// scheduleObservations pre-schedules every sample event up to the
// pattern horizon. Pre-scheduling (rather than self-rescheduling) means
// the engine still drains to quiescence once the workload ends, and —
// because this runs after the rest of construction — every event of the
// unobserved build keeps its sequence number, so the simulation's event
// order is unchanged.
func (s *system) scheduleObservations(obs *Observer, horizon sim.Time) {
	for t := obs.Every; t <= horizon; t += obs.Every {
		s.eng.Schedule(t, func() { obs.OnSample(s.captureObservation()) })
	}
}

// captureObservation copies the live state into a fresh Observation.
// Read-only with respect to the run: meters are not advanced (node
// utilization comes from the anchor task's last monitoring window) and
// the collector fold is pure.
func (s *system) captureObservation() Observation {
	o := Observation{
		At:      s.eng.Now(),
		Nodes:   make([]NodeObservation, len(s.procs)),
		Tasks:   make([]TaskObservation, len(s.tasks)),
		Metrics: s.collector.Finish(),
	}
	rt0 := s.tasks[0]
	for i := range s.procs {
		o.Nodes[i] = NodeObservation{Util: rt0.rawSnapshot[i], Down: s.down[i]}
	}
	for ti, rt := range s.tasks {
		stages := make([][]int, len(rt.setup.Spec.Subtasks))
		for st := range stages {
			stages[st] = rt.dep.AppendReplicas(st, nil)
		}
		o.Tasks[ti] = TaskObservation{
			Name:      rt.setup.Spec.Name,
			Stages:    stages,
			Completed: rt.completed,
			Missed:    rt.missed,
			InFlight:  rt.inFlight,
		}
	}
	return o
}
