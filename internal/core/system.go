package core

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sort"

	"repro/internal/chaos"
	"repro/internal/clocksync"
	"repro/internal/cpu"
	"repro/internal/deadline"
	"repro/internal/manager"
	"repro/internal/metrics"
	"repro/internal/monitor"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// system wires the substrates together for one run.
type system struct {
	cfg       Config
	alg       Algorithm
	eng       *sim.Engine
	procs     []cpu.Scheduler
	seg       *network.Segment
	rng       *rand.Rand
	collector *metrics.Collector
	log       *trace.Log
	tel       *telemetry.Recorder // nil when telemetry is disabled

	sysMeters []*cpu.Meter
	netMeter  *network.Meter

	// clocks and sync are populated only when cfg.ClockSync is enabled.
	clocks []*clocksync.Clock
	sync   *clocksync.Synchronizer

	// down marks crashed nodes (Config.Faults).
	down []bool
	// nodeEpoch increments on every node down/up transition; instances
	// stamp it at launch so completions that straddled a transition can
	// be recognized as tainted observations (Degradation.StalenessWindow).
	nodeEpoch int
	// nodeChangedAt is each node's last down/up transition time, and
	// lastTransition the most recent across nodes; both seed the
	// fallback-utilization and cooldown mechanisms. farPast until a
	// transition happens.
	nodeChangedAt  []sim.Time
	lastTransition sim.Time
	// openCrashes holds crash times awaiting the next met deadline — the
	// recovery-latency observation (crash → first met deadline).
	openCrashes []sim.Time

	tasks []*runtimeTask

	// maxOffset is the synchronizer's residual clock error, captured when
	// the tick chain is stopped at pattern end. Zero without ClockSync.
	maxOffset sim.Time

	// Lane coupling; all zero/nil on a single-segment run. laneID and
	// laneBase place this segment inside a lane-partitioned run (local
	// node n is global node laneBase+n), uplink carries the per-segment
	// workload reports to the other lanes, and remoteItems holds the
	// latest report received from each lane (own entry stays 0).
	laneID      int
	laneBase    int
	uplink      laneUplink
	remoteItems []int

	// Free lists for the per-period hot path (see instance.go): replica
	// job contexts, task message contexts, and fan-out scratch. The engine
	// is single-threaded, so none of these need locking.
	freeRJ     *replicaJob
	freeTM     *taskMsg
	perDestBuf []int
	haloBuf    []int
}

// nodeNow returns the node-local clock reading (true time when clock
// synchronization is disabled).
func (s *system) nodeNow(proc int) sim.Time {
	if s.clocks == nil {
		return s.eng.Now()
	}
	return s.clocks[proc].Now()
}

// runtimeTask is one deployed task with its monitoring state.
type runtimeTask struct {
	setup TaskSetup
	dep   *task.Deployment
	mon   *monitor.Monitor
	alloc manager.Allocator
	// ctrl is the policy's optional degrade/recover hook, consulted at
	// every period start. Nil for the paper's algorithms and the static
	// baselines — their per-period path is untouched by the policy layer.
	ctrl policy.Controller

	// utilSnapshot is the per-node utilization from *other* work (total
	// busy time minus this task's own jobs) over the last monitoring
	// window. The profiling step measures latency against background
	// utilization, so this — not the raw node utilization — is the u the
	// fitted eq. (3) expects, and the quantity Figures 5/7 read as
	// ut(p,t).
	utilSnapshot []float64
	// rawSnapshot is the total per-node utilization over the same window
	// — what Figure 7's threshold and the least-utilized pick read.
	rawSnapshot []float64
	ownBusy     []sim.Time // cumulative CPU time of this task's jobs, per node
	lastOwn     []sim.Time
	lastBusy    []sim.Time
	lastAt      sim.Time
	// unknown marks nodes whose last monitoring window overlapped a
	// crash or recovery: their busy-time delta reads as idle while the
	// node was really unobserved. Populated only when
	// Degradation.FallbackUtil is set; nil otherwise.
	unknown []bool

	lastCompleted *task.PeriodRecord
	inFlight      int
	// completed/missed count this task's finished instances for the
	// observation hook (the collector aggregates across tasks).
	completed int
	missed    int

	// Per-period scratch reused across estimateChain/deriveAssignment
	// calls (AssignEQF copies what it keeps), and the instance free list.
	chainExec   []sim.Time
	chainComm   []sim.Time
	replScratch []int
	freeInst    *instance
}

// sampleUtil refreshes utilSnapshot for a new monitoring window.
func (rt *runtimeTask) sampleUtil(s *system) {
	now := s.eng.Now()
	dt := now - rt.lastAt
	for i, p := range s.procs {
		busy := p.BusyTime()
		if dt > 0 {
			other := (busy - rt.lastBusy[i]) - (rt.ownBusy[i] - rt.lastOwn[i])
			rt.utilSnapshot[i] = clamp01(float64(other) / float64(dt))
			rt.rawSnapshot[i] = clamp01(float64(busy-rt.lastBusy[i]) / float64(dt))
		} else {
			rt.utilSnapshot[i] = 0
			rt.rawSnapshot[i] = 0
		}
		rt.lastBusy[i] = busy
		rt.lastOwn[i] = rt.ownBusy[i]
	}
	if s.cfg.Degradation.FallbackUtil > 0 {
		if rt.unknown == nil {
			rt.unknown = make([]bool, len(s.procs))
		}
		for i := range s.procs {
			rt.unknown[i] = s.down[i] || s.nodeChangedAt[i] > rt.lastAt
		}
	}
	rt.lastAt = now
}

// Run simulates the task set under the given algorithm for the full
// workload pattern of every task and returns the aggregated result.
func Run(cfg Config, alg Algorithm, setups []TaskSetup) (Result, error) {
	return RunContext(context.Background(), cfg, alg, setups)
}

// cancelCheckEvents is how many engine events execute between context
// polls in RunContext. Large enough that the check is invisible in the
// event-throughput benchmarks, small enough that cancellation lands
// within microseconds of wall time.
const cancelCheckEvents = 4096

// RunContext is Run with cooperative cancellation: when ctx is done the
// simulation stops between events and ctx.Err() is returned. A
// background context takes the exact single-call engine drain Run always
// used, so results are bit-identical to the pre-context build.
func RunContext(ctx context.Context, cfg Config, alg Algorithm, setups []TaskSetup) (Result, error) {
	return runContext(ctx, cfg, alg, setups, nil)
}

// runContext is the shared body of RunContext and RunObservedContext.
// obs, when non-nil, has been validated by the caller; nil keeps every
// code path byte-identical to the unobserved build.
func runContext(ctx context.Context, cfg Config, alg Algorithm, setups []TaskSetup, obs *Observer) (Result, error) {
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	if !ValidAlgorithm(alg) {
		return Result{}, fmt.Errorf("core: unknown algorithm %q", alg)
	}
	if len(setups) == 0 {
		return Result{}, fmt.Errorf("core: no tasks to run")
	}
	if cfg.Lanes >= 2 {
		// Lane-partitioned topology: sharded engines behind the epoch
		// barrier (see lanes.go). Lanes ≤ 1 keeps the exact
		// single-threaded path below.
		return runLanes(ctx, cfg, alg, setups)
	}
	// Compile the stochastic chaos processes into the concrete fault and
	// partition schedule before anything is built. With chaos disabled
	// this block leaves cfg and faults untouched, so the run is
	// bit-identical to a chaos-free build.
	faults := cfg.Faults
	if cfg.Chaos.Enabled() {
		horizon := patternHorizon(setups)
		sched := chaos.Compile(cfg.Chaos, cfg.NumNodes, horizon, cfg.Seed)
		faults = append([]Fault(nil), faults...)
		for _, f := range sched.Faults {
			faults = append(faults, Fault{Node: f.Node, At: f.At, Duration: f.Duration})
		}
		if len(sched.Partitions) > 0 {
			wins := append([]network.Window(nil), cfg.Network.Partitions...)
			for _, w := range sched.Partitions {
				wins = append(wins, network.Window{Start: w.Start, End: w.End})
			}
			sort.Slice(wins, func(i, j int) bool { return wins[i].Start < wins[j].Start })
			cfg.Network.Partitions = wins
		}
	}
	s, err := buildSystem(cfg, alg, setups, sim.NewEngine(), faults)
	if err != nil {
		return Result{}, err
	}
	if obs != nil {
		// After the rest of construction, so every pre-existing event
		// keeps its engine sequence number (see scheduleObservations).
		s.scheduleObservations(obs, patternHorizon(setups))
	}

	// Run to quiescence: all instances drain once period starts stop.
	// With a cancellable context, poll it every cancelCheckEvents events;
	// the done channel of a background context is nil and the stepping
	// loop is skipped entirely.
	if ctx.Done() == nil {
		s.eng.Run()
	} else {
	drain:
		for {
			for i := 0; i < cancelCheckEvents; i++ {
				if !s.eng.Step() {
					break drain
				}
			}
			if err := ctx.Err(); err != nil {
				return Result{}, err
			}
		}
	}
	res := s.finish()
	if obs != nil {
		final := s.captureObservation()
		final.Final = true
		final.Metrics = res.Metrics
		obs.OnSample(final)
	}
	return res, nil
}

// buildSystem assembles one simulated segment on the given engine:
// processors, meters, telemetry observers, the fault schedule, runtime
// tasks, pre-scheduled period starts, and the synchronizer stop hook.
// The caller has validated cfg/alg/setups and resolved the concrete
// fault schedule. Construction order is load-bearing: it fixes the
// engine's event sequence numbers, and therefore the run.
func buildSystem(cfg Config, alg Algorithm, setups []TaskSetup, eng *sim.Engine, faults []Fault) (*system, error) {
	if cfg.Network.LossSeed == 0 {
		// Loss draws derive from the run seed unless the caller pinned a
		// separate stream; irrelevant (no RNG exists) on a reliable segment.
		cfg.Network.LossSeed = cfg.Seed
	}
	s := &system{
		cfg:       cfg,
		alg:       alg,
		eng:       eng,
		seg:       nil,
		rng:       sim.NewRand(cfg.Seed, 0x5eed),
		collector: metrics.NewCollector(float64(cfg.NumNodes)),
		log:       trace.NewLog(),
		tel:       cfg.Telemetry,
	}
	s.seg = network.NewSegment(s.eng, cfg.Network)
	s.procs = make([]cpu.Scheduler, 0, cfg.NumNodes)
	s.sysMeters = make([]*cpu.Meter, 0, cfg.NumNodes)
	for i := 0; i < cfg.NumNodes; i++ {
		s.procs = append(s.procs, cpu.NewScheduler(s.eng, i, cfg.Slice, cfg.Discipline))
		s.sysMeters = append(s.sysMeters, cpu.NewMeter(s.eng, s.procs[i]))
	}
	s.netMeter = network.NewMeter(s.seg)
	if s.tel.Enabled() {
		// Queue-wait coverage for every job on every node comes from the
		// scheduler-level observer; task-scoped exec spans are recorded at
		// the facade's own completion callbacks, which carry the context.
		for _, p := range s.procs {
			p.SetObserver(func(procID int, j *cpu.Job) {
				s.tel.RecordJobWait(procID, j.StartedAt-j.SubmittedAt)
			})
		}
		// The segment observer sees every delivery; task messages are
		// recorded by the facade with full context and marked by their
		// *taskMsg Meta, so only system traffic (clock sync) lands here.
		s.seg.SetObserver(func(m *network.Message) {
			if _, ok := m.Meta.(*taskMsg); ok {
				return
			}
			s.tel.RecordMessage("", -1, -1, m.From, m.To, m.PayloadBytes,
				m.EnqueuedAt, m.SentAt, m.DeliveredAt)
		})
	}

	s.down = make([]bool, cfg.NumNodes)
	s.nodeChangedAt = make([]sim.Time, cfg.NumNodes)
	for i := range s.nodeChangedAt {
		s.nodeChangedAt[i] = farPast
	}
	s.lastTransition = farPast
	if cfg.ClockSync {
		s.setupClocks()
	}
	for _, f := range faults {
		f := f
		s.eng.Schedule(f.At, func() { s.failNode(f.Node) })
		if f.Duration > 0 {
			s.eng.Schedule(f.At+f.Duration, func() { s.recoverNode(f.Node) })
		}
	}

	for _, setup := range setups {
		rt, err := s.newRuntimeTask(setup)
		if err != nil {
			return nil, err
		}
		s.tasks = append(s.tasks, rt)
	}

	// Pre-schedule every period start.
	for _, rt := range s.tasks {
		rt := rt
		for c := 0; c < rt.setup.Pattern.Periods(); c++ {
			c := c
			s.eng.Schedule(sim.Time(c)*rt.setup.Spec.Period, func() { s.runPeriod(rt, c) })
		}
	}
	// Stop the synchronizer's tick chain at the end of the last task's
	// pattern so the engine can drain, and capture the residual clock
	// error there.
	if s.sync != nil {
		var end sim.Time
		for _, rt := range s.tasks {
			if e := sim.Time(rt.setup.Pattern.Periods()) * rt.setup.Spec.Period; e > end {
				end = e
			}
		}
		s.eng.Schedule(end, func() {
			s.sync.Stop()
			s.maxOffset = s.sync.MaxAbsOffset()
		})
	}
	return s, nil
}

// finish gathers the run result after the engine has drained.
func (s *system) finish() Result {
	s.collector.CountDropped(int(s.seg.Dropped()))
	return Result{
		Metrics:        s.collector.Finish(),
		Records:        s.log.Records(),
		Events:         s.log.Events(),
		MaxClockOffset: s.maxOffset,
		EventsFired:    s.eng.EventsFired(),
	}
}

// farPast initializes transition timestamps so zero-time comparisons
// (first monitoring window starts at lastAt 0) can't false-positive.
const farPast = sim.Time(-1 << 62)

// patternHorizon returns the latest pattern end across the task set —
// the horizon the chaos processes are compiled against. Setups are not
// yet validated here, so nil patterns are skipped (they fail later).
func patternHorizon(setups []TaskSetup) sim.Time {
	var end sim.Time
	for _, st := range setups {
		if st.Pattern == nil {
			continue
		}
		if e := sim.Time(st.Pattern.Periods()) * st.Spec.Period; e > end {
			end = e
		}
	}
	return end
}

// failNode crashes a node: in-flight and queued work is lost.
func (s *system) failNode(n int) {
	if s.down[n] {
		return
	}
	s.down[n] = true
	s.nodeEpoch++
	s.nodeChangedAt[n] = s.eng.Now()
	s.lastTransition = s.eng.Now()
	s.collector.CountCrash()
	s.openCrashes = append(s.openCrashes, s.eng.Now())
	s.procs[n].Fail()
	s.log.Adaptation(trace.AdaptationEvent{
		At: s.eng.Now(), Period: int(s.eng.Now() / sim.Second), Task: "-",
		Stage: -1, Kind: trace.ActionNodeDown, Procs: []int{n},
	})
	s.tel.RecordAdaptation(s.eng.Now(), "-", -1, int(s.eng.Now()/sim.Second),
		string(trace.ActionNodeDown), int64(n))
}

// recoverNode brings a crashed node back empty.
func (s *system) recoverNode(n int) {
	if !s.down[n] {
		return
	}
	s.down[n] = false
	s.nodeEpoch++
	s.nodeChangedAt[n] = s.eng.Now()
	s.lastTransition = s.eng.Now()
	s.collector.CountRecovery()
	s.procs[n].Recover()
	s.log.Adaptation(trace.AdaptationEvent{
		At: s.eng.Now(), Period: int(s.eng.Now() / sim.Second), Task: "-",
		Stage: -1, Kind: trace.ActionNodeUp, Procs: []int{n},
	})
	s.tel.RecordAdaptation(s.eng.Now(), "-", -1, int(s.eng.Now()/sim.Second),
		string(trace.ActionNodeUp), int64(n))
}

// repairPlacements is the fail-over step run at each monitoring cycle:
// replicas on crashed nodes are dropped (surviving replicas absorb the
// stream) and a subtask whose only process died is relocated to the
// least-utilized live node.
func (s *system) repairPlacements(rt *runtimeTask, c int) {
	for stage := range rt.setup.Spec.Subtasks {
		for _, proc := range rt.dep.Replicas(stage) {
			if !s.down[proc] {
				continue
			}
			if rt.dep.RemoveProcessor(stage, proc) {
				s.collector.CountShutdown()
				s.log.Adaptation(trace.AdaptationEvent{
					At: s.eng.Now(), Period: c, Task: rt.setup.Spec.Name, Stage: stage,
					Kind: trace.ActionFailover, Procs: []int{proc},
				})
				s.tel.RecordAdaptation(s.eng.Now(), rt.setup.Spec.Name, stage, c,
					string(trace.ActionFailover), int64(proc))
				continue
			}
			// Sole replica: relocate to the least-utilized live node
			// that does not already host this stage.
			best := -1
			for p := 0; p < s.cfg.NumNodes; p++ {
				if s.down[p] || rt.dep.Has(stage, p) {
					continue
				}
				if best == -1 || rt.rawSnapshot[p] < rt.rawSnapshot[best] {
					best = p
				}
			}
			if best == -1 {
				continue // no live node available; the stage stays dark
			}
			if err := rt.dep.ReplaceProcessor(stage, proc, best); err == nil {
				s.log.Adaptation(trace.AdaptationEvent{
					At: s.eng.Now(), Period: c, Task: rt.setup.Spec.Name, Stage: stage,
					Kind: trace.ActionFailover, Procs: []int{proc, best},
				})
				s.tel.RecordAdaptation(s.eng.Now(), rt.setup.Spec.Name, stage, c,
					string(trace.ActionFailover), int64(best))
			}
		}
	}
}

// setupClocks builds per-node drifting clocks and the Mills-style
// synchronizer, with node 0 acting as the reference.
func (s *system) setupClocks() {
	rng := sim.NewRand(s.cfg.Seed, 0xc10c)
	for i := 0; i < s.cfg.NumNodes; i++ {
		offset := sim.Time(rng.Int64N(2*int64(s.cfg.ClockInitialOffset)+1)) - s.cfg.ClockInitialOffset
		drift := (2*rng.Float64() - 1) * s.cfg.ClockDriftPPM
		if i == 0 {
			offset, drift = 0, 0
		}
		s.clocks = append(s.clocks, clocksync.NewClock(s.eng, offset, drift))
	}
	s.sync = clocksync.NewSynchronizer(s.eng, s.seg, 0, s.clocks[0], s.cfg.ClockSyncPeriod, 0.5)
	for i := 1; i < s.cfg.NumNodes; i++ {
		s.sync.AddClient(i, s.clocks[i])
	}
	s.sync.Start()
}

func (s *system) newRuntimeTask(setup TaskSetup) (*runtimeTask, error) {
	if err := setup.validate(s.cfg.NumNodes); err != nil {
		return nil, err
	}
	homes := setup.Homes
	if homes == nil {
		homes = make([]int, len(setup.Spec.Subtasks))
		for i := range homes {
			homes[i] = i % s.cfg.NumNodes
		}
	}
	dep, err := task.NewDeployment(setup.Spec, homes)
	if err != nil {
		return nil, err
	}
	pol, ok := policy.Lookup(string(s.alg))
	if !ok {
		// RunContext validates the algorithm before any task is built, so
		// reaching here is a wiring bug rather than user input.
		return nil, fmt.Errorf("core: unknown algorithm %q", s.alg)
	}
	penv := policy.TaskEnv{
		Exec:          setup.Exec,
		Comm:          setup.Comm,
		NumNodes:      s.cfg.NumNodes,
		UtilThreshold: s.cfg.UtilThreshold,
		Knobs:         s.cfg.Policy,
	}
	alloc, err := pol.NewAllocator(penv)
	if err != nil {
		return nil, err
	}
	if p, ok := alloc.(*manager.Predictive); ok && s.tel.Enabled() {
		// Count Figure 5 forecast evaluations per stage: the probe fires
		// once per replica per forecastOK pass, so the counter reflects
		// how much model work each adaptation decision cost.
		name := setup.Spec.Name
		p.Probe = func(stage, share int, u float64, predicted sim.Time) {
			s.tel.RecordForecastEval(name, stage)
		}
	}
	if seeder, ok := pol.(policy.DeploymentSeeder); ok {
		// static-max: maximum-concurrency deployment, fixed for the run.
		if err := seeder.SeedDeployment(penv, dep, setup.Spec); err != nil {
			return nil, err
		}
	}
	rt := &runtimeTask{
		setup:        setup,
		dep:          dep,
		alloc:        alloc,
		utilSnapshot: make([]float64, s.cfg.NumNodes),
		rawSnapshot:  make([]float64, s.cfg.NumNodes),
		ownBusy:      make([]sim.Time, s.cfg.NumNodes),
		lastOwn:      make([]sim.Time, s.cfg.NumNodes),
		lastBusy:     make([]sim.Time, s.cfg.NumNodes),
	}
	if cm, ok := pol.(policy.ControllerMaker); ok {
		rt.ctrl = cm.NewController(penv)
	}
	// Initial EQF assignment from the initial operating conditions
	// (§4.1: d_init from the first period's workload, u_init = idle).
	initial, err := s.deriveAssignment(rt, setup.Pattern.Size(0), setup.Pattern.Size(0))
	if err != nil {
		return nil, err
	}
	monCfg := s.cfg.Monitor
	if w := s.cfg.Degradation.StalenessWindow; w > 0 && monCfg.StalenessWindow == 0 {
		monCfg.StalenessWindow = w
	}
	rt.mon, err = monitor.New(monCfg, setup.Spec, initial)
	if err != nil {
		return nil, err
	}
	return rt, nil
}

// deriveAssignment re-runs the EQF variant (eqs. 1–2) with the current
// replica counts, observed utilizations and workload estimates.
// estimateChain returns the chain estimates in scratch buffers owned by
// rt: the result is only valid until the next estimateChain call, and
// callers (AssignEQF, the telemetry Predict loop) must not retain it.
func (rt *runtimeTask) estimateChain(s *system, items, totalItems int) deadline.Chain {
	n := len(rt.setup.Spec.Subtasks)
	if cap(rt.chainExec) < n {
		rt.chainExec = make([]sim.Time, n)
		rt.chainComm = make([]sim.Time, n)
	}
	chain := deadline.Chain{
		Exec: rt.chainExec[:n],
		Comm: rt.chainComm[:n],
	}
	chain.Comm[n-1] = 0
	for i := 0; i < n; i++ {
		rt.replScratch = rt.dep.AppendReplicas(i, rt.replScratch[:0])
		replicas := rt.replScratch
		k := len(replicas)
		share := (items + k - 1) / k
		if k > 1 {
			// A replica processes its share plus the continuity halo
			// (Config.OverlapFraction); the estimate must match what the
			// monitor will observe or the slack band never clears.
			share += int(s.cfg.OverlapFraction * float64(items))
		}
		var u float64
		for _, p := range replicas {
			u += rt.utilSnapshot[p]
		}
		u /= float64(k)
		eex := rt.setup.Exec[i].Latency(share, clamp01(u))
		if eex < 100*sim.Microsecond {
			eex = 100 * sim.Microsecond
		}
		chain.Exec[i] = eex
		if i < n-1 {
			kNext := rt.dep.ReplicaCount(i + 1)
			nextShare := (items + kNext - 1) / kNext
			chain.Comm[i] = rt.setup.Comm.Delay(float64(nextShare), totalItems)
		}
	}
	return chain
}

func (s *system) deriveAssignment(rt *runtimeTask, items, totalItems int) (deadline.Assignment, error) {
	return deadline.AssignEQF(rt.estimateChain(s, items, totalItems), rt.setup.Spec.Deadline)
}

// localItems returns this segment's share of eq. (5)'s Σᵢ ds(Tᵢ, c) as
// known at adaptation time: every local task's workload for its most
// recently *observed* period. Allocation runs before the new period's
// sensor data arrives, so the freshest available count is one period old
// — a staleness that only affects the forecast-driven algorithm.
func (s *system) localItems() int {
	now := s.eng.Now()
	total := 0
	for _, rt := range s.tasks {
		idx := int(now/rt.setup.Spec.Period) - 1
		if idx < 0 {
			idx = 0
		}
		total += rt.setup.Pattern.Size(idx)
	}
	return total
}

// totalItems is eq. (5)'s Σᵢ ds(Tᵢ, c) over the whole system: the local
// share plus, on a lane-partitioned run, the latest workload report
// received from every other segment (one uplink latency staler than the
// local share — a manager on one segment learns about the others over
// the wire).
func (s *system) totalItems() int {
	total := s.localItems()
	for _, r := range s.remoteItems {
		total += r
	}
	return total
}

// runPeriod fires at each period start: sample, analyze, consult the
// policy controller, adapt, record, launch.
func (s *system) runPeriod(rt *runtimeTask, c int) {
	items := rt.setup.Pattern.Size(c)

	// 0. Lane uplink: at this segment's anchor boundaries — the declared
	// cross-lane send instants — report the local Σ-items to the other
	// segments. Fires even for periods a policy later stretches away:
	// the nominal boundary exists either way.
	if s.uplink != nil && rt == s.tasks[0] {
		s.uplink.BroadcastItems(s.laneID, s.localItems())
	}

	// 1. Sample per-processor other-work utilization over the last
	// period window.
	rt.sampleUtil(s)

	// 1b. Fail-over: heal placements that reference crashed nodes.
	s.repairPlacements(rt, c)

	// 2. Monitor verdict for the most recent completed record, with the
	// chaos-hardening hysteresis: for CooldownPeriods after any node
	// flaps, replicas are not shut down — a node that just came back (or
	// is about to come back) would otherwise trigger immediate
	// de-allocation of exactly the redundancy the next crash needs.
	// Replication stays responsive.
	analysis := rt.mon.AnalyzeAt(rt.lastCompleted, s.eng.Now())
	if d := s.cfg.Degradation.CooldownPeriods; d > 0 && len(analysis.Shutdown) > 0 &&
		s.eng.Now() < s.lastTransition+sim.Time(d)*rt.setup.Spec.Period {
		analysis.Shutdown = analysis.Shutdown[:0]
	}

	// 2b. Policy degrade/recover hook: a controller may shed part of the
	// period's items, skip the launch entirely (period stretching), or
	// swallow the monitor's signals because it degraded instead of
	// allocating. Policies without a controller take the paper's path
	// untouched.
	launchItems, skip := items, false
	if rt.ctrl != nil {
		dec := rt.ctrl.PlanPeriod(policy.PeriodState{
			Period:      c,
			Items:       items,
			Overloaded:  len(analysis.Replicate) > 0,
			Underloaded: len(analysis.Shutdown) > 0,
			MeanRawUtil: meanFloat(rt.rawSnapshot),
		})
		if dec.SuppressReplicate {
			analysis.Replicate = analysis.Replicate[:0]
		}
		if dec.SuppressShutdown {
			analysis.Shutdown = analysis.Shutdown[:0]
		}
		if dec.Skip {
			skip = true
			s.collector.CountStretchedPeriod()
			s.log.Adaptation(trace.AdaptationEvent{
				At: s.eng.Now(), Period: c, Task: rt.setup.Spec.Name, Stage: -1,
				Kind: trace.ActionStretch,
			})
			s.tel.RecordAdaptation(s.eng.Now(), rt.setup.Spec.Name, -1, c,
				string(trace.ActionStretch), 1)
		} else {
			launchItems = dec.LaunchItems
			if launchItems > items {
				launchItems = items
			}
			if launchItems < 0 {
				launchItems = 0
			}
			if shed := items - launchItems; shed > 0 {
				s.collector.CountShedItems(shed)
				s.log.Adaptation(trace.AdaptationEvent{
					At: s.eng.Now(), Period: c, Task: rt.setup.Spec.Name, Stage: -1,
					Kind: trace.ActionShed,
				})
				s.tel.RecordAdaptation(s.eng.Now(), rt.setup.Spec.Name, -1, c,
					string(trace.ActionShed), int64(shed))
			}
		}
	}

	// 2c. Adapt placement. The workload known to the allocator is the
	// previous period's ds(Ti,c): the new period's sensor count has not
	// arrived yet.
	knownItems := items
	if c > 0 {
		knownItems = rt.setup.Pattern.Size(c - 1)
	}
	s.adapt(rt, c, knownItems, analysis)

	// A stretched-away period launches nothing and takes no utilization
	// sample: the nominal boundary exists, the instance does not.
	if skip {
		return
	}

	// 3. System-level metric samples, anchored to the first task's
	// periods so multi-task runs don't double-count windows.
	if rt == s.tasks[0] {
		var cpuSum float64
		for i, m := range s.sysMeters {
			u := clamp01(m.Sample())
			cpuSum += u
			s.tel.SetProcUtil(i, u)
		}
		var reps float64
		for _, t := range s.tasks {
			reps += t.dep.MeanReplicasOfReplicable()
		}
		netU := clamp01(s.netMeter.Sample())
		s.tel.SetNetUtil(netU)
		s.collector.ObservePeriodStart(
			cpuSum/float64(len(s.sysMeters)),
			netU,
			reps/float64(len(s.tasks)),
		)
	}

	// 4. Launch the instance.
	s.launch(rt, c, launchItems)
}

// adapt runs steps 1–2 of the management process for one task, acting on
// the (possibly policy-filtered) monitor analysis.
func (s *system) adapt(rt *runtimeTask, c, items int, analysis monitor.Analysis) {
	if len(analysis.Replicate) == 0 && len(analysis.Shutdown) == 0 {
		return
	}
	procs := manager.MaskedProcView{Utils: rt.utilSnapshot, Down: s.down}
	raw := manager.MaskedProcView{Utils: rt.rawSnapshot, Down: s.down}
	if f := s.cfg.Degradation.FallbackUtil; f > 0 {
		// Forecast fallback: a recovering node has no trustworthy
		// utilization sample, so the regression inputs substitute a
		// conservative prior instead of "perfectly idle".
		procs.Unknown, procs.Fallback = rt.unknown, f
		raw.Unknown, raw.Fallback = rt.unknown, f
	}
	env := manager.Environment{
		Procs:         procs,
		RawProcs:      raw,
		Items:         items,
		TotalItems:    maxInt(s.totalItems(), items),
		SlackFraction: s.cfg.Monitor.SlackFraction,
	}
	// Figure 5 compares the forecast eex + ecd against the subtask
	// window; per the paper's footnote 3 the incoming message's delay is
	// incorporated into the successor subtask's deadline, so the window
	// handed to the allocator is dl(m_{i−1}) + dl(st_i).
	window := func(stage int) sim.Time {
		dl := rt.mon.SubtaskDeadline(stage)
		if stage > 0 {
			dl += rt.mon.Assignment().Message[stage-1]
		}
		return dl
	}
	changed := false
	for _, stage := range analysis.Replicate {
		env.SubtaskDeadline = window(stage)
		before := rt.dep.Replicas(stage)
		added, ok := rt.alloc.Replicate(rt.dep, stage, env)
		if added > 0 {
			changed = true
			s.collector.CountReplications(added)
			s.log.Adaptation(trace.AdaptationEvent{
				At: s.eng.Now(), Period: c, Task: rt.setup.Spec.Name, Stage: stage,
				Kind: trace.ActionReplicate, Procs: newProcs(before, rt.dep.Replicas(stage)),
			})
			s.tel.RecordAdaptation(s.eng.Now(), rt.setup.Spec.Name, stage, c,
				string(trace.ActionReplicate), int64(added))
		}
		if !ok {
			s.collector.CountAllocFailure()
			s.log.Adaptation(trace.AdaptationEvent{
				At: s.eng.Now(), Period: c, Task: rt.setup.Spec.Name, Stage: stage,
				Kind: trace.ActionAllocFailure,
			})
			s.tel.RecordAdaptation(s.eng.Now(), rt.setup.Spec.Name, stage, c,
				string(trace.ActionAllocFailure), 0)
		}
	}
	for _, stage := range analysis.Shutdown {
		env.SubtaskDeadline = window(stage)
		if !rt.alloc.ShouldShutdown(rt.dep, stage, env) {
			continue
		}
		if proc, ok := manager.ShutDownAReplica(rt.dep, stage); ok {
			changed = true
			s.collector.CountShutdown()
			s.log.Adaptation(trace.AdaptationEvent{
				At: s.eng.Now(), Period: c, Task: rt.setup.Spec.Name, Stage: stage,
				Kind: trace.ActionShutdown, Procs: []int{proc},
			})
			s.tel.RecordAdaptation(s.eng.Now(), rt.setup.Spec.Name, stage, c,
				string(trace.ActionShutdown), int64(proc))
		}
	}
	if changed {
		// §4.1: deadlines are re-assigned after every adaptation action.
		if a, err := s.deriveAssignment(rt, items, env.TotalItems); err == nil {
			rt.mon.SetAssignment(a)
		}
	}
}

// newProcs returns the processors present in after but not before.
func newProcs(before, after []int) []int {
	var out []int
	for _, p := range after {
		found := false
		for _, q := range before {
			if q == p {
				found = true
				break
			}
		}
		if !found {
			out = append(out, p)
		}
	}
	return out
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// meanFloat returns the arithmetic mean, 0 for an empty slice.
func meanFloat(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var sum float64
	for _, x := range v {
		sum += x
	}
	return sum / float64(len(v))
}
