package core

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestRunContextCancellation: a run under a cancellable context stops
// promptly with the context's error instead of simulating to the end.
func TestRunContextCancellation(t *testing.T) {
	pattern := workload.NewConstant(9000, 200_000) // minutes of events if left alone
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	start := time.Now()
	go func() {
		_, err := RunContext(ctx, DefaultConfig(), Predictive, []TaskSetup{benchSetup(pattern)})
		done <- err
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("cancelled run returned %v, want context.Canceled", err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("cancellation took %v; the engine checks every few thousand events", elapsed)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run never returned")
	}
}

// TestRunContextPreCancelled: an already-dead context fails before any
// simulation work.
func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunContext(ctx, DefaultConfig(), Predictive, []TaskSetup{benchSetup(workload.NewConstant(500, 5))})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}

// TestRunContextBackgroundMatchesRun: threading context.Background through
// RunContext must not perturb the simulation — Run and RunContext produce
// identical results (the golden CSVs depend on this).
func TestRunContextBackgroundMatchesRun(t *testing.T) {
	pattern := workload.NewTriangular(500, 6000, 40, 2)
	cfg := DefaultConfig()
	cfg.Seed = 321
	a, err := Run(cfg, Predictive, []TaskSetup{benchSetup(pattern)})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunContext(context.Background(), cfg, Predictive, []TaskSetup{benchSetup(pattern)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != b.Metrics || a.EventsFired != b.EventsFired {
		t.Errorf("RunContext(background) diverged from Run:\n got %+v events=%d\nwant %+v events=%d",
			b.Metrics, b.EventsFired, a.Metrics, a.EventsFired)
	}
	// A cancellable-but-never-cancelled context must also match: the
	// Step-loop drain path is observationally identical to eng.Run().
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c, err := RunContext(ctx, cfg, Predictive, []TaskSetup{benchSetup(pattern)})
	if err != nil {
		t.Fatal(err)
	}
	if a.Metrics != c.Metrics || a.EventsFired != c.EventsFired {
		t.Errorf("RunContext(cancellable) diverged from Run:\n got %+v events=%d\nwant %+v events=%d",
			c.Metrics, c.EventsFired, a.Metrics, a.EventsFired)
	}
}
