package core

import (
	"reflect"
	"testing"

	"repro/internal/chaos"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// chaosTestCfg is a run under stochastic crashes, a lossy segment, and
// the hardened manager — the full ext-chaos stack at a test-sized dose.
func chaosTestCfg(seed uint64) Config {
	cfg := DefaultConfig()
	cfg.Seed = seed
	cfg.Chaos = chaos.Config{NodeMTBF: 20 * sim.Second, NodeMTTR: 3 * sim.Second, MaxDown: 2}
	cfg.Network.DropProb = 0.02
	cfg.Degradation = HardenedDegradation()
	return cfg
}

// TestChaosRunDeterministicPerSeed pins the chaos layer's core contract:
// the crash schedule, the message-loss stream, and every retransmission
// are pure functions of the config seed.
func TestChaosRunDeterministicPerSeed(t *testing.T) {
	run := func(seed uint64) Result {
		res, err := Run(chaosTestCfg(seed), Predictive,
			[]TaskSetup{benchSetup(workload.NewTriangular(500, 8000, 40, 1))})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(7), run(7)
	if !reflect.DeepEqual(a.Metrics, b.Metrics) {
		t.Errorf("same seed, different metrics:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if len(a.Events) != len(b.Events) {
		t.Errorf("same seed, different event counts: %d vs %d", len(a.Events), len(b.Events))
	}
	if a.Metrics.Crashes == 0 {
		t.Error("20s MTBF over a 40s run produced no crashes — chaos schedule not wired in")
	}
	if c := run(8); reflect.DeepEqual(a.Metrics, c.Metrics) {
		t.Error("different seeds produced identical metrics — seed not reaching the chaos layer")
	}
}

// TestRetransmitRecoversDroppedHandoffs: on a 10%-lossy segment a lost
// inter-subtask handoff silently stalls its instance forever unless the
// delivery watchdog resends it. The hardened config must turn most of
// those losses back into completed periods.
func TestRetransmitRecoversDroppedHandoffs(t *testing.T) {
	base := DefaultConfig()
	base.Network.DropProb = 0.10
	setup := func() []TaskSetup {
		return []TaskSetup{benchSetup(workload.NewConstant(5000, 40))}
	}

	bare, err := Run(base, Predictive, setup())
	if err != nil {
		t.Fatal(err)
	}
	hardened := base
	hardened.Degradation = HardenedDegradation()
	hard, err := Run(hardened, Predictive, setup())
	if err != nil {
		t.Fatal(err)
	}

	if bare.Metrics.DroppedMessages == 0 || hard.Metrics.DroppedMessages == 0 {
		t.Fatalf("10%% drop rate produced no drops (bare=%d hard=%d)",
			bare.Metrics.DroppedMessages, hard.Metrics.DroppedMessages)
	}
	if bare.Metrics.Retransmissions != 0 {
		t.Errorf("retransmissions without a delivery timeout: %d", bare.Metrics.Retransmissions)
	}
	if hard.Metrics.Retransmissions == 0 {
		t.Error("hardened run never retransmitted despite drops")
	}
	// Every drop without the watchdog loses a period; with it, nearly all
	// handoffs eventually land.
	if bare.Metrics.Completed >= bare.Metrics.Periods {
		t.Error("bare lossy run lost nothing — drops are not reaching task handoffs")
	}
	if hard.Metrics.Completed <= bare.Metrics.Completed {
		t.Errorf("retransmission did not help: hardened completed %d ≤ bare %d",
			hard.Metrics.Completed, bare.Metrics.Completed)
	}
	if lost := hard.Metrics.Periods - hard.Metrics.Completed; lost > 4 {
		t.Errorf("hardened run still lost %d of %d periods", lost, hard.Metrics.Periods)
	}
}

// TestCrashOfNewestReplicaFailsOver crashes the node hosting the most
// recently added replica of a replicated stage (satellite: the
// repairPlacements removal path). The dead replica must be dropped via an
// ActionFailover removal — not relocated — and the surviving replicas
// must keep the pipeline alive.
func TestCrashOfNewestReplicaFailsOver(t *testing.T) {
	pattern := func() workload.Pattern { return workload.NewConstant(9000, 40) }

	// Phase 1 (clean run): find where and when the first replica lands.
	clean, err := Run(DefaultConfig(), Predictive, []TaskSetup{benchSetup(pattern())})
	if err != nil {
		t.Fatal(err)
	}
	victim, stage := -1, -1
	var at sim.Time
	for _, e := range clean.Events {
		if e.Kind == trace.ActionReplicate && len(e.Procs) > 0 {
			victim, stage, at = e.Procs[len(e.Procs)-1], e.Stage, e.At
			break
		}
	}
	if victim == -1 {
		t.Fatal("high constant workload never replicated — cannot stage the scenario")
	}

	// Phase 2: same run, but the newest replica's node dies two periods
	// after it was added and stays down.
	cfg := DefaultConfig()
	cfg.Faults = []Fault{{Node: victim, At: at + 2*sim.Second}}
	res, err := Run(cfg, Predictive, []TaskSetup{benchSetup(pattern())})
	if err != nil {
		t.Fatal(err)
	}
	removed := false
	for _, e := range res.Events {
		if e.Kind == trace.ActionFailover && e.Stage == stage &&
			len(e.Procs) == 1 && e.Procs[0] == victim {
			removed = true
		}
	}
	if !removed {
		t.Errorf("no fail-over removal of node %d (stage %d) found", victim, stage)
	}
	if lost := res.Metrics.Periods - res.Metrics.Completed; lost > 3 {
		t.Errorf("%d periods lost despite surviving replicas", lost)
	}
}

// TestMidPeriodRecoveryDoesNotResurrectWork crashes the Filter home node
// mid-period and recovers it 400 ms later, within the same period. The
// in-flight instance's work is gone for good: its period never completes,
// no period completes twice, and the pipeline resumes on the recovered
// node without a relocation.
func TestMidPeriodRecoveryDoesNotResurrectWork(t *testing.T) {
	cfg := faultCfg()
	cfg.Faults[0].Duration = 400 * sim.Millisecond // recover at 10.6 s, mid-period 10
	res, err := Run(cfg, Predictive,
		[]TaskSetup{benchSetup(workload.NewConstant(5000, 40))})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]int{}
	for _, r := range res.Records {
		seen[r.Period]++
	}
	for p, n := range seen {
		if n > 1 {
			t.Errorf("period %d completed %d times — lost work resurrected", p, n)
		}
	}
	if seen[10] != 0 {
		t.Error("period 10 completed despite its Filter work dying in the crash")
	}
	for p := 12; p < 40; p++ {
		if seen[p] == 0 {
			t.Errorf("period %d never completed after the node recovered", p)
		}
	}
	if res.Metrics.Crashes != 1 || res.Metrics.Recoveries != 1 {
		t.Errorf("crashes=%d recoveries=%d, want 1 each",
			res.Metrics.Crashes, res.Metrics.Recoveries)
	}
	if res.Metrics.MeanRecoveryMS <= 0 {
		t.Error("recovery latency not observed")
	}
}
