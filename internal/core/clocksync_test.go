package core

import (
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

func clockCfg() Config {
	cfg := DefaultConfig()
	cfg.ClockSync = true
	return cfg
}

func TestClockSyncRunCompletes(t *testing.T) {
	res, err := Run(clockCfg(), Predictive,
		[]TaskSetup{benchSetup(workload.NewTriangular(500, 8000, 40, 1))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Completed != 40 {
		t.Fatalf("completed %d of 40 under clock sync", res.Metrics.Completed)
	}
	// The synchronizer must have disciplined the ±5ms initial offsets to
	// well under a millisecond by the end of the run.
	if res.MaxClockOffset <= 0 {
		t.Fatal("no residual clock offset reported")
	}
	if res.MaxClockOffset > sim.Millisecond {
		t.Errorf("residual clock offset %v, want < 1ms", res.MaxClockOffset)
	}
}

func TestClockSyncOffByDefault(t *testing.T) {
	res, err := Run(DefaultConfig(), Predictive,
		[]TaskSetup{benchSetup(workload.NewConstant(500, 3))})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxClockOffset != 0 {
		t.Errorf("clock offset %v reported with sync disabled", res.MaxClockOffset)
	}
}

func TestClockSyncMetricsComparable(t *testing.T) {
	// Clock error perturbs only monitoring observations (sub-millisecond
	// against deadlines of hundreds of milliseconds), so the adaptive
	// outcome must stay close to the perfect-clock run.
	pattern := workload.NewTriangular(500, 10000, 60, 1)
	perfect, err := Run(DefaultConfig(), Predictive, []TaskSetup{benchSetup(pattern)})
	if err != nil {
		t.Fatal(err)
	}
	skewed, err := Run(clockCfg(), Predictive, []TaskSetup{benchSetup(pattern)})
	if err != nil {
		t.Fatal(err)
	}
	dp, ds := perfect.Metrics.Combined(), skewed.Metrics.Combined()
	if diff := dp - ds; diff > 10 || diff < -10 {
		t.Errorf("clock sync changed combined metric %v → %v", dp, ds)
	}
}

func TestClockSyncValidation(t *testing.T) {
	cfg := clockCfg()
	cfg.ClockSyncPeriod = 0
	if err := cfg.Validate(); err == nil {
		t.Error("zero sync period accepted")
	}
	cfg = clockCfg()
	cfg.ClockDriftPPM = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative drift bound accepted")
	}
}
