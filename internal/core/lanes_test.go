package core

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/dynbench"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// laneBenchSetup is benchSetup with a distinct task name and pattern per
// index, so lane partitions carry differentiated workloads.
func laneBenchSetup(i int, pattern workload.Pattern) TaskSetup {
	dcfg := dynbench.DefaultConfig()
	dcfg.Name = fmt.Sprintf("AAW%d", i)
	spec := dynbench.NewTask(dcfg)
	exec := make([]regress.ExecModel, len(spec.Subtasks))
	for j := range exec {
		exec[j] = dynbench.GroundTruthExec(j)
	}
	net := DefaultConfig().Network
	return TaskSetup{
		Spec:    spec,
		Pattern: pattern,
		Exec:    exec,
		Comm: regress.CommModel{
			K:                       regress.PaperBufferSlopeK,
			LinkBps:                 net.BandwidthBps,
			BytesPerItem:            dynbench.TrackBytes,
			PerMessageOverheadBytes: net.PerMessageOverheadBytes,
			FrameOverheadBytes:      net.FrameOverheadBytes,
			MTU:                     net.MTU,
		},
	}
}

// lanePattern varies the workload shape by task index so different lanes
// adapt differently.
func lanePattern(i int) workload.Pattern {
	switch i % 3 {
	case 0:
		return workload.NewStep(500, 6000, 6, 3)
	case 1:
		return workload.NewTriangular(500, 5000, 6, 2)
	default:
		return workload.NewConstant(2500, 6)
	}
}

// resultFingerprint serializes everything a Result exposes, byte for
// byte: metrics, every period record (including stage observations),
// every adaptation event, and the run counters.
func resultFingerprint(res Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "metrics=%+v\nmaxOffset=%d fired=%d\n", res.Metrics, res.MaxClockOffset, res.EventsFired)
	for _, r := range res.Records {
		fmt.Fprintf(&b, "rec %d %d %d %d %d %+v\n", r.Period, r.Items, r.ReleasedAt, r.CompletedAt, r.Deadline, r.Stages)
	}
	for _, e := range res.Events {
		fmt.Fprintf(&b, "ev %d %s\n", e.At, e.String())
	}
	return b.String()
}

// laneTestConfig builds a lane-partitioned config on 48 nodes (so 1, 2,
// 4 and 8 lanes all divide evenly, each lane no smaller than the Table 1
// cluster) with optional chaos.
func laneTestConfig(lanes, parallel int, chaosOn bool) Config {
	cfg := DefaultConfig()
	cfg.NumNodes = 48
	cfg.Lanes = lanes
	cfg.Parallel = parallel
	if chaosOn {
		cfg.Chaos.NodeMTBF = 2 * sim.Second
		cfg.Chaos.NodeMTTR = 300 * sim.Millisecond
		cfg.Chaos.MaxDown = 8
		cfg.Chaos.PartitionMTBF = 3 * sim.Second
		cfg.Chaos.PartitionMTTR = 100 * sim.Millisecond
		cfg.Network.DropProb = 0.01
		cfg.Degradation = HardenedDegradation()
	}
	return cfg
}

func laneTestSetups(n int) []TaskSetup {
	setups := make([]TaskSetup, n)
	for i := range setups {
		setups[i] = laneBenchSetup(i, lanePattern(i))
	}
	return setups
}

// TestLaneSerialParallelByteIdentical is the tentpole guarantee: for
// every registered policy, every lane count and chaos on/off, the
// parallel worker-pool driver must produce a Result byte-identical to
// the serial (Parallel=1) driver.
func TestLaneSerialParallelByteIdentical(t *testing.T) {
	for _, alg := range Algorithms() {
		for _, lanes := range []int{1, 2, 4, 8} {
			for _, chaosOn := range []bool{false, true} {
				alg, lanes, chaosOn := alg, lanes, chaosOn
				t.Run(fmt.Sprintf("%s/lanes=%d/chaos=%v", alg, lanes, chaosOn), func(t *testing.T) {
					t.Parallel()
					setups := laneTestSetups(2 * maxInt(lanes, 1))
					serial, err := Run(laneTestConfig(lanes, 1, chaosOn), alg, setups)
					if err != nil {
						t.Fatal(err)
					}
					parallel, err := Run(laneTestConfig(lanes, lanes, chaosOn), alg, setups)
					if err != nil {
						t.Fatal(err)
					}
					sf, pf := resultFingerprint(serial), resultFingerprint(parallel)
					if sf != pf {
						sh, ph := head(sf, pf)
						t.Fatalf("serial and parallel results diverge:\nserial:\n%s\nparallel:\n%s", sh, ph)
					}
					if serial.Metrics.Completed == 0 {
						t.Fatal("degenerate run: nothing completed")
					}
				})
			}
		}
	}
}

// head trims two diverging fingerprints to the first differing region,
// so failures are readable.
func head(a, b string) (string, string) {
	i := 0
	for i < len(a) && i < len(b) && a[i] == b[i] {
		i++
	}
	lo := i - 200
	if lo < 0 {
		lo = 0
	}
	end := func(s string) int {
		if len(s) < i+200 {
			return len(s)
		}
		return i + 200
	}
	return a[lo:end(a)], b[lo:end(b)]
}

func laneTestConfigDefaultChaos(lanes, parallel int) Config {
	return laneTestConfig(lanes, parallel, false)
}

// TestLaneClockSyncIdentical covers the per-lane clock-sync domains
// under the same serial/parallel cross-check.
func TestLaneClockSyncIdentical(t *testing.T) {
	cfg := laneTestConfigDefaultChaos(4, 1)
	cfg.ClockSync = true
	setups := laneTestSetups(8)
	serial, err := Run(cfg, Predictive, setups)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Parallel = 4
	parallel, err := Run(cfg, Predictive, setups)
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(serial) != resultFingerprint(parallel) {
		t.Fatal("clock-sync lane run diverges between serial and parallel drivers")
	}
	if serial.MaxClockOffset == 0 {
		t.Fatal("expected a nonzero residual clock offset with sync enabled")
	}
}

// TestLaneGlobalWorkloadPropagates: the cross-lane Σ-items reports must
// reach the allocators — a lane-partitioned run must see more total
// workload than an identical single-lane system of the same size run in
// isolation would (observable indirectly: remote items arrive, so the
// run is not equivalent to zeroed uplinks). Here we just assert the
// plumbing end to end: results differ when the *other* lanes' workload
// changes and nothing else does.
func TestLaneGlobalWorkloadPropagates(t *testing.T) {
	cfg := laneTestConfigDefaultChaos(2, 1)
	a := laneTestSetups(4)
	b := laneTestSetups(4)
	// Fatten lane 1's tasks (indices 1 and 3) only.
	b[1].Pattern = workload.NewConstant(9000, 6)
	b[3].Pattern = workload.NewConstant(9000, 6)
	ra, err := Run(cfg, Predictive, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(cfg, Predictive, b)
	if err != nil {
		t.Fatal(err)
	}
	// Lane 0's tasks are identical in both runs; if its records still
	// match exactly, the uplink reports never reached lane 0's manager.
	fa, fb := resultFingerprint(ra), resultFingerprint(rb)
	if fa == fb {
		t.Fatal("changing the remote lane's workload left the run untouched: uplink reports are not flowing")
	}
}

func TestLaneConfigErrors(t *testing.T) {
	setups := laneTestSetups(4)

	cfg := laneTestConfigDefaultChaos(5, 0) // 48 % 5 != 0
	if _, err := Run(cfg, Predictive, setups); err == nil {
		t.Error("no error for non-dividing lane count")
	}

	cfg = laneTestConfigDefaultChaos(2, 0)
	cfg.Telemetry = telemetry.New(telemetry.DefaultConfig())
	if _, err := Run(cfg, Predictive, setups); err == nil {
		t.Error("no error for telemetry with lanes")
	}

	cfg = laneTestConfigDefaultChaos(2, 0)
	spanning := laneTestSetups(4)
	spanning[0].Homes = []int{0, 24, 1, 2, 3} // crosses the lane boundary
	if _, err := Run(cfg, Predictive, spanning); err == nil {
		t.Error("no error for homes spanning lanes")
	}

	cfg = laneTestConfigDefaultChaos(4, 0)
	if _, err := Run(cfg, Predictive, laneTestSetups(2)); err == nil {
		t.Error("no error for a lane without tasks")
	}

	cfg = laneTestConfigDefaultChaos(2, -1)
	if _, err := Run(cfg, Predictive, setups); err == nil {
		t.Error("no error for negative Parallel")
	}
}

// TestLaneFaultsAreNodeKeyed: the same chaos seed must crash the same
// global nodes at the same times regardless of the lane count — fault
// streams are keyed by node, not draw order.
func TestLaneFaultsAreNodeKeyed(t *testing.T) {
	collect := func(lanes int) []string {
		cfg := laneTestConfig(lanes, 1, true)
		cfg.Network.DropProb = 0 // isolate node faults
		cfg.Chaos.PartitionMTBF, cfg.Chaos.PartitionMTTR = 0, 0
		res, err := Run(cfg, Predictive, laneTestSetups(2*maxInt(lanes, 1)))
		if err != nil {
			t.Fatal(err)
		}
		var downs []string
		for _, e := range res.Events {
			if e.Kind == "node-down" {
				downs = append(downs, fmt.Sprintf("%d@%d", e.Procs[0], e.At))
			}
		}
		return downs
	}
	base := collect(1)
	if len(base) == 0 {
		t.Fatal("chaos produced no crashes; tighten MTBF")
	}
	for _, lanes := range []int{2, 4, 8} {
		got := collect(lanes)
		if fmt.Sprint(got) != fmt.Sprint(base) {
			t.Errorf("lanes=%d crash schedule %v, want %v (node-keyed streams)", lanes, got, base)
		}
	}
}
