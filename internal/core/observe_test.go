package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/workload"
)

// TestObservedRunMatchesUnobserved proves the observation hook watches
// without shaping: the same spec run with and without an observer yields
// identical metrics and period records. (EventsFired legitimately
// differs — the sample events themselves fire.)
func TestObservedRunMatchesUnobserved(t *testing.T) {
	cfg := DefaultConfig()
	setups := []TaskSetup{benchSetup(workload.NewTriangular(500, 9000, 30, 1))}
	plain, err := Run(cfg, Predictive, setups)
	if err != nil {
		t.Fatal(err)
	}
	var samples int
	observed, err := RunObserved(cfg, Predictive, setups, &Observer{
		Every:    100 * sim.Millisecond,
		OnSample: func(Observation) { samples++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if samples == 0 {
		t.Fatal("observer never sampled")
	}
	if !reflect.DeepEqual(plain.Metrics, observed.Metrics) {
		t.Errorf("observed run drifted from unobserved:\n got %+v\nwant %+v", observed.Metrics, plain.Metrics)
	}
	if !reflect.DeepEqual(plain.Records, observed.Records) {
		t.Errorf("observed run's period records differ from unobserved")
	}
}

// TestObserverSampling pins the sampling contract: cadence from Every to
// the horizon, monotone times, copied placements, monotone counters, and
// a Final observation whose metrics equal the returned result's.
func TestObserverSampling(t *testing.T) {
	cfg := DefaultConfig()
	pattern := workload.NewConstant(4000, 10) // horizon 10s at the 1s period
	setups := []TaskSetup{benchSetup(pattern)}
	every := 500 * sim.Millisecond
	var obs []Observation
	res, err := RunObserved(cfg, Predictive, setups, &Observer{
		Every:    every,
		OnSample: func(o Observation) { obs = append(obs, o) },
	})
	if err != nil {
		t.Fatal(err)
	}
	wantPeriodic := int(sim.Time(10) * sim.Second / every) // t=Every..horizon inclusive
	if len(obs) != wantPeriodic+1 {
		t.Fatalf("got %d observations, want %d periodic + 1 final", len(obs), wantPeriodic)
	}
	for i, o := range obs[:wantPeriodic] {
		if o.Final {
			t.Errorf("observation %d marked final", i)
		}
		if want := sim.Time(i+1) * every; o.At != want {
			t.Errorf("observation %d at %v, want %v", i, o.At, want)
		}
	}
	final := obs[len(obs)-1]
	if !final.Final {
		t.Fatal("last observation not marked final")
	}
	if !reflect.DeepEqual(final.Metrics, res.Metrics) {
		t.Errorf("final observation metrics != result metrics:\n got %+v\nwant %+v", final.Metrics, res.Metrics)
	}
	prevCompleted := -1
	for i, o := range obs {
		if len(o.Nodes) != cfg.NumNodes {
			t.Fatalf("observation %d: %d nodes, want %d", i, len(o.Nodes), cfg.NumNodes)
		}
		if len(o.Tasks) != 1 {
			t.Fatalf("observation %d: %d tasks, want 1", i, len(o.Tasks))
		}
		task := o.Tasks[0]
		if task.Completed < prevCompleted {
			t.Errorf("observation %d: completed went backwards (%d < %d)", i, task.Completed, prevCompleted)
		}
		prevCompleted = task.Completed
		if len(task.Stages) == 0 {
			t.Fatalf("observation %d: no stage placements", i)
		}
		for st, procs := range task.Stages {
			if len(procs) == 0 {
				t.Errorf("observation %d: stage %d has no replicas", i, st)
			}
		}
	}
	// Placement slices must be copies: mutating one sample can't corrupt
	// another (or the run, which already finished here).
	obs[0].Tasks[0].Stages[0][0] = -99
	if obs[1].Tasks[0].Stages[0][0] == -99 {
		t.Error("stage placements alias between observations")
	}
	if final.Metrics.Completed != 10 {
		t.Errorf("final completed = %d, want 10", final.Metrics.Completed)
	}
}

// TestObserverValidation covers the rejection paths.
func TestObserverValidation(t *testing.T) {
	cfg := DefaultConfig()
	setups := []TaskSetup{benchSetup(workload.NewConstant(500, 2))}
	cases := map[string]*Observer{
		"nil":        nil,
		"no-cadence": {OnSample: func(Observation) {}},
		"no-hook":    {Every: sim.Second},
	}
	for name, o := range cases {
		if _, err := RunObserved(cfg, Predictive, setups, o); err == nil {
			t.Errorf("%s: want an error", name)
		}
	}
	lanes := cfg
	lanes.Lanes = 2
	ok := &Observer{Every: sim.Second, OnSample: func(Observation) {}}
	if _, err := RunObservedContext(context.Background(), lanes, Predictive, setups, ok); err == nil {
		t.Error("lane-partitioned observed run should be rejected")
	}
}
