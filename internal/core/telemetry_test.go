package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/telemetry"
	"repro/internal/workload"
)

// runWithTelemetry drives the benchmark task with a recorder attached.
func runWithTelemetry(t *testing.T, alg Algorithm, pattern workload.Pattern, clockSync bool) *telemetry.Recorder {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Telemetry = telemetry.New(telemetry.DefaultConfig())
	cfg.ClockSync = clockSync
	if _, err := Run(cfg, alg, []TaskSetup{benchSetup(pattern)}); err != nil {
		t.Fatal(err)
	}
	return cfg.Telemetry
}

func TestTelemetryDisabledByDefault(t *testing.T) {
	// The zero Config carries no recorder; a run without one must behave
	// identically to the seed behaviour (covered by the rest of the suite)
	// and never touch telemetry. This just pins the nil default.
	if DefaultConfig().Telemetry.Enabled() {
		t.Error("DefaultConfig carries an enabled recorder")
	}
}

func TestTelemetryCapturesRun(t *testing.T) {
	pattern := workload.NewTriangular(500, 3000, 60, 3)
	periods := pattern.Periods()
	rec := runWithTelemetry(t, Predictive, pattern, false)
	snap := rec.Snapshot()

	if len(snap.Stages) == 0 || len(snap.Tasks) != 1 {
		t.Fatalf("stages=%d tasks=%d", len(snap.Stages), len(snap.Tasks))
	}
	task := snap.Tasks[0]
	if task.Instances != uint64(periods) {
		t.Errorf("instances = %d, want %d", task.Instances, periods)
	}
	if task.Latency.Count != uint64(periods) || task.Latency.P50MS <= 0 {
		t.Errorf("e2e latency = %+v", task.Latency)
	}
	// Quantiles must be ordered and inside the envelope.
	l := task.Latency
	if !(l.MinMS <= l.P50MS && l.P50MS <= l.P95MS && l.P95MS <= l.P99MS && l.P99MS <= l.MaxMS) {
		t.Errorf("latency quantiles out of order: %+v", l)
	}
	for _, st := range snap.Stages {
		if st.Latency.Count != uint64(periods) {
			t.Errorf("stage %d latency count = %d, want %d", st.Stage, st.Latency.Count, periods)
		}
		if st.Slack.Count != uint64(periods) {
			t.Errorf("stage %d slack count = %d", st.Stage, st.Slack.Count)
		}
	}
	// Every stage of every period was predicted and observed.
	if len(snap.Forecast) != len(snap.Stages) {
		t.Fatalf("forecast series = %d, stages = %d", len(snap.Forecast), len(snap.Stages))
	}
	for _, fs := range snap.Forecast {
		if fs.Exec.Matched != periods {
			t.Errorf("stage %d exec forecasts matched = %d, want %d", fs.Stage, fs.Exec.Matched, periods)
		}
		if fs.Exec.PendingNow != 0 {
			t.Errorf("stage %d has %d dangling predictions", fs.Stage, fs.Exec.PendingNow)
		}
		if fs.Stage < len(snap.Forecast)-1 && fs.Comm.Matched != periods {
			t.Errorf("stage %d comm forecasts matched = %d, want %d", fs.Stage, fs.Comm.Matched, periods)
		}
		if fs.Stage == len(snap.Forecast)-1 && fs.Comm.Matched != 0 {
			t.Errorf("final stage tracked %d comm forecasts, want 0", fs.Comm.Matched)
		}
	}
	// The pipeline sends messages between consecutive stages every period.
	if snap.Network.WireMsgs+snap.Network.LocalMsgs == 0 {
		t.Error("no messages recorded")
	}
	if snap.QueueWait.Count == 0 {
		t.Error("no queue waits recorded (cpu observer not wired)")
	}
	if snap.Spans == 0 {
		t.Error("no spans captured")
	}
	// The triangular ramp forces replication under the predictive
	// allocator, so forecast evaluations and adaptations must appear.
	var evals uint64
	for _, st := range snap.Stages {
		evals += st.ForecastEvals
	}
	if evals == 0 {
		t.Error("no Figure 5 forecast evaluations counted (probe not wired)")
	}
	if snap.Counters[`rm_adaptations_total{kind="replicate"}`] == 0 {
		t.Errorf("no replicate adaptations counted: %v", snap.Counters)
	}
	if snap.Gauges["rm_net_util"] < 0 {
		t.Errorf("net util gauge = %v", snap.Gauges["rm_net_util"])
	}
}

func TestTelemetryClockSyncTrafficIsSystemScoped(t *testing.T) {
	rec := runWithTelemetry(t, Predictive, workload.NewConstant(500, 10), true)
	var sync, task int
	for _, s := range rec.Spans() {
		if s.Kind != telemetry.KindMessage {
			continue
		}
		if s.Task == "" {
			sync++
		} else {
			task++
		}
	}
	if sync == 0 {
		t.Error("clock-sync exchanges produced no system-scoped message spans")
	}
	if task == 0 {
		t.Error("no task-scoped message spans")
	}
}

func TestTelemetryExportersOnRealRun(t *testing.T) {
	rec := runWithTelemetry(t, Predictive, workload.NewConstant(1500, 10), false)

	var prom bytes.Buffer
	if err := rec.WritePrometheus(&prom); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	for _, want := range []string{"rm_e2e_latency_count", "rm_stage_latency_bucket", "rm_cpu_util"} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("prometheus output missing %s", want)
		}
	}

	var snapJSON bytes.Buffer
	if err := rec.WriteSnapshot(&snapJSON); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	var snapDoc map[string]any
	if err := json.Unmarshal(snapJSON.Bytes(), &snapDoc); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}

	var chrome bytes.Buffer
	if err := rec.WriteChromeTrace(&chrome); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var traceDoc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(chrome.Bytes(), &traceDoc); err != nil {
		t.Fatalf("chrome trace JSON invalid: %v", err)
	}
	if len(traceDoc.TraceEvents) < 10 {
		t.Errorf("chrome trace has only %d events", len(traceDoc.TraceEvents))
	}
}

func TestTelemetryRunIdenticalResults(t *testing.T) {
	// Attaching a recorder must not perturb the simulation itself.
	pattern := workload.NewTriangular(500, 3000, 30, 2)
	plain, err := Run(DefaultConfig(), Predictive, []TaskSetup{benchSetup(pattern)})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.Telemetry = telemetry.New(telemetry.DefaultConfig())
	instrumented, err := Run(cfg, Predictive, []TaskSetup{benchSetup(pattern)})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Metrics != instrumented.Metrics {
		t.Errorf("telemetry changed run results:\nplain        %+v\ninstrumented %+v",
			plain.Metrics, instrumented.Metrics)
	}
}
