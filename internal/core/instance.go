package core

import (
	"repro/internal/cpu"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/task"
)

// instance is one in-flight period of a task. Replica placement is frozen
// at launch; adaptation between periods changes only future instances.
//
// Instances are recycled through the owning runtimeTask's free list: the
// slice storage survives across periods, so a steady-state period launch
// allocates only the PeriodRecord (which the trace log retains).
type instance struct {
	rt  *runtimeTask
	rec *task.PeriodRecord

	placements [][]int // per stage
	shares     [][]int // per stage, input items per replica (without halo)
	halo       []int   // per stage, halo items each replica receives on top

	pendingJobs []int   // outstanding CPU jobs per stage
	pendingMsgs [][]int // per stage, per replica, inputs still in flight
	readyCount  []int   // replicas of the stage whose inputs are complete

	nextFree *instance
}

// replicaJob carries one replica execution's context plus its embedded
// cpu.Job. Pooled on the system so a steady-state submit allocates
// nothing: the completion callback is bound once, at node creation.
type replicaJob struct {
	s          *system
	inst       *instance
	stage, idx int
	proc       int
	demand     sim.Time
	job        cpu.Job
	nextFree   *replicaJob
}

// taskMsg carries one inter-stage message's delivery context; pooled like
// replicaJob, with the OnDeliver callback bound once.
type taskMsg struct {
	s        *system
	inst     *instance
	stage    int // destination stage
	destIdx  int
	nextFree *taskMsg
}

// Task messages carry their *taskMsg context in Meta; the segment-level
// telemetry observer recognizes that type and skips them so they are not
// double-counted as system traffic (the facade records them itself, with
// task/stage/period context).

// newReplicaJob takes a context from the free list, or allocates one and
// binds its completion callback.
func (s *system) newReplicaJob() *replicaJob {
	rj := s.freeRJ
	if rj == nil {
		rj = &replicaJob{s: s}
		rj.job.OnComplete = rj.onComplete
		return rj
	}
	s.freeRJ = rj.nextFree
	rj.nextFree = nil
	return rj
}

func (s *system) freeReplicaJob(rj *replicaJob) {
	rj.inst = nil
	rj.nextFree = s.freeRJ
	s.freeRJ = rj
}

func (s *system) newTaskMsg() *taskMsg {
	tm := s.freeTM
	if tm == nil {
		return &taskMsg{s: s}
	}
	s.freeTM = tm.nextFree
	tm.nextFree = nil
	return tm
}

func (s *system) freeTaskMsg(tm *taskMsg) {
	tm.inst = nil
	tm.nextFree = s.freeTM
	s.freeTM = tm
}

// newInstance recycles an instance from rt's free list (resizing its
// per-stage storage for the current replica counts) or builds a fresh
// one. The PeriodRecord is always freshly allocated: the trace log and
// the monitor retain it beyond the instance's life.
func (s *system) newInstance(rt *runtimeTask, c, items, n int) *instance {
	now := s.eng.Now()
	inst := rt.freeInst
	if inst == nil {
		inst = &instance{
			placements:  make([][]int, n),
			shares:      make([][]int, n),
			halo:        make([]int, n),
			pendingJobs: make([]int, n),
			pendingMsgs: make([][]int, n),
			readyCount:  make([]int, n),
		}
	} else {
		rt.freeInst = inst.nextFree
		inst.nextFree = nil
	}
	inst.rt = rt
	inst.rec = &task.PeriodRecord{
		Period:     c,
		Items:      items,
		ReleasedAt: now,
		Deadline:   now + rt.setup.Spec.Deadline,
		Stages:     make([]task.StageObservation, n),
	}
	return inst
}

func (s *system) releaseInstance(inst *instance) {
	rt := inst.rt
	inst.rt = nil
	inst.rec = nil
	inst.nextFree = rt.freeInst
	rt.freeInst = inst
}

// launch releases one period's instance into the system.
func (s *system) launch(rt *runtimeTask, c, items int) {
	spec := rt.setup.Spec
	n := len(spec.Subtasks)
	inst := s.newInstance(rt, c, items, n)
	for i := 0; i < n; i++ {
		inst.placements[i] = rt.dep.AppendReplicas(i, inst.placements[i][:0])
		k := len(inst.placements[i])
		inst.shares[i] = task.SplitItemsInto(inst.shares[i], items, k)
		inst.halo[i] = 0
		if k > 1 {
			inst.halo[i] = int(s.cfg.OverlapFraction * float64(items))
		}
		inst.pendingJobs[i] = k
		pm := inst.pendingMsgs[i]
		if cap(pm) < k {
			pm = make([]int, k)
		}
		pm = pm[:k]
		kPrev := 0
		if i > 0 {
			kPrev = len(inst.placements[i-1])
		}
		for j := range pm {
			pm[j] = kPrev
		}
		inst.pendingMsgs[i] = pm
		inst.readyCount[i] = 0
		inst.rec.Stages[i].Replicas = k
	}
	rt.inFlight++

	// Record the eq. (3)/(5) forecasts for this period with the ACTUAL
	// item count, pairing each against the observation at completion.
	// Using the true count (not the allocator's one-period-stale view)
	// isolates model quality from workload staleness in the residuals.
	if s.tel.Enabled() {
		chain := rt.estimateChain(s, items, maxInt(s.totalItems(), items))
		for i := 0; i < n; i++ {
			comm := sim.Time(-1) // final stage: no outgoing message
			if i < n-1 {
				comm = chain.Comm[i]
			}
			s.tel.Predict(spec.Name, i, c, chain.Exec[i], comm)
		}
	}

	// Stage 0's inputs (the sensor reports) are available at release.
	inst.rec.Stages[0].ReadyAt = s.nodeNow(inst.placements[0][0])
	for idx := range inst.placements[0] {
		s.submitReplicaJob(inst, 0, idx)
	}
}

// replicaInputItems is the data volume a replica actually processes: its
// share plus the halo of neighbouring tracks it needs for continuity.
func (inst *instance) replicaInputItems(stage, idx int) int {
	return inst.shares[stage][idx] + inst.halo[stage]
}

// submitReplicaJob runs one replica's CPU work for the stage.
func (s *system) submitReplicaJob(inst *instance, stage, idx int) {
	proc := inst.placements[stage][idx]
	spec := inst.rt.setup.Spec
	demand := spec.Subtasks[stage].Demand(inst.replicaInputItems(stage, idx), s.rng)
	if inst.rt.dep.ConsumeWarmup(stage, proc) {
		demand += s.cfg.WarmupDemand
	}
	rj := s.newReplicaJob()
	rj.inst, rj.stage, rj.idx, rj.proc, rj.demand = inst, stage, idx, proc, demand
	rj.job.Name = spec.Subtasks[stage].Name
	rj.job.Demand = demand
	s.procs[proc].Submit(&rj.job)
}

// onComplete is the pooled completion callback for a replica job.
func (rj *replicaJob) onComplete(at sim.Time) {
	s, inst, stage, idx := rj.s, rj.inst, rj.stage, rj.idx
	// Attribute the CPU time to this task so utilization sampling can
	// separate own work from background.
	inst.rt.ownBusy[rj.proc] += rj.demand
	s.tel.RecordExec(inst.rt.setup.Spec.Name, stage, inst.rec.Period, rj.proc,
		inst.replicaInputItems(stage, idx), rj.job.SubmittedAt, rj.job.StartedAt, at)
	// The context is done before replicaDone runs: nothing downstream
	// submits synchronously into this burst, and all fields are copied.
	s.freeReplicaJob(rj)
	s.replicaDone(inst, stage, idx, at)
}

// replicaDone handles one replica's completion: forward its output to
// every replica of the next stage, or complete the instance.
func (s *system) replicaDone(inst *instance, stage, idx int, at sim.Time) {
	inst.pendingJobs[stage]--
	if inst.pendingJobs[stage] == 0 {
		// Observations are timestamped with the completing node's local
		// clock — the "global time scale" of Figure 1 is only as good as
		// the clock synchronization that provides it.
		inst.rec.Stages[stage].DoneAt = s.nodeNow(inst.placements[stage][idx])
	}
	spec := inst.rt.setup.Spec
	if stage == len(spec.Subtasks)-1 {
		if inst.pendingJobs[stage] == 0 {
			inst.rec.Stages[stage].DeliveredAt = inst.rec.Stages[stage].DoneAt
			s.complete(inst)
		}
		return
	}
	next := inst.placements[stage+1]
	srcProc := inst.placements[stage][idx]
	s.perDestBuf = task.SplitItemsInto(s.perDestBuf, inst.shares[stage][idx], len(next))
	s.haloBuf = task.SplitItemsInto(s.haloBuf, inst.halo[stage+1], len(inst.placements[stage]))
	perDest, haloPerMsg := s.perDestBuf, s.haloBuf
	bytesPerItem := spec.Subtasks[stage].OutBytesPerItem
	for j, destProc := range next {
		payloadItems := perDest[j] + haloPerMsg[idx]
		tm := s.newTaskMsg()
		tm.inst, tm.stage, tm.destIdx = inst, stage+1, j
		m := s.seg.AcquireMessage()
		m.From = srcProc
		m.To = destProc
		m.PayloadBytes = int64(payloadItems * bytesPerItem)
		m.Meta = tm
		m.OnDeliver = deliverTaskMsg
		s.seg.Send(m)
	}
}

// deliverTaskMsg is the shared OnDeliver for all task messages; the
// per-message context rides in Meta, so no per-send closure is needed.
func deliverTaskMsg(m *network.Message) {
	tm := m.Meta.(*taskMsg)
	s, inst, stage, destIdx := tm.s, tm.inst, tm.stage, tm.destIdx
	s.tel.RecordMessage(inst.rt.setup.Spec.Name, stage, inst.rec.Period,
		m.From, m.To, m.PayloadBytes, m.EnqueuedAt, m.SentAt, m.DeliveredAt)
	at := m.DeliveredAt
	s.freeTaskMsg(tm)
	s.seg.ReleaseMessage(m)
	s.msgArrived(inst, stage, destIdx, at)
}

// msgArrived tracks per-replica input completion for a stage.
func (s *system) msgArrived(inst *instance, stage, destIdx int, at sim.Time) {
	inst.pendingMsgs[stage][destIdx]--
	if inst.pendingMsgs[stage][destIdx] > 0 {
		return
	}
	inst.readyCount[stage]++
	if inst.readyCount[stage] == len(inst.placements[stage]) {
		// Last replica's inputs complete: the stage is observed ready
		// and the previous stage's outputs fully delivered, per the
		// receiving node's clock.
		local := s.nodeNow(inst.placements[stage][destIdx])
		inst.rec.Stages[stage].ReadyAt = local
		inst.rec.Stages[stage-1].DeliveredAt = local
	}
	s.submitReplicaJob(inst, stage, destIdx)
}

// complete finalizes the instance and feeds the monitor.
func (s *system) complete(inst *instance) {
	inst.rec.CompletedAt = s.eng.Now()
	inst.rt.inFlight--
	s.collector.ObserveCompletion(inst.rec.Missed())
	s.log.Record(inst.rec)
	if s.tel.Enabled() {
		rt, rec := inst.rt, inst.rec
		name := rt.setup.Spec.Name
		for _, ss := range rt.mon.StageSlacks(rec) {
			s.tel.RecordStage(name, ss.Stage, rec.Period, ss.Latency, ss.Deadline)
		}
		for i := range rec.Stages {
			comm := sim.Time(-1)
			if i < len(rec.Stages)-1 {
				comm = rec.Stages[i].CommLatency()
			}
			s.tel.ObserveForecast(name, i, rec.Period, rec.Stages[i].ExecLatency(), comm)
		}
		s.tel.RecordEndToEnd(name, rec.Period, rec.EndToEnd(), rt.setup.Spec.Deadline, rec.Missed())
	}
	last := inst.rt.lastCompleted
	if last == nil || inst.rec.Period > last.Period {
		inst.rt.lastCompleted = inst.rec
	}
	// All jobs and messages of this period have finished; the instance
	// can serve the next period.
	s.releaseInstance(inst)
}
