package core

import (
	"repro/internal/cpu"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/task"
)

// instance is one in-flight period of a task. Replica placement is frozen
// at launch; adaptation between periods changes only future instances.
//
// Instances are recycled through the owning runtimeTask's free list: the
// slice storage survives across periods, so a steady-state period launch
// allocates only the PeriodRecord (which the trace log retains).
type instance struct {
	rt  *runtimeTask
	rec *task.PeriodRecord

	placements [][]int // per stage
	shares     [][]int // per stage, input items per replica (without halo)
	halo       []int   // per stage, halo items each replica receives on top

	pendingJobs []int   // outstanding CPU jobs per stage
	pendingMsgs [][]int // per stage, per replica, inputs still in flight
	readyCount  []int   // replicas of the stage whose inputs are complete

	// epoch is the system's nodeEpoch at launch: a completion whose epoch
	// is stale straddled a crash or recovery, and its observations are
	// tainted for adaptation purposes (Degradation.StalenessWindow).
	epoch int

	nextFree *instance
}

// replicaJob carries one replica execution's context plus its embedded
// cpu.Job. Pooled on the system so a steady-state submit allocates
// nothing: the completion callback is bound once, at node creation.
type replicaJob struct {
	s          *system
	inst       *instance
	stage, idx int
	proc       int
	demand     sim.Time
	job        cpu.Job
	nextFree   *replicaJob
}

// taskMsg carries one inter-stage message's delivery context; pooled like
// replicaJob, with the OnDeliver callback bound once. One taskMsg is one
// logical handoff: under Degradation.DeliveryTimeout it may put several
// physical copies on the wire (retransmissions), so it tracks how many
// are outstanding and whether the handoff already succeeded — the first
// delivery wins, duplicates are discarded, and the context returns to
// the pool only when no copy can still reference it.
type taskMsg struct {
	s        *system
	inst     *instance
	stage    int // destination stage
	destIdx  int
	from, to int
	payload  int64

	attempt     int  // retransmissions so far
	outstanding int  // physical copies queued or in flight
	done        bool // first delivery happened; duplicates are ignored
	abandoned   bool // retry budget exhausted
	watchdog    sim.Timer
	onTimeout   func() // bound once to timeout

	nextFree *taskMsg
}

// Task messages carry their *taskMsg context in Meta; the segment-level
// telemetry observer recognizes that type and skips them so they are not
// double-counted as system traffic (the facade records them itself, with
// task/stage/period context).

// newReplicaJob takes a context from the free list, or allocates one and
// binds its completion callback.
func (s *system) newReplicaJob() *replicaJob {
	rj := s.freeRJ
	if rj == nil {
		rj = &replicaJob{s: s}
		rj.job.OnComplete = rj.onComplete
		return rj
	}
	s.freeRJ = rj.nextFree
	rj.nextFree = nil
	return rj
}

func (s *system) freeReplicaJob(rj *replicaJob) {
	rj.inst = nil
	rj.nextFree = s.freeRJ
	s.freeRJ = rj
}

func (s *system) newTaskMsg() *taskMsg {
	tm := s.freeTM
	if tm == nil {
		tm = &taskMsg{s: s}
		tm.onTimeout = tm.timeout
		return tm
	}
	s.freeTM = tm.nextFree
	tm.nextFree = nil
	return tm
}

func (s *system) freeTaskMsg(tm *taskMsg) {
	tm.inst = nil
	tm.attempt = 0
	tm.done, tm.abandoned = false, false
	tm.watchdog = sim.Timer{}
	tm.nextFree = s.freeTM
	s.freeTM = tm
}

// maybeFree returns the handoff context to the pool once it is settled
// (delivered or abandoned) and no physical copy can still point at it.
func (tm *taskMsg) maybeFree() {
	if tm.outstanding == 0 && (tm.done || tm.abandoned) {
		tm.s.freeTaskMsg(tm)
	}
}

// newInstance recycles an instance from rt's free list (resizing its
// per-stage storage for the current replica counts) or builds a fresh
// one. The PeriodRecord is always freshly allocated: the trace log and
// the monitor retain it beyond the instance's life.
func (s *system) newInstance(rt *runtimeTask, c, items, n int) *instance {
	now := s.eng.Now()
	inst := rt.freeInst
	if inst == nil {
		inst = &instance{
			placements:  make([][]int, n),
			shares:      make([][]int, n),
			halo:        make([]int, n),
			pendingJobs: make([]int, n),
			pendingMsgs: make([][]int, n),
			readyCount:  make([]int, n),
		}
	} else {
		rt.freeInst = inst.nextFree
		inst.nextFree = nil
	}
	inst.rt = rt
	inst.epoch = s.nodeEpoch
	inst.rec = &task.PeriodRecord{
		Period:     c,
		Items:      items,
		ReleasedAt: now,
		Deadline:   now + rt.setup.Spec.Deadline,
		Stages:     make([]task.StageObservation, n),
	}
	return inst
}

func (s *system) releaseInstance(inst *instance) {
	rt := inst.rt
	inst.rt = nil
	inst.rec = nil
	inst.nextFree = rt.freeInst
	rt.freeInst = inst
}

// launch releases one period's instance into the system.
func (s *system) launch(rt *runtimeTask, c, items int) {
	spec := rt.setup.Spec
	n := len(spec.Subtasks)
	inst := s.newInstance(rt, c, items, n)
	for i := 0; i < n; i++ {
		inst.placements[i] = rt.dep.AppendReplicas(i, inst.placements[i][:0])
		k := len(inst.placements[i])
		inst.shares[i] = task.SplitItemsInto(inst.shares[i], items, k)
		inst.halo[i] = 0
		if k > 1 {
			inst.halo[i] = int(s.cfg.OverlapFraction * float64(items))
		}
		inst.pendingJobs[i] = k
		pm := inst.pendingMsgs[i]
		if cap(pm) < k {
			pm = make([]int, k)
		}
		pm = pm[:k]
		kPrev := 0
		if i > 0 {
			kPrev = len(inst.placements[i-1])
		}
		for j := range pm {
			pm[j] = kPrev
		}
		inst.pendingMsgs[i] = pm
		inst.readyCount[i] = 0
		inst.rec.Stages[i].Replicas = k
	}
	rt.inFlight++

	// Record the eq. (3)/(5) forecasts for this period with the ACTUAL
	// item count, pairing each against the observation at completion.
	// Using the true count (not the allocator's one-period-stale view)
	// isolates model quality from workload staleness in the residuals.
	if s.tel.Enabled() {
		chain := rt.estimateChain(s, items, maxInt(s.totalItems(), items))
		for i := 0; i < n; i++ {
			comm := sim.Time(-1) // final stage: no outgoing message
			if i < n-1 {
				comm = chain.Comm[i]
			}
			s.tel.Predict(spec.Name, i, c, chain.Exec[i], comm)
		}
	}

	// Stage 0's inputs (the sensor reports) are available at release.
	inst.rec.Stages[0].ReadyAt = s.nodeNow(inst.placements[0][0])
	for idx := range inst.placements[0] {
		s.submitReplicaJob(inst, 0, idx)
	}
}

// replicaInputItems is the data volume a replica actually processes: its
// share plus the halo of neighbouring tracks it needs for continuity.
func (inst *instance) replicaInputItems(stage, idx int) int {
	return inst.shares[stage][idx] + inst.halo[stage]
}

// submitReplicaJob runs one replica's CPU work for the stage.
func (s *system) submitReplicaJob(inst *instance, stage, idx int) {
	proc := inst.placements[stage][idx]
	spec := inst.rt.setup.Spec
	demand := spec.Subtasks[stage].Demand(inst.replicaInputItems(stage, idx), s.rng)
	if inst.rt.dep.ConsumeWarmup(stage, proc) {
		demand += s.cfg.WarmupDemand
	}
	rj := s.newReplicaJob()
	rj.inst, rj.stage, rj.idx, rj.proc, rj.demand = inst, stage, idx, proc, demand
	rj.job.Name = spec.Subtasks[stage].Name
	rj.job.Demand = demand
	s.procs[proc].Submit(&rj.job)
}

// onComplete is the pooled completion callback for a replica job.
func (rj *replicaJob) onComplete(at sim.Time) {
	s, inst, stage, idx := rj.s, rj.inst, rj.stage, rj.idx
	// Attribute the CPU time to this task so utilization sampling can
	// separate own work from background.
	inst.rt.ownBusy[rj.proc] += rj.demand
	s.tel.RecordExec(inst.rt.setup.Spec.Name, stage, inst.rec.Period, rj.proc,
		inst.replicaInputItems(stage, idx), rj.job.SubmittedAt, rj.job.StartedAt, at)
	// The context is done before replicaDone runs: nothing downstream
	// submits synchronously into this burst, and all fields are copied.
	s.freeReplicaJob(rj)
	s.replicaDone(inst, stage, idx, at)
}

// replicaDone handles one replica's completion: forward its output to
// every replica of the next stage, or complete the instance.
func (s *system) replicaDone(inst *instance, stage, idx int, at sim.Time) {
	inst.pendingJobs[stage]--
	if inst.pendingJobs[stage] == 0 {
		// Observations are timestamped with the completing node's local
		// clock — the "global time scale" of Figure 1 is only as good as
		// the clock synchronization that provides it.
		inst.rec.Stages[stage].DoneAt = s.nodeNow(inst.placements[stage][idx])
	}
	spec := inst.rt.setup.Spec
	if stage == len(spec.Subtasks)-1 {
		if inst.pendingJobs[stage] == 0 {
			inst.rec.Stages[stage].DeliveredAt = inst.rec.Stages[stage].DoneAt
			s.complete(inst)
		}
		return
	}
	next := inst.placements[stage+1]
	srcProc := inst.placements[stage][idx]
	s.perDestBuf = task.SplitItemsInto(s.perDestBuf, inst.shares[stage][idx], len(next))
	s.haloBuf = task.SplitItemsInto(s.haloBuf, inst.halo[stage+1], len(inst.placements[stage]))
	perDest, haloPerMsg := s.perDestBuf, s.haloBuf
	bytesPerItem := spec.Subtasks[stage].OutBytesPerItem
	for j, destProc := range next {
		payloadItems := perDest[j] + haloPerMsg[idx]
		tm := s.newTaskMsg()
		tm.inst, tm.stage, tm.destIdx = inst, stage+1, j
		tm.from, tm.to = srcProc, destProc
		tm.payload = int64(payloadItems * bytesPerItem)
		s.sendTaskMsg(tm)
	}
}

// sendTaskMsg puts one physical copy of the handoff on the segment and,
// when delivery timeouts are configured, arms the retransmission
// watchdog with exponential backoff (timeout doubles per attempt).
func (s *system) sendTaskMsg(tm *taskMsg) {
	m := s.seg.AcquireMessage()
	m.From = tm.from
	m.To = tm.to
	m.PayloadBytes = tm.payload
	m.Meta = tm
	m.OnDeliver = deliverTaskMsg
	m.OnDrop = dropTaskMsg
	tm.outstanding++
	if to := s.cfg.Degradation.DeliveryTimeout; to > 0 {
		tm.watchdog = s.eng.After(to<<uint(tm.attempt), tm.onTimeout)
	}
	s.seg.Send(m)
}

// timeout fires when a handoff's watchdog expires undelivered: resend
// with backoff until the retry budget runs out, then abandon — a stray
// copy may still arrive (the gate is done, not abandoned), but nothing
// new goes on the wire.
func (tm *taskMsg) timeout() {
	if tm.done || tm.abandoned {
		return
	}
	s := tm.s
	if tm.attempt >= s.cfg.Degradation.MaxRetries {
		tm.abandoned = true
		tm.maybeFree()
		return
	}
	tm.attempt++
	s.collector.CountRetransmission()
	s.tel.CountRetransmit()
	s.sendTaskMsg(tm)
}

// dropTaskMsg is the shared OnDrop for task messages: the copy is gone;
// recovery (if any) is the watchdog's job. Pool hygiene only.
func dropTaskMsg(m *network.Message) {
	tm := m.Meta.(*taskMsg)
	s := tm.s
	s.tel.CountMessageDrop()
	s.seg.ReleaseMessage(m)
	tm.outstanding--
	tm.maybeFree()
}

// deliverTaskMsg is the shared OnDeliver for all task messages; the
// per-message context rides in Meta, so no per-send closure is needed.
// The first delivered copy completes the handoff; retransmission
// duplicates are released without a second msgArrived.
func deliverTaskMsg(m *network.Message) {
	tm := m.Meta.(*taskMsg)
	s, inst, stage, destIdx := tm.s, tm.inst, tm.stage, tm.destIdx
	tm.outstanding--
	if tm.done {
		s.seg.ReleaseMessage(m)
		tm.maybeFree()
		return
	}
	tm.done = true
	tm.watchdog.Cancel()
	s.tel.RecordMessage(inst.rt.setup.Spec.Name, stage, inst.rec.Period,
		m.From, m.To, m.PayloadBytes, m.EnqueuedAt, m.SentAt, m.DeliveredAt)
	at := m.DeliveredAt
	tm.maybeFree()
	s.seg.ReleaseMessage(m)
	s.msgArrived(inst, stage, destIdx, at)
}

// msgArrived tracks per-replica input completion for a stage.
func (s *system) msgArrived(inst *instance, stage, destIdx int, at sim.Time) {
	inst.pendingMsgs[stage][destIdx]--
	if inst.pendingMsgs[stage][destIdx] > 0 {
		return
	}
	inst.readyCount[stage]++
	if inst.readyCount[stage] == len(inst.placements[stage]) {
		// Last replica's inputs complete: the stage is observed ready
		// and the previous stage's outputs fully delivered, per the
		// receiving node's clock.
		local := s.nodeNow(inst.placements[stage][destIdx])
		inst.rec.Stages[stage].ReadyAt = local
		inst.rec.Stages[stage-1].DeliveredAt = local
	}
	s.submitReplicaJob(inst, stage, destIdx)
}

// complete finalizes the instance and feeds the monitor.
func (s *system) complete(inst *instance) {
	inst.rec.CompletedAt = s.eng.Now()
	inst.rt.inFlight--
	missed := inst.rec.Missed()
	inst.rt.completed++
	if missed {
		inst.rt.missed++
	}
	s.collector.ObserveCompletion(missed)
	if !missed && len(s.openCrashes) > 0 {
		// First met deadline since the crash(es): the system has
		// recovered. Crash → this completion is the recovery latency.
		for _, at := range s.openCrashes {
			s.collector.ObserveRecoveryLatency(float64(inst.rec.CompletedAt-at) / float64(sim.Millisecond))
		}
		s.openCrashes = s.openCrashes[:0]
	}
	s.log.Record(inst.rec)
	if s.tel.Enabled() {
		rt, rec := inst.rt, inst.rec
		name := rt.setup.Spec.Name
		for _, ss := range rt.mon.StageSlacks(rec) {
			s.tel.RecordStage(name, ss.Stage, rec.Period, ss.Latency, ss.Deadline)
		}
		for i := range rec.Stages {
			comm := sim.Time(-1)
			if i < len(rec.Stages)-1 {
				comm = rec.Stages[i].CommLatency()
			}
			s.tel.ObserveForecast(name, i, rec.Period, rec.Stages[i].ExecLatency(), comm)
		}
		s.tel.RecordEndToEnd(name, rec.Period, rec.EndToEnd(), rt.setup.Spec.Deadline, rec.Missed())
	}
	// A period that straddled a node transition carries observations from
	// a half-crashed world; with a staleness window configured, it does
	// not become the adaptation input (the next clean period will).
	tainted := s.cfg.Degradation.StalenessWindow > 0 && inst.epoch != s.nodeEpoch
	last := inst.rt.lastCompleted
	if !tainted && (last == nil || inst.rec.Period > last.Period) {
		inst.rt.lastCompleted = inst.rec
	}
	// All jobs and messages of this period have finished; the instance
	// can serve the next period.
	s.releaseInstance(inst)
}
