package core

import (
	"fmt"

	"repro/internal/cpu"
	"repro/internal/network"
	"repro/internal/sim"
	"repro/internal/task"
)

// instance is one in-flight period of a task. Replica placement is frozen
// at launch; adaptation between periods changes only future instances.
type instance struct {
	rt  *runtimeTask
	rec *task.PeriodRecord

	placements [][]int // per stage
	shares     [][]int // per stage, input items per replica (without halo)
	halo       []int   // per stage, halo items each replica receives on top

	pendingJobs []int   // outstanding CPU jobs per stage
	pendingMsgs [][]int // per stage, per replica, inputs still in flight
	readyCount  []int   // replicas of the stage whose inputs are complete
}

// taskMessageMeta marks messages the facade records itself (with task,
// stage and period context); the segment-level telemetry observer skips
// them so they are not double-counted as system traffic.
var taskMessageMeta = new(struct{})

// launch releases one period's instance into the system.
func (s *system) launch(rt *runtimeTask, c, items int) {
	spec := rt.setup.Spec
	n := len(spec.Subtasks)
	now := s.eng.Now()
	inst := &instance{
		rt: rt,
		rec: &task.PeriodRecord{
			Period:     c,
			Items:      items,
			ReleasedAt: now,
			Deadline:   now + spec.Deadline,
			Stages:     make([]task.StageObservation, n),
		},
		placements:  make([][]int, n),
		shares:      make([][]int, n),
		halo:        make([]int, n),
		pendingJobs: make([]int, n),
		pendingMsgs: make([][]int, n),
		readyCount:  make([]int, n),
	}
	for i := 0; i < n; i++ {
		inst.placements[i] = rt.dep.Replicas(i)
		k := len(inst.placements[i])
		inst.shares[i] = task.SplitItems(items, k)
		if k > 1 {
			inst.halo[i] = int(s.cfg.OverlapFraction * float64(items))
		}
		inst.pendingJobs[i] = k
		inst.pendingMsgs[i] = make([]int, k)
		if i > 0 {
			kPrev := len(inst.placements[i-1])
			for j := range inst.pendingMsgs[i] {
				inst.pendingMsgs[i][j] = kPrev
			}
		}
		inst.rec.Stages[i].Replicas = k
	}
	rt.inFlight++

	// Record the eq. (3)/(5) forecasts for this period with the ACTUAL
	// item count, pairing each against the observation at completion.
	// Using the true count (not the allocator's one-period-stale view)
	// isolates model quality from workload staleness in the residuals.
	if s.tel.Enabled() {
		chain := rt.estimateChain(s, items, maxInt(s.totalItems(), items))
		for i := 0; i < n; i++ {
			comm := sim.Time(-1) // final stage: no outgoing message
			if i < n-1 {
				comm = chain.Comm[i]
			}
			s.tel.Predict(spec.Name, i, c, chain.Exec[i], comm)
		}
	}

	// Stage 0's inputs (the sensor reports) are available at release.
	inst.rec.Stages[0].ReadyAt = s.nodeNow(inst.placements[0][0])
	for idx := range inst.placements[0] {
		s.submitReplicaJob(inst, 0, idx)
	}
}

// replicaInputItems is the data volume a replica actually processes: its
// share plus the halo of neighbouring tracks it needs for continuity.
func (inst *instance) replicaInputItems(stage, idx int) int {
	return inst.shares[stage][idx] + inst.halo[stage]
}

// submitReplicaJob runs one replica's CPU work for the stage.
func (s *system) submitReplicaJob(inst *instance, stage, idx int) {
	proc := inst.placements[stage][idx]
	spec := inst.rt.setup.Spec
	demand := spec.Subtasks[stage].Demand(inst.replicaInputItems(stage, idx), s.rng)
	if inst.rt.dep.ConsumeWarmup(stage, proc) {
		demand += s.cfg.WarmupDemand
	}
	j := &cpu.Job{
		Name:   fmt.Sprintf("%s/%s#%d.%d", spec.Name, spec.Subtasks[stage].Name, inst.rec.Period, idx),
		Demand: demand,
	}
	j.OnComplete = func(at sim.Time) {
		// Attribute the CPU time to this task so utilization
		// sampling can separate own work from background.
		inst.rt.ownBusy[proc] += demand
		s.tel.RecordExec(spec.Name, stage, inst.rec.Period, proc,
			inst.replicaInputItems(stage, idx), j.SubmittedAt, j.StartedAt, at)
		s.replicaDone(inst, stage, idx, at)
	}
	s.procs[proc].Submit(j)
}

// replicaDone handles one replica's completion: forward its output to
// every replica of the next stage, or complete the instance.
func (s *system) replicaDone(inst *instance, stage, idx int, at sim.Time) {
	inst.pendingJobs[stage]--
	if inst.pendingJobs[stage] == 0 {
		// Observations are timestamped with the completing node's local
		// clock — the "global time scale" of Figure 1 is only as good as
		// the clock synchronization that provides it.
		inst.rec.Stages[stage].DoneAt = s.nodeNow(inst.placements[stage][idx])
	}
	spec := inst.rt.setup.Spec
	if stage == len(spec.Subtasks)-1 {
		if inst.pendingJobs[stage] == 0 {
			inst.rec.Stages[stage].DeliveredAt = inst.rec.Stages[stage].DoneAt
			s.complete(inst)
		}
		return
	}
	next := inst.placements[stage+1]
	srcProc := inst.placements[stage][idx]
	perDest := task.SplitItems(inst.shares[stage][idx], len(next))
	haloPerMsg := task.SplitItems(inst.halo[stage+1], len(inst.placements[stage]))
	bytesPerItem := spec.Subtasks[stage].OutBytesPerItem
	for j, destProc := range next {
		j, destProc := j, destProc
		payloadItems := perDest[j] + haloPerMsg[idx]
		s.seg.Send(&network.Message{
			From:         srcProc,
			To:           destProc,
			PayloadBytes: int64(payloadItems * bytesPerItem),
			Meta:         taskMessageMeta,
			OnDeliver: func(m *network.Message) {
				s.tel.RecordMessage(spec.Name, stage+1, inst.rec.Period,
					m.From, m.To, m.PayloadBytes, m.EnqueuedAt, m.SentAt, m.DeliveredAt)
				s.msgArrived(inst, stage+1, j, m.DeliveredAt)
			},
		})
	}
}

// msgArrived tracks per-replica input completion for a stage.
func (s *system) msgArrived(inst *instance, stage, destIdx int, at sim.Time) {
	inst.pendingMsgs[stage][destIdx]--
	if inst.pendingMsgs[stage][destIdx] > 0 {
		return
	}
	inst.readyCount[stage]++
	if inst.readyCount[stage] == len(inst.placements[stage]) {
		// Last replica's inputs complete: the stage is observed ready
		// and the previous stage's outputs fully delivered, per the
		// receiving node's clock.
		local := s.nodeNow(inst.placements[stage][destIdx])
		inst.rec.Stages[stage].ReadyAt = local
		inst.rec.Stages[stage-1].DeliveredAt = local
	}
	s.submitReplicaJob(inst, stage, destIdx)
}

// complete finalizes the instance and feeds the monitor.
func (s *system) complete(inst *instance) {
	inst.rec.CompletedAt = s.eng.Now()
	inst.rt.inFlight--
	s.collector.ObserveCompletion(inst.rec.Missed())
	s.log.Record(inst.rec)
	if s.tel.Enabled() {
		rt, rec := inst.rt, inst.rec
		name := rt.setup.Spec.Name
		for _, ss := range rt.mon.StageSlacks(rec) {
			s.tel.RecordStage(name, ss.Stage, rec.Period, ss.Latency, ss.Deadline)
		}
		for i := range rec.Stages {
			comm := sim.Time(-1)
			if i < len(rec.Stages)-1 {
				comm = rec.Stages[i].CommLatency()
			}
			s.tel.ObserveForecast(name, i, rec.Period, rec.Stages[i].ExecLatency(), comm)
		}
		s.tel.RecordEndToEnd(name, rec.Period, rec.EndToEnd(), rt.setup.Spec.Deadline, rec.Missed())
	}
	last := inst.rt.lastCompleted
	if last == nil || inst.rec.Period > last.Period {
		inst.rt.lastCompleted = inst.rec
	}
}
