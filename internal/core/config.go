// Package core is the paper's adaptive resource-management system
// assembled end to end: it builds the Table 1 cluster (six homogeneous
// nodes with round-robin CPU scheduling on a shared 100 Mbit/s Ethernet
// segment), deploys periodic pipeline tasks on it, drives them with a
// workload pattern, monitors subtask slack against EQF deadlines, and
// adapts replica placement each period with either the predictive
// (Figure 5) or the non-predictive (Figure 7) allocator.
package core

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/cpu"
	"repro/internal/monitor"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Algorithm names the allocation policy driving step 2 of the management
// process. Every name resolves through the internal/policy registry; the
// constants below are the built-ins.
type Algorithm string

// The two algorithms compared in §5, the extension baselines, and the
// graceful-degradation policies.
const (
	// Predictive is the paper's contribution (Figure 5).
	Predictive Algorithm = "predictive"
	// NonPredictive is the paper's baseline (Figure 7).
	NonPredictive Algorithm = "non-predictive"
	// Greedy adds one replica per trigger with no forecast (extension).
	Greedy Algorithm = "greedy"
	// StaticMax replicates everything everywhere up front and never
	// adapts (extension; the maximum-concurrency bound).
	StaticMax Algorithm = "static-max"
	// PeriodStretch degrades under overload by elastically stretching the
	// effective period within configured bounds (Dwivedi,
	// arXiv:1212.3502) before spending replicas.
	PeriodStretch Algorithm = "period-stretch"
	// ImpreciseShed degrades under overload by shedding optional parts of
	// each period's items, mandatory parts untouched (El-Haweet et al.,
	// arXiv:1306.0448).
	ImpreciseShed Algorithm = "imprecise-shed"
)

// ValidAlgorithm reports whether a names a registered allocation policy.
func ValidAlgorithm(a Algorithm) bool {
	return policy.Registered(string(a))
}

// Algorithms returns every registered policy name in registration order.
func Algorithms() []Algorithm {
	names := policy.Names()
	out := make([]Algorithm, len(names))
	for i, n := range names {
		out[i] = Algorithm(n)
	}
	return out
}

// AlgorithmNames returns the registered policy names joined for flag
// help and error messages.
func AlgorithmNames() string {
	var b strings.Builder
	for i, n := range policy.Names() {
		if i > 0 {
			b.WriteString(" | ")
		}
		b.WriteString(n)
	}
	return b.String()
}

// Config holds the system parameters; DefaultConfig reproduces Table 1.
type Config struct {
	// NumNodes is the processor count (Table 1: 6).
	NumNodes int
	// Slice is the round-robin quantum (Table 1: 1 ms).
	Slice sim.Time
	// Discipline selects the CPU scheduling policy; Table 1 fixes
	// round-robin, FIFO and processor sharing are ablation alternatives.
	Discipline cpu.Discipline
	// Network configures the shared segment (Table 1: 100 Mbit/s).
	Network network.Config
	// Monitor holds the slack thresholds (paper: sl = 0.2·dl).
	Monitor monitor.Config
	// UtilThreshold is the non-predictive algorithm's UT (Table 1: 20 %).
	UtilThreshold float64
	// WarmupDemand is the one-time CPU cost charged to a freshly spawned
	// replica on its first period (process start-up).
	WarmupDemand sim.Time
	// OverlapFraction is the halo of the data stream each replica
	// receives beyond its share when a stage is partitioned, keeping the
	// continuous track objects temporally consistent across the split
	// (§3 item 7). It is what makes over-replication cost network
	// bandwidth.
	OverlapFraction float64
	// Seed drives all randomness in the run.
	Seed uint64

	// Lanes ≥ 2 partitions the system into that many equal network
	// segments ("lanes"): lane l owns nodes [l·NumNodes/Lanes,
	// (l+1)·NumNodes/Lanes) with a segment of its own, tasks are confined
	// to one lane each (nil Homes sends task i to lane i mod Lanes), and
	// the lanes exchange per-segment workload reports over a fixed-latency
	// uplink so eq. (5)'s Σ-items input stays global. Requires
	// NumNodes % Lanes == 0. Lanes ≤ 1 — the default — keeps the
	// single-segment system on the exact single-threaded code path.
	Lanes int
	// Parallel is the worker-goroutine count driving a Lanes ≥ 2 run:
	// 0 picks one worker per available CPU (capped at Lanes), 1 runs the
	// lanes serially on one goroutine. Results are byte-identical for
	// every value — Parallel trades wall-clock only — so it is excluded
	// from the run fingerprint. No effect when Lanes ≤ 1.
	Parallel int

	// ClockSync, when enabled, gives every node a drifting local clock,
	// disciplines the clocks with a Mills-style synchronizer over the
	// shared segment (§3 item 12 made operational: the NTP traffic rides
	// the same wire), and timestamps the monitor's stage observations
	// with the node-local clocks instead of true simulation time.
	ClockSync bool
	// ClockDriftPPM bounds each node's random drift rate (± this value).
	ClockDriftPPM float64
	// ClockInitialOffset bounds each node's random initial offset.
	ClockInitialOffset sim.Time
	// ClockSyncPeriod is the synchronizer's exchange period.
	ClockSyncPeriod sim.Time

	// Faults injects node crashes: survivability through replication is
	// the motivation the paper opens with, and fail-over exercises the
	// same allocation machinery as workload adaptation.
	Faults []Fault

	// Chaos, when enabled, compiles stochastic per-node crash/repair
	// processes and transient segment partitions (internal/chaos) into
	// the fault schedule at run start, deterministically from Seed. The
	// zero value is fully off and changes nothing.
	Chaos chaos.Config

	// Degradation hardens the adaptation loop against chaos. The zero
	// value disables every mechanism so clean runs are byte-identical to
	// a build without it; HardenedDegradation returns sane defaults.
	Degradation Degradation

	// Policy carries the knobs of the registered allocation policies
	// (period-stretch bounds, imprecise-shed fractions). The zero value
	// means the policy package's defaults; algorithms that ignore a knob
	// are unaffected by it, but every field still feeds the run
	// fingerprint.
	Policy policy.Config

	// Telemetry, when non-nil, receives spans, metrics and forecast
	// residuals from the run (see internal/telemetry). Nil — the default —
	// disables collection; every instrumentation site degrades to a single
	// nil check.
	Telemetry *telemetry.Recorder
}

// Fault is one injected node crash. Duration 0 means the node never
// recovers.
type Fault struct {
	Node     int
	At       sim.Time
	Duration sim.Time
}

// Degradation configures the hardening mechanisms that keep the
// adaptation loop honest when nodes flap and messages vanish. Every
// field gates its mechanism independently; all-zero means all-off.
type Degradation struct {
	// DeliveryTimeout arms a watchdog on every inter-subtask message:
	// if a stage handoff is not delivered within the timeout it is
	// retransmitted. Backoff doubles per attempt. 0 disables detection —
	// a dropped message then loses the period.
	DeliveryTimeout sim.Time
	// MaxRetries bounds retransmissions per message (attempts beyond the
	// original send). After the budget the handoff is abandoned.
	MaxRetries int
	// StalenessWindow discards slack readings older than this when the
	// monitor analyzes a period, and taints readings from periods that
	// straddled a crash or recovery. 0 keeps every reading forever.
	StalenessWindow sim.Time
	// CooldownPeriods suppresses shutdowns for this many periods after a
	// node goes down or comes back, so a flapping node does not thrash
	// replicas off stages that are about to need them. Replication stays
	// responsive — the hysteresis is one-sided. 0 disables.
	CooldownPeriods int
	// FallbackUtil substitutes for a node's measured utilization while
	// its measurement window overlaps a crash (a down node's idle meter
	// would otherwise read 0 and attract every new replica). 0 disables.
	FallbackUtil float64
}

// HardenedDegradation returns the defaults used by the ext-chaos
// experiment: 100 ms delivery timeout with 3 retries, a 3 s staleness
// window, 2 periods of shutdown cooldown, and 0.5 fallback utilization.
func HardenedDegradation() Degradation {
	return Degradation{
		DeliveryTimeout: 100 * sim.Millisecond,
		MaxRetries:      3,
		StalenessWindow: 3 * sim.Second,
		CooldownPeriods: 2,
		FallbackUtil:    0.5,
	}
}

func (d Degradation) validate() error {
	var errs []error
	if d.DeliveryTimeout < 0 || d.StalenessWindow < 0 {
		errs = append(errs, fmt.Errorf("core: negative degradation timeout/window"))
	}
	if d.MaxRetries < 0 || d.CooldownPeriods < 0 {
		errs = append(errs, fmt.Errorf("core: negative degradation retry/cooldown count"))
	}
	if d.FallbackUtil < 0 || d.FallbackUtil > 1 {
		errs = append(errs, fmt.Errorf("core: fallback utilization %v out of [0,1]", d.FallbackUtil))
	}
	return errors.Join(errs...)
}

// DefaultConfig returns the Table 1 baseline.
func DefaultConfig() Config {
	return Config{
		NumNodes:        6,
		Slice:           sim.Millisecond,
		Network:         network.DefaultConfig(),
		Monitor:         monitor.DefaultConfig(),
		UtilThreshold:   0.2,
		WarmupDemand:    25 * sim.Millisecond,
		OverlapFraction: 0.10,
		Seed:            1,

		ClockSync:          false,
		ClockDriftPPM:      50,
		ClockInitialOffset: 5 * sim.Millisecond,
		ClockSyncPeriod:    250 * sim.Millisecond,
	}
}

// Validate reports configuration errors. Every invalid field is
// collected into one joined error (one line per problem) instead of
// stopping at the first, so CLI and API callers can surface the whole
// diagnosis at once.
func (c Config) Validate() error {
	var errs []error
	if c.NumNodes < 1 {
		errs = append(errs, fmt.Errorf("core: need ≥1 node, got %d", c.NumNodes))
	}
	if c.Slice <= 0 {
		errs = append(errs, fmt.Errorf("core: non-positive slice %v", c.Slice))
	}
	if c.UtilThreshold <= 0 || c.UtilThreshold > 1 {
		errs = append(errs, fmt.Errorf("core: utilization threshold %v out of (0,1]", c.UtilThreshold))
	}
	if c.WarmupDemand < 0 {
		errs = append(errs, fmt.Errorf("core: negative warm-up demand %v", c.WarmupDemand))
	}
	if c.OverlapFraction < 0 || c.OverlapFraction >= 1 {
		errs = append(errs, fmt.Errorf("core: overlap fraction %v out of [0,1)", c.OverlapFraction))
	}
	if c.Lanes < 0 {
		errs = append(errs, fmt.Errorf("core: negative lane count %d", c.Lanes))
	}
	if c.Parallel < 0 {
		errs = append(errs, fmt.Errorf("core: negative parallel worker count %d", c.Parallel))
	}
	if c.Lanes >= 2 && c.NumNodes%c.Lanes != 0 {
		errs = append(errs, fmt.Errorf("core: %d lanes must evenly partition %d nodes", c.Lanes, c.NumNodes))
	}
	if c.ClockSync {
		if c.ClockDriftPPM < 0 || c.ClockInitialOffset < 0 {
			errs = append(errs, fmt.Errorf("core: negative clock drift/offset bounds"))
		}
		if c.ClockSyncPeriod <= 0 {
			errs = append(errs, fmt.Errorf("core: non-positive clock sync period %v", c.ClockSyncPeriod))
		}
	}
	for i, f := range c.Faults {
		if f.Node < 0 || f.Node >= c.NumNodes {
			errs = append(errs, fmt.Errorf("core: fault %d targets node %d outside [0,%d)", i, f.Node, c.NumNodes))
		}
		if f.At < 0 || f.Duration < 0 {
			errs = append(errs, fmt.Errorf("core: fault %d with negative time", i))
		}
	}
	if err := c.Chaos.Validate(); err != nil {
		errs = append(errs, err)
	}
	if err := c.Degradation.validate(); err != nil {
		errs = append(errs, err)
	}
	if err := c.Policy.Validate(); err != nil {
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// TaskSetup binds one periodic task to its workload pattern and fitted
// regression models (the models serve both the predictive allocator and
// EQF deadline estimation, which both algorithms share per §4.1).
type TaskSetup struct {
	Spec    task.Spec
	Pattern workload.Pattern
	// Homes optionally places subtask i's original process; when nil,
	// subtask i goes to node i mod NumNodes.
	Homes []int
	// Exec holds one fitted eq. (3) model per subtask.
	Exec []regress.ExecModel
	// Comm is the fitted eq. (4)–(6) model.
	Comm regress.CommModel
}

func (ts TaskSetup) validate(numNodes int) error {
	if err := ts.Spec.Validate(); err != nil {
		return err
	}
	if ts.Pattern == nil {
		return fmt.Errorf("core: task %s without a workload pattern", ts.Spec.Name)
	}
	if len(ts.Exec) != len(ts.Spec.Subtasks) {
		return fmt.Errorf("core: task %s has %d exec models for %d subtasks",
			ts.Spec.Name, len(ts.Exec), len(ts.Spec.Subtasks))
	}
	if err := ts.Comm.Validate(); err != nil {
		return err
	}
	if ts.Homes != nil {
		if len(ts.Homes) != len(ts.Spec.Subtasks) {
			return fmt.Errorf("core: task %s has %d homes for %d subtasks",
				ts.Spec.Name, len(ts.Homes), len(ts.Spec.Subtasks))
		}
		for _, h := range ts.Homes {
			if h < 0 || h >= numNodes {
				return fmt.Errorf("core: task %s home %d outside [0,%d)", ts.Spec.Name, h, numNodes)
			}
		}
	}
	return nil
}
