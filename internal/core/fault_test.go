package core

import (
	"testing"
	"testing/quick"

	"repro/internal/dynbench"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// faultCfg crashes the Filter subtask's home node (node 2) mid-period at
// t = 10.2 s — while the Filter job of period 10 is executing — and
// recovers it at 25.2 s.
func faultCfg() Config {
	cfg := DefaultConfig()
	cfg.Faults = []Fault{{Node: dynbench.FilterStage, At: 10200 * sim.Millisecond, Duration: 15 * sim.Second}}
	return cfg
}

func TestFaultValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = []Fault{{Node: 9, At: sim.Second}}
	if err := cfg.Validate(); err == nil {
		t.Error("out-of-range fault node accepted")
	}
	cfg.Faults = []Fault{{Node: 0, At: -1}}
	if err := cfg.Validate(); err == nil {
		t.Error("negative fault time accepted")
	}
}

func TestSoleReplicaFailsOver(t *testing.T) {
	// Low constant workload: no replication, so the crash takes out the
	// only Filter process and fail-over must relocate it.
	res, err := Run(faultCfg(), Predictive,
		[]TaskSetup{benchSetup(workload.NewConstant(5000, 40))})
	if err != nil {
		t.Fatal(err)
	}
	var downs, ups, failovers int
	for _, e := range res.Events {
		switch e.Kind {
		case trace.ActionNodeDown:
			downs++
		case trace.ActionNodeUp:
			ups++
		case trace.ActionFailover:
			failovers++
		}
	}
	if downs != 1 || ups != 1 {
		t.Errorf("downs=%d ups=%d, want 1 each", downs, ups)
	}
	if failovers == 0 {
		t.Fatal("no fail-over event despite losing the Filter node")
	}
	m := res.Metrics
	// The in-flight instance at crash time is lost; everything after the
	// next monitoring cycle completes.
	if m.Completed >= m.Periods {
		t.Error("no instance lost to the crash")
	}
	if m.Periods-m.Completed > 3 {
		t.Errorf("%d instances lost; fail-over too slow", m.Periods-m.Completed)
	}
	if m.MissedPct() == 0 {
		t.Error("lost instances did not count as missed")
	}
	// The relocated Filter keeps the pipeline alive through the outage:
	// late periods all complete.
	completedLate := 0
	for _, r := range res.Records {
		if r.Period >= 30 {
			completedLate++
		}
	}
	if completedLate != 10 {
		t.Errorf("late periods completed = %d of 10", completedLate)
	}
}

func TestReplicatedStageSurvivesCrash(t *testing.T) {
	// High workload → Filter replicated before the crash; losing one
	// replica must not take the pipeline down.
	cfg := faultCfg()
	res, err := Run(cfg, NonPredictive,
		[]TaskSetup{benchSetup(workload.NewConstant(9000, 40))})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Periods-m.Completed > 3 {
		t.Errorf("%d instances lost despite replication", m.Periods-m.Completed)
	}
}

func TestNoPlacementOnDeadNode(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = []Fault{{Node: 5, At: 2 * sim.Second}} // node 5 is idle spare; permanent crash
	res, err := Run(cfg, Predictive,
		[]TaskSetup{benchSetup(workload.NewIncreasingRamp(500, 12000, 60))})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range res.Events {
		if e.Kind != trace.ActionReplicate {
			continue
		}
		for _, p := range e.Procs {
			if p == 5 && e.At > 2*sim.Second {
				t.Fatalf("replica placed on dead node at %v", e.At)
			}
		}
	}
	if res.Metrics.Replications == 0 {
		t.Error("ramp never triggered replication")
	}
}

func TestRecoveredNodeReused(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Faults = []Fault{{Node: 5, At: 2 * sim.Second, Duration: 10 * sim.Second}}
	res, err := Run(cfg, NonPredictive,
		[]TaskSetup{benchSetup(workload.NewIncreasingRamp(500, 14000, 60))})
	if err != nil {
		t.Fatal(err)
	}
	reused := false
	for _, e := range res.Events {
		if e.Kind == trace.ActionReplicate && e.At > 12*sim.Second {
			for _, p := range e.Procs {
				if p == 5 {
					reused = true
				}
			}
		}
	}
	if !reused {
		t.Error("recovered node never received a replica")
	}
}

// Property: any bounded fault schedule leaves the system deterministic
// and sane — the run terminates, no panics, metrics within range, and
// at most the crashed periods are lost.
func TestPropertyChaosFaults(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) > 6 {
			raw = raw[:6]
		}
		cfg := DefaultConfig()
		for _, r := range raw {
			cfg.Faults = append(cfg.Faults, Fault{
				Node:     int(r) % cfg.NumNodes,
				At:       sim.Time(r%37) * sim.Second,
				Duration: sim.Time(r%11) * sim.Second,
			})
		}
		res, err := Run(cfg, Predictive,
			[]TaskSetup{benchSetup(workload.NewTriangular(500, 8000, 40, 1))})
		if err != nil {
			t.Log(err)
			return false
		}
		m := res.Metrics
		if m.MeanCPUUtil < 0 || m.MeanCPUUtil > 1 || m.MeanNetUtil < 0 || m.MeanNetUtil > 1 {
			return false
		}
		if m.Completed > m.Periods {
			return false
		}
		// With at most 6 transient crashes, the vast majority of the 40
		// instances must still complete.
		return m.Completed >= 25
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
