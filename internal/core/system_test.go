package core

import (
	"testing"

	"repro/internal/dynbench"
	"repro/internal/regress"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/workload"
)

// benchSetup builds the Table 1 benchmark task with ground-truth models —
// the fast path for unit tests (experiments profile the models instead).
func benchSetup(pattern workload.Pattern) TaskSetup {
	spec := dynbench.NewTask(dynbench.DefaultConfig())
	exec := make([]regress.ExecModel, len(spec.Subtasks))
	for i := range exec {
		exec[i] = dynbench.GroundTruthExec(i)
	}
	net := DefaultConfig().Network
	return TaskSetup{
		Spec:    spec,
		Pattern: pattern,
		Exec:    exec,
		Comm: regress.CommModel{
			K:                       regress.PaperBufferSlopeK,
			LinkBps:                 net.BandwidthBps,
			BytesPerItem:            dynbench.TrackBytes,
			PerMessageOverheadBytes: net.PerMessageOverheadBytes,
			FrameOverheadBytes:      net.FrameOverheadBytes,
			MTU:                     net.MTU,
		},
	}
}

func run(t *testing.T, alg Algorithm, pattern workload.Pattern) Result {
	t.Helper()
	res, err := Run(DefaultConfig(), alg, []TaskSetup{benchSetup(pattern)})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLowConstantWorkloadNoAdaptation(t *testing.T) {
	res := run(t, Predictive, workload.NewConstant(500, 20))
	m := res.Metrics
	if m.Completed != 20 {
		t.Fatalf("completed %d of 20", m.Completed)
	}
	if m.Missed != 0 {
		t.Errorf("missed %d at trivial workload", m.Missed)
	}
	if m.Replications != 0 || m.Shutdowns != 0 {
		t.Errorf("adaptation at trivial workload: %+v", m)
	}
	if m.MeanReplicas != 1 {
		t.Errorf("mean replicas = %v, want 1", m.MeanReplicas)
	}
}

func TestStepWorkloadTriggersPredictiveReplication(t *testing.T) {
	res := run(t, Predictive, workload.NewStep(500, 8000, 30, 10))
	m := res.Metrics
	if m.Completed != 30 {
		t.Fatalf("completed %d of 30", m.Completed)
	}
	if m.Replications == 0 {
		t.Fatal("no replication after the workload step")
	}
	// After adaptation settles, instances meet their deadlines: the tail
	// of the run must be clean.
	missedLate := 0
	for _, r := range res.Records {
		if r.Period >= 15 && r.Missed() {
			missedLate++
		}
	}
	if missedLate > 2 {
		t.Errorf("%d misses after adaptation settled", missedLate)
	}
	// The replicate events must target the replicable stages only.
	for _, e := range res.Events {
		if e.Kind == trace.ActionReplicate &&
			e.Stage != dynbench.FilterStage && e.Stage != dynbench.EvalDecideStage {
			t.Errorf("replicated non-replicable stage %d", e.Stage)
		}
	}
}

func TestNonPredictiveReplicatesAggressively(t *testing.T) {
	// Figure 9(d)'s pattern: under the fluctuating triangular workload
	// the threshold heuristic holds more replicas on average than the
	// forecast-driven allocator.
	pattern := workload.NewTriangular(500, 10000, 120, 2)
	pres := run(t, Predictive, pattern)
	npres := run(t, NonPredictive, pattern)
	if npres.Metrics.Replications == 0 {
		t.Fatal("non-predictive never replicated")
	}
	if npres.Metrics.MeanReplicas <= pres.Metrics.MeanReplicas {
		t.Errorf("non-predictive mean replicas %v ≤ predictive %v (paper Figure 9d inverts this)",
			npres.Metrics.MeanReplicas, pres.Metrics.MeanReplicas)
	}
}

func TestDecreasingWorkloadShedsReplicas(t *testing.T) {
	res := run(t, Predictive, workload.NewDecreasingRamp(500, 10000, 40))
	if res.Metrics.Replications == 0 {
		t.Fatal("high initial workload never triggered replication")
	}
	if res.Metrics.Shutdowns == 0 {
		t.Error("falling workload never shed a replica")
	}
}

func TestDeterministicRuns(t *testing.T) {
	pattern := workload.NewTriangular(500, 9000, 30, 1)
	a := run(t, Predictive, pattern)
	b := run(t, Predictive, pattern)
	if a.Metrics != b.Metrics {
		t.Errorf("same-seed runs diverged:\n%+v\n%+v", a.Metrics, b.Metrics)
	}
	if len(a.Records) != len(b.Records) {
		t.Fatal("record counts diverged")
	}
	for i := range a.Records {
		if a.Records[i].EndToEnd() != b.Records[i].EndToEnd() {
			t.Fatalf("record %d latency diverged", i)
		}
	}
}

func TestSeedChangesOutcomeDetails(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 99
	pattern := workload.NewTriangular(500, 9000, 30, 1)
	a, err := Run(cfg, Predictive, []TaskSetup{benchSetup(pattern)})
	if err != nil {
		t.Fatal(err)
	}
	b := run(t, Predictive, pattern)
	same := true
	for i := range a.Records {
		if i >= len(b.Records) || a.Records[i].EndToEnd() != b.Records[i].EndToEnd() {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical latency traces")
	}
}

func TestMetricsSanity(t *testing.T) {
	res := run(t, NonPredictive, workload.NewTriangular(500, 12000, 40, 2))
	m := res.Metrics
	if m.MeanCPUUtil < 0 || m.MeanCPUUtil > 1 {
		t.Errorf("CPU util %v out of [0,1]", m.MeanCPUUtil)
	}
	if m.MeanNetUtil < 0 || m.MeanNetUtil > 1 {
		t.Errorf("net util %v out of [0,1]", m.MeanNetUtil)
	}
	if m.MeanReplicas < 1 || m.MeanReplicas > 6 {
		t.Errorf("mean replicas %v out of [1,6]", m.MeanReplicas)
	}
	if m.Completed != m.Periods {
		t.Errorf("completed %d of %d periods", m.Completed, m.Periods)
	}
	if m.Combined() <= 0 {
		t.Error("combined metric not positive on a loaded run")
	}
}

func TestMultiTaskRun(t *testing.T) {
	s1 := benchSetup(workload.NewConstant(2000, 15))
	s2 := benchSetup(workload.NewConstant(1500, 15))
	s2.Spec.Name = "AAW-2"
	s2.Homes = []int{3, 4, 5, 0, 1} // offset placement
	res, err := Run(DefaultConfig(), Predictive, []TaskSetup{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Completed != 30 {
		t.Errorf("completed %d of 30 instances across two tasks", res.Metrics.Completed)
	}
}

func TestRunValidation(t *testing.T) {
	good := benchSetup(workload.NewConstant(100, 2))
	if _, err := Run(DefaultConfig(), "bogus", []TaskSetup{good}); err == nil {
		t.Error("unknown algorithm accepted")
	}
	if _, err := Run(DefaultConfig(), Predictive, nil); err == nil {
		t.Error("empty task set accepted")
	}
	bad := DefaultConfig()
	bad.NumNodes = 0
	if _, err := Run(bad, Predictive, []TaskSetup{good}); err == nil {
		t.Error("zero nodes accepted")
	}
	short := good
	short.Exec = short.Exec[:2]
	if _, err := Run(DefaultConfig(), Predictive, []TaskSetup{short}); err == nil {
		t.Error("short exec models accepted")
	}
	noPattern := good
	noPattern.Pattern = nil
	if _, err := Run(DefaultConfig(), Predictive, []TaskSetup{noPattern}); err == nil {
		t.Error("missing pattern accepted")
	}
	badHomes := good
	badHomes.Homes = []int{0, 1, 2, 3, 99}
	if _, err := Run(DefaultConfig(), Predictive, []TaskSetup{badHomes}); err == nil {
		t.Error("out-of-range home accepted")
	}
}

func TestConfigValidate(t *testing.T) {
	cases := map[string]func(Config) Config{
		"nodes":   func(c Config) Config { c.NumNodes = 0; return c },
		"slice":   func(c Config) Config { c.Slice = 0; return c },
		"ut":      func(c Config) Config { c.UtilThreshold = 0; return c },
		"warmup":  func(c Config) Config { c.WarmupDemand = -1; return c },
		"overlap": func(c Config) Config { c.OverlapFraction = 1; return c },
	}
	for name, mutate := range cases {
		if err := mutate(DefaultConfig()).Validate(); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config invalid: %v", err)
	}
}

func TestZeroWorkloadPeriods(t *testing.T) {
	res := run(t, Predictive, workload.NewConstant(0, 5))
	if res.Metrics.Completed != 5 {
		t.Fatalf("completed %d of 5 zero-item periods", res.Metrics.Completed)
	}
	if res.Metrics.Missed != 0 {
		t.Error("zero-item periods missed deadlines")
	}
}

func TestRecordsCarryStageObservations(t *testing.T) {
	res := run(t, Predictive, workload.NewConstant(3000, 5))
	for _, r := range res.Records {
		if len(r.Stages) != 5 {
			t.Fatalf("record has %d stages", len(r.Stages))
		}
		var sum sim.Time
		for i, st := range r.Stages {
			if st.DoneAt < st.ReadyAt {
				t.Errorf("period %d stage %d done before ready", r.Period, i)
			}
			if st.DeliveredAt < st.DoneAt {
				t.Errorf("period %d stage %d delivered before done", r.Period, i)
			}
			sum += st.ExecLatency() + st.CommLatency()
		}
		if sum > r.EndToEnd()+sim.Millisecond {
			t.Errorf("stage latencies %v exceed end-to-end %v", sum, r.EndToEnd())
		}
	}
}
