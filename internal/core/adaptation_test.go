package core

import (
	"testing"

	"repro/internal/cpu"
	"repro/internal/dynbench"
	"repro/internal/trace"
	"repro/internal/workload"
)

func TestAdaptationOnlyAtPeriodBoundaries(t *testing.T) {
	res := run(t, Predictive, workload.NewStep(500, 9000, 30, 10))
	for _, e := range res.Events {
		if e.At%dynbench.Period != 0 {
			t.Fatalf("adaptation at %v, not a period boundary", e.At)
		}
	}
}

func TestAllocFailureLogged(t *testing.T) {
	// Near saturation the EQF windows shrink below what even six
	// replicas can forecast, so Figure 5 returns FAILURE and the runner
	// records it.
	res := run(t, Predictive, workload.NewTriangular(500, 14000, 120, 2))
	m := res.Metrics
	if m.AllocFailures == 0 {
		t.Fatal("no allocation failures near saturation")
	}
	failEvents := 0
	for _, e := range res.Events {
		if e.Kind == trace.ActionAllocFailure {
			failEvents++
		}
	}
	if failEvents != m.AllocFailures {
		t.Errorf("failure events %d != metric %d", failEvents, m.AllocFailures)
	}
}

func TestReplicaCountsNeverExceedNodes(t *testing.T) {
	res := run(t, NonPredictive, workload.NewTriangular(500, 17500, 120, 2))
	for _, r := range res.Records {
		for i, st := range r.Stages {
			if st.Replicas < 1 || st.Replicas > 6 {
				t.Fatalf("period %d stage %d replicas = %d", r.Period, i, st.Replicas)
			}
		}
	}
}

func TestOnlyReplicableStagesEverReplicated(t *testing.T) {
	res := run(t, NonPredictive, workload.NewTriangular(500, 14000, 120, 2))
	for _, r := range res.Records {
		for i, st := range r.Stages {
			if i != dynbench.FilterStage && i != dynbench.EvalDecideStage && st.Replicas != 1 {
				t.Fatalf("non-replicable stage %d ran %d replicas", i, st.Replicas)
			}
		}
	}
}

func TestGreedyAndStaticRunViaCore(t *testing.T) {
	pattern := workload.NewTriangular(500, 9000, 40, 1)
	g, err := Run(DefaultConfig(), Greedy, []TaskSetup{benchSetup(pattern)})
	if err != nil {
		t.Fatal(err)
	}
	if g.Metrics.Completed != 40 {
		t.Errorf("greedy completed %d of 40", g.Metrics.Completed)
	}
	s, err := Run(DefaultConfig(), StaticMax, []TaskSetup{benchSetup(pattern)})
	if err != nil {
		t.Fatal(err)
	}
	if s.Metrics.Completed != 40 {
		t.Errorf("static completed %d of 40", s.Metrics.Completed)
	}
	// Static holds every replicable stage at six replicas and never acts.
	if s.Metrics.MeanReplicas != 6 {
		t.Errorf("static mean replicas = %v, want 6", s.Metrics.MeanReplicas)
	}
	if s.Metrics.Replications != 0 || s.Metrics.Shutdowns != 0 {
		t.Error("static adapted")
	}
}

func TestShutdownsFollowHighSlack(t *testing.T) {
	// Rise then collapse: the predictive allocator must shed replicas
	// after the collapse, and every shutdown event must target a
	// replicable stage.
	res := run(t, Predictive, workload.NewTriangular(500, 12000, 60, 1))
	var sawShutdownAfterPeak bool
	for _, e := range res.Events {
		if e.Kind != trace.ActionShutdown {
			continue
		}
		if e.Stage != dynbench.FilterStage && e.Stage != dynbench.EvalDecideStage {
			t.Fatalf("shutdown on non-replicable stage %d", e.Stage)
		}
		if e.Period > 30 {
			sawShutdownAfterPeak = true
		}
	}
	if !sawShutdownAfterPeak {
		t.Error("no shutdowns on the falling half of the triangle")
	}
}

func TestProcessorDisciplineConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Discipline = cpu.ProcessorSharing
	res, err := Run(cfg, Predictive, []TaskSetup{benchSetup(workload.NewConstant(4000, 10))})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Completed != 10 {
		t.Errorf("completed %d of 10 under processor sharing", res.Metrics.Completed)
	}
}

func TestStaleWorkloadDrivesAllocator(t *testing.T) {
	// On a steep ramp the allocator always plans with the previous
	// period's item count, so growth is corrected incrementally —
	// replication events appear on several distinct periods rather than
	// one oversized reaction.
	res := run(t, Predictive, workload.NewIncreasingRamp(500, 14000, 30))
	periods := map[int]bool{}
	for _, e := range res.Events {
		if e.Kind == trace.ActionReplicate && e.Stage == dynbench.FilterStage {
			periods[e.Period] = true
		}
	}
	if len(periods) < 2 {
		t.Errorf("replication confined to %d period(s); staleness should spread it", len(periods))
	}
}
