// Package resil is the service plane's resilience vocabulary: an error
// taxonomy (deterministic vs transient, plus recovered panics), capped
// exponential backoff with jitter, and a context-aware retry loop. It is
// deliberately tiny and dependency-free so every layer — the run
// scheduler, the rmserved daemon, the Go client, the CLIs — classifies
// and retries failures the same way.
//
// The taxonomy is the load-bearing part. A deterministic simulation that
// failed will fail identically on retry (same config, same seed, same
// code path), so the default classification of every error is
// *deterministic: fail fast, never retry*. Only errors explicitly marked
// with Transient — disk-cache I/O, journal writes, queue races, network
// flakes — are retryable. Recovered panics are their own kind: they are
// treated as deterministic (a panicking run would panic again) but carry
// the captured stack so the operator sees where the worker died.
package resil

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"time"
)

// TransientError marks an error as worth retrying: the failure came from
// the environment (I/O, network, contention), not from the work itself.
type TransientError struct {
	Err error
}

func (e *TransientError) Error() string { return "transient: " + e.Err.Error() }
func (e *TransientError) Unwrap() error { return e.Err }

// Transient wraps err as retryable. A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &TransientError{Err: err}
}

// Transientf is Transient(fmt.Errorf(...)).
func Transientf(format string, args ...any) error {
	return &TransientError{Err: fmt.Errorf(format, args...)}
}

// IsTransient reports whether err is marked retryable anywhere in its
// chain. Context cancellations are never transient: the caller gave up,
// retrying would ignore that.
func IsTransient(err error) bool {
	if err == nil || errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var t *TransientError
	return errors.As(err, &t)
}

// PanicError is a panic recovered at a worker boundary, converted into a
// structured failure so the daemon stays up. It is classified as
// deterministic — the same job would panic again — and carries the stack
// captured at the recovery site for the logs.
type PanicError struct {
	Value any
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// NewPanicError builds a PanicError from a recovered value, capturing
// the current stack. Call it directly inside the deferred recover so the
// stack still shows the panic site.
func NewPanicError(v any) *PanicError {
	return &PanicError{Value: v, Stack: debug.Stack()}
}

// IsPanic reports whether err chains to a recovered panic and returns it.
func IsPanic(err error) (*PanicError, bool) {
	var p *PanicError
	if errors.As(err, &p) {
		return p, true
	}
	return nil, false
}

// Recover converts a recovered value into an error; use as
//
//	defer func() {
//	    if r := recover(); r != nil { err = resil.NewPanicError(r) }
//	}()
//
// at a worker boundary. Provided as documentation of the idiom more than
// as code — the deferred closure must call recover itself.

// Backoff is a capped exponential backoff schedule with proportional
// jitter. The zero value is usable: 100ms base, 5s cap, factor 2, 20%
// jitter, 3 attempts.
type Backoff struct {
	// Base is the first delay; ≤0 means 100ms.
	Base time.Duration
	// Max caps every delay; ≤0 means 5s.
	Max time.Duration
	// Factor multiplies the delay each attempt; <2 means 2.
	Factor float64
	// Jitter is the fraction of the delay randomized away (0.2 = ±20%);
	// <0 disables, 0 means the 0.2 default.
	Jitter float64
	// Attempts bounds total tries (first try included); ≤0 means 3.
	Attempts int

	// rng overrides the jitter stream (tests inject a fixed seed via
	// SeedJitter for reproducible schedules); nil uses the package-global
	// source. A pointer so Backoff stays copyable inside Options structs.
	rng *lockedRng
}

// lockedRng serializes a seeded jitter stream; math/rand's global source
// already locks internally, this mirrors that for injected seeds.
type lockedRng struct {
	mu sync.Mutex
	r  *rand.Rand
}

func (l *lockedRng) float64() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.r.Float64()
}

func (b *Backoff) base() time.Duration { return defDur(b.Base, 100*time.Millisecond) }
func (b *Backoff) max() time.Duration  { return defDur(b.Max, 5*time.Second) }

func defDur(d, def time.Duration) time.Duration {
	if d <= 0 {
		return def
	}
	return d
}

// MaxAttempts returns the resolved attempt bound.
func (b *Backoff) MaxAttempts() int {
	if b.Attempts <= 0 {
		return 3
	}
	return b.Attempts
}

// SeedJitter pins the jitter stream (tests).
func (b *Backoff) SeedJitter(seed int64) {
	b.rng = &lockedRng{r: rand.New(rand.NewSource(seed))}
}

// Delay returns the backoff before retry number `attempt` (1 = the delay
// after the first failure): base·factor^(attempt-1), capped at Max, with
// ±Jitter proportional noise. Always ≥ 1ms so a sleep is observable.
func (b *Backoff) Delay(attempt int) time.Duration {
	if attempt < 1 {
		attempt = 1
	}
	factor := b.Factor
	if factor < 2 {
		factor = 2
	}
	d := float64(b.base())
	maxd := float64(b.max())
	for i := 1; i < attempt && d < maxd; i++ {
		d *= factor
	}
	if d > maxd {
		d = maxd
	}
	jitter := b.Jitter
	if jitter == 0 {
		jitter = 0.2
	}
	if jitter > 0 {
		f := rand.Float64() // the global source locks internally
		if b.rng != nil {
			f = b.rng.float64()
		}
		// uniform in [1-j, 1+j]
		d *= 1 - jitter + 2*jitter*f
	}
	if d < float64(time.Millisecond) {
		d = float64(time.Millisecond)
	}
	return time.Duration(d)
}

// Sleeper pauses between retries; tests substitute a recording fake.
// The function must return early with ctx.Err() when ctx is done.
type Sleeper func(ctx context.Context, d time.Duration) error

// SleepCtx is the default Sleeper: a timer that loses to ctx.
func SleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs fn until it succeeds, fails deterministically, exhausts the
// backoff's attempts, or ctx dies. Only errors IsTransient reports
// retryable are retried; the last error is returned. sleep may be nil
// (SleepCtx). fn receives the 1-based attempt number.
func Do(ctx context.Context, b *Backoff, sleep Sleeper, fn func(attempt int) error) error {
	if sleep == nil {
		sleep = SleepCtx
	}
	maxAttempts := b.MaxAttempts()
	var err error
	for attempt := 1; ; attempt++ {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		err = fn(attempt)
		if err == nil || !IsTransient(err) || attempt >= maxAttempts {
			return err
		}
		if serr := sleep(ctx, b.Delay(attempt)); serr != nil {
			return err // ctx died mid-backoff; the work's error is the story
		}
	}
}
