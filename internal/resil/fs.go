package resil

import (
	"io"
	"os"
)

// FS is the filesystem seam the durable layers (disk cache, job journal)
// write through. It covers exactly the operations those layers use —
// atomic temp+rename publication and append-only logs — so a fault
// injector can deterministically fail, tear, or panic any of them in
// tests while production code runs straight through to the os package.
type FS interface {
	MkdirAll(path string, perm os.FileMode) error
	ReadFile(path string) ([]byte, error)
	Rename(oldpath, newpath string) error
	Remove(path string) error
	// CreateTemp opens a fresh temp file in dir (temp+rename hygiene).
	CreateTemp(dir, pattern string) (File, error)
	// OpenAppend opens (creating if needed) a file for appends.
	OpenAppend(path string) (File, error)
}

// File is the writable handle an FS hands out.
type File interface {
	io.Writer
	Name() string
	Sync() error
	Close() error
}

// osFS is the real filesystem.
type osFS struct{}

// OS returns the production FS backed by the os package.
func OS() FS { return osFS{} }

func (osFS) MkdirAll(path string, perm os.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) ReadFile(path string) ([]byte, error)         { return os.ReadFile(path) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(path string) error                     { return os.Remove(path) }

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	return os.CreateTemp(dir, pattern)
}

func (osFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}
