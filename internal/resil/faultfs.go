package resil

import (
	"os"
	"strings"
	"sync"
)

// Filesystem operation names an injection Rule can match. Write and Sync
// fire on the File handles an injected Create/OpenAppend returned.
const (
	OpMkdir  = "mkdir"
	OpRead   = "read"
	OpRename = "rename"
	OpRemove = "remove"
	OpCreate = "create"
	OpOpen   = "open"
	OpWrite  = "write"
	OpSync   = "sync"
)

// Rule is one fault to inject: when an operation Op on a path containing
// Path substring occurs, fire Count times (≤0 = forever). Exactly one of
// the effects applies per firing:
//
//   - Panic: panic with the rule's error (worker-isolation tests);
//   - TornBytes ≥ 0 on a write: write only the first TornBytes bytes,
//     then return Err — a torn record, the crash-consistency case;
//   - otherwise: return Err.
type Rule struct {
	Op        string
	Path      string
	Count     int
	Err       error
	Panic     bool
	TornBytes int

	fired int
}

// Injector wraps an FS and fails operations per its rules. It is safe
// for concurrent use; rules are matched in order and the first live
// match fires. The zero value is not usable — build with NewInjector.
type Injector struct {
	mu    sync.Mutex
	fs    FS
	rules []*Rule
	log   []string // fired "op path" pairs, for assertions
}

// NewInjector wraps base (nil means the real OS filesystem).
func NewInjector(base FS) *Injector {
	if base == nil {
		base = OS()
	}
	return &Injector{fs: base}
}

// Inject adds a rule. Returns the injector for chaining.
func (in *Injector) Inject(r Rule) *Injector {
	in.mu.Lock()
	in.rules = append(in.rules, &r)
	in.mu.Unlock()
	return in
}

// Fired lists every fault that has fired, as "op path" strings.
func (in *Injector) Fired() []string {
	in.mu.Lock()
	defer in.mu.Unlock()
	return append([]string(nil), in.log...)
}

// match returns the first live rule for (op, path), consuming one
// firing, or nil. TornBytes handling is the caller's.
func (in *Injector) match(op, path string) *Rule {
	in.mu.Lock()
	defer in.mu.Unlock()
	for _, r := range in.rules {
		if r.Op != op {
			continue
		}
		if r.Path != "" && !strings.Contains(path, r.Path) {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.fired++
		in.log = append(in.log, op+" "+path)
		return r
	}
	return nil
}

// fire applies a matched rule's non-torn effect.
func fire(r *Rule) error {
	if r.Panic {
		panic(r.Err)
	}
	return r.Err
}

func (in *Injector) MkdirAll(path string, perm os.FileMode) error {
	if r := in.match(OpMkdir, path); r != nil {
		return fire(r)
	}
	return in.fs.MkdirAll(path, perm)
}

func (in *Injector) ReadFile(path string) ([]byte, error) {
	if r := in.match(OpRead, path); r != nil {
		return nil, fire(r)
	}
	return in.fs.ReadFile(path)
}

func (in *Injector) Rename(oldpath, newpath string) error {
	if r := in.match(OpRename, oldpath); r != nil {
		return fire(r)
	}
	return in.fs.Rename(oldpath, newpath)
}

func (in *Injector) Remove(path string) error {
	if r := in.match(OpRemove, path); r != nil {
		return fire(r)
	}
	return in.fs.Remove(path)
}

func (in *Injector) CreateTemp(dir, pattern string) (File, error) {
	if r := in.match(OpCreate, dir); r != nil {
		return nil, fire(r)
	}
	f, err := in.fs.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

func (in *Injector) OpenAppend(path string) (File, error) {
	if r := in.match(OpOpen, path); r != nil {
		return nil, fire(r)
	}
	f, err := in.fs.OpenAppend(path)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f}, nil
}

// faultFile threads writes and syncs on an injected handle back through
// the rule table, so torn writes land exactly where a crash would put
// them: some prefix durable, the rest gone.
type faultFile struct {
	in *Injector
	f  File
}

func (ff *faultFile) Name() string { return ff.f.Name() }
func (ff *faultFile) Close() error { return ff.f.Close() }

func (ff *faultFile) Write(p []byte) (int, error) {
	if r := ff.in.match(OpWrite, ff.f.Name()); r != nil {
		if r.Panic {
			panic(r.Err)
		}
		if r.TornBytes > 0 && r.TornBytes < len(p) {
			n, _ := ff.f.Write(p[:r.TornBytes])
			return n, r.Err
		}
		return 0, r.Err
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	if r := ff.in.match(OpSync, ff.f.Name()); r != nil {
		return fire(r)
	}
	return ff.f.Sync()
}
