package resil

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestTaxonomy: only explicitly marked errors are transient; context
// errors never are, even when wrapped as transient by mistake.
func TestTaxonomy(t *testing.T) {
	base := errors.New("disk on fire")
	if IsTransient(base) {
		t.Error("plain error classified transient; default must be deterministic")
	}
	if !IsTransient(Transient(base)) {
		t.Error("Transient-wrapped error not classified transient")
	}
	if !IsTransient(fmt.Errorf("journal: %w", Transient(base))) {
		t.Error("transient mark lost through fmt.Errorf %%w wrapping")
	}
	if Transient(nil) != nil {
		t.Error("Transient(nil) != nil")
	}
	if IsTransient(context.Canceled) || IsTransient(Transient(context.Canceled)) {
		t.Error("context cancellation classified transient")
	}
	if !errors.Is(Transient(base), base) {
		t.Error("Transient breaks errors.Is chains")
	}
}

// TestPanicError: recovered panics carry their stack and classify as
// deterministic (never retried).
func TestPanicError(t *testing.T) {
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = NewPanicError(r)
			}
		}()
		panic("worker exploded")
	}()
	p, ok := IsPanic(err)
	if !ok {
		t.Fatalf("IsPanic = false for %v", err)
	}
	if p.Value != "worker exploded" || len(p.Stack) == 0 {
		t.Errorf("panic error lost value or stack: %+v", p)
	}
	if !strings.Contains(string(p.Stack), "TestPanicError") {
		t.Errorf("stack does not show the panic site:\n%s", p.Stack)
	}
	if IsTransient(err) {
		t.Error("panic classified transient; a panicking job would panic again")
	}
}

// TestBackoffDelaySchedule: delays grow exponentially from Base, cap at
// Max, and jitter stays within the configured band.
func TestBackoffDelaySchedule(t *testing.T) {
	b := &Backoff{Base: 100 * time.Millisecond, Max: time.Second, Jitter: -1}
	for i, want := range []time.Duration{100, 200, 400, 800, 1000, 1000} {
		if got := b.Delay(i + 1); got != want*time.Millisecond {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, want*time.Millisecond)
		}
	}

	j := &Backoff{Base: 100 * time.Millisecond, Max: time.Second, Jitter: 0.2}
	j.SeedJitter(7)
	for i := 0; i < 100; i++ {
		d := j.Delay(1)
		if d < 80*time.Millisecond || d > 120*time.Millisecond {
			t.Fatalf("jittered Delay(1) = %v outside ±20%% of 100ms", d)
		}
	}

	// Same seed, same schedule: jitter is reproducible for tests.
	a1, a2 := &Backoff{}, &Backoff{}
	a1.SeedJitter(42)
	a2.SeedJitter(42)
	for i := 1; i <= 5; i++ {
		if d1, d2 := a1.Delay(i), a2.Delay(i); d1 != d2 {
			t.Fatalf("seeded jitter diverged at attempt %d: %v vs %v", i, d1, d2)
		}
	}
}

// TestDoRetriesOnlyTransient: deterministic failures are returned after
// exactly one attempt; transient failures burn the attempt budget.
func TestDoRetriesOnlyTransient(t *testing.T) {
	noSleep := func(context.Context, time.Duration) error { return nil }
	b := &Backoff{Attempts: 4}

	calls := 0
	det := errors.New("deterministic")
	if err := Do(context.Background(), b, noSleep, func(int) error { calls++; return det }); !errors.Is(err, det) {
		t.Errorf("Do returned %v, want the deterministic error", err)
	}
	if calls != 1 {
		t.Errorf("deterministic error tried %d times, want 1", calls)
	}

	calls = 0
	if err := Do(context.Background(), b, noSleep, func(int) error { calls++; return Transientf("flake %d", calls) }); !IsTransient(err) {
		t.Errorf("exhausted retries returned %v, want last transient error", err)
	}
	if calls != 4 {
		t.Errorf("transient error tried %d times, want 4", calls)
	}

	calls = 0
	err := Do(context.Background(), b, noSleep, func(int) error {
		calls++
		if calls < 3 {
			return Transientf("flake")
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Errorf("recovering fn: err=%v calls=%d, want nil after 3", err, calls)
	}
}

// TestDoHonorsContext: a dead context stops the loop before the next
// attempt, and a mid-backoff cancellation returns the work's error.
func TestDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	if err := Do(ctx, &Backoff{}, nil, func(int) error { calls++; return nil }); !errors.Is(err, context.Canceled) {
		t.Errorf("pre-cancelled Do = %v, want context.Canceled", err)
	}
	if calls != 0 {
		t.Errorf("pre-cancelled Do still ran fn %d times", calls)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	sleeps := 0
	sleep := func(context.Context, time.Duration) error { sleeps++; cancel2(); return ctx2.Err() }
	werr := Transientf("flaky io")
	if err := Do(ctx2, &Backoff{Attempts: 5}, sleep, func(int) error { return werr }); !errors.Is(err, werr) {
		t.Errorf("cancelled mid-backoff: %v, want the work's transient error", err)
	}
	if sleeps != 1 {
		t.Errorf("slept %d times after cancellation, want 1", sleeps)
	}
}

// TestInjectorRules drives the full fault surface: nth-operation
// failure, path scoping, torn writes, and panics.
func TestInjectorRules(t *testing.T) {
	dir := t.TempDir()
	boom := errors.New("injected: no space left on device")

	in := NewInjector(nil).Inject(Rule{Op: OpWrite, Path: "journal", Count: 1, Err: boom})
	f, err := in.OpenAppend(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("rec1\n")); !errors.Is(err, boom) {
		t.Fatalf("first journal write err = %v, want injected", err)
	}
	if _, err := f.Write([]byte("rec2\n")); err != nil {
		t.Fatalf("second write should pass (Count=1): %v", err)
	}
	f.Close()
	if data, _ := os.ReadFile(filepath.Join(dir, "journal.wal")); string(data) != "rec2\n" {
		t.Errorf("file contents %q, want only the surviving record", data)
	}
	if fired := in.Fired(); len(fired) != 1 || !strings.Contains(fired[0], "write") {
		t.Errorf("Fired() = %v", fired)
	}

	// Path scoping: a rule on "cache" never fires for the journal.
	in2 := NewInjector(nil).Inject(Rule{Op: OpWrite, Path: "cache", Err: boom})
	f2, err := in2.OpenAppend(filepath.Join(dir, "journal2.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f2.Write([]byte("x")); err != nil {
		t.Errorf("scoped rule fired on unrelated path: %v", err)
	}
	f2.Close()

	// Torn write: only the first TornBytes bytes land.
	in3 := NewInjector(nil).Inject(Rule{Op: OpWrite, Count: 1, Err: boom, TornBytes: 3})
	f3, err := in3.OpenAppend(filepath.Join(dir, "torn.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if n, err := f3.Write([]byte("abcdef")); n != 3 || !errors.Is(err, boom) {
		t.Fatalf("torn write: n=%d err=%v, want 3 bytes then the injected error", n, err)
	}
	f3.Close()
	if data, _ := os.ReadFile(filepath.Join(dir, "torn.wal")); string(data) != "abc" {
		t.Errorf("torn file contents %q, want the 3-byte prefix", data)
	}

	// Panic rule: the operation panics instead of erroring.
	in4 := NewInjector(nil).Inject(Rule{Op: OpCreate, Panic: true, Err: boom})
	func() {
		defer func() {
			if r := recover(); r == nil {
				t.Error("panic rule did not panic")
			}
		}()
		in4.CreateTemp(dir, "x-*.tmp")
	}()
}
