package api

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/monitor"
	"repro/internal/network"
	"repro/internal/policy"
	"repro/internal/sim"
)

// Config is the wire mirror of core.Config (minus the telemetry
// recorder, which observes a run rather than shaping one and cannot
// cross a process boundary). Durations travel as nanosecond integers —
// exact, like the engine's own sim.Time — with _ns field suffixes.
// TestConfigMirrorsEveryCoreField walks every core.Config leaf to keep
// the mirror complete as the engine grows knobs.
type Config struct {
	NumNodes        int     `json:"num_nodes"`
	SliceNS         int64   `json:"slice_ns"`
	Discipline      string  `json:"discipline,omitempty"` // round-robin (default) | fifo | processor-sharing
	UtilThreshold   float64 `json:"util_threshold"`
	WarmupDemandNS  int64   `json:"warmup_demand_ns"`
	OverlapFraction float64 `json:"overlap_fraction"`
	Seed            uint64  `json:"seed"`
	// Lanes partitions the system into equal network segments simulated
	// on independent event lanes; Parallel is the worker count driving
	// them (results are byte-identical for every value). See core.Config.
	Lanes    int `json:"lanes,omitempty"`
	Parallel int `json:"parallel,omitempty"`

	Network NetworkConfig `json:"network"`
	Monitor MonitorConfig `json:"monitor"`

	ClockSync            bool    `json:"clock_sync,omitempty"`
	ClockDriftPPM        float64 `json:"clock_drift_ppm,omitempty"`
	ClockInitialOffsetNS int64   `json:"clock_initial_offset_ns,omitempty"`
	ClockSyncPeriodNS    int64   `json:"clock_sync_period_ns,omitempty"`

	Faults      []Fault           `json:"faults,omitempty"`
	Chaos       ChaosConfig       `json:"chaos,omitempty"`
	Degradation DegradationConfig `json:"degradation,omitempty"`

	// Policy, when non-nil, carries the allocation-policy knobs; absent
	// means the registered defaults (policy.Config zero value).
	Policy *PolicyConfig `json:"policy,omitempty"`
}

// NetworkConfig mirrors network.Config.
type NetworkConfig struct {
	BandwidthBps            int64   `json:"bandwidth_bps"`
	MTU                     int     `json:"mtu"`
	FrameOverheadBytes      int     `json:"frame_overhead_bytes"`
	PerMessageOverheadBytes int     `json:"per_message_overhead_bytes"`
	LocalDelayNS            int64   `json:"local_delay_ns"`
	DropProb                float64 `json:"drop_prob,omitempty"`
	JitterAmp               float64 `json:"jitter_amp,omitempty"`
	SpikeProb               float64 `json:"spike_prob,omitempty"`
	SpikeDelayNS            int64   `json:"spike_delay_ns,omitempty"`
	LossSeed                uint64  `json:"loss_seed,omitempty"`

	Partitions []Window `json:"partitions,omitempty"`
}

// Window mirrors network.Window: one transient whole-segment outage.
type Window struct {
	StartNS int64 `json:"start_ns"`
	EndNS   int64 `json:"end_ns"`
}

// MonitorConfig mirrors monitor.Config.
type MonitorConfig struct {
	SlackFraction     float64 `json:"slack_fraction"`
	HighSlackFraction float64 `json:"high_slack_fraction"`
	SmoothingWindow   int     `json:"smoothing_window,omitempty"`
	StalenessWindowNS int64   `json:"staleness_window_ns,omitempty"`
}

// Fault mirrors core.Fault: one scripted node crash.
type Fault struct {
	Node       int   `json:"node"`
	AtNS       int64 `json:"at_ns"`
	DurationNS int64 `json:"duration_ns,omitempty"`
}

// ChaosConfig mirrors chaos.Config.
type ChaosConfig struct {
	NodeMTBFNS      int64 `json:"node_mtbf_ns,omitempty"`
	NodeMTTRNS      int64 `json:"node_mttr_ns,omitempty"`
	MaxDown         int   `json:"max_down,omitempty"`
	PartitionMTBFNS int64 `json:"partition_mtbf_ns,omitempty"`
	PartitionMTTRNS int64 `json:"partition_mttr_ns,omitempty"`
}

// DegradationConfig mirrors core.Degradation.
type DegradationConfig struct {
	DeliveryTimeoutNS int64   `json:"delivery_timeout_ns,omitempty"`
	MaxRetries        int     `json:"max_retries,omitempty"`
	StalenessWindowNS int64   `json:"staleness_window_ns,omitempty"`
	CooldownPeriods   int     `json:"cooldown_periods,omitempty"`
	FallbackUtil      float64 `json:"fallback_util,omitempty"`
}

// PolicyConfig mirrors policy.Config flattened: the period-stretch and
// imprecise-shed knobs. Zero fields mean the policy package's defaults.
type PolicyConfig struct {
	StretchMaxFactor      float64 `json:"stretch_max_factor,omitempty"`
	StretchStep           float64 `json:"stretch_step,omitempty"`
	StretchUtilTarget     float64 `json:"stretch_util_target,omitempty"`
	ShedMandatoryFraction float64 `json:"shed_mandatory_fraction,omitempty"`
	ShedLevels            int     `json:"shed_levels,omitempty"`
}

// DefaultConfig returns the Table 1 baseline in wire form.
func DefaultConfig() Config { return ConfigFromCore(core.DefaultConfig()) }

// disciplineNames maps the wire strings; cpu.Discipline.String() emits
// the same forms, keeping the round trip exact.
var disciplineNames = map[string]cpu.Discipline{
	"":                  cpu.RoundRobin,
	"round-robin":       cpu.RoundRobin,
	"fifo":              cpu.FIFO,
	"processor-sharing": cpu.ProcessorSharing,
}

// ConfigFromCore converts an internal config to its wire form.
func ConfigFromCore(c core.Config) Config {
	out := Config{
		NumNodes:        c.NumNodes,
		SliceNS:         int64(c.Slice),
		UtilThreshold:   c.UtilThreshold,
		WarmupDemandNS:  int64(c.WarmupDemand),
		OverlapFraction: c.OverlapFraction,
		Seed:            c.Seed,
		Lanes:           c.Lanes,
		Parallel:        c.Parallel,

		ClockSync:            c.ClockSync,
		ClockDriftPPM:        c.ClockDriftPPM,
		ClockInitialOffsetNS: int64(c.ClockInitialOffset),
		ClockSyncPeriodNS:    int64(c.ClockSyncPeriod),

		Network: NetworkConfig{
			BandwidthBps:            c.Network.BandwidthBps,
			MTU:                     c.Network.MTU,
			FrameOverheadBytes:      c.Network.FrameOverheadBytes,
			PerMessageOverheadBytes: c.Network.PerMessageOverheadBytes,
			LocalDelayNS:            int64(c.Network.LocalDelay),
			DropProb:                c.Network.DropProb,
			JitterAmp:               c.Network.JitterAmp,
			SpikeProb:               c.Network.SpikeProb,
			SpikeDelayNS:            int64(c.Network.SpikeDelay),
			LossSeed:                c.Network.LossSeed,
		},
		Monitor: MonitorConfig{
			SlackFraction:     c.Monitor.SlackFraction,
			HighSlackFraction: c.Monitor.HighSlackFraction,
			SmoothingWindow:   c.Monitor.SmoothingWindow,
			StalenessWindowNS: int64(c.Monitor.StalenessWindow),
		},
		Chaos: ChaosConfig{
			NodeMTBFNS:      int64(c.Chaos.NodeMTBF),
			NodeMTTRNS:      int64(c.Chaos.NodeMTTR),
			MaxDown:         c.Chaos.MaxDown,
			PartitionMTBFNS: int64(c.Chaos.PartitionMTBF),
			PartitionMTTRNS: int64(c.Chaos.PartitionMTTR),
		},
		Degradation: DegradationConfig{
			DeliveryTimeoutNS: int64(c.Degradation.DeliveryTimeout),
			MaxRetries:        c.Degradation.MaxRetries,
			StalenessWindowNS: int64(c.Degradation.StalenessWindow),
			CooldownPeriods:   c.Degradation.CooldownPeriods,
			FallbackUtil:      c.Degradation.FallbackUtil,
		},
	}
	if c.Discipline != cpu.RoundRobin {
		out.Discipline = c.Discipline.String()
	}
	if c.Policy != (policy.Config{}) {
		out.Policy = &PolicyConfig{
			StretchMaxFactor:      c.Policy.Stretch.MaxFactor,
			StretchStep:           c.Policy.Stretch.Step,
			StretchUtilTarget:     c.Policy.Stretch.UtilTarget,
			ShedMandatoryFraction: c.Policy.Shed.MandatoryFraction,
			ShedLevels:            c.Policy.Shed.Levels,
		}
	}
	for _, w := range c.Network.Partitions {
		out.Network.Partitions = append(out.Network.Partitions, Window{StartNS: int64(w.Start), EndNS: int64(w.End)})
	}
	for _, f := range c.Faults {
		out.Faults = append(out.Faults, Fault{Node: f.Node, AtNS: int64(f.At), DurationNS: int64(f.Duration)})
	}
	return out
}

// ToCore converts the wire config back to the internal struct and
// validates it with core's aggregated Validate, so an API caller sees
// every invalid field at once.
func (c Config) ToCore() (core.Config, error) {
	disc, ok := disciplineNames[c.Discipline]
	if !ok {
		return core.Config{}, fmt.Errorf("api: unknown discipline %q (round-robin | fifo | processor-sharing)", c.Discipline)
	}
	out := core.Config{
		NumNodes:        c.NumNodes,
		Slice:           sim.Time(c.SliceNS),
		Discipline:      disc,
		UtilThreshold:   c.UtilThreshold,
		WarmupDemand:    sim.Time(c.WarmupDemandNS),
		OverlapFraction: c.OverlapFraction,
		Seed:            c.Seed,
		Lanes:           c.Lanes,
		Parallel:        c.Parallel,

		ClockSync:          c.ClockSync,
		ClockDriftPPM:      c.ClockDriftPPM,
		ClockInitialOffset: sim.Time(c.ClockInitialOffsetNS),
		ClockSyncPeriod:    sim.Time(c.ClockSyncPeriodNS),

		Network: network.Config{
			BandwidthBps:            c.Network.BandwidthBps,
			MTU:                     c.Network.MTU,
			FrameOverheadBytes:      c.Network.FrameOverheadBytes,
			PerMessageOverheadBytes: c.Network.PerMessageOverheadBytes,
			LocalDelay:              sim.Time(c.Network.LocalDelayNS),
			DropProb:                c.Network.DropProb,
			JitterAmp:               c.Network.JitterAmp,
			SpikeProb:               c.Network.SpikeProb,
			SpikeDelay:              sim.Time(c.Network.SpikeDelayNS),
			LossSeed:                c.Network.LossSeed,
		},
		Monitor: monitor.Config{
			SlackFraction:     c.Monitor.SlackFraction,
			HighSlackFraction: c.Monitor.HighSlackFraction,
			SmoothingWindow:   c.Monitor.SmoothingWindow,
			StalenessWindow:   sim.Time(c.Monitor.StalenessWindowNS),
		},
		Chaos: chaos.Config{
			NodeMTBF:      sim.Time(c.Chaos.NodeMTBFNS),
			NodeMTTR:      sim.Time(c.Chaos.NodeMTTRNS),
			MaxDown:       c.Chaos.MaxDown,
			PartitionMTBF: sim.Time(c.Chaos.PartitionMTBFNS),
			PartitionMTTR: sim.Time(c.Chaos.PartitionMTTRNS),
		},
		Degradation: core.Degradation{
			DeliveryTimeout: sim.Time(c.Degradation.DeliveryTimeoutNS),
			MaxRetries:      c.Degradation.MaxRetries,
			StalenessWindow: sim.Time(c.Degradation.StalenessWindowNS),
			CooldownPeriods: c.Degradation.CooldownPeriods,
			FallbackUtil:    c.Degradation.FallbackUtil,
		},
	}
	if c.Policy != nil {
		out.Policy = policy.Config{
			Stretch: policy.StretchConfig{
				MaxFactor:  c.Policy.StretchMaxFactor,
				Step:       c.Policy.StretchStep,
				UtilTarget: c.Policy.StretchUtilTarget,
			},
			Shed: policy.ShedConfig{
				MandatoryFraction: c.Policy.ShedMandatoryFraction,
				Levels:            c.Policy.ShedLevels,
			},
		}
	}
	for _, w := range c.Network.Partitions {
		out.Network.Partitions = append(out.Network.Partitions, network.Window{Start: sim.Time(w.StartNS), End: sim.Time(w.EndNS)})
	}
	for _, f := range c.Faults {
		out.Faults = append(out.Faults, core.Fault{Node: f.Node, At: sim.Time(f.AtNS), Duration: sim.Time(f.DurationNS)})
	}
	if err := out.Validate(); err != nil {
		return core.Config{}, err
	}
	return out, nil
}
