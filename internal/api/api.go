// Package api defines the versioned public wire schema of the rmserved
// simulation service: JSON request/response DTOs shared by the HTTP
// daemon (internal/server), the Go client (internal/client), and the
// rmexperiments -remote mode. The DTOs deliberately mirror — rather than
// embed — the internal structs (core.Config, metrics.RunMetrics,
// experiment.RunOutcome), so the wire format and the engine can evolve
// independently: every message carries an explicit schema_version, and
// the golden fixtures under testdata/ pin the encoding byte for byte.
//
// Versioning policy (see DESIGN.md §6): additive changes — new optional
// fields with zero-value-off semantics — keep SchemaVersion; anything
// that changes the meaning of an existing field bumps it, and the server
// rejects mismatched requests instead of guessing.
package api

import (
	"errors"
	"fmt"
	"strings"

	"repro/internal/metrics"
	"repro/internal/policy"
)

// SchemaVersion is the current wire schema. Requests must carry it
// verbatim; responses echo it.
const SchemaVersion = 1

// Well-known algorithm names on the wire (mirrors core.Algorithm). The
// accepted set is not limited to these constants: any name registered in
// the internal/policy registry validates, so a new policy is wire-ready
// the moment it registers.
const (
	AlgPredictive    = "predictive"
	AlgNonPredictive = "non-predictive"
	AlgGreedy        = "greedy"
	AlgStaticMax     = "static-max"
	AlgPeriodStretch = "period-stretch"
	AlgImpreciseShed = "imprecise-shed"
)

func validAlgorithm(a string) bool {
	return policy.Registered(a)
}

// Model sources accepted on the wire (mirrors experiment.ModelSource).
const (
	ModelsProfiled    = "profiled"
	ModelsPaper       = "paper"
	ModelsGroundTruth = "ground-truth"
)

// TaskSpec describes one periodic task of a run request: the benchmark
// pipeline driven by a workload pattern, with its regression models
// fitted from the chosen source. Models defaults to "profiled" — the
// paper's own methodology.
type TaskSpec struct {
	Pattern Pattern `json:"pattern"`
	Models  string  `json:"models,omitempty"`
}

// Validate reports every invalid field of the task spec.
func (t TaskSpec) Validate() error {
	var errs []error
	if err := t.Pattern.Validate(); err != nil {
		errs = append(errs, err)
	}
	switch t.Models {
	case "", ModelsProfiled, ModelsPaper, ModelsGroundTruth:
	default:
		errs = append(errs, fmt.Errorf("api: unknown model source %q", t.Models))
	}
	return errors.Join(errs...)
}

// RunRequest submits one simulation: POST /v1/runs. A nil Config means
// the Table 1 defaults; Seed, when set, overrides the config's seed so
// replications of one spec differ only in that field.
type RunRequest struct {
	SchemaVersion int      `json:"schema_version"`
	Algorithm     string   `json:"algorithm"`
	Seed          *uint64  `json:"seed,omitempty"`
	Config        *Config  `json:"config,omitempty"`
	Task          TaskSpec `json:"task"`
}

// Validate aggregates every invalid field of the request.
func (r RunRequest) Validate() error {
	var errs []error
	if r.SchemaVersion != SchemaVersion {
		errs = append(errs, fmt.Errorf("api: schema_version %d unsupported (want %d)", r.SchemaVersion, SchemaVersion))
	}
	if !validAlgorithm(r.Algorithm) {
		errs = append(errs, fmt.Errorf("api: unknown algorithm %q (registered: %s)",
			r.Algorithm, strings.Join(policy.Names(), " | ")))
	}
	if err := r.Task.Validate(); err != nil {
		errs = append(errs, err)
	}
	if r.Config != nil {
		if _, err := r.Config.ToCore(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Sweep pattern families (the paper's figure x-axes).
const (
	SweepTriangular = "triangular"
	SweepIncreasing = "increasing"
	SweepDecreasing = "decreasing"
)

// SweepRequest submits one figure-style sweep: POST /v1/sweeps. Every
// point runs both headline algorithms at the Table 1 defaults; Seeds ≥ 2
// adds Monte Carlo replications per cell. Points are the max workload in
// units of 500 tracks (the paper's x-axis).
type SweepRequest struct {
	SchemaVersion int    `json:"schema_version"`
	Pattern       string `json:"pattern"`
	Points        []int  `json:"points"`
	Seeds         int    `json:"seeds,omitempty"`
}

// Validate aggregates every invalid field of the request.
func (r SweepRequest) Validate() error {
	var errs []error
	if r.SchemaVersion != SchemaVersion {
		errs = append(errs, fmt.Errorf("api: schema_version %d unsupported (want %d)", r.SchemaVersion, SchemaVersion))
	}
	switch r.Pattern {
	case SweepTriangular, SweepIncreasing, SweepDecreasing:
	default:
		errs = append(errs, fmt.Errorf("api: unknown sweep pattern %q", r.Pattern))
	}
	if len(r.Points) == 0 {
		errs = append(errs, fmt.Errorf("api: sweep needs ≥1 point"))
	}
	for _, p := range r.Points {
		if p < 0 {
			errs = append(errs, fmt.Errorf("api: negative sweep point %d", p))
		}
	}
	if r.Seeds < 0 {
		errs = append(errs, fmt.Errorf("api: negative seed count %d", r.Seeds))
	}
	return errors.Join(errs...)
}

// Metrics is the wire mirror of metrics.RunMetrics (§5.2 quantities plus
// the chaos counters).
type Metrics struct {
	Periods        int     `json:"periods"`
	Completed      int     `json:"completed"`
	Missed         int     `json:"missed"`
	MeanCPUUtil    float64 `json:"mean_cpu_util"`
	MeanNetUtil    float64 `json:"mean_net_util"`
	MeanReplicas   float64 `json:"mean_replicas"`
	MaxReplicas    float64 `json:"max_replicas"`
	Replications   int     `json:"replications"`
	Shutdowns      int     `json:"shutdowns"`
	AllocFailures  int     `json:"alloc_failures"`
	UnfinishedWork int     `json:"unfinished_work"`

	DroppedMessages int     `json:"dropped_messages,omitempty"`
	Retransmissions int     `json:"retransmissions,omitempty"`
	Crashes         int     `json:"crashes,omitempty"`
	Recoveries      int     `json:"recoveries,omitempty"`
	MeanRecoveryMS  float64 `json:"mean_recovery_ms,omitempty"`

	ShedItems        int `json:"shed_items,omitempty"`
	StretchedPeriods int `json:"stretched_periods,omitempty"`
}

// MetricsFromRun converts the internal metrics struct to its wire form.
func MetricsFromRun(m metrics.RunMetrics) Metrics {
	return Metrics{
		Periods:        m.Periods,
		Completed:      m.Completed,
		Missed:         m.Missed,
		MeanCPUUtil:    m.MeanCPUUtil,
		MeanNetUtil:    m.MeanNetUtil,
		MeanReplicas:   m.MeanReplicas,
		MaxReplicas:    m.MaxReplicas,
		Replications:   m.Replications,
		Shutdowns:      m.Shutdowns,
		AllocFailures:  m.AllocFailures,
		UnfinishedWork: m.UnfinishedWork,

		DroppedMessages: m.DroppedMessages,
		Retransmissions: m.Retransmissions,
		Crashes:         m.Crashes,
		Recoveries:      m.Recoveries,
		MeanRecoveryMS:  m.MeanRecoveryMS,

		ShedItems:        m.ShedItems,
		StretchedPeriods: m.StretchedPeriods,
	}
}

// ToRun converts the wire metrics back to the internal struct.
func (m Metrics) ToRun() metrics.RunMetrics {
	return metrics.RunMetrics{
		Periods:        m.Periods,
		Completed:      m.Completed,
		Missed:         m.Missed,
		MeanCPUUtil:    m.MeanCPUUtil,
		MeanNetUtil:    m.MeanNetUtil,
		MeanReplicas:   m.MeanReplicas,
		MaxReplicas:    m.MaxReplicas,
		Replications:   m.Replications,
		Shutdowns:      m.Shutdowns,
		AllocFailures:  m.AllocFailures,
		UnfinishedWork: m.UnfinishedWork,

		DroppedMessages: m.DroppedMessages,
		Retransmissions: m.Retransmissions,
		Crashes:         m.Crashes,
		Recoveries:      m.Recoveries,
		MeanRecoveryMS:  m.MeanRecoveryMS,

		ShedItems:        m.ShedItems,
		StretchedPeriods: m.StretchedPeriods,
	}
}

// RunResult is the wire mirror of experiment.RunOutcome (the conversion
// lives in experiment, which imports this package; the reverse import
// would cycle).
type RunResult struct {
	SchemaVersion int     `json:"schema_version"`
	Metrics       Metrics `json:"metrics"`
	Failovers     int     `json:"failovers,omitempty"`
	EventsFired   uint64  `json:"events_fired"`
}

// SweepPoint is one (max workload, algorithm) cell of a sweep result.
// Reps carries every Monte Carlo replication; Metrics is replication 0
// (the pinned seed the golden CSVs were recorded under).
type SweepPoint struct {
	MaxUnits  int       `json:"max_units"`
	Algorithm string    `json:"algorithm"`
	Metrics   Metrics   `json:"metrics"`
	Reps      []Metrics `json:"reps,omitempty"`
}

// SweepResult is the wire form of a completed sweep.
type SweepResult struct {
	SchemaVersion int          `json:"schema_version"`
	Points        []SweepPoint `json:"points"`
}

// Job states. Terminal states are done, failed, and cancelled.
// "retrying" is the backoff window between attempts at a transiently
// failed job: not terminal, and always followed by running or a
// terminal state.
const (
	JobQueued    = "queued"
	JobRunning   = "running"
	JobRetrying  = "retrying"
	JobDone      = "done"
	JobFailed    = "failed"
	JobCancelled = "cancelled"
)

// TerminalState reports whether a job state is final.
func TerminalState(s string) bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job is the wire view of one submitted job: GET /v1/jobs/{id}, the
// submission response, and each SSE event frame. Exactly one of Run and
// Sweep is set once the job is done, matching Kind.
type Job struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Kind          string `json:"kind"` // "run" | "sweep"
	State         string `json:"state"`
	Error         string `json:"error,omitempty"`
	// Attempts counts execution attempts so far: 1 on a first run, >1
	// after transient-failure retries. 0 while still queued.
	Attempts int `json:"attempts,omitempty"`
	// Fingerprint is the run's content address (run jobs only): stable
	// across daemons and restarts, so a client can resubmit the same
	// spec and correlate the jobs, or find a replayed job after a crash.
	Fingerprint string       `json:"fingerprint,omitempty"`
	CreatedMS   int64        `json:"created_ms"`
	StartedMS   int64        `json:"started_ms,omitempty"`
	FinishedMS  int64        `json:"finished_ms,omitempty"`
	Run         *RunResult   `json:"run,omitempty"`
	Sweep       *SweepResult `json:"sweep,omitempty"`
}

// SchedulerStats is the wire mirror of experiment.SchedulerCounters.
type SchedulerStats struct {
	Requested  uint64 `json:"requested"`
	Deduped    uint64 `json:"deduped"`
	MemoryHits uint64 `json:"memory_hits"`
	DiskHits   uint64 `json:"disk_hits"`
	Simulated  uint64 `json:"simulated"`
	Cancelled  uint64 `json:"cancelled"`
	Remote     uint64 `json:"remote"`
}

// JobStats counts jobs by state.
type JobStats struct {
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Stats is GET /v1/stats: scheduler counters, job accounting, queue and
// worker configuration, and the server's telemetry registry rendered as
// name → value.
type Stats struct {
	SchemaVersion int            `json:"schema_version"`
	Scheduler     SchedulerStats `json:"scheduler"`
	Jobs          JobStats       `json:"jobs"`
	// Sessions is present on daemons with session mode wired (additive;
	// absent on older servers).
	Sessions      *SessionStats      `json:"sessions,omitempty"`
	QueueDepth    int                `json:"queue_depth"`
	QueueCapacity int                `json:"queue_capacity"`
	Workers       int                `json:"workers"`
	Draining      bool               `json:"draining"`
	Telemetry     map[string]float64 `json:"telemetry,omitempty"`
}

// Error is the uniform error envelope every non-2xx response carries.
type Error struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// ErrorEnvelope wraps Error for the wire.
type ErrorEnvelope struct {
	Error Error `json:"error"`
}

// Error codes.
const (
	CodeBadRequest = "bad_request"
	CodeNotFound   = "not_found"
	CodeQueueFull  = "queue_full"
	CodeDraining   = "draining"
	CodeInternal   = "internal"
	CodeConflict   = "conflict"
	// CodeJournal: the durable job journal rejected the submission (disk
	// trouble); the job was NOT accepted. Served as 503 with Retry-After —
	// resubmitting the identical request later is safe (idempotent by
	// fingerprint).
	CodeJournal = "journal_write_failed"
)

// RetryAfterHeader carries the server's backoff hint on 429/503
// rejections, in integral seconds (the HTTP standard header).
const RetryAfterHeader = "Retry-After"
