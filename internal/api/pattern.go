package api

import (
	"errors"
	"fmt"

	"repro/internal/workload"
)

// Pattern kinds accepted on the wire (the workload package's generators
// plus the recorded-trace escape hatch).
const (
	PatternTriangular = "triangular"
	PatternIncreasing = "increasing"
	PatternDecreasing = "decreasing"
	PatternStep       = "step"
	PatternBurst      = "burst"
	PatternSinusoid   = "sinusoid"
	PatternConstant   = "constant"
	PatternCustom     = "custom"
)

// Pattern is the wire form of a workload pattern. Min/Max/Periods apply
// to every kind except custom, which replays Values verbatim; the
// remaining fields parameterize individual kinds and are ignored (and
// must be zero) elsewhere.
type Pattern struct {
	Kind    string `json:"kind"`
	Min     int    `json:"min,omitempty"`
	Max     int    `json:"max,omitempty"`
	Periods int    `json:"periods,omitempty"`
	// Cycles parameterizes triangular and sinusoid.
	Cycles int `json:"cycles,omitempty"`
	// SwitchAt parameterizes step.
	SwitchAt int `json:"switch_at,omitempty"`
	// Every and Len parameterize burst.
	Every int `json:"every,omitempty"`
	Len   int `json:"len,omitempty"`
	// Value parameterizes constant.
	Value int `json:"value,omitempty"`
	// Values is the recorded series of a custom pattern; Label names it.
	Values []int  `json:"values,omitempty"`
	Label  string `json:"label,omitempty"`
}

// Validate aggregates every invalid field of the pattern. It enforces
// the same preconditions the workload constructors panic on, so a
// validated pattern always materializes.
func (p Pattern) Validate() error {
	var errs []error
	if p.Kind == PatternCustom {
		if len(p.Values) == 0 {
			errs = append(errs, fmt.Errorf("api: custom pattern needs ≥1 value"))
		}
		for i, v := range p.Values {
			if v < 0 {
				errs = append(errs, fmt.Errorf("api: custom pattern value %d at period %d is negative", v, i))
			}
		}
		return errors.Join(errs...)
	}
	if p.Kind == PatternConstant {
		if p.Value < 0 {
			errs = append(errs, fmt.Errorf("api: negative constant workload %d", p.Value))
		}
		if p.Periods < 1 {
			errs = append(errs, fmt.Errorf("api: pattern needs ≥1 period, got %d", p.Periods))
		}
		return errors.Join(errs...)
	}
	if p.Min < 0 || p.Max < p.Min {
		errs = append(errs, fmt.Errorf("api: pattern interval [%d,%d] invalid", p.Min, p.Max))
	}
	if p.Periods < 1 {
		errs = append(errs, fmt.Errorf("api: pattern needs ≥1 period, got %d", p.Periods))
	}
	switch p.Kind {
	case PatternTriangular, PatternSinusoid:
		if p.Cycles < 1 {
			errs = append(errs, fmt.Errorf("api: %s pattern needs ≥1 cycle, got %d", p.Kind, p.Cycles))
		}
	case PatternIncreasing, PatternDecreasing:
	case PatternStep:
		if p.SwitchAt < 0 || p.SwitchAt > p.Periods {
			errs = append(errs, fmt.Errorf("api: step switch %d out of [0,%d]", p.SwitchAt, p.Periods))
		}
	case PatternBurst:
		if p.Every < 1 || p.Len < 1 || p.Len > p.Every {
			errs = append(errs, fmt.Errorf("api: burst every=%d len=%d invalid", p.Every, p.Len))
		}
	default:
		errs = append(errs, fmt.Errorf("api: unknown pattern kind %q", p.Kind))
	}
	return errors.Join(errs...)
}

// ToWorkload materializes the wire pattern.
func (p Pattern) ToWorkload() (workload.Pattern, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	switch p.Kind {
	case PatternTriangular:
		return workload.NewTriangular(p.Min, p.Max, p.Periods, p.Cycles), nil
	case PatternIncreasing:
		return workload.NewIncreasingRamp(p.Min, p.Max, p.Periods), nil
	case PatternDecreasing:
		return workload.NewDecreasingRamp(p.Min, p.Max, p.Periods), nil
	case PatternStep:
		return workload.NewStep(p.Min, p.Max, p.Periods, p.SwitchAt), nil
	case PatternBurst:
		return workload.NewBurst(p.Min, p.Max, p.Periods, p.Every, p.Len), nil
	case PatternSinusoid:
		return workload.NewSinusoid(p.Min, p.Max, p.Periods, p.Cycles), nil
	case PatternConstant:
		return workload.NewConstant(p.Value, p.Periods), nil
	case PatternCustom:
		return workload.NewCustom(p.Label, p.Values), nil
	}
	return nil, fmt.Errorf("api: unknown pattern kind %q", p.Kind)
}

// PatternFromWorkload encodes a concrete workload pattern onto the wire;
// ok is false for pattern types the schema cannot express.
func PatternFromWorkload(w workload.Pattern) (Pattern, bool) {
	switch p := w.(type) {
	case workload.Triangular:
		return Pattern{Kind: PatternTriangular, Min: p.Min, Max: p.Max, Periods: p.N, Cycles: p.Cycles}, true
	case workload.IncreasingRamp:
		return Pattern{Kind: PatternIncreasing, Min: p.Min, Max: p.Max, Periods: p.N}, true
	case workload.DecreasingRamp:
		return Pattern{Kind: PatternDecreasing, Min: p.Min, Max: p.Max, Periods: p.N}, true
	case workload.Step:
		return Pattern{Kind: PatternStep, Min: p.Min, Max: p.Max, Periods: p.N, SwitchAt: p.SwitchAt}, true
	case workload.Burst:
		return Pattern{Kind: PatternBurst, Min: p.Min, Max: p.Max, Periods: p.N, Every: p.Every, Len: p.Len}, true
	case workload.Sinusoid:
		return Pattern{Kind: PatternSinusoid, Min: p.Min, Max: p.Max, Periods: p.N, Cycles: p.Cycles}, true
	case workload.Constant:
		return Pattern{Kind: PatternConstant, Value: p.Value, Periods: p.N}, true
	case workload.Custom:
		return Pattern{Kind: PatternCustom, Label: p.Label, Values: p.Values}, true
	}
	return Pattern{}, false
}
