package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// SSE event types. Every v1 stream frame is one of these; the name
// travels on the SSE `event:` line and inside the Event envelope's
// "type" field.
//
// Compatibility: `job` frames are emitted WITHOUT an `event:` name and
// with a bare Job as their `data:` payload for one deprecation window
// (DESIGN.md §6) — pre-envelope clients parse only `id:`/`data:` lines
// and decode the payload as a Job, and both properties must keep
// holding for them. Session frames are new, so they carry their names
// and the full envelope from day one.
const (
	EventJob       = "job"
	EventSnapshot  = "snapshot"
	EventDiff      = "diff"
	EventHeartbeat = "heartbeat"
)

// Event is the typed envelope shared by every v1 SSE stream: job
// progress frames on /v1/jobs/{id}/events and session frames on
// /v1/sessions/{id}/stream. Exactly one payload field matching Type is
// set (heartbeats carry none). Seq is the per-stream sequence number —
// the SSE id — that Last-Event-ID resume is keyed on; heartbeats do not
// advance it.
type Event struct {
	Type string `json:"type"`
	Seq  uint64 `json:"seq,omitempty"`
	// Session, on snapshot and diff frames, stamps the session's state
	// as of the frame — how a stream announces it has gone terminal.
	Session  *Session      `json:"session,omitempty"`
	Snapshot *SessionState `json:"snapshot,omitempty"`
	Diff     *SessionDiff  `json:"diff,omitempty"`
	Job      *Job          `json:"job,omitempty"`
}

// ErrUnknownEventType marks an SSE frame whose `event:` name this
// schema version does not know. Consumers should skip such frames — an
// older client surviving a newer server is the versioning policy's
// additive-change contract.
var ErrUnknownEventType = errors.New("api: unknown SSE event type")

// sseData renders the frame's data payload: the bare Job for unnamed
// job frames (deprecation window), the envelope itself otherwise.
func (e Event) sseData() ([]byte, error) {
	if e.Type == EventJob {
		if e.Job == nil {
			return nil, fmt.Errorf("api: job event without a job payload")
		}
		return json.Marshal(e.Job)
	}
	return json.Marshal(e)
}

// WriteSSE renders the event as one Server-Sent Events frame. Job
// frames stay unnamed with a bare Job payload (see the type constants);
// snapshot/diff frames carry `event:` name, envelope payload, and their
// seq as the SSE id; heartbeats are named but id-less, so they never
// disturb a client's Last-Event-ID.
func (e Event) WriteSSE(w io.Writer) error {
	data, err := e.sseData()
	if err != nil {
		return err
	}
	switch e.Type {
	case EventJob:
		_, err = fmt.Fprintf(w, "id: %d\ndata: %s\n\n", e.Seq, data)
	case EventHeartbeat:
		_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", e.Type, data)
	default:
		_, err = fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, data)
	}
	return err
}

// ParseSSE decodes one received frame from its `event:` name (empty for
// unnamed frames) and `data:` payload. Unnamed frames and the legacy
// "state" name decode as job frames for compatibility with pre-envelope
// servers. Names this schema does not know return ErrUnknownEventType;
// skip those frames.
func ParseSSE(name string, data []byte) (Event, error) {
	switch name {
	case "", "state", EventJob:
		var j Job
		if err := json.Unmarshal(data, &j); err != nil {
			return Event{}, fmt.Errorf("api: decoding job frame: %w", err)
		}
		return Event{Type: EventJob, Job: &j}, nil
	case EventSnapshot, EventDiff, EventHeartbeat:
		var e Event
		if err := json.Unmarshal(data, &e); err != nil {
			return Event{}, fmt.Errorf("api: decoding %s frame: %w", name, err)
		}
		if e.Type != name {
			return Event{}, fmt.Errorf("api: frame named %q carries envelope type %q", name, e.Type)
		}
		return e, nil
	default:
		return Event{}, fmt.Errorf("%w: %q", ErrUnknownEventType, name)
	}
}
