package api

import (
	"errors"
	"fmt"
)

// Session states. A paused session still accepts subscribers (they wait
// on the gap); terminal states are done (pattern finished), stopped
// (DELETE), and failed.
const (
	SessionRunning = "running"
	SessionPaused  = "paused"
	SessionDone    = "done"
	SessionStopped = "stopped"
	SessionFailed  = "failed"
)

// TerminalSessionState reports whether a session state is final.
func TerminalSessionState(s string) bool {
	return s == SessionDone || s == SessionStopped || s == SessionFailed
}

// SessionRequest starts a live simulation session: POST /v1/sessions.
// The run spec fields mirror RunRequest; the session knobs shape the
// stream, not the simulation, so none of them enter the run's content
// address.
type SessionRequest struct {
	SchemaVersion int      `json:"schema_version"`
	Algorithm     string   `json:"algorithm"`
	Seed          *uint64  `json:"seed,omitempty"`
	Config        *Config  `json:"config,omitempty"`
	Task          TaskSpec `json:"task"`

	// SampleMS is the sampling cadence in sim-milliseconds: one
	// snapshot-or-diff per SampleMS of simulated time. 0 means 500.
	SampleMS int64 `json:"sample_ms,omitempty"`
	// MaxRateHz caps the wall-clock update rate (updates/sec) by pacing
	// the simulation between samples — how an 8µs sim becomes a watchable
	// live stream. 0 streams as fast as the simulation runs.
	MaxRateHz float64 `json:"max_rate_hz,omitempty"`
	// HeartbeatMS is the per-subscriber heartbeat cadence in wall
	// milliseconds: a heartbeat frame fires when a stream has been idle
	// that long (paused sessions, aggressive pacing). 0 means 10000.
	HeartbeatMS int64 `json:"heartbeat_ms,omitempty"`
	// Buffer overrides the per-subscriber ring capacity, in events. A
	// subscriber that falls further behind is reset to a fresh snapshot
	// (drop-to-snapshot). 0 means the server default.
	Buffer int `json:"buffer,omitempty"`
}

// RunRequest projects the session's simulation spec — what the run
// scheduler and fingerprint vocabulary understand.
func (r SessionRequest) RunRequest() RunRequest {
	return RunRequest{
		SchemaVersion: r.SchemaVersion,
		Algorithm:     r.Algorithm,
		Seed:          r.Seed,
		Config:        r.Config,
		Task:          r.Task,
	}
}

// Validate aggregates every invalid field of the request.
func (r SessionRequest) Validate() error {
	var errs []error
	if err := r.RunRequest().Validate(); err != nil {
		errs = append(errs, err)
	}
	if r.SampleMS < 0 {
		errs = append(errs, fmt.Errorf("api: negative sample_ms %d", r.SampleMS))
	}
	if r.MaxRateHz < 0 {
		errs = append(errs, fmt.Errorf("api: negative max_rate_hz %g", r.MaxRateHz))
	}
	if r.HeartbeatMS < 0 {
		errs = append(errs, fmt.Errorf("api: negative heartbeat_ms %d", r.HeartbeatMS))
	}
	if r.Buffer < 0 {
		errs = append(errs, fmt.Errorf("api: negative buffer %d", r.Buffer))
	}
	return errors.Join(errs...)
}

// Session is the wire view of one live session: the submission
// response, GET /v1/sessions/{id}, and the stamp on snapshot/diff
// frames.
type Session struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	State         string `json:"state"`
	Error         string `json:"error,omitempty"`
	Algorithm     string `json:"algorithm"`
	// SampleMS echoes the effective sampling cadence (defaults applied).
	SampleMS  int64 `json:"sample_ms"`
	CreatedMS int64 `json:"created_ms"`
	// FinishedMS is set once the session is terminal.
	FinishedMS int64 `json:"finished_ms,omitempty"`
	// SimMS is the sim-time progress of the latest published state.
	SimMS int64 `json:"sim_ms"`
	// Seq is the latest published event sequence number.
	Seq uint64 `json:"seq"`
	// Subscribers is the current stream count.
	Subscribers int `json:"subscribers"`
	// Evictions counts drop-to-snapshot resets of slow subscribers.
	Evictions uint64 `json:"evictions,omitempty"`
}

// SessionNode is one node's state inside a session snapshot.
type SessionNode struct {
	// Util is the node's total utilization over the most recent
	// monitoring window, in [0,1].
	Util float64 `json:"util"`
	Down bool    `json:"down,omitempty"`
}

// SessionTask is one task's state inside a session snapshot.
type SessionTask struct {
	Name string `json:"name"`
	// Stages holds the replica placements per pipeline stage.
	Stages    [][]int `json:"stages"`
	Completed int     `json:"completed"`
	Missed    int     `json:"missed,omitempty"`
	InFlight  int     `json:"in_flight,omitempty"`
}

// clone deep-copies the task (the stage placements are the only
// reference field).
func (t SessionTask) clone() SessionTask {
	stages := make([][]int, len(t.Stages))
	for i, s := range t.Stages {
		stages[i] = append([]int(nil), s...)
	}
	t.Stages = stages
	return t
}

func (t SessionTask) equal(o SessionTask) bool {
	if t.Name != o.Name || t.Completed != o.Completed || t.Missed != o.Missed ||
		t.InFlight != o.InFlight || len(t.Stages) != len(o.Stages) {
		return false
	}
	for i := range t.Stages {
		if len(t.Stages[i]) != len(o.Stages[i]) {
			return false
		}
		for j := range t.Stages[i] {
			if t.Stages[i][j] != o.Stages[i][j] {
				return false
			}
		}
	}
	return true
}

// SessionState is one full state snapshot: the payload of snapshot
// frames, GET /v1/sessions/{id}/state, and the value session diffs fold
// over.
type SessionState struct {
	// SimMS is the sample's sim time in milliseconds.
	SimMS   int64         `json:"sim_ms"`
	Nodes   []SessionNode `json:"nodes"`
	Tasks   []SessionTask `json:"tasks"`
	Metrics Metrics       `json:"metrics"`
}

// Clone deep-copies the state.
func (s SessionState) Clone() SessionState {
	out := s
	out.Nodes = append([]SessionNode(nil), s.Nodes...)
	out.Tasks = make([]SessionTask, len(s.Tasks))
	for i, t := range s.Tasks {
		out.Tasks[i] = t.clone()
	}
	return out
}

// Equal reports exact equality — the invariant the stream-vs-final
// consistency checks assert. Metric floats compare exactly: both sides
// descend from the same deterministic simulation.
func (s SessionState) Equal(o SessionState) bool {
	if s.SimMS != o.SimMS || s.Metrics != o.Metrics ||
		len(s.Nodes) != len(o.Nodes) || len(s.Tasks) != len(o.Tasks) {
		return false
	}
	for i := range s.Nodes {
		if s.Nodes[i] != o.Nodes[i] {
			return false
		}
	}
	for i := range s.Tasks {
		if !s.Tasks[i].equal(o.Tasks[i]) {
			return false
		}
	}
	return true
}

// SessionNodeDelta is one changed node in a diff: the node's index plus
// its full new state (absolute values, so folding is exact).
type SessionNodeDelta struct {
	Node int `json:"node"`
	SessionNode
}

// SessionTaskDelta is one changed task in a diff, carried whole — tasks
// are few and placements small, so per-field deltas would buy bytes at
// the price of fold exactness.
type SessionTaskDelta struct {
	Task int `json:"task"`
	SessionTask
}

// SessionDiff is the delta between two consecutive snapshots: the
// payload of diff frames. Entries appear only for nodes/tasks that
// changed; Metrics is the full new counter block when any counter
// moved. Applying a diff to the state it was computed against yields
// the next state exactly (DiffStates/Apply are inverses).
type SessionDiff struct {
	SimMS   int64              `json:"sim_ms"`
	Nodes   []SessionNodeDelta `json:"nodes,omitempty"`
	Tasks   []SessionTaskDelta `json:"tasks,omitempty"`
	Metrics *Metrics           `json:"metrics,omitempty"`
}

// DiffStates computes next − prev. The result references next's task
// payloads via clones, so the caller may keep mutating its buffers.
func DiffStates(prev, next SessionState) SessionDiff {
	d := SessionDiff{SimMS: next.SimMS}
	for i, n := range next.Nodes {
		if i >= len(prev.Nodes) || prev.Nodes[i] != n {
			d.Nodes = append(d.Nodes, SessionNodeDelta{Node: i, SessionNode: n})
		}
	}
	for i, t := range next.Tasks {
		if i >= len(prev.Tasks) || !prev.Tasks[i].equal(t) {
			d.Tasks = append(d.Tasks, SessionTaskDelta{Task: i, SessionTask: t.clone()})
		}
	}
	if prev.Metrics != next.Metrics {
		m := next.Metrics
		d.Metrics = &m
	}
	return d
}

// Apply folds one diff into the state in place — the client-side half
// of the diff protocol.
func (s *SessionState) Apply(d SessionDiff) {
	s.SimMS = d.SimMS
	for _, nd := range d.Nodes {
		for nd.Node >= len(s.Nodes) {
			s.Nodes = append(s.Nodes, SessionNode{})
		}
		s.Nodes[nd.Node] = nd.SessionNode
	}
	for _, td := range d.Tasks {
		for td.Task >= len(s.Tasks) {
			s.Tasks = append(s.Tasks, SessionTask{})
		}
		s.Tasks[td.Task] = td.SessionTask.clone()
	}
	if d.Metrics != nil {
		s.Metrics = *d.Metrics
	}
}

// SessionStats counts sessions by state for GET /v1/stats.
type SessionStats struct {
	Active int `json:"active"`
	Paused int `json:"paused"`
	Done   int `json:"done"`
	// Subscribers is the total live stream count across sessions.
	Subscribers int `json:"subscribers"`
	// Evictions counts drop-to-snapshot resets across all sessions.
	Evictions uint64 `json:"evictions,omitempty"`
}

// JobPage is the paged response of GET /v1/jobs?limit=N[&after=ID]:
// jobs in submission order starting after the `after` cursor. NextAfter
// carries the cursor for the following page, empty when this page
// reaches the end. The parameterless GET /v1/jobs keeps returning the
// bare array for one deprecation window (DESIGN.md §6).
type JobPage struct {
	SchemaVersion int    `json:"schema_version"`
	Jobs          []Job  `json:"jobs"`
	NextAfter     string `json:"next_after,omitempty"`
}
