package api

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

var update = flag.Bool("update", false, "rewrite the golden JSON fixtures under testdata/")

// fixtureSeed keeps the RunRequest fixture deterministic.
var fixtureSeed = uint64(42)

// goldenDTOs instantiates one representative value of every v1 DTO. The
// fixtures under testdata/ pin their JSON encoding byte for byte: a
// change there is a wire-format change and must follow the versioning
// policy in the package comment (additive keeps SchemaVersion, anything
// else bumps it).
func goldenDTOs() map[string]any {
	cfg := DefaultConfig()
	cfg.Seed = 7
	cfg.Faults = []Fault{{Node: 2, AtNS: 10_200_000_000, DurationNS: 15_000_000_000}}
	cfg.Network.Partitions = []Window{{StartNS: 1_000_000_000, EndNS: 2_000_000_000}}
	m := Metrics{
		Periods: 120, Completed: 118, Missed: 2,
		MeanCPUUtil: 0.61, MeanNetUtil: 0.34,
		MeanReplicas: 2.5, MaxReplicas: 4,
		Replications: 9, Shutdowns: 7, AllocFailures: 1, UnfinishedWork: 3,
		DroppedMessages: 5, Retransmissions: 4, Crashes: 1, Recoveries: 1, MeanRecoveryMS: 42.5,
	}
	runRes := RunResult{SchemaVersion: SchemaVersion, Metrics: m, Failovers: 1, EventsFired: 123456}
	sweepRes := SweepResult{
		SchemaVersion: SchemaVersion,
		Points: []SweepPoint{
			{MaxUnits: 8, Algorithm: AlgPredictive, Metrics: m, Reps: []Metrics{m, m}},
			{MaxUnits: 8, Algorithm: AlgNonPredictive, Metrics: m},
		},
	}
	return map[string]any{
		"run_request": RunRequest{
			SchemaVersion: SchemaVersion,
			Algorithm:     AlgPredictive,
			Seed:          &fixtureSeed,
			Config:        &cfg,
			Task: TaskSpec{
				Pattern: Pattern{Kind: PatternTriangular, Min: 500, Max: 12000, Periods: 120, Cycles: 2},
				Models:  ModelsProfiled,
			},
		},
		"sweep_request": SweepRequest{
			SchemaVersion: SchemaVersion,
			Pattern:       SweepTriangular,
			Points:        []int{1, 4, 8, 16, 24},
			Seeds:         3,
		},
		"run_result":   runRes,
		"sweep_result": sweepRes,
		"job_run": Job{
			SchemaVersion: SchemaVersion,
			ID:            "job-1", Kind: "run", State: JobDone,
			CreatedMS: 1700000000000, StartedMS: 1700000000100, FinishedMS: 1700000004200,
			Run: &runRes,
		},
		"job_failed": Job{
			SchemaVersion: SchemaVersion,
			ID:            "job-2", Kind: "sweep", State: JobFailed,
			Error:     "api: unknown sweep pattern \"sawtooth\"",
			CreatedMS: 1700000000000, StartedMS: 1700000000100, FinishedMS: 1700000000100,
		},
		"job_retrying": Job{
			SchemaVersion: SchemaVersion,
			ID:            "job-3", Kind: "run", State: JobRetrying,
			Error:       "transient: injected journal stall",
			Attempts:    2,
			Fingerprint: "6b86b273ff34fce19d6b804eff5a3f5747ada4eaa22f1d49c01e52ddb7875b4b",
			CreatedMS:   1700000000000, StartedMS: 1700000000100,
		},
		"stats": Stats{
			SchemaVersion: SchemaVersion,
			Scheduler:     SchedulerStats{Requested: 10, Deduped: 2, MemoryHits: 3, DiskHits: 1, Simulated: 3, Cancelled: 1, Remote: 0},
			Jobs:          JobStats{Queued: 1, Running: 2, Done: 5, Failed: 1, Cancelled: 1},
			Sessions:      &SessionStats{Active: 1, Done: 2, Subscribers: 7, Evictions: 3},
			QueueDepth:    1, QueueCapacity: 64, Workers: 8,
			Draining:  false,
			Telemetry: map[string]float64{"rmserved_jobs_submitted_total{kind=\"run\"}": 9},
		},
		"error": ErrorEnvelope{Error: Error{Code: CodeQueueFull, Message: "job queue full (64 waiting); retry later"}},
		"pattern_custom": Pattern{
			Kind: PatternCustom, Label: "recorded", Values: []int{500, 900, 1400, 700},
		},
		"session_request": SessionRequest{
			SchemaVersion: SchemaVersion,
			Algorithm:     AlgPredictive,
			Seed:          &fixtureSeed,
			Task: TaskSpec{
				Pattern: Pattern{Kind: PatternTriangular, Min: 500, Max: 12000, Periods: 120, Cycles: 2},
			},
			SampleMS:    250,
			MaxRateHz:   20,
			HeartbeatMS: 5000,
			Buffer:      128,
		},
		"session":       fixtureSession(),
		"session_state": fixtureSessionState(),
		"event_snapshot": Event{
			Type: EventSnapshot, Seq: 1,
			Session:  ptr(fixtureSession()),
			Snapshot: ptr(fixtureSessionState()),
		},
		"event_diff": Event{
			Type: EventDiff, Seq: 2,
			Session: ptr(fixtureSession()),
			Diff: &SessionDiff{
				SimMS: 1500,
				Nodes: []SessionNodeDelta{{Node: 2, SessionNode: SessionNode{Util: 0.91, Down: true}}},
				Tasks: []SessionTaskDelta{{Task: 0, SessionTask: SessionTask{
					Name: "benchmark", Stages: [][]int{{0}, {1, 3}, {2}}, Completed: 3, Missed: 1,
				}}},
				Metrics: &Metrics{Periods: 3, Completed: 3, Missed: 1, MaxReplicas: 6},
			},
		},
		"event_heartbeat": Event{Type: EventHeartbeat},
		"job_page": JobPage{
			SchemaVersion: SchemaVersion,
			Jobs: []Job{{
				SchemaVersion: SchemaVersion,
				ID:            "job-2", Kind: "run", State: JobDone,
				CreatedMS: 1700000000000, StartedMS: 1700000000100, FinishedMS: 1700000004200,
				Run: &runRes,
			}},
			NextAfter: "job-2",
		},
	}
}

func ptr[T any](v T) *T { return &v }

// fixtureSession and fixtureSessionState are shared by several golden
// DTOs, so the fixtures stay mutually consistent.
func fixtureSession() Session {
	return Session{
		SchemaVersion: SchemaVersion,
		ID:            "sess-1", State: SessionRunning,
		Algorithm: AlgPredictive, SampleMS: 250,
		CreatedMS: 1700000000000, SimMS: 1250, Seq: 5,
		Subscribers: 2, Evictions: 1,
	}
}

func fixtureSessionState() SessionState {
	return SessionState{
		SimMS: 1250,
		Nodes: []SessionNode{{Util: 0.42}, {Util: 0.77}, {Util: 0, Down: true}, {Util: 0.11}, {Util: 0.5}, {Util: 0.31}},
		Tasks: []SessionTask{{
			Name: "benchmark", Stages: [][]int{{0}, {1, 3}, {2}}, Completed: 2, InFlight: 1,
		}},
		Metrics: Metrics{Periods: 2, Completed: 2, MeanCPUUtil: 0.4, MaxReplicas: 6, Crashes: 1},
	}
}

// TestGoldenFixtures pins the JSON encoding of every v1 DTO. Run with
// -update to regenerate after an intentional wire change.
func TestGoldenFixtures(t *testing.T) {
	for name, v := range goldenDTOs() {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			enc := json.NewEncoder(&buf)
			enc.SetIndent("", "  ")
			if err := enc.Encode(v); err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name+".json")
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden fixture (run `go test ./internal/api -update`): %v", err)
			}
			if !bytes.Equal(want, buf.Bytes()) {
				t.Errorf("encoding of %s drifted from its golden fixture.\nThis is a wire-format change — follow the versioning policy, then regenerate with -update.\n got:\n%s\nwant:\n%s", name, buf.Bytes(), want)
			}
		})
	}
}

// TestGoldenFixturesDecode proves every fixture decodes back to the
// exact value it was encoded from — no field silently dropped.
func TestGoldenFixturesDecode(t *testing.T) {
	for name, v := range goldenDTOs() {
		t.Run(name, func(t *testing.T) {
			data, err := os.ReadFile(filepath.Join("testdata", name+".json"))
			if err != nil {
				t.Fatal(err)
			}
			got := reflect.New(reflect.TypeOf(v))
			if err := json.Unmarshal(data, got.Interface()); err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got.Elem().Interface(), v) {
				t.Errorf("decode(encode(%s)) != original:\n got %+v\nwant %+v", name, got.Elem().Interface(), v)
			}
		})
	}
}

// TestConfigRoundTrip proves the Table 1 defaults (and a config with
// every optional section populated) survive the wire exactly.
func TestConfigRoundTrip(t *testing.T) {
	cases := map[string]core.Config{"default": core.DefaultConfig()}
	loaded := core.DefaultConfig()
	loaded.Seed = 99
	loaded.ClockSync = true
	loaded.ClockDriftPPM = 50
	loaded.Faults = []core.Fault{{Node: 1, At: 5_000_000_000}}
	loaded.Degradation = core.HardenedDegradation()
	loaded.Network.DropProb = 0.01
	loaded.Network.LossSeed = 3
	cases["loaded"] = loaded
	for name, want := range cases {
		t.Run(name, func(t *testing.T) {
			got, err := ConfigFromCore(want).ToCore()
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("config did not survive the wire round trip:\n got %+v\nwant %+v", got, want)
			}
		})
	}
}

// TestConfigMirrorsEveryCoreField reflectively mutates each leaf of
// core.Config (Telemetry excepted — it observes a run, it does not shape
// one) and asserts the mutation is visible in the wire encoding. A new
// core knob that the mirror misses fails here, not in production as a
// silently-ignored field.
func TestConfigMirrorsEveryCoreField(t *testing.T) {
	base := core.DefaultConfig()
	baseJSON, err := json.Marshal(ConfigFromCore(base))
	if err != nil {
		t.Fatal(err)
	}
	mutateLeaf := func(f reflect.Value) bool {
		switch f.Kind() {
		case reflect.Bool:
			f.SetBool(!f.Bool())
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			f.SetInt(f.Int() + 1)
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			f.SetUint(f.Uint() + 1)
		case reflect.Float32, reflect.Float64:
			f.SetFloat(f.Float() + 0.25)
		case reflect.String:
			f.SetString(f.String() + "x")
		default:
			return false
		}
		return true
	}
	var walk func(t *testing.T, root *core.Config, v reflect.Value, path string)
	check := func(t *testing.T, root *core.Config, name string) {
		mutated, err := json.Marshal(ConfigFromCore(*root))
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Equal(mutated, baseJSON) {
			t.Errorf("core.Config.%s: mutation invisible on the wire — the api.Config mirror is missing this field", name)
		}
	}
	walk = func(t *testing.T, root *core.Config, v reflect.Value, path string) {
		for i := 0; i < v.NumField(); i++ {
			sf := v.Type().Field(i)
			if !sf.IsExported() {
				continue
			}
			f := v.Field(i)
			name := path + sf.Name
			switch f.Kind() {
			case reflect.Struct:
				walk(t, root, f, name+".")
			case reflect.Slice:
				el := reflect.New(sf.Type.Elem()).Elem()
				f.Set(reflect.Append(reflect.MakeSlice(sf.Type, 0, 1), el))
				check(t, root, name)
				f.Set(reflect.Zero(sf.Type))
			case reflect.Ptr, reflect.Interface:
				// Telemetry: deliberately not on the wire.
				continue
			default:
				if !mutateLeaf(f) {
					t.Errorf("core.Config.%s: kind %v not handled by the walker", name, f.Kind())
					continue
				}
				check(t, root, name)
				// Restore the defaults in place; the reflect values all
				// point into root's memory, so they stay valid.
				*root = core.DefaultConfig()
			}
		}
	}
	cfg := core.DefaultConfig()
	walk(t, &cfg, reflect.ValueOf(&cfg).Elem(), "")
}

// TestPatternRoundTrip proves every workload pattern type the schema
// expresses survives encode → materialize exactly.
func TestPatternRoundTrip(t *testing.T) {
	patterns := []workload.Pattern{
		workload.NewTriangular(500, 12000, 120, 2),
		workload.NewIncreasingRamp(500, 8000, 60),
		workload.NewDecreasingRamp(500, 8000, 60),
		workload.NewStep(500, 9000, 100, 50),
		workload.NewBurst(500, 11000, 120, 20, 5),
		workload.NewSinusoid(500, 10000, 120, 3),
		workload.NewConstant(4000, 40),
		workload.NewCustom("trace", []int{500, 900, 1400}),
	}
	for _, p := range patterns {
		wire, ok := PatternFromWorkload(p)
		if !ok {
			t.Errorf("%T: not encodable", p)
			continue
		}
		back, err := wire.ToWorkload()
		if err != nil {
			t.Errorf("%T: %v", p, err)
			continue
		}
		if !reflect.DeepEqual(back, p) {
			t.Errorf("%T: round trip drifted:\n got %+v\nwant %+v", p, back, p)
		}
	}
}

// TestRunRequestValidateAggregates proves a multiply-broken request
// reports every problem at once, not just the first.
func TestRunRequestValidateAggregates(t *testing.T) {
	req := RunRequest{
		SchemaVersion: 99,
		Algorithm:     "oracle",
		Task:          TaskSpec{Pattern: Pattern{Kind: "sawtooth"}, Models: "vibes"},
	}
	err := req.Validate()
	if err == nil {
		t.Fatal("want an error for an invalid request")
	}
	for _, frag := range []string{"schema_version 99", "oracle", "sawtooth", "vibes"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("aggregated error should mention %q; got:\n%v", frag, err)
		}
	}
}

// TestSweepRequestValidate covers the sweep-specific rules.
func TestSweepRequestValidate(t *testing.T) {
	good := SweepRequest{SchemaVersion: SchemaVersion, Pattern: SweepTriangular, Points: []int{1, 2}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	bad := SweepRequest{SchemaVersion: SchemaVersion, Pattern: "sawtooth", Seeds: -1}
	err := bad.Validate()
	if err == nil {
		t.Fatal("want an error")
	}
	for _, frag := range []string{"sawtooth", "≥1 point", "negative seed"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("want %q in:\n%v", frag, err)
		}
	}
}

// TestTerminalState pins which states are final.
func TestTerminalState(t *testing.T) {
	for state, terminal := range map[string]bool{
		JobQueued: false, JobRunning: false, JobRetrying: false,
		JobDone: true, JobFailed: true, JobCancelled: true,
	} {
		if TerminalState(state) != terminal {
			t.Errorf("TerminalState(%q) = %v, want %v", state, TerminalState(state), terminal)
		}
	}
}
