package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// TestDiffApplyRoundTrip proves DiffStates/Apply are inverses: folding
// each diff over the previous state reconstructs the next state exactly
// — the invariant the stream consistency checks ride on.
func TestDiffApplyRoundTrip(t *testing.T) {
	states := []SessionState{
		{
			SimMS:   500,
			Nodes:   []SessionNode{{Util: 0.1}, {Util: 0.2}, {Util: 0.3}},
			Tasks:   []SessionTask{{Name: "t", Stages: [][]int{{0}, {1}}, Completed: 1}},
			Metrics: Metrics{Periods: 1, Completed: 1},
		},
		{ // util moves, node crashes, replication, counters grow
			SimMS:   1000,
			Nodes:   []SessionNode{{Util: 0.4}, {Util: 0.2}, {Down: true}},
			Tasks:   []SessionTask{{Name: "t", Stages: [][]int{{0}, {1, 2}}, Completed: 2, Missed: 1}},
			Metrics: Metrics{Periods: 2, Completed: 2, Missed: 1, Replications: 1},
		},
		{ // nothing but time moves: empty diff body
			SimMS:   1500,
			Nodes:   []SessionNode{{Util: 0.4}, {Util: 0.2}, {Down: true}},
			Tasks:   []SessionTask{{Name: "t", Stages: [][]int{{0}, {1, 2}}, Completed: 2, Missed: 1}},
			Metrics: Metrics{Periods: 2, Completed: 2, Missed: 1, Replications: 1},
		},
	}
	folded := states[0].Clone()
	for i := 1; i < len(states); i++ {
		d := DiffStates(states[i-1], states[i])
		if i == 2 && (len(d.Nodes) != 0 || len(d.Tasks) != 0 || d.Metrics != nil) {
			t.Errorf("no-change diff not empty: %+v", d)
		}
		// The diff must survive the wire, too.
		data, err := json.Marshal(d)
		if err != nil {
			t.Fatal(err)
		}
		var back SessionDiff
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		folded.Apply(back)
		if !folded.Equal(states[i]) {
			t.Fatalf("fold drifted at step %d:\n got %+v\nwant %+v", i, folded, states[i])
		}
	}
}

// TestSessionStateCloneIndependent proves clones share no memory.
func TestSessionStateCloneIndependent(t *testing.T) {
	orig := fixtureSessionState()
	cl := orig.Clone()
	cl.Nodes[0].Util = 9
	cl.Tasks[0].Stages[0][0] = 9
	cl.Tasks[0].Completed = 9
	if orig.Nodes[0].Util == 9 || orig.Tasks[0].Stages[0][0] == 9 || orig.Tasks[0].Completed == 9 {
		t.Error("Clone shares memory with its source")
	}
	if !orig.Equal(orig.Clone()) {
		t.Error("Clone not Equal to its source")
	}
}

// TestEventSSERoundTrip proves WriteSSE → ParseSSE preserves every
// event type, and pins the frame shapes the compatibility story depends
// on: job frames unnamed with a bare Job payload, heartbeats id-less.
func TestEventSSERoundTrip(t *testing.T) {
	sess := fixtureSession()
	events := []Event{
		{Type: EventJob, Seq: 3, Job: &Job{SchemaVersion: SchemaVersion, ID: "job-1", Kind: "run", State: JobRunning, CreatedMS: 5}},
		{Type: EventSnapshot, Seq: 1, Session: &sess, Snapshot: ptr(fixtureSessionState())},
		{Type: EventDiff, Seq: 2, Session: &sess, Diff: &SessionDiff{SimMS: 1500}},
		{Type: EventHeartbeat},
	}
	for _, ev := range events {
		var buf bytes.Buffer
		if err := ev.WriteSSE(&buf); err != nil {
			t.Fatal(err)
		}
		frame := buf.String()
		if !strings.HasSuffix(frame, "\n\n") {
			t.Errorf("%s frame not terminated by a blank line:\n%q", ev.Type, frame)
		}
		var name, data, id string
		for _, line := range strings.Split(strings.TrimSuffix(frame, "\n\n"), "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				name = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				data = strings.TrimPrefix(line, "data: ")
			case strings.HasPrefix(line, "id: "):
				id = strings.TrimPrefix(line, "id: ")
			}
		}
		switch ev.Type {
		case EventJob:
			if name != "" {
				t.Errorf("job frame carries event name %q; must stay unnamed through the deprecation window", name)
			}
			var j Job
			if err := json.Unmarshal([]byte(data), &j); err != nil || j.ID != "job-1" {
				t.Errorf("job frame data is not a bare Job: %q (%v)", data, err)
			}
		case EventHeartbeat:
			if id != "" {
				t.Errorf("heartbeat carries an id %q; it must not disturb Last-Event-ID", id)
			}
		default:
			if name != ev.Type {
				t.Errorf("frame named %q, want %q", name, ev.Type)
			}
			if id == "" {
				t.Errorf("%s frame has no id", ev.Type)
			}
		}
		got, err := ParseSSE(name, []byte(data))
		if err != nil {
			t.Fatalf("ParseSSE(%s): %v", ev.Type, err)
		}
		if got.Type == EventJob {
			// A bare Job payload cannot carry the envelope seq; receivers
			// restore it from the SSE id line, as a client does.
			if id != strconv.FormatUint(ev.Seq, 10) {
				t.Errorf("job frame id %q, want %d", id, ev.Seq)
			}
			got.Seq = ev.Seq
		}
		if !reflect.DeepEqual(got, ev) {
			t.Errorf("SSE round trip drifted for %s:\n got %+v\nwant %+v", ev.Type, got, ev)
		}
	}
}

// TestParseSSECompat pins the legacy input shapes: unnamed frames and
// the pre-envelope "state" name both decode as job events; unknown
// names return ErrUnknownEventType for skipping.
func TestParseSSECompat(t *testing.T) {
	data := []byte(`{"schema_version":1,"id":"job-9","kind":"run","state":"done","created_ms":1}`)
	for _, name := range []string{"", "state", EventJob} {
		ev, err := ParseSSE(name, data)
		if err != nil {
			t.Fatalf("name %q: %v", name, err)
		}
		if ev.Type != EventJob || ev.Job == nil || ev.Job.ID != "job-9" {
			t.Errorf("name %q: got %+v", name, ev)
		}
	}
	if _, err := ParseSSE("telemetry", []byte("{}")); !errors.Is(err, ErrUnknownEventType) {
		t.Errorf("unknown name: got %v, want ErrUnknownEventType", err)
	}
}

// TestSessionRequestValidateAggregates mirrors the RunRequest test for
// the session knobs.
func TestSessionRequestValidateAggregates(t *testing.T) {
	good := SessionRequest{
		SchemaVersion: SchemaVersion,
		Algorithm:     AlgPredictive,
		Task:          TaskSpec{Pattern: Pattern{Kind: PatternConstant, Value: 500, Periods: 10}},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid request rejected: %v", err)
	}
	bad := SessionRequest{
		SchemaVersion: 99,
		Algorithm:     "oracle",
		Task:          TaskSpec{Pattern: Pattern{Kind: PatternConstant, Value: 500, Periods: 10}},
		SampleMS:      -1,
		MaxRateHz:     -2,
		HeartbeatMS:   -3,
		Buffer:        -4,
	}
	err := bad.Validate()
	if err == nil {
		t.Fatal("want an error")
	}
	for _, frag := range []string{"schema_version 99", "oracle", "sample_ms", "max_rate_hz", "heartbeat_ms", "buffer"} {
		if !strings.Contains(err.Error(), frag) {
			t.Errorf("aggregated error should mention %q; got:\n%v", frag, err)
		}
	}
}

// TestTerminalSessionState pins which session states are final.
func TestTerminalSessionState(t *testing.T) {
	for state, terminal := range map[string]bool{
		SessionRunning: false, SessionPaused: false,
		SessionDone: true, SessionStopped: true, SessionFailed: true,
	} {
		if TerminalSessionState(state) != terminal {
			t.Errorf("TerminalSessionState(%q) = %v, want %v", state, TerminalSessionState(state), terminal)
		}
	}
}
