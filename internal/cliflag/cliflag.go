// Package cliflag defines the flags shared by the rmsim, rmexperiments,
// rmprofile, and rmserved binaries in one place, so a flag spelled the
// same way means the same thing — same name, same help text, same
// default — in every tool. Binary-specific flags stay in their mains;
// only genuinely shared knobs live here. The README's flag matrix is
// generated from these definitions in spirit: update both together.
package cliflag

import "flag"

// Seed registers -seed: the deterministic simulation (or profiling)
// seed. Defaults differ per binary (rmsim pins 1, rmprofile pins 11) so
// historical outputs stay reproducible; the default is the caller's.
func Seed(fs *flag.FlagSet, def uint64) *uint64 {
	return fs.Uint64("seed", def, "deterministic simulation seed")
}

// Parallel registers -parallel: the worker-pool width for concurrent
// simulations. Zero means NumCPU.
func Parallel(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
}

// CacheDir registers -cache-dir: the persistent content-addressed run
// cache. Empty disables persistence.
func CacheDir(fs *flag.FlagSet) *string {
	return fs.String("cache-dir", "", "persistent content-addressed run cache directory (created if missing)")
}

// Seeds registers -seeds: Monte Carlo replications per sweep cell.
func Seeds(fs *flag.FlagSet) *int {
	return fs.Int("seeds", 1, "Monte Carlo replications per sweep cell; ≥2 adds ±95% CI columns")
}

// Addr registers -addr: a listen address for a serving binary.
func Addr(fs *flag.FlagSet, def string) *string {
	return fs.String("addr", def, "listen address (host:port; :0 picks a free port)")
}

// LogFormat registers -log-format: the structured-log output format
// shared by every binary (obs.NewLogger validates the value).
func LogFormat(fs *flag.FlagSet) *string {
	return fs.String("log-format", "text", "structured log format: text | json")
}
