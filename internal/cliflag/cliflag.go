// Package cliflag defines the flags shared by the rmsim, rmexperiments,
// rmprofile, and rmserved binaries in one place, so a flag spelled the
// same way means the same thing — same name, same help text, same
// default — in every tool. Binary-specific flags stay in their mains;
// only genuinely shared knobs live here. The README's flag matrix is
// generated from these definitions in spirit: update both together.
package cliflag

import (
	"flag"
	"fmt"
	"strings"

	"repro/internal/core"
)

// Seed registers -seed: the deterministic simulation (or profiling)
// seed. Defaults differ per binary (rmsim pins 1, rmprofile pins 11) so
// historical outputs stay reproducible; the default is the caller's.
func Seed(fs *flag.FlagSet, def uint64) *uint64 {
	return fs.Uint64("seed", def, "deterministic simulation seed")
}

// Alg registers -alg: the allocation policy for a run. The help text is
// generated from the internal/policy registry, so a newly registered
// policy appears in every binary's usage without touching the mains.
func Alg(fs *flag.FlagSet) *string {
	return fs.String("alg", string(core.Predictive),
		"allocation policy: "+core.AlgorithmNames())
}

// Policies registers -policies: a comma-separated subset of registered
// policies for experiments that sweep the whole registry (ext-tournament).
// Empty means every registered policy. ParsePolicies validates the value.
func Policies(fs *flag.FlagSet) *string {
	return fs.String("policies", "",
		"comma-separated policy subset for registry sweeps (default: all of "+core.AlgorithmNames()+")")
}

// ParsePolicies splits and validates a -policies value against the
// registry. Empty input returns nil (meaning "all registered").
func ParsePolicies(v string) ([]string, error) {
	if strings.TrimSpace(v) == "" {
		return nil, nil
	}
	var out []string
	for _, name := range strings.Split(v, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if !core.ValidAlgorithm(core.Algorithm(name)) {
			return nil, fmt.Errorf("unknown policy %q (registered: %s)", name, core.AlgorithmNames())
		}
		out = append(out, name)
	}
	return out, nil
}

// Parallel registers -parallel: the worker-pool width for concurrent
// simulations. Zero means NumCPU.
func Parallel(fs *flag.FlagSet) *int {
	return fs.Int("parallel", 0, "max concurrent simulations (0 = NumCPU)")
}

// CacheDir registers -cache-dir: the persistent content-addressed run
// cache. Empty disables persistence.
func CacheDir(fs *flag.FlagSet) *string {
	return fs.String("cache-dir", "", "persistent content-addressed run cache directory (created if missing)")
}

// Seeds registers -seeds: Monte Carlo replications per sweep cell.
func Seeds(fs *flag.FlagSet) *int {
	return fs.Int("seeds", 1, "Monte Carlo replications per sweep cell; ≥2 adds ±95% CI columns")
}

// Addr registers -addr: a listen address for a serving binary.
func Addr(fs *flag.FlagSet, def string) *string {
	return fs.String("addr", def, "listen address (host:port; :0 picks a free port)")
}

// LogFormat registers -log-format: the structured-log output format
// shared by every binary (obs.NewLogger validates the value).
func LogFormat(fs *flag.FlagSet) *string {
	return fs.String("log-format", "text", "structured log format: text | json")
}
