package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/api"
	"repro/internal/session"
	"repro/internal/telemetry"
)

// handleCreateSession starts a live simulation session. Unlike job
// submission there is no queue: a session occupies its own goroutine
// for its whole (possibly paced, possibly long) life, so the live cap
// is the backpressure and over-cap creation is rejected outright.
func (s *Server) handleCreateSession(w http.ResponseWriter, r *http.Request) {
	var req api.SessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "decoding session request: %v", err)
		return
	}
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, api.CodeDraining, "server is draining; not accepting new sessions")
		s.counter("rmserved_rejected_total", telemetry.Label{Key: "reason", Value: "draining"})
		return
	}
	sess, err := s.sessions.Create(req)
	switch {
	case err == nil:
	case errors.Is(err, session.ErrDraining):
		writeError(w, http.StatusServiceUnavailable, api.CodeDraining, "%v", err)
		return
	case errors.Is(err, session.ErrTooManySessions):
		writeError(w, http.StatusTooManyRequests, api.CodeQueueFull, "%v", err)
		s.counter("rmserved_rejected_total", telemetry.Label{Key: "reason", Value: "session_cap"})
		return
	default:
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, "%v", err)
		return
	}
	s.counter("rmserved_sessions_started_total")
	s.log.Info("session started", "session", sess.ID)
	writeJSON(w, http.StatusCreated, sess.Info())
}

// lookupSession fetches a session by path id, writing the 404 envelope
// on miss.
func (s *Server) lookupSession(w http.ResponseWriter, r *http.Request) *session.Session {
	id := r.PathValue("id")
	sess, err := s.sessions.Get(id)
	if err != nil {
		writeError(w, http.StatusNotFound, api.CodeNotFound, "unknown session %q", id)
		return nil
	}
	return sess
}

func (s *Server) handleListSessions(w http.ResponseWriter, r *http.Request) {
	sessions := s.sessions.List()
	out := make([]api.Session, 0, len(sessions))
	for _, sess := range sessions {
		out = append(out, sess.Info())
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetSession(w http.ResponseWriter, r *http.Request) {
	if sess := s.lookupSession(w, r); sess != nil {
		writeJSON(w, http.StatusOK, sess.Info())
	}
}

// handleSessionState serves the latest published snapshot — the
// poll-based alternative to the stream for dashboards that only want
// "now".
func (s *Server) handleSessionState(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	st, ok := sess.State()
	if !ok {
		writeError(w, http.StatusConflict, api.CodeConflict, "session %s has not published state yet", sess.ID)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handlePauseSession(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	if err := sess.Pause(); err != nil {
		writeError(w, http.StatusConflict, api.CodeConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

func (s *Server) handleResumeSession(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	if err := sess.Resume(); err != nil {
		writeError(w, http.StatusConflict, api.CodeConflict, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

// handleStopSession mirrors job cancellation: stopping a terminal
// session conflicts, stopping a live one waits for the terminal
// transition so the response carries the final state.
func (s *Server) handleStopSession(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	if api.TerminalSessionState(sess.Info().State) {
		writeError(w, http.StatusConflict, api.CodeConflict, "session %s already %s", sess.ID, sess.Info().State)
		return
	}
	s.log.Info("session stop requested", "session", sess.ID)
	sess.Stop()
	select {
	case <-sess.Done():
	case <-r.Context().Done():
		return
	}
	writeJSON(w, http.StatusOK, sess.Info())
}

// handleSessionStream serves GET /v1/sessions/{id}/stream: the SSE
// fan-out of snapshot/diff frames. The first frame is a snapshot (or,
// with a Last-Event-ID inside the replay window, the missed diff tail);
// heartbeat frames fire on idle streams and never carry an id, so they
// don't disturb resume positions.
func (s *Server) handleSessionStream(w http.ResponseWriter, r *http.Request) {
	sess := s.lookupSession(w, r)
	if sess == nil {
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var lastID uint64
	if v := r.Header.Get("Last-Event-ID"); v != "" {
		lastID, _ = strconv.ParseUint(v, 10, 64)
	}
	sub := sess.Subscribe(lastID)
	defer sess.Unsubscribe(sub)
	s.metrics.AddSSESubscribers(1)
	defer s.metrics.AddSSESubscribers(-1)

	hb := sess.Heartbeat()
	for {
		ctx, cancel := r.Context(), context.CancelFunc(func() {})
		if hb > 0 {
			ctx, cancel = context.WithTimeout(ctx, hb)
		}
		ev, err := sub.Next(ctx)
		cancel()
		switch {
		case err == nil:
			if ev.WriteSSE(w) != nil {
				return
			}
			fl.Flush()
		case errors.Is(err, session.ErrClosed):
			// Terminal snapshot already delivered; end the stream.
			return
		case errors.Is(err, context.DeadlineExceeded) && r.Context().Err() == nil:
			hbEv := api.Event{Type: api.EventHeartbeat}
			if hbEv.WriteSSE(w) != nil {
				return
			}
			fl.Flush()
		default:
			// Client gone.
			return
		}
	}
}
