package server

// In-package unit tests for the WAL primitives and the Retry-After
// estimator; the HTTP-level crash and fault suites live in
// resilience_test.go (package server_test).

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/api"
	"repro/internal/resil"
)

func testRecords() []journalRecord {
	run := api.RunRequest{SchemaVersion: api.SchemaVersion, Algorithm: api.AlgPredictive}
	return []journalRecord{
		{Type: "submit", Job: "job-1", MS: 100, Kind: "run", Run: &run, Fingerprint: "abcd"},
		{Type: "start", Job: "job-1", MS: 110},
		{Type: "finish", Job: "job-1", MS: 150, State: api.JobDone, Attempts: 1},
		{Type: "submit", Job: "job-2", MS: 200, Kind: "sweep", Sweep: &api.SweepRequest{SchemaVersion: api.SchemaVersion, Pattern: api.SweepTriangular}},
		{Type: "start", Job: "job-2", MS: 210},
	}
}

// TestJournalRoundTrip: records appended to a fresh journal replay back
// exactly, and the next daemon's job IDs continue after the replayed
// ones.
func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jl, recs, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	want := testRecords()
	for _, rec := range want {
		if err := jl.append(rec); err != nil {
			t.Fatal(err)
		}
	}
	jl.Close()

	_, got, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Type != want[i].Type || got[i].Job != want[i].Job || got[i].MS != want[i].MS || got[i].State != want[i].State {
			t.Errorf("record %d drifted: got %+v want %+v", i, got[i], want[i])
		}
	}

	jobs, maxSeq := foldRecords(got)
	if maxSeq != 2 {
		t.Errorf("maxSeq = %d, want 2", maxSeq)
	}
	if len(jobs) != 2 {
		t.Fatalf("folded %d jobs, want 2", len(jobs))
	}
	if jobs[0].state != api.JobDone || jobs[0].fingerprint != "abcd" || jobs[0].attempts != 1 {
		t.Errorf("job-1 folded wrong: %+v", jobs[0])
	}
	if jobs[1].state != "" || jobs[1].kind != "sweep" || jobs[1].startedMS != 210 {
		t.Errorf("job-2 folded wrong: %+v", jobs[1])
	}
}

// TestJournalTornTailTruncated: a crash mid-append leaves a torn final
// record; replay keeps the intact prefix, truncates the tail, and the
// journal keeps accepting appends.
func TestJournalTornTailTruncated(t *testing.T) {
	for name, tail := range map[string]string{
		"unterminated": `0075bcd1 {"type":"submit","job":"jo`,
		"bad_crc":      "deadbeef {\"type\":\"submit\",\"job\":\"job-9\",\"ms\":1}\n",
		"bad_json":     "890552f9 {\"type\":\"submit\",\n",
		"short_line":   "00\n",
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			jl, _, err := openJournal(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := testRecords()[:2]
			for _, rec := range want {
				if err := jl.append(rec); err != nil {
					t.Fatal(err)
				}
			}
			jl.Close()

			path := filepath.Join(dir, journalFile)
			f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteString(tail)
			f.Close()

			jl2, recs, err := openJournal(dir, nil)
			if err != nil {
				t.Fatalf("replay with torn tail: %v", err)
			}
			if len(recs) != len(want) {
				t.Fatalf("replayed %d records, want the %d intact ones", len(recs), len(want))
			}
			// The tail is gone from disk, and the log accepts new records
			// at the truncation point.
			if err := jl2.append(testRecords()[2]); err != nil {
				t.Fatal(err)
			}
			jl2.Close()
			_, recs, err = openJournal(dir, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(recs) != 3 {
				t.Fatalf("after truncate+append, replayed %d records, want 3", len(recs))
			}
		})
	}
}

// TestJournalTornWriteInjected: the same torn-tail recovery, but with
// the tear produced by the fault injector exactly as a crash mid-write
// would — a prefix of the record durable, the rest lost.
func TestJournalTornWriteInjected(t *testing.T) {
	dir := t.TempDir()
	inj := resil.NewInjector(nil)
	jl, _, err := openJournal(dir, inj)
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.append(testRecords()[0]); err != nil {
		t.Fatal(err)
	}
	inj.Inject(resil.Rule{Op: resil.OpWrite, Path: journalFile, Count: 1, TornBytes: 17, Err: os.ErrClosed})
	if err := jl.append(testRecords()[1]); err == nil {
		t.Fatal("torn append reported success")
	}
	jl.Close()

	_, recs, err := openJournal(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Type != "submit" {
		t.Fatalf("want exactly the intact first record back, got %+v", recs)
	}
}

// TestRetryAfterSeconds pins the drain-rate estimate: backlog times
// per-job duration over the worker pool, clamped to [1s, 60s], with a
// 2s floor before any duration signal exists.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		queued, workers int
		avg             time.Duration
		want            int
	}{
		{0, 4, 0, 2},                     // no signal yet
		{10, 4, 0, 2},                    // still no signal
		{0, 4, 2 * time.Second, 1},       // near-empty queue drains fast
		{7, 4, 2 * time.Second, 4},       // 8 jobs × 2s / 4 workers
		{100, 1, 30 * time.Second, 60},   // clamped high
		{0, 8, 10 * time.Millisecond, 1}, // clamped low
		{5, 0, time.Second, 6},           // workers ≤0 treated as 1
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.queued, c.workers, c.avg); got != c.want {
			t.Errorf("retryAfterSeconds(%d, %d, %v) = %d, want %d", c.queued, c.workers, c.avg, got, c.want)
		}
	}
}
