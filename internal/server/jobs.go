package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/experiment"
	"repro/internal/obs"
	"repro/internal/resil"
	"repro/internal/telemetry"
)

// job is the server-side state of one submitted run or sweep. The wire
// view (api.Job) is a snapshot; subscribers receive a fresh snapshot on
// every state transition.
type job struct {
	id   string
	kind string // "run" | "sweep"

	run   api.RunRequest
	sweep api.SweepRequest
	// fingerprint is the run's content address (run jobs only), stamped
	// at submission so clients and the journal can correlate resubmitted
	// work across daemon restarts.
	fingerprint string

	mu       sync.Mutex
	state    string
	errMsg   string
	attempts int
	seq      uint64 // transition sequence, the SSE event id
	runRes   *api.RunResult
	sweepRes *api.SweepResult
	created  time.Time
	started  time.Time
	finished time.Time
	subs     map[chan jobEvent]struct{}

	cancel context.CancelFunc
	ctx    context.Context
	done   chan struct{}
}

// jobEvent is one SSE frame: the snapshot plus its monotonic sequence
// number, which the wire carries as the SSE id so clients can resume a
// dropped stream with Last-Event-ID.
type jobEvent struct {
	seq  uint64
	snap api.Job
}

// snapshot renders the wire view under the job's lock.
func (j *job) snapshot() api.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

// current returns the snapshot together with its sequence number, read
// atomically (the SSE handler's dedup decision needs both).
func (j *job) current() (uint64, api.Job) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq, j.snapshotLocked()
}

func (j *job) snapshotLocked() api.Job {
	out := api.Job{
		SchemaVersion: api.SchemaVersion,
		ID:            j.id,
		Kind:          j.kind,
		State:         j.state,
		Error:         j.errMsg,
		Attempts:      j.attempts,
		Fingerprint:   j.fingerprint,
		CreatedMS:     j.created.UnixMilli(),
		Run:           j.runRes,
		Sweep:         j.sweepRes,
	}
	if !j.started.IsZero() {
		out.StartedMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		out.FinishedMS = j.finished.UnixMilli()
	}
	return out
}

// transition moves the job to a new state and fans the snapshot out to
// every SSE subscriber. Terminal transitions close done and drop the
// subscriber set — late subscribers get one final snapshot and EOF.
func (j *job) transition(state string, mutate func(*job)) {
	j.mu.Lock()
	if api.TerminalState(j.state) {
		// A cancel racing a completion: first terminal state wins.
		j.mu.Unlock()
		return
	}
	j.state = state
	if mutate != nil {
		mutate(j)
	}
	j.seq++
	ev := jobEvent{seq: j.seq, snap: j.snapshotLocked()}
	subs := make([]chan jobEvent, 0, len(j.subs))
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	terminal := api.TerminalState(state)
	j.mu.Unlock()

	for _, ch := range subs {
		// Subscriber channels are buffered; a stalled consumer loses
		// intermediate frames but always observes the terminal one via
		// the done channel below.
		select {
		case ch <- ev:
		default:
		}
	}
	if terminal {
		close(j.done)
	}
}

// subscribe registers an SSE consumer; the returned cancel must be
// called when the consumer leaves.
func (j *job) subscribe() (<-chan jobEvent, func()) {
	ch := make(chan jobEvent, 16)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan jobEvent]struct{})
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// execute drives the job to a terminal state, retrying transient
// failures with capped exponential backoff. It is called on a worker
// goroutine holding a concurrency slot.
func (s *Server) execute(j *job) {
	log := s.log.With(obs.ContextAttrs(j.ctx)...)
	for {
		var attempt int
		j.transition(api.JobRunning, func(j *job) {
			if j.started.IsZero() {
				j.started = s.now()
			}
			j.errMsg = ""
			j.attempts++
			attempt = j.attempts
		})
		s.journalMark(j, "start")
		log.Info("job running", "kind", j.kind, "attempt", attempt)

		start := s.now()
		err := s.runAttempt(j)
		s.observeRun(s.now().Sub(start))
		if err == nil {
			j.transition(api.JobDone, func(j *job) { j.finished = s.now() })
			s.journalMark(j, "finish")
			log.Info("job finished", "state", api.JobDone, "attempts", attempt)
			return
		}

		if p, ok := resil.IsPanic(err); ok {
			// The worker recovered; the daemon is intact and only this job
			// fails. The stack goes to the log — the wire error stays short.
			s.counter("rmserved_job_panics_total")
			log.Error("job worker panicked", "kind", j.kind, "panic", fmt.Sprint(p.Value), "stack", string(p.Stack))
		}
		if j.ctx.Err() != nil {
			j.transition(api.JobCancelled, func(j *job) {
				j.errMsg = err.Error()
				j.finished = s.now()
			})
			s.journalMark(j, "finish")
			log.Info("job finished", "state", api.JobCancelled, "error", err.Error())
			return
		}
		if resil.IsTransient(err) && attempt < s.opts.Retry.MaxAttempts() {
			delay := s.opts.Retry.Delay(attempt)
			s.counter("rmserved_job_retries_total", telemetry.Label{Key: "kind", Value: j.kind})
			j.transition(api.JobRetrying, func(j *job) { j.errMsg = err.Error() })
			log.Warn("job retrying", "attempt", attempt, "delay_ms", delay.Milliseconds(), "error", err.Error())
			if s.opts.Sleep(j.ctx, delay) == nil {
				continue
			}
			// Cancelled mid-backoff: resolve immediately rather than
			// burning a worker slot on an attempt doomed by a dead context.
			j.transition(api.JobCancelled, func(j *job) {
				j.errMsg = j.ctx.Err().Error()
				j.finished = s.now()
			})
			s.journalMark(j, "finish")
			log.Info("job finished", "state", api.JobCancelled)
			return
		}
		j.transition(api.JobFailed, func(j *job) {
			j.errMsg = err.Error()
			j.finished = s.now()
		})
		s.journalMark(j, "finish")
		log.Info("job finished", "state", api.JobFailed, "attempts", attempt, "error", err.Error())
		return
	}
}

// runAttempt executes the job's work once under the per-job deadline.
// On success the result is stored on the job and nil returned; the
// terminal transition stays with execute, so SSE subscribers never see
// a result on a non-terminal frame.
func (s *Server) runAttempt(j *job) error {
	ctx := j.ctx
	if s.opts.JobTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.JobTimeout)
		defer cancel()
	}
	switch j.kind {
	case "run":
		cfg, alg, setups, merr := experiment.MaterializeRun(j.run)
		if merr != nil {
			// Validation passed at submission, so this is unreachable
			// short of a schema drift; fail the job rather than panic.
			return merr
		}
		out, err := experiment.ScheduledRunContext(ctx, cfg, alg, setups)
		if err != nil {
			return s.deadlineError(ctx, j, err)
		}
		res := experiment.OutcomeToAPI(out)
		j.mu.Lock()
		j.runRes = &res
		j.mu.Unlock()
		return nil
	case "sweep":
		factory, ferr := experiment.SweepFactory(j.sweep.Pattern)
		if ferr != nil {
			return ferr
		}
		results, err := experiment.SweepSeedsContext(ctx, j.sweep.Points, factory, s.opts.Parallelism, j.sweep.Seeds)
		if err != nil {
			return s.deadlineError(ctx, j, err)
		}
		res := experiment.SweepToAPI(results)
		j.mu.Lock()
		j.sweepRes = &res
		j.mu.Unlock()
		return nil
	default:
		return fmt.Errorf("server: unknown job kind %q", j.kind)
	}
}

// deadlineError distinguishes "the attempt's deadline expired" from
// "the job was cancelled": when the attempt context died but the job
// context is still live, the per-job timeout fired. Timeouts are
// deterministic for a given spec — re-running the same work against the
// same deadline loses the same race — so they fail the job, not retry.
func (s *Server) deadlineError(ctx context.Context, j *job, err error) error {
	if ctx.Err() != nil && j.ctx.Err() == nil {
		return fmt.Errorf("server: job exceeded -job-timeout %v: %w", s.opts.JobTimeout, err)
	}
	return err
}
