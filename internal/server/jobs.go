package server

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/api"
	"repro/internal/experiment"
	"repro/internal/obs"
)

// job is the server-side state of one submitted run or sweep. The wire
// view (api.Job) is a snapshot; subscribers receive a fresh snapshot on
// every state transition.
type job struct {
	id   string
	kind string // "run" | "sweep"

	run   api.RunRequest
	sweep api.SweepRequest

	mu       sync.Mutex
	state    string
	errMsg   string
	runRes   *api.RunResult
	sweepRes *api.SweepResult
	created  time.Time
	started  time.Time
	finished time.Time
	subs     map[chan api.Job]struct{}

	cancel context.CancelFunc
	ctx    context.Context
	done   chan struct{}
}

// snapshot renders the wire view under the job's lock.
func (j *job) snapshot() api.Job {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.snapshotLocked()
}

func (j *job) snapshotLocked() api.Job {
	out := api.Job{
		SchemaVersion: api.SchemaVersion,
		ID:            j.id,
		Kind:          j.kind,
		State:         j.state,
		Error:         j.errMsg,
		CreatedMS:     j.created.UnixMilli(),
		Run:           j.runRes,
		Sweep:         j.sweepRes,
	}
	if !j.started.IsZero() {
		out.StartedMS = j.started.UnixMilli()
	}
	if !j.finished.IsZero() {
		out.FinishedMS = j.finished.UnixMilli()
	}
	return out
}

// transition moves the job to a new state and fans the snapshot out to
// every SSE subscriber. Terminal transitions close done and drop the
// subscriber set — late subscribers get one final snapshot and EOF.
func (j *job) transition(state string, mutate func(*job)) {
	j.mu.Lock()
	if api.TerminalState(j.state) {
		// A cancel racing a completion: first terminal state wins.
		j.mu.Unlock()
		return
	}
	j.state = state
	if mutate != nil {
		mutate(j)
	}
	snap := j.snapshotLocked()
	subs := make([]chan api.Job, 0, len(j.subs))
	for ch := range j.subs {
		subs = append(subs, ch)
	}
	terminal := api.TerminalState(state)
	j.mu.Unlock()

	for _, ch := range subs {
		// Subscriber channels are buffered; a stalled consumer loses
		// intermediate frames but always observes the terminal one via
		// the done channel below.
		select {
		case ch <- snap:
		default:
		}
	}
	if terminal {
		close(j.done)
	}
}

// subscribe registers an SSE consumer; the returned cancel must be
// called when the consumer leaves.
func (j *job) subscribe() (<-chan api.Job, func()) {
	ch := make(chan api.Job, 16)
	j.mu.Lock()
	if j.subs == nil {
		j.subs = make(map[chan api.Job]struct{})
	}
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// execute runs the job to a terminal state. It is called on a worker
// goroutine holding a concurrency slot.
func (s *Server) execute(j *job) {
	j.transition(api.JobRunning, func(j *job) { j.started = s.now() })
	log := s.log.With(obs.ContextAttrs(j.ctx)...)
	log.Info("job running", "kind", j.kind)

	var err error
	switch j.kind {
	case "run":
		cfg, alg, setups, merr := experiment.MaterializeRun(j.run)
		if merr != nil {
			// Validation passed at submission, so this is unreachable
			// short of a schema drift; fail the job rather than panic.
			err = merr
			break
		}
		var out experiment.RunOutcome
		out, err = experiment.ScheduledRunContext(j.ctx, cfg, alg, setups)
		if err == nil {
			res := experiment.OutcomeToAPI(out)
			j.transition(api.JobDone, func(j *job) {
				j.runRes = &res
				j.finished = s.now()
			})
		}
	case "sweep":
		factory, ferr := experiment.SweepFactory(j.sweep.Pattern)
		if ferr != nil {
			err = ferr
			break
		}
		var results []experiment.PointResult
		results, err = experiment.SweepSeedsContext(j.ctx, j.sweep.Points, factory, s.opts.Parallelism, j.sweep.Seeds)
		if err == nil {
			res := experiment.SweepToAPI(results)
			j.transition(api.JobDone, func(j *job) {
				j.sweepRes = &res
				j.finished = s.now()
			})
		}
	default:
		err = fmt.Errorf("server: unknown job kind %q", j.kind)
	}

	if err != nil {
		state := api.JobFailed
		if j.ctx.Err() != nil {
			state = api.JobCancelled
		}
		log.Info("job finished", "state", state, "error", err.Error())
		j.transition(state, func(j *job) {
			j.errMsg = err.Error()
			j.finished = s.now()
		})
		return
	}
	log.Info("job finished", "state", api.JobDone)
}
